// Package circuitfold is an open-source implementation of
// "Time Multiplexing via Circuit Folding" (Chien & Jiang, DAC 2020).
//
// Circuit folding reduces the number of physical input pins a
// combinational circuit needs by folding its evaluation over T clock
// cycles: the result is a sequential circuit with ceil(n/T) input pins
// whose T-frame time-frame expansion is functionally equivalent to the
// original circuit. Folding trades I/O bandwidth for throughput at the
// logic level — orthogonally to physical-level time-division
// multiplexing — and is the paper's answer to the FPGA I/O pin
// bottleneck.
//
// # Quick start
//
//	g := circuitfold.NewCircuit()
//	a := g.PI("a")
//	b := g.PI("b")
//	g.AddPO(g.And(a, b), "y")
//
//	r, err := circuitfold.Structural(g, 2, circuitfold.Options{})
//	// r.Seq is a sequential circuit with 1 input pin; r.Execute(inputs)
//	// runs one folded computation.
//
// Four folding engines are provided:
//
//   - Structural (Section IV): scalable layered folding with pipeline
//     registers and counter-selected outputs.
//   - Functional (Section V): pin scheduling, FSM construction via
//     time-frame folding, exact state minimization, state encoding —
//     slower, but often dramatically smaller.
//   - Hybrid (the conclusion's future work): functional folding per
//     output cluster with a structural fallback, one pin interface.
//   - Simple (Section VI): the input-buffering baseline.
//
// The subpackages under internal implement the full substrate from
// scratch: AIGs, BDDs with reordering, a CDCL SAT solver, ISFSM
// minimization (MeMin), LUT mapping, sequential circuits, benchmark
// generators, file I/O and the paper's experiment harness.
package circuitfold

import (
	"context"
	"fmt"
	"io"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/cio"
	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
	"circuitfold/internal/fsm"
	"circuitfold/internal/gen"
	"circuitfold/internal/lutmap"
	"circuitfold/internal/obs"
	"circuitfold/internal/part"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
	"circuitfold/internal/tdm"
)

// Circuit is a combinational circuit as an And-Inverter Graph.
type Circuit = aig.Graph

// Lit is an edge (signal) in a Circuit, possibly complemented.
type Lit = aig.Lit

// Constant signals.
const (
	Const0 = aig.Const0
	Const1 = aig.Const1
)

// Sequential is a sequential circuit: a combinational core plus
// flip-flops.
type Sequential = seq.Circuit

// Result is a folded circuit together with its pin schedule.
type Result = core.Result

// Schedule is a pin schedule computed by Algorithms 1 and 2.
type Schedule = core.Schedule

// Machine is an incompletely specified Mealy machine.
type Machine = fsm.Machine

// Link models an inter-FPGA I/O link with optional TDM.
type Link = tdm.Link

// Encoding selects binary or one-hot encodings for frame counters and
// FSM states.
type Encoding = core.Encoding

// Encoding values.
const (
	Binary = core.Binary
	OneHot = core.OneHot
)

// Budget bounds a fold's resources: wall-clock time, BDD nodes, SAT
// conflicts and FSM states. Zero fields mean "engine default".
type Budget = pipeline.Budget

// Report is the per-stage trace of a fold: stage names, timings and
// size counters. It is attached to Result.Report when Options.Trace is
// set, and to the error (via PipelineError) when a fold aborts.
type Report = pipeline.Report

// StageStats is one stage's entry in a Report.
type StageStats = pipeline.StageStats

// Observer bundles the two observability channels a fold can feed: a
// span Tracer and a Metrics registry. Either field may be nil; a nil
// *Observer (the default) disables all instrumentation at zero cost.
type Observer = obs.Observer

// Tracer emits hierarchical spans to a TraceSink as Chrome trace_event
// records. Open one per fold (or share one across folds) and hand it to
// Options.Observer.
type Tracer = obs.Tracer

// TraceSink receives trace events from a Tracer.
type TraceSink = obs.Sink

// TraceBuffer is an in-memory TraceSink; WriteChromeTrace renders its
// contents as a Perfetto-loadable Chrome trace JSON document.
type TraceBuffer = obs.TraceBuffer

// JSONLSink is a TraceSink that streams events as JSON Lines.
type JSONLSink = obs.JSONLSink

// TraceEvent is one Chrome trace_event record emitted by a Tracer.
type TraceEvent = obs.Event

// Metrics is a registry of named counters, gauges and histograms the
// fold engines update (BDD live nodes, SAT conflicts, sweep merges,
// FSM states, ...). See internal/obs for the metric name constants.
type Metrics = obs.Registry

// NewTracer returns a Tracer emitting to sink.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewTraceBuffer returns an empty in-memory trace sink.
func NewTraceBuffer() *TraceBuffer { return obs.NewTraceBuffer() }

// NewJSONLSink returns a sink streaming events to w as JSON Lines.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewMetrics returns an empty metrics registry. Metrics.Publish
// exposes it through expvar for the net/http debug endpoint.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WriteChromeTrace writes events as a Chrome trace JSON document that
// chrome://tracing and https://ui.perfetto.dev can load.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// Checkpoint is a per-stage snapshot store for resumable folds: after
// each pipeline stage completes, its state is serialized and saved
// under the stage name, and a later fold over the same store restores
// the completed stages instead of re-running them, producing a Result
// bit-identical to an uninterrupted fold. Keying the store to the
// (circuit, T, options) triple is the caller's responsibility — see
// internal/job for a content-addressed store.
type Checkpoint = pipeline.Checkpoint

// PrefixCheckpoint namespaces a checkpoint store under prefix, so
// independent pipelines (e.g. the rungs of a resilient fold) can share
// one store without colliding. A nil store stays nil.
func PrefixCheckpoint(ck Checkpoint, prefix string) Checkpoint {
	return pipeline.PrefixCheckpoint(ck, prefix)
}

// PipelineError is the typed error returned when a fold is cancelled
// or exhausts its budget: it names the pipeline and stage and carries
// the partial Report. Match the cause with errors.Is against
// ErrCanceled / ErrBudgetExceeded, and extract it with errors.As.
type PipelineError = pipeline.Error

// Sentinel causes for aborted folds, matched with errors.Is.
var (
	// ErrBudgetExceeded reports an exhausted Budget (deadline, BDD
	// nodes, SAT conflicts or state cap).
	ErrBudgetExceeded = pipeline.ErrBudgetExceeded
	// ErrCanceled reports a cancelled context.
	ErrCanceled = pipeline.ErrCanceled
)

// NewCircuit returns an empty combinational circuit.
func NewCircuit() *Circuit { return aig.New() }

// Options configures folding. The zero value is the cheapest
// configuration (binary counter and states, no reordering, no
// minimization); DefaultOptions returns the configuration recommended by
// the paper's experiments.
type Options struct {
	// Counter selects the structural method's frame counter encoding.
	Counter Encoding
	// Reorder enables BDD symmetric-sifting input reordering during
	// functional pin scheduling. Ignored by Structural.
	Reorder bool
	// Minimize runs exact FSM state minimization in the functional
	// method. Ignored by Structural.
	Minimize bool
	// StateEnc selects the functional method's state encoding.
	StateEnc Encoding
	// Timeout bounds the fold's wall-clock time, like the paper's
	// 300-second limit. Zero means no limit. It is shorthand for
	// Budget.Wall and is ignored when Budget.Wall is set.
	Timeout time.Duration
	// Context cancels the fold mid-stage; nil means no cancellation.
	// An aborted fold returns an error matching ErrCanceled that
	// unwraps to a *PipelineError carrying the partial stage trace.
	Context context.Context
	// Budget bounds the fold's resources (wall clock, BDD nodes, SAT
	// conflicts, FSM states). Zero fields use engine defaults; an
	// exhausted budget aborts with an error matching ErrBudgetExceeded.
	Budget Budget
	// Workers bounds the goroutines the folding engines use: frame
	// states fold in parallel in the functional method, clusters in the
	// hybrid method. 0 uses the engine default (GOMAXPROCS capped at 8);
	// 1 forces sequential folding. The folded circuit is bit-identical
	// for every worker count. Ignored by Structural and Simple.
	Workers int
	// Trace attaches the per-stage Report to Result.Report. Errors
	// always carry their partial trace regardless of Trace.
	Trace bool
	// Observer, when non-nil, receives hierarchical span traces and
	// live metrics from every stage of the fold (see Observer). Nil —
	// the default — disables instrumentation entirely: the engines
	// take nil-receiver fast paths and allocate nothing extra.
	Observer *Observer
	// Checkpoint, when non-nil, saves per-stage snapshots so an
	// interrupted fold can resume at the last completed stage (see
	// Checkpoint). The Structural and Functional engines checkpoint
	// every stage; Hybrid and Simple ignore it (their callers
	// checkpoint the final result instead).
	Checkpoint Checkpoint
	// Pools, when non-nil, supplies reusable fold arenas (BDD managers,
	// SAT solvers) that the engines check out per stage and return with
	// a hard reset in between, so a long-lived caller folding many
	// circuits skips the arena allocations. The folded circuit is
	// bit-identical with and without pools. Share one bundle per
	// worker goroutine for the hottest reuse; the pools themselves are
	// safe for concurrent use. Ignored by Simple.
	Pools *ArenaPools
}

// ArenaPools bundles the reusable fold arenas (see Options.Pools).
type ArenaPools = core.Pools

// NewArenaPools returns a fresh arena bundle for Options.Pools.
func NewArenaPools() *ArenaPools { return core.NewPools() }

// DefaultOptions returns the configuration the paper's experiments
// favor: binary frame counter, input reordering, state minimization,
// one-hot state encoding, 30-second budget, tracing on.
func DefaultOptions() Options {
	return Options{
		Counter:  Binary,
		Reorder:  true,
		Minimize: true,
		StateEnc: OneHot,
		Timeout:  30 * time.Second,
		Trace:    true,
	}
}

// budget resolves the effective Budget, folding the legacy Timeout
// shorthand into Budget.Wall.
func (o Options) budget() Budget {
	b := o.Budget
	if b.Wall == 0 {
		b.Wall = o.Timeout
	}
	return b
}

// finish strips the trace when it was not requested.
func finish(r *Result, err error, trace bool) (*Result, error) {
	if r != nil && !trace {
		r.Report = nil
	}
	return r, err
}

// Structural folds g by T frames with the structural method of Section
// IV.
func Structural(g *Circuit, T int, opt Options) (r *Result, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Structural")
	r, err = core.StructuralFold(g, T, core.StructuralOptions{
		Counter:    opt.Counter,
		Ctx:        opt.Context,
		Budget:     opt.budget(),
		Obs:        opt.Observer,
		Checkpoint: opt.Checkpoint,
		Pools:      opt.Pools,
	})
	return finish(r, err, opt.Trace)
}

// Functional folds g by T frames with the functional method of Section
// V.
func Functional(g *Circuit, T int, opt Options) (r *Result, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Functional")
	fo := core.DefaultFunctionalOptions()
	fo.Reorder = opt.Reorder
	fo.Minimize = opt.Minimize
	fo.StateEnc = opt.StateEnc
	fo.Ctx = opt.Context
	fo.Budget = opt.budget()
	fo.Obs = opt.Observer
	fo.Checkpoint = opt.Checkpoint
	fo.Pools = opt.Pools
	if opt.Workers > 0 {
		fo.Workers = opt.Workers
	}
	if fo.Budget.Wall > 0 {
		fo.MinOpts.Timeout = fo.Budget.Wall
	}
	r, err = core.FunctionalFold(g, T, fo)
	return finish(r, err, opt.Trace)
}

// Simple folds g by T frames with the input-buffering baseline of
// Section VI.
func Simple(g *Circuit, T int) (r *Result, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Simple")
	return core.SimpleFold(g, T)
}

// Hybrid folds g by T frames combining both methods (the future work
// named in the paper's conclusion): output clusters are folded
// functionally where affordable and structurally otherwise, all sharing
// one ceil(n/T)-pin interface.
func Hybrid(g *Circuit, T int, opt Options) (r *Result, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Hybrid")
	ho := core.DefaultHybridOptions()
	ho.Counter = opt.Counter
	ho.StateEnc = opt.StateEnc
	ho.Minimize = opt.Minimize
	ho.Ctx = opt.Context
	ho.Obs = opt.Observer
	ho.Pools = opt.Pools
	if opt.Workers > 0 {
		ho.Workers = opt.Workers
	}
	b := opt.budget()
	if b.MaxStates == 0 {
		b.MaxStates = ho.Budget.MaxStates
	}
	ho.Budget = b
	if opt.Timeout > 0 && opt.Budget.Wall == 0 {
		// Legacy behavior: Timeout also bounds each cluster.
		ho.ClusterTimeout = opt.Timeout
	}
	r, err = core.HybridFold(g, T, ho)
	return finish(r, err, opt.Trace)
}

// PinSchedule runs the paper's Algorithms 1 and 2 and returns the pin
// schedule without folding.
func PinSchedule(g *Circuit, T int, reorder bool) (s *Schedule, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.PinSchedule")
	return core.PinSchedule(g, T, core.ScheduleOptions{Reorder: reorder})
}

// Verify checks that a fold is a correct time multiplexing of g:
// exhaustively for small circuits, with randomTrials random vectors
// otherwise. It returns nil on success.
func Verify(g *Circuit, r *Result, randomTrials int) (err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Verify")
	return eqcheck.VerifyFold(g, r, randomTrials, 1)
}

// VerifyByUnrolling checks the problem-statement form: unrolling the
// fold by T frames yields a circuit equivalent to g under the schedule.
func VerifyByUnrolling(g *Circuit, r *Result, randomTrials int) (err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.VerifyByUnrolling")
	return eqcheck.VerifyFoldByUnrolling(g, r, randomTrials, 1)
}

// SweepOptions configures the SAT sweeping engine: simulation width,
// worker count, counterexample-refinement rounds, conflict budgets.
type SweepOptions = aig.SweepOptions

// SweepStats reports the work a sweep did (queries, SAT calls, merges,
// counterexample rounds, solver statistics).
type SweepStats = aig.SweepStats

// DefaultSweepOptions returns the sweeping configuration used by
// Optimize: 8 simulation words, GOMAXPROCS workers, counterexample
// refinement on.
func DefaultSweepOptions() SweepOptions { return aig.DefaultSweepOptions() }

// Optimize runs the synthesis pipeline (strash, balance, SAT sweep) used
// before reporting circuit sizes.
func Optimize(g *Circuit) *Circuit { return g.Optimize() }

// OptimizeWith is Optimize with explicit sweeping options — e.g. to pin
// the worker count, widen simulation, or disable counterexample-guided
// refinement (MaxCEXRounds: 0).
func OptimizeWith(g *Circuit, opt SweepOptions) *Circuit { return g.OptimizeWith(opt) }

// OptimizeContext is OptimizeWith under a context and budget: the sweep
// polls the run between rounds and inside its SAT shards, so a
// cancelled context or exhausted budget stops it promptly. The returned
// circuit is always valid and equivalence-preserving — an interrupted
// sweep keeps the merges proven so far — and err (matching ErrCanceled
// or ErrBudgetExceeded) reports why it stopped early, nil when it ran
// to completion.
func OptimizeContext(ctx context.Context, g *Circuit, opt SweepOptions) (*Circuit, error) {
	return OptimizeBudget(ctx, g, opt, Budget{})
}

// OptimizeBudget is OptimizeContext with an explicit resource budget.
func OptimizeBudget(ctx context.Context, g *Circuit, opt SweepOptions, b Budget) (out *Circuit, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.Optimize")
	run := pipeline.NewRun(ctx, b)
	if opt.Interrupt == nil {
		opt.Interrupt = run.Check
	}
	out, st := g.OptimizeWithStats(opt)
	if st.FaultErr != nil {
		return out, st.FaultErr
	}
	return out, run.Check()
}

// LUTCount maps g onto k-input LUTs and returns the LUT count, the
// area metric of the paper's tables (k = 6 there). A LUT width below 2
// is reported as an error.
func LUTCount(g *Circuit, k int) (int, error) { return lutmap.Count(g, k) }

// Benchmark builds one of the paper's 27 benchmark circuits (or the
// adder3 running example) by name; see Benchmarks for the list.
func Benchmark(name string) (*Circuit, error) { return gen.Build(name) }

// Benchmarks lists the available benchmark circuit names.
func Benchmarks() []string { return gen.Names() }

// BenchmarkInfo describes a benchmark circuit.
type BenchmarkInfo = gen.Info

// LookupBenchmark returns a benchmark's metadata.
func LookupBenchmark(name string) (BenchmarkInfo, error) { return gen.Lookup(name) }

// ReadBLIF parses a BLIF netlist.
func ReadBLIF(r io.Reader) (*Sequential, error) { return cio.ReadBLIF(r) }

// WriteBLIF writes a sequential circuit as BLIF.
func WriteBLIF(w io.Writer, c *Sequential, model string) error { return cio.WriteBLIF(w, c, model) }

// ReadBench parses an ISCAS/ITC BENCH netlist.
func ReadBench(r io.Reader) (*Sequential, error) { return cio.ReadBench(r) }

// ReadAAG parses an ASCII AIGER file.
func ReadAAG(r io.Reader) (*Sequential, error) { return cio.ReadAAG(r) }

// WriteAAG writes a sequential circuit as ASCII AIGER.
func WriteAAG(w io.Writer, c *Sequential) error { return cio.WriteAAG(w, c) }

// FoldedIOCycles computes the I/O-cycle count of a folded execution over
// a pins-wide link (TDM ratio 1), per the Section VI latency model.
func FoldedIOCycles(r *Result, pins int) (int, error) {
	n, _, err := tdm.FoldedCycles(r, pins)
	return n, err
}

// UnfoldedIOCycles is the latency baseline: stream all inputs, evaluate,
// stream all outputs.
func UnfoldedIOCycles(nIn, nOut, pins int) int {
	return tdm.UnfoldedCycles(nIn, nOut, pins)
}

// PartitionOptions configures multi-FPGA bipartitioning.
type PartitionOptions = part.Options

// Partition bipartitions a circuit across two FPGAs with the
// Fiduccia-Mattheyses heuristic and returns the inter-chip signal count
// (cut nets) — the quantity TDM and circuit folding both fight over.
func Partition(g *Circuit, opt PartitionOptions) (cut int, side []bool, err error) {
	bp, _, err := part.PartitionCircuit(g, opt)
	if err != nil {
		return 0, nil, err
	}
	return bp.Cut, bp.Side, nil
}

// WriteDOT renders a circuit as a Graphviz graph.
func WriteDOT(w io.Writer, g *Circuit, name string) error { return g.WriteDOT(w, name) }

// WriteFSMDOT renders a Mealy machine as a Graphviz state diagram in the
// style of the paper's Figure 6.
func WriteFSMDOT(w io.Writer, m *Machine, name string) error { return fsm.WriteDOT(w, m, name) }

// WriteKISS writes a machine in KISS2 format (the MeMin interchange
// format); ReadKISS parses one.
func WriteKISS(w io.Writer, m *Machine) error { return fsm.WriteKISS(w, m) }

// ReadKISS parses a KISS2 machine.
func ReadKISS(r io.Reader) (*Machine, error) { return fsm.ReadKISS(r) }

// MinimizeMachine runs SAT-based exact state minimization (MeMin) with
// default bounds.
func MinimizeMachine(m *Machine) (min *Machine, err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.MinimizeMachine")
	return fsm.Minimize(m, fsm.DefaultMinimizeOptions())
}

// VerifyFast is the word-parallel verifier: rounds*64 random vectors per
// call, much faster than Verify on wide circuits.
func VerifyFast(g *Circuit, r *Result, rounds int) (err error) {
	defer pipeline.RecoverTo(&err, "circuitfold.VerifyFast")
	return eqcheck.VerifyFoldWords(g, r, rounds, 1)
}

// WriteVerilog writes a sequential circuit as synthesizable structural
// Verilog.
func WriteVerilog(w io.Writer, c *Sequential, module string) error {
	return cio.WriteVerilog(w, c, module)
}

// WriteVCD dumps a waveform of the circuit simulated over the stream.
func WriteVCD(w io.Writer, c *Sequential, stream [][]bool, module string) error {
	return cio.WriteVCD(w, c, stream, module)
}

// WriteMappedBLIF maps g onto k-input LUTs and writes the mapped netlist
// as BLIF (.names tables, one per LUT).
func WriteMappedBLIF(w io.Writer, g *Circuit, k int, model string) error {
	opt := lutmap.DefaultOptions()
	opt.K = k
	m, err := lutmap.Map(g, opt)
	if err != nil {
		return err
	}
	return lutmap.WriteMappedBLIF(w, g, m, model)
}

// PartitionKWay splits a circuit across k FPGAs by recursive FM
// bisection, returning per-cell part labels and the spanning-net count.
func PartitionKWay(g *Circuit, k int, opt PartitionOptions) (parts []int, cut int, err error) {
	if g.NumNodes() <= 1 {
		return nil, 0, fmt.Errorf("circuitfold: empty circuit")
	}
	h, _ := part.FromAIG(g)
	parts, cut = part.KWay(h, k, opt)
	return parts, cut, nil
}

// Resynthesize maps g onto k-input LUTs and rebuilds each LUT from an
// irredundant sum-of-products cover of its cut function, returning the
// smaller of the original and the rebuilt circuit.
func Resynthesize(g *Circuit, k int) (*Circuit, error) { return lutmap.Resynthesize(g, k) }
