// Command benchgen regenerates the paper's benchmark circuits and writes
// them as BLIF or ASCII AIGER files.
//
// Usage:
//
//	benchgen -list
//	benchgen -name 64-adder [-format blif|aag] [-out 64-adder.blif]
//	benchgen -all -dir bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"circuitfold"
	"circuitfold/internal/seq"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available benchmark circuits")
		name   = flag.String("name", "", "benchmark to generate")
		all    = flag.Bool("all", false, "generate the full suite")
		dir    = flag.String("dir", ".", "output directory for -all")
		out    = flag.String("out", "", "output file for -name (default stdout)")
		format = flag.String("format", "blif", "output format: blif or aag")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range circuitfold.Benchmarks() {
			info, _ := circuitfold.LookupBenchmark(n)
			fmt.Printf("%-10s %5d in %5d out  %s\n", n, info.PIs, info.POs, info.Description)
		}
	case *all:
		for _, n := range circuitfold.Benchmarks() {
			path := filepath.Join(*dir, n+"."+ext(*format))
			if err := writeOne(n, path, *format); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
	case *name != "":
		path := *out
		if path == "" {
			if err := emit(os.Stdout, *name, *format); err != nil {
				fail(err)
			}
			return
		}
		if err := writeOne(*name, path, *format); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func ext(format string) string {
	if format == "aag" {
		return "aag"
	}
	return "blif"
}

func writeOne(name, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return emit(f, name, format)
}

func emit(w *os.File, name, format string) error {
	g, err := circuitfold.Benchmark(name)
	if err != nil {
		return err
	}
	c := seq.Combinational(g)
	if format == "aag" {
		return circuitfold.WriteAAG(w, c)
	}
	return circuitfold.WriteBLIF(w, c, name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
