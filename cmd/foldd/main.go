// Command foldd is the fold daemon: circuit folding as a service over
// HTTP/JSON. Clients submit fold jobs — a built-in benchmark generator
// or an uploaded AIGER/BLIF/BENCH netlist, plus the folding number,
// method and engine knobs — and the daemon runs them on a bounded
// worker pool with per-stage checkpointing, live span streaming, and
// graceful drain on SIGTERM.
//
// Usage:
//
//	foldd [-addr :8080] [-workers 4] [-checkpoint-dir DIR]
//	      [-queue-depth 1024] [-drain-timeout 30s]
//	      [-log-level info] [-log-format text] [-pprof]
//
// With -checkpoint-dir, every pipeline stage snapshots into a
// file-backed, checksummed store keyed by the job spec's content hash:
// a job killed mid-fold (crash, deadline, SIGTERM past the drain
// window) resumes at the last completed stage when the same spec is
// resubmitted — to this process or a restarted one — and produces a
// bit-identical Result. The same directory holds the job journal
// (journal.wal): every accepted submission is fsynced to it before the
// daemon acknowledges, and on startup the daemon replays the journal,
// re-enqueueing every job that was queued or running at crash time
// (/readyz answers 503 "recovering" until the replay finishes).
// Without -checkpoint-dir, checkpoints live in memory, there is no
// journal, and state dies with the process.
//
// Overload protection: the admission queue is bounded (-queue-depth);
// at capacity, submissions fail fast with 429 and a Retry-After
// estimate instead of queueing unboundedly, and /readyz reports
// "overloaded" from 90% occupancy so load balancers back off first.
// Clients can bound a job's total latency with ?deadline=30s on
// submit.
//
// Telemetry: every log line is structured (text or JSON via
// -log-format) and lines about a job carry its job_id and content key;
// /metrics serves the process registry as OpenMetrics text; each job
// keeps a flight recorder whose artifact is served after a failure;
// -pprof exposes net/http/pprof under /debug/pprof/ and ?profile=cpu
// or heap on submit captures a per-job profile.
//
// API (see internal/job for the spec schema):
//
//	POST /v1/jobs                submit a job (?profile=cpu|heap)
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           job status
//	POST /v1/jobs/{id}/cancel    cancel
//	GET  /v1/jobs/{id}/result    folded circuit (?format=json|aag|blif)
//	GET  /v1/jobs/{id}/report    per-stage pipeline report
//	GET  /v1/jobs/{id}/events    live span stream (SSE; ?format=jsonl)
//	GET  /v1/jobs/{id}/metrics   job metrics snapshot
//	GET  /v1/jobs/{id}/flightrec flight-recorder artifact
//	GET  /v1/jobs/{id}/profile   captured pprof profile
//	GET  /healthz, /readyz       liveness and readiness
//	GET  /metrics                OpenMetrics exposition
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"circuitfold/internal/job"
	"circuitfold/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 4, "concurrent fold jobs")
		ckDir      = flag.String("checkpoint-dir", "", "file-backed checkpoint store + journal directory (empty: in-memory, no journal)")
		queueDepth = flag.Int("queue-depth", 0, "admission queue capacity; submissions past it fail fast with 429 (0: default 1024)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before checkpoint-and-cancel")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		slog.Error("foldd: bad logging flags", "err", err.Error())
		os.Exit(1)
	}
	slog.SetDefault(logger)

	var store job.Store
	var journal *job.Journal
	var journalRecs []job.JournalRecord
	if *ckDir != "" {
		fs, err := job.NewFileStore(*ckDir)
		if err != nil {
			logger.Error("foldd: checkpoint store", "err", err.Error())
			os.Exit(1)
		}
		store = fs
		logger.Info("checkpoints enabled", "dir", fs.Dir())
		journal, journalRecs, err = job.OpenJournal(filepath.Join(*ckDir, "journal.wal"))
		if err != nil {
			logger.Error("foldd: job journal", "err", err.Error())
			os.Exit(1)
		}
		if tb := journal.TruncatedBytes(); tb > 0 {
			logger.Warn("journal torn tail truncated", "bytes", tb)
		}
		logger.Info("journal opened", "path", journal.Path(), "records", len(journalRecs))
	}
	runner := job.NewRunnerWith(job.RunnerOptions{
		Workers:    *workers,
		Store:      store,
		Logger:     logger,
		QueueDepth: *queueDepth,
		Journal:    journal,
	})

	handler := job.Handler(runner)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers,
		"log_level", *logLevel, "log_format", *logFormat)

	// Startup recovery runs after the listener is up so /healthz and
	// /readyz answer during the replay — readiness stays 503
	// ("recovering") until Recover returns, keeping load balancers away
	// while the crash backlog re-enqueues.
	if journal != nil {
		n, err := runner.Recover(journalRecs)
		if err != nil {
			logger.Warn("journal replay incomplete", "err", err.Error())
		}
		logger.Info("journal replayed", "records", len(journalRecs), "recovered_jobs", n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("server failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: finish in-flight jobs within the window; past it
	// they are cancelled with their completed stages checkpointed, so
	// a restart resumes them. The runner drains first (finished jobs
	// close their event streams, /readyz turns 503), then the HTTP
	// server.
	logger.Info("draining", "timeout", drain.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := runner.Shutdown(dctx); err != nil {
		logger.Warn("drain deadline hit; in-flight jobs checkpointed", "err", err.Error())
	}
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
	}
	if journal != nil {
		journal.Close()
	}
	logger.Info("stopped")
}
