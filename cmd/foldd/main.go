// Command foldd is the fold daemon: circuit folding as a service over
// HTTP/JSON. Clients submit fold jobs — a built-in benchmark generator
// or an uploaded AIGER/BLIF/BENCH netlist, plus the folding number,
// method and engine knobs — and the daemon runs them on a bounded
// worker pool with per-stage checkpointing, live span streaming, and
// graceful drain on SIGTERM.
//
// Usage:
//
//	foldd [-addr :8080] [-workers 4] [-checkpoint-dir DIR]
//	      [-drain-timeout 30s]
//
// With -checkpoint-dir, every pipeline stage snapshots into a
// file-backed store keyed by the job spec's content hash: a job killed
// mid-fold (crash, deadline, SIGTERM past the drain window) resumes at
// the last completed stage when the same spec is resubmitted — to this
// process or a restarted one — and produces a bit-identical Result.
// Without it, checkpoints live in memory and die with the process.
//
// API (see internal/job for the spec schema):
//
//	POST /v1/jobs              submit a job
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status
//	POST /v1/jobs/{id}/cancel  cancel
//	GET  /v1/jobs/{id}/result  folded circuit (?format=json|aag|blif)
//	GET  /v1/jobs/{id}/report  per-stage pipeline report
//	GET  /v1/jobs/{id}/events  live span stream (SSE; ?format=jsonl)
//	GET  /v1/jobs/{id}/metrics job metrics snapshot
//	GET  /healthz, /metrics    liveness and daemon counters
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"circuitfold/internal/job"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 4, "concurrent fold jobs")
		ckDir   = flag.String("checkpoint-dir", "", "file-backed checkpoint store directory (empty: in-memory)")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before checkpoint-and-cancel")
	)
	flag.Parse()

	var store job.Store
	if *ckDir != "" {
		fs, err := job.NewFileStore(*ckDir)
		if err != nil {
			log.Fatalf("foldd: %v", err)
		}
		store = fs
		log.Printf("foldd: checkpoints in %s", fs.Dir())
	}
	runner := job.NewRunner(*workers, store)

	srv := &http.Server{Addr: *addr, Handler: job.Handler(runner)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("foldd: listening on %s (%d workers)", *addr, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("foldd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: finish in-flight jobs within the window; past it
	// they are cancelled with their completed stages checkpointed, so
	// a restart resumes them. The runner drains first (finished jobs
	// close their event streams), then the HTTP server.
	log.Printf("foldd: draining (up to %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := runner.Shutdown(dctx); err != nil {
		log.Printf("foldd: %v (in-flight jobs checkpointed)", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
	}
	log.Printf("foldd: stopped")
}
