// Command experiments regenerates the paper's evaluation: Table I
// (benchmark statistics), Table II (structural folding under the 200-pin
// cap), the simple-baseline comparison, the i10 latency case study,
// Table III (structural vs functional) and Figure 7 (size scatter).
//
// Usage:
//
//	experiments -table 1
//	experiments -table 2
//	experiments -table simple
//	experiments -case i10
//	experiments -table 3 [-circuits e64,i2] [-frames 16,8] [-budget 20s]
//	experiments -fig 7
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"circuitfold/internal/exp"
)

func main() {
	var (
		table    = flag.String("table", "", "table to regenerate: 1, 2, 3 or simple")
		fig      = flag.String("fig", "", "figure to regenerate: 7")
		caseName = flag.String("case", "", "case study to run: i10")
		all      = flag.Bool("all", false, "run every experiment")
		circuits = flag.String("circuits", "", "comma-separated circuit subset for table 3 / fig 7")
		frames   = flag.String("frames", "", "comma-separated folding numbers for table 3 / fig 7")
		budget   = flag.Duration("budget", 20*time.Second, "per-configuration budget for the functional method")
		pins     = flag.Int("pins", exp.PinLimit, "I/O pin limit for tables 2 and simple")
	)
	flag.Parse()

	opt := exp.DefaultTable3Options()
	opt.Timeout = *budget
	opt.MinimizeTimeout = *budget / 2

	names := splitList(*circuits)
	var frameList []int
	for _, f := range splitList(*frames) {
		v, err := strconv.Atoi(f)
		if err != nil {
			fail(fmt.Errorf("bad -frames entry %q", f))
		}
		frameList = append(frameList, v)
	}

	ran := false
	if *all || *table == "1" {
		ran = true
		fmt.Println("== Table I: benchmark statistics ==")
		rows, err := exp.Table1(nil)
		if err != nil {
			fail(err)
		}
		exp.FprintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *table == "2" {
		ran = true
		fmt.Printf("== Table II: structural circuit folding (pin limit %d) ==\n", *pins)
		rows, err := exp.Table2(*pins)
		if err != nil {
			fail(err)
		}
		exp.FprintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *table == "simple" {
		ran = true
		fmt.Printf("== Simple input-buffering baseline vs structural (pin limit %d) ==\n", *pins)
		rows, err := exp.SimpleBaseline(*pins)
		if err != nil {
			fail(err)
		}
		exp.FprintSimple(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *caseName == "i10" {
		ran = true
		fmt.Println("== Latency case study (Section VI) ==")
		cs, err := exp.CaseStudyI10()
		if err != nil {
			fail(err)
		}
		exp.FprintCaseStudy(os.Stdout, cs)
		fmt.Println()
	}
	if *all || *table == "3" || *fig == "7" {
		ran = true
		fmt.Println("== Table III: structural vs functional circuit folding ==")
		rows, err := exp.Table3(names, frameList, opt)
		if err != nil {
			fail(err)
		}
		exp.FprintTable3(os.Stdout, rows)
		fmt.Println()
		if *all || *fig == "7" {
			fmt.Println("== Figure 7: circuit size comparison (CSV) ==")
			pts, err := exp.Figure7(rows)
			if err != nil {
				fail(err)
			}
			exp.FprintFigure7(os.Stdout, pts)
			fmt.Println()
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
