// Command benchcmp guards the fold service's SLOs in CI: it compares
// a freshly measured BENCH_serve.json against the committed baseline
// and fails (exit 1) when any concurrency level's p99 regressed — or
// its jobs/sec dropped — by more than the allowed percentage.
//
// Usage:
//
//	benchcmp [-base BENCH_serve.json] [-fresh BENCH_serve.fresh.json]
//	         [-max-regress-pct 25]
//
// Only regressions fail; improvements and new concurrency levels are
// reported and pass. p50 is printed for context but not gated. p99 is
// the serve lane's latency SLO; jobs/sec is gated too because the
// service once anti-scaled (throughput fell as concurrency rose)
// without any p99 movement CI would catch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// serveRun mirrors cmd/bench's ServeRun (the BENCH_serve.json schema);
// duplicated here because main packages cannot import each other.
type serveRun struct {
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

type serveReport struct {
	Date    string     `json:"date"`
	Circuit string     `json:"circuit"`
	Frames  int        `json:"frames"`
	Workers int        `json:"workers"`
	Runs    []serveRun `json:"runs"`
}

func load(path string) (*serveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	return &rep, nil
}

func main() {
	var (
		base  = flag.String("base", "BENCH_serve.json", "committed baseline")
		fresh = flag.String("fresh", "BENCH_serve.fresh.json", "freshly measured report")
		maxPC = flag.Float64("max-regress-pct", 25, "p99 and jobs/sec regression budget, percent")
	)
	flag.Parse()

	b, err := load(*base)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchcmp: baseline %s does not exist — nothing to compare against.\n"+
				"Generate and commit one with:\n"+
				"  go run ./cmd/bench -reps 1 -size 800 -out - -pipeout \"\" -bddout \"\" -serveout %s -tputout \"\" > /dev/null\n",
				*base, *base)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	f, err := load(*fresh)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchcmp: fresh report %s does not exist — run the serve lane first (make bench-compare does this).\n", *fresh)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if b.Circuit != f.Circuit || b.Frames != f.Frames {
		fmt.Fprintf(os.Stderr, "benchcmp: workload mismatch: base %s/T%d vs fresh %s/T%d\n",
			b.Circuit, b.Frames, f.Circuit, f.Frames)
		os.Exit(2)
	}

	lines, failed := compare(b, f, *maxPC)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: serve-lane p99 or jobs/sec regressed beyond %.0f%%\n", *maxPC)
		os.Exit(1)
	}
}

// compare evaluates every fresh concurrency level against the
// baseline, returning the per-level report lines and whether any p99
// rise or jobs/sec drop blew the regression budget.
func compare(b, f *serveReport, maxPC float64) (lines []string, failed bool) {
	baseByConc := make(map[int]serveRun, len(b.Runs))
	for _, r := range b.Runs {
		baseByConc[r.Concurrency] = r
	}
	for _, fr := range f.Runs {
		br, ok := baseByConc[fr.Concurrency]
		if !ok {
			lines = append(lines, fmt.Sprintf(
				"c=%d: new concurrency level (p99 %.1fms, %.1f jobs/s), no baseline — pass",
				fr.Concurrency, fr.P99Ms, fr.JobsPerSec))
			continue
		}
		p99Pct := 0.0
		if br.P99Ms > 0 {
			p99Pct = (fr.P99Ms - br.P99Ms) / br.P99Ms * 100
		}
		tputPct := 0.0
		if br.JobsPerSec > 0 {
			tputPct = (br.JobsPerSec - fr.JobsPerSec) / br.JobsPerSec * 100
		}
		verdict := "ok"
		if p99Pct > maxPC || tputPct > maxPC {
			verdict = "FAIL"
			failed = true
		}
		lines = append(lines, fmt.Sprintf(
			"c=%d: p99 %.1fms -> %.1fms (%+.1f%%), %.1f -> %.1f jobs/s (%+.1f%%), budget %.0f%% %s  [p50 %.1fms -> %.1fms]",
			fr.Concurrency, br.P99Ms, fr.P99Ms, p99Pct,
			br.JobsPerSec, fr.JobsPerSec, -tputPct, maxPC, verdict,
			br.P50Ms, fr.P50Ms))
	}
	return lines, failed
}
