package main

import (
	"strings"
	"testing"
)

func rep(p99s ...float64) *serveReport {
	r := &serveReport{Circuit: "64-adder", Frames: 16}
	for i, p := range p99s {
		conc := 1
		if i > 0 {
			conc = 8
		}
		r.Runs = append(r.Runs, serveRun{Concurrency: conc, P99Ms: p, P50Ms: p / 2, JobsPerSec: 10})
	}
	return r
}

func TestCompareWithinBudget(t *testing.T) {
	lines, failed := compare(rep(100, 200), rep(120, 240), 25)
	if failed {
		t.Fatalf("+20%% failed a 25%% budget:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
}

func TestCompareRegression(t *testing.T) {
	lines, failed := compare(rep(100, 200), rep(100, 260), 25)
	if !failed {
		t.Fatal("+30% p99 passed a 25% budget")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "FAIL") {
		t.Errorf("no FAIL verdict in:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := rep(100, 200)
	fresh := rep(100, 200)       // p99 flat...
	fresh.Runs[1].JobsPerSec = 7 // ...but jobs/sec down 30% at c=8
	lines, failed := compare(base, fresh, 25)
	if !failed {
		t.Fatal("-30% jobs/sec passed a 25% budget")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "FAIL") {
		t.Errorf("no FAIL verdict in:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareThroughputGain(t *testing.T) {
	base := rep(100, 200)
	fresh := rep(100, 200)
	fresh.Runs[1].JobsPerSec = 30 // 3x faster must pass
	if _, failed := compare(base, fresh, 25); failed {
		t.Fatal("jobs/sec improvement failed the gate")
	}
}

func TestCompareImprovementAndNewLevel(t *testing.T) {
	base := rep(100)
	fresh := rep(50, 80) // faster at c=1, no baseline at c=8
	lines, failed := compare(base, fresh, 25)
	if failed {
		t.Fatalf("improvement failed:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "no baseline") {
		t.Errorf("new level not reported:\n%s", strings.Join(lines, "\n"))
	}
}
