// Command fold folds a combinational circuit for time multiplexing and
// writes the resulting sequential circuit.
//
// Usage:
//
//	fold -T 4 [-method structural|functional|hybrid|simple] [-in file.blif]
//	     [-bench name] [-format blif|aag|verilog] [-out folded.blif]
//	     [-counter nat|1hot] [-enc nat|1hot] [-reorder] [-minimize]
//	     [-resynth] [-verify N] [-vcd wave.vcd]
//
// The input is a BLIF (.blif), BENCH (.bench) or ASCII AIGER (.aag) file
// with a combinational model, or one of the built-in benchmark circuits
// via -bench. The folded circuit is written to -out (default stdout)
// and the pin schedule is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"circuitfold"
)

func main() {
	var (
		T        = flag.Int("T", 2, "folding number (time-frames per computation)")
		method   = flag.String("method", "structural", "folding method: structural, functional, hybrid or simple")
		inFile   = flag.String("in", "", "input circuit file (.blif, .bench or .aag)")
		benchN   = flag.String("bench", "", "use a built-in benchmark circuit instead of -in")
		outFile  = flag.String("out", "", "output file (default stdout)")
		format   = flag.String("format", "blif", "output format: blif, aag or verilog")
		counter  = flag.String("counter", "nat", "structural frame counter: nat (binary) or 1hot")
		stateEnc = flag.String("enc", "1hot", "functional state encoding: nat or 1hot")
		reorder  = flag.Bool("reorder", true, "functional: BDD symmetric-sifting input reordering")
		minimize = flag.Bool("minimize", true, "functional: exact FSM state minimization")
		timeout  = flag.Duration("timeout", 60*time.Second, "functional folding budget")
		verify   = flag.Int("verify", 256, "random verification vectors (0 disables)")
		vcdFile  = flag.String("vcd", "", "dump a waveform of one random folded execution to this file")
		resynth  = flag.Bool("resynth", false, "resynthesize the folded logic (ISOP refactor) before writing")
	)
	flag.Parse()

	g, err := loadCircuit(*inFile, *benchN)
	if err != nil {
		fail(err)
	}
	opt := circuitfold.Options{
		Reorder:  *reorder,
		Minimize: *minimize,
		Timeout:  *timeout,
	}
	if *counter == "1hot" {
		opt.Counter = circuitfold.OneHot
	}
	if *stateEnc == "1hot" {
		opt.StateEnc = circuitfold.OneHot
	}

	start := time.Now()
	var r *circuitfold.Result
	switch *method {
	case "structural":
		r, err = circuitfold.Structural(g, *T, opt)
	case "functional":
		r, err = circuitfold.Functional(g, *T, opt)
	case "simple":
		r, err = circuitfold.Simple(g, *T)
	case "hybrid":
		r, err = circuitfold.Hybrid(g, *T, opt)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	if *resynth {
		r.Seq = r.Seq.Transform(func(g *circuitfold.Circuit) *circuitfold.Circuit {
			n, rerr := circuitfold.Resynthesize(g.Optimize(), 6)
			if rerr != nil {
				fail(rerr)
			}
			return n
		})
	}

	if *verify > 0 {
		if err := circuitfold.Verify(g, r, *verify); err != nil {
			fail(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Fprintf(os.Stderr, "verified against the original circuit (%d vectors or exhaustive)\n", *verify)
	}

	fmt.Fprintf(os.Stderr, "folded %d in / %d out by T=%d (%s) in %v:\n",
		g.NumPIs(), g.NumPOs(), r.T, *method, elapsed.Round(time.Millisecond))
	luts, _ := circuitfold.LUTCount(r.Seq.G, 6)
	fmt.Fprintf(os.Stderr, "  pins: %d in, %d out; flip-flops: %d; AIG nodes: %d; 6-LUTs: %d\n",
		r.InputPins(), r.OutputPins(), r.FlipFlops(), r.Gates(), luts)
	if r.States > 0 && *method == "functional" {
		min := "not minimized"
		if r.StatesMin >= 0 {
			min = fmt.Sprintf("minimized to %d", r.StatesMin)
		}
		fmt.Fprintf(os.Stderr, "  FSM states: %d (%s)\n", r.States, min)
	}
	for t := 0; t < r.T; t++ {
		fmt.Fprintf(os.Stderr, "  frame %d: in %v out %v\n", t+1, r.InSched[t], r.OutSched[t])
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	if *vcdFile != "" {
		if err := dumpVCD(*vcdFile, r); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "waveform written to %s\n", *vcdFile)
	}

	switch *format {
	case "blif":
		err = circuitfold.WriteBLIF(out, r.Seq, "folded")
	case "aag":
		err = circuitfold.WriteAAG(out, r.Seq)
	case "verilog":
		err = circuitfold.WriteVerilog(out, r.Seq, "folded")
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
}

func loadCircuit(inFile, benchName string) (*circuitfold.Circuit, error) {
	if benchName != "" {
		return circuitfold.Benchmark(benchName)
	}
	if inFile == "" {
		return nil, fmt.Errorf("provide -in or -bench (see -h); benchmarks: %s",
			strings.Join(circuitfold.Benchmarks(), ", "))
	}
	f, err := os.Open(inFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c *circuitfold.Sequential
	switch strings.ToLower(filepath.Ext(inFile)) {
	case ".blif":
		c, err = circuitfold.ReadBLIF(f)
	case ".bench":
		c, err = circuitfold.ReadBench(f)
	case ".aag":
		c, err = circuitfold.ReadAAG(f)
	default:
		return nil, fmt.Errorf("unknown input extension %q", filepath.Ext(inFile))
	}
	if err != nil {
		return nil, err
	}
	if c.NumLatches() != 0 {
		return nil, fmt.Errorf("folding requires a combinational circuit; %q has %d latches",
			inFile, c.NumLatches())
	}
	return c.G, nil
}

// dumpVCD simulates one folded computation on a fixed pseudo-random
// input assignment and writes the waveform.
func dumpVCD(path string, r *circuitfold.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int
	for _, row := range r.InSched {
		for _, src := range row {
			if src >= 0 {
				n++
			}
		}
	}
	in := make([]bool, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range in {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		in[i] = state&1 == 1
	}
	return circuitfold.WriteVCD(f, r.Seq, r.ScheduleInputs(in), "folded")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fold:", err)
	os.Exit(1)
}
