package main

import (
	"fmt"
	"runtime"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/core"
	"circuitfold/internal/gen"
)

// BDDMicro holds the kernel microbenchmark results: synthetic workloads
// that isolate the storage layer (unique-table probes, computed cache,
// freelist) from circuit structure.
type BDDMicro struct {
	ApplyOpsPerSec float64 `json:"apply_ops_per_sec"`
	ITEOpsPerSec   float64 `json:"ite_ops_per_sec"`
	CacheHitPct    float64 `json:"cache_hit_pct"`
	PeakLiveNodes  int     `json:"peak_live_nodes"`
}

// BDDCircuitRun is one Table III circuit pushed through the BDD kernel:
// build the output BDDs, then sift. SiftNs is the headline number — the
// BDD-bound stage the fold pipeline spends its time in.
type BDDCircuitRun struct {
	Circuit        string  `json:"circuit"`
	Outputs        int     `json:"outputs"`
	NodesBuilt     int     `json:"nodes_built"`
	NodesAfterSift int     `json:"nodes_after_sift"`
	BuildNs        int64   `json:"build_ns"`
	SiftNs         int64   `json:"sift_ns"`
	CacheHitPct    float64 `json:"cache_hit_pct"`
	PeakLiveNodes  int     `json:"peak_live_nodes"`
	Err            string  `json:"err,omitempty"`
}

// BDDFoldRun is one functional fold of the headline circuit at one
// frame-worker count: per-stage wall times for pin scheduling and
// time-frame folding, the machine's state count, and the layout hash of
// its condition-manager arena. The hash is the bit-identity witness —
// every workers row of one circuit must report the same hash (and the
// same states), or the parallel fold has diverged from the sequential
// one.
type BDDFoldRun struct {
	Circuit    string `json:"circuit"`
	Frames     int    `json:"frames"`
	Workers    int    `json:"workers"`
	ScheduleNs int64  `json:"schedule_ns"`
	TFFNs      int64  `json:"tff_ns"`
	States     int    `json:"states"`
	LayoutHash string `json:"layout_hash"`
	Err        string `json:"err,omitempty"`
}

// BDDReport is the BENCH_bdd.json schema.
type BDDReport struct {
	Date     string          `json:"date"`
	Micro    BDDMicro        `json:"micro"`
	Circuits []BDDCircuitRun `json:"circuits"`
	Folds    []BDDFoldRun    `json:"folds"`
}

// bddCircuits is the Table III subset the lane sifts: the circuits
// whose monolithic output BDDs stay comfortably inside bddNodeCap.
// (b17_C and toolarge blow past any reasonable cap; arbiter is included
// exactly because it probes the cap-abort path on some orders.)
var bddCircuits = []string{"64-adder", "e64", "i2", "i3", "arbiter"}

// bddNodeCap aborts a circuit build whose manager outgrows it, so one
// explosive order cannot stall the whole bench run.
const bddNodeCap = 2_000_000

// benchBDDApply times rebuilding a 16-bit ripple-carry adder on a
// persistent manager and returns apply calls per second: after the
// first build the computed cache is warm and the freelist supplies
// every allocation, so this measures steady-state kernel throughput.
func benchBDDApply(reps int) (opsPerSec, hitPct float64, peak int) {
	m := bdd.New(32)
	const builds = 512
	var best time.Duration
	var ops int
	var roots []bdd.Node
	for r := 0; r < reps; r++ {
		ops = 0
		start := time.Now()
		for b := 0; b < builds; b++ {
			carry := bdd.False
			roots = roots[:0]
			for i := 0; i < 16; i++ {
				a, bb := m.Var(2*i), m.Var(2*i+1)
				ab := m.Xor(a, bb)
				roots = append(roots, m.Xor(ab, carry))
				carry = m.Or(m.And(a, bb), m.And(carry, ab))
				ops += 4
			}
			roots = append(roots, carry)
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
		m.GC(roots)
	}
	st := m.Stats()
	return float64(ops) / best.Seconds(), hitRate(st), st.PeakNodes
}

// benchBDDITE times random ITE compositions over a pool of shared
// functions.
func benchBDDITE(reps int) float64 {
	m := bdd.New(24)
	pool := make([]bdd.Node, 0, 64)
	for i := 0; i < 24; i++ {
		pool = append(pool, m.Var(i))
	}
	for i := 0; i+1 < 24; i++ {
		pool = append(pool, m.Xor(pool[i], pool[i+1]))
	}
	const calls = 1 << 14
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < calls; i++ {
			m.Ite(pool[i%len(pool)], pool[(i*7+1)%len(pool)], pool[(i*13+2)%len(pool)])
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
		m.GC(pool)
	}
	return calls / best.Seconds()
}

func hitRate(st bdd.Stats) float64 {
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		return float64(st.CacheHits) / float64(total) * 100
	}
	return 0
}

// bddBuildOutputs constructs the BDDs of every primary output of g with
// PI i mapped to variable i, aborting when the manager's arena exceeds
// cap nodes.
func bddBuildOutputs(g *aig.Graph, m *bdd.Manager, cap int) ([]bdd.Node, error) {
	memo := make(map[int]bdd.Node)
	memo[0] = bdd.False
	var build func(id int) (bdd.Node, error)
	build = func(id int) (bdd.Node, error) {
		if r, ok := memo[id]; ok {
			return r, nil
		}
		var r bdd.Node
		if pi := g.PIIndex(id); pi >= 0 {
			r = m.Var(pi)
		} else {
			f0, f1 := g.Fanins(id)
			b0, err := build(f0.Node())
			if err != nil {
				return bdd.False, err
			}
			if f0.Compl() {
				b0 = m.Not(b0)
			}
			b1, err := build(f1.Node())
			if err != nil {
				return bdd.False, err
			}
			if f1.Compl() {
				b1 = m.Not(b1)
			}
			r = m.And(b0, b1)
			if m.NumNodes() > cap {
				return bdd.False, fmt.Errorf("node cap %d exceeded", cap)
			}
		}
		memo[id] = r
		return r, nil
	}
	out := make([]bdd.Node, g.NumPOs())
	for i := range out {
		po := g.PO(i)
		b, err := build(po.Node())
		if err != nil {
			return nil, err
		}
		if po.Compl() {
			b = m.Not(b)
		}
		out[i] = b
	}
	return out, nil
}

// benchBDDCircuit builds and sifts one circuit.
func benchBDDCircuit(name string) BDDCircuitRun {
	run := BDDCircuitRun{Circuit: name}
	g, err := gen.Build(name)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.Outputs = g.NumPOs()
	m := bdd.New(g.NumPIs())
	start := time.Now()
	roots, err := bddBuildOutputs(g, m, bddNodeCap)
	run.BuildNs = time.Since(start).Nanoseconds()
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.NodesBuilt = m.NodeCount(roots...)
	start = time.Now()
	run.NodesAfterSift = m.Sift(roots, 0, m.NumVars()-1)
	run.SiftNs = time.Since(start).Nanoseconds()
	st := m.Stats()
	run.CacheHitPct = hitRate(st)
	run.PeakLiveNodes = st.PeakNodes
	return run
}

// benchBDDFold times the schedule and tff stages of the functional
// fold at one worker count, best-of-reps per stage.
func benchBDDFold(name string, T, workers, reps int) BDDFoldRun {
	run := BDDFoldRun{Circuit: name, Frames: T, Workers: workers}
	g, err := gen.Build(name)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	var bestSched, bestTFF time.Duration
	for r := 0; r < reps; r++ {
		// The fold lane runs after the sweep and pipeline lanes have
		// churned the heap; collect between reps so their garbage
		// doesn't tax the timed sections (testing.B does the same).
		runtime.GC()
		start := time.Now()
		sched, err := core.PinSchedule(g, T, core.ScheduleOptions{Reorder: true})
		dSched := time.Since(start)
		if err != nil {
			run.Err = err.Error()
			return run
		}
		start = time.Now()
		machine, states, err := core.TimeFrameFold(g, sched, workers, nil)
		dTFF := time.Since(start)
		if err != nil {
			run.Err = err.Error()
			return run
		}
		if r == 0 || dSched < bestSched {
			bestSched = dSched
		}
		if r == 0 || dTFF < bestTFF {
			bestTFF = dTFF
		}
		run.States = states
		run.LayoutHash = fmt.Sprintf("%016x", machine.Mgr.LayoutHash())
	}
	run.ScheduleNs = bestSched.Nanoseconds()
	run.TFFNs = bestTFF.Nanoseconds()
	return run
}

// foldWorkerCounts is the workers dimension of the fold lane; the
// layout hashes across these rows witness worker-count independence.
var foldWorkerCounts = []int{1, 2, 8}

// benchBDD runs the whole BDD lane.
func benchBDD(reps int) BDDReport {
	rep := BDDReport{Date: time.Now().UTC().Format(time.RFC3339)}
	apply, hit, peak := benchBDDApply(reps)
	rep.Micro = BDDMicro{
		ApplyOpsPerSec: apply,
		ITEOpsPerSec:   benchBDDITE(reps),
		CacheHitPct:    hit,
		PeakLiveNodes:  peak,
	}
	for _, name := range bddCircuits {
		rep.Circuits = append(rep.Circuits, benchBDDCircuit(name))
	}
	for _, w := range foldWorkerCounts {
		rep.Folds = append(rep.Folds, benchBDDFold("64-adder", 16, w, reps))
	}
	return rep
}
