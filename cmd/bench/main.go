// Command bench measures the SAT-sweeping engine and the fold pipeline
// and emits the results as machine-readable JSON, so CI and
// EXPERIMENTS.md runs can track the engine's speed and SAT-call counts
// over time.
//
// Usage:
//
//	bench [-out BENCH_sweep.json] [-pipeout BENCH_pipeline.json]
//	      [-bddout BENCH_bdd.json] [-serveout BENCH_serve.json]
//	      [-servejobs 32] [-tputout BENCH_throughput.json] [-tputjobs 32]
//	      [-reps 3] [-size 4000] [-seed 1234] [-tables]
//	      [-tracefile trace.json] [-circuit 64-adder] [-frames 16]
//	      [-traceonly] [-http :6060]
//
// -tracefile folds one benchmark circuit (functionally and
// structurally, both with a post-fold SAT sweep) under a span tracer
// and writes the run as Chrome trace-event JSON that chrome://tracing
// and https://ui.perfetto.dev load directly. -traceonly skips the
// sweep and pipeline measurements and only produces the trace.
//
// -http serves expvar (/debug/vars, including the fold engines' live
// metric registry) and net/http/pprof (/debug/pprof, where the sweep
// worker goroutines carry stage/shard labels) for live introspection;
// the process stays up after the work finishes until interrupted.
//
// Four sweep configurations run on the same random workload:
//
//	workers=1   serial sweep, default pool width
//	workers=N   GOMAXPROCS-worker sweep (identical result by design)
//	cex on/off  one-word pool with and without counterexample refinement
//
// Alongside the sweep report, every benchmark circuit is folded
// structurally through the pass pipeline and its per-stage trace
// (schedule, synth timings and sizes) lands in BENCH_pipeline.json.
//
// -bddout runs the BDD kernel lane: apply/ITE microbenchmarks
// (steady-state ops/sec, computed-cache hit rate, peak live nodes) and
// a build-then-sift pass over the tractable Table III circuits, with
// per-circuit sift wall time. The results land in BENCH_bdd.json.
//
// -serveout runs the fold-service lane: the -circuit/-frames fold
// submitted as jobs through the full HTTP service path (internal/job
// behind a loopback server — POST, status polling, runner queue, fold
// engine) at client concurrency 1, 8 and 64, reporting jobs/sec and
// p50/p99 submit-to-done latency in BENCH_serve.json.
//
// -tputout runs the shared-work throughput lane: the same fold
// submitted straight to the in-process runner (no HTTP), cold (unique
// specs, every fold computed) and warm (identical resubmissions served
// by the result cache) at concurrency 1, 8 and 64, reporting jobs/sec
// and the warm/cold speedup in BENCH_throughput.json.
//
// -tables additionally times a Table I/II regeneration (the harness paths
// whose runtime the sweep dominates) and appends those runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/exp"
	"circuitfold/internal/gen"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// Run is one measured sweep configuration.
type Run struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers"`
	Words     int     `json:"words"`
	CEXRounds int     `json:"cex_rounds"`
	NsPerOp   float64 `json:"ns_per_op"`
	SATCalls  int64   `json:"sat_calls"`
	Merges    int     `json:"merges"`
	Conflicts int64   `json:"conflicts"`
	Ands      int     `json:"ands_after"`
}

// Report is the BENCH_sweep.json schema.
type Report struct {
	Date                string  `json:"date"`
	GoMaxProcs          int     `json:"gomaxprocs"`
	CircuitAnds         int     `json:"circuit_ands"`
	Runs                []Run   `json:"runs"`
	SpeedupWorkers      float64 `json:"speedup_workers"`       // workers=1 time / workers=N time
	SATCallReductionCEX float64 `json:"satcall_reduction_cex"` // cex-off calls / cex-on calls
}

// PipelineRun is one circuit's fold through the pass pipeline.
type PipelineRun struct {
	Circuit  string                `json:"circuit"`
	Frames   int                   `json:"frames"`
	Pipeline string                `json:"pipeline"`
	TotalNs  int64                 `json:"total_ns"`
	Stages   []pipeline.StageStats `json:"stages"`
	Err      string                `json:"err,omitempty"`
}

// PipelineReport is the BENCH_pipeline.json schema.
type PipelineReport struct {
	Date string        `json:"date"`
	Runs []PipelineRun `json:"runs"`
}

// foldPipelines folds every benchmark circuit structurally through the
// pass pipeline and records the per-stage trace. The frame count is the
// minimum that fits the circuit under a 200-pin budget, so wide
// circuits fold deeper (mirroring the Table II setup).
func foldPipelines() []PipelineRun {
	var runs []PipelineRun
	for _, name := range gen.Names() {
		info, err := gen.Lookup(name)
		if err != nil {
			continue
		}
		T := exp.MinFrames(info.PIs, 200)
		if T < 2 {
			T = 2
		}
		g := gen.MustBuild(name)
		pr := PipelineRun{Circuit: name, Frames: T, Pipeline: "structural"}
		r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.Binary})
		if err != nil {
			pr.Err = err.Error()
		} else if r.Report != nil {
			pr.TotalNs = r.Report.Total.Nanoseconds()
			pr.Stages = r.Report.Stages
		}
		runs = append(runs, pr)
	}
	return runs
}

// traceFold folds circuit by T frames under a span tracer and metrics
// registry — functionally (reorder, exact minimization, one-hot
// encoding) and structurally, both with a post-fold SAT sweep, so the
// trace exercises every sub-stage span type: bdd.sift, tff.frame,
// memin.iter/sat.solve, and sweep.round — and writes the combined
// Chrome trace to path. The metrics registry is published through
// expvar so a concurrent -http server exposes the live values. A fold
// abort (budget, cancellation) still writes the partial trace.
func traceFold(circuit string, T int, path string) error {
	g, err := gen.Build(circuit)
	if err != nil {
		return err
	}
	buf := obs.NewTraceBuffer()
	reg := obs.NewRegistry()
	reg.Publish("circuitfold")
	o := &obs.Observer{Tracer: obs.NewTracer(buf), Metrics: reg}

	sweep := aig.DefaultSweepOptions()
	fo := core.DefaultFunctionalOptions()
	fo.Budget = pipeline.Budget{Wall: 2 * time.Minute}
	fo.MinOpts.Timeout = fo.Budget.Wall
	fo.PostOptimize = &sweep
	fo.Obs = o
	_, ferr := core.FunctionalFold(g, T, fo)

	_, serr := core.StructuralFold(g, T, core.StructuralOptions{
		Counter:      core.Binary,
		Budget:       pipeline.Budget{Wall: 2 * time.Minute},
		PostOptimize: &sweep,
		Obs:          o,
	})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, buf.Events())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote %s: %d trace events (%s, T=%d)\n", path, buf.Len(), circuit, T)
	if ferr != nil {
		return fmt.Errorf("functional fold: %w", ferr)
	}
	if serr != nil {
		return fmt.Errorf("structural fold: %w", serr)
	}
	return nil
}

func measure(g *aig.Graph, name string, opt aig.SweepOptions, reps int) Run {
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	var st *aig.SweepStats
	var ng *aig.Graph
	for r := 0; r < reps; r++ {
		start := time.Now()
		ng, st = g.SweepWithStats(opt)
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Run{
		Name:      name,
		Workers:   workers,
		Words:     opt.Words,
		CEXRounds: opt.MaxCEXRounds,
		NsPerOp:   float64(best.Nanoseconds()),
		SATCalls:  st.SATCalls,
		Merges:    st.Merges,
		Conflicts: st.Solver.Conflicts,
		Ands:      ng.NumAnds(),
	}
}

func main() {
	var (
		out       = flag.String("out", "BENCH_sweep.json", "output JSON path (- for stdout)")
		pipeout   = flag.String("pipeout", "BENCH_pipeline.json", "per-stage fold timings JSON path (empty to skip)")
		bddout    = flag.String("bddout", "BENCH_bdd.json", "BDD kernel benchmark JSON path (empty to skip)")
		serveout  = flag.String("serveout", "BENCH_serve.json", "fold-service benchmark JSON path (empty to skip)")
		servejobs = flag.Int("servejobs", 32, "jobs per service concurrency level")
		tputout   = flag.String("tputout", "BENCH_throughput.json", "shared-work throughput benchmark JSON path (empty to skip)")
		tputjobs  = flag.Int("tputjobs", 32, "jobs per throughput (mode, concurrency) cell")
		reps      = flag.Int("reps", 3, "repetitions per configuration (best time wins)")
		size      = flag.Int("size", 4000, "workload size in AND nodes")
		seed      = flag.Uint64("seed", 1234, "workload generator seed")
		tables    = flag.Bool("tables", false, "also time a Table I/II regeneration")
		tracefile = flag.String("tracefile", "", "write a Chrome trace of one instrumented fold to this path")
		circuit   = flag.String("circuit", "64-adder", "benchmark circuit to trace (-tracefile)")
		frames    = flag.Int("frames", 16, "folding number for the traced fold (-tracefile)")
		traceonly = flag.Bool("traceonly", false, "only produce the -tracefile trace, skip the measurements")
		httpAddr  = flag.String("http", "", "serve expvar and pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	if *httpAddr != "" {
		go func() {
			fmt.Printf("serving expvar and pprof on http://%s/debug/\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bench: http:", err)
			}
		}()
	}

	if *tracefile != "" {
		if err := traceFold(*circuit, *frames, *tracefile); err != nil {
			fmt.Fprintln(os.Stderr, "bench: trace:", err)
			os.Exit(1)
		}
	}
	if *traceonly {
		hold(*httpAddr)
		return
	}

	g := gen.Random(*seed, 48, 16, *size)

	serial := aig.DefaultSweepOptions()
	serial.Workers = 1
	parallel := aig.DefaultSweepOptions()
	parallel.Workers = runtime.GOMAXPROCS(0)
	cexOff := aig.DefaultSweepOptions()
	cexOff.Words = 1
	cexOff.MaxCEXRounds = 0
	cexOn := aig.DefaultSweepOptions()
	cexOn.Words = 1
	cexOn.MaxCEXRounds = 8

	rep := Report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		CircuitAnds: g.NumAnds(),
	}
	rep.Runs = append(rep.Runs,
		measure(g, "sweep/workers=1", serial, *reps),
		measure(g, fmt.Sprintf("sweep/workers=%d", parallel.Workers), parallel, *reps),
		measure(g, "sweep/cex=off", cexOff, *reps),
		measure(g, "sweep/cex=on", cexOn, *reps),
	)
	rep.SpeedupWorkers = rep.Runs[0].NsPerOp / rep.Runs[1].NsPerOp
	rep.SATCallReductionCEX = float64(rep.Runs[2].SATCalls) / float64(rep.Runs[3].SATCalls)

	if *tables {
		start := time.Now()
		if _, err := exp.Table1([]string{"64-adder", "apex2", "e64", "i10", "C7552"}); err != nil {
			fmt.Fprintln(os.Stderr, "bench: table1:", err)
			os.Exit(1)
		}
		rep.Runs = append(rep.Runs, Run{Name: "table1/subset", NsPerOp: float64(time.Since(start).Nanoseconds())})
		start = time.Now()
		if _, err := exp.Table2(exp.PinLimit); err != nil {
			fmt.Fprintln(os.Stderr, "bench: table2:", err)
			os.Exit(1)
		}
		rep.Runs = append(rep.Runs, Run{Name: "table2/full", NsPerOp: float64(time.Since(start).Nanoseconds())})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: workers speedup %.2fx, CEX SAT-call reduction %.2fx\n",
			*out, rep.SpeedupWorkers, rep.SATCallReductionCEX)
	}

	if *pipeout != "" {
		prep := PipelineReport{
			Date: time.Now().UTC().Format(time.RFC3339),
			Runs: foldPipelines(),
		}
		if err := writeJSON(*pipeout, prep); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: per-stage fold timings for %d circuits\n", *pipeout, len(prep.Runs))
	}
	if *bddout != "" {
		brep := benchBDD(*reps)
		if err := writeJSON(*bddout, brep); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: BDD kernel lane (%d circuits, apply %.1f Mops/s, cache hit %.1f%%)\n",
			*bddout, len(brep.Circuits), brep.Micro.ApplyOpsPerSec/1e6, brep.Micro.CacheHitPct)
	}
	if *serveout != "" {
		srep, err := benchServe(*circuit, *frames, 8, *servejobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: serve:", err)
			os.Exit(1)
		}
		srep.Overload, err = benchServeOverload(*circuit, *frames, *servejobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: serve overload:", err)
			os.Exit(1)
		}
		if err := writeJSON(*serveout, srep); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		last := srep.Runs[len(srep.Runs)-1]
		fmt.Printf("wrote %s: fold service lane (%.1f jobs/s at concurrency %d, p50 %.1fms, p99 %.1fms)\n",
			*serveout, last.JobsPerSec, last.Concurrency, last.P50Ms, last.P99Ms)
		ov := srep.Overload
		fmt.Printf("  overload: %d offered -> %d accepted / %d rejected (retry-after %v), accepted p99 %.1fms\n",
			ov.Offered, ov.Accepted, ov.Rejected, ov.RetryAfterSeen, ov.AcceptedP99Ms)
	}
	if *tputout != "" {
		trep, err := benchThroughput(*circuit, *frames, 8, *tputjobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: throughput:", err)
			os.Exit(1)
		}
		if err := writeJSON(*tputout, trep); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: shared-work throughput lane (warm speedup %.1fx)\n",
			*tputout, trep.WarmSpeedup)
	}
	hold(*httpAddr)
}

// writeJSON marshals v with indentation and writes it to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hold keeps the process alive when -http is serving, so the debug
// endpoints stay inspectable after the measurements finish.
func hold(addr string) {
	if addr == "" {
		return
	}
	fmt.Printf("done; still serving on http://%s/debug/ — interrupt to exit\n", addr)
	select {}
}
