package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"circuitfold/internal/job"
)

// ServeRun is one measured service configuration.
type ServeRun struct {
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServeReport is the BENCH_serve.json schema: submit-to-done latency
// of fold jobs through the full HTTP service path (POST, status
// polling, runner queue, fold engine), at client concurrency 1, 8
// and 64.
// The committed BENCH_serve.json is the p99 SLO baseline that
// cmd/benchcmp (make bench-compare) gates regressions against; keep
// the field names in sync with benchcmp's copy of this schema.
type ServeReport struct {
	Date     string         `json:"date"`
	Circuit  string         `json:"circuit"`
	Frames   int            `json:"frames"`
	Workers  int            `json:"workers"`
	Runs     []ServeRun     `json:"runs"`
	Overload *ServeOverload `json:"overload,omitempty"`
}

// ServeOverload is the admission-control lane: a flood against a
// deliberately tiny queue. The interesting numbers are the fast-fail
// split (accepted vs 429-rejected), whether every rejection carried a
// Retry-After hint, and that the latency of the *accepted* jobs stayed
// bounded — overload protection means the jobs the daemon said yes to
// are not the ones that suffer.
type ServeOverload struct {
	Workers        int     `json:"workers"`
	QueueDepth     int     `json:"queue_depth"`
	Offered        int     `json:"offered"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	RetryAfterSeen bool    `json:"retry_after_seen"`
	AcceptedP50Ms  float64 `json:"accepted_p50_ms"`
	AcceptedP99Ms  float64 `json:"accepted_p99_ms"`
}

// benchServe measures the fold service end to end over real HTTP on a
// loopback listener. Every job gets a unique spec (a distinct wall
// budget that never triggers), so each one is a genuine fold, not a
// snapshot restore.
func benchServe(circuit string, T, workers, jobsPerRun int) (*ServeReport, error) {
	runner := job.NewRunner(workers, nil)
	srv := httptest.NewServer(job.Handler(runner))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		runner.Shutdown(ctx)
	}()

	rep := &ServeReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Circuit: circuit,
		Frames:  T,
		Workers: workers,
	}
	serial := 0
	for _, conc := range []int{1, 8, 64} {
		lat := make([]time.Duration, jobsPerRun)
		jobs := make(chan int)
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					d, err := oneServeJob(srv.URL, circuit, T, serial+i)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					lat[i] = d
				}
			}()
		}
		for i := 0; i < jobsPerRun; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		wall := time.Since(start)
		serial += jobsPerRun

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.Runs = append(rep.Runs, ServeRun{
			Concurrency: conc,
			Jobs:        jobsPerRun,
			JobsPerSec:  float64(jobsPerRun) / wall.Seconds(),
			P50Ms:       float64(lat[jobsPerRun/2].Microseconds()) / 1e3,
			P99Ms:       float64(lat[(jobsPerRun*99)/100].Microseconds()) / 1e3,
		})
	}
	return rep, nil
}

// benchServeOverload floods a one-worker, tiny-queue service with
// concurrent submissions and measures the admission-control split:
// how many were accepted vs fast-failed with 429, whether rejections
// carried Retry-After, and the submit-to-done latency of the accepted
// jobs only.
func benchServeOverload(circuit string, T, offered int) (*ServeOverload, error) {
	const workers, depth = 1, 8
	runner := job.NewRunnerWith(job.RunnerOptions{Workers: workers, QueueDepth: depth})
	srv := httptest.NewServer(job.Handler(runner))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		runner.Shutdown(ctx)
	}()

	ov := &ServeOverload{Workers: workers, QueueDepth: depth, Offered: offered}
	var (
		mu       sync.Mutex
		accepted []time.Duration
		wg       sync.WaitGroup
		firstErr error
	)
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(serial int) {
			defer wg.Done()
			d, retryAfter, err := oneOverloadJob(srv.URL, circuit, T, serial)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				if firstErr == nil {
					firstErr = err
				}
			case retryAfter: // 429
				ov.Rejected++
				ov.RetryAfterSeen = true
			default:
				ov.Accepted++
				accepted = append(accepted, d)
			}
		}(1 << 20 * (i + 1)) // distinct salts from the latency lanes
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if len(accepted) > 0 {
		sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
		ov.AcceptedP50Ms = float64(accepted[len(accepted)/2].Microseconds()) / 1e3
		ov.AcceptedP99Ms = float64(accepted[(len(accepted)*99)/100].Microseconds()) / 1e3
	}
	return ov, nil
}

// oneOverloadJob submits one fold; a 429 reports retryAfter=true (the
// header must be present), anything else polls to done like
// oneServeJob.
func oneOverloadJob(base, circuit string, T, serial int) (time.Duration, bool, error) {
	spec := map[string]any{
		"generator": circuit,
		"t":         T,
		"wall_ms":   int64(10*time.Minute/time.Millisecond) + int64(serial),
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, false, err
	}
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return 0, false, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		if resp.Header.Get("Retry-After") == "" {
			return 0, false, fmt.Errorf("429 without Retry-After")
		}
		return 0, true, nil
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, false, fmt.Errorf("submit: %d %s", resp.StatusCode, st.Error)
	}
	for st.State == "queued" || st.State == "running" {
		time.Sleep(time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return 0, false, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, false, err
		}
	}
	if st.State != "done" {
		return 0, false, fmt.Errorf("job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	return time.Since(start), false, nil
}

// oneServeJob submits one fold over HTTP and polls it to completion,
// returning the submit-to-done latency.
func oneServeJob(base, circuit string, T, serial int) (time.Duration, error) {
	spec := map[string]any{
		"generator": circuit,
		"t":         T,
		// Uniqueness salt: a wall budget far above any real runtime,
		// different per job, so no two jobs share a checkpoint key.
		"wall_ms": int64(10*time.Minute/time.Millisecond) + int64(serial),
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: %d %s", resp.StatusCode, st.Error)
	}
	for st.State == "queued" || st.State == "running" {
		time.Sleep(time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return 0, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
	}
	if st.State != "done" {
		return 0, fmt.Errorf("job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	return time.Since(start), nil
}
