package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"circuitfold/internal/job"
)

// ThroughputRun is one measured runner configuration.
type ThroughputRun struct {
	// Mode is "cold" (every job a distinct spec, every fold computed)
	// or "warm" (identical resubmissions served by the result cache).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Jobs        int     `json:"jobs"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ThroughputReport is the BENCH_throughput.json schema: the shared-work
// engine's jobs/sec through the in-process runner (submit to done, no
// HTTP), cold and warm, at client concurrency 1, 8 and 64. The
// committed BENCH_throughput.json is the jobs/sec baseline that
// cmd/benchcmp (make bench-compare) gates regressions against; keep the
// field names in sync with benchcmp's copy of this schema.
type ThroughputReport struct {
	Date    string          `json:"date"`
	Circuit string          `json:"circuit"`
	Frames  int             `json:"frames"`
	Workers int             `json:"workers"`
	Runs    []ThroughputRun `json:"runs"`
	// WarmSpeedup is warm jobs/sec over cold jobs/sec at concurrency 1:
	// what the result cache buys a resubmitted workload.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// benchThroughput measures the runner's job throughput directly (no
// HTTP — the serve lane covers that path). Cold rows give every job a
// unique spec, so each one is a genuine fold; the folds pin Workers=1
// so measured scaling comes from the runner's worker pool and arena
// reuse, not from intra-fold parallelism. Warm rows resubmit one
// identical spec, so after the priming fold every job is a result-cache
// hit at submit.
func benchThroughput(circuit string, T, workers, jobsPerRun int) (*ThroughputReport, error) {
	runner := job.NewRunner(workers, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		runner.Shutdown(ctx)
	}()

	rep := &ThroughputReport{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Circuit: circuit,
		Frames:  T,
		Workers: workers,
	}

	// Salted spec for cold mode: a wall budget far above any real
	// runtime, different per job, so no two cold jobs share a fold key.
	coldSpec := func(serial int) job.Spec {
		return job.Spec{
			Generator: circuit,
			T:         T,
			Workers:   1,
			WallMS:    int64(10*time.Minute/time.Millisecond) + int64(serial),
		}
	}
	warmSpec := job.Spec{Generator: circuit, T: T, Workers: 1}

	// Prime the warm spec once so its timed rows are pure cache hits.
	j, err := runner.Submit(warmSpec)
	if err != nil {
		return nil, err
	}
	<-j.Done()
	if _, err := j.Result(); err != nil {
		return nil, fmt.Errorf("prime: %w", err)
	}

	serial := 0
	for _, mode := range []string{"cold", "warm"} {
		for _, conc := range []int{1, 8, 64} {
			run, err := throughputRow(runner, mode, conc, jobsPerRun, serial, coldSpec, warmSpec)
			if err != nil {
				return nil, err
			}
			rep.Runs = append(rep.Runs, *run)
			serial += jobsPerRun
		}
	}
	var cold1, warm1 float64
	for _, r := range rep.Runs {
		if r.Concurrency == 1 {
			if r.Mode == "cold" {
				cold1 = r.JobsPerSec
			} else {
				warm1 = r.JobsPerSec
			}
		}
	}
	if cold1 > 0 {
		rep.WarmSpeedup = warm1 / cold1
	}
	return rep, nil
}

// throughputRow measures one (mode, concurrency) cell: jobsPerRun jobs
// submitted by conc client goroutines, each waiting its job to done.
func throughputRow(runner *job.Runner, mode string, conc, jobsPerRun, serial int,
	coldSpec func(int) job.Spec, warmSpec job.Spec) (*ThroughputRun, error) {
	lat := make([]time.Duration, jobsPerRun)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := warmSpec
				if mode == "cold" {
					spec = coldSpec(serial + i)
				}
				jStart := time.Now()
				j, err := runner.Submit(spec)
				if err == nil {
					<-j.Done()
					_, err = j.Result()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lat[i] = time.Since(jStart)
			}
		}()
	}
	for i := 0; i < jobsPerRun; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("%s c=%d: %w", mode, conc, firstErr)
	}
	wall := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return &ThroughputRun{
		Mode:        mode,
		Concurrency: conc,
		Jobs:        jobsPerRun,
		JobsPerSec:  float64(jobsPerRun) / wall.Seconds(),
		P50Ms:       float64(lat[jobsPerRun/2].Microseconds()) / 1e3,
		P99Ms:       float64(lat[(jobsPerRun*99)/100].Microseconds()) / 1e3,
	}, nil
}
