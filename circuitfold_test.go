package circuitfold_test

import (
	"bytes"
	"strings"
	"testing"

	"circuitfold"
)

func buildAdder3(t testing.TB) *circuitfold.Circuit {
	t.Helper()
	g, err := circuitfold.Benchmark("adder3")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicStructural(t *testing.T) {
	g := buildAdder3(t)
	r, err := circuitfold.Structural(g, 3, circuitfold.Options{Counter: circuitfold.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	if r.InputPins() != 2 || r.OutputPins() != 2 || r.FlipFlops() != 5 {
		t.Fatalf("paper Example 1 numbers not reproduced: %d/%d/%d",
			r.InputPins(), r.OutputPins(), r.FlipFlops())
	}
	if err := circuitfold.Verify(g, r, 0); err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.VerifyByUnrolling(g, r, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFunctional(t *testing.T) {
	g := buildAdder3(t)
	r, err := circuitfold.Functional(g, 3, circuitfold.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.States != 6 || r.StatesMin != 2 {
		t.Fatalf("paper Example 3 states not reproduced: %d/%d", r.States, r.StatesMin)
	}
	if err := circuitfold.Verify(g, r, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimple(t *testing.T) {
	g := buildAdder3(t)
	r, err := circuitfold.Simple(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.Verify(g, r, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSchedule(t *testing.T) {
	g := buildAdder3(t)
	s, err := circuitfold.PinSchedule(g, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 2 || s.T != 3 {
		t.Fatalf("schedule shape wrong: %+v", s)
	}
}

func TestPublicBenchmarks(t *testing.T) {
	names := circuitfold.Benchmarks()
	if len(names) != 28 {
		t.Fatalf("have %d benchmarks", len(names))
	}
	info, err := circuitfold.LookupBenchmark("voter")
	if err != nil || info.PIs != 1001 {
		t.Fatalf("voter lookup: %v %+v", err, info)
	}
	if _, err := circuitfold.Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestPublicIO(t *testing.T) {
	g := buildAdder3(t)
	r, err := circuitfold.Structural(g, 2, circuitfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var blif, aag bytes.Buffer
	if err := circuitfold.WriteBLIF(&blif, r.Seq, "folded"); err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.WriteAAG(&aag, r.Seq); err != nil {
		t.Fatal(err)
	}
	c1, err := circuitfold.ReadBLIF(&blif)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := circuitfold.ReadAAG(&aag)
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumLatches() != r.FlipFlops() || c2.NumLatches() != r.FlipFlops() {
		t.Fatal("latches lost in round trip")
	}
	bench := `
INPUT(a)
INPUT(b)
OUTPUT(f)
f = AND(a, b)
`
	c3, err := circuitfold.ReadBench(strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	if c3.NumInputs != 2 {
		t.Fatal("bench parse wrong")
	}
}

func TestPublicLatencyModel(t *testing.T) {
	g, err := circuitfold.Benchmark("i10")
	if err != nil {
		t.Fatal(err)
	}
	r, err := circuitfold.Structural(g, 2, circuitfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := circuitfold.FoldedIOCycles(r, 200)
	if err != nil {
		t.Fatal(err)
	}
	unfolded := circuitfold.UnfoldedIOCycles(g.NumPIs(), g.NumPOs(), 200)
	if unfolded != 4 || folded != 3 {
		t.Fatalf("case study cycles %d -> %d, want 4 -> 3", unfolded, folded)
	}
}

func TestPublicOptimizeAndLUTs(t *testing.T) {
	g := buildAdder3(t)
	o := circuitfold.Optimize(g)
	if o.NumAnds() > g.NumAnds() {
		t.Fatal("optimize grew the circuit")
	}
	luts, err := circuitfold.LUTCount(o, 6)
	if err != nil {
		t.Fatal(err)
	}
	if luts == 0 {
		t.Fatal("adder needs at least one LUT")
	}
}

func TestPublicPartition(t *testing.T) {
	g, err := circuitfold.Benchmark("i10")
	if err != nil {
		t.Fatal(err)
	}
	cut, side, err := circuitfold.Partition(g, circuitfold.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 || len(side) == 0 {
		t.Fatalf("partition implausible: cut=%d cells=%d", cut, len(side))
	}
}

func TestPublicDOTAndKISS(t *testing.T) {
	g := buildAdder3(t)
	var dot bytes.Buffer
	if err := circuitfold.WriteDOT(&dot, g, "adder3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatal("DOT missing header")
	}
	// Build the adder3 FSM via KISS round trip and minimize it.
	src := `
.i 2
.o 2
.r A
00 A A 00
11 A B 00
01 A A 10
10 A A 10
00 B A 10
11 B B 10
01 B B 00
10 B B 00
.e
`
	m, err := circuitfold.ReadKISS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var fdot bytes.Buffer
	if err := circuitfold.WriteFSMDOT(&fdot, m, "csa"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fdot.String(), "init ->") {
		t.Fatal("FSM DOT missing initial marker")
	}
	mm, err := circuitfold.MinimizeMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() > m.NumStates() {
		t.Fatal("minimization grew the machine")
	}
	var kiss bytes.Buffer
	if err := circuitfold.WriteKISS(&kiss, mm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kiss.String(), ".i 2") {
		t.Fatal("KISS header missing")
	}
}

func TestPublicHybrid(t *testing.T) {
	g := buildAdder3(t)
	r, err := circuitfold.Hybrid(g, 3, circuitfold.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.Verify(g, r, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicVerifyFast(t *testing.T) {
	g, err := circuitfold.Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	r, err := circuitfold.Structural(g, 4, circuitfold.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.VerifyFast(g, r, 32); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMappedBLIFAndKWay(t *testing.T) {
	g := buildAdder3(t)
	var buf bytes.Buffer
	if err := circuitfold.WriteMappedBLIF(&buf, g, 6, "adder3_mapped"); err != nil {
		t.Fatal(err)
	}
	back, err := circuitfold.ReadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 64; v++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want := g.Eval(in)
		got, _ := back.Step(nil, in)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("mapped netlist differs at %d output %d", v, o)
			}
		}
	}
	big, err := circuitfold.Benchmark("i10")
	if err != nil {
		t.Fatal(err)
	}
	parts, cut, err := circuitfold.PartitionKWay(big, 4, circuitfold.PartitionOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 || len(parts) == 0 {
		t.Fatal("k-way partition implausible")
	}
}

func TestPublicResynthesize(t *testing.T) {
	g, err := circuitfold.Benchmark("i10")
	if err != nil {
		t.Fatal(err)
	}
	n, err := circuitfold.Resynthesize(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumAnds() > g.NumAnds() {
		t.Fatal("resynthesis grew the circuit")
	}
	// Spot-check functional equivalence.
	in := make([]uint64, g.NumPIs())
	for i := range in {
		in[i] = uint64(i)*0x9e3779b97f4a7c15 + 7
	}
	a, b := g.SimWords(in), n.SimWords(in)
	for o := range a {
		if a[o] != b[o] {
			t.Fatalf("output %d differs", o)
		}
	}
}
