# Tier-1 verification plus the extended race/vet gate, and the sweeping
# engine's benchmark artifact.

GO ?= go

.PHONY: build test verify race vet faults bench bench-go bench-bdd-smoke bench-fold-smoke bench-throughput-smoke bench-compare serve-smoke chaos trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's concurrent packages run under the race detector: the
# parallel simulation kernel and solver shards spawn goroutines even on a
# single-CPU host, so this catches data races regardless of GOMAXPROCS.
# The observability layer and the pipeline's span plumbing are included
# because spans and metrics are updated from worker goroutines; core runs
# in -short mode (its full Table III verification takes minutes under the
# race detector).
race:
	$(GO) test -race ./internal/aig/... ./internal/sat/... ./internal/pipeline/... ./internal/obs/... ./internal/job/...
	$(GO) test -race -short ./internal/core/...

# faults runs the resilience suite under the race detector: the fault
# matrix (injected panics at every registered point), the degradation
# ladder, the error taxonomy, the fault-driven abort scenarios, and the
# fault/pipeline unit tests. Fault plans are process-global, so these
# tests are serial by design; -race proves the recover boundaries and
# hard caps stay clean when sweeps and solver shards are in flight.
faults:
	$(GO) test -race -run 'Fault|Resilient|Taxonomy' -v .
	$(GO) test -race ./internal/fault/... ./internal/pipeline/...

# verify = tier-1 (build + test) plus vet, the race gate, the
# resilience suite, the fold-service smoke, and the shared-work
# throughput smoke.
verify: build test vet race faults serve-smoke bench-throughput-smoke

# serve-smoke is the fold-service PR gate, under the race detector: it
# builds cmd/foldd, then drives a real HTTP server end to end — a
# 64-adder T=16 fold submitted as a job, polled to completion, its
# result diffed bit-for-bit against the same fold run in-process — plus
# the daemon-restart kill-and-resume path, the SIGTERM drain
# semantics, the goroutine-leak check around server start/stop, the
# telemetry surface (OpenMetrics exposition, readiness, the
# fault-injected flight-recorder dump, per-job profile capture), and
# the durability layer (journal recovery incl. the /readyz recovering
# state, checksummed-store quarantine/heal and fault points, overload
# 429 admission control, and per-job deadlines).
serve-smoke:
	$(GO) build ./cmd/foldd
	$(GO) test -race -run 'ServeSmoke|KillAndResume|Shutdown|GoroutineLeak|ServeFlightRecorder|ServeOpenMetrics|ServeReadiness|ServeProfile|Journal|Recover|Quarantine|FaultPoints|CorruptionHeals|Overload|Deadline|NoLeak' -v ./internal/job/

# chaos is the crash-safety gate, under the race detector: 20 rounds of
# recover -> submit -> kill over one persistent journal + checkpoint
# store, with periodic on-disk bit-flips, then a final recovery that
# must drain every acknowledged job to a result bit-identical to an
# uninterrupted fold, and must detect + quarantine a corrupted snapshot
# (store.corrupt metric). CHAOS_SEED reproduces a failing schedule;
# CHAOS_DIR keeps the journal and store on disk for CI artifacts.
chaos:
	CHAOS_ROUNDS=20 $(GO) test -race -run 'Chaos' -v -timeout 600s ./internal/job/

# bench emits BENCH_sweep.json (ns/op, SAT calls, merges, conflicts for
# the sweeping configurations), BENCH_pipeline.json (per-stage fold
# timings for every benchmark circuit), BENCH_bdd.json (BDD kernel
# micro ops/sec plus build-and-sift times on Table III circuits),
# BENCH_serve.json (fold-service jobs/sec and p50/p99 latency at client
# concurrency 1, 8 and 64), and BENCH_throughput.json (shared-work
# runner throughput, cold vs warm-cache); see cmd/bench.
bench:
	$(GO) run ./cmd/bench -out BENCH_sweep.json -pipeout BENCH_pipeline.json -bddout BENCH_bdd.json -serveout BENCH_serve.json -tputout BENCH_throughput.json

# bench-go runs the Go benchmark suite for the sweeping engine and the
# BDD kernel.
bench-go:
	$(GO) test . -run XXX -bench 'BenchmarkSweep|BenchmarkSimWordsW' -benchmem
	$(GO) test ./internal/bdd -run XXX -bench 'BenchmarkBDD' -benchmem

# bench-bdd-smoke runs every BDD kernel benchmark once under the race
# detector — a cheap PR gate that the storage layer's benchmarks still
# run and stay race-clean.
bench-bdd-smoke:
	$(GO) test ./internal/bdd -run XXX -bench 'BenchmarkBDD' -benchtime 1x -race

# bench-fold-smoke folds the 64-adder functionally at T=16 with four
# frame workers once under the race detector — the PR gate that the
# parallel time-frame fold stays race-clean and still reaches the known
# 32-state machine.
bench-fold-smoke:
	$(GO) test . -run XXX -bench 'BenchmarkFoldParallel' -benchtime 1x -race

# bench-throughput-smoke is the shared-work engine's PR gate, under the
# race detector: the throughput lane (cold folds vs warm-cache
# resubmissions through the in-process runner at client concurrency
# 1/8/64) with a small job count, rewriting BENCH_throughput.json. It
# proves the cache, the in-flight dedup, and the pooled arenas stay
# race-clean under concurrent submission — and the lane's own warm
# speedup number makes a broken cache obvious. The committed
# BENCH_throughput.json baseline is refreshed intentionally (no -race,
# full job count) with: make bench
bench-throughput-smoke:
	$(GO) run -race ./cmd/bench -reps 1 -size 400 -out - -pipeout "" -bddout "" \
		-serveout "" -tputout BENCH_throughput.json -tputjobs 8 > /dev/null
	@grep -o '"warm_speedup": [0-9.]*' BENCH_throughput.json

# bench-compare guards the fold service's SLOs: it measures a fresh
# serve lane (BENCH_serve.fresh.json) and diffs it against the
# committed BENCH_serve.json baseline with cmd/benchcmp, failing on a
# p99 rise or a jobs/sec drop beyond 25% at any client concurrency.
# Refresh the baseline intentionally with:
#   go run ./cmd/bench -reps 1 -size 800 -out - -pipeout "" -bddout "" \
#     -serveout BENCH_serve.json > /dev/null
bench-compare:
	$(GO) run ./cmd/bench -reps 1 -size 800 -out - -pipeout "" -bddout "" \
		-serveout BENCH_serve.fresh.json -tputout "" > /dev/null
	$(GO) run ./cmd/benchcmp -base BENCH_serve.json -fresh BENCH_serve.fresh.json

# trace folds the paper's 64-adder (Table III, T=16) functionally and
# structurally under the span tracer and writes trace.json — load it at
# https://ui.perfetto.dev or chrome://tracing for the flame chart.
trace:
	$(GO) run ./cmd/bench -traceonly -tracefile trace.json -circuit 64-adder -frames 16

clean:
	rm -f BENCH_sweep.json BENCH_pipeline.json BENCH_bdd.json BENCH_serve.fresh.json trace.json foldd
