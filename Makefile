# Tier-1 verification plus the extended race/vet gate, and the sweeping
# engine's benchmark artifact.

GO ?= go

.PHONY: build test verify race vet bench bench-go trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's concurrent packages run under the race detector: the
# parallel simulation kernel and solver shards spawn goroutines even on a
# single-CPU host, so this catches data races regardless of GOMAXPROCS.
# The observability layer and the pipeline's span plumbing are included
# because spans and metrics are updated from worker goroutines; core runs
# in -short mode (its full Table III verification takes minutes under the
# race detector).
race:
	$(GO) test -race ./internal/aig/... ./internal/sat/... ./internal/pipeline/... ./internal/obs/...
	$(GO) test -race -short ./internal/core/...

# verify = tier-1 (build + test) plus vet and the race gate.
verify: build test vet race

# bench emits BENCH_sweep.json (ns/op, SAT calls, merges, conflicts for
# the sweeping configurations) and BENCH_pipeline.json (per-stage fold
# timings for every benchmark circuit); see cmd/bench.
bench:
	$(GO) run ./cmd/bench -out BENCH_sweep.json -pipeout BENCH_pipeline.json

# bench-go runs the Go benchmark suite for the sweeping engine.
bench-go:
	$(GO) test . -run XXX -bench 'BenchmarkSweep|BenchmarkSimWordsW' -benchmem

# trace folds the paper's 64-adder (Table III, T=16) functionally and
# structurally under the span tracer and writes trace.json — load it at
# https://ui.perfetto.dev or chrome://tracing for the flame chart.
trace:
	$(GO) run ./cmd/bench -traceonly -tracefile trace.json -circuit 64-adder -frames 16

clean:
	rm -f BENCH_sweep.json BENCH_pipeline.json trace.json
