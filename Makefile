# Tier-1 verification plus the extended race/vet gate, and the sweeping
# engine's benchmark artifact.

GO ?= go

.PHONY: build test verify race vet bench bench-go clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine's concurrent packages run under the race detector: the
# parallel simulation kernel and solver shards spawn goroutines even on a
# single-CPU host, so this catches data races regardless of GOMAXPROCS.
race:
	$(GO) test -race ./internal/aig/... ./internal/sat/...

# verify = tier-1 (build + test) plus vet and the race gate.
verify: build test vet race

# bench emits BENCH_sweep.json (ns/op, SAT calls, merges, conflicts for
# the sweeping configurations) and BENCH_pipeline.json (per-stage fold
# timings for every benchmark circuit); see cmd/bench.
bench:
	$(GO) run ./cmd/bench -out BENCH_sweep.json -pipeout BENCH_pipeline.json

# bench-go runs the Go benchmark suite for the sweeping engine.
bench-go:
	$(GO) test . -run XXX -bench 'BenchmarkSweep|BenchmarkSimWordsW' -benchmem

clean:
	rm -f BENCH_sweep.json BENCH_pipeline.json
