package lutmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"circuitfold/internal/aig"
)

// evalCubes computes the truth table a cube cover represents.
func evalCubes(cubes []Cube, k int) uint64 {
	var tt uint64
	for _, c := range cubes {
		tt |= cubeTT(c, k)
	}
	return tt & fullTT(k)
}

func TestCofactorTT(t *testing.T) {
	// tt = x0 over 2 vars: 0b1010.
	lo, hi := cofactorTT(0xA&fullTT(2), 0)
	if hi != fullTT(2) || lo != 0 {
		t.Fatalf("cofactors of x0: lo=%x hi=%x", lo, hi)
	}
	// tt = x1: cofactor on x0 leaves it unchanged.
	lo, hi = cofactorTT(0xC&fullTT(2), 0)
	if lo != 0xC || hi != 0xC {
		t.Fatalf("cofactors of x1 wrt x0: lo=%x hi=%x", lo, hi)
	}
}

func TestISOPExactCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for k := 1; k <= 6; k++ {
		for trial := 0; trial < 200; trial++ {
			tt := rng.Uint64() & fullTT(k)
			cubes := ISOP(tt, tt, k)
			if got := evalCubes(cubes, k); got != tt {
				t.Fatalf("k=%d tt=%x: cover=%x", k, tt, got)
			}
		}
	}
}

func TestISOPConstants(t *testing.T) {
	if cubes := ISOP(0, 0, 4); len(cubes) != 0 {
		t.Fatalf("cover of 0 should be empty: %v", cubes)
	}
	cubes := ISOP(fullTT(4), fullTT(4), 4)
	if evalCubes(cubes, 4) != fullTT(4) {
		t.Fatal("cover of 1 wrong")
	}
	if len(cubes) != 1 || cubes[0].Mask != 0 {
		t.Fatalf("tautology should be one empty cube: %v", cubes)
	}
}

func TestISOPDontCaresShrinkCover(t *testing.T) {
	// on = x0&x1, dc everywhere x0 is false: cover can be just "x1".
	k := 2
	on := uint64(0x8) // x0 & x1
	up := on | 0x5    // plus don't-cares where x0=0
	cubes := ISOP(on, up, k)
	got := evalCubes(cubes, k)
	if got&on != on {
		t.Fatal("on-set not covered")
	}
	if got&^up != 0 {
		t.Fatal("cover leaves the upper bound")
	}
	exact := ISOP(on, on, k)
	if len(cubes) > len(exact) {
		t.Fatalf("don't-cares grew the cover: %d > %d", len(cubes), len(exact))
	}
}

func TestQuickISOPWithDontCares(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		on := rng.Uint64() & fullTT(k)
		dc := rng.Uint64() & fullTT(k) &^ on
		cubes := ISOP(on, on|dc, k)
		got := evalCubes(cubes, k)
		return got&on == on && got&^(on|dc) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResynthesizePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 120, 10, 6)
		n, err := Resynthesize(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		if n.NumAnds() > g.Cleanup().NumAnds() {
			t.Fatalf("resynthesis grew the graph: %d -> %d", g.Cleanup().NumAnds(), n.NumAnds())
		}
		for v := 0; v < 300; v++ {
			in := make([]bool, g.NumPIs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			a := g.Eval(in)
			b := n.Eval(in)
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("trial %d: resynthesis changed output %d", trial, o)
				}
			}
		}
	}
}

func TestResynthesizeImprovesRedundantLogic(t *testing.T) {
	// A deliberately redundant structure: (a&b) | (a&!b) == a, times 8.
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	var outs []aig.Lit
	for i := 0; i < 8; i++ {
		c := g.PI("")
		redundant := g.Or(g.And(a, b), g.And(a, b.Not()))
		outs = append(outs, g.And(redundant, c))
	}
	for _, o := range outs {
		g.AddPO(o, "")
	}
	n, err := Resynthesize(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumAnds() >= g.NumAnds() {
		t.Fatalf("resynthesis missed the redundancy: %d -> %d", g.NumAnds(), n.NumAnds())
	}
}

func TestResynthesizeConstantsAndWires(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	g.AddPO(a.Not(), "na")
	g.AddPO(aig.Const1, "one")
	n, err := Resynthesize(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Eval([]bool{false})
	if !out[0] || !out[1] {
		t.Fatalf("wires/constants wrong: %v", out)
	}
}
