package lutmap_test

import (
	"bytes"
	"math/rand"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/cio"
	"circuitfold/internal/lutmap"
)

func randomGraph(rng *rand.Rand, ands, pis, pos int) *aig.Graph {
	g := aig.New()
	lits := []aig.Lit{aig.Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(ands/2)].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// TestMappedBLIFRoundTrip maps random circuits to 6-LUTs, writes the
// mapped netlist, reads it back through the BLIF parser and checks
// functional equivalence with the original AIG.
func TestMappedBLIFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 100, 10, 6)
		for _, k := range []int{4, 6} {
			opt := lutmap.DefaultOptions()
			opt.K = k
			m, merr := lutmap.Map(g, opt)
			if merr != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, merr)
			}
			var buf bytes.Buffer
			if err := lutmap.WriteMappedBLIF(&buf, g, m, "mapped"); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			back, err := cio.ReadBLIF(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("trial %d K=%d: %v\n%s", trial, k, err, buf.String())
			}
			if back.NumInputs != g.NumPIs() || back.NumOutputs() != g.NumPOs() {
				t.Fatal("interface lost")
			}
			for v := 0; v < 200; v++ {
				in := make([]bool, g.NumPIs())
				for i := range in {
					in[i] = rng.Intn(2) == 1
				}
				want := g.Eval(in)
				got, _ := back.Step(nil, in)
				for o := range want {
					if got[o] != want[o] {
						t.Fatalf("trial %d K=%d: output %d differs", trial, k, o)
					}
				}
			}
		}
	}
}

func TestMappedBLIFConstantOutputs(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	g.AddPO(aig.Const1, "one")
	g.AddPO(aig.Const0, "zero")
	g.AddPO(a.Not(), "na")
	m, merr := lutmap.Map(g, lutmap.DefaultOptions())
	if merr != nil {
		t.Fatal(merr)
	}
	var buf bytes.Buffer
	if err := lutmap.WriteMappedBLIF(&buf, g, m, "consts"); err != nil {
		t.Fatal(err)
	}
	back, err := cio.ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := back.Step(nil, []bool{false})
	if !out[0] || out[1] || !out[2] {
		t.Fatalf("constants wrong: %v", out)
	}
}
