package lutmap

import (
	"bufio"
	"fmt"
	"io"

	"circuitfold/internal/aig"
)

// WriteMappedBLIF writes the LUT cover of a combinational circuit as a
// BLIF netlist with one K-input .names table per LUT. Truth tables are
// derived by simulating each LUT's cone over all leaf assignments (a
// single 64-bit word covers K <= 6).
func WriteMappedBLIF(w io.Writer, g *aig.Graph, m *Mapping, model string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n.inputs", model)
	for i := 0; i < g.NumPIs(); i++ {
		fmt.Fprintf(bw, " %s", safeName(g.PIName(i)))
	}
	fmt.Fprint(bw, "\n.outputs")
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, " %s", safeName(g.POName(i)))
	}
	fmt.Fprintln(bw)

	sigName := func(id int) string {
		if pi := g.PIIndex(id); pi >= 0 {
			return safeName(g.PIName(pi))
		}
		return fmt.Sprintf("l%d", id)
	}

	for _, id := range m.Roots {
		leaves := m.CutOf[id]
		k := len(leaves)
		if k > 6 {
			return fmt.Errorf("lutmap: cut of node %d has %d leaves; table export supports K <= 6", id, k)
		}
		tt, err := cutTruthTable(g, id, leaves)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, ".names")
		for _, l := range leaves {
			fmt.Fprintf(bw, " %s", sigName(int(l)))
		}
		fmt.Fprintf(bw, " l%d\n", id)
		rows := 0
		for v := 0; v < 1<<uint(k); v++ {
			if tt>>uint(v)&1 == 1 {
				for b := 0; b < k; b++ {
					if v>>uint(b)&1 == 1 {
						fmt.Fprint(bw, "1")
					} else {
						fmt.Fprint(bw, "0")
					}
				}
				fmt.Fprintln(bw, " 1")
				rows++
			}
		}
		if rows == 0 {
			// Constant-0 LUT: empty table (no on-set rows). The .names
			// header above already declared the output.
		}
	}
	// Output drivers (with inversions folded into a buffer table).
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		name := safeName(g.POName(i))
		switch {
		case po == aig.Const0:
			fmt.Fprintf(bw, ".names %s\n", name)
		case po == aig.Const1:
			fmt.Fprintf(bw, ".names %s\n1\n", name)
		case po.Compl():
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", sigName(po.Node()), name)
		default:
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", sigName(po.Node()), name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// cutTruthTable evaluates the function of node id in terms of its cut
// leaves: bit v of the result is the node's value when leaf j carries
// bit j of v. Leaves get the standard simulation patterns so one 64-bit
// word covers up to 6 leaves.
func cutTruthTable(g *aig.Graph, id int, leaves []int32) (uint64, error) {
	patterns := [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	vals := map[int]uint64{0: 0}
	for j, l := range leaves {
		vals[int(l)] = patterns[j]
	}
	var eval func(n int) (uint64, error)
	eval = func(n int) (uint64, error) {
		if v, ok := vals[n]; ok {
			return v, nil
		}
		if !g.IsAnd(n) {
			return 0, fmt.Errorf("lutmap: cone of node %d escapes its cut at node %d", id, n)
		}
		f0, f1 := g.Fanins(n)
		v0, err := eval(f0.Node())
		if err != nil {
			return 0, err
		}
		if f0.Compl() {
			v0 = ^v0
		}
		v1, err := eval(f1.Node())
		if err != nil {
			return 0, err
		}
		if f1.Compl() {
			v1 = ^v1
		}
		v := v0 & v1
		vals[n] = v
		return v, nil
	}
	word, err := eval(id)
	if err != nil {
		return 0, err
	}
	// Mask to the 2^k relevant minterms.
	k := len(leaves)
	if k < 6 {
		word &= 1<<(1<<uint(k)) - 1
	}
	return word, nil
}

func safeName(s string) string {
	if s == "" {
		return "_"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '=', '#':
			out = append(out, '_')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
