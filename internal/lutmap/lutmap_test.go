package lutmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"circuitfold/internal/aig"
)

// mustMap is the test-side Map wrapper for valid options.
func mustMap(t *testing.T, g *aig.Graph, opt Options) *Mapping {
	t.Helper()
	m, err := Map(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInvalidLUTWidthIsAnError(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.And(a, b), "y")
	opt := DefaultOptions()
	opt.K = 1
	if _, err := Map(g, opt); err == nil {
		t.Fatal("K=1 mapping succeeded, want error")
	}
	if _, err := Count(g, 0); err == nil {
		t.Fatal("K=0 count succeeded, want error")
	}
}

func TestSingleAnd(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.And(a, b), "y")
	m := mustMap(t, g, DefaultOptions())
	if m.LUTs != 1 || m.Depth != 1 {
		t.Fatalf("single AND: %d LUTs depth %d", m.LUTs, m.Depth)
	}
}

func TestPassThroughAndConstantsAreFree(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	g.AddPO(a, "y0")
	g.AddPO(a.Not(), "y1")
	g.AddPO(aig.Const1, "y2")
	m := mustMap(t, g, DefaultOptions())
	if m.LUTs != 0 {
		t.Fatalf("wires/constants should cost 0 LUTs, got %d", m.LUTs)
	}
}

func TestSixInputConeFitsOneLUT(t *testing.T) {
	g := aig.New()
	var ins []aig.Lit
	for i := 0; i < 6; i++ {
		ins = append(ins, g.PI(""))
	}
	g.AddPO(g.AndN(ins...), "y")
	m := mustMap(t, g, DefaultOptions())
	if m.LUTs != 1 {
		t.Fatalf("6-input AND should be 1 LUT, got %d", m.LUTs)
	}
	// 7 inputs needs 2 LUTs.
	g2 := aig.New()
	ins = nil
	for i := 0; i < 7; i++ {
		ins = append(ins, g2.PI(""))
	}
	g2.AddPO(g2.AndN(ins...), "y")
	m2 := mustMap(t, g2, DefaultOptions())
	if m2.LUTs != 2 {
		t.Fatalf("7-input AND should be 2 LUTs, got %d", m2.LUTs)
	}
}

func TestSmallerKNeedsMoreLUTs(t *testing.T) {
	g := aig.New()
	var ins []aig.Lit
	for i := 0; i < 16; i++ {
		ins = append(ins, g.PI(""))
	}
	g.AddPO(g.XorN(ins...), "y")
	l6, _ := Count(g, 6)
	l4, _ := Count(g, 4)
	l2, _ := Count(g, 2)
	if !(l6 <= l4 && l4 <= l2) {
		t.Fatalf("monotonicity violated: K6=%d K4=%d K2=%d", l6, l4, l2)
	}
	if l2 != 15 {
		t.Fatalf("2-LUT count of 16-xor = %d, want 15", l2)
	}
}

// checkLegal verifies that the mapping is a legal cover of g.
func checkLegal(t *testing.T, g *aig.Graph, m *Mapping, k int) {
	t.Helper()
	mapped := make(map[int]bool)
	for _, id := range m.Roots {
		mapped[id] = true
	}
	// Every AND-driven PO must be mapped.
	for i := 0; i < g.NumPOs(); i++ {
		id := g.PO(i).Node()
		if g.IsAnd(id) && !mapped[id] {
			t.Fatalf("PO %d driver %d not mapped", i, id)
		}
	}
	for _, id := range m.Roots {
		leaves := m.CutOf[id]
		if len(leaves) > k {
			t.Fatalf("node %d cut has %d leaves > K=%d", id, len(leaves), k)
		}
		inLeaves := make(map[int]bool)
		for _, l := range leaves {
			inLeaves[int(l)] = true
			if g.IsAnd(int(l)) && !mapped[int(l)] {
				t.Fatalf("leaf %d of node %d not mapped", l, id)
			}
			if int(l) == id {
				t.Fatalf("node %d uses itself as a leaf", id)
			}
		}
		// The cut must cover the cone: walking fanins from id must stop
		// at leaves before reaching PIs.
		var walk func(x int) bool
		walk = func(x int) bool {
			if inLeaves[x] {
				return true
			}
			if !g.IsAnd(x) {
				return false // fell through to a PI or constant
			}
			f0, f1 := g.Fanins(x)
			return walk(f0.Node()) && walk(f1.Node())
		}
		f0, f1 := g.Fanins(id)
		if !(walk(f0.Node()) && walk(f1.Node())) {
			t.Fatalf("cut of node %d does not cover its cone", id)
		}
	}
}

func TestMappingLegalityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 150, 12, 8)
		for _, k := range []int{2, 4, 6} {
			opt := DefaultOptions()
			opt.K = k
			m := mustMap(t, g, opt)
			checkLegal(t, g, m, k)
		}
	}
}

func TestAdderMapping(t *testing.T) {
	g := aig.New()
	var a, b []aig.Lit
	for i := 0; i < 8; i++ {
		a = append(a, g.PI(""))
	}
	for i := 0; i < 8; i++ {
		b = append(b, g.PI(""))
	}
	sum, cout := g.Adder(a, b, aig.Const0)
	for _, s := range sum {
		g.AddPO(s, "")
	}
	g.AddPO(cout, "c")
	m := mustMap(t, g, DefaultOptions())
	checkLegal(t, g, m, 6)
	// An 8-bit ripple adder has ~40 AIG nodes; 6-LUT mapping should do
	// far better than one LUT per node.
	if m.LUTs >= g.NumAnds() {
		t.Fatalf("mapping (%d LUTs) no better than node count (%d)", m.LUTs, g.NumAnds())
	}
	if m.LUTs > 16 {
		t.Fatalf("8-bit adder mapped to %d LUTs, expected <= 16", m.LUTs)
	}
}

func TestAreaRecoveryDoesNotHurt(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 200, 14, 10)
		opt := DefaultOptions()
		opt.Rounds = 0
		l0 := mustMap(t, g, opt).LUTs
		opt.Rounds = 2
		l2 := mustMap(t, g, opt).LUTs
		if l2 > l0 {
			t.Fatalf("area recovery regressed: %d -> %d", l0, l2)
		}
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	g := aig.New()
	m := mustMap(t, g, DefaultOptions())
	if m.LUTs != 0 {
		t.Fatalf("empty graph mapped to %d LUTs", m.LUTs)
	}
	g.PI("a")
	m = mustMap(t, g, DefaultOptions())
	if m.LUTs != 0 {
		t.Fatalf("inputs-only graph mapped to %d LUTs", m.LUTs)
	}
}

func randomGraph(rng *rand.Rand, ands, pis, pos int) *aig.Graph {
	g := aig.New()
	lits := []aig.Lit{aig.Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

func TestQuickMappingLegality(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 60, 8, 5)
		m := mustMap(t, g, DefaultOptions())
		mapped := make(map[int]bool)
		for _, id := range m.Roots {
			mapped[id] = true
		}
		for _, id := range m.Roots {
			leaves := m.CutOf[id]
			if len(leaves) > 6 {
				return false
			}
			for _, l := range leaves {
				if int(l) == id {
					return false
				}
				if g.IsAnd(int(l)) && !mapped[int(l)] {
					return false
				}
			}
		}
		for i := 0; i < g.NumPOs(); i++ {
			if id := g.PO(i).Node(); g.IsAnd(id) && !mapped[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
