package lutmap

import (
	"circuitfold/internal/aig"
)

// Cube is one product term over up to 6 variables: Mask selects the
// variables that appear, Val their phases.
type Cube struct {
	Mask uint8
	Val  uint8
}

// varMaskTT[i] is the truth table (over 6 variables) of variable i.
var varMaskTT = [6]uint64{
	0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
}

// fullTT returns the all-ones table over k variables.
func fullTT(k int) uint64 {
	if k >= 6 {
		return ^uint64(0)
	}
	return 1<<(1<<uint(k)) - 1
}

// cofactorTT returns the negative and positive cofactors of tt with
// respect to variable v, each expanded back over all variables.
func cofactorTT(tt uint64, v int) (lo, hi uint64) {
	m := varMaskTT[v]
	shift := uint(1) << uint(v)
	hi = tt & m
	hi |= hi >> shift
	lo = tt & ^m
	lo |= lo << shift
	return lo, hi
}

// cubeTT evaluates a cube's truth table over k variables.
func cubeTT(c Cube, k int) uint64 {
	tt := fullTT(k)
	for v := 0; v < k; v++ {
		if c.Mask>>uint(v)&1 == 0 {
			continue
		}
		if c.Val>>uint(v)&1 == 1 {
			tt &= varMaskTT[v]
		} else {
			tt &= ^varMaskTT[v]
		}
	}
	return tt
}

// ISOP computes an irredundant sum-of-products cover of any function f
// with on-set L and upper bound U (L ⊆ f ⊆ U), by the Minato-Morreale
// recursion over k <= 6 variables. The don't-care set U \ L is exploited
// to shrink the cover.
func ISOP(lower, upper uint64, k int) []Cube {
	full := fullTT(k)
	lower &= full
	upper &= full
	cubes, _ := isopRec(lower, upper, k-1, k)
	return cubes
}

// isopRec returns the cover and its truth table.
func isopRec(l, u uint64, topVar, k int) ([]Cube, uint64) {
	if l == 0 {
		return nil, 0
	}
	if u == fullTT(k) {
		return []Cube{{}}, fullTT(k) // tautology cube
	}
	// Find the highest variable both cofactors actually depend on.
	v := topVar
	for v >= 0 {
		l0, l1 := cofactorTT(l, v)
		u0, u1 := cofactorTT(u, v)
		if l0 != l1 || u0 != u1 {
			break
		}
		v--
	}
	if v < 0 {
		// Function is constant over the remaining variables; l != 0 and
		// u != full cannot both hold for a constant, so u must be full
		// on this subspace — handled above. Be safe:
		return []Cube{{}}, fullTT(k)
	}
	l0, l1 := cofactorTT(l, v)
	u0, u1 := cofactorTT(u, v)

	c0, f0 := isopRec(l0&^u1, u0, v-1, k)
	c1, f1 := isopRec(l1&^u0, u1, v-1, k)
	lstar := (l0 &^ f0) | (l1 &^ f1)
	cs, fs := isopRec(lstar, u0&u1, v-1, k)

	nvTT := ^varMaskTT[v]
	vTT := varMaskTT[v]
	var out []Cube
	res := fs
	for _, c := range c0 {
		c.Mask |= 1 << uint(v)
		out = append(out, c)
	}
	res |= f0 & nvTT
	for _, c := range c1 {
		c.Mask |= 1 << uint(v)
		c.Val |= 1 << uint(v)
		out = append(out, c)
	}
	res |= f1 & vTT
	out = append(out, cs...)
	return out, res & fullTT(k)
}

// Resynthesize maps g onto K<=6 LUTs and rebuilds every LUT from an
// irredundant sum-of-products of its cut function — the classic
// "map-then-refactor" resynthesis. The smaller of the original (cleaned)
// and the rebuilt graph is returned.
func Resynthesize(g *aig.Graph, k int) (*aig.Graph, error) {
	if k > 6 {
		k = 6
	}
	opt := DefaultOptions()
	opt.K = k
	m, err := Map(g, opt)
	if err != nil {
		return nil, err
	}

	ng := aig.New()
	newLit := make(map[int]aig.Lit, len(m.Roots))
	newLit[0] = aig.Const0
	for i := 0; i < g.NumPIs(); i++ {
		newLit[g.PILit(i).Node()] = ng.PI(g.PIName(i))
	}
	for _, id := range m.Roots { // topo order (Roots is sorted by id)
		leaves := m.CutOf[id]
		tt, err := cutTruthTable(g, id, leaves)
		if err != nil {
			return nil, err
		}
		kk := len(leaves)
		leafLits := make([]aig.Lit, kk)
		for j, l := range leaves {
			leafLits[j] = newLit[int(l)]
		}
		// Build from whichever of tt / ~tt has the smaller cover.
		cubesP := ISOP(tt, tt, kk)
		cubesN := ISOP(^tt&fullTT(kk), ^tt&fullTT(kk), kk)
		neg := len(cubesN) < len(cubesP)
		cubes := cubesP
		if neg {
			cubes = cubesN
		}
		terms := make([]aig.Lit, len(cubes))
		for ci, c := range cubes {
			term := aig.Const1
			for v := 0; v < kk; v++ {
				if c.Mask>>uint(v)&1 == 0 {
					continue
				}
				term = ng.And(term, leafLits[v].NotIf(c.Val>>uint(v)&1 == 0))
			}
			terms[ci] = term
		}
		lit := ng.OrN(terms...)
		if neg {
			lit = lit.Not()
		}
		newLit[id] = lit
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		base, ok := newLit[po.Node()]
		if !ok {
			// PO driven by an unmapped node (possible only for constants
			// or PIs, which are in the map) — defensive fallback.
			base = aig.Const0
		}
		ng.AddPO(base.NotIf(po.Compl()), g.POName(i))
	}
	clean := g.Cleanup()
	if ng.NumAnds() < clean.NumAnds() {
		return ng.Cleanup(), nil
	}
	return clean, nil
}
