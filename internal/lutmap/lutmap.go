// Package lutmap implements K-input LUT technology mapping for AIGs using
// priority-cut enumeration with area-flow-based cut selection and a
// global-view area recovery pass. It stands in for ABC's "if -K 6" mapper,
// which the paper uses to report 6-LUT counts.
package lutmap

import (
	"fmt"
	"sort"

	"circuitfold/internal/aig"
)

// Options controls the mapper.
type Options struct {
	K        int // LUT input count (paper: 6)
	CutLimit int // priority cuts kept per node
	Rounds   int // area recovery rounds after the initial mapping
}

// DefaultOptions returns the configuration used throughout the
// experiments: 6-input LUTs, 8 priority cuts, 2 recovery rounds.
func DefaultOptions() Options { return Options{K: 6, CutLimit: 8, Rounds: 2} }

// Mapping is the result of technology mapping.
type Mapping struct {
	// LUTs is the number of LUTs in the cover.
	LUTs int
	// Depth is the depth of the LUT network.
	Depth int
	// Roots lists the AIG nodes implemented as LUT outputs.
	Roots []int
	// CutOf gives the chosen leaf set for each mapped node.
	CutOf map[int][]int32
}

type cut struct {
	leaves []int32
	flow   float64
	depth  int
}

// Map maps g onto K-input LUTs and returns the cover. Primary outputs
// that are constants or direct (possibly inverted) primary inputs cost no
// LUTs, matching standard mapper accounting. A LUT width below 2 is a
// caller input error, not an invariant violation, so it is reported as
// an error rather than a panic.
func Map(g *aig.Graph, opt Options) (*Mapping, error) {
	if opt.K < 2 {
		return nil, fmt.Errorf("lutmap: K must be >= 2 (got %d)", opt.K)
	}
	if opt.CutLimit < 1 {
		opt.CutLimit = 8
	}
	n := g.NumNodes()
	fanout := g.FanoutCounts()
	est := make([]float64, n)
	for i := range est {
		est[i] = float64(fanout[i])
		if est[i] < 1 {
			est[i] = 1
		}
	}

	cuts := make([][]cut, n)
	bestIdx := make([]int, n)
	flow := make([]float64, n)
	depth := make([]int, n)

	// computeBest picks the implementing cut of a node; the trivial cut
	// (the node as its own leaf) exists only for parent merging and is
	// never an implementation, which its +Inf flow guarantees.
	computeBest := func(id int) {
		best := 0
		for i := 1; i < len(cuts[id]); i++ {
			c, b := cuts[id][i], cuts[id][best]
			if c.flow < b.flow || (c.flow == b.flow && (c.depth < b.depth ||
				(c.depth == b.depth && len(c.leaves) < len(b.leaves)))) {
				best = i
			}
		}
		bestIdx[id] = best
		flow[id] = cuts[id][best].flow
		depth[id] = cuts[id][best].depth
	}

	evalCut := func(leaves []int32) (float64, int) {
		f := 1.0
		d := 0
		for _, l := range leaves {
			if g.IsAnd(int(l)) {
				f += flow[l] // best flow of the leaf
				if depth[l] > d {
					d = depth[l]
				}
			}
		}
		return f, d + 1
	}

	enumerate := func(id int) {
		f0, f1 := g.Fanins(id)
		c0 := nodeCuts(cuts, f0.Node())
		c1 := nodeCuts(cuts, f1.Node())
		var out []cut
		for _, a := range c0 {
			for _, b := range c1 {
				leaves := mergeLeaves(a.leaves, b.leaves, opt.K)
				if leaves == nil {
					continue
				}
				fl, d := evalCut(leaves)
				fl /= est[id]
				out = append(out, cut{leaves: leaves, flow: fl, depth: d})
			}
		}
		out = pruneCuts(out, opt.CutLimit)
		// The trivial cut is kept last so parents can use the node as a
		// leaf; its flow is +Inf so computeBest never selects it.
		out = append(out, cut{leaves: []int32{int32(id)}, flow: inf})
		cuts[id] = out
		computeBest(id)
	}

	for id := 1; id < n; id++ {
		if g.IsAnd(id) {
			enumerate(id)
		}
	}

	// Area recovery: re-evaluate flows with fanout estimates taken from
	// the previous cover's actual references. Rounds can oscillate, so
	// the best cover seen overall is kept.
	mapped := selectCover(g, cuts, bestIdx)
	bestMapped := append([]int(nil), mapped...)
	bestChoice := append([]int(nil), bestIdx...)
	for r := 0; r < opt.Rounds; r++ {
		refs := coverRefs(g, cuts, bestIdx, mapped)
		for i := range est {
			if refs[i] > 0 {
				est[i] = float64(refs[i])
			} else {
				est[i] = float64(fanout[i])
				if est[i] < 1 {
					est[i] = 1
				}
			}
		}
		for id := 1; id < n; id++ {
			if !g.IsAnd(id) {
				continue
			}
			for ci := range cuts[id] {
				c := &cuts[id][ci]
				if len(c.leaves) == 1 && int(c.leaves[0]) == id {
					continue // trivial cut stays at +Inf
				}
				fl, d := 1.0, 0
				for _, l := range c.leaves {
					if g.IsAnd(int(l)) {
						fl += flow[l]
						if depth[l] > d {
							d = depth[l]
						}
					}
				}
				c.flow = fl / est[id]
				c.depth = d + 1
			}
			computeBest(id)
		}
		mapped = selectCover(g, cuts, bestIdx)
		if len(mapped) < len(bestMapped) {
			bestMapped = append(bestMapped[:0], mapped...)
			bestChoice = append(bestChoice[:0], bestIdx...)
		}
	}

	m := &Mapping{CutOf: make(map[int][]int32)}
	maxDepth := 0
	for _, id := range bestMapped {
		m.Roots = append(m.Roots, id)
		m.CutOf[id] = cuts[id][bestChoice[id]].leaves
		if d := cuts[id][bestChoice[id]].depth; d > maxDepth {
			maxDepth = d
		}
	}
	sort.Ints(m.Roots)
	m.LUTs = len(m.Roots)
	m.Depth = maxDepth
	return m, nil
}

// inf is a flow value no real cut can reach.
const inf = 1e300

// nodeCuts returns the cut list of a node; PIs and the constant have only
// the trivial cut.
func nodeCuts(cuts [][]cut, id int) []cut {
	if cuts[id] == nil {
		cuts[id] = []cut{{leaves: []int32{int32(id)}}}
	}
	return cuts[id]
}

// mergeLeaves unions two sorted leaf sets, returning nil if the result
// exceeds k.
func mergeLeaves(a, b []int32, k int) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	return out
}

// pruneCuts removes duplicate and dominated cuts and keeps the best limit
// cuts by (flow, size).
func pruneCuts(cs []cut, limit int) []cut {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].flow != cs[j].flow {
			return cs[i].flow < cs[j].flow
		}
		return len(cs[i].leaves) < len(cs[j].leaves)
	})
	var out []cut
	for _, c := range cs {
		dominated := false
		for _, o := range out {
			if leavesSubset(o.leaves, c.leaves) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

// leavesSubset reports whether a (sorted) is a subset of b (sorted).
func leavesSubset(a, b []int32) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// selectCover chooses the cover implied by each node's best cut, starting
// from the PO drivers.
func selectCover(g *aig.Graph, cuts [][]cut, bestIdx []int) []int {
	var mapped []int
	inCover := make(map[int]bool)
	var need []int
	for i := 0; i < g.NumPOs(); i++ {
		id := g.PO(i).Node()
		if g.IsAnd(id) {
			need = append(need, id)
		}
	}
	for len(need) > 0 {
		id := need[len(need)-1]
		need = need[:len(need)-1]
		if inCover[id] {
			continue
		}
		inCover[id] = true
		mapped = append(mapped, id)
		for _, l := range cuts[id][bestIdx[id]].leaves {
			if int(l) != id && g.IsAnd(int(l)) {
				need = append(need, int(l))
			}
		}
	}
	return mapped
}

// coverRefs counts how many times each node is referenced by the current
// cover: as a leaf of a chosen cut or as a PO driver.
func coverRefs(g *aig.Graph, cuts [][]cut, bestIdx []int, mapped []int) []int {
	refs := make([]int, g.NumNodes())
	for i := 0; i < g.NumPOs(); i++ {
		refs[g.PO(i).Node()]++
	}
	for _, id := range mapped {
		for _, l := range cuts[id][bestIdx[id]].leaves {
			refs[l]++
		}
	}
	return refs
}

// Count returns just the number of K-input LUTs after mapping g, the
// metric reported throughout the paper's tables.
func Count(g *aig.Graph, k int) (int, error) {
	opt := DefaultOptions()
	opt.K = k
	m, err := Map(g, opt)
	if err != nil {
		return 0, err
	}
	return m.LUTs, nil
}
