// Package part implements Fiduccia–Mattheyses (FM) hypergraph
// bipartitioning, the classic algorithm behind the multi-FPGA
// partitioning flows the paper positions circuit folding against: a
// partitioned design's cut nets are the inter-chip signals that TDM (and
// folding) must squeeze through the pin budget.
package part

import (
	"fmt"
	"math/rand"

	"circuitfold/internal/aig"
)

// Hypergraph is a cell/net incidence structure. Net i connects the cells
// in Nets[i]; every cell has unit weight.
type Hypergraph struct {
	NumCells int
	Nets     [][]int
	// pins[c] lists the nets incident to cell c (built lazily).
	pins [][]int
}

// Pins returns the nets incident to each cell.
func (h *Hypergraph) Pins() [][]int {
	if h.pins == nil {
		h.pins = make([][]int, h.NumCells)
		for ni, net := range h.Nets {
			for _, c := range net {
				h.pins[c] = append(h.pins[c], ni)
			}
		}
	}
	return h.pins
}

// FromAIG converts a circuit into a hypergraph: one cell per AND node
// and per primary input, one net per signal (driver plus its fanouts).
// cellOf maps AIG node id to cell index.
func FromAIG(g *aig.Graph) (*Hypergraph, []int) {
	cellOf := make([]int, g.NumNodes())
	for i := range cellOf {
		cellOf[i] = -1
	}
	cells := 0
	for id := 1; id < g.NumNodes(); id++ {
		if g.IsPI(id) || g.IsAnd(id) {
			cellOf[id] = cells
			cells++
		}
	}
	// Net per driver: driver cell + fanout cells.
	netOf := map[int][]int{}
	addPin := func(driver, sink int) {
		if cellOf[driver] < 0 || driver == 0 {
			return
		}
		if len(netOf[driver]) == 0 {
			netOf[driver] = append(netOf[driver], cellOf[driver])
		}
		if sink >= 0 {
			netOf[driver] = append(netOf[driver], sink)
		}
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		addPin(f0.Node(), cellOf[id])
		addPin(f1.Node(), cellOf[id])
	}
	for i := 0; i < g.NumPOs(); i++ {
		addPin(g.PO(i).Node(), -1)
	}
	h := &Hypergraph{NumCells: cells}
	for id := 1; id < g.NumNodes(); id++ {
		if net, ok := netOf[id]; ok && len(net) > 1 {
			h.Nets = append(h.Nets, dedupe(net))
		}
	}
	return h, cellOf
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Bipartition assigns each cell a side; Cut is the number of nets with
// cells on both sides.
type Bipartition struct {
	Side []bool
	Cut  int
}

// CutNets counts the nets spanning both sides.
func (h *Hypergraph) CutNets(side []bool) int {
	cut := 0
	for _, net := range h.Nets {
		has0, has1 := false, false
		for _, c := range net {
			if side[c] {
				has1 = true
			} else {
				has0 = true
			}
		}
		if has0 && has1 {
			cut++
		}
	}
	return cut
}

// Options configures the FM partitioner.
type Options struct {
	// Balance is the maximum allowed fraction of cells on one side
	// (e.g. 0.55 allows a 55/45 split). Values <= 0.5 default to 0.55.
	Balance float64
	// Passes is the number of FM improvement passes (0 means 8).
	Passes int
	// Restarts is the number of random initial partitions tried, keeping
	// the best final cut (0 means 4).
	Restarts int
	// Seed makes the initial random partitions reproducible.
	Seed int64
}

// FM bipartitions the hypergraph with the Fiduccia–Mattheyses heuristic:
// starting from random balanced partitions (multi-start), each pass
// tentatively moves every cell once in gain order (bucket lists,
// balance-respecting) and rolls back to the best prefix; the best final
// cut over all restarts wins.
func FM(h *Hypergraph, opt Options) *Bipartition {
	if opt.Restarts <= 0 {
		opt.Restarts = 4
	}
	var best *Bipartition
	for r := 0; r < opt.Restarts; r++ {
		bp := fmOnce(h, opt, opt.Seed+int64(r)*7919)
		if best == nil || bp.Cut < best.Cut {
			best = bp
		}
	}
	return best
}

func fmOnce(h *Hypergraph, opt Options, seed int64) *Bipartition {
	if opt.Balance <= 0.5 {
		opt.Balance = 0.55
	}
	if opt.Passes <= 0 {
		opt.Passes = 8
	}
	n := h.NumCells
	if n == 0 {
		return &Bipartition{Side: nil, Cut: 0}
	}
	rng := rand.New(rand.NewSource(seed))
	side := make([]bool, n)
	perm := rng.Perm(n)
	for i, c := range perm {
		side[c] = i%2 == 1
	}
	pins := h.Pins()
	maxSide := int(opt.Balance * float64(n))
	if maxSide < (n+1)/2 {
		maxSide = (n + 1) / 2
	}

	maxGain := 0
	for _, ps := range pins {
		if len(ps) > maxGain {
			maxGain = len(ps)
		}
	}

	for pass := 0; pass < opt.Passes; pass++ {
		// Net side counts.
		cnt := make([][2]int, len(h.Nets))
		for ni, net := range h.Nets {
			for _, c := range net {
				if side[c] {
					cnt[ni][1]++
				} else {
					cnt[ni][0]++
				}
			}
		}
		sideCount := [2]int{}
		for _, s := range side {
			if s {
				sideCount[1]++
			} else {
				sideCount[0]++
			}
		}
		gain := make([]int, n)
		for c := 0; c < n; c++ {
			gain[c] = cellGain(h, cnt, side, c, pins)
		}
		// Gain buckets with lazy deletion.
		buckets := make([][]int, 2*maxGain+1)
		inBucket := make([]int, n)
		push := func(c int) {
			gi := gain[c] + maxGain
			buckets[gi] = append(buckets[gi], c)
			inBucket[c] = gi
		}
		for c := 0; c < n; c++ {
			push(c)
		}
		locked := make([]bool, n)

		type move struct {
			cell int
			gain int
		}
		var moves []move
		cum, bestCum, bestIdx := 0, 0, -1
		for len(moves) < n {
			// Pick the highest-gain unlocked, balance-legal cell.
			// Balance-blocked candidates are kept in their bucket: they
			// may become legal after later moves.
			cell := -1
			for gi := len(buckets) - 1; gi >= 0 && cell < 0; gi-- {
				b := buckets[gi]
				var blocked []int
				for len(b) > 0 {
					cand := b[len(b)-1]
					b = b[:len(b)-1]
					if locked[cand] || inBucket[cand] != gi {
						continue
					}
					from := 0
					if side[cand] {
						from = 1
					}
					to := 1 - from
					if sideCount[to]+1 > maxSide {
						blocked = append(blocked, cand)
						continue
					}
					cell = cand
					break
				}
				buckets[gi] = append(b, blocked...)
			}
			if cell < 0 {
				break
			}
			// Apply the move and update neighbor gains.
			from := 0
			if side[cell] {
				from = 1
			}
			to := 1 - from
			moves = append(moves, move{cell, gain[cell]})
			cum += gain[cell]
			locked[cell] = true
			side[cell] = !side[cell]
			sideCount[from]--
			sideCount[to]++
			for _, ni := range pins[cell] {
				cnt[ni][from]--
				cnt[ni][to]++
			}
			for _, ni := range pins[cell] {
				for _, c := range h.Nets[ni] {
					if locked[c] {
						continue
					}
					g := cellGain(h, cnt, side, c, pins)
					if g != gain[c] {
						gain[c] = g
						push(c)
					}
				}
			}
			if cum > bestCum {
				bestCum, bestIdx = cum, len(moves)-1
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			side[moves[i].cell] = !side[moves[i].cell]
		}
		if bestCum <= 0 {
			break // no improvement this pass
		}
	}
	return &Bipartition{Side: side, Cut: h.CutNets(side)}
}

// cellGain computes the FM gain of moving cell c to the other side.
func cellGain(h *Hypergraph, cnt [][2]int, side []bool, c int, pins [][]int) int {
	from := 0
	if side[c] {
		from = 1
	}
	to := 1 - from
	g := 0
	for _, ni := range pins[c] {
		if cnt[ni][from] == 1 {
			g++ // moving c uncuts this net
		}
		if cnt[ni][to] == 0 {
			g-- // moving c cuts this net
		}
	}
	return g
}

// PartitionCircuit partitions an AIG across two FPGAs and reports the
// inter-chip signal count: the cut nets of an FM bipartition.
func PartitionCircuit(g *aig.Graph, opt Options) (*Bipartition, *Hypergraph, error) {
	if g.NumNodes() <= 1 {
		return nil, nil, fmt.Errorf("part: empty circuit")
	}
	h, _ := FromAIG(g)
	return FM(h, opt), h, nil
}

// KWay partitions the hypergraph into k parts by recursive bisection.
// Part[c] is the part index of cell c; the returned cut is the number of
// nets spanning more than one part.
func KWay(h *Hypergraph, k int, opt Options) ([]int, int) {
	parts := make([]int, h.NumCells)
	if k <= 1 || h.NumCells == 0 {
		return parts, 0
	}
	var bisect func(cells []int, base, k int, seed int64)
	bisect = func(cells []int, base, k int, seed int64) {
		if k <= 1 || len(cells) <= 1 {
			for _, c := range cells {
				parts[c] = base
			}
			return
		}
		// Project the hypergraph onto this cell subset.
		idx := make(map[int]int, len(cells))
		for i, c := range cells {
			idx[c] = i
		}
		sub := &Hypergraph{NumCells: len(cells)}
		for _, net := range h.Nets {
			var local []int
			for _, c := range net {
				if i, ok := idx[c]; ok {
					local = append(local, i)
				}
			}
			if len(local) > 1 {
				sub.Nets = append(sub.Nets, local)
			}
		}
		o := opt
		o.Seed = seed
		bp := FM(sub, o)
		var left, right []int
		for i, c := range cells {
			if bp.Side[i] {
				right = append(right, c)
			} else {
				left = append(left, c)
			}
		}
		kl := k / 2
		kr := k - kl
		bisect(left, base, kl, seed*2+1)
		bisect(right, base+kl, kr, seed*2+2)
	}
	all := make([]int, h.NumCells)
	for i := range all {
		all[i] = i
	}
	bisect(all, 0, k, opt.Seed+1)

	cut := 0
	for _, net := range h.Nets {
		first := parts[net[0]]
		for _, c := range net[1:] {
			if parts[c] != first {
				cut++
				break
			}
		}
	}
	return parts, cut
}
