package part

import (
	"math/rand"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/gen"
)

func TestFromAIG(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	x := g.And(a, b)
	y := g.And(x, a.Not())
	g.AddPO(y, "y")
	h, cellOf := FromAIG(g)
	// Cells: 2 PIs + 2 ANDs.
	if h.NumCells != 4 {
		t.Fatalf("cells = %d, want 4", h.NumCells)
	}
	// Nets: a (drives x and y), b (drives x), x (drives y). y drives
	// only the PO, so its net has one cell and is dropped.
	if len(h.Nets) != 3 {
		t.Fatalf("nets = %d, want 3", len(h.Nets))
	}
	if cellOf[x.Node()] < 0 || cellOf[y.Node()] < 0 {
		t.Fatal("AND cells unmapped")
	}
}

func TestCutNets(t *testing.T) {
	h := &Hypergraph{NumCells: 4, Nets: [][]int{{0, 1}, {2, 3}, {0, 3}}}
	side := []bool{false, false, true, true}
	if got := h.CutNets(side); got != 1 {
		t.Fatalf("cut = %d, want 1", got)
	}
	side = []bool{false, true, false, true}
	if got := h.CutNets(side); got != 3 {
		t.Fatalf("cut = %d, want 3", got)
	}
}

func TestFMFindsObviousPartition(t *testing.T) {
	// Two 20-cell cliques joined by a single net: the optimal cut is 1.
	h := &Hypergraph{NumCells: 40}
	for i := 0; i < 19; i++ {
		h.Nets = append(h.Nets, []int{i, i + 1})
		h.Nets = append(h.Nets, []int{20 + i, 21 + i})
	}
	h.Nets = append(h.Nets, []int{19, 20})
	bp := FM(h, Options{Seed: 1})
	if bp.Cut != 1 {
		t.Fatalf("cut = %d, want 1", bp.Cut)
	}
	// Balance respected.
	c := 0
	for _, s := range bp.Side {
		if s {
			c++
		}
	}
	if c < 18 || c > 22 {
		t.Fatalf("unbalanced: %d/40", c)
	}
}

func TestFMImprovesOverRandom(t *testing.T) {
	g := gen.MustBuild("i10")
	h, _ := FromAIG(g)
	rng := rand.New(rand.NewSource(3))
	side := make([]bool, h.NumCells)
	for i := range side {
		side[i] = rng.Intn(2) == 1
	}
	randomCut := h.CutNets(side)
	bp := FM(h, Options{Seed: 3})
	if bp.Cut >= randomCut {
		t.Fatalf("FM cut %d not better than random %d", bp.Cut, randomCut)
	}
	if got := h.CutNets(bp.Side); got != bp.Cut {
		t.Fatalf("reported cut %d != recount %d", bp.Cut, got)
	}
}

func TestFMBalanceBound(t *testing.T) {
	g := gen.MustBuild("e64")
	h, _ := FromAIG(g)
	for _, bal := range []float64{0.51, 0.6, 0.7} {
		bp := FM(h, Options{Balance: bal, Seed: 7})
		c := 0
		for _, s := range bp.Side {
			if s {
				c++
			}
		}
		max := int(bal*float64(h.NumCells)) + 1
		if c > max || h.NumCells-c > max {
			t.Fatalf("balance %.2f violated: %d/%d", bal, c, h.NumCells)
		}
	}
}

func TestFMDeterministicPerSeed(t *testing.T) {
	g := gen.MustBuild("i3")
	h, _ := FromAIG(g)
	a := FM(h, Options{Seed: 11})
	b := FM(h, Options{Seed: 11})
	if a.Cut != b.Cut {
		t.Fatalf("same seed, different cuts: %d vs %d", a.Cut, b.Cut)
	}
}

func TestPartitionCircuit(t *testing.T) {
	g := gen.MustBuild("b14_C")
	bp, h, err := PartitionCircuit(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Cut <= 0 || bp.Cut >= len(h.Nets) {
		t.Fatalf("implausible cut %d of %d nets", bp.Cut, len(h.Nets))
	}
	if _, _, err := PartitionCircuit(aig.New(), Options{}); err == nil {
		t.Fatal("empty circuit should fail")
	}
}

func TestKWayPartition(t *testing.T) {
	g := gen.MustBuild("b14_C")
	h, _ := FromAIG(g)
	for _, k := range []int{2, 3, 4} {
		parts, cut := KWay(h, k, Options{Seed: 9})
		used := map[int]bool{}
		counts := map[int]int{}
		for _, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("part %d out of range for k=%d", p, k)
			}
			used[p] = true
			counts[p]++
		}
		if len(used) != k {
			t.Fatalf("k=%d: only %d parts used", k, len(used))
		}
		// No part dominates excessively (recursive bisection balance).
		for p, c := range counts {
			if c > h.NumCells*3/4 {
				t.Fatalf("k=%d: part %d holds %d of %d cells", k, p, c, h.NumCells)
			}
		}
		if cut <= 0 || cut >= len(h.Nets) {
			t.Fatalf("k=%d: implausible cut %d", k, cut)
		}
	}
	// k=1 is a no-op with zero cut.
	parts, cut := KWay(h, 1, Options{})
	if cut != 0 {
		t.Fatalf("k=1 cut = %d", cut)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must place everything in part 0")
		}
	}
}

func TestKWayMoreCutThanBisection(t *testing.T) {
	g := gen.MustBuild("i10")
	h, _ := FromAIG(g)
	_, cut2 := KWay(h, 2, Options{Seed: 2})
	_, cut4 := KWay(h, 4, Options{Seed: 2})
	if cut4 < cut2 {
		t.Fatalf("4-way cut %d unexpectedly below 2-way cut %d", cut4, cut2)
	}
}
