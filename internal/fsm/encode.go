package fsm

import (
	"fmt"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/seq"
)

// StateEncoding selects the state-assignment style of Section V-C.
type StateEncoding int

// Encodings.
const (
	// NaturalBinary uses ceil(log2 |S|) state bits.
	NaturalBinary StateEncoding = iota
	// OneHotState uses |S| state bits, one per state.
	OneHotState
)

func (e StateEncoding) String() string {
	if e == OneHotState {
		return "1hot"
	}
	return "nat"
}

// encodeNodeBudget caps the BDD built during logic synthesis; beyond it
// Encode falls back to direct sum-of-products construction.
var encodeNodeBudget = 3000000

// Encode synthesizes the machine into a sequential circuit with
// NumInputs input pins and NumOutputs output pins. Every next-state and
// output function is built as one BDD over the state bits and inputs and
// then converted to AND-inverter logic, which collapses redundancy the
// way a logic synthesis flow would; on BDD blowup it falls back to a
// direct sum-of-products over the transitions. Unspecified outputs and
// don't-care successors are resolved to 0, the cheapest completion.
func Encode(m *Machine, enc StateEncoding) (*seq.Circuit, error) {
	S := m.NumStates()
	if S == 0 {
		return nil, fmt.Errorf("fsm: cannot encode empty machine")
	}
	g := aig.New()
	ins := make([]aig.Lit, m.NumInputs)
	for i := range ins {
		ins[i] = g.PI(fmt.Sprintf("x%d", i))
	}

	var bits int
	switch enc {
	case OneHotState:
		bits = S
	case NaturalBinary:
		bits = 1
		for 1<<uint(bits) < S {
			bits++
		}
	default:
		return nil, fmt.Errorf("fsm: unknown encoding %d", enc)
	}
	ffs := make([]aig.Lit, bits)
	for i := range ffs {
		ffs[i] = g.PI("")
	}
	code := make([][]bool, S)
	for s := 0; s < S; s++ {
		code[s] = make([]bool, bits)
		if enc == OneHotState {
			code[s][s] = true
		} else {
			for b := 0; b < bits; b++ {
				code[s][b] = s>>uint(b)&1 == 1
			}
		}
	}

	next, outs, ok := encodeViaBDD(m, g, ins, ffs, code, bits, enc)
	if !ok {
		next, outs = encodeViaSOP(m, g, ins, ffs, code, bits, enc)
	}
	for o, lit := range outs {
		g.AddPO(lit, fmt.Sprintf("y%d", o))
	}
	init := make([]bool, bits)
	copy(init, code[m.Initial])
	return &seq.Circuit{G: g, NumInputs: m.NumInputs, Next: next, Init: init}, nil
}

// encodeViaBDD builds each target function as a BDD over [state bits |
// inputs] and converts it to AIG logic. It reports ok=false if the
// working manager exceeds the node budget.
func encodeViaBDD(m *Machine, g *aig.Graph, ins, ffs []aig.Lit, code [][]bool, bits int, enc StateEncoding) (next []aig.Lit, outs []aig.Lit, ok bool) {
	bm := bdd.New(bits + m.NumInputs)
	varMap := make(map[int]int, m.NumInputs)
	for j := 0; j < m.NumInputs; j++ {
		varMap[j] = bits + j
	}
	condMemo := make(map[bdd.Node]bdd.Node)
	cond := func(c bdd.Node) bdd.Node {
		if r, hit := condMemo[c]; hit {
			return r
		}
		r := m.Mgr.Translate(bm, c, varMap)
		condMemo[c] = r
		return r
	}
	cube := make([]bdd.Node, m.NumStates())
	for s := range cube {
		if enc == OneHotState {
			// Under the one-hot invariant the off bits are redundant;
			// using only the hot bit keeps the BDDs linear in |S|.
			cube[s] = bm.Var(s)
			continue
		}
		c := bdd.True
		for b := 0; b < bits; b++ {
			v := bm.Var(b)
			if !code[s][b] {
				v = bm.NVar(b)
			}
			c = bm.And(c, v)
		}
		cube[s] = c
	}

	nextF := make([]bdd.Node, bits)
	outF := make([]bdd.Node, m.NumOutputs)
	for i := range nextF {
		nextF[i] = bdd.False
	}
	for i := range outF {
		outF[i] = bdd.False
	}
	for s := 0; s < m.NumStates(); s++ {
		for _, tr := range m.Trans[s] {
			fire := bm.And(cube[s], cond(tr.Cond))
			if bm.NumNodes() > encodeNodeBudget {
				return nil, nil, false
			}
			if tr.Dst != DontCare {
				for b := 0; b < bits; b++ {
					if code[tr.Dst][b] {
						nextF[b] = bm.Or(nextF[b], fire)
					}
				}
			}
			for o, v := range tr.Out {
				if v == One {
					outF[o] = bm.Or(outF[o], fire)
				}
			}
			if bm.NumNodes() > encodeNodeBudget {
				return nil, nil, false
			}
		}
	}

	vars := make([]aig.Lit, bits+m.NumInputs)
	copy(vars, ffs)
	copy(vars[bits:], ins)
	conv := newBddToAig(bm, g, vars)
	next = make([]aig.Lit, bits)
	for b := range next {
		next[b] = conv.lit(nextF[b])
	}
	outs = make([]aig.Lit, m.NumOutputs)
	for o := range outs {
		outs[o] = conv.lit(outF[o])
	}
	return next, outs, true
}

// encodeViaSOP is the fallback: a sum of products over the transitions,
// with condition BDDs converted to logic individually.
func encodeViaSOP(m *Machine, g *aig.Graph, ins, ffs []aig.Lit, code [][]bool, bits int, enc StateEncoding) (next []aig.Lit, outs []aig.Lit) {
	stateIs := make([]aig.Lit, m.NumStates())
	for s := range stateIs {
		if enc == OneHotState {
			stateIs[s] = ffs[s]
			continue
		}
		terms := make([]aig.Lit, bits)
		for b := 0; b < bits; b++ {
			terms[b] = ffs[b].NotIf(!code[s][b])
		}
		stateIs[s] = g.AndN(terms...)
	}
	conv := newBddToAig(m.Mgr, g, ins)
	nextTerms := make([][]aig.Lit, bits)
	outTerms := make([][]aig.Lit, m.NumOutputs)
	for s := 0; s < m.NumStates(); s++ {
		for _, tr := range m.Trans[s] {
			fire := g.And(stateIs[s], conv.lit(tr.Cond))
			if tr.Dst != DontCare {
				for b := 0; b < bits; b++ {
					if code[tr.Dst][b] {
						nextTerms[b] = append(nextTerms[b], fire)
					}
				}
			}
			for o, v := range tr.Out {
				if v == One {
					outTerms[o] = append(outTerms[o], fire)
				}
			}
		}
	}
	next = make([]aig.Lit, bits)
	for b := range next {
		next[b] = g.OrN(nextTerms[b]...)
	}
	outs = make([]aig.Lit, m.NumOutputs)
	for o := range outs {
		outs[o] = g.OrN(outTerms[o]...)
	}
	return next, outs
}

// bddToAig converts BDD functions into AIG literals, sharing logic
// across calls. The memo is keyed on regular (polarity-stripped)
// nodes: with complement edges a function and its negation share one
// BDD slot, so keying on the raw edge would emit two separate mux
// trees for logic that differs only by an output inverter.
type bddToAig struct {
	mgr  *bdd.Manager
	g    *aig.Graph
	vars []aig.Lit
	memo map[bdd.Node]aig.Lit
}

func newBddToAig(mgr *bdd.Manager, g *aig.Graph, vars []aig.Lit) *bddToAig {
	return &bddToAig{mgr: mgr, g: g, vars: vars,
		memo: map[bdd.Node]aig.Lit{bdd.False: aig.Const0}}
}

func (c *bddToAig) lit(f bdd.Node) aig.Lit {
	if reg := bdd.Regular(f); reg != f {
		return c.lit(reg).Not()
	}
	if l, ok := c.memo[f]; ok {
		return l
	}
	v := c.mgr.TopVar(f)
	hi := c.lit(c.mgr.Hi(f))
	lo := c.lit(c.mgr.Lo(f))
	l := c.g.Mux(c.vars[v], hi, lo)
	c.memo[f] = l
	return l
}
