// Package fsm models incompletely specified Mealy machines with symbolic
// (BDD) input conditions, provides SAT-based exact state minimization in
// the style of MeMin (Abel & Reineke, ICCAD 2015), and synthesizes
// machines back into sequential circuits under natural-binary or one-hot
// state encodings — the three roles Sections V-B and V-C of the paper
// delegate to MeMin and the encoding step.
package fsm

import (
	"fmt"

	"circuitfold/internal/bdd"
)

// Tri is a three-valued output: 0, 1, or don't care.
type Tri int8

// Tri values.
const (
	X    Tri = -1 // unspecified
	Zero Tri = 0
	One  Tri = 1
)

func (t Tri) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	}
	return "-"
}

// DontCare marks an unspecified destination state.
const DontCare = -1

// Transition is one symbolic transition: when the machine is in the
// source state and the inputs satisfy Cond, it emits Out and moves to
// Dst (DontCare leaves the successor unspecified).
type Transition struct {
	Cond bdd.Node
	Out  []Tri
	Dst  int
}

// Machine is an incompletely specified Mealy machine. Transition
// conditions are BDDs over input variables 0..NumInputs-1 of Mgr. The
// conditions of one state's transitions must be pairwise disjoint; input
// combinations not covered by any transition are completely unspecified.
type Machine struct {
	Mgr        *bdd.Manager
	NumInputs  int
	NumOutputs int
	Initial    int
	Trans      [][]Transition
}

// NumStates returns the number of states.
func (m *Machine) NumStates() int { return len(m.Trans) }

// NumTransitions returns the total transition count.
func (m *Machine) NumTransitions() int {
	n := 0
	for _, ts := range m.Trans {
		n += len(ts)
	}
	return n
}

// Validate checks structural sanity and the disjointness of each state's
// transition conditions.
func (m *Machine) Validate() error {
	if m.Initial < 0 || m.Initial >= len(m.Trans) {
		return fmt.Errorf("fsm: initial state %d out of range", m.Initial)
	}
	for s, ts := range m.Trans {
		for i, tr := range ts {
			if len(tr.Out) != m.NumOutputs {
				return fmt.Errorf("fsm: state %d transition %d has %d outputs, want %d",
					s, i, len(tr.Out), m.NumOutputs)
			}
			if tr.Dst != DontCare && (tr.Dst < 0 || tr.Dst >= len(m.Trans)) {
				return fmt.Errorf("fsm: state %d transition %d destination %d out of range", s, i, tr.Dst)
			}
			if tr.Cond == bdd.False {
				return fmt.Errorf("fsm: state %d transition %d has empty condition", s, i)
			}
			for j := 0; j < i; j++ {
				if m.Mgr.And(tr.Cond, ts[j].Cond) != bdd.False {
					return fmt.Errorf("fsm: state %d transitions %d and %d overlap", s, j, i)
				}
			}
		}
	}
	return nil
}

// Lookup finds the transition of state s enabled by the input assignment
// (indexed by input variable); ok is false when the behavior is
// unspecified.
func (m *Machine) Lookup(s int, in []bool) (Transition, bool) {
	for _, tr := range m.Trans[s] {
		if m.Mgr.Eval(tr.Cond, in) {
			return tr, true
		}
	}
	return Transition{}, false
}

// Simulate runs the machine from its initial state over the input stream
// and returns the per-step outputs. Once an unspecified transition is
// hit, all remaining outputs are X.
func (m *Machine) Simulate(stream [][]bool) [][]Tri {
	out := make([][]Tri, len(stream))
	s := m.Initial
	dead := false
	for t, in := range stream {
		row := make([]Tri, m.NumOutputs)
		for i := range row {
			row[i] = X
		}
		if !dead {
			if tr, ok := m.Lookup(s, in); ok {
				copy(row, tr.Out)
				if tr.Dst == DontCare {
					dead = true
				} else {
					s = tr.Dst
				}
			} else {
				dead = true
			}
		}
		out[t] = row
	}
	return out
}

// Atoms returns a partition of the input space refined by every
// transition condition in the machine: within one atom, every state's
// behavior is uniform. It fails once the partition exceeds max cells.
func (m *Machine) Atoms(max int) ([]bdd.Node, error) {
	parts := []bdd.Node{bdd.True}
	seen := make(map[bdd.Node]bool)
	for _, ts := range m.Trans {
		for _, tr := range ts {
			if seen[tr.Cond] {
				continue
			}
			seen[tr.Cond] = true
			var next []bdd.Node
			for _, p := range parts {
				in := m.Mgr.And(p, tr.Cond)
				out := m.Mgr.Diff(p, tr.Cond)
				if in != bdd.False {
					next = append(next, in)
				}
				if out != bdd.False {
					next = append(next, out)
				}
			}
			parts = next
			if len(parts) > max {
				return nil, fmt.Errorf("fsm: atom partition exceeds %d cells", max)
			}
		}
	}
	return parts, nil
}
