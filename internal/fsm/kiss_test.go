package fsm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"circuitfold/internal/bdd"
)

func TestKISSRoundTrip(t *testing.T) {
	m := lastBit()
	var buf bytes.Buffer
	if err := WriteKISS(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKISS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStates() != 2 || back.NumInputs != 1 || back.NumOutputs != 1 {
		t.Fatalf("shape lost: %d states %d in %d out",
			back.NumStates(), back.NumInputs, back.NumOutputs)
	}
	covers(t, m, back, 40, 10, 1)
	covers(t, back, m, 40, 10, 2)
}

func TestKISSRoundTripWithDontCares(t *testing.T) {
	mgr := bdd.New(2)
	x0, x1 := mgr.Var(0), mgr.Var(1)
	m := &Machine{
		Mgr: mgr, NumInputs: 2, NumOutputs: 2, Initial: 0,
		Trans: [][]Transition{
			{
				{Cond: mgr.And(x0, x1), Out: []Tri{One, X}, Dst: 1},
				{Cond: mgr.Not(mgr.Or(x0, x1)), Out: []Tri{Zero, Zero}, Dst: DontCare},
			},
			{{Cond: bdd.True, Out: []Tri{X, One}, Dst: 0}},
		},
	}
	var buf bytes.Buffer
	if err := WriteKISS(&buf, m); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "*") {
		t.Fatalf("don't-care destination not written:\n%s", text)
	}
	back, err := ReadKISS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	covers(t, m, back, 60, 8, 3)
}

func TestKISSCubeExpansion(t *testing.T) {
	mgr := bdd.New(3)
	// x0 OR x2 has a 2-cube cover along BDD paths.
	f := mgr.Or(mgr.Var(0), mgr.Var(2))
	cubes := Cubes(mgr, f, 3)
	if len(cubes) == 0 {
		t.Fatal("no cubes")
	}
	// Every cube must satisfy f; together they must cover it exactly.
	covered := bdd.False
	for _, c := range cubes {
		cond := bdd.True
		for i, ch := range c {
			switch ch {
			case '0':
				cond = mgr.And(cond, mgr.NVar(i))
			case '1':
				cond = mgr.And(cond, mgr.Var(i))
			}
		}
		if mgr.And(cond, mgr.Not(f)) != bdd.False {
			t.Fatalf("cube %s leaves f", c)
		}
		covered = mgr.Or(covered, cond)
	}
	if covered != f {
		t.Fatal("cubes do not cover f")
	}
}

func TestReadKISSHandwritten(t *testing.T) {
	src := `
# a 2-state toggle
.i 1
.o 1
.p 4
.s 2
.r A
0 A A 0
1 A B 1
0 B B 1
1 B A 0
.e
`
	m, err := ReadKISS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 || m.Initial != 0 {
		t.Fatalf("parse wrong: %d states initial %d", m.NumStates(), m.Initial)
	}
	out := m.Simulate([][]bool{{true}, {false}, {true}})
	want := []Tri{One, One, Zero}
	for i := range want {
		if out[i][0] != want[i] {
			t.Fatalf("step %d: %v want %v", i, out[i][0], want[i])
		}
	}
}

func TestReadKISSErrors(t *testing.T) {
	if _, err := ReadKISS(strings.NewReader(".i 2\n.o 1\n0 A B 1\n")); err == nil {
		t.Fatal("cube width mismatch should fail")
	}
	if _, err := ReadKISS(strings.NewReader(".i 1\n.o 1\n0 A\n")); err == nil {
		t.Fatal("malformed row should fail")
	}
	if _, err := ReadKISS(strings.NewReader(".i 1\n.o 1\nq A B 1\n")); err == nil {
		t.Fatal("bad cube char should fail")
	}
}

func TestKISSMinimizeInterop(t *testing.T) {
	// Export, re-import, minimize: the classic MeMin flow.
	m := redundantLastBit()
	var buf bytes.Buffer
	if err := WriteKISS(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKISS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := Minimize(back, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() != 2 {
		t.Fatalf("minimized to %d states, want 2", mm.NumStates())
	}
	rng := rand.New(rand.NewSource(4))
	_ = rng
	covers(t, m, mm, 50, 10, 4)
}

func TestWriteDOT(t *testing.T) {
	m := lastBit()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, m, "lastbit"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", "init -> s0", "s0 -> s1", "1/0"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
