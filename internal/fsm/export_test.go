package fsm

// SetEncodeNodeBudgetForTest overrides the BDD budget of Encode so tests
// can force the sum-of-products fallback path; it returns a restore
// function.
func SetEncodeNodeBudgetForTest(n int) func() {
	old := encodeNodeBudget
	encodeNodeBudget = n
	return func() { encodeNodeBudget = old }
}
