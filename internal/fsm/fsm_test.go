package fsm

import (
	"math/rand"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
)

// lastBit builds the 2-state "remember the last input bit" machine:
// output = previous input, states track the stored bit.
func lastBit() *Machine {
	m := bdd.New(1)
	x := m.Var(0)
	nx := m.Not(x)
	return &Machine{
		Mgr: m, NumInputs: 1, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: nx, Out: []Tri{Zero}, Dst: 0}, {Cond: x, Out: []Tri{Zero}, Dst: 1}},
			{{Cond: nx, Out: []Tri{One}, Dst: 0}, {Cond: x, Out: []Tri{One}, Dst: 1}},
		},
	}
}

// redundantLastBit duplicates both states of lastBit.
func redundantLastBit() *Machine {
	m := bdd.New(1)
	x := m.Var(0)
	nx := m.Not(x)
	// States 0,2 behave alike; 1,3 behave alike.
	return &Machine{
		Mgr: m, NumInputs: 1, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: nx, Out: []Tri{Zero}, Dst: 2}, {Cond: x, Out: []Tri{Zero}, Dst: 1}},
			{{Cond: nx, Out: []Tri{One}, Dst: 0}, {Cond: x, Out: []Tri{One}, Dst: 3}},
			{{Cond: nx, Out: []Tri{Zero}, Dst: 0}, {Cond: x, Out: []Tri{Zero}, Dst: 3}},
			{{Cond: nx, Out: []Tri{One}, Dst: 2}, {Cond: x, Out: []Tri{One}, Dst: 1}},
		},
	}
}

func TestValidate(t *testing.T) {
	m := lastBit()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlapping conditions must be rejected.
	bad := lastBit()
	bad.Trans[0][1].Cond = bdd.True
	if bad.Validate() == nil {
		t.Fatal("overlap not detected")
	}
	bad2 := lastBit()
	bad2.Trans[0][0].Dst = 9
	if bad2.Validate() == nil {
		t.Fatal("bad destination not detected")
	}
	bad3 := lastBit()
	bad3.Initial = 5
	if bad3.Validate() == nil {
		t.Fatal("bad initial not detected")
	}
}

func TestSimulate(t *testing.T) {
	m := lastBit()
	stream := [][]bool{{true}, {false}, {true}, {true}}
	out := m.Simulate(stream)
	want := []Tri{Zero, One, Zero, One}
	for i := range want {
		if out[i][0] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, out[i][0], want[i])
		}
	}
}

func TestAtoms(t *testing.T) {
	m := lastBit()
	atoms, err := m.Atoms(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(atoms))
	}
	// The atom cap must trigger on a machine with many distinct conds.
	mgr := bdd.New(4)
	var trs []Transition
	full := bdd.True
	for v := 0; v < 4; v++ {
		c := mgr.And(full, mgr.Var(v))
		full = mgr.Diff(full, c)
		trs = append(trs, Transition{Cond: c, Out: []Tri{Zero}, Dst: 0})
	}
	big := &Machine{Mgr: mgr, NumInputs: 4, NumOutputs: 1, Initial: 0, Trans: [][]Transition{trs}}
	if _, err := big.Atoms(2); err == nil {
		t.Fatal("atom cap not enforced")
	}
}

// covers checks that min agrees with orig wherever orig is specified, on
// random input streams.
func covers(t *testing.T, orig, min *Machine, trials, length int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for tr := 0; tr < trials; tr++ {
		stream := make([][]bool, length)
		for i := range stream {
			row := make([]bool, orig.NumInputs)
			for j := range row {
				row[j] = rng.Intn(2) == 1
			}
			stream[i] = row
		}
		wo := orig.Simulate(stream)
		go_ := min.Simulate(stream)
		for i := range wo {
			for o := range wo[i] {
				if wo[i][o] != X && go_[i][o] != wo[i][o] {
					t.Fatalf("trial %d step %d output %d: orig %v minimized %v",
						tr, i, o, wo[i][o], go_[i][o])
				}
			}
		}
	}
}

func TestMinimizeRedundant(t *testing.T) {
	m := redundantLastBit()
	mm, err := Minimize(m, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() != 2 {
		t.Fatalf("minimized to %d states, want 2", mm.NumStates())
	}
	covers(t, m, mm, 50, 12, 1)
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	m := lastBit()
	mm, err := Minimize(m, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() != 2 {
		t.Fatalf("minimal machine grew or shrank: %d states", mm.NumStates())
	}
	covers(t, m, mm, 50, 10, 2)
}

func TestMinimizeExploitsDontCares(t *testing.T) {
	// Two states whose outputs only differ where one is unspecified, and
	// whose successors close within the merged class: they collapse to 1.
	mgr := bdd.New(1)
	x := mgr.Var(0)
	nx := mgr.Not(x)
	m := &Machine{
		Mgr: mgr, NumInputs: 1, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: x, Out: []Tri{Zero}, Dst: 0}, {Cond: nx, Out: []Tri{One}, Dst: 0}},
			{{Cond: x, Out: []Tri{Zero}, Dst: 1}, {Cond: nx, Out: []Tri{X}, Dst: 0}},
		},
	}
	mm, err := Minimize(m, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() != 1 {
		t.Fatalf("minimized to %d states, want 1", mm.NumStates())
	}
	covers(t, m, mm, 80, 10, 3)
}

func TestMinimizeIncompatibleStates(t *testing.T) {
	// Completely specified machine with distinct outputs per state: no
	// reduction possible below the incompatibility clique.
	mgr := bdd.New(1)
	m := &Machine{
		Mgr: mgr, NumInputs: 1, NumOutputs: 2, Initial: 0,
		Trans: [][]Transition{
			{{Cond: bdd.True, Out: []Tri{Zero, Zero}, Dst: 1}},
			{{Cond: bdd.True, Out: []Tri{Zero, One}, Dst: 2}},
			{{Cond: bdd.True, Out: []Tri{One, Zero}, Dst: 0}},
		},
	}
	mm, err := Minimize(m, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3", mm.NumStates())
	}
	covers(t, m, mm, 40, 9, 4)
}

func TestMinimizeDontCareDestination(t *testing.T) {
	// A terminal frame state with a don't-care destination minimizes
	// without error and keeps covering behavior.
	mgr := bdd.New(1)
	x := mgr.Var(0)
	nx := mgr.Not(x)
	m := &Machine{
		Mgr: mgr, NumInputs: 1, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: x, Out: []Tri{One}, Dst: 1}, {Cond: nx, Out: []Tri{Zero}, Dst: 1}},
			{{Cond: bdd.True, Out: []Tri{One}, Dst: DontCare}},
		},
	}
	mm, err := Minimize(m, DefaultMinimizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mm.NumStates() > 2 {
		t.Fatalf("minimized to %d states, want <= 2", mm.NumStates())
	}
	covers(t, m, mm, 40, 6, 5)
}

func TestEncodeBothEncodings(t *testing.T) {
	for _, enc := range []StateEncoding{NaturalBinary, OneHotState} {
		m := lastBit()
		c, err := Encode(m, enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		wantFF := 1
		if enc == OneHotState {
			wantFF = 2
		}
		if c.NumLatches() != wantFF {
			t.Fatalf("%v: %d latches, want %d", enc, c.NumLatches(), wantFF)
		}
		// Circuit behavior must match the machine on random streams.
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 30; trial++ {
			stream := make([][]bool, 8)
			for i := range stream {
				stream[i] = []bool{rng.Intn(2) == 1}
			}
			mo := m.Simulate(stream)
			co := c.Simulate(stream)
			for i := range mo {
				if mo[i][0] != X && (co[i][0] != (mo[i][0] == One)) {
					t.Fatalf("%v trial %d step %d: machine %v circuit %v",
						enc, trial, i, mo[i][0], co[i][0])
				}
			}
		}
	}
}

func TestEncodeResolvesDontCares(t *testing.T) {
	mgr := bdd.New(2)
	x0 := mgr.Var(0)
	m := &Machine{
		Mgr: mgr, NumInputs: 2, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: x0, Out: []Tri{X}, Dst: DontCare}, {Cond: mgr.Not(x0), Out: []Tri{One}, Dst: 0}},
		},
	}
	c, err := Encode(m, NaturalBinary)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Step(make([]bool, c.NumLatches()), []bool{true, false})
	if out[0] {
		t.Fatal("don't-care output should resolve to 0")
	}
	out, _ = c.Step(make([]bool, c.NumLatches()), []bool{false, false})
	if !out[0] {
		t.Fatal("specified output lost")
	}
}

func TestMachineCounters(t *testing.T) {
	m := redundantLastBit()
	if m.NumStates() != 4 || m.NumTransitions() != 8 {
		t.Fatalf("counters wrong: %d states %d transitions", m.NumStates(), m.NumTransitions())
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "-" {
		t.Fatal("Tri strings wrong")
	}
	if NaturalBinary.String() != "nat" || OneHotState.String() != "1hot" {
		t.Fatal("encoding strings wrong")
	}
}

func TestLookup(t *testing.T) {
	m := lastBit()
	tr, ok := m.Lookup(0, []bool{true})
	if !ok || tr.Dst != 1 {
		t.Fatalf("lookup wrong: %v %v", tr, ok)
	}
	// A machine with an uncovered input region.
	mgr := bdd.New(1)
	p := &Machine{Mgr: mgr, NumInputs: 1, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{{{Cond: mgr.Var(0), Out: []Tri{One}, Dst: 0}}}}
	if _, ok := p.Lookup(0, []bool{false}); ok {
		t.Fatal("uncovered input should not match")
	}
}

func TestEncodeSOPFallbackMatchesBDDPath(t *testing.T) {
	for _, enc := range []StateEncoding{NaturalBinary, OneHotState} {
		m := redundantLastBit()
		viaBDD, err := Encode(m, enc)
		if err != nil {
			t.Fatal(err)
		}
		restore := SetEncodeNodeBudgetForTest(1) // force the SOP fallback
		viaSOP, err := Encode(m, enc)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 40; trial++ {
			stream := make([][]bool, 8)
			for i := range stream {
				stream[i] = []bool{rng.Intn(2) == 1}
			}
			a := viaBDD.Simulate(stream)
			b := viaSOP.Simulate(stream)
			for i := range a {
				if a[i][0] != b[i][0] {
					t.Fatalf("%v: SOP and BDD encodings disagree at step %d", enc, i)
				}
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Machine{Mgr: bdd.New(1)}, NaturalBinary); err == nil {
		t.Fatal("empty machine should fail")
	}
	m := lastBit()
	if _, err := Encode(m, StateEncoding(99)); err == nil {
		t.Fatal("unknown encoding should fail")
	}
}

// TestEncodeSharesComplementConditions pins the complement-edge
// contract of the BDD-to-AIG converter: a function and its negation
// share one BDD slot, so converting both must reuse one mux tree plus
// an inverter — structural equality of conditions is decided on the
// regular node and the polarity, never on raw Node equality.
func TestEncodeSharesComplementConditions(t *testing.T) {
	mgr := bdd.New(3)
	g := aig.New()
	vars := []aig.Lit{g.PI("x0"), g.PI("x1"), g.PI("x2")}
	conv := newBddToAig(mgr, g, vars)

	f := mgr.And(mgr.Xor(mgr.Var(0), mgr.Var(1)), mgr.Var(2))
	l := conv.lit(f)
	before := g.NumAnds()
	nl := conv.lit(mgr.Not(f))
	if nl != l.Not() {
		t.Fatalf("lit(NOT f) = %v, want %v", nl, l.Not())
	}
	if g.NumAnds() != before {
		t.Fatalf("converting the complement added %d ands, want 0", g.NumAnds()-before)
	}
	// Terminals resolve through the same polarity rule.
	if conv.lit(bdd.True) != conv.lit(bdd.False).Not() {
		t.Fatal("terminal literals are not complements")
	}
}

// TestEncodeComplementOutputs runs a machine whose transitions use a
// condition and its complement — the regression shape for a fold whose
// output is the complement of a shared node — through both encodings
// and checks circuit behavior against machine simulation.
func TestEncodeComplementOutputs(t *testing.T) {
	mgr := bdd.New(2)
	f := mgr.Xor(mgr.Var(0), mgr.Var(1))
	nf := mgr.Not(f)
	m := &Machine{
		Mgr: mgr, NumInputs: 2, NumOutputs: 1, Initial: 0,
		Trans: [][]Transition{
			{{Cond: f, Out: []Tri{One}, Dst: 0}, {Cond: nf, Out: []Tri{Zero}, Dst: 1}},
			{{Cond: f, Out: []Tri{Zero}, Dst: 1}, {Cond: nf, Out: []Tri{One}, Dst: 0}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, enc := range []StateEncoding{NaturalBinary, OneHotState} {
		c, err := Encode(m, enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			stream := make([][]bool, 6)
			for i := range stream {
				stream[i] = []bool{rng.Intn(2) == 1, rng.Intn(2) == 1}
			}
			mo := m.Simulate(stream)
			co := c.Simulate(stream)
			for i := range mo {
				if mo[i][0] != X && (co[i][0] != (mo[i][0] == One)) {
					t.Fatalf("%v trial %d step %d: machine %v circuit %v",
						enc, trial, i, mo[i][0], co[i][0])
				}
			}
		}
	}
}
