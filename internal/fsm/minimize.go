package fsm

import (
	"fmt"
	"time"

	"circuitfold/internal/bdd"
	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/sat"
)

// MinimizeOptions bounds the exact minimization, mirroring the paper's
// 300-second MeMin timeout: work beyond any bound aborts with an error
// (reported as "-" in the tables).
type MinimizeOptions struct {
	// MaxAtoms bounds the explicit input-partition size.
	MaxAtoms int
	// ConflictBudget bounds each SAT solve; 0 means unlimited.
	ConflictBudget int64
	// MaxLearntLits hard-caps each solver's learnt-clause database (in
	// live literals), bounding solver memory; 0 means unlimited. See
	// sat.SetResourceLimit.
	MaxLearntLits int64
	// Timeout bounds the total wall-clock time; 0 means unlimited.
	Timeout time.Duration
	// MaxClasses bounds the number of classes tried before giving up.
	MaxClasses int
	// MaxStates skips minimization of machines above this size (0 means
	// 400); the paper's large instances also time out and run "nm".
	MaxStates int
	// Stop, when non-nil, is polled during compatibility analysis and
	// inside each SAT solve; a non-nil result aborts minimization with
	// that error (typically pipeline.ErrCanceled/ErrBudgetExceeded).
	Stop func() error
	// Span, when non-nil, is the parent under which each class-count
	// attempt opens a "memin.iter" child span (and its SAT solve a
	// nested "sat.solve" span).
	Span *obs.Span
	// Metrics, when non-nil, receives the fsm.states gauge and the
	// solver's sat.* counters.
	Metrics *obs.Registry
	// Solvers, when non-nil, supplies each class-count attempt's SAT
	// solver and receives it back afterwards, so the per-variable
	// arrays warm up across the attempt sequence (and across pooled
	// jobs). Solvers are hard-reset between uses (sat.Solver.Reset);
	// nil allocates a fresh solver per attempt.
	Solvers *sat.Pool
}

// DefaultMinimizeOptions returns the bounds used by the experiment
// harness.
func DefaultMinimizeOptions() MinimizeOptions {
	return MinimizeOptions{MaxAtoms: 2048, ConflictBudget: 500000, Timeout: 30 * time.Second, MaxStates: 400}
}

// Minimize performs SAT-based exact minimization of the incompletely
// specified machine in the style of MeMin: it computes pairwise state
// compatibility, derives a lower bound from a greedy clique of mutually
// incompatible states, and searches for the smallest closed cover of
// compatible classes by solving a sequence of SAT instances. It returns
// the minimized machine. The result covers the original behavior: on any
// input sequence, wherever the original machine's output is specified the
// minimized machine agrees.
func Minimize(m *Machine, opt MinimizeOptions) (*Machine, error) {
	start := time.Now()
	var stopErr error
	deadline := func() bool {
		if opt.Stop != nil {
			if err := opt.Stop(); err != nil {
				stopErr = err
				return true
			}
		}
		return opt.Timeout > 0 && time.Since(start) > opt.Timeout
	}
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = 2048
	}
	n := m.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("fsm: empty machine")
	}
	if opt.MaxStates > 0 && n > opt.MaxStates {
		return nil, fmt.Errorf("fsm: %d states exceeds minimization bound %d", n, opt.MaxStates)
	}
	opt.Metrics.Gauge(obs.MFSMStates).Set(int64(n))
	atoms, err := m.Atoms(opt.MaxAtoms)
	if err != nil {
		return nil, err
	}
	na := len(atoms)

	// Explicit behavior tables per state and atom. Atoms refine every
	// condition, so one representative minterm per atom decides which
	// transition (if any) the whole atom takes — far cheaper than BDD
	// intersections per (state, atom, transition) triple.
	reps := make([][]bool, na)
	for a, atom := range atoms {
		rep, ok := m.Mgr.AnySat(atom)
		if !ok {
			return nil, fmt.Errorf("fsm: empty atom in partition")
		}
		reps[a] = rep
	}
	succ := make([][]int, n)
	outs := make([][][]Tri, n)
	for s := 0; s < n; s++ {
		succ[s] = make([]int, na)
		outs[s] = make([][]Tri, na)
		for a := range succ[s] {
			succ[s][a] = DontCare
			if tr, ok := m.Lookup(s, reps[a]); ok {
				succ[s][a] = tr.Dst
				outs[s][a] = tr.Out
			}
		}
	}

	// Pairwise incompatibility fixpoint.
	incompat := make([][]bool, n)
	for i := range incompat {
		incompat[i] = make([]bool, n)
	}
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			for a := 0; a < na; a++ {
				if conflictingOutputs(outs[s][a], outs[t][a]) {
					incompat[s][t], incompat[t][s] = true, true
					break
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			for t := s + 1; t < n; t++ {
				if incompat[s][t] {
					continue
				}
				for a := 0; a < na; a++ {
					u, v := succ[s][a], succ[t][a]
					if u != DontCare && v != DontCare && incompat[u][v] {
						incompat[s][t], incompat[t][s] = true, true
						changed = true
						break
					}
				}
			}
		}
		if deadline() {
			if stopErr != nil {
				return nil, fmt.Errorf("fsm: minimization stopped during compatibility analysis: %w", stopErr)
			}
			return nil, fmt.Errorf("fsm: minimization timeout during compatibility analysis")
		}
	}

	// Greedy clique of mutually incompatible states: a lower bound on the
	// class count and a partial solution for symmetry breaking.
	deg := make([]int, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if incompat[s][t] {
				deg[s]++
			}
		}
	}
	var clique []int
	for {
		best, bestDeg := -1, -1
		for s := 0; s < n; s++ {
			ok := true
			for _, c := range clique {
				if !incompat[s][c] {
					ok = false
					break
				}
			}
			if ok && deg[s] > bestDeg {
				best, bestDeg = s, deg[s]
			}
		}
		if best < 0 {
			break
		}
		clique = append(clique, best)
		deg[best] = -2 // do not pick twice
	}
	lower := len(clique)
	if lower == 0 {
		lower = 1
	}

	maxK := n
	if opt.MaxClasses > 0 && opt.MaxClasses < maxK {
		maxK = opt.MaxClasses
	}
	for k := lower; k <= maxK; k++ {
		if deadline() {
			if stopErr != nil {
				return nil, fmt.Errorf("fsm: minimization stopped at k=%d: %w", k, stopErr)
			}
			return nil, fmt.Errorf("fsm: minimization timeout at k=%d", k)
		}
		if err := fault.Point(fault.PointMeMinIter); err != nil {
			return nil, fmt.Errorf("fsm: minimization fault at k=%d: %w", k, err)
		}
		mm, status := trySolve(m, atoms, succ, outs, incompat, clique, k, opt)
		switch status {
		case sat.Sat:
			return mm, nil
		case sat.Unknown:
			if opt.Stop != nil {
				if err := opt.Stop(); err != nil {
					return nil, fmt.Errorf("fsm: minimization stopped at k=%d: %w", k, err)
				}
			}
			// Out of conflicts or learnt-literal headroom either way:
			// classify as a resource-limit (and so budget) failure.
			return nil, fmt.Errorf("fsm: SAT budget exhausted at k=%d: %w", k, sat.ErrResourceLimit)
		}
	}
	return nil, fmt.Errorf("fsm: no solution up to %d classes", maxK)
}

// conflictingOutputs reports whether two output rows disagree on a
// commonly specified position. Unspecified rows (nil) never conflict.
func conflictingOutputs(a, b []Tri) bool {
	if a == nil || b == nil {
		return false
	}
	for i := range a {
		if a[i] != X && b[i] != X && a[i] != b[i] {
			return true
		}
	}
	return false
}

// trySolve encodes "a closed cover with k classes exists" into SAT and
// extracts the minimized machine when satisfiable.
func trySolve(m *Machine, atoms []bdd.Node, succ [][]int, outs [][][]Tri,
	incompat [][]bool, clique []int, k int, opt MinimizeOptions) (*Machine, sat.Status) {
	n := m.NumStates()
	na := len(atoms)
	sp := opt.Span.Child("memin.iter", "fsm")
	sp.SetInt("k", int64(k))
	sp.SetInt("states", int64(n))
	sp.SetInt("atoms", int64(na))
	defer sp.End()
	s2 := opt.Solvers.Get()
	defer opt.Solvers.Put(s2) // models are fully extracted before return
	if opt.Span != nil || opt.Metrics != nil {
		s2.SetObserver(sp, opt.Metrics)
	}
	if opt.ConflictBudget > 0 {
		s2.SetBudget(opt.ConflictBudget)
	}
	if opt.MaxLearntLits > 0 {
		s2.SetResourceLimit(0, opt.MaxLearntLits)
	}
	if opt.Stop != nil {
		s2.SetInterrupt(func() bool { return opt.Stop() != nil })
	}
	// mem[s][i]: state s belongs to class i.
	mem := make([][]int, n)
	for s := range mem {
		mem[s] = make([]int, k)
		for i := range mem[s] {
			mem[s][i] = s2.NewVar()
		}
	}
	// nxt[i][a][j]: the successor class of class i under atom a is j.
	nxt := make([][][]int, k)
	for i := range nxt {
		nxt[i] = make([][]int, na)
		for a := range nxt[i] {
			nxt[i][a] = make([]int, k)
			for j := range nxt[i][a] {
				nxt[i][a][j] = s2.NewVar()
			}
		}
	}
	pos := func(v int) sat.Lit { return sat.MkLit(v, false) }
	neg := func(v int) sat.Lit { return sat.MkLit(v, true) }

	// Symmetry breaking: clique states are pinned to distinct classes.
	for c, s := range clique {
		if c >= k {
			break
		}
		s2.AddClause(pos(mem[s][c]))
		for i := 0; i < k; i++ {
			if i != c {
				s2.AddClause(neg(mem[s][i]))
			}
		}
	}
	// Covering: every state is in some class.
	for s := 0; s < n; s++ {
		cl := make([]sat.Lit, k)
		for i := 0; i < k; i++ {
			cl[i] = pos(mem[s][i])
		}
		s2.AddClause(cl...)
	}
	// Consistency: incompatible states never share a class.
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if !incompat[s][t] {
				continue
			}
			for i := 0; i < k; i++ {
				s2.AddClause(neg(mem[s][i]), neg(mem[t][i]))
			}
		}
	}
	// Closure: if state s (with a defined successor under atom a) is in
	// class i, and class i maps atom a to class j, then succ(s,a) is in
	// class j. Each (i,a) maps somewhere.
	for i := 0; i < k; i++ {
		for a := 0; a < na; a++ {
			cl := make([]sat.Lit, k)
			for j := 0; j < k; j++ {
				cl[j] = pos(nxt[i][a][j])
			}
			s2.AddClause(cl...)
			for s := 0; s < n; s++ {
				if succ[s][a] == DontCare {
					continue
				}
				for j := 0; j < k; j++ {
					s2.AddClause(neg(mem[s][i]), neg(nxt[i][a][j]), pos(mem[succ[s][a]][j]))
				}
			}
		}
	}

	status := s2.Solve()
	sp.SetStr("status", status.String())
	if status != sat.Sat {
		return nil, status
	}

	// Extract the minimized machine.
	members := make([][]int, k)
	for s := 0; s < n; s++ {
		for i := 0; i < k; i++ {
			if s2.Value(mem[s][i]) {
				members[i] = append(members[i], s)
			}
		}
	}
	initial := -1
	for i := 0; i < k; i++ {
		for _, s := range members[i] {
			if s == m.Initial {
				initial = i
				break
			}
		}
		if initial >= 0 {
			break
		}
	}
	trans := make([][]Transition, k)
	for i := 0; i < k; i++ {
		// Group atoms by (joined outputs, successor class).
		type beh struct {
			key string
			out []Tri
			dst int
			cnd bdd.Node
		}
		var behs []beh
		index := make(map[string]int)
		for a := 0; a < na; a++ {
			out := make([]Tri, m.NumOutputs)
			for o := range out {
				out[o] = X
			}
			specified := false
			for _, s := range members[i] {
				if outs[s][a] == nil {
					continue
				}
				for o, v := range outs[s][a] {
					if v != X {
						out[o] = v
						specified = true
					}
				}
			}
			dst := DontCare
			anySucc := false
			for _, s := range members[i] {
				if succ[s][a] != DontCare {
					anySucc = true
					break
				}
			}
			if anySucc {
				for j := 0; j < k; j++ {
					if s2.Value(nxt[i][a][j]) {
						dst = j
						break
					}
				}
			}
			if !specified && dst == DontCare {
				continue // fully unspecified: leave uncovered
			}
			key := fmt.Sprint(out, dst)
			if bi, ok := index[key]; ok {
				behs[bi].cnd = m.Mgr.Or(behs[bi].cnd, atoms[a])
			} else {
				index[key] = len(behs)
				behs = append(behs, beh{key: key, out: out, dst: dst, cnd: atoms[a]})
			}
		}
		for _, b := range behs {
			trans[i] = append(trans[i], Transition{Cond: b.cnd, Out: b.out, Dst: b.dst})
		}
	}
	return &Machine{
		Mgr:        m.Mgr,
		NumInputs:  m.NumInputs,
		NumOutputs: m.NumOutputs,
		Initial:    initial,
		Trans:      trans,
	}, sat.Sat
}
