package fsm

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"circuitfold/internal/bdd"
)

// WriteKISS writes the machine in KISS2 format, the FSM interchange
// format consumed by MeMin and classic sequential synthesis tools.
// Symbolic transition conditions are expanded into input cubes (one KISS
// row per BDD path), don't-care destinations are written as "*", and
// unspecified outputs as "-".
func WriteKISS(w io.Writer, m *Machine) error {
	bw := bufio.NewWriter(w)
	rows := 0
	var lines []string
	for s, ts := range m.Trans {
		for _, tr := range ts {
			for _, cube := range Cubes(m.Mgr, tr.Cond, m.NumInputs) {
				dst := "*"
				if tr.Dst != DontCare {
					dst = fmt.Sprintf("s%d", tr.Dst)
				}
				var out strings.Builder
				for _, v := range tr.Out {
					out.WriteString(v.String())
				}
				lines = append(lines, fmt.Sprintf("%s s%d %s %s", cube, s, dst, out.String()))
				rows++
			}
		}
	}
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n.s %d\n.r s%d\n",
		m.NumInputs, m.NumOutputs, rows, m.NumStates(), m.Initial)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// Cubes expands a BDD into a disjoint cover of input cubes ('0', '1',
// '-' per variable position); one cube per path to the True terminal.
// The disjunction of the cubes is exactly f, which is what the KISS
// writer and the checkpoint codec in internal/core rely on to
// serialize symbolic transition conditions losslessly.
func Cubes(mgr *bdd.Manager, f bdd.Node, numInputs int) []string {
	var out []string
	cube := make([]byte, numInputs)
	for i := range cube {
		cube[i] = '-'
	}
	var walk func(n bdd.Node)
	walk = func(n bdd.Node) {
		if n == bdd.False {
			return
		}
		if n == bdd.True {
			out = append(out, string(cube))
			return
		}
		v := mgr.TopVar(n)
		cube[v] = '0'
		walk(mgr.Lo(n))
		cube[v] = '1'
		walk(mgr.Hi(n))
		cube[v] = '-'
	}
	walk(f)
	return out
}

// ReadKISS parses a KISS2 machine. State names are arbitrary strings;
// "*" (or a missing row) leaves behavior unspecified.
func ReadKISS(r io.Reader) (*Machine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var numIn, numOut int
	reset := ""
	type row struct {
		cube, src, dst, out string
	}
	var rows []row
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case ".i":
			fmt.Sscanf(f[1], "%d", &numIn)
		case ".o":
			fmt.Sscanf(f[1], "%d", &numOut)
		case ".p", ".s":
			// advisory counts
		case ".r":
			if len(f) > 1 {
				reset = f[1]
			}
		case ".e", ".end":
			// done
		default:
			if len(f) != 4 {
				return nil, fmt.Errorf("fsm: malformed KISS row %q", line)
			}
			rows = append(rows, row{f[0], f[1], f[2], f[3]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numIn == 0 && len(rows) > 0 {
		numIn = len(rows[0].cube)
	}
	if numOut == 0 && len(rows) > 0 {
		numOut = len(rows[0].out)
	}

	mgr := bdd.New(numIn)
	stateID := map[string]int{}
	idOf := func(name string) int {
		if name == "*" {
			return DontCare
		}
		if id, ok := stateID[name]; ok {
			return id
		}
		id := len(stateID)
		stateID[name] = id
		return id
	}
	if reset != "" {
		idOf(reset)
	}
	// First pass: assign state ids in order of appearance.
	for _, rw := range rows {
		idOf(rw.src)
		if rw.dst != "*" {
			idOf(rw.dst)
		}
	}
	trans := make([][]Transition, len(stateID))
	for _, rw := range rows {
		if len(rw.cube) != numIn {
			return nil, fmt.Errorf("fsm: cube %q does not match .i %d", rw.cube, numIn)
		}
		if len(rw.out) != numOut {
			return nil, fmt.Errorf("fsm: outputs %q do not match .o %d", rw.out, numOut)
		}
		cond := bdd.True
		for i, ch := range rw.cube {
			switch ch {
			case '0':
				cond = mgr.And(cond, mgr.NVar(i))
			case '1':
				cond = mgr.And(cond, mgr.Var(i))
			case '-':
			default:
				return nil, fmt.Errorf("fsm: bad cube character %q", string(ch))
			}
		}
		out := make([]Tri, numOut)
		for i, ch := range rw.out {
			switch ch {
			case '0':
				out[i] = Zero
			case '1':
				out[i] = One
			case '-':
				out[i] = X
			default:
				return nil, fmt.Errorf("fsm: bad output character %q", string(ch))
			}
		}
		src := idOf(rw.src)
		trans[src] = append(trans[src], Transition{Cond: cond, Out: out, Dst: idOf(rw.dst)})
	}
	initial := 0
	if reset != "" {
		initial = stateID[reset]
	}
	m := &Machine{Mgr: mgr, NumInputs: numIn, NumOutputs: numOut, Initial: initial, Trans: trans}
	return m, m.Validate()
}

// WriteDOT renders the machine as a Graphviz state diagram in the style
// of the paper's Figure 6: states as circles (the initial one marked),
// edges labeled "inputs/outputs" with one label per transition cube.
func WriteDOT(w io.Writer, m *Machine, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  init [shape=point];\n", name)
	for s := range m.Trans {
		fmt.Fprintf(bw, "  s%d [shape=circle];\n", s)
	}
	fmt.Fprintf(bw, "  dc [shape=doublecircle label=\"*\"];\n")
	fmt.Fprintf(bw, "  init -> s%d;\n", m.Initial)
	for s, ts := range m.Trans {
		for _, tr := range ts {
			dst := "dc"
			if tr.Dst != DontCare {
				dst = fmt.Sprintf("s%d", tr.Dst)
			}
			var out strings.Builder
			for _, v := range tr.Out {
				out.WriteString(v.String())
			}
			for _, cube := range Cubes(m.Mgr, tr.Cond, m.NumInputs) {
				fmt.Fprintf(bw, "  s%d -> %s [label=\"%s/%s\"];\n", s, dst, cube, out.String())
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
