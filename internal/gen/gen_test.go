package gen

import (
	"testing"

	"circuitfold/internal/aig"
)

func TestRegistryCompleteAndConsistent(t *testing.T) {
	names := Names()
	if len(names) != 28 { // 27 benchmarks + adder3
		t.Fatalf("registry has %d circuits, want 28", len(names))
	}
	if names[0] != "adder3" {
		t.Fatalf("first name = %q", names[0])
	}
	for _, n := range names {
		info, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Description == "" {
			t.Fatalf("%s: missing description", n)
		}
	}
	if _, err := Lookup("nonesuch"); err == nil {
		t.Fatal("lookup of unknown name should fail")
	}
	if _, err := Build("nonesuch"); err == nil {
		t.Fatal("build of unknown name should fail")
	}
}

// smallSuite lists the circuits cheap enough to rebuild in every test.
var smallSuite = []string{
	"adder3", "64-adder", "128-adder", "apex2", "arbiter", "C7552",
	"des", "e64", "g216", "i2", "i3", "i4", "i6", "i7", "i10", "toolarge",
}

func TestPinCountsMatchTableI(t *testing.T) {
	want := map[string][2]int{
		"adder3": {6, 4}, "64-adder": {128, 65}, "128-adder": {256, 129},
		"apex2": {38, 3}, "arbiter": {256, 1}, "b14_C": {276, 299},
		"b15_C": {484, 519}, "b17_C": {380, 3}, "b20_C": {521, 512},
		"b21_C": {521, 512}, "b22_C": {766, 757}, "C7552": {207, 108},
		"des": {256, 245}, "e64": {65, 65}, "g216": {216, 216},
		"g625": {625, 625}, "g1296": {1296, 1296}, "hyp": {256, 128},
		"i2": {201, 1}, "i3": {132, 6}, "i4": {192, 6}, "i6": {138, 67},
		"i7": {199, 67}, "i10": {257, 224}, "max": {512, 130},
		"memctrl": {1204, 1231}, "toolarge": {38, 3}, "voter": {1001, 1},
	}
	for name, w := range want {
		info, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.PIs != w[0] || info.POs != w[1] {
			t.Fatalf("%s: registered %d/%d, want %d/%d", name, info.PIs, info.POs, w[0], w[1])
		}
	}
}

func TestBuildSmallSuite(t *testing.T) {
	for _, name := range smallSuite {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumAnds() == 0 {
			t.Fatalf("%s: empty circuit", name)
		}
	}
}

func TestBuildLargeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuits skipped in -short mode")
	}
	for _, name := range []string{"b14_C", "b15_C", "b20_C", "b21_C", "b22_C", "memctrl", "g625", "g1296", "max", "voter", "hyp"} {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumAnds() < 100 {
			t.Fatalf("%s: suspiciously small (%d ANDs)", name, g.NumAnds())
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"apex2", "b14_C", "i10", "des"} {
		a := MustBuild(name)
		b := MustBuild(name)
		if a.NumAnds() != b.NumAnds() || a.NumPIs() != b.NumPIs() {
			t.Fatalf("%s: builds differ structurally", name)
		}
		in := make([]uint64, a.NumPIs())
		for i := range in {
			in[i] = uint64(i)*0x9e3779b97f4a7c15 + 12345
		}
		oa, ob := a.SimWords(in), b.SimWords(in)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("%s: builds differ functionally at output %d", name, i)
			}
		}
	}
}

func TestAdderFunctional(t *testing.T) {
	g := MustBuild("adder3")
	// a = 5 (a0=1,a1=0,a2=1), b = 6 (b0=0,b1=1,b2=1): 5 + 6 = 11 = 1011.
	in := []bool{true, false, false, true, true, true} // a0,b0,a1,b1,a2,b2
	out := g.Eval(in)
	want := []bool{true, true, false, true} // s0=1, s1=1, s2=0, cout=1
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("adder3 output %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestVoterFunctional(t *testing.T) {
	g := MustBuild("voter")
	in := make([]bool, 1001)
	for i := 0; i < 500; i++ {
		in[i*2] = true // 500 ones: not a majority
	}
	if g.Eval(in)[0] {
		t.Fatal("500 of 1001 should not be a majority")
	}
	in[1] = true // 501 ones
	if !g.Eval(in)[0] {
		t.Fatal("501 of 1001 should be a majority")
	}
}

func TestE64Priority(t *testing.T) {
	g := MustBuild("e64")
	in := make([]bool, 65)
	in[5], in[17] = true, true
	out := g.Eval(in)
	for i := 0; i < 64; i++ {
		if out[i] != (i == 5) {
			t.Fatalf("e64 output %d wrong", i)
		}
	}
	if out[64] {
		t.Fatal("none flag should be low")
	}
	out = g.Eval(make([]bool, 65))
	if !out[64] {
		t.Fatal("none flag should be high with no requests")
	}
}

func TestArbiterFunctional(t *testing.T) {
	g := MustBuild("arbiter")
	in := make([]bool, 256)
	in[7], in[12] = true, true // first request at odd index 7
	if g.Eval(in)[0] {
		t.Fatal("grant at odd index should output 0")
	}
	in[4] = true // now first request at even index 4
	if !g.Eval(in)[0] {
		t.Fatal("grant at even index should output 1")
	}
}

func TestI2Functional(t *testing.T) {
	g := MustBuild("i2")
	in := make([]bool, 201)
	if g.Eval(in)[0] {
		t.Fatal("all-zero input should give 0")
	}
	in[200] = true
	if !g.Eval(in)[0] {
		t.Fatal("direct input should set the output")
	}
	in[200] = false
	in[10], in[11] = true, true
	if !g.Eval(in)[0] {
		t.Fatal("a full pair should set the output")
	}
	in[11] = false
	if g.Eval(in)[0] {
		t.Fatal("half a pair should not set the output")
	}
}

func TestMulVectorsSmall(t *testing.T) {
	g := aig.New()
	a := []aig.Lit{g.PI(""), g.PI(""), g.PI("")}
	b := []aig.Lit{g.PI(""), g.PI(""), g.PI("")}
	prod := mulVectors(g, a, b)
	for _, p := range prod {
		g.AddPO(p, "")
	}
	for av := uint64(0); av < 8; av++ {
		for bv := uint64(0); bv < 8; bv++ {
			out := g.EvalUint(av | bv<<3)
			var got uint64
			for i, o := range out {
				if o {
					got |= 1 << uint(i)
				}
			}
			if got != av*bv {
				t.Fatalf("%d*%d = %d, want %d", av, bv, got, av*bv)
			}
		}
	}
}

func TestIsqrtSmall(t *testing.T) {
	g := aig.New()
	x := make([]aig.Lit, 8)
	for i := range x {
		x[i] = g.PI("")
	}
	root := isqrt(g, x, 4)
	for _, r := range root {
		g.AddPO(r, "")
	}
	for v := uint64(0); v < 256; v++ {
		out := g.EvalUint(v)
		var got uint64
		for i, o := range out {
			if o {
				got |= 1 << uint(i)
			}
		}
		want := uint64(0)
		for want*want <= v {
			want++
		}
		want--
		if got != want {
			t.Fatalf("isqrt(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := MustBuild("g216")
	// Like the LEKO originals, every output depends on the full input
	// (each mixes in the bottom-right cell).
	sup := g.SupportSets()
	for o := 0; o < g.NumPOs(); o += 43 {
		if len(sup[o]) != 216 {
			t.Fatalf("output %d support = %d, want 216", o, len(sup[o]))
		}
	}
}

func TestStripesSupportsDisjoint(t *testing.T) {
	g := MustBuild("i3")
	sup := g.SupportSets()
	seen := map[int]int{}
	for o := range sup {
		for _, u := range sup[o] {
			if prev, ok := seen[u]; ok {
				t.Fatalf("input %d in supports of outputs %d and %d", u, prev, o)
			}
			seen[u] = o
		}
	}
}

func TestApex2FoldsToFewStates(t *testing.T) {
	// The stand-in's defining property: the folded FSM stays at a few
	// hundred states (the original apex2 shows 127-474 in the paper),
	// not the exponential blowup random cones exhibit.
	g := MustBuild("apex2")
	sup := g.SupportSets()
	for o := range sup {
		if len(sup[o]) < 30 {
			t.Fatalf("output %d support only %d inputs; apex2 outputs are wide", o, len(sup[o]))
		}
	}
}

func TestC7552AdderSlice(t *testing.T) {
	g := MustBuild("C7552")
	// sum outputs 0..34 compute a[0..33] + b[0..33] + cin.
	in := make([]bool, 207)
	in[0] = true  // a = 1
	in[34] = true // b = 1
	out := g.Eval(in)
	if out[0] || !out[1] {
		t.Fatalf("1+1 should be 2: s0=%v s1=%v", out[0], out[1])
	}
	in[68] = true // cin
	out = g.Eval(in)
	if !out[0] || !out[1] {
		t.Fatalf("1+1+1 should be 3: s0=%v s1=%v", out[0], out[1])
	}
	// Outputs: sum bits 0..34 (incl. carry column), cout at 34, lt at 35.
	in = make([]bool, 207)
	in[34+5] = true // b = 32, a = 0
	if !g.Eval(in)[35] {
		t.Fatal("0 < 32 should set lt")
	}
	in[5] = true // a = 32 too: not less-than
	if g.Eval(in)[35] {
		t.Fatal("32 < 32 should clear lt")
	}
}

func TestMaxFunctional(t *testing.T) {
	g := MustBuild("max")
	in := make([]bool, 512)
	// op1 = 5, op2 = 9, others 0.
	in[128+0], in[128+2] = true, true // op1 = 5
	in[256+0], in[256+3] = true, true // op2 = 9
	out := g.Eval(in)
	got := 0
	for i := 0; i < 8; i++ {
		if out[i] {
			got |= 1 << i
		}
	}
	if got != 9 {
		t.Fatalf("max(0,5,9,0) low bits = %d, want 9", got)
	}
}
