package gen

import "circuitfold/internal/aig"

func init() {
	register("g216", 216, 216,
		"12x18 LEKO-style grid, cell = f(west, north, local input)",
		func() *aig.Graph { return grid(12, 18) })
	register("g625", 625, 625,
		"25x25 LEKO-style grid",
		func() *aig.Graph { return grid(25, 25) })
	register("g1296", 1296, 1296,
		"36x36 LEKO-style grid",
		func() *aig.Graph { return grid(36, 36) })
	register("e64", 65, 65,
		"priority one-hot chain: y_i = x_i and no earlier request (MCNC e64 stand-in)",
		buildE64)
	register("arbiter", 256, 1,
		"priority arbiter reduced to one output (reduced EPFL arbiter stand-in)",
		buildArbiter)
	register("i2", 201, 1,
		"wide OR of input pairs (MCNC i2 stand-in)",
		buildI2)
	register("i3", 132, 6,
		"six OR-of-AND stripes (MCNC i3 stand-in)",
		func() *aig.Graph { return stripes(132, 6, false) })
	register("i4", 192, 6,
		"six XOR-of-AND stripes (MCNC i4 stand-in)",
		func() *aig.Graph { return stripes(192, 6, true) })
	register("i6", 138, 67,
		"67 one-LUT output functions over sliding input windows (MCNC i6 stand-in)",
		func() *aig.Graph { return narrow(138, 67, false) })
	register("i7", 199, 67,
		"67 one-LUT output functions over wider sliding windows (MCNC i7 stand-in)",
		func() *aig.Graph { return narrow(199, 67, true) })
}

// grid builds an r x c grid where cell(i,j) combines its west and north
// neighbors with a dedicated primary input; every cell value is also a
// primary output. This mirrors the LEKO/LEKU "G" examples.
func grid(r, c int) *aig.Graph {
	g := aig.New()
	ins := make([][]aig.Lit, r)
	for i := 0; i < r; i++ {
		ins[i] = make([]aig.Lit, c)
		for j := 0; j < c; j++ {
			ins[i][j] = g.PI("x" + itoa(i) + "_" + itoa(j))
		}
	}
	cell := make([][]aig.Lit, r)
	for i := 0; i < r; i++ {
		cell[i] = make([]aig.Lit, c)
		for j := 0; j < c; j++ {
			west, north := aig.Const0, aig.Const0
			if j > 0 {
				west = cell[i][j-1]
			}
			if i > 0 {
				north = cell[i-1][j]
			}
			x := ins[i][j]
			// Majority-like mixing keeps the grid's value dependent on
			// the full north-west quadrant.
			cell[i][j] = g.Xor(x, g.Or(g.And(west, north.Not()), g.And(west.Not(), north)))
		}
	}
	// Every output mixes in the bottom-right cell, which depends on all
	// inputs — like the LEKO originals, no output is ready before the
	// whole input has arrived.
	last := cell[r-1][c-1]
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out := g.Xor(cell[i][j], last)
			if i == r-1 && j == c-1 {
				out = last
			}
			g.AddPO(out, "y"+itoa(i)+"_"+itoa(j))
		}
	}
	return g
}

// buildE64: y_i = x_i AND none of x_0..x_{i-1}; y_64 = no request at all.
// The prefix structure folds into a tiny FSM, like the PLA original.
func buildE64() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 65)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	none := aig.Const1
	for i := 0; i < 64; i++ {
		g.AddPO(g.And(ins[i], none), "y"+itoa(i))
		none = g.And(none, ins[i].Not())
	}
	g.AddPO(none, "none")
	return g
}

// buildArbiter grants to the highest-priority requester and reports
// whether the grant index is even — a single-output prefix computation.
func buildArbiter() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 256)
	for i := range ins {
		ins[i] = g.PI("req" + itoa(i))
	}
	none := aig.Const1
	even := aig.Const0
	for i := 0; i < 256; i++ {
		grant := g.And(ins[i], none)
		if i%2 == 0 {
			even = g.Or(even, grant)
		}
		none = g.And(none, ins[i].Not())
	}
	g.AddPO(even, "grantEven")
	return g
}

// buildI2: OR over 100 input pairs plus a direct input.
func buildI2() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 201)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	var terms []aig.Lit
	for i := 0; i+1 < 200; i += 2 {
		terms = append(terms, g.And(ins[i], ins[i+1]))
	}
	terms = append(terms, ins[200])
	g.AddPO(g.OrN(terms...), "f")
	return g
}

// stripes builds `pos` outputs, each reducing its own stripe of inputs
// with OR-of-ANDs (or XOR-of-ANDs when xor is set).
func stripes(pis, pos int, xor bool) *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, pis)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	per := pis / pos
	for o := 0; o < pos; o++ {
		stripe := ins[o*per : (o+1)*per]
		var terms []aig.Lit
		for i := 0; i+1 < len(stripe); i += 2 {
			terms = append(terms, g.And(stripe[i], stripe[i+1]))
		}
		var out aig.Lit
		if xor {
			out = g.XorN(terms...)
		} else {
			out = g.OrN(terms...)
		}
		g.AddPO(out, "y"+itoa(o))
	}
	return g
}

// narrow builds one small function per output over a sliding window of
// contiguous inputs, so each output needs one LUT (like MCNC i6/i7 where
// #LUT equals #PO) and the folded FSM stays small: a window never spans
// more than one frame boundary.
func narrow(pis, pos int, deeper bool) *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, pis)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	stride := pis / pos
	for o := 0; o < pos; o++ {
		base := o * stride
		a := ins[base]
		b := ins[base+1]
		c := ins[(base+2)%pis]
		out := g.Xor(a, g.And(b, c))
		if deeper {
			d := ins[(base+3)%pis]
			out = g.Or(g.And(out, d), g.And(a, d.Not()))
		}
		g.AddPO(out, "y"+itoa(o))
	}
	return g
}
