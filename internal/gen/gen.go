// Package gen regenerates the paper's 27-circuit benchmark suite (plus
// the adder3 running example) structurally from scratch. The original
// ITC'99, MCNC/LGSynth, LEKO/LEKU, and EPFL netlists are not available
// offline, so each circuit is rebuilt with the same primary-input and
// primary-output counts as Table I and a structure chosen to match the
// original's character (arithmetic, PLA cones, grids, priority chains,
// ...). DESIGN.md records every substitution.
package gen

import (
	"fmt"
	"sort"

	"circuitfold/internal/aig"
)

// Info describes one benchmark circuit.
type Info struct {
	Name string
	PIs  int
	POs  int
	// Description summarizes the generator standing in for the original.
	Description string
}

type entry struct {
	info  Info
	build func() *aig.Graph
}

var registry = map[string]entry{}

func register(name string, pis, pos int, desc string, build func() *aig.Graph) {
	registry[name] = entry{info: Info{Name: name, PIs: pis, POs: pos, Description: desc}, build: build}
}

// Names returns all benchmark names in Table I order (adder3 first).
func Names() []string {
	order := []string{
		"adder3",
		"64-adder", "128-adder", "apex2", "arbiter", "b14_C", "b15_C",
		"b17_C", "b20_C", "b21_C", "b22_C", "C7552", "des", "e64",
		"g216", "g625", "g1296", "hyp", "i2", "i3", "i4", "i6", "i7",
		"i10", "max", "memctrl", "toolarge", "voter",
	}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	// Any extras registered beyond the canonical list go last, sorted.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Lookup returns the Info of a benchmark.
func Lookup(name string) (Info, error) {
	e, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("gen: unknown benchmark %q", name)
	}
	return e.info, nil
}

// Build constructs the named benchmark circuit. Building is deterministic:
// the same name always produces the same netlist.
func Build(name string) (*aig.Graph, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown benchmark %q", name)
	}
	g := e.build()
	if g.NumPIs() != e.info.PIs || g.NumPOs() != e.info.POs {
		return nil, fmt.Errorf("gen: %s produced %d/%d pins, registered %d/%d",
			name, g.NumPIs(), g.NumPOs(), e.info.PIs, e.info.POs)
	}
	return g, nil
}

// MustBuild is Build for known-good names in examples and benchmarks.
func MustBuild(name string) *aig.Graph {
	g, err := Build(name)
	if err != nil {
		panic(err)
	}
	return g
}

// xorshift is a tiny deterministic PRNG so generators do not depend on
// math/rand's generator evolution across Go versions.
type xorshift uint64

func newRand(seed uint64) *xorshift {
	x := xorshift(seed*2685821657736338717 + 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift) intn(n int) int {
	return int(x.next() % uint64(n))
}

func (x *xorshift) bit() bool { return x.next()&1 == 1 }

// pick returns a random literal from pool, randomly complemented.
func (x *xorshift) pick(pool []aig.Lit) aig.Lit {
	return pool[x.intn(len(pool))].NotIf(x.bit())
}
