package gen

import "circuitfold/internal/aig"

func init() {
	register("adder3", 6, 4,
		"3-bit ripple-carry adder, the paper's running example (Fig. 4)",
		func() *aig.Graph { return rippleAdder(3) })
	register("64-adder", 128, 65,
		"64-bit ripple-carry adder (Adder benchmark family)",
		func() *aig.Graph { return rippleAdder(64) })
	register("128-adder", 256, 129,
		"128-bit ripple-carry adder (Adder benchmark family)",
		func() *aig.Graph { return rippleAdder(128) })
	register("C7552", 207, 108,
		"34-bit adder/magnitude comparator with parity network (ISCAS'85 C7552 stand-in)",
		buildC7552)
	register("max", 512, 130,
		"maximum of four 128-bit operands plus 2-bit argmax (EPFL max stand-in)",
		buildMax)
	register("voter", 1001, 1,
		"majority of 1001 inputs: popcount adder tree and threshold compare (EPFL voter stand-in)",
		buildVoter)
	register("hyp", 256, 128,
		"sqrt(a^2+b^2) over 128-bit operands: two array squarers, adder, non-restoring sqrt (EPFL hyp stand-in)",
		buildHyp)
}

// rippleAdder builds a w-bit ripple-carry adder with inputs interleaved
// a0,b0,a1,b1,... (so folding groups align with bit slices) and outputs
// s0..s(w-1), cout.
func rippleAdder(w int) *aig.Graph {
	g := aig.New()
	a := make([]aig.Lit, w)
	b := make([]aig.Lit, w)
	for i := 0; i < w; i++ {
		a[i] = g.PI("a" + itoa(i))
		b[i] = g.PI("b" + itoa(i))
	}
	carry := aig.Const0
	for i := 0; i < w; i++ {
		g.AddPO(g.Xor(g.Xor(a[i], b[i]), carry), "s"+itoa(i))
		carry = g.Or(g.And(a[i], b[i]), g.And(carry, g.Xor(a[i], b[i])))
	}
	g.AddPO(carry, "cout")
	return g
}

// adderLits adds two equal-width vectors inside g, returning sum and
// carry.
func adderLits(g *aig.Graph, a, b []aig.Lit, cin aig.Lit) ([]aig.Lit, aig.Lit) {
	return g.Adder(a, b, cin)
}

// buildC7552 combines a 34-bit adder, a magnitude comparator and parity
// trees, consuming 207 inputs and producing 108 outputs.
func buildC7552() *aig.Graph {
	g := aig.New()
	pi := make([]aig.Lit, 207)
	for i := range pi {
		pi[i] = g.PI("x" + itoa(i))
	}
	a := pi[0:34]
	b := pi[34:68]
	cin := pi[68]
	sum, cout := adderLits(g, a, b, cin)
	for i, s := range sum {
		g.AddPO(s, "sum"+itoa(i)) // 34 outputs
	}
	g.AddPO(cout, "cout") // 1

	// Magnitude comparator a < b.
	lt := aig.Const0
	for i := 0; i < 34; i++ {
		eq := g.Xnor(a[i], b[i])
		lt = g.Or(g.And(a[i].Not(), b[i]), g.And(eq, lt))
	}
	g.AddPO(lt, "lt") // 1

	// Masked XOR network over the remaining inputs.
	rest := pi[69:]
	for k := 0; k < 64; k++ { // 64 outputs
		x := rest[(2*k)%len(rest)]
		y := rest[(2*k+37)%len(rest)]
		zz := rest[(3*k+11)%len(rest)]
		g.AddPO(g.Xor(g.And(x, y), zz), "m"+itoa(k))
	}
	// Parity trees over input stripes.
	for k := 0; k < 8; k++ { // 8 outputs
		var xs []aig.Lit
		for i := k; i < len(rest); i += 8 {
			xs = append(xs, rest[i])
		}
		g.AddPO(g.XorN(xs...), "p"+itoa(k))
	}
	return g
}

// buildMax computes the maximum of four 128-bit operands and a 2-bit
// index of the winner.
func buildMax() *aig.Graph {
	g := aig.New()
	ops := make([][]aig.Lit, 4)
	for o := range ops {
		ops[o] = make([]aig.Lit, 128)
		for i := range ops[o] {
			ops[o][i] = g.PI("op" + itoa(o) + "_" + itoa(i))
		}
	}
	// geq(a, b): a >= b, MSB-first magnitude comparison.
	geq := func(a, b []aig.Lit) aig.Lit {
		ge := aig.Const1
		for i := 0; i < len(a); i++ { // LSB to MSB accumulation
			eq := g.Xnor(a[i], b[i])
			gt := g.And(a[i], b[i].Not())
			ge = g.Or(gt, g.And(eq, ge))
		}
		return ge
	}
	mux := func(s aig.Lit, a, b []aig.Lit) []aig.Lit {
		out := make([]aig.Lit, len(a))
		for i := range a {
			out[i] = g.Mux(s, a[i], b[i])
		}
		return out
	}
	s01 := geq(ops[0], ops[1])
	m01 := mux(s01, ops[0], ops[1])
	s23 := geq(ops[2], ops[3])
	m23 := mux(s23, ops[2], ops[3])
	sf := geq(m01, m23)
	mf := mux(sf, m01, m23)
	for i, l := range mf {
		g.AddPO(l, "max"+itoa(i)) // 128 outputs
	}
	// 2-bit index: idx1 = winner came from {2,3}; idx0 = lower of pair.
	idx1 := sf.Not()
	idx0 := g.Mux(sf, s01.Not(), s23.Not())
	g.AddPO(idx1, "idx1")
	g.AddPO(idx0, "idx0")
	return g
}

// buildVoter outputs 1 iff more than half of its 1001 inputs are 1,
// computed by a popcount adder tree and a threshold comparison.
func buildVoter() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 1001)
	for i := range ins {
		ins[i] = g.PI("v" + itoa(i))
	}
	// Reduce with full adders: counts as little-endian bit vectors.
	vecs := make([][]aig.Lit, len(ins))
	for i, l := range ins {
		vecs[i] = []aig.Lit{l}
	}
	for len(vecs) > 1 {
		var next [][]aig.Lit
		for i := 0; i+1 < len(vecs); i += 2 {
			next = append(next, addVectors(g, vecs[i], vecs[i+1]))
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	count := vecs[0] // 0..1001, width set by the reduction tree
	// count >= 501 <=> count + (2^w - 501) overflows w bits.
	bias := (1 << uint(len(count))) - 501
	carry := aig.Const0
	for i := 0; i < len(count); i++ {
		bit := aig.Const0
		if bias>>uint(i)&1 == 1 {
			bit = aig.Const1
		}
		carry = g.Or(g.And(count[i], bit), g.And(carry, g.Xor(count[i], bit)))
	}
	g.AddPO(carry, "maj")
	return g
}

// addVectors adds two little-endian bit vectors of possibly different
// widths.
func addVectors(g *aig.Graph, a, b []aig.Lit) []aig.Lit {
	if len(a) < len(b) {
		a, b = b, a
	}
	bb := make([]aig.Lit, len(a))
	copy(bb, b)
	for i := len(b); i < len(a); i++ {
		bb[i] = aig.Const0
	}
	sum, carry := g.Adder(a, bb, aig.Const0)
	return append(sum, carry)
}

// mulVectors builds a multiplier of a*b: partial products summed with a
// balanced adder tree (widths stay small near the leaves, keeping the
// node count near the practical minimum for ripple-based reduction).
func mulVectors(g *aig.Graph, a, b []aig.Lit) []aig.Lit {
	vecs := make([][]aig.Lit, 0, len(b))
	for i := range b {
		pp := make([]aig.Lit, i+len(a))
		for k := 0; k < i; k++ {
			pp[k] = aig.Const0
		}
		for j := range a {
			pp[i+j] = g.And(a[j], b[i])
		}
		vecs = append(vecs, pp)
	}
	for len(vecs) > 1 {
		var next [][]aig.Lit
		for i := 0; i+1 < len(vecs); i += 2 {
			next = append(next, addVectors(g, vecs[i], vecs[i+1]))
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0]
}

// buildHyp computes floor(sqrt(a^2+b^2)) for 128-bit a and b: two array
// squarers, a wide adder, and a restoring square root, mirroring the EPFL
// hyp benchmark's structure (the real netlist uses the same blocks).
func buildHyp() *aig.Graph {
	g := aig.New()
	a := make([]aig.Lit, 128)
	b := make([]aig.Lit, 128)
	for i := range a {
		a[i] = g.PI("a" + itoa(i))
	}
	for i := range b {
		b[i] = g.PI("b" + itoa(i))
	}
	aa := mulVectors(g, a, a) // 256 bits
	bb := mulVectors(g, b, b)
	s := addVectors(g, aa, bb) // 257 bits; the top bit is dropped below
	root := isqrt(g, s[:256], 128)
	for i, l := range root {
		g.AddPO(l, "r"+itoa(i))
	}
	return g
}

// isqrt computes the integer square root of the little-endian 2*outBits
// wide vector x with the classic restoring bit-serial algorithm: two
// radicand bits are shifted into the remainder per step, and the trial
// subtraction's carry-out decides each result bit. Each step touches only
// an (outBits+2)-wide remainder.
func isqrt(g *aig.Graph, x []aig.Lit, outBits int) []aig.Lit {
	w := outBits + 2
	r := make([]aig.Lit, w) // remainder
	for i := range r {
		r[i] = aig.Const0
	}
	q := make([]aig.Lit, outBits) // result, little-endian
	for i := range q {
		q[i] = aig.Const0
	}
	for bit := outBits - 1; bit >= 0; bit-- {
		// r = r<<2 | x[2bit+1] x[2bit]
		nr := make([]aig.Lit, w)
		nr[0] = x[2*bit]
		nr[1] = x[2*bit+1]
		copy(nr[2:], r[:w-2])
		// t = Qpartial<<2 | 1, where Qpartial holds the already decided
		// high result bits q[bit+1..] as its low bits.
		t := make([]aig.Lit, w)
		for i := range t {
			t[i] = aig.Const0
		}
		t[0] = aig.Const1
		for k, src := 2, bit+1; src < outBits && k < w; k, src = k+1, src+1 {
			t[k] = q[src]
		}
		// d = nr - t; the adder's carry-out is 1 iff nr >= t.
		nt := make([]aig.Lit, w)
		for i := range t {
			nt[i] = t[i].Not()
		}
		d, ok := g.Adder(nr, nt, aig.Const1)
		for i := range r {
			r[i] = g.Mux(ok, d[i], nr[i])
		}
		q[bit] = ok
	}
	return q
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}
