package gen

import "circuitfold/internal/aig"

func init() {
	register("apex2", 38, 3,
		"popcount-predicate cones over 38 inputs (MCNC apex2 stand-in: folds to a few hundred FSM states like the original)",
		buildApex2)
	register("toolarge", 38, 3,
		"weighted-sum predicate cones over 38 inputs (LEKO/LEKU toolarge stand-in)",
		buildToolarge)
	register("b17_C", 380, 3,
		"three deep mixed cones over 380 inputs (reduced ITC'99 b17 stand-in)",
		buildB17)
	register("b14_C", 276, 299,
		"structured control/datapath mix (ITC'99 b14 combinational core stand-in)",
		func() *aig.Graph { return mixed(1014, 276, 299, 3900) })
	register("b15_C", 484, 519,
		"structured control/datapath mix (ITC'99 b15 combinational core stand-in)",
		func() *aig.Graph { return mixed(1015, 484, 519, 6800) })
	register("b20_C", 521, 512,
		"structured control/datapath mix (ITC'99 b20 combinational core stand-in)",
		func() *aig.Graph { return mixed(1020, 521, 512, 8200) })
	register("b21_C", 521, 512,
		"structured control/datapath mix (ITC'99 b21 combinational core stand-in)",
		func() *aig.Graph { return mixed(1021, 521, 512, 8250) })
	register("b22_C", 766, 757,
		"structured control/datapath mix (ITC'99 b22 combinational core stand-in)",
		func() *aig.Graph { return mixed(1022, 766, 757, 12350) })
	register("memctrl", 1204, 1231,
		"wide control-dominated mix (EPFL mem_ctrl stand-in)",
		func() *aig.Graph { return mixed(1099, 1204, 1231, 15900) })
	register("des", 256, 245,
		"xor/mux substitution-permutation rounds (MCNC des stand-in)",
		buildDes)
	register("i10", 257, 224,
		"mixed-depth datapath with staggered output supports (MCNC i10 stand-in)",
		buildI10)
}

// plaCones builds `pos` sum-of-products cones over shared inputs: each
// cone is an OR of `terms` cubes of `width` literals drawn from a local
// window of the inputs. Like the MCNC two-level originals, the cubes
// have locality — without it the folded FSM's prefix-class count
// explodes far past what the real PLAs exhibit.
func plaCones(seed uint64, pis, pos, terms, width int) *aig.Graph {
	rng := newRand(seed)
	g := aig.New()
	ins := make([]aig.Lit, pis)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	window := width + 5
	for o := 0; o < pos; o++ {
		var ors []aig.Lit
		for t := 0; t < terms; t++ {
			start := rng.intn(pis)
			lits := make([]aig.Lit, width)
			for k := range lits {
				lits[k] = ins[(start+rng.intn(window))%pis].NotIf(rng.bit())
			}
			ors = append(ors, g.AndN(lits...))
		}
		g.AddPO(g.OrN(ors...), "f"+itoa(o))
	}
	return g
}

// buildApex2 computes three predicates of the input popcount through
// differently shaped adder trees (one per output, so the cones stay
// separate like the PLA cones of the original). When folded, the
// residual classes track the running count — a few hundred FSM states,
// the regime the paper reports for apex2.
func buildApex2() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 38)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	// Three tree shapes: adjacent pairs, strided pairs, halves.
	count1 := popcount(g, ins, func(i int) int { return i })
	count2 := popcount(g, ins, func(i int) int { return (i*7 + 3) % 38 })
	count3 := popcount(g, ins, func(i int) int { return (i*11 + 17) % 38 })
	g.AddPO(greaterThan(g, count1, 19), "gt19")
	g.AddPO(modEquals(g, count2, 5, 3), "mod5eq3")
	g.AddPO(g.Xor(count3[0], count3[1]), "lowbits")
	return g
}

// buildToolarge is a denser variant: predicates on a {1,2}-weighted sum.
func buildToolarge() *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, 38)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	weighted := func(perm func(int) int) []aig.Lit {
		vecs := make([][]aig.Lit, len(ins))
		for i := range ins {
			x := ins[perm(i)]
			if perm(i)%2 == 1 {
				vecs[i] = []aig.Lit{aig.Const0, x} // weight 2
			} else {
				vecs[i] = []aig.Lit{x}
			}
		}
		return reduceVectors(g, vecs)
	}
	s1 := weighted(func(i int) int { return i })
	s2 := weighted(func(i int) int { return (i*5 + 9) % 38 })
	s3 := weighted(func(i int) int { return (i*13 + 1) % 38 })
	g.AddPO(greaterThan(g, s1, 28), "gt28")
	g.AddPO(modEquals(g, s2, 3, 1), "mod3eq1")
	g.AddPO(modEquals(g, s3, 7, 2), "mod7eq2")
	return g
}

// popcount sums the permuted inputs with a balanced adder tree.
func popcount(g *aig.Graph, ins []aig.Lit, perm func(int) int) []aig.Lit {
	vecs := make([][]aig.Lit, len(ins))
	for i := range ins {
		vecs[i] = []aig.Lit{ins[perm(i)]}
	}
	return reduceVectors(g, vecs)
}

// reduceVectors adds bit vectors pairwise until one remains.
func reduceVectors(g *aig.Graph, vecs [][]aig.Lit) []aig.Lit {
	for len(vecs) > 1 {
		var next [][]aig.Lit
		for i := 0; i+1 < len(vecs); i += 2 {
			next = append(next, addVectors(g, vecs[i], vecs[i+1]))
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0]
}

// greaterThan builds (value > bound) for a little-endian vector.
func greaterThan(g *aig.Graph, v []aig.Lit, bound int) aig.Lit {
	gt := aig.Const0
	for i := 0; i < len(v); i++ {
		b := aig.Const0
		if bound>>uint(i)&1 == 1 {
			b = aig.Const1
		}
		gt = g.Or(g.And(v[i], b.Not()), g.And(g.Xnor(v[i], b), gt))
	}
	return gt
}

// modEquals builds (value mod m == r) by selecting the residue class
// with a comparison chain over the (small) value range.
func modEquals(g *aig.Graph, v []aig.Lit, m, r int) aig.Lit {
	max := 1 << uint(len(v))
	if max > 128 {
		max = 128
	}
	var hits []aig.Lit
	for val := r; val < max; val += m {
		term := aig.Const1
		for i := 0; i < len(v); i++ {
			bit := v[i]
			if val>>uint(i)&1 == 0 {
				bit = bit.Not()
			}
			term = g.And(term, bit)
		}
		hits = append(hits, term)
	}
	return g.OrN(hits...)
}

// buildB17 makes three deep cones with large but staggered supports.
func buildB17() *aig.Graph {
	rng := newRand(1017)
	g := aig.New()
	ins := make([]aig.Lit, 380)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	for o := 0; o < 3; o++ {
		// Alternating AND/XOR reduction over a shuffled slice of inputs,
		// with cross links.
		pool := append([]aig.Lit(nil), ins...)
		for len(pool) > 1 {
			var next []aig.Lit
			for i := 0; i+1 < len(pool); i += 2 {
				a, b := pool[i], pool[i+1].NotIf(rng.bit())
				if rng.intn(3) == 0 {
					next = append(next, g.Xor(a, b))
				} else {
					next = append(next, g.And(a, b.NotIf(rng.bit())))
				}
			}
			if len(pool)%2 == 1 {
				next = append(next, pool[len(pool)-1])
			}
			pool = next
		}
		g.AddPO(pool[0], "f"+itoa(o))
	}
	return g
}

// Random builds a deterministic pseudo-random combinational circuit
// with the given interface and approximate AND count. It is the mixed
// datapath/control generator the named benchmarks use, exposed for
// tests and benchmarks that need arbitrary-size inputs.
func Random(seed uint64, pis, pos, ands int) *aig.Graph {
	return mixed(seed, pis, pos, ands)
}

// mixed composes datapath and control blocks over the inputs until the
// target AND count is reached, then taps outputs from the produced
// signals. It stands in for the ITC'99 combinational cores.
func mixed(seed uint64, pis, pos, targetAnds int) *aig.Graph {
	rng := newRand(seed)
	g := aig.New()
	ins := make([]aig.Lit, pis)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	pool := append([]aig.Lit(nil), ins...)
	var produced []aig.Lit
	grab := func(n int) []aig.Lit {
		out := make([]aig.Lit, n)
		for i := range out {
			out[i] = rng.pick(pool)
		}
		return out
	}
	for g.NumAnds() < targetAnds {
		switch rng.intn(5) {
		case 0: // small ripple adder
			w := 4 + rng.intn(12)
			sum, c := g.Adder(grab(w), grab(w), aig.Const0)
			produced = append(produced, sum...)
			produced = append(produced, c)
			pool = append(pool, sum...)
		case 1: // equality comparator
			w := 4 + rng.intn(12)
			a, b := grab(w), grab(w)
			var eqs []aig.Lit
			for i := 0; i < w; i++ {
				eqs = append(eqs, g.Xnor(a[i], b[i]))
			}
			e := g.AndN(eqs...)
			produced = append(produced, e)
			pool = append(pool, e)
		case 2: // xor tree
			w := 6 + rng.intn(16)
			x := g.XorN(grab(w)...)
			produced = append(produced, x)
			pool = append(pool, x)
		case 3: // mux chain
			w := 4 + rng.intn(8)
			sel := grab(w)
			data := grab(w + 1)
			acc := data[0]
			for i := 0; i < w; i++ {
				acc = g.Mux(sel[i], data[i+1], acc)
			}
			produced = append(produced, acc)
			pool = append(pool, acc)
		default: // and-or cone
			var terms []aig.Lit
			for t := 0; t < 3+rng.intn(5); t++ {
				terms = append(terms, g.AndN(grab(2+rng.intn(3))...))
			}
			c := g.OrN(terms...)
			produced = append(produced, c)
			pool = append(pool, c)
		}
	}
	for o := 0; o < pos; o++ {
		g.AddPO(produced[rng.intn(len(produced))].NotIf(rng.bit()), "y"+itoa(o))
	}
	return g
}

// buildDes builds substitution-permutation rounds: 4 rounds of keyed
// xor, 6-input s-box-like mixing, and a fixed permutation.
func buildDes() *aig.Graph {
	rng := newRand(1042)
	g := aig.New()
	ins := make([]aig.Lit, 256)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	state := append([]aig.Lit(nil), ins[:192]...)
	key := ins[192:]
	for round := 0; round < 4; round++ {
		// Key mixing.
		for i := range state {
			state[i] = g.Xor(state[i], key[(i+round*13)%len(key)])
		}
		// S-box-ish nonlinear layer on 6-bit groups.
		next := make([]aig.Lit, len(state))
		for i := 0; i < len(state); i += 6 {
			grp := state[i : i+6]
			for j := 0; j < 6; j++ {
				a := grp[j]
				b := grp[(j+1)%6]
				c := grp[(j+2)%6]
				next[i+j] = g.Xor(a, g.Or(b, c.Not()))
			}
		}
		// Permutation.
		perm := make([]aig.Lit, len(next))
		for i := range next {
			perm[(i*97+round*31)%len(next)] = next[i]
		}
		state = perm
		_ = rng
	}
	for i := 0; i < 245; i++ {
		g.AddPO(state[i%len(state)].NotIf(i >= len(state)), "y"+itoa(i))
	}
	return g
}

// buildI10 combines shallow and deep blocks so output supports are
// staggered like MCNC i10 (some outputs ready early, most late).
func buildI10() *aig.Graph {
	rng := newRand(1010)
	g := aig.New()
	ins := make([]aig.Lit, 257)
	for i := range ins {
		ins[i] = g.PI("x" + itoa(i))
	}
	var outs []aig.Lit
	// 44 shallow outputs over the first half of the inputs: under T=2
	// structural folding (m=129) these are ready in the first frame,
	// reproducing the case study's 44/180 output split.
	for k := 0; k < 44; k++ {
		a := ins[(3*k)%128]
		b := ins[(3*k+1)%128]
		c := ins[(3*k+2)%128]
		outs = append(outs, g.Or(g.And(a, b), g.Xor(b.Not(), c)))
	}
	// 64 adder-based outputs over second-half slices.
	sum, cout := g.Adder(ins[129:192], ins[192:255], ins[255])
	outs = append(outs, sum...)
	outs = append(outs, cout)
	// Remaining outputs: xor/and cones spanning both halves.
	for k := len(outs); k < 224; k++ {
		w := 5 + rng.intn(9)
		lits := make([]aig.Lit, w)
		for j := range lits {
			lits[j] = ins[(k*7+j*29)%257].NotIf(rng.bit())
		}
		lits[0] = ins[129+(k*5)%128] // anchor in the second half
		outs = append(outs, g.Xor(g.XorN(lits[:w/2]...), g.AndN(lits[w/2:]...)))
	}
	for i, o := range outs {
		g.AddPO(o, "y"+itoa(i))
	}
	return g
}
