package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/fsm"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
)

// HybridOptions configures HybridFold.
type HybridOptions struct {
	// Counter encodes the structural remainder's frame counter.
	Counter Encoding
	// StateEnc encodes the functional clusters' states.
	StateEnc Encoding
	// Minimize runs MeMin on each cluster FSM.
	Minimize bool
	// MaxClusterOutputs caps the outputs grouped into one functional
	// cluster (0 means 32).
	MaxClusterOutputs int
	// ClusterTimeout bounds each cluster's folding work (0 means 5s);
	// the whole fold is additionally bounded by Budget.Wall.
	ClusterTimeout time.Duration
	// Ctx cancels the fold mid-stage; nil means no cancellation.
	Ctx context.Context
	// Budget bounds the fold's resources. Budget.MaxStates bounds each
	// cluster's time-frame folding (0 means 2000); Budget.Wall bounds
	// the whole fold.
	Budget pipeline.Budget
	// MinOpts bounds per-cluster state minimization.
	MinOpts fsm.MinimizeOptions
	// Workers bounds the goroutines folding clusters concurrently.
	// Values below 2 fold the clusters sequentially. Each cluster folds
	// in its own BDD managers and child run either way, and results
	// merge in cluster order, so the folded circuit does not depend on
	// the worker count. Cluster folds run with sequential inner TFF
	// (frame workers = 1): the parallelism budget is spent across
	// clusters, not within them.
	Workers int
	// PostOptimize, when non-nil, runs the cleanup/balance/SAT-sweep
	// pipeline with these settings on the merged circuit's combinational
	// core before returning.
	PostOptimize *aig.SweepOptions
	// Obs, when non-nil, receives span traces and metrics for the whole
	// fold (see internal/obs). Nil disables observability at zero cost.
	Obs *obs.Observer
	// Pools, when non-nil, supplies reusable fold arenas shared by all
	// cluster folds (the pools are thread-safe) and by the sweep stage;
	// see FunctionalOptions.Pools.
	Pools *Pools
}

// DefaultHybridOptions returns the settings used by the benchmarks.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		Counter:  Binary,
		StateEnc: OneHot,
		Minimize: true,
		// Each transition's output vector distinguishes states, so wide
		// clusters blow up the per-frame refinement exactly like the
		// paper's functional timeouts at small T; small clusters keep
		// every piece tractable.
		MaxClusterOutputs: 8,
		ClusterTimeout:    2 * time.Second,
		Budget:            pipeline.Budget{MaxStates: 2000},
		MinOpts:           fsm.DefaultMinimizeOptions(),
		Workers:           DefaultFunctionalOptions().Workers,
	}
}

// HybridFold combines the two methods, the future work named in the
// paper's conclusion, composed as the pipeline schedule → tff → synth →
// [sweep]: outputs are clustered by shared structural support
// (schedule), each cluster is folded functionally under its own slice
// of the budget (tff), and clusters whose folding exceeds that slice
// fall back to one common structural fold that is then merged with the
// functional parts over shared pins (synth). All parts share the same
// ceil(n/T) input pins and one frame alignment, so the merged circuit
// is a valid fold of the whole circuit — scalable like the structural
// method, with the functional method's optimality wherever it is
// affordable. Cancelling the context or exhausting Budget.Wall aborts
// the whole fold; a single cluster running out of its own time slice
// only demotes that cluster to the structural fallback.
func HybridFold(g *aig.Graph, T int, opt HybridOptions) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	run := pipeline.NewRunObserved(opt.Ctx, opt.Budget, opt.Obs)
	if T == 1 {
		return identityFold(g, run, "hybrid", pooledSweepOptions(opt.PostOptimize, opt.Pools))
	}
	if opt.MaxClusterOutputs <= 0 {
		opt.MaxClusterOutputs = 32
	}
	if opt.ClusterTimeout <= 0 {
		opt.ClusterTimeout = 5 * time.Second
	}
	n := g.NumPIs()
	m := ceilDiv(n, T)

	type part struct {
		c        *seq.Circuit
		outSched [][]int // per frame, global PO indices (-1 null)
	}
	var (
		clusters      [][]int
		parts         []part
		structuralPOs []int
		res           *Result
	)
	stages := []pipeline.Stage{
		{Name: pipeline.StageSchedule, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			clusters = clusterOutputs(g, opt.MaxClusterOutputs)
			return run.Check()
		}},
		{Name: pipeline.StageTFF, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			// Each cluster folds under its own child run — the cluster
			// timeout clipped to the parent's remaining wall clock, with
			// the shared state and node budgets — inside
			// foldClusterProtected's recover boundary. Clusters are
			// independent (own cone extraction, own BDD managers), so a
			// bounded pool folds them concurrently; results land in a
			// per-cluster slot and merge below in cluster-index order, so
			// the outcome matches the sequential fold part for part.
			foldOne := func(ci int) (*clusterFold, error) {
				cluster := clusters[ci]
				wall := opt.ClusterTimeout
				if rem, ok := run.Remaining(); ok && rem < wall {
					wall = rem
				}
				csp := run.Span().Child("hybrid.cluster", "core")
				csp.SetInt("cluster", int64(ci))
				csp.SetInt("outputs", int64(len(cluster)))
				crun := pipeline.NewRunObserved(run.Context(), pipeline.Budget{
					Wall:      wall,
					BDDNodes:  run.NodeLimit(2000000),
					MaxStates: run.StateLimit(2000),
				}, run.Observer())
				crun.SetSpan(csp)
				p, err := foldClusterProtected(g, T, m, cluster, opt, crun)
				run.NoteBDDNodes(crun.BDDPeak())
				if err != nil {
					csp.SetStr("result", "structural-fallback")
				} else {
					csp.SetStr("result", "functional")
					csp.SetInt("states", int64(p.states))
				}
				csp.End()
				return p, err
			}
			folded := make([]*clusterFold, len(clusters))
			errs := make([]error, len(clusters))
			if w := opt.Workers; w > 1 && len(clusters) > 1 {
				if w > len(clusters) {
					w = len(clusters)
				}
				var wg sync.WaitGroup
				for wk := 0; wk < w; wk++ {
					wg.Add(1)
					go func(wk int) {
						defer wg.Done()
						// CPU-profile attribution, like the tff frame and
						// sweep workers: context-derived so a per-job label
						// from the daemon stays attached.
						pprof.SetGoroutineLabels(pprof.WithLabels(run.Context(),
							pprof.Labels("stage", "hybrid", "hybrid.worker", strconv.Itoa(wk))))
						for ci := wk; ci < len(clusters); ci += w {
							folded[ci], errs[ci] = foldOne(ci)
						}
					}(wk)
				}
				wg.Wait()
			} else {
				for ci := range clusters {
					folded[ci], errs[ci] = foldOne(ci)
				}
			}
			for ci, cluster := range clusters {
				if errs[ci] != nil {
					// The parent being cancelled or out of budget aborts
					// the fold; a cluster merely out of its own slice
					// falls back to the structural remainder.
					if perr := run.Check(); perr != nil {
						return perr
					}
					structuralPOs = append(structuralPOs, cluster...)
					continue
				}
				parts = append(parts, part{folded[ci].c, folded[ci].outSched})
				ss.StatesOut += folded[ci].states
			}
			return nil
		}},
		{Name: pipeline.StageSynth, Run: func(ss *pipeline.StageStats) error {
			if len(structuralPOs) > 0 {
				sub := extractCone(g, structuralPOs)
				sr, err := structuralFoldRun(sub, T, StructuralOptions{Counter: opt.Counter, Pools: opt.Pools}, run)
				if err != nil {
					return err
				}
				sched := make([][]int, T)
				for t := range sched {
					row := make([]int, len(sr.OutSched[t]))
					for k, local := range sr.OutSched[t] {
						if local < 0 {
							row[k] = -1
						} else {
							row[k] = structuralPOs[local]
						}
					}
					sched[t] = row
				}
				parts = append(parts, part{sr.Seq, sched})
			}
			if len(parts) == 0 {
				return fmt.Errorf("core: hybrid fold produced no parts")
			}

			// Merge the parts over shared input pins.
			merged := aig.New()
			pins := make([]aig.Lit, m)
			for j := range pins {
				pins[j] = merged.PI(pinName("x", j))
			}
			// All flip-flop pseudo-inputs, part by part.
			ffIns := make([][]aig.Lit, len(parts))
			for pi, p := range parts {
				ffIns[pi] = make([]aig.Lit, p.c.NumLatches())
				for i := range ffIns[pi] {
					ffIns[pi][i] = merged.PI("")
				}
			}
			var next []aig.Lit
			var init []bool
			outSched := make([][]int, T)
			for pi, p := range parts {
				piMap := make([]aig.Lit, 0, p.c.G.NumPIs())
				piMap = append(piMap, pins...)
				piMap = append(piMap, ffIns[pi]...)
				roots := make([]aig.Lit, 0, p.c.G.NumPOs()+p.c.NumLatches())
				for i := 0; i < p.c.G.NumPOs(); i++ {
					roots = append(roots, p.c.G.PO(i))
				}
				roots = append(roots, p.c.Next...)
				mapped := aig.Transfer(merged, p.c.G, piMap, roots)
				for i := 0; i < p.c.G.NumPOs(); i++ {
					merged.AddPO(mapped[i], "")
				}
				next = append(next, mapped[p.c.G.NumPOs():]...)
				init = append(init, p.c.Init...)
				for t := 0; t < T; t++ {
					outSched[t] = append(outSched[t], p.outSched[t]...)
				}
			}
			for i := 0; i < merged.NumPOs(); i++ {
				merged.SetPOName(i, pinName("y", i))
			}

			inSched := make([][]int, T)
			for t := 0; t < T; t++ {
				row := make([]int, m)
				for j := 0; j < m; j++ {
					src := t*m + j
					if src >= n {
						src = -1
					}
					row[j] = src
				}
				inSched[t] = row
			}
			ss.AndsOut = merged.NumAnds()
			res = &Result{
				Seq:       &seq.Circuit{G: merged, NumInputs: m, Next: next, Init: init},
				T:         T,
				InSched:   inSched,
				OutSched:  outSched,
				States:    -1,
				StatesMin: -1,
			}
			return nil
		}},
	}
	if opt.PostOptimize != nil {
		stages = append(stages, sweepStage(&res, pooledSweepOptions(opt.PostOptimize, opt.Pools), run))
	}
	rep, err := pipeline.Execute(run, "hybrid", stages...)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// clusterOutputs groups the primary outputs into connected components of
// the support-sharing graph, splitting oversized components.
func clusterOutputs(g *aig.Graph, maxSize int) [][]int {
	supports := g.SupportSets()
	parent := make([]int, g.NumPOs())
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Outputs sharing any input belong together.
	lastUser := make(map[int]int)
	for o := 0; o < g.NumPOs(); o++ {
		for _, u := range supports[o] {
			if prev, ok := lastUser[u]; ok {
				union(prev, o)
			}
			lastUser[u] = o
		}
	}
	byRoot := map[int][]int{}
	for o := 0; o < g.NumPOs(); o++ {
		r := find(o)
		byRoot[r] = append(byRoot[r], o)
	}
	var clusters [][]int
	for o := 0; o < g.NumPOs(); o++ { // deterministic order
		if find(o) != o {
			continue
		}
		comp := byRoot[o]
		for len(comp) > maxSize {
			clusters = append(clusters, comp[:maxSize])
			comp = comp[maxSize:]
		}
		clusters = append(clusters, comp)
	}
	return clusters
}

// extractCone builds a sub-circuit with the same primary inputs as g but
// only the selected outputs.
func extractCone(g *aig.Graph, pos []int) *aig.Graph {
	sub := aig.New()
	piMap := make([]aig.Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = sub.PI(g.PIName(i))
	}
	roots := make([]aig.Lit, len(pos))
	for i, o := range pos {
		roots[i] = g.PO(o)
	}
	outs := aig.Transfer(sub, g, piMap, roots)
	for i, o := range outs {
		sub.AddPO(o, g.POName(pos[i]))
	}
	return sub
}

type clusterFold struct {
	c        *seq.Circuit
	outSched [][]int
	states   int
}

// foldClusterProtected contains cluster-level failures: a panic out of
// one cluster's functional fold (node-cap unwind, injected fault, real
// bug) becomes that cluster's error, which the tff stage then demotes
// to the structural remainder — one hostile cluster cannot take down
// the whole hybrid fold. Recovered panics that classify as internal
// faults are counted on obs.MFoldPanics.
func foldClusterProtected(g *aig.Graph, T, m int, cluster []int, opt HybridOptions, run *pipeline.Run) (p *clusterFold, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, pipeline.AsInternal("hybrid.cluster", r)
			if errors.Is(err, pipeline.ErrInternal) {
				run.Metrics().Counter(obs.MFoldPanics).Add(1)
			}
		}
	}()
	return foldClusterFunctionally(g, T, m, cluster, opt, run)
}

// foldClusterFunctionally runs time-frame folding on one output cluster
// under the shared natural input schedule, bounded by the cluster's run.
func foldClusterFunctionally(g *aig.Graph, T, m int, cluster []int, opt HybridOptions, run *pipeline.Run) (*clusterFold, error) {
	sub := extractCone(g, cluster)
	supports := sub.SupportSets()
	n := g.NumPIs()

	// Natural schedule shared with the structural remainder: input i is
	// on pin i%m during frame i/m; each output runs in the earliest
	// frame its support allows.
	sched := &Schedule{T: T, M: m, SlotOfPI: make([]int, n), FrameOfPO: make([]int, len(cluster))}
	for i := 0; i < n; i++ {
		sched.SlotOfPI[i] = i
	}
	sched.InSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, m)
		for j := 0; j < m; j++ {
			src := t*m + j
			if src >= n {
				src = -1
			}
			row[j] = src
		}
		sched.InSlot[t] = row
	}
	outFrames := make([][]int, T)
	for o := range cluster {
		frame := 0
		for _, u := range supports[o] {
			if f := u / m; f > frame {
				frame = f
			}
		}
		sched.FrameOfPO[o] = frame
		outFrames[frame] = append(outFrames[frame], o)
	}
	mOut := 0
	for _, fr := range outFrames {
		if len(fr) > mOut {
			mOut = len(fr)
		}
	}
	sched.OutSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, mOut)
		copy(row, outFrames[t])
		for k := len(outFrames[t]); k < mOut; k++ {
			row[k] = -1
		}
		sched.OutSlot[t] = row
	}

	machine, states, err := TimeFrameFoldPooled(sub, sched, 1, run, opt.Pools.bddPool())
	if err != nil {
		return nil, err
	}
	if opt.Minimize {
		mo := opt.MinOpts
		if mo.Stop == nil {
			mo.Stop = run.Check
		}
		if mo.Span == nil {
			mo.Span = run.Span()
		}
		if mo.Metrics == nil {
			mo.Metrics = run.Metrics()
		}
		if mo.Solvers == nil {
			mo.Solvers = opt.Pools.satPool()
		}
		if rem, ok := run.Remaining(); ok && (mo.Timeout <= 0 || rem < mo.Timeout) {
			mo.Timeout = rem
		}
		if mo.MaxAtoms <= 0 || mo.MaxAtoms > 512 {
			mo.MaxAtoms = 512
		}
		if mm, merr := fsm.Minimize(machine, mo); merr == nil {
			machine = mm
		}
	}
	enc := fsm.NaturalBinary
	if opt.StateEnc == OneHot {
		enc = fsm.OneHotState
	}
	circuit, err := fsm.Encode(machine, enc)
	if err != nil {
		return nil, err
	}
	// Globalize the output schedule.
	outSched := make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, mOut)
		for k, local := range sched.OutSlot[t] {
			if local < 0 {
				row[k] = -1
			} else {
				row[k] = cluster[local]
			}
		}
		outSched[t] = row
	}
	return &clusterFold{c: circuit, outSched: outSched, states: states}, nil
}
