package core

import (
	"fmt"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/fsm"
	"circuitfold/internal/seq"
)

// HybridOptions configures HybridFold.
type HybridOptions struct {
	// Counter encodes the structural remainder's frame counter.
	Counter Encoding
	// StateEnc encodes the functional clusters' states.
	StateEnc Encoding
	// Minimize runs MeMin on each cluster FSM.
	Minimize bool
	// MaxClusterOutputs caps the outputs grouped into one functional
	// cluster (0 means 32).
	MaxClusterOutputs int
	// MaxStates bounds each cluster's time-frame folding (0 means 2000).
	MaxStates int
	// ClusterTimeout bounds each cluster's folding work (0 means 5s).
	ClusterTimeout time.Duration
	// MinOpts bounds per-cluster state minimization.
	MinOpts fsm.MinimizeOptions
	// PostOptimize, when non-nil, runs the cleanup/balance/SAT-sweep
	// pipeline with these settings on the merged circuit's combinational
	// core before returning.
	PostOptimize *aig.SweepOptions
}

// DefaultHybridOptions returns the settings used by the benchmarks.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		Counter:  Binary,
		StateEnc: OneHot,
		Minimize: true,
		// Each transition's output vector distinguishes states, so wide
		// clusters blow up the per-frame refinement exactly like the
		// paper's functional timeouts at small T; small clusters keep
		// every piece tractable.
		MaxClusterOutputs: 8,
		MaxStates:         2000,
		ClusterTimeout:    2 * time.Second,
		MinOpts:           fsm.DefaultMinimizeOptions(),
	}
}

// HybridFold combines the two methods, the future work named in the
// paper's conclusion: outputs are clustered by shared structural
// support, each cluster is folded functionally (time-frame folding on
// the cluster's cone under the shared natural input schedule), and
// clusters whose folding exceeds its budget fall back to one common
// structural fold. All parts share the same ceil(n/T) input pins and one
// frame alignment, so the merged circuit is a valid fold of the whole
// circuit — scalable like the structural method, with the functional
// method's optimality wherever it is affordable.
func HybridFold(g *aig.Graph, T int, opt HybridOptions) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	if T == 1 {
		return postOptimize(identityResult(g), opt.PostOptimize), nil
	}
	if opt.MaxClusterOutputs <= 0 {
		opt.MaxClusterOutputs = 32
	}
	if opt.MaxStates <= 0 {
		opt.MaxStates = 2000
	}
	if opt.ClusterTimeout <= 0 {
		opt.ClusterTimeout = 5 * time.Second
	}
	n := g.NumPIs()
	m := ceilDiv(n, T)

	clusters := clusterOutputs(g, opt.MaxClusterOutputs)

	type part struct {
		c        *seq.Circuit
		outSched [][]int // per frame, global PO indices (-1 null)
	}
	var parts []part
	var structuralPOs []int

	for _, cluster := range clusters {
		p, err := foldClusterFunctionally(g, T, m, cluster, opt)
		if err != nil {
			structuralPOs = append(structuralPOs, cluster...)
			continue
		}
		parts = append(parts, part{p.c, p.outSched})
	}
	if len(structuralPOs) > 0 {
		sub := extractCone(g, structuralPOs)
		sr, err := StructuralFold(sub, T, StructuralOptions{Counter: opt.Counter})
		if err != nil {
			return nil, err
		}
		sched := make([][]int, T)
		for t := range sched {
			row := make([]int, len(sr.OutSched[t]))
			for k, local := range sr.OutSched[t] {
				if local < 0 {
					row[k] = -1
				} else {
					row[k] = structuralPOs[local]
				}
			}
			sched[t] = row
		}
		parts = append(parts, part{sr.Seq, sched})
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: hybrid fold produced no parts")
	}

	// Merge the parts over shared input pins.
	merged := aig.New()
	pins := make([]aig.Lit, m)
	for j := range pins {
		pins[j] = merged.PI(pinName("x", j))
	}
	// All flip-flop pseudo-inputs, part by part.
	ffIns := make([][]aig.Lit, len(parts))
	for pi, p := range parts {
		ffIns[pi] = make([]aig.Lit, p.c.NumLatches())
		for i := range ffIns[pi] {
			ffIns[pi][i] = merged.PI("")
		}
	}
	var next []aig.Lit
	var init []bool
	outSched := make([][]int, T)
	for pi, p := range parts {
		piMap := make([]aig.Lit, 0, p.c.G.NumPIs())
		piMap = append(piMap, pins...)
		piMap = append(piMap, ffIns[pi]...)
		roots := make([]aig.Lit, 0, p.c.G.NumPOs()+p.c.NumLatches())
		for i := 0; i < p.c.G.NumPOs(); i++ {
			roots = append(roots, p.c.G.PO(i))
		}
		roots = append(roots, p.c.Next...)
		mapped := aig.Transfer(merged, p.c.G, piMap, roots)
		for i := 0; i < p.c.G.NumPOs(); i++ {
			merged.AddPO(mapped[i], "")
		}
		next = append(next, mapped[p.c.G.NumPOs():]...)
		init = append(init, p.c.Init...)
		for t := 0; t < T; t++ {
			outSched[t] = append(outSched[t], p.outSched[t]...)
		}
	}
	for i := 0; i < merged.NumPOs(); i++ {
		merged.SetPOName(i, pinName("y", i))
	}

	inSched := make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, m)
		for j := 0; j < m; j++ {
			src := t*m + j
			if src >= n {
				src = -1
			}
			row[j] = src
		}
		inSched[t] = row
	}
	return postOptimize(&Result{
		Seq:       &seq.Circuit{G: merged, NumInputs: m, Next: next, Init: init},
		T:         T,
		InSched:   inSched,
		OutSched:  outSched,
		States:    -1,
		StatesMin: -1,
	}, opt.PostOptimize), nil
}

// clusterOutputs groups the primary outputs into connected components of
// the support-sharing graph, splitting oversized components.
func clusterOutputs(g *aig.Graph, maxSize int) [][]int {
	supports := g.SupportSets()
	parent := make([]int, g.NumPOs())
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Outputs sharing any input belong together.
	lastUser := make(map[int]int)
	for o := 0; o < g.NumPOs(); o++ {
		for _, u := range supports[o] {
			if prev, ok := lastUser[u]; ok {
				union(prev, o)
			}
			lastUser[u] = o
		}
	}
	byRoot := map[int][]int{}
	for o := 0; o < g.NumPOs(); o++ {
		r := find(o)
		byRoot[r] = append(byRoot[r], o)
	}
	var clusters [][]int
	for o := 0; o < g.NumPOs(); o++ { // deterministic order
		if find(o) != o {
			continue
		}
		comp := byRoot[o]
		for len(comp) > maxSize {
			clusters = append(clusters, comp[:maxSize])
			comp = comp[maxSize:]
		}
		clusters = append(clusters, comp)
	}
	return clusters
}

// extractCone builds a sub-circuit with the same primary inputs as g but
// only the selected outputs.
func extractCone(g *aig.Graph, pos []int) *aig.Graph {
	sub := aig.New()
	piMap := make([]aig.Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = sub.PI(g.PIName(i))
	}
	roots := make([]aig.Lit, len(pos))
	for i, o := range pos {
		roots[i] = g.PO(o)
	}
	outs := aig.Transfer(sub, g, piMap, roots)
	for i, o := range outs {
		sub.AddPO(o, g.POName(pos[i]))
	}
	return sub
}

type clusterFold struct {
	c        *seq.Circuit
	outSched [][]int
}

// foldClusterFunctionally runs time-frame folding on one output cluster
// under the shared natural input schedule.
func foldClusterFunctionally(g *aig.Graph, T, m int, cluster []int, opt HybridOptions) (*clusterFold, error) {
	sub := extractCone(g, cluster)
	supports := sub.SupportSets()
	n := g.NumPIs()

	// Natural schedule shared with the structural remainder: input i is
	// on pin i%m during frame i/m; each output runs in the earliest
	// frame its support allows.
	sched := &Schedule{T: T, M: m, SlotOfPI: make([]int, n), FrameOfPO: make([]int, len(cluster))}
	for i := 0; i < n; i++ {
		sched.SlotOfPI[i] = i
	}
	sched.InSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, m)
		for j := 0; j < m; j++ {
			src := t*m + j
			if src >= n {
				src = -1
			}
			row[j] = src
		}
		sched.InSlot[t] = row
	}
	outFrames := make([][]int, T)
	for o := range cluster {
		frame := 0
		for _, u := range supports[o] {
			if f := u / m; f > frame {
				frame = f
			}
		}
		sched.FrameOfPO[o] = frame
		outFrames[frame] = append(outFrames[frame], o)
	}
	mOut := 0
	for _, fr := range outFrames {
		if len(fr) > mOut {
			mOut = len(fr)
		}
	}
	sched.OutSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, mOut)
		copy(row, outFrames[t])
		for k := len(outFrames[t]); k < mOut; k++ {
			row[k] = -1
		}
		sched.OutSlot[t] = row
	}

	start := time.Now()
	expired := func() bool { return time.Since(start) > opt.ClusterTimeout }
	machine, _, err := TimeFrameFold(sub, sched, opt.MaxStates, 2000000, expired)
	if err != nil {
		return nil, err
	}
	if opt.Minimize {
		mo := opt.MinOpts
		if mo.Timeout <= 0 || mo.Timeout > opt.ClusterTimeout {
			mo.Timeout = opt.ClusterTimeout
		}
		if mo.MaxAtoms <= 0 || mo.MaxAtoms > 512 {
			mo.MaxAtoms = 512
		}
		if mm, merr := fsm.Minimize(machine, mo); merr == nil {
			machine = mm
		}
	}
	enc := fsm.NaturalBinary
	if opt.StateEnc == OneHot {
		enc = fsm.OneHotState
	}
	circuit, err := fsm.Encode(machine, enc)
	if err != nil {
		return nil, err
	}
	// Globalize the output schedule.
	outSched := make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, mOut)
		for k, local := range sched.OutSlot[t] {
			if local < 0 {
				row[k] = -1
			} else {
				row[k] = cluster[local]
			}
		}
		outSched[t] = row
	}
	return &clusterFold{c: circuit, outSched: outSched}, nil
}
