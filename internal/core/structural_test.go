package core_test

import (
	"math/rand"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
)

// adder3 builds the paper's running example (Fig. 4): a 3-bit ripple
// adder with inputs interleaved as a0,b0,a1,b1,a2,b2 so that the natural
// input groups for T=3 are {a0,b0},{a1,b1},{a2,b2}.
func adder3() *aig.Graph {
	g := aig.New()
	var a, b [3]aig.Lit
	for i := 0; i < 3; i++ {
		a[i] = g.PI("a" + string(rune('0'+i)))
		b[i] = g.PI("b" + string(rune('0'+i)))
	}
	carry := aig.Const0
	for i := 0; i < 3; i++ {
		s := g.Xor(g.Xor(a[i], b[i]), carry)
		carry = g.Or(g.And(a[i], b[i]), g.And(carry, g.Xor(a[i], b[i])))
		g.AddPO(s, "s"+string(rune('0'+i)))
	}
	g.AddPO(carry, "cout")
	return g
}

func TestStructuralAdder3MatchesPaperExample(t *testing.T) {
	g := adder3()
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	// Example 1: 2 inputs, 2 outputs, 5 flip-flops (2 data + 3 shift).
	if r.InputPins() != 2 {
		t.Fatalf("input pins = %d, want 2", r.InputPins())
	}
	if r.OutputPins() != 2 {
		t.Fatalf("output pins = %d, want 2", r.OutputPins())
	}
	if r.FlipFlops() != 5 {
		t.Fatalf("flip-flops = %d, want 5", r.FlipFlops())
	}
	// Output schedule: Y1={s0,null}, Y2={s1,null}, Y3={s2,cout}.
	want := [][]int{{0, -1}, {1, -1}, {2, 3}}
	for ti := range want {
		for k := range want[ti] {
			if r.OutSched[ti][k] != want[ti][k] {
				t.Fatalf("OutSched = %v, want %v", r.OutSched, want)
			}
		}
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralBinaryCounter(t *testing.T) {
	g := adder3()
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	// 2 data FFs + ceil(log2 3) = 2 counter bits.
	if r.FlipFlops() != 4 {
		t.Fatalf("flip-flops = %d, want 4", r.FlipFlops())
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralFoldT1Identity(t *testing.T) {
	g := adder3()
	r, err := core.StructuralFold(g, 1, core.StructuralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.T != 1 || r.FlipFlops() != 0 || r.InputPins() != 6 {
		t.Fatalf("identity fold wrong: %+v", r)
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralFoldErrors(t *testing.T) {
	g := adder3()
	if _, err := core.StructuralFold(g, 0, core.StructuralOptions{}); err == nil {
		t.Fatal("T=0 should fail")
	}
	if _, err := core.StructuralFold(g, 7, core.StructuralOptions{}); err == nil {
		t.Fatal("T > n should fail")
	}
	empty := aig.New()
	if _, err := core.StructuralFold(empty, 1, core.StructuralOptions{}); err == nil {
		t.Fatal("no-input circuit should fail")
	}
}

func TestStructuralPinCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		pis := 5 + rng.Intn(20)
		g := randomCircuit(rng, 60, pis, 6)
		for _, T := range []int{2, 3, 4} {
			if T > pis {
				continue
			}
			r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.OneHot})
			if err != nil {
				t.Fatal(err)
			}
			wantM := (pis + T - 1) / T
			if r.InputPins() != wantM {
				t.Fatalf("pis=%d T=%d: m=%d want %d", pis, T, r.InputPins(), wantM)
			}
			if len(r.InSched) != T || len(r.OutSched) != T {
				t.Fatalf("schedule frames wrong")
			}
			// Every original PI appears exactly once in the schedule.
			seen := make(map[int]int)
			for _, row := range r.InSched {
				for _, src := range row {
					if src >= 0 {
						seen[src]++
					}
				}
			}
			if len(seen) != pis {
				t.Fatalf("schedule covers %d of %d inputs", len(seen), pis)
			}
			for src, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("input %d scheduled %d times", src, cnt)
				}
			}
		}
	}
}

func TestStructuralRandomCircuitsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		pis := 4 + rng.Intn(8) // small enough for exhaustive checking
		g := randomCircuit(rng, 80, pis, 5)
		T := 2 + rng.Intn(3)
		if T > pis {
			T = pis
		}
		enc := core.OneHot
		if trial%2 == 0 {
			enc = core.Binary
		}
		r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: enc})
		if err != nil {
			t.Fatal(err)
		}
		if err := eqcheck.VerifyFold(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d (T=%d, %v): %v", trial, T, enc, err)
		}
		if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d unroll (T=%d): %v", trial, T, err)
		}
	}
}

func TestStructuralWideCircuitRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomCircuit(rng, 400, 48, 20)
	for _, T := range []int{2, 4, 8} {
		r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.OneHot})
		if err != nil {
			t.Fatal(err)
		}
		if err := eqcheck.VerifyFold(g, r, 200, 7); err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
	}
}

func TestSimpleFoldAdder3(t *testing.T) {
	g := adder3()
	r, err := core.SimpleFold(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// (T-1)*m = 4 buffers + 3 one-hot counter bits.
	if r.FlipFlops() != 7 {
		t.Fatalf("flip-flops = %d, want 7", r.FlipFlops())
	}
	// All outputs appear in the last frame; output pin count = #PO.
	if r.OutputPins() != 4 {
		t.Fatalf("output pins = %d, want 4", r.OutputPins())
	}
	for k, dst := range r.OutSched[2] {
		if dst != k {
			t.Fatalf("last-frame schedule wrong: %v", r.OutSched[2])
		}
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleFoldRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		pis := 4 + rng.Intn(8)
		g := randomCircuit(rng, 60, pis, 4)
		T := 2 + rng.Intn(3)
		if T > pis {
			T = pis
		}
		r, err := core.SimpleFold(g, T)
		if err != nil {
			t.Fatal(err)
		}
		wantFF := (T-1)*((pis+T-1)/T) + T
		if r.FlipFlops() != wantFF {
			t.Fatalf("trial %d: FF=%d want %d", trial, r.FlipFlops(), wantFF)
		}
		if err := eqcheck.VerifyFold(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d (T=%d): %v", trial, T, err)
		}
	}
}

func TestExecuteScheduleRoundTrip(t *testing.T) {
	g := adder3()
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	in := []bool{true, true, false, true, true, false} // a=101b?, interleaved
	frames := r.ScheduleInputs(in)
	if len(frames) != 3 || len(frames[0]) != 2 {
		t.Fatalf("frames shape wrong: %v", frames)
	}
	if frames[0][0] != in[0] || frames[2][1] != in[5] {
		t.Fatalf("schedule content wrong: %v", frames)
	}
	out := r.Execute(in)
	want := g.Eval(in)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("execute differs at output %d", i)
		}
	}
}

// randomCircuit builds a deterministic random combinational AIG.
func randomCircuit(rng *rand.Rand, ands, pis, pos int) *aig.Graph {
	g := aig.New()
	lits := []aig.Lit{aig.Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(len(lits)/2)].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// adderCircuit builds a w-bit ripple-carry adder with interleaved inputs
// a0,b0,a1,b1,... and outputs s0..s(w-1),cout.
func adderCircuit(w int) *aig.Graph {
	g := aig.New()
	a := make([]aig.Lit, w)
	b := make([]aig.Lit, w)
	for i := 0; i < w; i++ {
		a[i] = g.PI("")
		b[i] = g.PI("")
	}
	carry := aig.Const0
	for i := 0; i < w; i++ {
		g.AddPO(g.Xor(g.Xor(a[i], b[i]), carry), "")
		carry = g.Or(g.And(a[i], b[i]), g.And(carry, g.Xor(a[i], b[i])))
	}
	g.AddPO(carry, "cout")
	return g
}
