package core_test

import (
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
)

func TestFoldWithPostOptimize(t *testing.T) {
	g := adder3()
	opt := aig.DefaultSweepOptions()
	opt.Workers = 2

	plain, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	swept, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.Binary, PostOptimize: &opt})
	if err != nil {
		t.Fatal(err)
	}
	if swept.Gates() > plain.Gates() {
		t.Fatalf("post-optimize grew the fold: %d > %d gates", swept.Gates(), plain.Gates())
	}
	if err := eqcheck.VerifyFold(g, swept, 0, 1); err != nil {
		t.Fatalf("post-optimized structural fold incorrect: %v", err)
	}

	fo := core.DefaultFunctionalOptions()
	fo.PostOptimize = &opt
	fr, err := core.FunctionalFold(g, 3, fo)
	if err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFold(g, fr, 0, 1); err != nil {
		t.Fatalf("post-optimized functional fold incorrect: %v", err)
	}

	ho := core.DefaultHybridOptions()
	ho.PostOptimize = &opt
	hr, err := core.HybridFold(g, 3, ho)
	if err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFold(g, hr, 0, 1); err != nil {
		t.Fatalf("post-optimized hybrid fold incorrect: %v", err)
	}
}
