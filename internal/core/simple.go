package core

import (
	"circuitfold/internal/aig"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
)

// SimpleFold implements the baseline of Section VI: the inputs of the
// first T-1 frames are buffered in load-enabled flip-flops and the entire
// combinational circuit is evaluated in the last frame, producing all
// outputs at once. The number of output pins stays at the original PO
// count, and the flip-flop count is (T-1)*ceil(n/T) for the buffers plus
// a one-hot frame counter.
func SimpleFold(g *aig.Graph, T int) (*Result, error) {
	return SimpleFoldRun(g, T, nil)
}

// SimpleFoldRun is SimpleFold executing under a pipeline.Run (nil means
// no cancellation or budget), composed as the one-stage pipeline synth.
// Result.Report carries the trace.
func SimpleFoldRun(g *aig.Graph, T int, run *pipeline.Run) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	if run == nil {
		run = pipeline.NewRun(nil, pipeline.Budget{})
	}
	if T == 1 {
		return identityFold(g, run, "simple", nil)
	}
	var res *Result
	rep, err := pipeline.Execute(run, "simple", pipeline.Stage{
		Name: pipeline.StageSynth,
		Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			var err error
			res, err = simpleFoldSynth(g, T)
			if err == nil {
				ss.AndsOut = res.Seq.G.NumAnds()
			}
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// simpleFoldSynth builds the input-buffered fold.
func simpleFoldSynth(g *aig.Graph, T int) (*Result, error) {
	n := g.NumPIs()
	m := ceilDiv(n, T)

	cs := aig.New()
	pins := make([]aig.Lit, m)
	for j := range pins {
		pins[j] = cs.PI(pinName("x", j))
	}
	// Buffer registers for frames 1..T-1 (frame T's inputs come straight
	// from the pins).
	buf := make([][]aig.Lit, T-1)
	for t := range buf {
		buf[t] = make([]aig.Lit, m)
		for j := range buf[t] {
			buf[t][j] = cs.PI("")
		}
	}
	// One-hot frame counter.
	sr := make([]aig.Lit, T)
	for i := range sr {
		sr[i] = cs.PI("")
	}

	// The original circuit evaluates on buffered inputs (frames < T) and
	// live pins (frame T).
	piMap := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		t, j := i/m, i%m
		if t == T-1 {
			piMap[i] = pins[j]
		} else {
			piMap[i] = buf[t][j]
		}
	}
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	outs := aig.Transfer(cs, g, piMap, roots)
	for i, o := range outs {
		cs.AddPO(o, g.POName(i))
	}

	// Register next-state: buffers load from the pins during their frame
	// and hold otherwise; the counter rotates.
	next := make([]aig.Lit, 0, (T-1)*m+T)
	init := make([]bool, 0, (T-1)*m+T)
	for t := range buf {
		for j := range buf[t] {
			next = append(next, cs.Mux(sr[t], pins[j], buf[t][j]))
			init = append(init, false)
		}
	}
	for i := 0; i < T; i++ {
		next = append(next, sr[(i+T-1)%T])
		init = append(init, i == 0)
	}

	inSched := make([][]int, T)
	outSched := make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, m)
		for j := 0; j < m; j++ {
			src := t*m + j
			if src >= n {
				src = -1
			}
			row[j] = src
		}
		inSched[t] = row
		if t == T-1 {
			outRow := make([]int, g.NumPOs())
			for i := range outRow {
				outRow[i] = i
			}
			outSched[t] = outRow
		} else {
			outRow := make([]int, g.NumPOs())
			for i := range outRow {
				outRow[i] = -1
			}
			outSched[t] = outRow
		}
	}

	return &Result{
		Seq:       &seq.Circuit{G: cs, NumInputs: m, Next: next, Init: init},
		T:         T,
		InSched:   inSched,
		OutSched:  outSched,
		States:    T,
		StatesMin: -1,
	}, nil
}
