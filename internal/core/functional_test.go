package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
	"circuitfold/internal/pipeline"
)

func TestPinScheduleAdder3MatchesPaperExample2(t *testing.T) {
	g := adder3()
	s, err := core.PinSchedule(g, 3, core.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 2 {
		t.Fatalf("m = %d, want 2", s.M)
	}
	// Example 2: Y1={s0,null}, Y2={s1,null}, Y3={s2,cout};
	// X1={a0,b0}, X2={a1,b1}, X3={a2,b2}.
	wantOut := [][]int{{0, -1}, {1, -1}, {2, 3}}
	for ti := range wantOut {
		for k := range wantOut[ti] {
			if s.OutSlot[ti][k] != wantOut[ti][k] {
				t.Fatalf("OutSlot = %v, want %v", s.OutSlot, wantOut)
			}
		}
	}
	for ti := 0; ti < 3; ti++ {
		got := map[int]bool{s.InSlot[ti][0]: true, s.InSlot[ti][1]: true}
		if !got[2*ti] || !got[2*ti+1] {
			t.Fatalf("InSlot frame %d = %v, want {a%d,b%d}", ti, s.InSlot[ti], ti, ti)
		}
	}
}

func TestPinScheduleSupportProperty(t *testing.T) {
	// Scheduling invariant: each output's support is scheduled in frames
	// no later than the output itself.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomCircuit(rng, 120, 8+rng.Intn(12), 6)
		T := 2 + rng.Intn(4)
		for _, reorder := range []bool{false, true} {
			s, err := core.PinSchedule(g, T, core.ScheduleOptions{Reorder: reorder})
			if err != nil {
				t.Fatal(err)
			}
			sup := g.SupportSets()
			for w := 0; w < g.NumPOs(); w++ {
				for _, u := range sup[w] {
					if s.SlotOfPI[u]/s.M > s.FrameOfPO[w] {
						t.Fatalf("trial %d (r=%v): PO %d at frame %d but PI %d at frame %d",
							trial, reorder, w, s.FrameOfPO[w], u, s.SlotOfPI[u]/s.M)
					}
				}
			}
			// Every PI appears in exactly one slot.
			seen := make(map[int]bool)
			for _, row := range s.InSlot {
				for _, u := range row {
					if u >= 0 {
						if seen[u] {
							t.Fatalf("PI %d scheduled twice", u)
						}
						seen[u] = true
					}
				}
			}
			if len(seen) != g.NumPIs() {
				t.Fatalf("schedule covers %d of %d PIs", len(seen), g.NumPIs())
			}
		}
	}
}

func TestFunctionalAdder3MatchesPaperExample3(t *testing.T) {
	g := adder3()
	opt := core.DefaultFunctionalOptions()
	opt.Reorder = false
	opt.Minimize = false
	r, err := core.FunctionalFold(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6a: 6 states including the don't-care state.
	if r.States != 6 {
		t.Fatalf("states = %d, want 6", r.States)
	}
	if r.InputPins() != 2 || r.OutputPins() != 2 {
		t.Fatalf("pins = %d/%d, want 2/2", r.InputPins(), r.OutputPins())
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalAdder3MinimizesToCarrySaveAdder(t *testing.T) {
	g := adder3()
	opt := core.DefaultFunctionalOptions()
	opt.Minimize = true
	opt.StateEnc = core.Binary
	r, err := core.FunctionalFold(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6b: the FSM minimizes to 2 states (a carry-save adder),
	// which natural-binary encoding realizes with a single flip-flop.
	if r.StatesMin != 2 {
		t.Fatalf("minimized states = %d, want 2", r.StatesMin)
	}
	if r.FlipFlops() != 1 {
		t.Fatalf("flip-flops = %d, want 1", r.FlipFlops())
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalAllConfigurations(t *testing.T) {
	g := adder3()
	for _, reorder := range []bool{false, true} {
		for _, minimize := range []bool{false, true} {
			for _, enc := range []core.Encoding{core.Binary, core.OneHot} {
				opt := core.DefaultFunctionalOptions()
				opt.Reorder = reorder
				opt.Minimize = minimize
				opt.StateEnc = enc
				r, err := core.FunctionalFold(g, 3, opt)
				if err != nil {
					t.Fatalf("r=%v m=%v enc=%v: %v", reorder, minimize, enc, err)
				}
				if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
					t.Fatalf("r=%v m=%v enc=%v: %v", reorder, minimize, enc, err)
				}
			}
		}
	}
}

func TestFunctionalRandomCircuitsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		pis := 4 + rng.Intn(6)
		g := randomCircuit(rng, 60, pis, 4)
		T := 2 + rng.Intn(3)
		if T > pis {
			T = pis
		}
		opt := core.DefaultFunctionalOptions()
		opt.Reorder = trial%2 == 0
		opt.Minimize = trial%3 != 0
		if trial%4 == 0 {
			opt.StateEnc = core.Binary
		}
		r, err := core.FunctionalFold(g, T, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := eqcheck.VerifyFold(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d (T=%d): %v", trial, T, err)
		}
		if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d unroll: %v", trial, err)
		}
	}
}

func TestFunctionalWiderCircuitRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomCircuit(rng, 150, 24, 8)
	for _, T := range []int{2, 4} {
		opt := core.DefaultFunctionalOptions()
		opt.Minimize = false
		r, err := core.FunctionalFold(g, T, opt)
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		if err := eqcheck.VerifyFold(g, r, 300, 5); err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
	}
}

func TestFunctionalStateCapAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomCircuit(rng, 300, 24, 10)
	opt := core.DefaultFunctionalOptions()
	opt.Minimize = false
	opt.Budget.MaxStates = 2
	if _, err := core.FunctionalFold(g, 4, opt); err == nil {
		t.Fatal("expected state-cap abort")
	} else if !errors.Is(err, pipeline.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestFunctionalBeatsStructuralOnAdders(t *testing.T) {
	// The paper's headline: the functional method needs far fewer
	// flip-flops than the structural one on arithmetic circuits.
	g := adderCircuit(8) // 8-bit interleaved ripple adder
	sr, err := core.StructuralFold(g, 8, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultFunctionalOptions()
	opt.StateEnc = core.Binary
	fr, err := core.FunctionalFold(g, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fr.StatesMin != 2 {
		t.Fatalf("adder FSM should minimize to 2 states, got %d", fr.StatesMin)
	}
	if fr.FlipFlops() >= sr.FlipFlops() {
		t.Fatalf("functional (%d FF) should beat structural (%d FF)",
			fr.FlipFlops(), sr.FlipFlops())
	}
	if err := eqcheck.VerifyFold(g, fr, 500, 3); err != nil {
		t.Fatal(err)
	}
}
