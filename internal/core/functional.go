package core

import (
	"context"
	"fmt"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/fsm"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// FunctionalOptions configures FunctionalFold (Section V). The three
// booleans match the configuration column of Table III: input reordering
// (r/nr), state minimization (m/nm), and the state encoding (nat/1hot).
type FunctionalOptions struct {
	// Reorder enables BDD symmetric-sifting input reordering during pin
	// scheduling.
	Reorder bool
	// Minimize runs MeMin-style exact state minimization on the folded
	// FSM before encoding.
	Minimize bool
	// StateEnc selects natural binary or one-hot state encoding.
	StateEnc Encoding
	// Ctx cancels the fold mid-stage; nil means no cancellation.
	Ctx context.Context
	// Budget bounds the fold's resources. Zero fields fall back to the
	// method defaults: 20000 states, 4,000,000 BDD nodes, no deadline.
	// The paper's analogue is its 300-second limit on scheduling plus
	// folding.
	Budget pipeline.Budget
	// MinOpts bounds the minimization step.
	MinOpts fsm.MinimizeOptions
	// PostOptimize, when non-nil, runs the cleanup/balance/SAT-sweep
	// pipeline with these settings on the folded circuit's combinational
	// core before returning.
	PostOptimize *aig.SweepOptions
	// Obs, when non-nil, receives span traces and metrics for the whole
	// fold (see internal/obs). Nil disables observability at zero cost.
	Obs *obs.Observer
}

// DefaultFunctionalOptions returns the configuration used by the
// experiment harness: reordering on, minimization on, one-hot encoding.
func DefaultFunctionalOptions() FunctionalOptions {
	return FunctionalOptions{
		Reorder:  true,
		Minimize: true,
		StateEnc: OneHot,
		MinOpts:  fsm.DefaultMinimizeOptions(),
	}
}

// FunctionalFold folds g by T frames with the functional method of
// Section V, composed as the pipeline schedule → tff → [minimize] →
// encode → [sweep]: pin scheduling, FSM construction via time-frame
// folding (BDD cut decomposition), optional exact state minimization,
// and state encoding. The returned Result's States/StatesMin report the
// FSM sizes before and after minimization (including the don't-care
// final state, as the paper counts it); StatesMin is -1 when
// minimization was disabled or aborted. Result.Report carries the
// per-stage trace. A cancelled context or exhausted budget aborts
// mid-stage with an error matching pipeline.ErrCanceled or
// pipeline.ErrBudgetExceeded that carries the partial trace (unwrap to
// *pipeline.Error).
func FunctionalFold(g *aig.Graph, T int, opt FunctionalOptions) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	run := pipeline.NewRunObserved(opt.Ctx, opt.Budget, opt.Obs)
	if T == 1 {
		return identityFold(g, run, "functional", opt.PostOptimize)
	}

	var (
		sched     *Schedule
		machine   *fsm.Machine
		states    int
		statesMin = -1
		res       *Result
	)
	stages := []pipeline.Stage{
		{Name: pipeline.StageSchedule, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			ss.AndsOut = g.NumAnds() // scheduling never rewrites the graph
			var err error
			sched, err = PinScheduleRun(g, T, ScheduleOptions{Reorder: opt.Reorder}, run)
			return err
		}},
		{Name: pipeline.StageTFF, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			ss.StatesIn = 1
			var err error
			machine, states, err = TimeFrameFold(g, sched, run)
			ss.StatesOut = states
			return err
		}},
	}
	if opt.Minimize {
		stages = append(stages, pipeline.Stage{Name: pipeline.StageMinimize, Run: func(ss *pipeline.StageStats) error {
			ss.StatesIn = states
			mo := opt.MinOpts
			if mo.Stop == nil {
				mo.Stop = run.Check
			}
			if mo.Span == nil {
				mo.Span = run.Span()
			}
			if mo.Metrics == nil {
				mo.Metrics = run.Metrics()
			}
			if rem, ok := run.Remaining(); ok && (mo.Timeout <= 0 || rem < mo.Timeout) {
				mo.Timeout = rem
			}
			mm, merr := fsm.Minimize(machine, mo)
			if merr != nil {
				return fmt.Errorf("core: state minimization failed: %w", merr)
			}
			machine = mm
			statesMin = mm.NumStates()
			ss.StatesOut = statesMin
			return nil
		}})
	}
	stages = append(stages, pipeline.Stage{Name: pipeline.StageEncode, Run: func(ss *pipeline.StageStats) error {
		ss.StatesIn = machine.NumStates()
		enc := fsm.NaturalBinary
		if opt.StateEnc == OneHot {
			enc = fsm.OneHotState
		}
		circuit, err := fsm.Encode(machine, enc)
		if err != nil {
			return err
		}
		ss.AndsOut = circuit.G.NumAnds()
		res = &Result{
			Seq:       circuit,
			T:         T,
			InSched:   sched.InSlot,
			OutSched:  sched.OutSlot,
			States:    states,
			StatesMin: statesMin,
		}
		return nil
	}})
	if opt.PostOptimize != nil {
		stages = append(stages, sweepStage(&res, opt.PostOptimize, run))
	}
	rep, err := pipeline.Execute(run, "functional", stages...)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// TimeFrameFold constructs the minimal per-frame FSM of the scheduled
// circuit: states at frame t are the distinct tuples of residual output
// functions (BDD cofactor classes) after consuming the first t input
// groups — the hyper-function cut decomposition of TFF. It returns the
// machine (final don't-care state elided, transitions into it marked
// DontCare) and the total state count including the don't-care state.
//
// The run bounds the construction: its state budget (default 20000)
// and BDD node budget (default 4,000,000) abort with an error matching
// pipeline.ErrBudgetExceeded, a cancelled context or elapsed deadline
// with pipeline.ErrCanceled / pipeline.ErrBudgetExceeded. A nil run
// applies the default caps with no deadline.
func TimeFrameFold(g *aig.Graph, sched *Schedule, run *pipeline.Run) (*fsm.Machine, int, error) {
	T, m := sched.T, sched.M
	n := g.NumPIs()
	maxStates := run.StateLimit(20000)
	nodeBudget := run.NodeLimit(4000000)

	// Folding manager: variable t*m+j is input pin j during frame t.
	// The hard node cap backstops the soft budget polls below: even a
	// single apply call that blows up between polls unwinds with
	// bdd.ErrNodeLimit instead of growing without bound. The factor
	// leaves headroom for reordering's transient growth.
	fmgr := bdd.New(T * m)
	fmgr.SetNodeLimit(4 * nodeBudget)
	fmgr.SetObserver(run.Span(), run.Metrics())
	mStates := run.Metrics().Gauge(obs.MFSMStates)
	varOfPI := make([]int, n)
	for i := range varOfPI {
		varOfPI[i] = sched.SlotOfPI[i]
	}
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	poBDD, err := buildOutputBDDs(g, fmgr, varOfPI, roots, nodeBudget, run)
	if err != nil {
		return nil, 0, err
	}

	// poList[t]: outputs still pending after frame t, ordered by
	// (frame, pin). State tuples at frame t align with poList[t].
	poList := make([][]int, T)
	for t := 0; t < T; t++ {
		for tt := t; tt < T; tt++ {
			for _, w := range sched.OutSlot[tt] {
				if w >= 0 {
					poList[t] = append(poList[t], w)
				}
			}
		}
	}
	pinOf := make([]int, g.NumPOs())
	for t := 0; t < T; t++ {
		for k, w := range sched.OutSlot[t] {
			if w >= 0 {
				pinOf[w] = k
			}
		}
	}
	mOut := len(sched.OutSlot[0])

	// Common input-variable manager for the machine's conditions. It
	// outlives the fold (the returned Machine owns it), so its metrics
	// share the registry with the folding manager: the gauges track
	// whichever manager flushed last, the counters accumulate across both.
	cmgr := bdd.New(m)
	cmgr.SetNodeLimit(4 * nodeBudget)
	cmgr.SetObserver(run.Span(), run.Metrics())

	type state struct {
		comps []bdd.Node
	}
	keyOf := func(comps []bdd.Node) string {
		b := make([]byte, 0, len(comps)*4)
		for _, c := range comps {
			b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		return string(b)
	}

	// The initial state's tuple is aligned with poList[0] (frame-major
	// output order), not PO-index order.
	initComps := make([]bdd.Node, len(poList[0]))
	for i, w := range poList[0] {
		initComps[i] = poBDD[w]
	}
	var trans [][]fsm.Transition
	totalStates := 0
	cur := []state{{comps: initComps}}
	trans = append(trans, nil)
	totalStates = 1
	curBase := 0 // global id of cur[0]

	decompMemo := make(map[[2]int][]decomposition)
	decompose := func(f bdd.Node, cut int) []decomposition {
		k := [2]int{int(f), cut}
		if d, ok := decompMemo[k]; ok {
			return d
		}
		d := decomposeAtCut(fmgr, f, cut)
		decompMemo[k] = d
		return d
	}

	abort := func(t int, err error) (*fsm.Machine, int, error) {
		return nil, 0, fmt.Errorf("core: time-frame folding aborted at frame %d: %w", t+1, err)
	}
	// One "tff.frame" span per frame (the cut-decomposition round).
	// End is idempotent, so the deferred close only fires for a frame
	// left in flight by an abort path.
	var fsp *obs.Span
	defer func() { fsp.End() }()
	for t := 0; t < T; t++ {
		fsp.End()
		fsp = run.Span().Child("tff.frame", "core")
		fsp.SetInt("frame", int64(t))
		fsp.SetInt("states", int64(len(cur)))
		if err := run.Check(); err != nil {
			return abort(t, err)
		}
		cut := (t + 1) * m
		varMap := make(map[int]int, m)
		for j := 0; j < m; j++ {
			varMap[t*m+j] = j
		}
		nextIndex := make(map[string]int)
		var nextStates []state
		nextBase := curBase + len(cur)

		for si, st := range cur {
			if si%64 == 0 {
				if err := run.Check(); err != nil {
					return abort(t, err)
				}
			}
			type cell struct {
				cond bdd.Node
				outs []fsm.Tri
				next []bdd.Node
			}
			cells := []cell{{cond: bdd.True, outs: makeX(mOut)}}
			for ci, w := range poList[t] {
				branches := decompose(st.comps[ci], cut)
				emit := sched.FrameOfPO[w] == t // output produced this frame
				if len(cells)*len(branches) > 64 {
					if err := run.Check(); err != nil {
						return abort(t, err)
					}
				}
				var refined []cell
				for _, c := range cells {
					for _, br := range branches {
						nc := fmgr.And(c.cond, br.cond)
						if nc == bdd.False {
							continue
						}
						cellOuts := c.outs
						cellNext := c.next
						if emit {
							cellOuts = append([]fsm.Tri(nil), c.outs...)
							switch br.leaf {
							case bdd.True:
								cellOuts[pinOf[w]] = fsm.One
							case bdd.False:
								cellOuts[pinOf[w]] = fsm.Zero
							default:
								return nil, 0, fmt.Errorf("core: output %d not terminal at its frame", w)
							}
						} else {
							cellNext = append(append([]bdd.Node(nil), c.next...), br.leaf)
						}
						refined = append(refined, cell{cond: nc, outs: cellOuts, next: cellNext})
					}
				}
				cells = refined
				if len(cells) > 4*maxStates {
					return nil, 0, fmt.Errorf("core: transition refinement exceeds bound %d at frame %d: %w",
						4*maxStates, t+1, pipeline.ErrBudgetExceeded)
				}
				if nodeBudget > 0 && fmgr.NumNodes() > nodeBudget {
					return nil, 0, errBudget
				}
			}
			for _, c := range cells {
				dst := fsm.DontCare
				if t+1 < T {
					k := keyOf(c.next)
					id, ok := nextIndex[k]
					if !ok {
						id = len(nextStates)
						nextIndex[k] = id
						nextStates = append(nextStates, state{comps: c.next})
					}
					dst = nextBase + id
				}
				cond := fmgr.Translate(cmgr, c.cond, varMap)
				trans[curBase+si] = append(trans[curBase+si], fsm.Transition{
					Cond: cond, Out: c.outs, Dst: dst,
				})
			}
		}
		if t+1 < T {
			totalStates += len(nextStates)
			if totalStates > maxStates {
				return nil, 0, fmt.Errorf("core: state count exceeds %d at frame %d: %w",
					maxStates, t+1, pipeline.ErrBudgetExceeded)
			}
			for range nextStates {
				trans = append(trans, nil)
			}
			curBase = nextBase
			cur = nextStates
			fsp.SetInt("next_states", int64(len(nextStates)))
		}
		run.NoteBDDNodes(fmgr.NumNodes())
		mStates.Set(int64(totalStates))
	}
	totalStates++ // the don't-care destination state s_*^T
	mStates.Set(int64(totalStates))

	machine := &fsm.Machine{
		Mgr:        cmgr,
		NumInputs:  m,
		NumOutputs: mOut,
		Initial:    0,
		Trans:      trans,
	}
	return machine, totalStates, nil
}

func makeX(n int) []fsm.Tri {
	out := make([]fsm.Tri, n)
	for i := range out {
		out[i] = fsm.X
	}
	return out
}
