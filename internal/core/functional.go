package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/fault"
	"circuitfold/internal/fsm"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// FunctionalOptions configures FunctionalFold (Section V). The three
// booleans match the configuration column of Table III: input reordering
// (r/nr), state minimization (m/nm), and the state encoding (nat/1hot).
type FunctionalOptions struct {
	// Reorder enables BDD symmetric-sifting input reordering during pin
	// scheduling.
	Reorder bool
	// Minimize runs MeMin-style exact state minimization on the folded
	// FSM before encoding.
	Minimize bool
	// StateEnc selects natural binary or one-hot state encoding.
	StateEnc Encoding
	// Ctx cancels the fold mid-stage; nil means no cancellation.
	Ctx context.Context
	// Budget bounds the fold's resources. Zero fields fall back to the
	// method defaults: 20000 states, 4,000,000 BDD nodes, no deadline.
	// The paper's analogue is its 300-second limit on scheduling plus
	// folding.
	Budget pipeline.Budget
	// MinOpts bounds the minimization step.
	MinOpts fsm.MinimizeOptions
	// Workers bounds the goroutines refining each frame's states in
	// parallel during time-frame folding. Values below 2 keep the fold
	// sequential; the result is bit-identical for every worker count
	// (see TimeFrameFold). Zero means sequential.
	Workers int
	// PostOptimize, when non-nil, runs the cleanup/balance/SAT-sweep
	// pipeline with these settings on the folded circuit's combinational
	// core before returning.
	PostOptimize *aig.SweepOptions
	// Pools, when non-nil, supplies reusable fold arenas: the schedule
	// and TFF stages draw their BDD managers from Pools.BDD, and the
	// minimize and sweep stages draw SAT solvers from Pools.SAT (unless
	// their own options already name a pool). Arenas are hard-reset
	// between uses, so a pooled fold is bit-identical to a cold one.
	Pools *Pools
	// Obs, when non-nil, receives span traces and metrics for the whole
	// fold (see internal/obs). Nil disables observability at zero cost.
	Obs *obs.Observer
	// Checkpoint, when non-nil, saves each completed stage's output
	// artifact (schedule, folded machine, minimized machine, encoded
	// result) and restores from it on a later run, re-entering the
	// pipeline at the last completed stage. The caller must key the
	// store to the (circuit, T, options) triple — the stages trust that
	// a stored artifact belongs to this exact fold.
	Checkpoint pipeline.Checkpoint
}

// DefaultFunctionalOptions returns the configuration used by the
// experiment harness: reordering on, minimization on, one-hot encoding.
func DefaultFunctionalOptions() FunctionalOptions {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return FunctionalOptions{
		Reorder:  true,
		Minimize: true,
		StateEnc: OneHot,
		Workers:  w,
		MinOpts:  fsm.DefaultMinimizeOptions(),
	}
}

// FunctionalFold folds g by T frames with the functional method of
// Section V, composed as the pipeline schedule → tff → [minimize] →
// encode → [sweep]: pin scheduling, FSM construction via time-frame
// folding (BDD cut decomposition), optional exact state minimization,
// and state encoding. The returned Result's States/StatesMin report the
// FSM sizes before and after minimization (including the don't-care
// final state, as the paper counts it); StatesMin is -1 when
// minimization was disabled or aborted. Result.Report carries the
// per-stage trace. A cancelled context or exhausted budget aborts
// mid-stage with an error matching pipeline.ErrCanceled or
// pipeline.ErrBudgetExceeded that carries the partial trace (unwrap to
// *pipeline.Error).
func FunctionalFold(g *aig.Graph, T int, opt FunctionalOptions) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	run := pipeline.NewRunObserved(opt.Ctx, opt.Budget, opt.Obs)
	run.SetCheckpoint(opt.Checkpoint)
	if T == 1 {
		return identityFold(g, run, "functional", pooledSweepOptions(opt.PostOptimize, opt.Pools))
	}

	var (
		sched     *Schedule
		machine   *fsm.Machine
		states    int
		statesMin = -1
		res       *Result
	)
	stages := []pipeline.Stage{
		{Name: pipeline.StageSchedule, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			ss.AndsOut = g.NumAnds() // scheduling never rewrites the graph
			var err error
			sched, err = PinScheduleRun(g, T, ScheduleOptions{Reorder: opt.Reorder, Pool: opt.Pools.bddPool()}, run)
			return err
		},
			Snapshot: func() ([]byte, error) { return EncodeSchedule(sched) },
			Restore: func(data []byte, ss *pipeline.StageStats) error {
				s, err := DecodeSchedule(data)
				if err != nil {
					return err
				}
				if s.T != T {
					return fmt.Errorf("core: checkpointed schedule folds by %d, want %d", s.T, T)
				}
				sched = s
				ss.AndsIn = g.NumAnds()
				ss.AndsOut = g.NumAnds()
				return nil
			},
		},
		{Name: pipeline.StageTFF, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			ss.StatesIn = 1
			var err error
			machine, states, err = TimeFrameFoldPooled(g, sched, opt.Workers, run, opt.Pools.bddPool())
			ss.StatesOut = states
			return err
		},
			Snapshot: func() ([]byte, error) { return EncodeMachine(machine, states) },
			Restore: func(data []byte, ss *pipeline.StageStats) error {
				m, n, err := DecodeMachine(data)
				if err != nil {
					return err
				}
				machine, states = m, n
				ss.AndsIn = g.NumAnds()
				ss.StatesIn = 1
				ss.StatesOut = states
				return nil
			},
		},
	}
	if opt.Minimize {
		stages = append(stages, pipeline.Stage{Name: pipeline.StageMinimize, Run: func(ss *pipeline.StageStats) error {
			ss.StatesIn = states
			mo := opt.MinOpts
			if mo.Stop == nil {
				mo.Stop = run.Check
			}
			if mo.Span == nil {
				mo.Span = run.Span()
			}
			if mo.Metrics == nil {
				mo.Metrics = run.Metrics()
			}
			if mo.Solvers == nil {
				mo.Solvers = opt.Pools.satPool()
			}
			if rem, ok := run.Remaining(); ok && (mo.Timeout <= 0 || rem < mo.Timeout) {
				mo.Timeout = rem
			}
			mm, merr := fsm.Minimize(machine, mo)
			if merr != nil {
				return fmt.Errorf("core: state minimization failed: %w", merr)
			}
			machine = mm
			statesMin = mm.NumStates()
			ss.StatesOut = statesMin
			return nil
		},
			Snapshot: func() ([]byte, error) { return EncodeMachine(machine, statesMin) },
			Restore: func(data []byte, ss *pipeline.StageStats) error {
				m, n, err := DecodeMachine(data)
				if err != nil {
					return err
				}
				machine, statesMin = m, n
				ss.StatesIn = states
				ss.StatesOut = statesMin
				return nil
			},
		})
	}
	stages = append(stages, pipeline.Stage{Name: pipeline.StageEncode, Run: func(ss *pipeline.StageStats) error {
		ss.StatesIn = machine.NumStates()
		enc := fsm.NaturalBinary
		if opt.StateEnc == OneHot {
			enc = fsm.OneHotState
		}
		circuit, err := fsm.Encode(machine, enc)
		if err != nil {
			return err
		}
		ss.AndsOut = circuit.G.NumAnds()
		res = &Result{
			Seq:       circuit,
			T:         T,
			InSched:   sched.InSlot,
			OutSched:  sched.OutSlot,
			States:    states,
			StatesMin: statesMin,
		}
		return nil
	},
		Snapshot: func() ([]byte, error) { return EncodeResult(res) },
		Restore: func(data []byte, ss *pipeline.StageStats) error {
			r, err := DecodeResult(data)
			if err != nil {
				return err
			}
			res = r
			if machine != nil {
				ss.StatesIn = machine.NumStates()
			}
			ss.AndsOut = res.Seq.G.NumAnds()
			return nil
		},
	})
	if opt.PostOptimize != nil {
		stages = append(stages, sweepStage(&res, pooledSweepOptions(opt.PostOptimize, opt.Pools), run))
	}
	rep, err := pipeline.Execute(run, "functional", stages...)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// TimeFrameFold constructs the minimal per-frame FSM of the scheduled
// circuit: states at frame t are the distinct tuples of residual output
// functions (BDD cofactor classes) after consuming the first t input
// groups — the hyper-function cut decomposition of TFF. It returns the
// machine (final don't-care state elided, transitions into it marked
// DontCare) and the total state count including the don't-care state.
//
// workers > 1 refines each frame's states concurrently once a frame
// holds more states than workers (smaller frames fold inline — the
// fan-out overhead would dominate): every worker owns a Clone of the
// folding manager, taken lazily at the first fanned-out frame, states
// are sharded across workers by index stride, and the per-state
// results are merged sequentially in state order. Cut-decomposition
// leaves are always sub-nodes of the output BDDs, which every arena
// shares — so the next-state tuples, the dedup keys, and the machine's
// condition manager layout are identical for every worker count: the
// folded machine is bit-for-bit independent of workers. A panic inside
// a worker (including the seeded
// fault.PointTFFFrameWorker) is caught at the worker boundary and
// surfaces as an error matching pipeline.ErrInternal (budget unwinds
// keep their pipeline.ErrBudgetExceeded identity) after the frame's
// remaining workers drain — the pool never deadlocks.
//
// The run bounds the construction: its state budget (default 20000)
// and BDD node budget (default 4,000,000) abort with an error matching
// pipeline.ErrBudgetExceeded, a cancelled context or elapsed deadline
// with pipeline.ErrCanceled / pipeline.ErrBudgetExceeded. A nil run
// applies the default caps with no deadline.
func TimeFrameFold(g *aig.Graph, sched *Schedule, workers int, run *pipeline.Run) (*fsm.Machine, int, error) {
	return TimeFrameFoldPooled(g, sched, workers, run, nil)
}

// TimeFrameFoldPooled is TimeFrameFold drawing its folding manager
// (and returning it, plus any worker clones) from the given arena pool;
// a nil pool allocates fresh, making the two entry points identical.
// The machine's condition manager is always freshly allocated — the
// returned Machine owns it for its whole lifetime — so only the
// fold-internal arenas recycle. Pooled and cold folds are bit-identical
// (see bdd.Manager.Reset).
func TimeFrameFoldPooled(g *aig.Graph, sched *Schedule, workers int, run *pipeline.Run, pool *bdd.Pool) (*fsm.Machine, int, error) {
	T, m := sched.T, sched.M
	n := g.NumPIs()
	maxStates := run.StateLimit(20000)
	nodeBudget := run.NodeLimit(4000000)

	// Folding manager: variable t*m+j is input pin j during frame t.
	// The hard node cap backstops the soft budget polls below: even a
	// single apply call that blows up between polls unwinds with
	// bdd.ErrNodeLimit instead of growing without bound. The factor
	// leaves headroom for reordering's transient growth.
	fmgr := pool.Get(T * m)
	// Every fold-internal arena — the folding manager and any worker
	// clones — returns to the pool on every exit path, including panic
	// unwinds out of the node cap (Reset at the next Get heals any
	// mid-operation state). Nothing the fold returns references these
	// arenas: conditions are translated into the machine's own manager.
	var wmgrs []*bdd.Manager
	defer func() {
		if wmgrs == nil {
			pool.Put(fmgr)
			return
		}
		for _, wm := range wmgrs {
			pool.Put(wm)
		}
	}()
	// The scheduling BDDs predict the folding manager's size: presizing
	// skips the unique-table growth rehashes (the whole-circuit build
	// lands a bit above the per-frame peak, hence the headroom factor).
	if sched.BDDHint > 0 {
		fmgr.Reserve(sched.BDDHint * 2)
	}
	fmgr.SetNodeLimit(4 * nodeBudget)
	fmgr.SetObserver(run.Span(), run.Metrics())
	mStates := run.Metrics().Gauge(obs.MFSMStates)
	varOfPI := make([]int, n)
	for i := range varOfPI {
		varOfPI[i] = sched.SlotOfPI[i]
	}
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	poBDD, err := buildOutputBDDs(g, fmgr, varOfPI, roots, nodeBudget, run)
	if err != nil {
		return nil, 0, err
	}

	// poList[t]: outputs still pending after frame t, ordered by
	// (frame, pin). State tuples at frame t align with poList[t].
	poList := make([][]int, T)
	for t := 0; t < T; t++ {
		for tt := t; tt < T; tt++ {
			for _, w := range sched.OutSlot[tt] {
				if w >= 0 {
					poList[t] = append(poList[t], w)
				}
			}
		}
	}
	pinOf := make([]int, g.NumPOs())
	for t := 0; t < T; t++ {
		for k, w := range sched.OutSlot[t] {
			if w >= 0 {
				pinOf[w] = k
			}
		}
	}
	mOut := len(sched.OutSlot[0])

	// Common input-variable manager for the machine's conditions. It
	// outlives the fold (the returned Machine owns it), so its metrics
	// share the registry with the folding manager: the gauges track
	// whichever manager flushed last, the counters accumulate across both.
	cmgr := bdd.New(m)
	cmgr.SetNodeLimit(4 * nodeBudget)
	cmgr.SetObserver(run.Span(), run.Metrics())

	keyOf := func(comps []bdd.Node) string {
		b := make([]byte, 0, len(comps)*4)
		for _, c := range comps {
			b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		return string(b)
	}

	// Worker arenas. Worker 0 keeps the folding manager itself (and its
	// observer); every further worker gets a private Clone, taken lazily
	// at the first frame that actually fans out. Any clone taken after
	// the output BDDs exist agrees with every other arena on every node
	// reachable from poBDD — and cut-decomposition leaves are always
	// sub-nodes of those BDDs, never fresh allocations — so the
	// next-state tuples and their dedup keys are arena-independent no
	// matter when the clones are made. State si of a frame is always
	// refined by worker si%W in that worker's arena (frames too small to
	// fan out fold inline on worker 0), so the refinement output does
	// not depend on W.
	if workers < 1 {
		workers = 1
	}
	wmgrs = make([]*bdd.Manager, workers)
	wmgrs[0] = fmgr
	cloned := workers == 1
	memos := make([]*workerScratch, workers)
	for w := range memos {
		memos[w] = &workerScratch{
			memo: make(map[[2]int][]decomposition),
			dec:  newDecompScratch(),
		}
	}
	if workers > 1 {
		run.Metrics().Gauge(obs.MFoldFrameWorkers).Set(int64(workers))
	}
	parallelFrames := int64(0)

	// The initial state's tuple is aligned with poList[0] (frame-major
	// output order), not PO-index order.
	initComps := make([]bdd.Node, len(poList[0]))
	for i, w := range poList[0] {
		initComps[i] = poBDD[w]
	}
	var trans [][]fsm.Transition
	totalStates := 0
	cur := []foldState{{comps: initComps}}
	trans = append(trans, nil)
	totalStates = 1
	curBase := 0 // global id of cur[0]

	abort := func(t int, err error) (*fsm.Machine, int, error) {
		return nil, 0, fmt.Errorf("core: time-frame folding aborted at frame %d: %w", t+1, err)
	}
	// One "tff.frame" span per frame (the cut-decomposition round).
	// End is idempotent, so the deferred close only fires for a frame
	// left in flight by an abort path.
	var fsp *obs.Span
	defer func() { fsp.End() }()
	for t := 0; t < T; t++ {
		fsp.End()
		fsp = run.Span().Child("tff.frame", "core")
		fsp.SetInt("frame", int64(t))
		fsp.SetInt("states", int64(len(cur)))
		if err := run.Check(); err != nil {
			return abort(t, err)
		}
		cut := (t + 1) * m
		varMap := make(map[int]int, m)
		for j := 0; j < m; j++ {
			varMap[t*m+j] = j
		}

		fr := &frameRefiner{
			sched: sched, run: run, poList: poList[t], pinOf: pinOf,
			frame: t, cut: cut, mOut: mOut,
			maxStates: maxStates, nodeBudget: nodeBudget,
		}
		results := make([][]foldCell, len(cur))
		// Fan out only when the frame holds more states than workers:
		// below that, goroutine and merge overhead outweighs the work
		// (the 64-adder averages two states per frame), and the inline
		// path below produces the identical machine.
		if workers > 1 && len(cur) > workers {
			if !cloned {
				for w := 1; w < workers; w++ {
					wmgrs[w] = fmgr.Clone()
				}
				cloned = true
			}
			parallelFrames++
			fsp.SetInt("workers", int64(workers))
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Attribution labels for CPU profiles: derive from the
					// run's context so labels set upstream (the fold
					// daemon's per-job "job" label) survive alongside the
					// stage-level ones, mirroring the sweep workers.
					pprof.SetGoroutineLabels(pprof.WithLabels(run.Context(),
						pprof.Labels("stage", "tff", "tff.worker", strconv.Itoa(w))))
					// The recover boundary mirrors pipeline.runStage:
					// budget unwinds (bdd.ErrNodeLimit) keep their
					// identity, anything else reads as ErrInternal.
					defer func() {
						if r := recover(); r != nil {
							errs[w] = pipeline.AsInternal("tff.frame.worker", r)
							if errors.Is(errs[w], pipeline.ErrInternal) {
								run.Metrics().Counter(obs.MFoldPanics).Add(1)
							}
						}
					}()
					for si := w; si < len(cur); si += workers {
						cells, err := fr.refineState(wmgrs[w], memos[w], cur[si])
						if err != nil {
							errs[w] = err
							return
						}
						results[si] = cells
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return abort(t, err)
				}
			}
		} else {
			for si := range cur {
				// Before any clone exists everything folds on worker 0;
				// afterwards the inline path keeps the si%W ownership so
				// memos stay consistent with their arenas.
				w := 0
				if cloned {
					w = si % workers
				}
				cells, err := fr.refineState(wmgrs[w], memos[w], cur[si])
				if err != nil {
					return abort(t, err)
				}
				results[si] = cells
			}
		}

		// Sequential merge in state order. Conditions translate into the
		// machine's manager from the arena of the worker that owns the
		// state; the cmgr layout depends only on the translated functions
		// and their order, both of which are worker-count-invariant.
		nextIndex := make(map[string]int)
		var nextStates []foldState
		nextBase := curBase + len(cur)
		for si := range cur {
			owner := wmgrs[0]
			if cloned {
				owner = wmgrs[si%workers]
			}
			for _, c := range results[si] {
				dst := fsm.DontCare
				if t+1 < T {
					k := keyOf(c.next)
					id, ok := nextIndex[k]
					if !ok {
						id = len(nextStates)
						nextIndex[k] = id
						nextStates = append(nextStates, foldState{comps: c.next})
					}
					dst = nextBase + id
				}
				cond := owner.Translate(cmgr, c.cond, varMap)
				trans[curBase+si] = append(trans[curBase+si], fsm.Transition{
					Cond: cond, Out: c.outs, Dst: dst,
				})
			}
		}
		if t+1 < T {
			totalStates += len(nextStates)
			if totalStates > maxStates {
				return nil, 0, fmt.Errorf("core: state count exceeds %d at frame %d: %w",
					maxStates, t+1, pipeline.ErrBudgetExceeded)
			}
			for range nextStates {
				trans = append(trans, nil)
			}
			curBase = nextBase
			cur = nextStates
			fsp.SetInt("next_states", int64(len(nextStates)))
		}
		nodes := 0
		for _, wm := range wmgrs {
			if wm == nil {
				continue // worker never cloned (no frame fanned out yet)
			}
			if n := wm.NumNodes(); n > nodes {
				nodes = n
			}
		}
		run.NoteBDDNodes(nodes)
		mStates.Set(int64(totalStates))
	}
	totalStates++ // the don't-care destination state s_*^T
	mStates.Set(int64(totalStates))
	run.Metrics().Gauge(obs.MFoldParallelFrames).Set(parallelFrames)

	machine := &fsm.Machine{
		Mgr:        cmgr,
		NumInputs:  m,
		NumOutputs: mOut,
		Initial:    0,
		Trans:      trans,
	}
	return machine, totalStates, nil
}

// foldState is one TFF state: the tuple of residual output functions,
// aligned with poList[frame]. Node values refer to the shared pre-clone
// arena prefix, so tuples compare equal across worker arenas.
type foldState struct {
	comps []bdd.Node
}

// foldCell is one refined transition cell of a state: the input
// condition (a node in the refining worker's arena), the frame's
// emitted outputs, and the next state's component tuple (nodes of the
// shared arena prefix).
type foldCell struct {
	cond bdd.Node
	outs []fsm.Tri
	next []bdd.Node
}

// frameRefiner bundles the read-only per-frame context shared by all
// workers refining that frame.
// workerScratch is one worker's private refinement state: the
// decomposition memo (keyed by component node and cut level) plus the
// reusable decomposeAtCut buffers. Everything in it references the
// worker's own arena.
type workerScratch struct {
	memo map[[2]int][]decomposition
	dec  *decompScratch
}

type frameRefiner struct {
	sched      *Schedule
	run        *pipeline.Run
	poList     []int
	pinOf      []int
	frame, cut int
	mOut       int
	maxStates  int
	nodeBudget int
}

// refineState splits one state's input space into cells with uniform
// behavior by intersecting the cut decompositions of its pending
// outputs. wm is the arena of the worker that owns the state and ws
// the worker's private decomposition cache and scratch (decomposition
// conditions live in the owning arena and must never cross workers).
// The error is either
// a budget/cancellation signal from the run or an injected fault;
// bdd.ErrNodeLimit unwinds as a panic and is caught at the worker
// boundary (parallel) or the pipeline stage boundary (sequential).
func (fr *frameRefiner) refineState(wm *bdd.Manager, ws *workerScratch, st foldState) ([]foldCell, error) {
	if err := fault.Point(fault.PointTFFFrameWorker); err != nil {
		return nil, err
	}
	if err := fr.run.Check(); err != nil {
		return nil, err
	}
	cells := []foldCell{{cond: bdd.True, outs: makeX(fr.mOut)}}
	var scratch []foldCell // ping-pong buffer reused across refinement rounds
	for ci, w := range fr.poList {
		branches, ok := ws.memo[[2]int{int(st.comps[ci]), fr.cut}]
		if !ok {
			branches = decomposeAtCut(wm, st.comps[ci], fr.cut, ws.dec)
			ws.memo[[2]int{int(st.comps[ci]), fr.cut}] = branches
		}
		emit := fr.sched.FrameOfPO[w] == fr.frame // output produced this frame
		if len(cells)*len(branches) > 64 {
			if err := fr.run.Check(); err != nil {
				return nil, err
			}
		}
		refined := scratch[:0]
		if need := len(cells) * len(branches); cap(refined) < need {
			refined = make([]foldCell, 0, need)
		}
		for _, c := range cells {
			for _, br := range branches {
				// The first refinement rounds mostly intersect with True
				// (the initial cell, single-branch decompositions); skip
				// the apply and its cache traffic for those.
				var nc bdd.Node
				switch {
				case br.cond == bdd.True:
					nc = c.cond
				case c.cond == bdd.True:
					nc = br.cond
				default:
					nc = wm.And(c.cond, br.cond)
				}
				if nc == bdd.False {
					continue
				}
				cellOuts := c.outs
				cellNext := c.next
				if emit {
					cellOuts = make([]fsm.Tri, len(c.outs))
					copy(cellOuts, c.outs)
					switch br.leaf {
					case bdd.True:
						cellOuts[fr.pinOf[w]] = fsm.One
					case bdd.False:
						cellOuts[fr.pinOf[w]] = fsm.Zero
					default:
						return nil, fmt.Errorf("core: output %d not terminal at its frame", w)
					}
				} else {
					cellNext = make([]bdd.Node, len(c.next)+1)
					copy(cellNext, c.next)
					cellNext[len(c.next)] = br.leaf
				}
				refined = append(refined, foldCell{cond: nc, outs: cellOuts, next: cellNext})
			}
		}
		cells, scratch = refined, cells
		if len(cells) > 4*fr.maxStates {
			return nil, fmt.Errorf("core: transition refinement exceeds bound %d at frame %d: %w",
				4*fr.maxStates, fr.frame+1, pipeline.ErrBudgetExceeded)
		}
		if fr.nodeBudget > 0 && wm.NumNodes() > fr.nodeBudget {
			return nil, errBudget
		}
	}
	return cells, nil
}

func makeX(n int) []fsm.Tri {
	out := make([]fsm.Tri, n)
	for i := range out {
		out[i] = fsm.X
	}
	return out
}
