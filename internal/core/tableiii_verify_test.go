package core_test

import (
	"testing"
	"time"

	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
	"circuitfold/internal/gen"
)

// TestTableIIICircuitsFoldCorrectly folds every Table III benchmark with
// both methods at T=8 and word-verifies the results against the original
// circuits — the correctness backbone behind the reported comparisons.
func TestTableIIICircuitsFoldCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-suite verification skipped in -short mode")
	}
	for _, name := range []string{"64-adder", "arbiter", "e64", "i2", "i3", "i4", "i6", "i7"} {
		g := gen.MustBuild(name)
		sr, err := core.StructuralFold(g, 8, core.StructuralOptions{Counter: core.Binary})
		if err != nil {
			t.Fatalf("%s structural: %v", name, err)
		}
		if err := eqcheck.VerifyFoldWords(g, sr, 8, 1); err != nil {
			t.Fatalf("%s structural: %v", name, err)
		}
		opt := core.DefaultFunctionalOptions()
		opt.Minimize = false
		opt.Budget.Wall = 10 * time.Second
		opt.Budget.MaxStates = 2000
		fr, err := core.FunctionalFold(g, 8, opt)
		if err != nil {
			continue // budget-bound, like the paper's "-" entries
		}
		if err := eqcheck.VerifyFoldWords(g, fr, 8, 1); err != nil {
			t.Fatalf("%s functional: %v", name, err)
		}
	}
}
