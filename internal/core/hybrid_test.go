package core_test

import (
	"math/rand"
	"testing"
	"time"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
)

// stripedCircuit builds pos independent output cones over disjoint input
// stripes — the ideal case for hybrid clustering.
func stripedCircuit(pis, pos int) *aig.Graph {
	g := aig.New()
	ins := make([]aig.Lit, pis)
	for i := range ins {
		ins[i] = g.PI("")
	}
	per := pis / pos
	for o := 0; o < pos; o++ {
		stripe := ins[o*per : (o+1)*per]
		acc := stripe[0]
		for _, x := range stripe[1:] {
			acc = g.Xor(acc, g.And(acc, x).Not())
		}
		g.AddPO(acc, "")
	}
	return g
}

func TestHybridFoldAdder3(t *testing.T) {
	g := adder3()
	r, err := core.HybridFold(g, 3, core.DefaultHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.InputPins() != 2 {
		t.Fatalf("input pins = %d, want 2", r.InputPins())
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHybridFoldStripedClusters(t *testing.T) {
	g := stripedCircuit(12, 4)
	r, err := core.HybridFold(g, 4, core.DefaultHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHybridFallsBackToStructural(t *testing.T) {
	// With a zero state budget every cluster falls back; the result must
	// still be a correct fold (pure structural).
	g := adder3()
	opt := core.DefaultHybridOptions()
	opt.Budget.MaxStates = 1
	opt.ClusterTimeout = time.Nanosecond
	r, err := core.HybridFold(g, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHybridRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		pis := 4 + rng.Intn(8)
		g := randomCircuit(rng, 70, pis, 5)
		T := 2 + rng.Intn(3)
		if T > pis {
			T = pis
		}
		opt := core.DefaultHybridOptions()
		opt.MaxClusterOutputs = 1 + rng.Intn(4)
		opt.Minimize = trial%2 == 0
		if trial%3 == 0 {
			opt.StateEnc = core.Binary
		}
		r, err := core.HybridFold(g, T, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := eqcheck.VerifyFold(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d (T=%d): %v", trial, T, err)
		}
		if err := eqcheck.VerifyFoldByUnrolling(g, r, 0, int64(trial)); err != nil {
			t.Fatalf("trial %d unroll: %v", trial, err)
		}
	}
}

func TestHybridBeatsStructuralOnSeparableCircuit(t *testing.T) {
	// Striped cones fold into tiny per-cluster FSMs; the hybrid should
	// use far fewer flip-flops than the pure structural fold.
	g := stripedCircuit(32, 4)
	opt := core.DefaultHybridOptions()
	opt.StateEnc = core.Binary
	hr, err := core.HybridFold(g, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.StructuralFold(g, 8, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	if err := eqcheck.VerifyFold(g, hr, 400, 3); err != nil {
		t.Fatal(err)
	}
	if hr.FlipFlops() >= sr.FlipFlops() {
		t.Fatalf("hybrid FFs (%d) should beat structural (%d)", hr.FlipFlops(), sr.FlipFlops())
	}
}

func TestHybridT1Identity(t *testing.T) {
	g := adder3()
	r, err := core.HybridFold(g, 1, core.DefaultHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.T != 1 || r.FlipFlops() != 0 {
		t.Fatalf("identity hybrid wrong: T=%d FF=%d", r.T, r.FlipFlops())
	}
}

func TestHybridErrors(t *testing.T) {
	g := adder3()
	if _, err := core.HybridFold(g, 0, core.DefaultHybridOptions()); err == nil {
		t.Fatal("T=0 should fail")
	}
	if _, err := core.HybridFold(g, 100, core.DefaultHybridOptions()); err == nil {
		t.Fatal("T > n should fail")
	}
}
