package core

import (
	"context"
	"sort"

	"circuitfold/internal/aig"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
)

// StructuralOptions configures StructuralFold.
type StructuralOptions struct {
	// Counter selects the frame counter implementation: a Binary
	// ceil(log2 T)-bit counter or a OneHot T-bit shift register
	// (Section IV).
	Counter Encoding
	// Ctx cancels the fold mid-stage; nil means no cancellation.
	Ctx context.Context
	// Budget bounds the fold's resources (wall clock; SAT conflicts
	// when PostOptimize sweeps).
	Budget pipeline.Budget
	// PostOptimize, when non-nil, runs the cleanup/balance/SAT-sweep
	// pipeline with these settings on the folded circuit's combinational
	// core before returning.
	PostOptimize *aig.SweepOptions
	// Obs, when non-nil, receives span traces and metrics for the whole
	// fold (see internal/obs). Nil disables observability at zero cost.
	Obs *obs.Observer
	// Checkpoint, when non-nil, saves the synthesized (and swept)
	// result so a re-run over the same store returns it without
	// re-folding. Keying the store to the (circuit, T, options) triple
	// is the caller's responsibility.
	Checkpoint pipeline.Checkpoint
	// Pools, when non-nil, supplies the sweep stage's SAT solvers (the
	// structural method itself builds no BDDs); see
	// FunctionalOptions.Pools.
	Pools *Pools
}

// StructuralFold folds the combinational circuit g by T time-frames using
// the structural method of Section IV, composed as the pipeline schedule
// → synth → [sweep]: inputs are split into T consecutive groups, gates
// are assigned to the earliest frame where all their fanins are
// available, frame-boundary values are carried in flip-flop chains, and
// outputs are muxed onto shared pins selected by a frame counter.
// Result.Report carries the per-stage trace.
func StructuralFold(g *aig.Graph, T int, opt StructuralOptions) (*Result, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	run := pipeline.NewRunObserved(opt.Ctx, opt.Budget, opt.Obs)
	run.SetCheckpoint(opt.Checkpoint)
	return structuralFoldRun(g, T, opt, run)
}

// structuralFoldRun is StructuralFold over an existing run, so the
// hybrid method can execute its structural fallback under its own
// budget.
func structuralFoldRun(g *aig.Graph, T int, opt StructuralOptions, run *pipeline.Run) (*Result, error) {
	if T == 1 {
		return identityFold(g, run, "structural", pooledSweepOptions(opt.PostOptimize, opt.Pools))
	}
	n := g.NumPIs()
	m := ceilDiv(n, T)

	type ffKey struct{ node, boundary int }
	var (
		layer   []int
		lastUse []int
		ffOrder []ffKey
		res     *Result
	)
	stages := []pipeline.Stage{
		{Name: pipeline.StageSchedule, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			ss.AndsOut = g.NumAnds() // scheduling never rewrites the graph
			// Frame of every node: PIs get their group (1-based); an AND
			// gets the max of its fanins; constants belong to frame 1.
			layer = make([]int, g.NumNodes())
			layer[0] = 1
			for id := 1; id < g.NumNodes(); id++ {
				if pi := g.PIIndex(id); pi >= 0 {
					layer[id] = pi/m + 1
					continue
				}
				f0, f1 := g.Fanins(id)
				l := layer[f0.Node()]
				if l2 := layer[f1.Node()]; l2 > l {
					l = l2
				}
				layer[id] = l
			}

			// Last frame each node's value is consumed in: by later gates.
			// A node also lives to its own frame if it drives a PO (POs are
			// emitted in the producing frame, so they never extend lifetime).
			lastUse = make([]int, g.NumNodes())
			for id := 1; id < g.NumNodes(); id++ {
				lastUse[id] = layer[id]
			}
			for id := 1; id < g.NumNodes(); id++ {
				if !g.IsAnd(id) {
					continue
				}
				f0, f1 := g.Fanins(id)
				for _, f := range []aig.Lit{f0, f1} {
					u := f.Node()
					if u != 0 && layer[id] > lastUse[u] {
						lastUse[u] = layer[id]
					}
				}
			}

			// Flip-flop plan: node s needs a register at every boundary b
			// in [layer[s], lastUse[s]) (boundary b sits between frames b
			// and b+1).
			for id := 1; id < g.NumNodes(); id++ {
				for b := layer[id]; b < lastUse[id]; b++ {
					ffOrder = append(ffOrder, ffKey{id, b})
				}
			}
			sort.Slice(ffOrder, func(i, j int) bool {
				if ffOrder[i].node != ffOrder[j].node {
					return ffOrder[i].node < ffOrder[j].node
				}
				return ffOrder[i].boundary < ffOrder[j].boundary
			})
			return run.Check()
		}},
		{Name: pipeline.StageSynth, Run: func(ss *pipeline.StageStats) error {
			ss.AndsIn = g.NumAnds()
			cs := aig.New()
			pins := make([]aig.Lit, m)
			for j := range pins {
				pins[j] = cs.PI(pinName("x", j))
			}
			ffOut := make(map[ffKey]aig.Lit, len(ffOrder))
			for _, k := range ffOrder {
				ffOut[k] = cs.PI("")
			}
			// Counter pseudo-inputs.
			var sel []aig.Lit // sel[t] is true during frame t+1
			var ctrBits []aig.Lit
			switch opt.Counter {
			case OneHot:
				ctrBits = make([]aig.Lit, T)
				for i := range ctrBits {
					ctrBits[i] = cs.PI("")
				}
				sel = append(sel, ctrBits...)
			case Binary:
				k := 1
				for 1<<uint(k) < T {
					k++
				}
				ctrBits = make([]aig.Lit, k)
				for i := range ctrBits {
					ctrBits[i] = cs.PI("")
				}
				sel = make([]aig.Lit, T)
				for t := 0; t < T; t++ {
					terms := make([]aig.Lit, k)
					for i := 0; i < k; i++ {
						terms[i] = ctrBits[i].NotIf(t>>uint(i)&1 == 0)
					}
					sel[t] = cs.AndN(terms...)
				}
			}

			// fetch returns the value of fanin f as seen by a consumer in
			// frame t (1-based): directly when produced in the same frame,
			// otherwise from the register chain at boundary t-1.
			lits := make([]aig.Lit, g.NumNodes())
			lits[0] = aig.Const0
			fetch := func(f aig.Lit, t int) aig.Lit {
				u := f.Node()
				var v aig.Lit
				switch {
				case u == 0:
					v = aig.Const0
				case layer[u] == t:
					v = lits[u]
				default:
					v = ffOut[ffKey{u, t - 1}]
				}
				return v.NotIf(f.Compl())
			}
			for id := 1; id < g.NumNodes(); id++ {
				if id&0xfff == 0 {
					if err := run.Check(); err != nil {
						return err
					}
				}
				if pi := g.PIIndex(id); pi >= 0 {
					lits[id] = pins[pi%m]
					continue
				}
				f0, f1 := g.Fanins(id)
				lits[id] = cs.And(fetch(f0, layer[id]), fetch(f1, layer[id]))
			}

			// Output scheduling: PO i is produced in the frame of its driver.
			outSched := make([][]int, T)
			outLits := make([][]aig.Lit, T)
			for i := 0; i < g.NumPOs(); i++ {
				po := g.PO(i)
				t := layer[po.Node()]
				outSched[t-1] = append(outSched[t-1], i)
				outLits[t-1] = append(outLits[t-1], fetch(po, t))
			}
			mOut := 0
			for t := range outSched {
				if len(outSched[t]) > mOut {
					mOut = len(outSched[t])
				}
			}
			// Pin k output: mux of the frames that drive it, gated by sel.
			for k := 0; k < mOut; k++ {
				var users []int
				for t := 0; t < T; t++ {
					if k < len(outSched[t]) {
						users = append(users, t)
					}
				}
				var lit aig.Lit
				if len(users) == 1 {
					lit = outLits[users[0]][k]
				} else {
					terms := make([]aig.Lit, len(users))
					for i, t := range users {
						terms[i] = cs.And(sel[t], outLits[t][k])
					}
					lit = cs.OrN(terms...)
				}
				cs.AddPO(lit, pinName("y", k))
			}
			for t := range outSched {
				for len(outSched[t]) < mOut {
					outSched[t] = append(outSched[t], -1)
				}
			}

			// Next-state functions, in pseudo-input order: data registers
			// first, then the counter.
			next := make([]aig.Lit, 0, len(ffOrder)+len(ctrBits))
			init := make([]bool, 0, len(ffOrder)+len(ctrBits))
			for _, k := range ffOrder {
				if k.boundary == layer[k.node] {
					next = append(next, lits[k.node]) // first stage latches the value
				} else {
					next = append(next, ffOut[ffKey{k.node, k.boundary - 1}])
				}
				init = append(init, false)
			}
			switch opt.Counter {
			case OneHot:
				for i := 0; i < T; i++ {
					next = append(next, ctrBits[(i+T-1)%T]) // rotate
					init = append(init, i == 0)
				}
			case Binary:
				// cnt' = (cnt == T-1) ? 0 : cnt + 1
				k := len(ctrBits)
				isLast := sel[T-1]
				carry := aig.Const1
				for i := 0; i < k; i++ {
					s := cs.Xor(ctrBits[i], carry)
					carry = cs.And(ctrBits[i], carry)
					next = append(next, cs.And(s, isLast.Not()))
					init = append(init, false)
				}
			}

			inSched := make([][]int, T)
			for t := 0; t < T; t++ {
				row := make([]int, m)
				for j := 0; j < m; j++ {
					src := t*m + j
					if src >= n {
						src = -1
					}
					row[j] = src
				}
				inSched[t] = row
			}
			ss.AndsOut = cs.NumAnds()
			res = &Result{
				Seq:       &seq.Circuit{G: cs, NumInputs: m, Next: next, Init: init},
				T:         T,
				InSched:   inSched,
				OutSched:  outSched,
				States:    T,
				StatesMin: -1,
			}
			return nil
		},
			Snapshot: func() ([]byte, error) { return EncodeResult(res) },
			Restore: func(data []byte, ss *pipeline.StageStats) error {
				r, err := DecodeResult(data)
				if err != nil {
					return err
				}
				res = r
				ss.AndsIn = g.NumAnds()
				ss.AndsOut = r.Seq.G.NumAnds()
				return nil
			},
		},
	}
	if opt.PostOptimize != nil {
		stages = append(stages, sweepStage(&res, pooledSweepOptions(opt.PostOptimize, opt.Pools), run))
	}
	rep, err := pipeline.Execute(run, "structural", stages...)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}
