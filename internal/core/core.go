// Package core implements the paper's contribution: circuit folding for
// time multiplexing. A combinational circuit with n inputs is folded by a
// factor T into a sequential circuit with ceil(n/T) input pins whose
// T-frame time-frame expansion is functionally equivalent to the original
// circuit.
//
// Two methods are provided, mirroring Sections IV and V of the paper:
//
//   - StructuralFold: layered topological traversal with pipeline
//     flip-flops at frame boundaries and counter-based output selection.
//   - FunctionalFold: pin scheduling (Algorithms 1 and 2), FSM
//     construction via time-frame folding (BDD cut/functional
//     decomposition), optional exact state minimization (MeMin), and
//     state encoding.
//
// SimpleFold implements the input-buffering baseline the paper compares
// against in Section VI.
package core

import (
	"fmt"
	"strconv"

	"circuitfold/internal/aig"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
)

// Encoding selects how frame counters (structural method) or states
// (functional method) are encoded.
type Encoding int

// Encodings.
const (
	// Binary uses ceil(log2 N) flip-flops with natural binary encoding.
	Binary Encoding = iota
	// OneHot uses N flip-flops, one per frame or state.
	OneHot
)

func (e Encoding) String() string {
	if e == OneHot {
		return "1hot"
	}
	return "nat"
}

// Result is a folded circuit together with the pin schedule that defines
// its input-output association with the original circuit.
type Result struct {
	// Seq is the folded sequential circuit: ceil(n/T) input pins, and as
	// many output pins as the largest per-frame output group.
	Seq *seq.Circuit
	// T is the folding number (time-frames per computation).
	T int
	// InSched[t][j] is the original PI index presented on input pin j
	// during frame t (0-based frames), or -1 for a dummy input.
	InSched [][]int
	// OutSched[t][k] is the original PO index produced on output pin k
	// during frame t, or -1 for a null (don't care) output.
	OutSched [][]int
	// States (functional method only) is the number of FSM states before
	// and after minimization; StatesMin is -1 when minimization was not
	// run or did not finish.
	States    int
	StatesMin int
	// Report is the pass-pipeline trace of the fold: which stages ran,
	// their durations, and their size/counter deltas.
	Report *pipeline.Report
}

// Validate checks the structural sanity of a fold result against the
// original circuit's interface (numPIs inputs, numPOs outputs): the
// schedules must cover exactly T frames, input rows must match the pin
// count with sources in [-1, numPIs), and output rows must fit the
// sequential circuit's outputs with destinations in [-1, numPOs). The
// execution and verification helpers index schedules without bounds
// checks, so validating first turns a malformed (possibly hostile)
// result into an error instead of an index-out-of-range panic.
func (r *Result) Validate(numPIs, numPOs int) error {
	if r == nil || r.Seq == nil || r.Seq.G == nil {
		return fmt.Errorf("core: result has no folded circuit")
	}
	if r.T < 1 {
		return fmt.Errorf("core: result has folding number %d, want >= 1", r.T)
	}
	m := r.Seq.NumInputs
	if len(r.InSched) != r.T {
		return fmt.Errorf("core: input schedule covers %d frames, want %d", len(r.InSched), r.T)
	}
	for t, row := range r.InSched {
		if len(row) != m {
			return fmt.Errorf("core: input schedule frame %d has %d pins, want %d", t, len(row), m)
		}
		for j, src := range row {
			if src < -1 || src >= numPIs {
				return fmt.Errorf("core: input schedule (frame %d, pin %d) references PI %d of %d", t, j, src, numPIs)
			}
		}
	}
	mOut := r.Seq.NumOutputs()
	if len(r.OutSched) != r.T {
		return fmt.Errorf("core: output schedule covers %d frames, want %d", len(r.OutSched), r.T)
	}
	for t, row := range r.OutSched {
		if len(row) > mOut {
			return fmt.Errorf("core: output schedule frame %d has %d pins, circuit has %d outputs", t, len(row), mOut)
		}
		for k, dst := range row {
			if dst < -1 || dst >= numPOs {
				return fmt.Errorf("core: output schedule (frame %d, pin %d) references PO %d of %d", t, k, dst, numPOs)
			}
		}
	}
	return nil
}

// InputPins returns the folded circuit's input pin count, m = ceil(n/T).
func (r *Result) InputPins() int { return r.Seq.NumInputs }

// OutputPins returns the folded circuit's output pin count.
func (r *Result) OutputPins() int { return r.Seq.NumOutputs() }

// FlipFlops returns the folded circuit's flip-flop count.
func (r *Result) FlipFlops() int { return r.Seq.NumLatches() }

// Gates returns the AND-node count of the folded circuit's combinational
// core.
func (r *Result) Gates() int { return r.Seq.G.NumAnds() }

// ScheduleInputs maps a full assignment of the original circuit's inputs
// to the frame-by-frame pin assignment defined by InSched. Dummy pins get
// false.
func (r *Result) ScheduleInputs(in []bool) [][]bool {
	stream := make([][]bool, r.T)
	for t := range stream {
		row := make([]bool, len(r.InSched[t]))
		for j, src := range r.InSched[t] {
			if src >= 0 {
				row[j] = in[src]
			}
		}
		stream[t] = row
	}
	return stream
}

// CollectOutputs reassembles the original circuit's output vector from
// the folded circuit's frame-by-frame outputs according to OutSched.
func (r *Result) CollectOutputs(frames [][]bool) []bool {
	max := -1
	for _, row := range r.OutSched {
		for _, dst := range row {
			if dst > max {
				max = dst
			}
		}
	}
	out := make([]bool, max+1)
	for t, row := range r.OutSched {
		for k, dst := range row {
			if dst >= 0 {
				out[dst] = frames[t][k]
			}
		}
	}
	return out
}

// Execute runs the folded circuit on one computation of the original
// circuit: inputs are scheduled over T frames, outputs collected per the
// schedule. This is the complete time-multiplexed execution of Section
// III.
func (r *Result) Execute(in []bool) []bool {
	return r.CollectOutputs(r.Seq.Simulate(r.ScheduleInputs(in)))
}

// sweepStage builds the optional post-fold optimization stage: the
// cleanup/balance/SAT-sweep pipeline over the fold's combinational
// core. Every folding method honors a *aig.SweepOptions in its options
// struct through this stage, so the sweeping engine's knobs (Workers,
// Words, MaxCEXRounds, ...) thread from the top-level flows down to the
// folded circuits. The stage reads the result through res so it can run
// after an earlier stage has produced it, wires the run's cancellation
// into the sweep engine, and charges the sweep's SAT conflicts to the
// run.
func sweepStage(res **Result, opt *aig.SweepOptions, run *pipeline.Run) pipeline.Stage {
	return pipeline.Stage{Name: pipeline.StageSweep,
		Snapshot: func() ([]byte, error) { return EncodeResult(*res) },
		Restore: func(data []byte, ss *pipeline.StageStats) error {
			r, err := DecodeResult(data)
			if err != nil {
				return err
			}
			*res = r
			ss.AndsOut = r.Seq.G.NumAnds()
			return nil
		},
		Run: func(ss *pipeline.StageStats) error {
			r := *res
			o := *opt
			if o.Interrupt == nil {
				o.Interrupt = run.Check
			}
			if o.Span == nil {
				o.Span = run.Span() // the sweep stage's own span
			}
			if o.Metrics == nil {
				o.Metrics = run.Metrics()
			}
			if o.Stage == "" && (o.Span != nil || o.Metrics != nil) {
				o.Stage = pipeline.StageSweep
			}
			ss.AndsIn = r.Seq.G.NumAnds()
			var faultErr error
			r.Seq = r.Seq.Transform(func(g *aig.Graph) *aig.Graph {
				ng, st := g.Cleanup().Balance().SweepWithStats(o)
				run.AddConflicts(st.Solver.Conflicts)
				ss.SATConflicts += st.Solver.Conflicts
				if st.FaultErr != nil {
					faultErr = st.FaultErr
				}
				return ng
			})
			ss.AndsOut = r.Seq.G.NumAnds()
			if faultErr != nil {
				return faultErr
			}
			return run.Check()
		}}
}

// identityFold wraps a combinational circuit as a T=1 "fold" through a
// one-stage pipeline, so even the degenerate case carries a trace.
func identityFold(g *aig.Graph, run *pipeline.Run, name string, post *aig.SweepOptions) (*Result, error) {
	var res *Result
	stages := []pipeline.Stage{{Name: pipeline.StageSynth, Run: func(ss *pipeline.StageStats) error {
		ss.AndsIn = g.NumAnds()
		res = identityResult(g)
		ss.AndsOut = res.Seq.G.NumAnds()
		return nil
	}}}
	if post != nil {
		stages = append(stages, sweepStage(&res, post, run))
	}
	rep, err := pipeline.Execute(run, name, stages...)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// pinName names input pin j ("x7") or output pin k ("y3"); the shared
// helper every fold method uses for its pin interface.
func pinName(prefix string, i int) string {
	return prefix + strconv.Itoa(i)
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// validateFoldArgs checks common preconditions.
func validateFoldArgs(g *aig.Graph, T int) error {
	if T < 1 {
		return fmt.Errorf("core: folding number %d < 1", T)
	}
	if g.NumPIs() == 0 {
		return fmt.Errorf("core: circuit has no inputs")
	}
	if T > g.NumPIs() {
		return fmt.Errorf("core: folding number %d exceeds input count %d", T, g.NumPIs())
	}
	return nil
}

// identityResult wraps a combinational circuit as a T=1 "fold".
func identityResult(g *aig.Graph) *Result {
	in := make([]int, g.NumPIs())
	for i := range in {
		in[i] = i
	}
	out := make([]int, g.NumPOs())
	for i := range out {
		out[i] = i
	}
	return &Result{
		Seq:       seq.Combinational(g),
		T:         1,
		InSched:   [][]int{in},
		OutSched:  [][]int{out},
		States:    1,
		StatesMin: -1,
	}
}
