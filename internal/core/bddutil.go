package core

import (
	"fmt"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/pipeline"
)

// errBudget is returned when a BDD construction exceeds its node budget,
// the library's analogue of the paper's 300-second timeout. It wraps
// bdd.ErrNodeLimit (and through it pipeline.ErrBudgetExceeded), so the
// soft per-stage check and the manager's hard cap surface as the same
// error family.
var errBudget = fmt.Errorf("core: BDD node budget exceeded: %w", bdd.ErrNodeLimit)

// buildOutputBDDs constructs BDDs for the given output literals of g in
// mgr, mapping PI index i to manager variable varOfPI[i]. A varOfPI entry
// of -1 marks an input that must not occur in the supports. The build
// aborts with errBudget when the manager grows past nodeBudget (0 = no
// limit) and with the run's typed error when the run is cancelled or
// past its deadline (nil run = never).
func buildOutputBDDs(g *aig.Graph, mgr *bdd.Manager, varOfPI []int, roots []aig.Lit, nodeBudget int, run *pipeline.Run) ([]bdd.Node, error) {
	// AIG node id -> BDD of its positive literal. Ids are dense, so a
	// flat slice beats a map on this hot path; -1 marks "not built"
	// (every real node value is >= 0, bdd.False included).
	memo := make([]bdd.Node, g.NumNodes())
	for i := range memo {
		memo[i] = -1
	}
	memo[0] = bdd.False
	built := 0
	var build func(id int) (bdd.Node, error)
	build = func(id int) (bdd.Node, error) {
		if r := memo[id]; r >= 0 {
			return r, nil
		}
		var r bdd.Node
		if pi := g.PIIndex(id); pi >= 0 {
			v := varOfPI[pi]
			if v < 0 {
				return bdd.False, fmt.Errorf("core: PI %d not mapped to a BDD variable", pi)
			}
			r = mgr.Var(v)
		} else {
			f0, f1 := g.Fanins(id)
			b0, err := build(f0.Node())
			if err != nil {
				return bdd.False, err
			}
			if f0.Compl() {
				b0 = mgr.Not(b0)
			}
			b1, err := build(f1.Node())
			if err != nil {
				return bdd.False, err
			}
			if f1.Compl() {
				b1 = mgr.Not(b1)
			}
			r = mgr.And(b0, b1)
			if nodeBudget > 0 && mgr.NumNodes() > nodeBudget {
				return bdd.False, errBudget
			}
			if built++; built&0xff == 0 {
				run.NoteBDDNodes(mgr.NumNodes())
				if err := run.Check(); err != nil {
					return bdd.False, fmt.Errorf("core: BDD construction aborted: %w", err)
				}
			}
		}
		memo[id] = r
		return r, nil
	}
	out := make([]bdd.Node, len(roots))
	for i, root := range roots {
		b, err := build(root.Node())
		if err != nil {
			return nil, err
		}
		if root.Compl() {
			b = mgr.Not(b)
		}
		out[i] = b
	}
	return out, nil
}

// decomposition is one branch of a cut decomposition: the set of
// assignments to the variables above the cut (cond, a BDD over those
// variables) that lead to the sub-function leaf below the cut.
type decomposition struct {
	cond bdd.Node
	leaf bdd.Node
}

// decompScratch holds decomposeAtCut's reusable working storage. The
// folding loop decomposes thousands of small cut regions, so per-call
// map and slice churn was a measurable share of the stage; one scratch
// per worker (never shared — the conditions it holds live in the
// worker's arena) amortizes it away.
type decompScratch struct {
	above  []bdd.Node
	arrive []bdd.Node
	idx    map[bdd.Node]int32
	out    []decomposition
}

func newDecompScratch() *decompScratch {
	return &decompScratch{idx: make(map[bdd.Node]int32)}
}

// decomposeAtCut splits f by the cut at cutLevel: it returns the distinct
// sub-functions of f over the variables at levels >= cutLevel, each with
// the condition over the levels above the cut under which f reduces to
// it. This is the BDD functional-decomposition step at the heart of
// time-frame folding: the leaves are exactly the states induced by f.
// sc may be nil (one-shot callers); the returned slice is freshly
// allocated either way and safe to retain.
func decomposeAtCut(mgr *bdd.Manager, f bdd.Node, cutLevel int, sc *decompScratch) []decomposition {
	if mgr.Level(f) >= cutLevel {
		return []decomposition{{cond: bdd.True, leaf: f}}
	}
	if sc == nil {
		sc = newDecompScratch()
	}
	// Collect the internal nodes above the cut, sorted by level (parents
	// strictly above children, so level order is topological).
	above := sc.above[:0]
	clear(sc.idx)
	var collect func(n bdd.Node)
	collect = func(n bdd.Node) {
		if mgr.Level(n) >= cutLevel {
			return
		}
		if _, ok := sc.idx[n]; ok {
			return
		}
		sc.idx[n] = 0
		above = append(above, n)
		collect(mgr.Lo(n))
		collect(mgr.Hi(n))
	}
	collect(f)
	for i := 1; i < len(above); i++ {
		for j := i; j > 0 && mgr.Level(above[j]) < mgr.Level(above[j-1]); j-- {
			above[j], above[j-1] = above[j-1], above[j]
		}
	}
	for i, n := range above {
		sc.idx[n] = int32(i)
	}

	// arrive[i] is the condition under which f reaches above[i]; False
	// doubles as "not reached yet" (push never records False).
	arrive := sc.arrive[:0]
	for range above {
		arrive = append(arrive, bdd.False)
	}
	arrive[sc.idx[f]] = bdd.True
	out := sc.out[:0]
	push := func(child bdd.Node, cond bdd.Node) {
		if cond == bdd.False {
			return
		}
		if mgr.Level(child) >= cutLevel {
			for i := range out {
				if out[i].leaf == child {
					out[i].cond = mgr.Or(out[i].cond, cond)
					return
				}
			}
			out = append(out, decomposition{cond: cond, leaf: child})
			return
		}
		i := sc.idx[child]
		if arrive[i] == bdd.False {
			arrive[i] = cond
		} else {
			arrive[i] = mgr.Or(arrive[i], cond)
		}
	}
	for i, n := range above {
		a := arrive[i]
		v := mgr.VarAtLevel(mgr.Level(n))
		push(mgr.Lo(n), mgr.And(a, mgr.NVar(v)))
		push(mgr.Hi(n), mgr.And(a, mgr.Var(v)))
	}
	sc.above, sc.arrive, sc.out = above[:0], arrive[:0], out[:0]
	return append([]decomposition(nil), out...)
}
