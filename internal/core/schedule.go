package core

import (
	"errors"
	"fmt"
	"sort"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/pipeline"
)

// Schedule is a pin schedule for folding by T frames: which original
// input feeds each input pin in each frame, and which original output
// each output pin produces in each frame.
type Schedule struct {
	T int
	// M is the input pin count, ceil(n/T).
	M int
	// InSlot[t][j] is the original PI presented on pin j in frame t, or
	// -1 for a dummy slot.
	InSlot [][]int
	// OutSlot[t][k] is the original PO produced on pin k in frame t, or
	// -1 for a null output.
	OutSlot [][]int
	// FrameOfPO[i] is the frame (0-based) output i is scheduled in.
	FrameOfPO []int
	// SlotOfPI[i] is the global input slot (frame*M + pin) of input i.
	SlotOfPI []int
	// BDDHint is the peak BDD manager size observed while building the
	// scheduling BDDs (0 when reordering was off). TimeFrameFold uses
	// it to presize its folding manager, skipping the unique-table
	// growth rehashes the schedule stage already paid for.
	BDDHint int
}

// ScheduleOptions configures PinSchedule. Resource limits (BDD node
// budget, wall clock) come from the pipeline.Run the schedule executes
// under, not from this struct.
type ScheduleOptions struct {
	// Reorder enables the optional BDD symmetric-sifting reordering of
	// each frame's fresh support (Algorithm 2, line 4; config "r"/"nr").
	Reorder bool
	// MaxSiftNodes skips reordering a frame whose scheduling BDDs exceed
	// this live-node count (sifting cost grows with it); 0 means 30000.
	MaxSiftNodes int
	// MaxSiftVars skips reordering frames with more fresh variables than
	// this (0 means 32).
	MaxSiftVars int
	// Pool, when non-nil, supplies the reordering stage's BDD manager
	// arena and receives it back after the frame; reordering with a
	// pooled arena is bit-identical to a fresh one (bdd.Manager.Reset).
	Pool *bdd.Pool
}

// PinSchedule runs Algorithms 1 and 2: outputs are scheduled greedily in
// ascending support-size order into the earliest frame whose accumulated
// support fits, then inputs are queued in first-use order (optionally
// reordered per frame by symmetric sifting to shrink the scheduling BDDs)
// and split evenly into T groups. It runs without budgets; use
// PinScheduleRun to bound the reordering work.
func PinSchedule(g *aig.Graph, T int, opt ScheduleOptions) (*Schedule, error) {
	return PinScheduleRun(g, T, opt, nil)
}

// PinScheduleRun is PinSchedule executing under a pipeline.Run: the
// run's wall deadline and BDD node budget bound the per-frame
// reordering work. Frames past the deadline keep their natural order —
// the schedule stays valid — so a budget-bound schedule degrades
// gracefully instead of failing; only a cancelled context aborts with
// an error.
func PinScheduleRun(g *aig.Graph, T int, opt ScheduleOptions, run *pipeline.Run) (*Schedule, error) {
	if err := validateFoldArgs(g, T); err != nil {
		return nil, err
	}
	n := g.NumPIs()
	m := ceilDiv(n, T)
	if opt.MaxSiftNodes <= 0 {
		opt.MaxSiftNodes = 30000
	}
	if opt.MaxSiftVars <= 0 {
		opt.MaxSiftVars = 32
	}
	expired := func() bool { return run.Stop() }
	supports := g.SupportSets()

	// Algorithm 1: OutputSchedule.
	order := make([]int, g.NumPOs())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(supports[order[a]]) < len(supports[order[b]])
	})
	inSup := make([]bool, n)
	supSize := 0
	frameOfPO := make([]int, g.NumPOs())
	outFrames := make([][]int, T)
	for _, w := range order {
		for _, u := range supports[w] {
			if !inSup[u] {
				inSup[u] = true
				supSize++
			}
		}
		t := ceilDiv(supSize, m)
		if t < 1 {
			t = 1
		}
		if t > T {
			t = T
		}
		frameOfPO[w] = t - 1
		outFrames[t-1] = append(outFrames[t-1], w)
	}

	// Algorithm 2: InputSchedule.
	queued := make([]bool, n)
	var que []int
	bddHint := 0
	for t := 0; t < T; t++ {
		// Fresh support of this frame's outputs, in PI-index order.
		fresh := make(map[int]bool)
		for _, w := range outFrames[t] {
			for _, u := range supports[w] {
				if !queued[u] {
					fresh[u] = true
				}
			}
		}
		var xsup []int
		for u := range fresh {
			xsup = append(xsup, u)
		}
		sort.Ints(xsup)
		if opt.Reorder && len(xsup) > 1 && len(xsup) <= opt.MaxSiftVars && !expired() {
			if reord, err := reorderProtected(g, que, xsup, outFrames[t], opt.MaxSiftNodes, run, &bddHint, opt.Pool); err == nil {
				xsup = reord
			}
			// On budget exhaustion — or a node-cap / panic unwind out of
			// the sifting manager — the unreordered order is kept; the
			// schedule stays valid either way.
		}
		for _, u := range xsup {
			queued[u] = true
			que = append(que, u)
		}
	}
	// Inputs in no output's support go last; they influence nothing.
	for u := 0; u < n; u++ {
		if !queued[u] {
			que = append(que, u)
		}
	}

	// Cancellation aborts; only budget expiry degrades. expired() above
	// also fires when the context is cancelled — a dying process —
	// and a schedule whose remaining frames silently kept their natural
	// order is valid but not the schedule an uninterrupted run computes.
	// Returning it would let the pipeline checkpoint it, poisoning every
	// future resume with a different (if correct) fold. Cancellation is
	// sticky, so one check here catches any frame it could have
	// influenced.
	if err := run.Check(); err != nil && errors.Is(err, pipeline.ErrCanceled) {
		return nil, err
	}

	s := &Schedule{
		T:         T,
		M:         m,
		FrameOfPO: frameOfPO,
		SlotOfPI:  make([]int, n),
		BDDHint:   bddHint,
	}
	s.InSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, m)
		for j := 0; j < m; j++ {
			slot := t*m + j
			if slot < len(que) {
				row[j] = que[slot]
				s.SlotOfPI[que[slot]] = slot
			} else {
				row[j] = -1
			}
		}
		s.InSlot[t] = row
	}
	mOut := 0
	for t := range outFrames {
		if len(outFrames[t]) > mOut {
			mOut = len(outFrames[t])
		}
	}
	s.OutSlot = make([][]int, T)
	for t := 0; t < T; t++ {
		row := make([]int, mOut)
		copy(row, outFrames[t])
		for k := len(outFrames[t]); k < mOut; k++ {
			row[k] = -1
		}
		s.OutSlot[t] = row
	}
	return s, nil
}

// reorderProtected shields the schedule against failures of the
// reordering heuristic: its caller swallows errors (keeping the natural
// order), so panics out of the sifting manager — the hard node cap, an
// injected fault — must degrade the same way instead of unwinding
// through PinScheduleRun.
func reorderProtected(g *aig.Graph, que []int, xsup []int, outs []int, maxSiftNodes int, run *pipeline.Run, hint *int, pool *bdd.Pool) (out []int, err error) {
	defer pipeline.RecoverTo(&err, "schedule.reorder")
	return reorderFreshSupport(g, que, xsup, outs, maxSiftNodes, run, hint, pool)
}

// reorderFreshSupport implements Algorithm 2 line 4: it builds the BDDs
// of this frame's outputs under the order [already-queued | fresh |
// remaining], applies symmetric sifting restricted to the fresh block,
// and returns the fresh inputs in their new level order. The run bounds
// the BDD size (default 4M nodes) and interrupts sifting mid-flight.
func reorderFreshSupport(g *aig.Graph, que []int, xsup []int, outs []int, maxSiftNodes int, run *pipeline.Run, hint *int, pool *bdd.Pool) ([]int, error) {
	n := g.NumPIs()
	mgr := pool.Get(n)
	defer pool.Put(mgr) // runs on the recover-unwind path too; Reset heals any state

	mgr.Reserve(*hint) // earlier frames predict this one's size well
	mgr.SetNodeLimit(4 * run.NodeLimit(4000000))
	if run != nil {
		mgr.SetInterrupt(run.Check)
		mgr.SetObserver(run.Span(), run.Metrics())
	}
	// Desired order: queued inputs first (frozen), then the fresh block,
	// then everything else. Arranging the order on an empty manager is
	// cheap: swaps touch no nodes.
	desired := make([]int, 0, n)
	used := make([]bool, n)
	for _, u := range que {
		desired = append(desired, u)
		used[u] = true
	}
	lo := len(desired)
	for _, u := range xsup {
		desired = append(desired, u)
		used[u] = true
	}
	hi := len(desired) - 1
	for u := 0; u < n; u++ {
		if !used[u] {
			desired = append(desired, u)
		}
	}
	for level, v := range desired {
		cur := mgr.LevelOfVar(v)
		for cur > level {
			mgr.SwapAdjacent(cur - 1)
			cur--
		}
	}

	varOfPI := make([]int, n)
	for i := range varOfPI {
		varOfPI[i] = i
	}
	roots := make([]aig.Lit, len(outs))
	for i, w := range outs {
		roots[i] = g.PO(w)
	}
	nodes, err := buildOutputBDDs(g, mgr, varOfPI, roots, run.NodeLimit(4000000), run)
	if err != nil {
		return nil, err
	}
	if nn := mgr.NumNodes(); nn > *hint {
		*hint = nn
	}
	run.NoteBDDNodes(mgr.NumNodes())
	if live := mgr.NodeCount(nodes...); live > maxSiftNodes {
		return nil, fmt.Errorf("core: scheduling BDDs too large to sift (%d nodes)", live)
	}
	mgr.SiftSymmetric(nodes, lo, hi)
	out := make([]int, 0, len(xsup))
	for l := lo; l <= hi; l++ {
		out = append(out, mgr.VarAtLevel(l))
	}
	return out, nil
}
