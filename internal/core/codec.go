package core

import (
	"encoding/json"
	"fmt"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/fsm"
	"circuitfold/internal/pipeline"
	"circuitfold/internal/seq"
)

// This file is the serialization boundary that lets fold artifacts
// cross a wire or survive a crash: a versioned, exact JSON codec for
// Result (the daemon's job output and the encode/sweep-stage
// checkpoint), for Schedule (the schedule-stage checkpoint), and for
// the folded ISFSM (the tff/minimize-stage checkpoints).
//
// "Exact" is load-bearing. Decoding an encoded Result replays the
// AIG's node table in creation order, so node ids, literal values and
// pin names are bit-identical to the original — which is what lets a
// resumed job produce a Result indistinguishable from an uninterrupted
// run, and what makes result equality testable with reflect.DeepEqual.
// Machine conditions are serialized as disjoint cube covers (one cube
// per BDD path to True), whose disjunction rebuilds exactly the same
// Boolean function; downstream stages only depend on the conditions as
// functions, so encode/minimize behave identically after a restore.

// ResultCodecVersion is the current wire version of EncodeResult. A
// decoder rejects versions it does not know rather than guessing.
const ResultCodecVersion = 1

// seqJSON is the exact wire form of a seq.Circuit: the node table in
// creation order (PIs by id, AND fanins in ascending id order), output
// literals, latch next-state literals and initial values. Replaying it
// through aig.Graph reconstructs identical node ids because the graph
// builder assigns ids sequentially and the table is topologically
// ordered by construction.
type seqJSON struct {
	Inputs  int         `json:"inputs"`
	Nodes   int         `json:"nodes"` // total node count, including the constant node 0
	PIs     []int       `json:"pis,omitempty"`
	PINames []string    `json:"pi_names,omitempty"`
	Ands    [][2]uint32 `json:"ands,omitempty"`
	POs     []uint32    `json:"pos,omitempty"`
	PONames []string    `json:"po_names,omitempty"`
	Next    []uint32    `json:"next,omitempty"`
	Init    []bool      `json:"init,omitempty"`
}

func encodeSeq(c *seq.Circuit) (*seqJSON, error) {
	if c == nil || c.G == nil {
		return nil, fmt.Errorf("core: cannot encode nil circuit")
	}
	g := c.G
	sj := &seqJSON{Inputs: c.NumInputs, Nodes: g.NumNodes()}
	for i := 0; i < g.NumPIs(); i++ {
		sj.PIs = append(sj.PIs, g.PILit(i).Node())
		sj.PINames = append(sj.PINames, g.PIName(i))
	}
	for id := 1; id < g.NumNodes(); id++ {
		if g.IsAnd(id) {
			f0, f1 := g.Fanins(id)
			sj.Ands = append(sj.Ands, [2]uint32{uint32(f0), uint32(f1)})
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		sj.POs = append(sj.POs, uint32(g.PO(i)))
		sj.PONames = append(sj.PONames, g.POName(i))
	}
	for _, n := range c.Next {
		sj.Next = append(sj.Next, uint32(n))
	}
	sj.Init = append(sj.Init, c.Init...)
	return sj, nil
}

func decodeSeq(sj *seqJSON) (*seq.Circuit, error) {
	if sj == nil {
		return nil, fmt.Errorf("core: missing circuit")
	}
	if len(sj.PIs) != len(sj.PINames) {
		return nil, fmt.Errorf("core: %d PIs with %d names", len(sj.PIs), len(sj.PINames))
	}
	if len(sj.POs) != len(sj.PONames) {
		return nil, fmt.Errorf("core: %d POs with %d names", len(sj.POs), len(sj.PONames))
	}
	g := aig.New()
	pi, and := 0, 0
	for id := 1; id < sj.Nodes; id++ {
		if pi < len(sj.PIs) && sj.PIs[pi] == id {
			got := g.PI(sj.PINames[pi])
			if got.Node() != id {
				return nil, fmt.Errorf("core: PI %d replayed to node %d, want %d", pi, got.Node(), id)
			}
			pi++
			continue
		}
		if and >= len(sj.Ands) {
			return nil, fmt.Errorf("core: node %d has no definition", id)
		}
		f0, f1 := aig.Lit(sj.Ands[and][0]), aig.Lit(sj.Ands[and][1])
		and++
		if f0.Node() >= id || f1.Node() >= id {
			return nil, fmt.Errorf("core: node %d has forward fanin", id)
		}
		got := g.And(f0, f1)
		if got.Node() != id || got.Compl() {
			// The And builder strashes and simplifies; a table that does
			// not replay node-for-node was not produced by encodeSeq.
			return nil, fmt.Errorf("core: AND %d replayed to %v, want node %d", id, got, id)
		}
	}
	if pi != len(sj.PIs) || and != len(sj.Ands) {
		return nil, fmt.Errorf("core: node table mismatch (%d/%d PIs, %d/%d ANDs)",
			pi, len(sj.PIs), and, len(sj.Ands))
	}
	for i, l := range sj.POs {
		if aig.Lit(l).Node() >= g.NumNodes() {
			return nil, fmt.Errorf("core: PO %d out of range", i)
		}
		g.AddPO(aig.Lit(l), sj.PONames[i])
	}
	next := make([]aig.Lit, len(sj.Next))
	for i, l := range sj.Next {
		if aig.Lit(l).Node() >= g.NumNodes() {
			return nil, fmt.Errorf("core: next-state literal %d out of range", i)
		}
		next[i] = aig.Lit(l)
	}
	c := &seq.Circuit{G: g, NumInputs: sj.Inputs, Next: next, Init: append([]bool(nil), sj.Init...)}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// resultJSON is the versioned wire form of a Result.
type resultJSON struct {
	V         int              `json:"v"`
	T         int              `json:"t"`
	InSched   [][]int          `json:"in_sched"`
	OutSched  [][]int          `json:"out_sched"`
	States    int              `json:"states,omitempty"`
	StatesMin int              `json:"states_min,omitempty"`
	Seq       *seqJSON         `json:"seq"`
	Report    *pipeline.Report `json:"report,omitempty"`
}

// EncodeResult serializes a fold result as versioned JSON that
// DecodeResult rebuilds bit-identically: same node ids, literals, pin
// schedules, state counts and report. This is the wire format of the
// foldd job API and of the encode/sweep stage checkpoints.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("core: cannot encode nil result")
	}
	sj, err := encodeSeq(r.Seq)
	if err != nil {
		return nil, err
	}
	return json.Marshal(&resultJSON{
		V:         ResultCodecVersion,
		T:         r.T,
		InSched:   r.InSched,
		OutSched:  r.OutSched,
		States:    r.States,
		StatesMin: r.StatesMin,
		Seq:       sj,
		Report:    r.Report,
	})
}

// DecodeResult parses EncodeResult's output.
func DecodeResult(data []byte) (*Result, error) {
	var rj resultJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	if rj.V != ResultCodecVersion {
		return nil, fmt.Errorf("core: result codec version %d, this build reads %d", rj.V, ResultCodecVersion)
	}
	c, err := decodeSeq(rj.Seq)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Seq:       c,
		T:         rj.T,
		InSched:   rj.InSched,
		OutSched:  rj.OutSched,
		States:    rj.States,
		StatesMin: rj.StatesMin,
		Report:    rj.Report,
	}
	if err := r.Validate(maxSchedRef(r.InSched)+1, maxSchedRef(r.OutSched)+1); err != nil {
		return nil, err
	}
	return r, nil
}

// maxSchedRef returns the largest index referenced by a schedule, -1
// when it references none. Decoding has no original circuit to validate
// against, so the schedule's own span is the tightest bound available.
func maxSchedRef(sched [][]int) int {
	max := -1
	for _, row := range sched {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// scheduleJSON is the versioned wire form of a Schedule (the
// schedule-stage checkpoint). All fields are plain data, so the codec
// is trivially exact.
type scheduleJSON struct {
	V int       `json:"v"`
	S *Schedule `json:"s"`
}

// EncodeSchedule serializes a pin schedule for checkpointing.
func EncodeSchedule(s *Schedule) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("core: cannot encode nil schedule")
	}
	return json.Marshal(&scheduleJSON{V: ResultCodecVersion, S: s})
}

// DecodeSchedule parses EncodeSchedule's output.
func DecodeSchedule(data []byte) (*Schedule, error) {
	var sj scheduleJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("core: decode schedule: %w", err)
	}
	if sj.V != ResultCodecVersion {
		return nil, fmt.Errorf("core: schedule codec version %d, this build reads %d", sj.V, ResultCodecVersion)
	}
	if sj.S == nil {
		return nil, fmt.Errorf("core: decode schedule: missing payload")
	}
	return sj.S, nil
}

// transJSON is one symbolic transition: a disjoint cube cover of the
// condition, the three-valued output vector as a '0'/'1'/'-' string,
// and the destination state (DontCare = -1).
type transJSON struct {
	Cubes []string `json:"cubes"`
	Out   string   `json:"out"`
	Dst   int      `json:"dst"`
}

// machineJSON is the versioned wire form of a folded ISFSM (the
// tff/minimize-stage checkpoint). States carries Result.States — the
// raw time-frame-folding state count including the don't-care final
// state — alongside the machine, because the tff stage produces both.
type machineJSON struct {
	V       int           `json:"v"`
	Inputs  int           `json:"inputs"`
	Outputs int           `json:"outputs"`
	Initial int           `json:"initial"`
	States  int           `json:"states"`
	Trans   [][]transJSON `json:"trans"`
}

// EncodeMachine serializes a machine and the accompanying raw state
// count. Transition structure (state order, transition order, outputs,
// destinations) is preserved 1:1; conditions are rebuilt from their
// cube covers as exactly the same Boolean functions.
func EncodeMachine(m *fsm.Machine, states int) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("core: cannot encode nil machine")
	}
	mj := &machineJSON{
		V:       ResultCodecVersion,
		Inputs:  m.NumInputs,
		Outputs: m.NumOutputs,
		Initial: m.Initial,
		States:  states,
		Trans:   make([][]transJSON, m.NumStates()),
	}
	for s, ts := range m.Trans {
		mj.Trans[s] = make([]transJSON, len(ts))
		for i, tr := range ts {
			out := make([]byte, len(tr.Out))
			for o, v := range tr.Out {
				out[o] = v.String()[0]
			}
			mj.Trans[s][i] = transJSON{
				Cubes: fsm.Cubes(m.Mgr, tr.Cond, m.NumInputs),
				Out:   string(out),
				Dst:   tr.Dst,
			}
		}
	}
	return json.Marshal(mj)
}

// DecodeMachine parses EncodeMachine's output into a fresh machine
// (over a fresh BDD manager) plus the raw state count.
func DecodeMachine(data []byte) (*fsm.Machine, int, error) {
	var mj machineJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, 0, fmt.Errorf("core: decode machine: %w", err)
	}
	if mj.V != ResultCodecVersion {
		return nil, 0, fmt.Errorf("core: machine codec version %d, this build reads %d", mj.V, ResultCodecVersion)
	}
	mgr := bdd.New(mj.Inputs)
	m := &fsm.Machine{
		Mgr:        mgr,
		NumInputs:  mj.Inputs,
		NumOutputs: mj.Outputs,
		Initial:    mj.Initial,
		Trans:      make([][]fsm.Transition, len(mj.Trans)),
	}
	for s, ts := range mj.Trans {
		m.Trans[s] = make([]fsm.Transition, len(ts))
		for i, tj := range ts {
			cond := bdd.False
			for _, cube := range tj.Cubes {
				if len(cube) != mj.Inputs {
					return nil, 0, fmt.Errorf("core: cube %q does not match %d inputs", cube, mj.Inputs)
				}
				c := bdd.True
				for v, ch := range cube {
					switch ch {
					case '0':
						c = mgr.And(c, mgr.NVar(v))
					case '1':
						c = mgr.And(c, mgr.Var(v))
					case '-':
					default:
						return nil, 0, fmt.Errorf("core: bad cube character %q", string(ch))
					}
				}
				cond = mgr.Or(cond, c)
			}
			if len(tj.Out) != mj.Outputs {
				return nil, 0, fmt.Errorf("core: output vector %q does not match %d outputs", tj.Out, mj.Outputs)
			}
			out := make([]fsm.Tri, mj.Outputs)
			for o, ch := range tj.Out {
				switch ch {
				case '0':
					out[o] = fsm.Zero
				case '1':
					out[o] = fsm.One
				case '-':
					out[o] = fsm.X
				default:
					return nil, 0, fmt.Errorf("core: bad output character %q", string(ch))
				}
			}
			m.Trans[s][i] = fsm.Transition{Cond: cond, Out: out, Dst: tj.Dst}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	return m, mj.States, nil
}
