package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"circuitfold/internal/core"
	"circuitfold/internal/pipeline"
)

// TestPinScheduleCancelAborts pins the crash-recovery contract the
// chaos suite depends on: a cancelled run must abort PinScheduleRun
// with ErrCanceled, never complete it. The degrade path (skipping
// per-frame reordering) is reserved for budget expiry — if
// cancellation could degrade, a job killed mid-schedule would
// checkpoint a valid-but-different schedule and every resume after the
// crash would produce a correct but non-bit-identical fold.
func TestPinScheduleCancelAborts(t *testing.T) {
	g := adder3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := pipeline.NewRun(ctx, pipeline.Budget{})
	s, err := core.PinScheduleRun(g, 3, core.ScheduleOptions{Reorder: true}, run)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("cancelled schedule = (%v, %v), want ErrCanceled", s, err)
	}
}

// TestPinScheduleBudgetDegrades is the counterpart: an exhausted wall
// budget is not an abort. The schedule completes — remaining frames
// keep their natural order — because a budget-bound fold should
// produce its best valid answer, not fail.
func TestPinScheduleBudgetDegrades(t *testing.T) {
	g := adder3()
	run := pipeline.NewRun(context.Background(), pipeline.Budget{Wall: time.Nanosecond})
	time.Sleep(time.Millisecond) // the deadline is fixed at NewRun; let it pass
	s, err := core.PinScheduleRun(g, 3, core.ScheduleOptions{Reorder: true}, run)
	if err != nil {
		t.Fatalf("budget-expired schedule aborted: %v", err)
	}
	if s == nil || s.T != 3 {
		t.Fatalf("degraded schedule = %+v", s)
	}
}
