package core

import (
	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/obs"
	"circuitfold/internal/sat"
)

// Pools bundles the reusable fold arenas: a BDD manager pool for the
// time-frame composition and reorder stages, and a SAT solver pool for
// minimization and sweeping. A fold that runs with a Pools attached
// checks arenas out at stage entry and returns them at stage exit with
// a hard reset in between (bdd.Manager.Reset, sat.Solver.Reset), so a
// pooled fold is bit-identical to a cold one — only the allocations
// are shared. The zero of each field and a nil *Pools both degrade to
// plain allocation, so option structs thread a Pools unconditionally.
type Pools struct {
	BDD *bdd.Pool
	SAT *sat.Pool
}

// NewPools returns a fresh arena bundle. One bundle is typically owned
// by one runner worker: the pools themselves are thread-safe, but
// per-worker bundles keep arena reuse hot under concurrency instead of
// contending on one free list.
func NewPools() *Pools {
	return &Pools{BDD: bdd.NewPool(), SAT: sat.NewPool()}
}

// Observe directs the bundle's reuse counters (obs.MBDDPoolReuse,
// obs.MSATPoolReuse) at the given registry. Nil receivers and nil
// registries are no-ops.
func (p *Pools) Observe(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.BDD.SetMetrics(reg.Counter(obs.MBDDPoolReuse))
	p.SAT.SetMetrics(reg.Counter(obs.MSATPoolReuse))
}

// bddPool returns the BDD arena pool, nil-safely.
func (p *Pools) bddPool() *bdd.Pool {
	if p == nil {
		return nil
	}
	return p.BDD
}

// satPool returns the SAT solver pool, nil-safely.
func (p *Pools) satPool() *sat.Pool {
	if p == nil {
		return nil
	}
	return p.SAT
}

// pooledSweepOptions defaults a sweep configuration's solver pool from
// the fold's arena bundle, copying the options rather than mutating the
// caller's struct. Nil options, an explicit pool, or an absent bundle
// pass through unchanged.
func pooledSweepOptions(post *aig.SweepOptions, pools *Pools) *aig.SweepOptions {
	if post == nil || post.Solvers != nil || pools.satPool() == nil {
		return post
	}
	o := *post
	o.Solvers = pools.SAT
	return &o
}
