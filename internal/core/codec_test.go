package core_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"circuitfold/internal/core"
	"circuitfold/internal/eqcheck"
	"circuitfold/internal/gen"
	"circuitfold/internal/pipeline"
)

// memCheckpoint is a minimal pipeline.Checkpoint for tests; onSave (if
// set) observes every successful save, which the resume tests use to
// kill a fold right after a chosen stage checkpoints.
type memCheckpoint struct {
	mu     sync.Mutex
	m      map[string][]byte
	onSave func(stage string)
}

func newMemCheckpoint() *memCheckpoint { return &memCheckpoint{m: map[string][]byte{}} }

func (c *memCheckpoint) Load(stage string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[stage]
	return d, ok
}

func (c *memCheckpoint) Save(stage string, data []byte) error {
	c.mu.Lock()
	c.m[stage] = append([]byte(nil), data...)
	cb := c.onSave
	c.mu.Unlock()
	if cb != nil {
		cb(stage)
	}
	return nil
}

func (c *memCheckpoint) stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for k := range c.m {
		out = append(out, k)
	}
	return out
}

// stripReport clones a result without its report, for bit-identity
// comparison across runs whose timings naturally differ.
func stripReport(r *core.Result) core.Result {
	c := *r
	c.Report = nil
	return c
}

func TestResultCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		T    int
	}{{"adder3", 3}, {"64-adder", 16}} {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.MustBuild(tc.name)
			opt := core.DefaultFunctionalOptions()
			r, err := core.FunctionalFold(g, tc.T, opt)
			if err != nil {
				t.Fatalf("fold: %v", err)
			}
			data, err := core.EncodeResult(r)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := core.DecodeResult(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, r) {
				t.Fatal("decoded result differs from original")
			}
			// The decoded fold still verifies against the source circuit.
			if err := eqcheck.VerifyFoldWords(g, got, 2, 99); err != nil {
				t.Fatalf("decoded fold failed verification: %v", err)
			}
			// Encoding is deterministic: same result, same bytes.
			data2, err := core.EncodeResult(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if string(data) != string(data2) {
				t.Fatal("encoding is not deterministic")
			}
		})
	}
}

func TestResultCodecRejects(t *testing.T) {
	if _, err := core.DecodeResult([]byte(`{"v":99,"t":2}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := core.DecodeResult([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := core.DecodeResult([]byte(`{"v":1,"t":2,"seq":{"inputs":1,"nodes":3,"pis":[1],"pi_names":["a"],"ands":[[2,4]]}}`)); err == nil {
		t.Error("forward fanin accepted")
	}
	if _, err := core.EncodeResult(nil); err == nil {
		t.Error("nil result encoded")
	}
}

func TestScheduleCodecRoundTrip(t *testing.T) {
	g := gen.MustBuild("adder3")
	s, err := core.PinSchedule(g, 3, core.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("schedule round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestMachineCodecRoundTrip(t *testing.T) {
	g := gen.MustBuild("adder3")
	sched, err := core.PinSchedule(g, 3, core.ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, states, err := core.TimeFrameFold(g, sched, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.EncodeMachine(m, states)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStates, err := core.DecodeMachine(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotStates != states {
		t.Errorf("states = %d, want %d", gotStates, states)
	}
	if got.NumStates() != m.NumStates() || got.NumInputs != m.NumInputs ||
		got.NumOutputs != m.NumOutputs || got.Initial != m.Initial {
		t.Fatalf("machine shape mismatch: %d states %d in %d out init %d, want %d/%d/%d/%d",
			got.NumStates(), got.NumInputs, got.NumOutputs, got.Initial,
			m.NumStates(), m.NumInputs, m.NumOutputs, m.Initial)
	}
	// Transition structure is preserved 1:1 and the conditions denote
	// the same Boolean functions: identical behavior on random streams.
	for s := 0; s < m.NumStates(); s++ {
		if len(got.Trans[s]) != len(m.Trans[s]) {
			t.Fatalf("state %d has %d transitions, want %d", s, len(got.Trans[s]), len(m.Trans[s]))
		}
		for i := range m.Trans[s] {
			if got.Trans[s][i].Dst != m.Trans[s][i].Dst {
				t.Fatalf("state %d transition %d dst mismatch", s, i)
			}
			if !reflect.DeepEqual(got.Trans[s][i].Out, m.Trans[s][i].Out) {
				t.Fatalf("state %d transition %d out mismatch", s, i)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		stream := make([][]bool, 3)
		for f := range stream {
			row := make([]bool, m.NumInputs)
			for j := range row {
				row[j] = rng.Intn(2) == 1
			}
			stream[f] = row
		}
		want := m.Simulate(stream)
		have := got.Simulate(stream)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("behavior diverges on stream %v: %v vs %v", stream, want, have)
		}
	}
}

// TestFunctionalResumeBitIdentical is the kill-and-resume contract at
// the engine level: a functional fold killed right after a stage
// checkpoints, re-run over the same store, restores the completed
// stages (visibly Resumed in the report) and produces a Result
// bit-identical to an uninterrupted fold.
func TestFunctionalResumeBitIdentical(t *testing.T) {
	g := gen.MustBuild("64-adder")
	const T = 16
	base := core.DefaultFunctionalOptions()
	base.Workers = 2

	clean, err := core.FunctionalFold(g, T, base)
	if err != nil {
		t.Fatalf("uninterrupted fold: %v", err)
	}

	for _, kill := range []string{pipeline.StageSchedule, pipeline.StageTFF, pipeline.StageMinimize} {
		t.Run("kill_after_"+kill, func(t *testing.T) {
			ck := newMemCheckpoint()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ck.onSave = func(stage string) {
				if stage == kill {
					cancel() // the "kill": abort the fold as soon as this stage checkpointed
				}
			}
			opt := base
			opt.Ctx = ctx
			opt.Checkpoint = ck
			if _, err := core.FunctionalFold(g, T, opt); !errors.Is(err, pipeline.ErrCanceled) {
				t.Fatalf("killed fold returned %v, want ErrCanceled", err)
			}
			if _, ok := ck.Load(kill); !ok {
				t.Fatalf("no %s checkpoint saved before the kill (have %v)", kill, ck.stages())
			}

			ck.onSave = nil
			opt = base
			opt.Checkpoint = ck
			resumed, err := core.FunctionalFold(g, T, opt)
			if err != nil {
				t.Fatalf("resumed fold: %v", err)
			}
			if !reflect.DeepEqual(stripReport(resumed), stripReport(clean)) {
				t.Fatal("resumed result is not bit-identical to the uninterrupted run")
			}
			// The skipped stages are visible in the resumed report.
			rep := resumed.Report
			if rep == nil {
				t.Fatal("resumed fold has no report")
			}
			seen := false
			for _, ss := range rep.Stages {
				if ss.Name == kill && !ss.Resumed {
					t.Errorf("stage %s not marked resumed", ss.Name)
				}
				if ss.Resumed {
					seen = true
				}
				if ss.Name == pipeline.StageEncode && ss.Resumed && kill != pipeline.StageEncode {
					t.Errorf("stage encode resumed without a checkpoint")
				}
			}
			if !seen {
				t.Error("no stage marked resumed")
			}
			if err := eqcheck.VerifyFoldWords(g, resumed, 2, 5); err != nil {
				t.Fatalf("resumed fold failed verification: %v", err)
			}
		})
	}
}
