package core

import (
	"sort"
	"testing"

	"circuitfold/internal/aig"
)

func TestClusterOutputsComponents(t *testing.T) {
	// Three disjoint cones plus one pair sharing an input.
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	d := g.PI("d")
	g.AddPO(g.And(a, b), "y0")      // shares a,b
	g.AddPO(g.Or(a, b.Not()), "y1") // shares a,b with y0
	g.AddPO(c, "y2")                // alone
	g.AddPO(d.Not(), "y3")          // alone
	clusters := clusterOutputs(g, 8)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v, want 3 components", clusters)
	}
	var first []int
	for _, cl := range clusters {
		if len(cl) == 2 {
			first = append([]int(nil), cl...)
		}
	}
	sort.Ints(first)
	if len(first) != 2 || first[0] != 0 || first[1] != 1 {
		t.Fatalf("shared-support outputs not clustered together: %v", clusters)
	}
}

func TestClusterOutputsSplitsOversized(t *testing.T) {
	g := aig.New()
	x := g.PI("x")
	for i := 0; i < 10; i++ {
		g.AddPO(x.NotIf(i%2 == 0), "")
	}
	clusters := clusterOutputs(g, 3)
	for _, cl := range clusters {
		if len(cl) > 3 {
			t.Fatalf("cluster exceeds cap: %v", cl)
		}
	}
	total := 0
	for _, cl := range clusters {
		total += len(cl)
	}
	if total != 10 {
		t.Fatalf("outputs lost: %d", total)
	}
}

func TestExtractConePreservesInterfaceAndFunction(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	g.AddPO(g.And(a, b), "y0")
	g.AddPO(g.Xor(b, c), "y1")
	sub := extractCone(g, []int{1})
	if sub.NumPIs() != 3 || sub.NumPOs() != 1 {
		t.Fatalf("interface wrong: %d/%d", sub.NumPIs(), sub.NumPOs())
	}
	for v := uint64(0); v < 8; v++ {
		if sub.EvalUint(v)[0] != g.EvalUint(v)[1] {
			t.Fatalf("cone differs at %d", v)
		}
	}
}
