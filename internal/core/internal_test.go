package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"circuitfold/internal/aig"
	"circuitfold/internal/bdd"
	"circuitfold/internal/pipeline"
)

// TestDecomposeAtCutReconstructs checks the defining property of the cut
// decomposition: f = OR_i (cond_i AND leaf_i), with pairwise-disjoint
// conditions covering the whole space above the cut.
func TestDecomposeAtCutReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 6
		m := bdd.New(n)
		f := randomBDD(m, rng, n, 25)
		cut := 1 + rng.Intn(n-1)
		branches := decomposeAtCut(m, f, cut, nil)
		if len(branches) == 0 {
			t.Fatal("no branches")
		}
		recon := bdd.False
		cover := bdd.False
		for i, bi := range branches {
			if bi.cond == bdd.False {
				t.Fatal("empty branch condition")
			}
			if m.Level(bi.leaf) < cut {
				t.Fatalf("leaf above the cut: level %d < %d", m.Level(bi.leaf), cut)
			}
			recon = m.Or(recon, m.And(bi.cond, bi.leaf))
			if m.And(cover, bi.cond) != bdd.False {
				t.Fatal("branch conditions overlap")
			}
			cover = m.Or(cover, bi.cond)
			for j := 0; j < i; j++ {
				if branches[j].leaf == bi.leaf {
					t.Fatal("duplicate leaves in decomposition")
				}
			}
		}
		if recon != f {
			t.Fatalf("trial %d: reconstruction differs", trial)
		}
		if cover != bdd.True {
			t.Fatalf("trial %d: conditions do not cover the space", trial)
		}
	}
}

func TestDecomposeAtCutTrivialCases(t *testing.T) {
	m := bdd.New(4)
	// Function entirely below the cut: single branch with cond True.
	f := m.And(m.Var(2), m.Var(3))
	br := decomposeAtCut(m, f, 2, nil)
	if len(br) != 1 || br[0].cond != bdd.True || br[0].leaf != f {
		t.Fatalf("below-cut decomposition wrong: %+v", br)
	}
	// Constant function.
	br = decomposeAtCut(m, bdd.True, 2, nil)
	if len(br) != 1 || br[0].leaf != bdd.True {
		t.Fatalf("constant decomposition wrong: %+v", br)
	}
	// Function entirely above the cut: terminal leaves.
	g := m.Xor(m.Var(0), m.Var(1))
	br = decomposeAtCut(m, g, 2, nil)
	if len(br) != 2 {
		t.Fatalf("above-cut decomposition: %d branches, want 2", len(br))
	}
	for _, b := range br {
		if b.leaf != bdd.True && b.leaf != bdd.False {
			t.Fatal("leaves must be terminals")
		}
	}
}

func TestQuickDecompose(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		m := bdd.New(n)
		f := randomBDD(m, rng, n, 15)
		cut := 1 + rng.Intn(n-1)
		recon := bdd.False
		for _, bi := range decomposeAtCut(m, f, cut, nil) {
			recon = m.Or(recon, m.And(bi.cond, bi.leaf))
		}
		return recon == f
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOutputBDDsMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		g := randomAIG(rng, 40, 7, 4)
		m := bdd.New(7)
		varOf := make([]int, 7)
		for i := range varOf {
			varOf[i] = i
		}
		roots := make([]aig.Lit, g.NumPOs())
		for i := range roots {
			roots[i] = g.PO(i)
		}
		nodes, err := buildOutputBDDs(g, m, varOf, roots, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]bool, 7)
		for v := uint64(0); v < 128; v++ {
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			want := g.Eval(in)
			for o, nd := range nodes {
				if m.Eval(nd, in) != want[o] {
					t.Fatalf("trial %d output %d differs at %d", trial, o, v)
				}
			}
		}
	}
}

func TestBuildOutputBDDsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomAIG(rng, 400, 24, 8)
	m := bdd.New(24)
	varOf := make([]int, 24)
	for i := range varOf {
		varOf[i] = i
	}
	roots := make([]aig.Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	if _, err := buildOutputBDDs(g, m, varOf, roots, 8, nil); err == nil {
		t.Fatal("tiny node budget should abort")
	} else if !errors.Is(err, pipeline.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestTimeFrameFoldDirect(t *testing.T) {
	// Fold a 2-bit equality comparator by hand-built schedule and check
	// the machine's behavior: out = (a0==b0) & (a1==b1), emitted frame 2.
	g := aig.New()
	a0 := g.PI("a0")
	b0 := g.PI("b0")
	a1 := g.PI("a1")
	b1 := g.PI("b1")
	g.AddPO(g.And(g.Xnor(a0, b0), g.Xnor(a1, b1)), "eq")

	sched, err := PinSchedule(g, 2, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	machine, states, err := TimeFrameFold(g, sched, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Frame-1 classes: "equal so far" and "already different" (+initial
	// +don't-care) -> 1 + 2 + 1 = 4.
	if states != 4 {
		t.Fatalf("states = %d, want 4", states)
	}
	if err := machine.Validate(); err != nil {
		t.Fatal(err)
	}
	// Behavior: feed both frames, read the second frame's output.
	for v := 0; v < 16; v++ {
		in1 := []bool{v&1 == 1, v&2 == 2}
		in2 := []bool{v&4 == 4, v&8 == 8}
		outs := machine.Simulate([][]bool{in1, in2})
		wantEq := (in1[0] == in1[1]) && (in2[0] == in2[1])
		// Locate the eq output pin in frame 2.
		pin := -1
		for k, po := range sched.OutSlot[1] {
			if po == 0 {
				pin = k
			}
		}
		if pin < 0 {
			t.Fatal("output not scheduled in frame 2")
		}
		got := outs[1][pin]
		if (got == 1) != wantEq {
			t.Fatalf("v=%d: got %v want %v", v, got, wantEq)
		}
	}
}

func randomBDD(m *bdd.Manager, rng *rand.Rand, n, ops int) bdd.Node {
	pool := []bdd.Node{bdd.True, bdd.False}
	for i := 0; i < n; i++ {
		pool = append(pool, m.Var(i))
	}
	for i := 0; i < ops; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		switch rng.Intn(3) {
		case 0:
			pool = append(pool, m.And(a, b))
		case 1:
			pool = append(pool, m.Or(a, b))
		default:
			pool = append(pool, m.Xor(a, b))
		}
	}
	return pool[len(pool)-1]
}

func randomAIG(rng *rand.Rand, ands, pis, pos int) *aig.Graph {
	g := aig.New()
	lits := []aig.Lit{aig.Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(ands/2)].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

func TestTimeFrameFoldStateCapTypedError(t *testing.T) {
	// A 2-bit comparator folded by 2 frames needs 4 states (see
	// TestTimeFrameFoldDirect); a 2-state budget must abort with
	// ErrBudgetExceeded.
	g := aig.New()
	a0 := g.PI("a0")
	b0 := g.PI("b0")
	a1 := g.PI("a1")
	b1 := g.PI("b1")
	g.AddPO(g.And(g.Xnor(a0, b0), g.Xnor(a1, b1)), "eq")

	sched, err := PinSchedule(g, 2, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := pipeline.NewRun(nil, pipeline.Budget{MaxStates: 2})
	if _, _, err := TimeFrameFold(g, sched, 1, run); err == nil {
		t.Fatal("2-state cap should abort the fold")
	} else if !errors.Is(err, pipeline.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}

	// The same fold under a sufficient budget succeeds.
	run = pipeline.NewRun(nil, pipeline.Budget{MaxStates: 10})
	if _, states, err := TimeFrameFold(g, sched, 1, run); err != nil {
		t.Fatal(err)
	} else if states != 4 {
		t.Fatalf("states = %d, want 4", states)
	}
}
