package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/fault"
	"circuitfold/internal/pipeline"
)

// foldWithWorkers folds g by T with the given frame-worker count and
// returns the machine plus its total state count.
func foldWithWorkers(t *testing.T, g *aig.Graph, T, workers int) (machineStates int, layout uint64, trans string) {
	t.Helper()
	sched, err := PinSchedule(g, T, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	machine, states, err := TimeFrameFold(g, sched, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the transition table: condition node values in the
	// machine's manager, outputs, destinations. Identical strings mean
	// bit-identical machines given equal manager layouts.
	var b []byte
	for _, row := range machine.Trans {
		for _, tr := range row {
			b = append(b, byte(tr.Cond), byte(tr.Cond>>8), byte(tr.Cond>>16), byte(tr.Cond>>24))
			for _, o := range tr.Out {
				b = append(b, byte(o))
			}
			b = append(b, byte(tr.Dst), byte(tr.Dst>>8))
		}
		b = append(b, 0xff)
	}
	return states, machine.Mgr.LayoutHash(), string(b)
}

// TestTimeFrameFoldWorkerDeterminism is the acceptance check for the
// parallel fold: the machine — state count, every transition, and the
// full arena layout of its condition manager — must be bit-identical
// across worker counts 1, 2, and 8.
func TestTimeFrameFoldWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		g := randomAIG(rng, 60+20*trial, 8, 4)
		baseStates, baseLayout, baseTrans := foldWithWorkers(t, g, 4, 1)
		for _, w := range []int{2, 8} {
			states, layout, trans := foldWithWorkers(t, g, 4, w)
			if states != baseStates {
				t.Fatalf("trial %d: states with %d workers = %d, want %d", trial, w, states, baseStates)
			}
			if layout != baseLayout {
				t.Fatalf("trial %d: condition-manager layout differs at %d workers", trial, w)
			}
			if trans != baseTrans {
				t.Fatalf("trial %d: transition table differs at %d workers", trial, w)
			}
		}
	}
}

// TestHybridWorkerDeterminism folds a clustered circuit with 1 and 4
// cluster workers and requires the same merged circuit.
func TestHybridWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := aig.New()
	// Disjoint output cones cluster cleanly and fold functionally.
	for c := 0; c < 4; c++ {
		ins := make([]aig.Lit, 4)
		for i := range ins {
			ins[i] = g.PI("")
		}
		acc := ins[0]
		for i := 1; i < len(ins); i++ {
			if rng.Intn(2) == 0 {
				acc = g.And(acc, ins[i])
			} else {
				acc = g.Xor(acc, ins[i])
			}
		}
		g.AddPO(acc, "")
	}
	fold := func(workers int) *Result {
		opt := DefaultHybridOptions()
		opt.Workers = workers
		r, err := HybridFold(g, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := fold(1), fold(4)
	if a.Seq.G.NumAnds() != b.Seq.G.NumAnds() || a.Seq.NumLatches() != b.Seq.NumLatches() {
		t.Fatalf("hybrid fold differs across workers: %d/%d ands, %d/%d latches",
			a.Seq.G.NumAnds(), b.Seq.G.NumAnds(), a.Seq.NumLatches(), b.Seq.NumLatches())
	}
	if !reflect.DeepEqual(a.OutSched, b.OutSched) {
		t.Fatal("hybrid output schedules differ across workers")
	}
}

// TestTimeFrameFoldWorkerFault injects a panic into a frame worker and
// requires a typed ErrInternal — with every pool goroutine drained, not
// a deadlock or a process panic.
func TestTimeFrameFoldWorkerFault(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomAIG(rng, 80, 8, 4)
	sched, err := PinSchedule(g, 4, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []fault.Mode{fault.Error, fault.Panic} {
		fault.Activate(fault.NewPlan(map[string]fault.Rule{
			// After 2: the initial frames have a single state each; fire
			// once several workers hold states.
			fault.PointTFFFrameWorker: {Mode: mode, After: 2},
		}))
		_, _, err := func() (m any, s int, err error) {
			defer pipeline.RecoverTo(&err, "test.tff")
			_, s, err = TimeFrameFold(g, sched, 4, nil)
			return nil, s, err
		}()
		fault.Deactivate()
		if err == nil {
			t.Fatalf("mode %v: injected fault did not surface", mode)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("mode %v: err = %v, want fault.ErrInjected", mode, err)
		}
		if mode == fault.Panic && !errors.Is(err, pipeline.ErrInternal) {
			t.Fatalf("panic mode: err = %v, want ErrInternal", err)
		}
	}
}
