package cio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadNetlistDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomSeq(rng, 4, 3, 0, 12)

	var aag, blif bytes.Buffer
	if err := WriteAAG(&aag, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteBLIF(&blif, c, "m"); err != nil {
		t.Fatal(err)
	}
	for format, text := range map[string]string{
		FormatAAG:   aag.String(),
		FormatBLIF:  blif.String(),
		FormatBench: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
	} {
		got, err := ReadNetlist(format, strings.NewReader(text))
		if err != nil {
			t.Errorf("ReadNetlist(%q): %v", format, err)
			continue
		}
		if got.NumInputs == 0 || got.NumOutputs() == 0 {
			t.Errorf("ReadNetlist(%q): degenerate circuit %d in %d out", format, got.NumInputs, got.NumOutputs())
		}
	}
	// The aag path round-trips behavior, not just shape.
	got, err := ReadNetlist(FormatAAG, bytes.NewReader(aag.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameBehavior(t, c, got, 20, 4, 7)
}

func TestReadNetlistRejectsUnknownFormat(t *testing.T) {
	for _, format := range []string{"", "verilog", "AAG", "aig"} {
		if _, err := ReadNetlist(format, strings.NewReader("")); err == nil {
			t.Errorf("format %q accepted", format)
		}
	}
}
