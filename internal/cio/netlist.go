package cio

import (
	"fmt"
	"io"

	"circuitfold/internal/seq"
)

// Netlist formats ReadNetlist accepts.
const (
	FormatAAG   = "aag"
	FormatBLIF  = "blif"
	FormatBench = "bench"
)

// Formats lists the accepted netlist format names.
func Formats() []string { return []string{FormatAAG, FormatBLIF, FormatBench} }

// ReadNetlist parses a sequential circuit from r in the named format:
// "aag" (ASCII AIGER), "blif", or "bench" (ISCAS). It is the single
// entry point for callers that take the format as data — the fold
// daemon's upload path — so format validation produces an error, not a
// missing-symbol bug.
func ReadNetlist(format string, r io.Reader) (*seq.Circuit, error) {
	switch format {
	case FormatAAG:
		return ReadAAG(r)
	case FormatBLIF:
		return ReadBLIF(r)
	case FormatBench:
		return ReadBench(r)
	}
	return nil, fmt.Errorf("cio: unknown netlist format %q (want one of %v)", format, Formats())
}
