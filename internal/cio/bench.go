package cio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"circuitfold/internal/aig"
	"circuitfold/internal/seq"
)

// ReadBench parses an ISCAS/ITC BENCH netlist: INPUT(x), OUTPUT(y), and
// assignments y = GATE(a, b, ...) with gates AND, OR, NAND, NOR, XOR,
// XNOR, NOT, BUFF/BUF, and DFF (a flip-flop with initial value 0).
func ReadBench(r io.Reader) (*seq.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var inputs, outputs []string
	type gate struct {
		op   string
		args []string
	}
	gates := map[string]gate{}
	var dffOrder []string

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT("):
			inputs = append(inputs, argOf(line))
		case strings.HasPrefix(upper, "OUTPUT("):
			outputs = append(outputs, argOf(line))
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("cio: malformed bench line %q", line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.ToUpper(rhs[:strings.IndexByte(rhs, '(')])
			args := strings.Split(argOf(rhs), ",")
			for i := range args {
				args[i] = strings.TrimSpace(args[i])
			}
			gates[name] = gate{op: op, args: args}
			if op == "DFF" {
				dffOrder = append(dffOrder, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	g := aig.New()
	sig := map[string]aig.Lit{}
	for _, in := range inputs {
		sig[in] = g.PI(in)
	}
	for _, d := range dffOrder {
		sig[d] = g.PI(d)
	}

	building := map[string]bool{}
	var build func(name string) (aig.Lit, error)
	build = func(name string) (aig.Lit, error) {
		if l, ok := sig[name]; ok {
			return l, nil
		}
		gt, ok := gates[name]
		if !ok {
			return 0, fmt.Errorf("cio: undriven signal %q", name)
		}
		if building[name] {
			return 0, fmt.Errorf("cio: combinational cycle through %q", name)
		}
		building[name] = true
		defer delete(building, name)
		args := make([]aig.Lit, len(gt.args))
		for i, a := range gt.args {
			l, err := build(a)
			if err != nil {
				return 0, err
			}
			args[i] = l
		}
		var l aig.Lit
		switch gt.op {
		case "AND":
			l = g.AndN(args...)
		case "NAND":
			l = g.AndN(args...).Not()
		case "OR":
			l = g.OrN(args...)
		case "NOR":
			l = g.OrN(args...).Not()
		case "XOR":
			l = g.XorN(args...)
		case "XNOR":
			l = g.XorN(args...).Not()
		case "NOT":
			l = args[0].Not()
		case "BUFF", "BUF":
			l = args[0]
		default:
			return 0, fmt.Errorf("cio: unsupported gate %q", gt.op)
		}
		sig[name] = l
		return l, nil
	}

	for _, out := range outputs {
		l, err := build(out)
		if err != nil {
			return nil, err
		}
		g.AddPO(l, out)
	}
	next := make([]aig.Lit, len(dffOrder))
	init := make([]bool, len(dffOrder))
	for i, d := range dffOrder {
		l, err := build(gates[d].args[0])
		if err != nil {
			return nil, err
		}
		next[i] = l
	}
	c := &seq.Circuit{G: g, NumInputs: len(inputs), Next: next, Init: init}
	return c, c.Validate()
}

func argOf(s string) string {
	open := strings.IndexByte(s, '(')
	close_ := strings.LastIndexByte(s, ')')
	if open < 0 || close_ < open {
		return ""
	}
	return strings.TrimSpace(s[open+1 : close_])
}
