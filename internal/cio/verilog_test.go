package cio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/seq"
)

func TestWriteVerilogCombinational(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.Xor(a, b), "sum")
	c := seq.Combinational(g)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c, "xor2"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module xor2(", "input wire a", "output wire sum",
		"assign", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
	if strings.Contains(v, "always") {
		t.Fatal("combinational module should have no always block")
	}
}

func TestWriteVerilogSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomSeq(rng, 3, 2, 2, 25)
	c.Init = []bool{true, false}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c, "m"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"reg [1:0] state;", "always @(posedge clk)",
		"if (rst) state <= 2'b01;", "state[0] <=", "state[1] <=",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestVerilogNameSanitization(t *testing.T) {
	if vlName("a b[3]", "in", 0) != "a_b_3_" {
		t.Fatalf("sanitize: %q", vlName("a b[3]", "in", 0))
	}
	if vlName("", "out", 4) != "out4" {
		t.Fatal("empty name fallback wrong")
	}
	if vlName("clk", "in", 1) != "in1" {
		t.Fatal("reserved port collision not avoided")
	}
	if vlName("3x", "in", 2) != "_3x" {
		t.Fatalf("leading digit: %q", vlName("3x", "in", 2))
	}
}

func TestWriteVCD(t *testing.T) {
	g := aig.New()
	en := g.PI("en")
	s := g.PI("")
	g.AddPO(s, "q")
	c := &seq.Circuit{G: g, NumInputs: 1, Next: []aig.Lit{g.Xor(s, en)}, Init: []bool{false}}
	stream := [][]bool{{true}, {false}, {true}}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, c, stream, "toggle"); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module toggle", "$var wire 1",
		"$enddefinitions", "#0", "#3",
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("vcd missing %q:\n%s", want, vcd)
		}
	}
	// The q output changes at cycle 1 (state toggled by en at cycle 0),
	// so there must be at least one value change after #1.
	idx := strings.Index(vcd, "#1\n")
	if idx < 0 || !strings.Contains(vcd[idx:], "1") {
		t.Fatal("no value changes recorded after cycle 1")
	}
}

func TestVCDIdentifiersUnique(t *testing.T) {
	// Exercise multi-character VCD ids with a wide circuit.
	g := aig.New()
	var outs []aig.Lit
	for i := 0; i < 120; i++ {
		outs = append(outs, g.PI(""))
	}
	for i, o := range outs {
		g.AddPO(o, "")
		_ = i
	}
	c := seq.Combinational(g)
	var buf bytes.Buffer
	if err := WriteVCD(&buf, c, [][]bool{make([]bool, 120)}, "wide"); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "$var wire 1 ") {
			f := strings.Fields(line)
			id := f[3]
			if ids[id] {
				t.Fatalf("duplicate vcd id %q", id)
			}
			ids[id] = true
		}
	}
	if len(ids) != 240 {
		t.Fatalf("expected 240 signals, got %d", len(ids))
	}
}
