package cio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"circuitfold/internal/aig"
	"circuitfold/internal/seq"
)

// WriteVerilog writes the sequential circuit as synthesizable structural
// Verilog-2001: one assign per AND node, a single always block for the
// flip-flops (with an active-high synchronous reset realizing the
// initial state), and ports named after the circuit's pins.
func WriteVerilog(w io.Writer, c *seq.Circuit, module string) error {
	bw := bufio.NewWriter(w)
	g := c.G

	inPorts := make([]string, c.NumInputs)
	for i := range inPorts {
		inPorts[i] = vlName(g.PIName(i), "in", i)
	}
	outPorts := make([]string, g.NumPOs())
	for i := range outPorts {
		outPorts[i] = vlName(g.POName(i), "out", i)
	}

	fmt.Fprintf(bw, "module %s(\n  input wire clk,\n  input wire rst,\n", module)
	for _, p := range inPorts {
		fmt.Fprintf(bw, "  input wire %s,\n", p)
	}
	for i, p := range outPorts {
		comma := ","
		if i == len(outPorts)-1 {
			comma = ""
		}
		fmt.Fprintf(bw, "  output wire %s%s\n", p, comma)
	}
	fmt.Fprintln(bw, ");")

	// Declarations.
	if c.NumLatches() > 0 {
		fmt.Fprintf(bw, "  reg [%d:0] state;\n", c.NumLatches()-1)
	}
	for id := 1; id < g.NumNodes(); id++ {
		if g.IsAnd(id) {
			fmt.Fprintf(bw, "  wire n%d;\n", id)
		}
	}

	// Literal rendering.
	lit := func(l aig.Lit) string {
		var base string
		switch {
		case l.Node() == 0:
			base = "1'b0"
			if l.Compl() {
				return "1'b1"
			}
			return base
		case g.IsPI(l.Node()):
			pi := g.PIIndex(l.Node())
			if pi < c.NumInputs {
				base = inPorts[pi]
			} else {
				base = fmt.Sprintf("state[%d]", pi-c.NumInputs)
			}
		default:
			base = fmt.Sprintf("n%d", l.Node())
		}
		if l.Compl() {
			return "~" + base
		}
		return base
	}

	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		fmt.Fprintf(bw, "  assign n%d = %s & %s;\n", id, lit(f0), lit(f1))
	}
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outPorts[i], lit(g.PO(i)))
	}

	if c.NumLatches() > 0 {
		reset := make([]string, c.NumLatches())
		for i, b := range c.Init {
			reset[c.NumLatches()-1-i] = "0"
			if b {
				reset[c.NumLatches()-1-i] = "1"
			}
		}
		fmt.Fprintln(bw, "  always @(posedge clk) begin")
		fmt.Fprintf(bw, "    if (rst) state <= %d'b%s;\n", c.NumLatches(), strings.Join(reset, ""))
		fmt.Fprintln(bw, "    else begin")
		for i, n := range c.Next {
			fmt.Fprintf(bw, "      state[%d] <= %s;\n", i, lit(n))
		}
		fmt.Fprintln(bw, "    end")
		fmt.Fprintln(bw, "  end")
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// vlName sanitizes a pin name into a Verilog identifier, falling back to
// a positional name.
func vlName(name, kind string, idx int) string {
	if name == "" {
		return fmt.Sprintf("%s%d", kind, idx)
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" || s == "clk" || s == "rst" {
		return fmt.Sprintf("%s%d", kind, idx)
	}
	return s
}

// WriteVCD dumps a value-change-dump waveform of the circuit simulated
// over the input stream, with one timestep per clock cycle: all inputs,
// outputs and flip-flops appear as 1-bit signals. Useful for inspecting
// a folded execution in a waveform viewer.
func WriteVCD(w io.Writer, c *seq.Circuit, stream [][]bool, module string) error {
	bw := bufio.NewWriter(w)
	g := c.G

	type sig struct {
		id   string
		name string
	}
	var sigs []sig
	vcdID := func(i int) string {
		// Printable short identifiers: !, ", #, ...
		var s []byte
		i++
		for i > 0 {
			s = append(s, byte('!'+(i-1)%94))
			i = (i - 1) / 94
		}
		return string(s)
	}
	for i := 0; i < c.NumInputs; i++ {
		sigs = append(sigs, sig{vcdID(len(sigs)), vlName(g.PIName(i), "in", i)})
	}
	for i := 0; i < g.NumPOs(); i++ {
		sigs = append(sigs, sig{vcdID(len(sigs)), vlName(g.POName(i), "out", i)})
	}
	for i := 0; i < c.NumLatches(); i++ {
		sigs = append(sigs, sig{vcdID(len(sigs)), fmt.Sprintf("ff%d", i)})
	}

	fmt.Fprintln(bw, "$timescale 1ns $end")
	fmt.Fprintf(bw, "$scope module %s $end\n", module)
	for _, s := range sigs {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", s.id, s.name)
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	state := append([]bool(nil), c.Init...)
	prev := make([]int8, len(sigs)) // -1 unknown, 0, 1
	for i := range prev {
		prev[i] = -1
	}
	emit := func(t int, vals []bool) {
		fmt.Fprintf(bw, "#%d\n", t)
		for i, v := range vals {
			b := int8(0)
			if v {
				b = 1
			}
			if prev[i] != b {
				fmt.Fprintf(bw, "%d%s\n", b, sigs[i].id)
				prev[i] = b
			}
		}
	}
	for t, in := range stream {
		out, next := c.Step(state, in)
		vals := make([]bool, 0, len(sigs))
		vals = append(vals, in...)
		vals = append(vals, out...)
		vals = append(vals, state...)
		emit(t, vals)
		state = next
	}
	fmt.Fprintf(bw, "#%d\n", len(stream))
	return bw.Flush()
}
