// Package cio reads and writes circuit interchange formats: BLIF (read/
// write), ISCAS BENCH (read), and ASCII AIGER .aag (read/write), covering
// both combinational and sequential circuits. It is the bridge between
// this library and standard EDA toolflows.
package cio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"circuitfold/internal/aig"
	"circuitfold/internal/seq"
)

// WriteBLIF writes the sequential circuit in Berkeley Logic Interchange
// Format. AND nodes become two-input .names tables; complemented edges
// are folded into the table rows.
func WriteBLIF(w io.Writer, c *seq.Circuit, model string) error {
	bw := bufio.NewWriter(w)
	g := c.G
	name := func(l aig.Lit) string { return fmt.Sprintf("n%d", l.Node()) }

	fmt.Fprintf(bw, ".model %s\n", model)
	fmt.Fprint(bw, ".inputs")
	for i := 0; i < c.NumInputs; i++ {
		fmt.Fprintf(bw, " %s", sanitize(g.PIName(i)))
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for i := 0; i < g.NumPOs(); i++ {
		fmt.Fprintf(bw, " %s", sanitize(g.POName(i)))
	}
	fmt.Fprintln(bw)
	for i := 0; i < c.NumLatches(); i++ {
		fmt.Fprintf(bw, ".latch lin%d lout%d %d\n", i, i, b2i(c.Init[i]))
	}
	// Constant-zero net for anything referencing the constant node.
	fmt.Fprintf(bw, ".names n0\n") // empty table = constant 0

	// Input nets alias the PI names; latch outputs alias lout nets.
	for i := 0; i < g.NumPIs(); i++ {
		id := g.PILit(i).Node()
		if i < c.NumInputs {
			fmt.Fprintf(bw, ".names %s n%d\n1 1\n", sanitize(g.PIName(i)), id)
		} else {
			fmt.Fprintf(bw, ".names lout%d n%d\n1 1\n", i-c.NumInputs, id)
		}
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		r0, r1 := byte('1'), byte('1')
		if f0.Compl() {
			r0 = '0'
		}
		if f1.Compl() {
			r1 = '0'
		}
		fmt.Fprintf(bw, ".names %s %s n%d\n%c%c 1\n", name(f0), name(f1), id, r0, r1)
	}
	emitLit := func(target string, l aig.Lit) {
		if l == aig.Const0 {
			fmt.Fprintf(bw, ".names %s\n", target)
		} else if l == aig.Const1 {
			fmt.Fprintf(bw, ".names %s\n1\n", target)
		} else if l.Compl() {
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", name(l), target)
		} else {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", name(l), target)
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		emitLit(sanitize(g.POName(i)), g.PO(i))
	}
	for i, n := range c.Next {
		emitLit(fmt.Sprintf("lin%d", i), n)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '=', '#':
			return '_'
		}
		return r
	}, s)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ReadBLIF parses a single-model BLIF file into a sequential circuit.
// .names tables may have multiple cubes and '-' don't-cares; latches use
// the 3-or-5 token form.
func ReadBLIF(r io.Reader) (*seq.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var inputs, outputs []string
	type latch struct {
		in, out string
		init    bool
	}
	var latches []latch
	type table struct {
		ins   []string
		out   string
		cubes []string // "10-" style rows that output 1
	}
	var tables []table
	var cur *table

	// Join continuation lines ending in backslash.
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for strings.HasSuffix(line, "\\") && sc.Scan() {
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(sc.Text())
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	flush := func() {
		if cur != nil {
			tables = append(tables, *cur)
			cur = nil
		}
	}
	for _, line := range lines {
		f := strings.Fields(line)
		switch f[0] {
		case ".model":
			// ignored
		case ".inputs":
			flush()
			inputs = append(inputs, f[1:]...)
		case ".outputs":
			flush()
			outputs = append(outputs, f[1:]...)
		case ".latch":
			flush()
			if len(f) < 3 {
				return nil, fmt.Errorf("cio: malformed .latch: %q", line)
			}
			l := latch{in: f[1], out: f[2]}
			last := f[len(f)-1]
			if last == "1" {
				l.init = true
			}
			latches = append(latches, l)
		case ".names":
			flush()
			cur = &table{ins: f[1 : len(f)-1], out: f[len(f)-1]}
		case ".end":
			flush()
		default:
			if cur == nil {
				return nil, fmt.Errorf("cio: unexpected line %q", line)
			}
			if len(cur.ins) == 0 {
				if f[0] == "1" {
					cur.cubes = append(cur.cubes, "")
				}
				continue
			}
			if len(f) != 2 {
				return nil, fmt.Errorf("cio: malformed cube %q", line)
			}
			if f[1] == "1" {
				cur.cubes = append(cur.cubes, f[0])
			} else if f[1] != "0" {
				return nil, fmt.Errorf("cio: bad cube output %q", line)
			}
			// Off-set cubes in a mixed table are not supported; pure
			// off-set tables read as constant 0 via no on-cubes.
		}
	}
	flush()

	g := aig.New()
	sig := map[string]aig.Lit{}
	for _, in := range inputs {
		sig[in] = g.PI(in)
	}
	for _, l := range latches {
		sig[l.out] = g.PI(l.out)
	}

	byOut := map[string]table{}
	for _, t := range tables {
		byOut[t.out] = t
	}
	var build func(name string) (aig.Lit, error)
	building := map[string]bool{}
	build = func(name string) (aig.Lit, error) {
		if l, ok := sig[name]; ok {
			return l, nil
		}
		t, ok := byOut[name]
		if !ok {
			return 0, fmt.Errorf("cio: undriven signal %q", name)
		}
		if building[name] {
			return 0, fmt.Errorf("cio: combinational cycle through %q", name)
		}
		building[name] = true
		defer delete(building, name)
		var cubes []aig.Lit
		for _, cube := range t.cubes {
			if len(cube) != len(t.ins) {
				return 0, fmt.Errorf("cio: cube width mismatch in table %q", name)
			}
			term := aig.Const1
			for i, ch := range cube {
				in, err := build(t.ins[i])
				if err != nil {
					return 0, err
				}
				switch ch {
				case '1':
					term = g.And(term, in)
				case '0':
					term = g.And(term, in.Not())
				case '-':
				default:
					return 0, fmt.Errorf("cio: bad cube char %q", string(ch))
				}
			}
			cubes = append(cubes, term)
		}
		l := g.OrN(cubes...)
		if len(t.ins) == 0 && len(t.cubes) > 0 {
			l = aig.Const1
		}
		sig[name] = l
		return l, nil
	}
	for _, out := range outputs {
		l, err := build(out)
		if err != nil {
			return nil, err
		}
		g.AddPO(l, out)
	}
	next := make([]aig.Lit, len(latches))
	init := make([]bool, len(latches))
	for i, l := range latches {
		n, err := build(l.in)
		if err != nil {
			return nil, err
		}
		next[i] = n
		init[i] = l.init
	}
	c := &seq.Circuit{G: g, NumInputs: len(inputs), Next: next, Init: init}
	return c, c.Validate()
}
