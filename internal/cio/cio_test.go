package cio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/seq"
)

// randomSeq builds a deterministic random sequential circuit.
func randomSeq(rng *rand.Rand, ins, outs, ffs, ands int) *seq.Circuit {
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < ins+ffs; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < outs; i++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0), "")
	}
	next := make([]aig.Lit, ffs)
	init := make([]bool, ffs)
	for i := range next {
		next[i] = lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		init[i] = rng.Intn(2) == 1
	}
	return &seq.Circuit{G: g, NumInputs: ins, Next: next, Init: init}
}

// sameBehavior compares two sequential circuits on random input streams.
func sameBehavior(t *testing.T, a, b *seq.Circuit, trials, length int, seed int64) {
	t.Helper()
	if a.NumInputs != b.NumInputs || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("interface mismatch: %v vs %v", a, b)
	}
	rng := rand.New(rand.NewSource(seed))
	for tr := 0; tr < trials; tr++ {
		stream := make([][]bool, length)
		for i := range stream {
			row := make([]bool, a.NumInputs)
			for j := range row {
				row[j] = rng.Intn(2) == 1
			}
			stream[i] = row
		}
		oa := a.Simulate(stream)
		ob := b.Simulate(stream)
		for i := range oa {
			for o := range oa[i] {
				if oa[i][o] != ob[i][o] {
					t.Fatalf("trial %d step %d output %d differs", tr, i, o)
				}
			}
		}
	}
}

func TestBLIFRoundTripCombinational(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		c := randomSeq(rng, 6, 4, 0, 30)
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c, "test"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBLIF(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		sameBehavior(t, c, back, 20, 1, int64(trial))
	}
}

func TestBLIFRoundTripSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		c := randomSeq(rng, 4, 3, 3, 40)
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c, "seqtest"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBLIF(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumLatches() != 3 {
			t.Fatalf("latches lost: %d", back.NumLatches())
		}
		sameBehavior(t, c, back, 20, 8, int64(trial))
	}
}

func TestBLIFConstantsAndInverters(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	g.AddPO(aig.Const1, "one")
	g.AddPO(aig.Const0, "zero")
	g.AddPO(a.Not(), "nota")
	c := seq.Combinational(g)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c, "consts"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := back.Step(nil, []bool{false})
	if !out[0] || out[1] || !out[2] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestReadBLIFDontCareCubes(t *testing.T) {
	src := `
.model dc
.inputs a b c
.outputs f
.names a b c f
1-0 1
01- 1
.end`
	c, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b, cc, want bool) {
		out, _ := c.Step(nil, []bool{a, b, cc})
		if out[0] != want {
			t.Fatalf("f(%v,%v,%v) = %v, want %v", a, b, cc, out[0], want)
		}
	}
	check(true, false, false, true) // matches 1-0
	check(true, true, false, true)  // matches 1-0
	check(true, true, true, false)  // no cube
	check(false, true, true, true)  // matches 01-
	check(false, false, false, false)
}

func TestReadBLIFErrors(t *testing.T) {
	if _, err := ReadBLIF(strings.NewReader(".model x\n.inputs a\n.outputs f\n.end")); err == nil {
		t.Fatal("undriven output should fail")
	}
	bad := ".model x\n.inputs a\n.outputs f\n.names f g\n1 1\n.names g f\n1 1\n.end"
	if _, err := ReadBLIF(strings.NewReader(bad)); err == nil {
		t.Fatal("combinational cycle should fail")
	}
}

func TestReadBench(t *testing.T) {
	src := `
# small bench
INPUT(a)
INPUT(b)
OUTPUT(f)
OUTPUT(q)
n1 = NAND(a, b)
n2 = XOR(a, n1)
f = NOT(n2)
q = DFF(f)
`
	c, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs != 2 || c.NumOutputs() != 2 || c.NumLatches() != 1 {
		t.Fatalf("shape wrong: %v", c)
	}
	// f = !(a ^ !(a&b)) which simplifies to a & !b.
	eval := func(a, b bool) bool {
		out, _ := c.Step([]bool{false}, []bool{a, b})
		return out[0]
	}
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false},
		{true, false, true},
		{false, true, false},
		{true, true, false},
	} {
		if eval(tc.a, tc.b) != tc.want {
			t.Fatalf("f(%v,%v) wrong", tc.a, tc.b)
		}
	}
	// DFF pipes f with one cycle delay: f(1,0)=1 shows up on q next cycle.
	outs := c.Simulate([][]bool{{true, false}, {false, false}})
	if outs[0][1] != false || outs[1][1] != true {
		t.Fatalf("dff behavior wrong: %v", outs)
	}
}

func TestReadBenchMultiInputGates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
f = OR(a, b, c)
`
	c, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Step(nil, []bool{false, false, true})
	if !out[0] {
		t.Fatal("3-input OR wrong")
	}
}

func TestReadBenchErrors(t *testing.T) {
	if _, err := ReadBench(strings.NewReader("OUTPUT(f)\nf = FROB(a)\nINPUT(a)\n")); err == nil {
		t.Fatal("unknown gate should fail")
	}
	if _, err := ReadBench(strings.NewReader("OUTPUT(f)\n")); err == nil {
		t.Fatal("undriven output should fail")
	}
}

func TestAAGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		c := randomSeq(rng, 5, 4, 2, 30)
		var buf bytes.Buffer
		if err := WriteAAG(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAAG(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		sameBehavior(t, c, back, 20, 8, int64(trial))
	}
}

func TestAAGInitOneLatchNormalization(t *testing.T) {
	// A latch initialized to 1 must survive the init-0 normalization.
	g := aig.New()
	en := g.PI("en")
	s := g.PI("s")
	g.AddPO(s, "q")
	c := &seq.Circuit{G: g, NumInputs: 1, Next: []aig.Lit{g.Xor(s, en)}, Init: []bool{true}}
	var buf bytes.Buffer
	if err := WriteAAG(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameBehavior(t, c, back, 20, 6, 9)
}

func TestAAGNamesPreserved(t *testing.T) {
	g := aig.New()
	a := g.PI("alpha")
	b := g.PI("beta")
	g.AddPO(g.And(a, b), "gamma")
	c := seq.Combinational(g)
	var buf bytes.Buffer
	if err := WriteAAG(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.PIName(0) != "alpha" || back.G.POName(0) != "gamma" {
		t.Fatalf("names lost: %q %q", back.G.PIName(0), back.G.POName(0))
	}
}

func TestReadAAGErrors(t *testing.T) {
	if _, err := ReadAAG(strings.NewReader("")); err == nil {
		t.Fatal("empty file should fail")
	}
	if _, err := ReadAAG(strings.NewReader("aag x\n")); err == nil {
		t.Fatal("bad header should fail")
	}
	if _, err := ReadAAG(strings.NewReader("aag 1 1 0 1 0\n2\n")); err == nil {
		t.Fatal("truncated file should fail")
	}
}
