package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// constMetricNames extracts every M* metric constant's string value
// from metrics.go — the single source of truth for metric names.
func constMetricNames(t *testing.T) map[string]bool {
	t.Helper()
	src, err := os.ReadFile("metrics.go")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`\bM[A-Za-z0-9]+\s*=\s*"([a-z0-9._]+)"`)
	names := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		names[m[1]] = true
	}
	if len(names) == 0 {
		t.Fatal("no metric constants found in metrics.go")
	}
	return names
}

// docMetricNames extracts every backticked metric name from the rows
// of DESIGN.md's metrics table (lines shaped `| name | kind | ... |`
// with a known kind). Parameterized families (`stage.<name>.seconds`)
// are skipped: they have no single constant.
func docMetricNames(t *testing.T) map[string]bool {
	t.Helper()
	doc, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	nameRE := regexp.MustCompile("`([a-z0-9._]+)`")
	kindRE := regexp.MustCompile(`\|\s*(counter|gauge|histogram|timing)\s*\|`)
	names := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "|") || !kindRE.MatchString(line) {
			continue
		}
		// Only the name column (before the kind cell) holds metric
		// names; the meaning column may backtick unrelated symbols.
		nameCell := line[:kindRE.FindStringIndex(line)[0]]
		for _, m := range nameRE.FindAllStringSubmatch(nameCell, -1) {
			names[m[1]] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric rows found in DESIGN.md")
	}
	return names
}

// TestMetricsTableInSync pins DESIGN.md's metrics table to the M*
// constants, both directions: a metric added without documentation
// fails, and a documented metric that no longer exists fails.
func TestMetricsTableInSync(t *testing.T) {
	code := constMetricNames(t)
	doc := docMetricNames(t)
	for name := range code {
		if !doc[name] {
			t.Errorf("metric %q (metrics.go) is missing from DESIGN.md's metrics table", name)
		}
	}
	for name := range doc {
		if !code[name] {
			t.Errorf("DESIGN.md documents metric %q, but no M* constant defines it", name)
		}
	}
}
