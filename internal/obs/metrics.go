package obs

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names updated by the engine's layers. Keeping them
// here (rather than scattered string literals) makes the registry
// greppable and keeps DESIGN.md's table in sync with the code.
const (
	MBDDLiveNodes       = "bdd.live_nodes"          // gauge: allocated manager nodes (peak = high-water mark)
	MBDDArenaBytes      = "bdd.arena_bytes"         // gauge: approximate arena memory
	MBDDReorderSwaps    = "bdd.reorder_swaps"       // counter: adjacent-level swaps performed by sifting
	MBDDCacheHits       = "bdd.cache_hits"          // counter: computed-cache hits (apply + ITE)
	MBDDCacheMisses     = "bdd.cache_misses"        // counter: computed-cache misses (apply + ITE)
	MBDDUniqueLoad      = "bdd.unique_load_pct"     // gauge: unique-table load factor, percent
	MBDDFreeNodes       = "bdd.free_nodes"          // gauge: reclaimed arena slots awaiting reuse
	MBDDComplementHits  = "bdd.complement_hits"     // counter: cache hits reached only via polarity normalization
	MSATDecisions       = "sat.decisions"           // counter
	MSATPropagations    = "sat.propagations"        // counter
	MSATRestarts        = "sat.restarts"            // counter
	MSATConflicts       = "sat.conflicts"           // counter
	MSATLearnedSize     = "sat.learned_clause_size" // histogram: literals per learned clause
	MSweepClasses       = "sweep.classes"           // gauge: candidate equivalence classes
	MSweepCEXRounds     = "sweep.cex_rounds"        // counter: CEX-guided refinement rounds
	MSweepMerges        = "sweep.merges"            // counter: nodes merged into representatives
	MSweepSATCalls      = "sweep.sat_calls"         // counter: SAT queries issued by sweeping
	MFSMStates          = "fsm.states"              // gauge: states in the machine under minimization
	MFoldFallbacks      = "fold.fallbacks"          // counter: degradation-ladder rung descents
	MFoldPanics         = "fold.panics_recovered"   // counter: panics converted to ErrInternal at recover boundaries
	MFoldSelfCheck      = "fold.selfcheck_fail"     // counter: folds rejected by the post-fold self-check
	MFoldParallelFrames = "fold.parallel_frames"    // gauge: TFF frames folded with more than one worker
	MFoldFrameWorkers   = "fold.frame_workers"      // gauge: worker count of the most recent parallel fold

	// Service-layer names (the fold daemon's process registry).
	MJobQueueWait  = "job.queue_wait"  // timing: submit-to-start latency
	MJobRunSeconds = "job.run_seconds" // timing: start-to-finish fold latency
	MJobQueueDepth = "job.queue_depth" // gauge: jobs waiting for a worker
	MJobRunning    = "job.running"     // gauge: jobs currently folding
	MJobSubmitted  = "job.submitted"   // counter: jobs accepted by Submit
	MJobDone       = "job.done"        // counter: jobs finished successfully
	MJobFailed     = "job.failed"      // counter: jobs finished in error
	MJobCanceled   = "job.canceled"    // counter: jobs canceled (client or drain)

	// Shared-work engine (result cache, in-flight dedup, arena pools).
	MJobCacheHits     = "job.cache_hits"     // counter: submissions served from the result cache
	MJobCacheMisses   = "job.cache_misses"   // counter: submissions that had to fold
	MJobDedupAttached = "job.dedup_attached" // counter: submissions attached to an identical in-flight job
	MCacheEntries     = "cache.entries"      // gauge: result-cache entries resident
	MCacheBytes       = "cache.bytes"        // gauge: result-cache bytes resident
	MCacheEvictions   = "cache.evictions"    // counter: result-cache entries evicted (LRU or size cap)
	MBDDPoolReuse     = "bdd.pool_reuse"     // counter: BDD manager arenas recycled from a pool
	MSATPoolReuse     = "sat.pool_reuse"     // counter: SAT solvers recycled from a pool

	MHTTPRequests = "http.requests"        // counter: API requests served
	MHTTPSeconds  = "http.request_seconds" // timing: API request latency
	MFlightDumps  = "flight.dumps"         // counter: flight-recorder artifacts written

	// Durability + overload protection (journal, checksummed stores,
	// admission control).
	MStoreCorrupt   = "store.corrupt"         // counter: checksum-failed blobs quarantined (file store) or dropped (result cache)
	MJournalRecords = "journal.records"       // counter: records appended to the job journal
	MJobRecovered   = "job.recovered"         // counter: jobs re-enqueued by journal replay after a crash
	MJobRejected    = "job.rejected"          // counter: submissions fast-failed because the queue was full
	MJobDeadline    = "job.deadline_exceeded" // counter: jobs that missed their client-supplied deadline
)

// StageSeconds is the per-stage latency timing name for a pipeline
// stage: "stage.<name>.seconds". Observed by pipeline.Execute into the
// run's registry after every stage, aborted ones included.
func StageSeconds(stage string) string { return "stage." + stage + ".seconds" }

// Counter is a monotonically increasing metric. Methods are no-ops on a
// nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric that also tracks its high-water mark.
// Methods are no-ops on a nil receiver.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set records the current value, updating the peak.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Add shifts the current value by d, updating the peak — the natural
// operation for occupancy gauges (jobs running, workers busy) written
// from many goroutines.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Peak returns the largest value ever set (0 on nil).
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Histogram counts observations in power-of-two buckets: bucket i holds
// values v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1). Methods are
// no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [64]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the non-empty buckets keyed by their upper bound
// (as a power of two).
func (h *Histogram) Buckets() map[int64]int64 {
	if h == nil {
		return nil
	}
	out := make(map[int64]int64)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out[int64(1)<<i] = n
		}
	}
	return out
}

// DefaultTimingBuckets are the explicit latency bucket upper bounds
// (seconds) a Timing uses: 1ms to 60s, roughly logarithmic, chosen so
// the SLO quantiles of both a sub-millisecond snapshot restore and a
// minutes-long b14 fold land inside the covered range.
var DefaultTimingBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Timing is a latency histogram with explicit bucket upper bounds in
// seconds (DefaultTimingBuckets) plus a running sum and count, from
// which quantiles are estimated by linear interpolation. Unlike
// Histogram's power-of-two integer buckets it is meant for durations,
// and it renders as a native OpenMetrics histogram. Methods are no-ops
// on a nil receiver.
type Timing struct {
	count atomic.Int64
	sumNS atomic.Int64
	// buckets[i] counts observations <= DefaultTimingBuckets[i]; the
	// final slot is the +Inf overflow.
	buckets [len16]atomic.Int64
}

// len16 is len(DefaultTimingBuckets)+1; a const so the bucket array
// needs no allocation. Asserted against the slice in tests.
const len16 = 16

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one latency given in seconds.
func (t *Timing) ObserveSeconds(s float64) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.sumNS.Add(int64(s * 1e9))
	i := 0
	for i < len(DefaultTimingBuckets) && s > DefaultTimingBuckets[i] {
		i++
	}
	t.buckets[i].Add(1)
}

// Count returns the number of observations (0 on nil).
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// SumSeconds returns the total observed latency in seconds.
func (t *Timing) SumSeconds() float64 {
	if t == nil {
		return 0
	}
	return float64(t.sumNS.Load()) / 1e9
}

// Counts returns the per-bucket observation counts, one per
// DefaultTimingBuckets bound plus a final +Inf overflow slot.
func (t *Timing) Counts() []int64 {
	if t == nil {
		return nil
	}
	out := make([]int64, len16)
	for i := range out {
		out[i] = t.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation inside the bucket holding the target rank. With no
// observations it returns 0; ranks landing in the +Inf bucket report
// the largest finite bound.
func (t *Timing) Quantile(q float64) float64 {
	if t == nil {
		return 0
	}
	total := t.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := 0; i < len(DefaultTimingBuckets); i++ {
		n := t.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = DefaultTimingBuckets[i-1]
			}
			hi := DefaultTimingBuckets[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return DefaultTimingBuckets[len(DefaultTimingBuckets)-1]
}

// Registry is a concurrency-safe namespace of metrics. Lookups create
// the metric on first use, so instrumented code resolves metrics once
// and updates them lock-free afterwards. All methods are nil-safe: a
// nil registry resolves every name to a nil metric, which in turn
// no-ops every update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timings  map[string]*Timing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timings:  make(map[string]*Timing),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timing returns the named latency histogram, creating it if needed.
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timings[name]
	if t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// Snapshot returns a JSON-friendly view of every metric: counters map
// to their value, gauges to {value, peak}, histograms to
// {count, sum, buckets}, timings to {count, sum_seconds, p50, p99}.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.timings))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = map[string]int64{"value": g.Value(), "peak": g.Peak()}
	}
	for name, h := range r.hists {
		out[name] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": h.Buckets()}
	}
	for name, t := range r.timings {
		out[name] = map[string]any{
			"count": t.Count(), "sum_seconds": t.SumSeconds(),
			"p50": t.Quantile(0.5), "p99": t.Quantile(0.99),
		}
	}
	return out
}

// published guards expvar.Publish, which panics on duplicate names;
// republishing the same registry name is a silent no-op instead.
var (
	publishMu sync.Mutex
	published = make(map[string]bool)
)

// Publish exposes the registry's Snapshot under the given expvar name
// (visible at /debug/vars when an HTTP server runs on the default
// mux). Publishing the same name twice keeps the first registration.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
