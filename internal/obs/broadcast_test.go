package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBroadcastFanOut(t *testing.T) {
	b := NewBroadcast(0)
	ch1, cancel1 := b.Subscribe(4)
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()
	b.Emit(Event{Name: "a"})
	b.Emit(Event{Name: "b"})
	for _, ch := range []<-chan Event{ch1, ch2} {
		if e := <-ch; e.Name != "a" {
			t.Fatalf("first event %q, want a", e.Name)
		}
		if e := <-ch; e.Name != "b" {
			t.Fatalf("second event %q, want b", e.Name)
		}
	}
	cancel1()
	if _, ok := <-ch1; ok {
		t.Error("canceled subscriber channel not closed")
	}
	cancel1() // idempotent
	b.Emit(Event{Name: "c"})
	if e := <-ch2; e.Name != "c" {
		t.Fatalf("live subscriber missed event after another canceled: %q", e.Name)
	}
	if n := b.Subscribers(); n != 1 {
		t.Errorf("subscribers = %d, want 1", n)
	}
}

func TestBroadcastReplayRing(t *testing.T) {
	b := NewBroadcast(3)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		b.Emit(Event{Name: n})
	}
	// Ring keeps the 3 most recent; a late subscriber sees them.
	ch, cancel := b.Subscribe(8)
	defer cancel()
	for _, want := range []string{"c", "d", "e"} {
		if e := <-ch; e.Name != want {
			t.Fatalf("replayed %q, want %q", e.Name, want)
		}
	}
	// A tiny buffer gets only the newest replayed events.
	ch2, cancel2 := b.Subscribe(1)
	defer cancel2()
	if e := <-ch2; e.Name != "e" {
		t.Fatalf("small-buffer replay %q, want e", e.Name)
	}
}

func TestBroadcastNonBlockingDrop(t *testing.T) {
	b := NewBroadcast(0)
	ch, cancel := b.Subscribe(1)
	defer cancel()
	b.Emit(Event{Name: "kept"})
	b.Emit(Event{Name: "lost"}) // buffer full: must not block
	if got := b.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if e := <-ch; e.Name != "kept" {
		t.Errorf("delivered %q, want kept", e.Name)
	}
}

func TestBroadcastClose(t *testing.T) {
	b := NewBroadcast(2)
	ch, cancel := b.Subscribe(2)
	b.Emit(Event{Name: "a"})
	b.Close()
	b.Close() // idempotent
	if e, ok := <-ch; !ok || e.Name != "a" {
		t.Fatalf("buffered event lost on close: %v %v", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Error("channel not closed by Close")
	}
	cancel() // after Close: no panic
	b.Emit(Event{Name: "late"})
	// Subscribing after Close still replays the ring, then the
	// channel is closed (the post-Close emit was dropped).
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()
	if e, ok := <-ch2; !ok || e.Name != "a" {
		t.Errorf("post-close replay = %v, %v; want a", e, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("subscribe after Close returned a live channel")
	}
}

func TestBroadcastAsTracerSink(t *testing.T) {
	b := NewBroadcast(4)
	buf := NewTraceBuffer()
	tr := NewTracer(MultiSink(buf, b, nil))
	ch, cancel := b.Subscribe(4)
	defer cancel()
	sp := tr.Start("fold", "pipeline")
	sp.Child("schedule", "stage").End()
	sp.End()
	if e := <-ch; e.Name != "schedule" {
		t.Fatalf("streamed %q, want schedule", e.Name)
	}
	if e := <-ch; e.Name != "fold" {
		t.Fatalf("streamed %q, want fold", e.Name)
	}
	if buf.Len() != 2 {
		t.Errorf("multi-sink buffer has %d events, want 2", buf.Len())
	}
}

func TestMultiSinkDegenerate(t *testing.T) {
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Error("empty MultiSink not nil")
	}
	buf := NewTraceBuffer()
	if got := MultiSink(nil, buf); got != Sink(buf) {
		t.Error("single-sink MultiSink did not unwrap")
	}
}

// TestBroadcastConcurrentSubscribeUnsubscribe is the replay-ring
// semantics check the fold daemon depends on, under contention (run
// with -race by the obs race gate): while a fold is emitting spans,
// clients attach and detach continuously. Every subscriber must observe
// a consistent stream (per-emitter TS strictly increasing across the
// ring-replay/live-stream splice, no duplicates, no tearing), and
// cancellation must never deadlock against Emit.
func TestBroadcastConcurrentSubscribeUnsubscribe(t *testing.T) {
	const (
		emitters    = 2
		perEmitter  = 500
		subscribers = 8
	)
	b := NewBroadcast(64)

	var emitWG sync.WaitGroup
	for e := 0; e < emitters; e++ {
		emitWG.Add(1)
		go func(e int) {
			defer emitWG.Done()
			for i := 0; i < perEmitter; i++ {
				b.Emit(Event{Name: "span", TID: e, TS: float64(i)})
			}
		}(e)
	}

	stop := make(chan struct{})
	errs := make(chan string, subscribers)
	var subWG sync.WaitGroup
	for s := 0; s < subscribers; s++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := b.Subscribe(16)
				last := map[int]float64{0: -1, 1: -1}
			recv:
				for n := 0; n < 32; n++ {
					var e Event
					var open bool
					select {
					case e, open = <-ch:
						if !open {
							break recv
						}
					case <-stop: // emitters done; nothing more will arrive
						break recv
					}
					if e.TS <= last[e.TID] {
						select {
						case errs <- fmt.Sprintf("emitter %d: TS %v after %v", e.TID, e.TS, last[e.TID]):
						default:
						}
						cancel()
						return
					}
					last[e.TID] = e.TS
				}
				cancel()
				for range ch { // cancel closes the channel; drain it
				}
			}
		}()
	}

	emitWG.Wait()
	close(stop)
	waitDone := make(chan struct{})
	go func() { subWG.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("broadcast churn deadlocked")
	}
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// After Close, a late subscriber still sees the ring replay, on an
	// already-closed channel.
	b.Close()
	ch, cancel := b.Subscribe(64)
	defer cancel()
	n := 0
	for range ch {
		n++
	}
	if n == 0 {
		t.Error("closed broadcast replayed nothing")
	}
}
