package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderSpanRing(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	for i := 0; i < 10; i++ {
		f.Emit(Event{Name: "s", TS: float64(i)})
	}
	rec := f.Record(nil, nil)
	if len(rec.Spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(rec.Spans))
	}
	if rec.Spans[0].TS != 6 || rec.Spans[3].TS != 9 {
		t.Errorf("ring kept %v..%v, want the most recent 6..9", rec.Spans[0].TS, rec.Spans[3].TS)
	}
	if rec.SpansDropped != 6 {
		t.Errorf("dropped = %d, want 6", rec.SpansDropped)
	}
}

func TestFlightRecorderLogCapture(t *testing.T) {
	f := NewFlightRecorder(4, 3)
	log := slog.New(f.LogHandler()).With("job_id", "j0001")
	log.Info("started", "method", "functional")
	log.WithGroup("fold").Warn("slow", "stage", "tff")
	log.Error("failed", "err", "boom")
	log.Info("extra 1")
	rec := f.Record(map[string]any{"job_id": "j0001"}, nil)
	if len(rec.Logs) != 3 || rec.LogsDropped != 1 {
		t.Fatalf("logs = %d dropped = %d, want 3 and 1", len(rec.Logs), rec.LogsDropped)
	}
	// Oldest line fell off; the ring starts at the group-attr warning.
	if rec.Logs[0].Msg != "slow" || rec.Logs[0].Level != "WARN" {
		t.Errorf("logs[0] = %+v", rec.Logs[0])
	}
	if rec.Logs[0].Attrs["job_id"] != "j0001" || rec.Logs[0].Attrs["fold.stage"] != "tff" {
		t.Errorf("attrs not flattened/correlated: %+v", rec.Logs[0].Attrs)
	}

	// The artifact is one self-contained JSON document.
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"job_id":"j0001"`, `"msg":"failed"`, `"dumped_at"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %s", want)
		}
	}
}

func TestFlightRecorderMetricsSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(MFoldPanics).Add(2)
	r.Timing(MJobRunSeconds).ObserveSeconds(0.5)
	f := NewFlightRecorder(0, 0)
	rec := f.Record(map[string]any{"state": "failed"}, r)
	if rec.Metrics[MFoldPanics] != int64(2) {
		t.Errorf("metrics snapshot = %v", rec.Metrics[MFoldPanics])
	}
	if rec.Meta["state"] != "failed" {
		t.Errorf("meta = %v", rec.Meta)
	}
}

// TestFlightRecorderConcurrent hammers both rings from many goroutines
// (run under -race by the obs race gate): spans and logs emitted
// concurrently with dumps must stay consistent.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, 32)
	log := slog.New(f.LogHandler())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Emit(Event{Name: "s", TID: w})
				log.Info("line", "worker", w, "i", i)
				if i%50 == 0 {
					f.Record(nil, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	rec := f.Record(nil, nil)
	if len(rec.Spans) != 32 || len(rec.Logs) != 32 {
		t.Errorf("rings = %d spans, %d logs; want 32 each", len(rec.Spans), len(rec.Logs))
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var f *FlightRecorder
	f.Emit(Event{})
	if s, l := f.Sizes(); s != 0 || l != 0 {
		t.Error("nil recorder sizes non-zero")
	}
	rec := f.Record(nil, nil)
	if len(rec.Spans) != 0 || len(rec.Logs) != 0 {
		t.Error("nil recorder dumped content")
	}
	// The nil handler swallows records instead of panicking.
	slog.New(f.LogHandler()).Info("dropped")
}

func TestNewLoggerAndLevels(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"msg":"shown"`) {
		t.Errorf("level filtering wrong: %q", out)
	}
	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestTeeHandlerFansOut(t *testing.T) {
	var a, b strings.Builder
	ha := slog.NewTextHandler(&a, nil)
	hb := slog.NewJSONHandler(&b, nil)
	log := slog.New(TeeHandler(ha, nil, hb)).With("job_id", "j7")
	log.Info("both")
	if !strings.Contains(a.String(), "both") || !strings.Contains(b.String(), `"both"`) {
		t.Errorf("tee missed a side: text=%q json=%q", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "job_id=j7") {
		t.Errorf("WithAttrs not propagated: %q", a.String())
	}
}
