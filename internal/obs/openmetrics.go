package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OpenMetricsContentType is the content type of a WriteOpenMetrics
// exposition, per the OpenMetrics 1.0 spec.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics serializes the registry in the OpenMetrics /
// Prometheus text exposition format, ending with the mandatory # EOF
// marker. Metric families are emitted in sorted name order so the
// exposition is deterministic given deterministic metric values (the
// property the golden-file test pins down).
//
// The mapping:
//
//   - counters   →  <name>_total counter
//   - gauges     →  <name> gauge, plus <name>_peak gauge (high-water mark)
//   - histograms →  <name> histogram with cumulative power-of-two le buckets
//   - timings    →  <name> histogram with the explicit DefaultTimingBuckets
//     le bounds in seconds, plus <name>_p50 / <name>_p99 gauges
//     (interpolated quantile summaries, scrapeable without PromQL)
//
// Dots in registry names become underscores (`bdd.live_nodes` →
// `bdd_live_nodes`); prefix, when non-empty, is prepended verbatim to
// every family name (conventionally "foldd_").
func (r *Registry) WriteOpenMetrics(w io.Writer, prefix string) error {
	var b strings.Builder
	if r != nil {
		r.mu.Lock()
		names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.timings))
		counters := make(map[string]*Counter, len(r.counters))
		gauges := make(map[string]*Gauge, len(r.gauges))
		hists := make(map[string]*Histogram, len(r.hists))
		timings := make(map[string]*Timing, len(r.timings))
		for n, m := range r.counters {
			names, counters[n] = append(names, n), m
		}
		for n, m := range r.gauges {
			names, gauges[n] = append(names, n), m
		}
		for n, m := range r.hists {
			names, hists[n] = append(names, n), m
		}
		for n, m := range r.timings {
			names, timings[n] = append(names, n), m
		}
		r.mu.Unlock()
		sort.Strings(names)

		for _, n := range names {
			fam := prefix + sanitizeMetricName(n)
			switch {
			case counters[n] != nil:
				fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", fam, fam, counters[n].Value())
			case gauges[n] != nil:
				g := gauges[n]
				fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", fam, fam, g.Value())
				fmt.Fprintf(&b, "# TYPE %s_peak gauge\n%s_peak %d\n", fam, fam, g.Peak())
			case hists[n] != nil:
				writeIntHistogram(&b, fam, hists[n])
			case timings[n] != nil:
				writeTiming(&b, fam, timings[n])
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeMetricName maps a registry name onto the OpenMetrics name
// charset [a-zA-Z0-9_:], replacing everything else (dots, dashes) with
// underscores.
func sanitizeMetricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}

// writeIntHistogram renders a power-of-two Histogram as cumulative le
// buckets: one per occupied power of two, then +Inf.
func writeIntHistogram(b *strings.Builder, fam string, h *Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", fam)
	buckets := h.Buckets()
	bounds := make([]int64, 0, len(buckets))
	for ub := range buckets {
		bounds = append(bounds, ub)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	cum := int64(0)
	for _, ub := range bounds {
		cum += buckets[ub]
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", fam, ub, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count())
	fmt.Fprintf(b, "%s_sum %d\n%s_count %d\n", fam, h.Sum(), fam, h.Count())
}

// writeTiming renders a Timing as an explicit-bucket histogram in
// seconds plus interpolated p50/p99 gauges.
func writeTiming(b *strings.Builder, fam string, t *Timing) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", fam)
	counts := t.Counts()
	cum := int64(0)
	for i, ub := range DefaultTimingBuckets {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", fam, formatSeconds(ub), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", fam, t.Count())
	fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", fam, formatSeconds(t.SumSeconds()), fam, t.Count())
	fmt.Fprintf(b, "# TYPE %s_p50 gauge\n%s_p50 %s\n", fam, fam, formatSeconds(t.Quantile(0.5)))
	fmt.Fprintf(b, "# TYPE %s_p99 gauge\n%s_p99 %s\n", fam, fam, formatSeconds(t.Quantile(0.99)))
}

// formatSeconds renders a float second value with the shortest exact
// representation ("0.025", not "0.025000").
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
