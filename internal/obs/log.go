package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon's structured logger: level is one of
// debug/info/warn/error, format is text (the human default) or json
// (one object per line, for log shippers). Unknown values are errors so
// a typoed flag fails fast instead of silently logging at the wrong
// level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// ParseLogLevel maps a flag value onto a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// DiscardLogger returns a logger that drops everything — the default
// for library callers that install no logger, so instrumented code can
// log unconditionally.
func DiscardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// TeeHandler fans each record out to every given handler (nils
// skipped), so one logger can feed both the process log stream and a
// per-job flight-recorder ring. With zero or one usable handler it
// returns the degenerate form directly.
func TeeHandler(handlers ...slog.Handler) slog.Handler {
	var hs []slog.Handler
	for _, h := range handlers {
		if h != nil {
			hs = append(hs, h)
		}
	}
	switch len(hs) {
	case 0:
		return discardHandler{}
	case 1:
		return hs[0]
	}
	return teeHandler(hs)
}

type teeHandler []slog.Handler

func (t teeHandler) Enabled(ctx context.Context, lv slog.Level) bool {
	for _, h := range t {
		if h.Enabled(ctx, lv) {
			return true
		}
	}
	return false
}

func (t teeHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range t {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(teeHandler, len(t))
	for i, h := range t {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (t teeHandler) WithGroup(name string) slog.Handler {
	out := make(teeHandler, len(t))
	for i, h := range t {
		out[i] = h.WithGroup(name)
	}
	return out
}
