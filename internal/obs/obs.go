// Package obs is the engine's observability layer: a registry of
// atomically updated named metrics (counters, gauges, histograms)
// published via expvar, and a hierarchical span tracer with pluggable
// sinks (a JSONL event log and a Chrome trace_event export that renders
// as a flame chart in Perfetto or chrome://tracing).
//
// Everything is nil-safe by design: every method on a nil *Span,
// *Counter, *Gauge, *Histogram, *Registry or *Observer is a no-op that
// performs zero allocations, so instrumented code carries observability
// hooks unconditionally and pays nothing when no Observer is installed.
// The package depends only on the standard library, so every layer of
// the engine (bdd, sat, aig, fsm, core, pipeline) can import it without
// cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Observer bundles the two observability channels a fold can be run
// under: span tracing (Tracer) and the metrics registry (Metrics).
// Either field may be nil independently; a nil *Observer disables both.
type Observer struct {
	// Tracer receives the hierarchical spans (pipeline, stage, and
	// sub-stage: BDD sift rounds, SAT solve calls, sweep rounds, TFF
	// frames, MeMin iterations).
	Tracer *Tracer
	// Metrics is the counter/gauge/histogram registry the engine's
	// layers update (see the M* name constants).
	Metrics *Registry
}

// Span opens a root span on the observer's tracer, or returns nil when
// tracing is off.
func (o *Observer) Span(name, cat string) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(name, cat)
}

// Counter resolves a named counter, or nil when metrics are off.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge resolves a named gauge, or nil when metrics are off.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram resolves a named histogram, or nil when metrics are off.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Event is one finished span in the Chrome trace_event "complete"
// format: timestamps and durations are microseconds from the trace
// start. Args marshal with sorted keys (encoding/json map order), so
// serialized traces are deterministic given deterministic spans.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use: spans end from worker goroutines.
type Sink interface {
	Emit(Event)
}

// Tracer turns spans into events on a sink. The zero value is not
// usable; call NewTracer.
type Tracer struct {
	sink  Sink
	start time.Time
	clock func() time.Duration // test hook; nil means time.Since(start)
}

// NewTracer returns a tracer emitting to sink. The trace clock starts
// now.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, start: time.Now()}
}

// SetClock replaces the trace clock (an offset from the trace start)
// for deterministic tests. Pass nil to restore the wall clock.
func (t *Tracer) SetClock(f func() time.Duration) { t.clock = f }

func (t *Tracer) now() time.Duration {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.start)
}

// Start opens a root span.
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, start: t.now()}
}

// Span is one timed region of work. Spans form a hierarchy via Child.
// A span's attribute setters must be called from one goroutine at a
// time, but distinct spans (e.g. one per worker) may run concurrently.
// All methods are no-ops on a nil receiver.
type Span struct {
	t      *Tracer
	parent *Span
	name   string
	cat    string
	start  time.Duration
	desc   atomic.Int64 // descendant span count
	ended  atomic.Bool
	args   map[string]any
}

// Child opens a sub-span. It is safe to call from a different goroutine
// than the parent's.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	for a := s; a != nil; a = a.parent {
		a.desc.Add(1)
	}
	return &Span{t: s.t, parent: s, name: name, cat: cat, start: s.t.now()}
}

// Descendants returns the number of spans opened (transitively) under
// this one.
func (s *Span) Descendants() int {
	if s == nil {
		return 0
	}
	return int(s.desc.Load())
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// End closes the span and emits it to the sink. Ending twice emits
// once.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	end := s.t.now()
	s.t.sink.Emit(Event{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   Micros(s.start),
		Dur:  Micros(end - s.start),
		PID:  1,
		TID:  1,
		Args: s.args,
	})
}

// Micros converts a duration to trace_event microseconds.
func Micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// JSONLSink writes one JSON event per line, flushed as each span ends,
// so an aborted run leaves a readable partial log.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line. Encoding errors are dropped:
// tracing must never fail the traced work.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// TraceBuffer collects events in memory for a post-run Chrome trace
// export.
type TraceBuffer struct {
	mu     sync.Mutex
	events []Event
}

// NewTraceBuffer returns an empty buffer.
func NewTraceBuffer() *TraceBuffer { return &TraceBuffer{} }

// Emit appends the event.
func (b *TraceBuffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a snapshot of the collected events.
func (b *TraceBuffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of collected events.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// WriteChromeTrace serializes the collected events as a Chrome
// trace-event JSON object loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (b *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, b.Events())
}

// chromeTrace is the JSON object format of the trace_event spec.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events in the Chrome trace-event JSON object
// format.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	data, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
