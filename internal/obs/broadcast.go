package obs

import (
	"sync"
	"sync/atomic"
)

// Broadcast is a Sink that fans finished spans out to any number of
// live subscribers, with an optional bounded replay ring so a
// subscriber attaching mid-run still sees the most recent history.
// Emit never blocks: a subscriber whose channel is full loses the
// event (counted in Dropped), because tracing must never stall the
// traced work for a slow reader. It is the span transport behind the
// fold daemon's event streams: one Broadcast per job, one subscriber
// per attached HTTP client.
type Broadcast struct {
	mu      sync.Mutex
	subs    map[int]chan Event
	next    int
	ring    []Event // most recent events, oldest first
	ringCap int
	closed  bool
	dropped atomic.Uint64
}

// NewBroadcast returns a broadcast sink that replays up to replay
// recent events to each new subscriber. replay <= 0 disables replay.
func NewBroadcast(replay int) *Broadcast {
	if replay < 0 {
		replay = 0
	}
	return &Broadcast{subs: make(map[int]chan Event), ringCap: replay}
}

// Emit records the event in the replay ring and forwards it to every
// subscriber without blocking. Events emitted after Close are dropped.
func (b *Broadcast) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if b.ringCap > 0 {
		if len(b.ring) == b.ringCap {
			copy(b.ring, b.ring[1:])
			b.ring[len(b.ring)-1] = e
		} else {
			b.ring = append(b.ring, e)
		}
	}
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.dropped.Add(1)
		}
	}
}

// Subscribe registers a new subscriber with a channel buffer of buf
// events (minimum 1) and returns the receive channel plus a cancel
// function. The most recent replayed events that fit the buffer are
// already queued on return. The channel is closed by cancel or by
// Close, whichever comes first; cancel is idempotent. On a closed
// broadcast, Subscribe still replays the ring — a reader attaching
// after the work finished sees its history — and the channel is
// already closed behind it.
func (b *Broadcast) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Event, buf)
	if b.closed {
		for _, e := range tail(b.ring, buf) {
			ch <- e
		}
		close(ch)
		return ch, func() {}
	}
	for _, e := range tail(b.ring, buf) {
		ch <- e
	}
	id := b.next
	b.next++
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
}

// Close closes every subscriber channel and makes further Emit calls
// no-ops. Safe to call more than once.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}

// tail returns the last n elements of events.
func tail(events []Event, n int) []Event {
	if len(events) > n {
		return events[len(events)-n:]
	}
	return events
}

// Dropped returns the number of events lost to full subscriber
// buffers since the broadcast was created.
func (b *Broadcast) Dropped() uint64 { return b.dropped.Load() }

// Subscribers returns the current subscriber count.
func (b *Broadcast) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// multiSink fans each event out to several sinks in order.
type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// MultiSink returns a sink that forwards every event to each of the
// given sinks in order, skipping nils. With zero or one (non-nil)
// sinks it returns nil or that sink directly.
func MultiSink(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
