package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTimingBucketArray pins the const bucket-array length to the
// exported bounds slice.
func TestTimingBucketArray(t *testing.T) {
	if len16 != len(DefaultTimingBuckets)+1 {
		t.Fatalf("len16 = %d, want len(DefaultTimingBuckets)+1 = %d", len16, len(DefaultTimingBuckets)+1)
	}
}

func TestTimingObserveAndQuantile(t *testing.T) {
	var tm Timing
	tm.Observe(4 * time.Millisecond)
	tm.Observe(20 * time.Millisecond)
	tm.Observe(2 * time.Second)
	if tm.Count() != 3 {
		t.Fatalf("count = %d", tm.Count())
	}
	if s := tm.SumSeconds(); s < 2.0 || s > 2.1 {
		t.Errorf("sum = %v, want ~2.024", s)
	}
	// p50 lands in the (0.01, 0.025] bucket, p99 in (1, 2.5].
	if q := tm.Quantile(0.5); q <= 0.01 || q > 0.025 {
		t.Errorf("p50 = %v, want in (0.01, 0.025]", q)
	}
	if q := tm.Quantile(0.99); q <= 1 || q > 2.5 {
		t.Errorf("p99 = %v, want in (1, 2.5]", q)
	}
	// Everything above the largest bound reports that bound.
	var over Timing
	over.Observe(5 * time.Minute)
	if q := over.Quantile(0.99); q != DefaultTimingBuckets[len(DefaultTimingBuckets)-1] {
		t.Errorf("overflow p99 = %v, want %v", q, DefaultTimingBuckets[len(DefaultTimingBuckets)-1])
	}
	// Nil receivers no-op.
	var nilT *Timing
	nilT.Observe(time.Second)
	if nilT.Count() != 0 || nilT.Quantile(0.5) != 0 || nilT.Counts() != nil {
		t.Error("nil Timing is not a no-op")
	}
}

// TestWriteOpenMetricsGolden is the exposition's format contract: a
// deterministic registry must serialize byte-for-byte to the committed
// golden file (regenerate with -update).
func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(MBDDCacheHits).Add(42)
	g := r.Gauge(MFSMStates)
	g.Set(7)
	g.Set(3)
	h := r.Histogram(MSATLearnedSize)
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	tm := r.Timing(MJobRunSeconds)
	tm.ObserveSeconds(0.004)
	tm.ObserveSeconds(0.02)
	tm.ObserveSeconds(2)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b, "foldd_"); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Spot-check the invariants the golden encodes.
	for _, want := range []string{
		"# TYPE foldd_bdd_cache_hits counter\nfoldd_bdd_cache_hits_total 42\n",
		"foldd_fsm_states 3\n",
		"foldd_fsm_states_peak 7\n",
		"foldd_sat_learned_clause_size_bucket{le=\"+Inf\"} 3\n",
		"foldd_job_run_seconds_bucket{le=\"0.005\"} 1\n",
		"foldd_job_run_seconds_count 3\n",
		"# EOF\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
}

// TestWriteOpenMetricsNil asserts a nil registry still emits a valid
// (empty) exposition.
func TestWriteOpenMetricsNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b, "x_"); err != nil {
		t.Fatal(err)
	}
	if b.String() != "# EOF\n" {
		t.Errorf("nil exposition = %q", b.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"bdd.live_nodes":    "bdd_live_nodes",
		"stage.tff.seconds": "stage_tff_seconds",
		"weird-name space":  "weird_name_space",
		"ok_name:colon":     "ok_name:colon",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
