package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// FlightRecorder is the black box of one unit of work (the fold
// daemon's: one per job): a bounded ring of the most recent finished
// spans and a bounded ring of the most recent structured log records,
// captured continuously at negligible cost so that when the work fails
// — an error, a recovered panic, a degradation-ladder descent — the
// moments leading up to the failure can be dumped as one self-contained
// JSON artifact, after the fact, without debug-level logging or a trace
// sink having been enabled ahead of time.
//
// It plugs into both telemetry channels: it is a span Sink (hang it off
// the tracer next to the live stream with MultiSink) and it exposes a
// slog.Handler (tee it under the process logger with TeeHandler). Both
// directions are safe for concurrent use.
type FlightRecorder struct {
	mu           sync.Mutex
	spans        []Event // ring, oldest first once full
	spanCap      int
	spansDropped uint64
	logs         []LogRecord // ring, oldest first once full
	logCap       int
	logsDropped  uint64
}

// Flight-recorder ring defaults: enough spans for every stage and
// sub-stage of a typical fold and the last screenful of log lines,
// small enough that a thousand live jobs carry them without noticing.
const (
	DefaultFlightSpans = 256
	DefaultFlightLogs  = 128
)

// NewFlightRecorder returns a recorder keeping the most recent
// spanCap spans and logCap log records (<= 0 selects the defaults).
func NewFlightRecorder(spanCap, logCap int) *FlightRecorder {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if logCap <= 0 {
		logCap = DefaultFlightLogs
	}
	return &FlightRecorder{spanCap: spanCap, logCap: logCap}
}

// Emit records a finished span (the Sink interface).
func (f *FlightRecorder) Emit(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.spans) == f.spanCap {
		copy(f.spans, f.spans[1:])
		f.spans[len(f.spans)-1] = e
		f.spansDropped++
	} else {
		f.spans = append(f.spans, e)
	}
	f.mu.Unlock()
}

// LogRecord is one captured slog record, flattened for JSON: group
// names join attribute keys with dots.
type LogRecord struct {
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// LogHandler returns a slog.Handler that captures every record (all
// levels) into the recorder's log ring. Tee it with the real log
// handler so lines reach both the stream and the black box.
func (f *FlightRecorder) LogHandler() slog.Handler {
	if f == nil {
		return discardHandler{}
	}
	return &ringHandler{rec: f}
}

func (f *FlightRecorder) addLog(r LogRecord) {
	f.mu.Lock()
	if len(f.logs) == f.logCap {
		copy(f.logs, f.logs[1:])
		f.logs[len(f.logs)-1] = r
		f.logsDropped++
	} else {
		f.logs = append(f.logs, r)
	}
	f.mu.Unlock()
}

// ringHandler adapts the recorder to slog. WithAttrs/WithGroup
// accumulate into a prefix applied at Handle time, matching slog's
// contract that handlers are immutable values.
type ringHandler struct {
	rec    *FlightRecorder
	attrs  map[string]any
	prefix string
}

func (h *ringHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *ringHandler) Handle(_ context.Context, r slog.Record) error {
	out := LogRecord{Time: r.Time, Level: r.Level.String(), Msg: r.Message}
	if len(h.attrs) > 0 || r.NumAttrs() > 0 {
		out.Attrs = make(map[string]any, len(h.attrs)+r.NumAttrs())
		for k, v := range h.attrs {
			out.Attrs[k] = v
		}
		r.Attrs(func(a slog.Attr) bool {
			flattenAttr(out.Attrs, h.prefix, a)
			return true
		})
	}
	h.rec.addLog(out)
	return nil
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &ringHandler{rec: h.rec, prefix: h.prefix, attrs: make(map[string]any, len(h.attrs)+len(attrs))}
	for k, v := range h.attrs {
		nh.attrs[k] = v
	}
	for _, a := range attrs {
		flattenAttr(nh.attrs, h.prefix, a)
	}
	return nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := &ringHandler{rec: h.rec, prefix: h.prefix + name + ".", attrs: h.attrs}
	return nh
}

// flattenAttr resolves an attr into the map, expanding groups with
// dotted keys.
func flattenAttr(into map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p += a.Key + "."
		}
		for _, ga := range v.Group() {
			flattenAttr(into, p, ga)
		}
		return
	}
	into[prefix+a.Key] = v.Any()
}

// FlightRecord is the dumped artifact: everything the recorder held at
// dump time plus the caller's identifying metadata and a final metrics
// snapshot, self-contained enough that "why did job X fail" is
// answerable from this one JSON document.
type FlightRecord struct {
	// Meta is caller-supplied identity and outcome (job id, content
	// key, state, error, dump reason, ...).
	Meta map[string]any `json:"meta,omitempty"`
	// DumpedAt is the artifact's creation time, UTC RFC 3339.
	DumpedAt string `json:"dumped_at"`
	// Spans is the ring of most recent finished spans, oldest first.
	Spans []Event `json:"spans"`
	// SpansDropped counts older spans that fell off the ring.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	// Logs is the ring of most recent log records, oldest first.
	Logs []LogRecord `json:"logs"`
	// LogsDropped counts older records that fell off the ring.
	LogsDropped uint64 `json:"logs_dropped,omitempty"`
	// Metrics is the final snapshot of the work's metric registry.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// Record assembles the artifact from the recorder's current rings, the
// given metadata, and a snapshot of reg (nil allowed). The recorder
// keeps recording afterwards; Record can be called more than once.
func (f *FlightRecorder) Record(meta map[string]any, reg *Registry) *FlightRecord {
	rec := &FlightRecord{
		Meta:     meta,
		DumpedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Metrics:  reg.Snapshot(),
	}
	if f != nil {
		f.mu.Lock()
		rec.Spans = append([]Event(nil), f.spans...)
		rec.SpansDropped = f.spansDropped
		rec.Logs = append([]LogRecord(nil), f.logs...)
		rec.LogsDropped = f.logsDropped
		f.mu.Unlock()
	}
	if rec.Spans == nil {
		rec.Spans = []Event{}
	}
	if rec.Logs == nil {
		rec.Logs = []LogRecord{}
	}
	return rec
}

// Sizes reports the rings' current fill, for tests and introspection.
func (f *FlightRecorder) Sizes() (spans, logs int) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.spans), len(f.logs)
}
