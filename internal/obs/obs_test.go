package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestNilZeroAlloc is the zero-overhead contract: the full instrumented
// call surface — spans, attributes, every metric kind, registry lookups
// — must allocate nothing when no observer is installed.
func TestNilZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(200, func() {
		var o *Observer
		sp := o.Span("stage", "pipeline")
		child := sp.Child("sub", "x")
		child.SetInt("k", 1)
		child.SetStr("s", "v")
		_ = child.Descendants()
		child.End()
		sp.End()
		o.Counter(MSATDecisions).Add(1)
		o.Gauge(MBDDLiveNodes).Set(5)
		_ = o.Gauge(MBDDLiveNodes).Peak()
		o.Histogram(MSATLearnedSize).Observe(3)

		var r *Registry
		r.Counter("c").Add(1)
		r.Gauge("g").Set(2)
		r.Histogram("h").Observe(4)
		_ = r.Snapshot()
		r.Publish("nil-registry")

		var tr *Tracer
		tr.Start("root", "cat").End()
	})
	if allocs != 0 {
		t.Fatalf("nil observer allocated %.1f bytes/op, want 0", allocs)
	}
}

func TestSpanHierarchyConcurrent(t *testing.T) {
	const workers, perWorker = 8, 50
	buf := NewTraceBuffer()
	tr := NewTracer(buf)
	root := tr.Start("root", "pipeline")
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				sp := root.Child("work", "test")
				sp.SetInt("worker", int64(i))
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got, want := buf.Len(), workers*perWorker+1; got != want {
		t.Fatalf("got %d events, want %d", got, want)
	}
	if got, want := root.Descendants(), workers*perWorker; got != want {
		t.Fatalf("root.Descendants() = %d, want %d", got, want)
	}
}

func TestEndIdempotent(t *testing.T) {
	buf := NewTraceBuffer()
	sp := NewTracer(buf).Start("s", "c")
	sp.End()
	sp.End()
	if buf.Len() != 1 {
		t.Fatalf("double End emitted %d events, want 1", buf.Len())
	}
}

func TestDescendantsTransitive(t *testing.T) {
	tr := NewTracer(NewTraceBuffer())
	root := tr.Start("root", "")
	mid := root.Child("mid", "")
	mid.Child("leaf", "").End()
	mid.Child("leaf", "").End()
	mid.End()
	if got := root.Descendants(); got != 3 {
		t.Fatalf("root.Descendants() = %d, want 3", got)
	}
	if got := mid.Descendants(); got != 2 {
		t.Fatalf("mid.Descendants() = %d, want 2", got)
	}
}

// stepClock returns a deterministic trace clock ticking 1ms per call,
// starting at 0.
func stepClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n - time.Millisecond
	}
}

func TestChromeTraceGolden(t *testing.T) {
	buf := NewTraceBuffer()
	tr := NewTracer(buf)
	tr.SetClock(stepClock())

	root := tr.Start("functional", "pipeline") // t=0
	sp := root.Child("schedule", "stage")      // t=1ms
	sp.SetInt("nodes", 42)
	sp.SetStr("status", "SAT")
	sp.End()   // t=2ms
	root.End() // t=3ms

	var got bytes.Buffer
	if err := buf.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("trace mismatch\n--- got ---\n%s\n--- want (%s) ---\n%s", got.Bytes(), golden, want)
	}

	// The document must round-trip as valid JSON with the expected shape.
	var doc struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(got.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected document: %+v", doc)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var got bytes.Buffer
	if err := WriteChromeTrace(&got, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(got.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty trace must serialize traceEvents as []: %s", got.Bytes())
	}
}

func TestJSONLSink(t *testing.T) {
	var w bytes.Buffer
	tr := NewTracer(NewJSONLSink(&w))
	root := tr.Start("a", "x")
	root.Child("b", "y").End()
	root.End()
	lines := bytes.Split(bytes.TrimSpace(w.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if e.Ph != "X" {
			t.Fatalf("line %d: ph = %q, want X", i, e.Ph)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Peak() != 7 {
		t.Fatalf("gauge value=%d peak=%d, want 3/7", g.Value(), g.Peak())
	}

	h := r.Histogram("h")
	for _, v := range []int64{1, 2, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 14 {
		t.Fatalf("hist count=%d sum=%d, want 4/14", h.Count(), h.Sum())
	}
	want := map[int64]int64{1: 1, 2: 1, 4: 1, 8: 1}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}

	snap := r.Snapshot()
	if snap["c"].(int64) != 5 {
		t.Fatalf("snapshot counter = %v", snap["c"])
	}
	if gv := snap["g"].(map[string]int64); gv["value"] != 3 || gv["peak"] != 7 {
		t.Fatalf("snapshot gauge = %v", gv)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(int64(j))
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Peak(); got != 999 {
		t.Fatalf("gauge peak = %d, want 999", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestPublishDuplicate(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	r.Publish("obs-test-registry")
	r.Publish("obs-test-registry") // must not panic (expvar would)
	v := expvar.Get("obs-test-registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if snap["x"].(float64) != 1 {
		t.Fatalf("published snapshot = %v", snap)
	}
}
