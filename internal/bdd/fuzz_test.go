package bdd

import "testing"

// The fuzz oracle represents a function over 6 variables as a 64-bit
// truth mask: bit v holds the function's value under the assignment
// where variable i equals bit i of v. Every manager operation has an
// exact mask analogue, so any divergence is a kernel bug.

const fuzzVars = 6

// varMask returns the truth mask of variable i.
func varMask(i int) uint64 {
	m := uint64(0)
	for v := 0; v < 64; v++ {
		if v>>i&1 == 1 {
			m |= 1 << v
		}
	}
	return m
}

// cofMask fixes variable i to val in the mask.
func cofMask(f uint64, i int, val bool) uint64 {
	r := uint64(0)
	for v := 0; v < 64; v++ {
		forced := v &^ (1 << i)
		if val {
			forced |= 1 << i
		}
		r |= (f >> forced & 1) << v
	}
	return r
}

// FuzzBDDOps drives random operation sequences — apply ops, ITE,
// quantification, cofactor, reordering, and GC — against the truth-mask
// oracle, checking every live root after every structural operation.
// It exercises the storage layer's hairiest interleavings: GC followed
// by freelist reuse, and sifting while the unique table's load factor
// is low (backward-shift deletion near-empty probe chains).
func FuzzBDDOps(f *testing.F) {
	// Seed: build, GC, then immediately reuse reclaimed slots.
	f.Add([]byte{0, 1, 2, 0x10, 1, 3, 0x60, 0x11, 2, 4, 0x12, 0, 1})
	// Seed: sift and swap with a near-empty table (low load factor).
	f.Add([]byte{0x13, 0, 1, 2, 0x70, 0x80, 0, 0x71, 0x60, 0x70})
	// Seed: ITE and quantification mixed with swaps.
	f.Add([]byte{0x12, 0, 1, 0x13, 2, 3, 0x40, 1, 0x50, 2, 1, 0x80, 3, 0x60})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		m := New(fuzzVars)
		type fn struct {
			n    Node
			mask uint64
		}
		pool := []fn{{False, 0}, {True, ^uint64(0)}}
		for i := 0; i < fuzzVars; i++ {
			pool = append(pool, fn{m.Var(i), varMask(i)})
		}
		next := func(k *int) byte {
			if *k >= len(data) {
				return 0
			}
			b := data[*k]
			*k++
			return b
		}
		// pick draws an operand; when the drawn byte's high bit is set
		// the operand's polarity is flipped first, so fuzzed operation
		// sequences are negation-heavy and exercise the complement-edge
		// normalization rules (De Morgan sharing, Xor/Ite/Cofactor sign
		// stripping) on every path. The pool index ignores the high bit
		// only through the modulo, so pre-complement seed inputs keep
		// their meaning.
		pick := func(k *int) fn {
			b := next(k)
			e := pool[int(b)%len(pool)]
			if b >= 0x80 {
				return fn{m.Not(e.n), ^e.mask}
			}
			return e
		}
		checkAll := func(op string) {
			t.Helper()
			for _, e := range pool {
				tt := truthTable(m, e.n, fuzzVars)
				for v, got := range tt {
					if want := e.mask>>v&1 == 1; got != want {
						t.Fatalf("after %s: node %d row %d: got %v want %v", op, e.n, v, got, want)
					}
				}
			}
		}

		for k := 0; k < len(data); {
			op := next(&k)
			switch op >> 4 {
			case 0: // And
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.And(a.n, b.n), a.mask & b.mask})
			case 1: // Or
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.Or(a.n, b.n), a.mask | b.mask})
			case 2: // Xor
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.Xor(a.n, b.n), a.mask ^ b.mask})
			case 3: // Not
				a := pick(&k)
				pool = append(pool, fn{m.Not(a.n), ^a.mask})
			case 4: // Ite
				a, b, c := pick(&k), pick(&k), pick(&k)
				pool = append(pool, fn{m.Ite(a.n, b.n, c.n), a.mask&b.mask | ^a.mask&c.mask})
			case 5: // Cofactor
				a := pick(&k)
				v := int(next(&k)) % fuzzVars
				val := next(&k)&1 == 1
				pool = append(pool, fn{m.Cofactor(a.n, v, val), cofMask(a.mask, v, val)})
			case 6: // Exists over one variable
				a := pick(&k)
				v := int(next(&k)) % fuzzVars
				pool = append(pool, fn{
					m.Exists(a.n, []int{v}),
					cofMask(a.mask, v, false) | cofMask(a.mask, v, true),
				})
			case 7: // GC with the whole pool as roots, then verify
				roots := make([]Node, len(pool))
				for i, e := range pool {
					roots[i] = e.n
				}
				m.GC(roots)
				checkAll("GC")
			case 8: // SwapAdjacent
				l := int(next(&k)) % (fuzzVars - 1)
				m.SwapAdjacent(l)
				checkAll("SwapAdjacent")
			case 9: // Sift
				roots := make([]Node, len(pool))
				for i, e := range pool {
					roots[i] = e.n
				}
				m.Sift(roots, 0, fuzzVars-1)
				checkAll("Sift")
			case 10: // SiftSymmetric
				roots := make([]Node, len(pool))
				for i, e := range pool {
					roots[i] = e.n
				}
				m.SiftSymmetric(roots, 0, fuzzVars-1)
				checkAll("SiftSymmetric")
			case 11: // Xnor
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.Xnor(a.n, b.n), ^(a.mask ^ b.mask)})
			case 12: // Implies
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.Implies(a.n, b.n), ^a.mask | b.mask})
			case 13: // Diff
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.Diff(a.n, b.n), a.mask &^ b.mask})
			default: // keep opcode space dense: treat the rest as And
				a, b := pick(&k), pick(&k)
				pool = append(pool, fn{m.And(a.n, b.n), a.mask & b.mask})
			}
			if len(pool) > 64 {
				pool = pool[len(pool)-64:]
			}
		}
		checkAll("final")
		roots := make([]Node, len(pool))
		for i, e := range pool {
			roots[i] = e.n
		}
		checkInvariants(t, m, roots)
	})
}
