package bdd

import (
	"math/rand"
	"testing"
	"unsafe"

	"circuitfold/internal/obs"
)

// TestNodeRecBytesMatchesStruct pins the arena-bytes accounting to the
// real record size: nodeRecBytes is derived with unsafe.Sizeof, and the
// bdd.arena_bytes gauge must report exactly ArenaNodes times that. This
// is the drift guard for the historical hand-written "16" constant —
// if nodeRec grows a field, both sides move together and this test
// still passes; if someone reintroduces a literal, it fails.
func TestNodeRecBytesMatchesStruct(t *testing.T) {
	if want := int64(unsafe.Sizeof(nodeRec{})); nodeRecBytes != want {
		t.Fatalf("nodeRecBytes = %d, unsafe.Sizeof(nodeRec{}) = %d", nodeRecBytes, want)
	}
	m := New(6)
	rng := rand.New(rand.NewSource(7))
	f := randomFunc(m, rng, 6, 40)
	reg := obs.NewRegistry()
	m.SetObserver(nil, reg)
	m.GC([]Node{f}) // GC flushes the size gauges
	got := reg.Gauge(obs.MBDDArenaBytes).Value()
	want := int64(m.NumNodes()) * int64(unsafe.Sizeof(nodeRec{}))
	if got != want {
		t.Fatalf("arena_bytes gauge = %d, want nodes(%d) * sizeof(nodeRec)(%d) = %d",
			got, m.NumNodes(), unsafe.Sizeof(nodeRec{}), want)
	}
	if free := reg.Gauge(obs.MBDDFreeNodes).Value(); free != int64(m.Stats().FreeNodes) {
		t.Fatalf("free_nodes gauge = %d, Stats().FreeNodes = %d", free, m.Stats().FreeNodes)
	}
}

// TestGCFreelistReuse checks the arena contract after GC: reclaimed
// slots land on the freelist, subsequent allocation drains the freelist
// before the arena grows, and the arena stops growing under a
// build-then-collect churn loop.
func TestGCFreelistReuse(t *testing.T) {
	m := New(8)
	rng := rand.New(rand.NewSource(11))
	keep := randomFunc(m, rng, 4, 30) // uses only vars 0..3
	for i := 0; i < 5; i++ {
		randomFunc(m, rng, 8, 60) // garbage
	}
	arena := m.NumNodes()
	m.GC([]Node{keep})
	st := m.Stats()
	if st.ArenaNodes != arena {
		t.Fatalf("GC changed arena size: %d -> %d", arena, st.ArenaNodes)
	}
	if st.FreeNodes == 0 {
		t.Fatal("GC reclaimed nothing despite garbage")
	}
	// Allocation drains the freelist before the arena grows: each Var
	// call allocates at most one node, so as long as the freelist is
	// non-empty the arena must not move.
	for v := 0; v < 8 && m.Stats().FreeNodes > 0; v++ {
		m.Var(v)
		if m.NumNodes() != arena {
			t.Fatalf("arena grew (%d -> %d) while freelist had room", arena, m.NumNodes())
		}
	}

	// Churn: the arena must reach a fixed point, not grow per round.
	m2 := New(8)
	live := randomFunc(m2, rng, 8, 50)
	m2.GC([]Node{live})
	fixed := m2.NumNodes()
	for round := 0; round < 20; round++ {
		r := rand.New(rand.NewSource(int64(round)))
		randomFunc(m2, r, 8, 50)
		m2.GC([]Node{live})
	}
	if grown := m2.NumNodes() - fixed; grown > fixed {
		t.Fatalf("arena kept growing under churn: %d -> %d", fixed, m2.NumNodes())
	}
}

// TestGCCallerHeldNodesSurvive checks the identity contract: a Node
// covered (transitively) by the GC root set keeps its function, and a
// reclaimed slot reused by mk never aliases a node that was live — the
// survivor's structure is untouched by later allocation.
func TestGCCallerHeldNodesSurvive(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(23))
	held := make([]Node, 0, 8)
	tts := make([][]bool, 0, 8)
	for i := 0; i < 8; i++ {
		f := randomFunc(m, rng, 6, 25)
		held = append(held, f)
		tts = append(tts, truthTable(m, f, 6))
	}
	for i := 0; i < 4; i++ {
		randomFunc(m, rng, 6, 40) // garbage to reclaim
	}
	m.GC(held)

	// Record the live set: slots that must never be handed out.
	liveSet := make(map[Node]bool)
	var mark func(n Node)
	mark = func(n Node) {
		if m.IsTerminal(n) || liveSet[n] {
			return
		}
		liveSet[n] = true
		mark(m.Lo(n))
		mark(m.Hi(n))
	}
	for _, f := range held {
		mark(f)
	}
	before := m.Stats()
	if before.FreeNodes == 0 {
		t.Fatal("expected reclaimed slots before the reuse phase")
	}

	// Drain the freelist with fresh functions. mk may return an existing
	// live node (hash consing) but must never *rebind* a live slot.
	snapshot := make(map[Node][2]Node)
	for n := range liveSet {
		snapshot[n] = [2]Node{m.Lo(n), m.Hi(n)}
	}
	for i := 0; i < 6; i++ {
		randomFunc(m, rng, 6, 40)
	}
	for n, ch := range snapshot {
		if m.Lo(n) != ch[0] || m.Hi(n) != ch[1] {
			t.Fatalf("live node %d was rebound: (%d,%d) -> (%d,%d)",
				n, ch[0], ch[1], m.Lo(n), m.Hi(n))
		}
	}
	for i, f := range held {
		got := truthTable(m, f, 6)
		for v := range got {
			if got[v] != tts[i][v] {
				t.Fatalf("held node %d changed function after GC+reuse", f)
			}
		}
	}
	checkInvariants(t, m, held)
}

// TestGCDeterministicLayout runs the same operation sequence — builds,
// a GC, more builds, a sift — on two fresh managers and requires
// identical arenas: same node IDs for every result, same stats. The
// freelist sweep is in arena order and the unique table rebuild is a
// pure function of history, so replays must agree bit for bit.
func TestGCDeterministicLayout(t *testing.T) {
	runSeq := func() (*Manager, []Node, Stats) {
		m := New(8)
		rng := rand.New(rand.NewSource(99))
		var roots []Node
		for i := 0; i < 6; i++ {
			roots = append(roots, randomFunc(m, rng, 8, 40))
		}
		m.GC(roots[:3])
		roots = roots[:3]
		for i := 0; i < 3; i++ {
			roots = append(roots, randomFunc(m, rng, 8, 40))
		}
		m.Sift(roots, 0, m.NumVars()-1)
		m.GC(roots)
		return m, roots, m.Stats()
	}
	m1, r1, s1 := runSeq()
	m2, r2, s2 := runSeq()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("root %d: node id %d vs %d", i, r1[i], r2[i])
		}
	}
	for n := 1; n < m1.NumNodes(); n++ {
		a, b := m1.nodes[n], m2.nodes[n]
		if a != b {
			t.Fatalf("arena slot %d diverged: %+v vs %+v", n, a, b)
		}
	}
}

// TestStatsCountersMove sanity-checks the unconditional storage stats:
// cache probes are counted with no observer attached, and the
// unique-table population tracks live allocations.
func TestStatsCountersMove(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(5))
	f := randomFunc(m, rng, 6, 60)
	g := randomFunc(m, rng, 6, 60)
	m.And(f, g)
	m.And(f, g) // warm: second call should hit
	st := m.Stats()
	if st.CacheMisses == 0 || st.CacheHits == 0 {
		t.Fatalf("cache counters did not move: %+v", st)
	}
	// One terminal slot sits outside the table, so the population is the
	// allocated count minus one.
	if st.UniqueUsed != st.AllocNodes-1 {
		t.Fatalf("unique table population %d != non-terminal allocated nodes %d",
			st.UniqueUsed, st.AllocNodes-1)
	}
	if st.PeakNodes < st.AllocNodes {
		t.Fatalf("peak %d below current allocation %d", st.PeakNodes, st.AllocNodes)
	}
}
