package bdd

// The unique table is a single flat open-addressing hash table over the
// whole manager (CUDD keeps one subtable per level; a flat table keyed
// by (level, lo, hi) probes identically but keeps one allocation and one
// load factor). The per-level enumeration CUDD gets for free from its
// subtables — what SwapAdjacent needs — comes from the intrusive
// levelList chains threaded through the arena instead. Invariants:
//
//   - power-of-two capacity, linear probing, no tombstones: removal uses
//     backward-shift deletion, growth rebuilds into a fresh array;
//   - entries are regular edges; entry 0 means empty (the terminal,
//     arena slot 0, never enters the table);
//   - an entry's key is derived from its arena record — (level, lo, hi)
//     with hi regular by the canonical form — so a slot's record may
//     only be mutated while the slot is out of the table (SwapAdjacent
//     deletes both affected levels before relabeling);
//   - load is kept under 75%, so probe chains stay short.

// minUniqueSlots is the initial table capacity; small managers (a few
// variables in tests) never grow past it.
const minUniqueSlots = 256

// hashKey mixes a node key into a table hash (splitmix64-style finisher
// over the packed children and level). lo may carry the complement
// attribute; hi is always regular.
func hashKey(level int32, lo, hi Node) uint64 {
	h := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	h *= 0x9e3779b97f4a7c15
	h ^= uint64(uint32(level)) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h
}

// growUnique doubles the table and reinserts every entry, in slot order.
// Rebuilding (rather than tombstoning) keeps probe chains tight and is
// deterministic: slot order is a pure function of the manager's history.
func (m *Manager) growUnique() {
	old := m.unique
	m.unique = make([]Node, 2*len(old))
	m.uniqueUsed = 0
	for _, e := range old {
		if e != 0 {
			m.uniqueReinsert(e)
		}
	}
}

// uniqueReinsert inserts the regular edge n, keyed by its arena record,
// assuming the key is absent and the table has room (growth and GC
// rebuilds).
func (m *Manager) uniqueReinsert(n Node) {
	mask := uint64(len(m.unique) - 1)
	r := &m.nodes[n>>1]
	i := hashKey(r.level, r.lo, r.hi) & mask
	for m.unique[i] != 0 {
		i = (i + 1) & mask
	}
	m.unique[i] = n
	m.uniqueUsed++
}

// uniquePut inserts the regular edge n keyed by its current arena
// record. If an entry with an equal key exists it is overwritten (the
// newest node wins and the old entry is orphaned until GC) — the
// replacement semantics SwapAdjacent relies on when a restructured node
// collides with a relabeled one.
func (m *Manager) uniquePut(n Node) {
	mask := uint64(len(m.unique) - 1)
	r := m.nodes[n>>1]
	i := hashKey(r.level, r.lo, r.hi) & mask
	for {
		e := m.unique[i]
		if e == 0 {
			m.unique[i] = n
			m.uniqueUsed++
			if 4*m.uniqueUsed > 3*len(m.unique) {
				m.growUnique()
				m.growCache()
			}
			return
		}
		if re := &m.nodes[e>>1]; re.level == r.level && re.lo == r.lo && re.hi == r.hi {
			m.unique[i] = n
			return
		}
		i = (i + 1) & mask
	}
}

// uniqueDelete removes n from the table using backward-shift deletion:
// the entries after the freed slot are shifted back over it whenever
// their probe chain crosses it, so no tombstones are ever needed. n's
// arena record must still hold the key it was inserted under.
func (m *Manager) uniqueDelete(n Node) {
	mask := uint64(len(m.unique) - 1)
	r := m.nodes[n>>1]
	i := hashKey(r.level, r.lo, r.hi) & mask
	for m.unique[i] != n {
		if m.unique[i] == 0 {
			return // not present (orphaned by an earlier overwrite)
		}
		i = (i + 1) & mask
	}
	m.unique[i] = 0
	m.uniqueUsed--
	j := (i + 1) & mask
	for m.unique[j] != 0 {
		e := m.unique[j]
		re := &m.nodes[e>>1]
		k := hashKey(re.level, re.lo, re.hi) & mask
		// e may move back into the hole iff its home slot k does not lie
		// strictly between the hole i and e's current slot j (cyclically).
		if (j-k)&mask >= (j-i)&mask {
			m.unique[i] = e
			m.unique[j] = 0
			i = j
		}
		j = (j + 1) & mask
	}
}
