package bdd

import "sort"

// SwapAdjacent exchanges the variables at levels l and l+1 in place.
// Node identities are preserved: nodes at level l that depend on both
// variables are restructured in place, nodes that do not are relabeled.
// Functions held by callers remain valid.
//
// The unique table keys entries by the arena records, so both levels
// are deleted from the table (backward-shift, no tombstones) before any
// record is mutated and reinserted under their new keys afterwards.
//
// The restructure preserves the canonical hi-regular form without ever
// complementing a live slot: a dependent node's new hi child is
// mk(l+1, b, d) where d comes from the node's stored hi — regular by
// the invariant — and its hi in turn is regular, so mk never needs to
// flip that edge and the in-place record keeps a regular hi. (When
// b == d the child collapses to d itself, which is again regular.)
func (m *Manager) SwapAdjacent(l int) {
	if l < 0 || l+1 >= m.NumVars() {
		panic("bdd: SwapAdjacent level out of range")
	}
	m.mSwaps.Add(1)
	x := m.varAtLevel[l]
	y := m.varAtLevel[l+1]

	// Snapshot the two levels from their intrusive lists before mutating
	// anything — O(nodes at the two levels), not O(unique table), which
	// is what makes long sifting runs affordable. List order is a pure
	// function of the manager's history, so the rebuild below and any
	// nodes mk allocates during it are deterministic too.
	levL := m.swapL[:0]
	levL1 := m.swapL1[:0]
	for e := m.levelList[l]; e != 0; e = m.nodes[e>>1].next {
		levL = append(levL, e)
	}
	for e := m.levelList[l+1]; e != 0; e = m.nodes[e>>1].next {
		levL1 = append(levL1, e)
	}
	// Both lists are rebuilt as nodes land on their new levels; fresh
	// children mk allocates during the restructure push themselves onto
	// the l+1 list through mkReg.
	m.levelList[l], m.levelList[l+1] = 0, 0
	// Classify level-l nodes by whether they reference level l+1. The
	// children's polarity is irrelevant here — only their slot's level.
	rewrite := m.swapRw[:0]
	for _, n := range levL {
		r := m.nodes[n>>1]
		rewrite = append(rewrite,
			m.nodes[r.lo>>1].level == int32(l+1) || m.nodes[r.hi>>1].level == int32(l+1))
	}
	// Remove both levels from the table while their keys still match
	// their records.
	for _, n := range levL {
		m.uniqueDelete(n)
	}
	for _, n := range levL1 {
		m.uniqueDelete(n)
	}

	// Old level-l+1 nodes (variable y) move up to level l.
	for _, n := range levL1 {
		r := &m.nodes[n>>1]
		r.level = int32(l)
		r.next = m.levelList[l]
		m.levelList[l] = n
		m.uniquePut(n)
	}
	// Level-l nodes independent of y move down to level l+1 unchanged.
	for i, n := range levL {
		if !rewrite[i] {
			r := &m.nodes[n>>1]
			r.level = int32(l + 1)
			r.next = m.levelList[l+1]
			m.levelList[l+1] = n
			m.uniquePut(n)
		}
	}
	// Remaining level-l nodes are restructured:
	//   f = x ? f1 : f0  becomes  f = y ? (x ? d : b) : (x ? c : a)
	// with a = f[x=0,y=0], b = f[x=0,y=1], c = f[x=1,y=0], d = f[x=1,y=1].
	// Cofactors of complemented children inherit the complement.
	for i, n := range levL {
		if !rewrite[i] {
			continue
		}
		rec := m.nodes[n>>1]
		f0, f1 := rec.lo, rec.hi // f1 regular by the canonical form
		a, b := f0, f0
		if fr := m.nodes[f0>>1]; fr.level == int32(l) { // old y-node, already relabeled
			s := f0 & 1
			a, b = fr.lo^s, fr.hi^s
		}
		c, d := f1, f1
		if fr := m.nodes[f1>>1]; fr.level == int32(l) {
			c, d = fr.lo, fr.hi
		}
		lo := m.mk(l+1, a, c)
		hi := m.mk(l+1, b, d) // regular: d is regular, and b == d implies b regular
		nr := &m.nodes[n>>1]
		nr.lo = lo
		nr.hi = hi
		nr.next = m.levelList[l] // stays at level l
		m.levelList[l] = n
		m.uniquePut(n)
	}
	// Return the (possibly grown) scratch buffers to the manager.
	m.swapL, m.swapL1, m.swapRw = levL[:0], levL1[:0], rewrite[:0]

	m.varAtLevel[l], m.varAtLevel[l+1] = y, x
	m.levelOfVar[x], m.levelOfVar[y] = l+1, l
}

// moveVarTo moves the variable currently at level `from` to level `to`
// via adjacent swaps.
func (m *Manager) moveVarTo(from, to int) {
	for from < to {
		m.SwapAdjacent(from)
		from++
	}
	for from > to {
		m.SwapAdjacent(from - 1)
		from--
	}
}

// Sift performs Rudell sifting of every variable whose level lies within
// [loLevel, hiLevel] (inclusive), with all movement confined to that
// range, minimizing the shared node count of roots. Variables outside the
// range are untouched, which is how the pin scheduler keeps already
// scheduled frames frozen. It returns the final node count.
func (m *Manager) Sift(roots []Node, loLevel, hiLevel int) int {
	if hiLevel >= m.NumVars() {
		hiLevel = m.NumVars() - 1
	}
	if loLevel < 0 {
		loLevel = 0
	}
	m.GC(roots) // construction garbage dominates; collect up front
	best := m.NodeCount(roots...)
	if loLevel >= hiLevel {
		return best
	}
	vars := m.varsByContribution(roots, loLevel, hiLevel)
	for _, v := range vars {
		if m.stopped() {
			break
		}
		m.maybeGC(roots)
		sp := m.span.Child("bdd.sift", "bdd")
		sp.SetInt("var", int64(v))
		h0, ms0 := m.hits, m.misses
		best = m.siftOne(roots, v, loLevel, hiLevel, best)
		sp.SetInt("nodes", int64(best))
		sp.SetInt("cache_hits", m.hits-h0)
		sp.SetInt("cache_misses", m.misses-ms0)
		sp.SetInt("unique_load_pct", m.loadPct())
		sp.End()
		m.noteSize()
	}
	return best
}

// siftOne moves variable v through [loLevel, hiLevel] and parks it at the
// position minimizing the node count; returns the resulting count.
func (m *Manager) siftOne(roots []Node, v, loLevel, hiLevel, cur int) int {
	start := m.levelOfVar[v]
	bestLevel, bestSize := start, cur

	tryRange := func(dir int) {
		for m.levelOfVar[v]+dir >= loLevel && m.levelOfVar[v]+dir <= hiLevel {
			if m.stopped() {
				return // park at bestLevel below; order stays consistent
			}
			if dir > 0 {
				m.SwapAdjacent(m.levelOfVar[v])
			} else {
				m.SwapAdjacent(m.levelOfVar[v] - 1)
			}
			size := m.NodeCount(roots...)
			m.gcIfBloated(roots, size)
			if size < bestSize {
				bestSize, bestLevel = size, m.levelOfVar[v]
			}
		}
	}
	// Explore the closer end first, then the other.
	if start-loLevel < hiLevel-start {
		tryRange(-1)
		tryRange(+1)
	} else {
		tryRange(+1)
		tryRange(-1)
	}
	m.moveVarTo(m.levelOfVar[v], bestLevel)
	return bestSize
}

// varsByContribution lists the variables in [loLevel, hiLevel] sorted by
// decreasing live node count at their level (the classic sifting order).
func (m *Manager) varsByContribution(roots []Node, loLevel, hiLevel int) []int {
	counts := make([]int, m.NumVars())
	m.beginVisit()
	stack := m.stack[:0]
	for _, r := range roots {
		if r > True && m.visited[r>>1] != m.epoch {
			m.visited[r>>1] = m.epoch
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := m.nodes[n>>1]
		counts[r.level]++
		for _, c := range [2]Node{r.lo, r.hi} {
			if c > True && m.visited[c>>1] != m.epoch {
				m.visited[c>>1] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]
	var vars []int
	for l := loLevel; l <= hiLevel; l++ {
		vars = append(vars, m.varAtLevel[l])
	}
	sort.SliceStable(vars, func(i, j int) bool {
		return counts[m.levelOfVar[vars[i]]] > counts[m.levelOfVar[vars[j]]]
	})
	return vars
}

// Symmetric reports whether all roots are symmetric in variables v and w,
// i.e. invariant under exchanging the two variables.
func (m *Manager) Symmetric(roots []Node, v, w int) bool {
	for _, f := range roots {
		f01 := m.Cofactor(m.Cofactor(f, v, false), w, true)
		f10 := m.Cofactor(m.Cofactor(f, v, true), w, false)
		if f01 != f10 {
			return false
		}
	}
	return true
}

// SymmetryGroups partitions the variables at levels [loLevel, hiLevel]
// into groups of mutually symmetric variables (greedy: a variable joins
// the first group whose representative it is symmetric with).
func (m *Manager) SymmetryGroups(roots []Node, loLevel, hiLevel int) [][]int {
	var groups [][]int
	for l := loLevel; l <= hiLevel && l < m.NumVars(); l++ {
		if m.stopped() {
			// Remaining variables become singleton groups, so the
			// caller's block layout below stays well-defined.
			for r := l; r <= hiLevel && r < m.NumVars(); r++ {
				groups = append(groups, []int{m.varAtLevel[r]})
			}
			break
		}
		v := m.varAtLevel[l]
		placed := false
		for gi := range groups {
			if m.Symmetric(roots, groups[gi][0], v) {
				groups[gi] = append(groups[gi], v)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{v})
		}
	}
	return groups
}

// SiftSymmetric performs symmetric sifting in the style of Panda and
// Somenzi: variables in [loLevel, hiLevel] are grouped by symmetry, each
// group is made contiguous, and groups are then sifted as blocks within
// the range. Returns the final node count of roots.
func (m *Manager) SiftSymmetric(roots []Node, loLevel, hiLevel int) int {
	if hiLevel >= m.NumVars() {
		hiLevel = m.NumVars() - 1
	}
	if loLevel < 0 {
		loLevel = 0
	}
	if loLevel >= hiLevel {
		return m.NodeCount(roots...)
	}
	m.GC(roots) // construction garbage dominates; collect up front
	groups := m.SymmetryGroups(roots, loLevel, hiLevel)
	// Make each group contiguous: stack groups from loLevel downward.
	next := loLevel
	for _, g := range groups {
		// Order group members by current level so moves do not cross.
		sort.Slice(g, func(i, j int) bool { return m.levelOfVar[g[i]] < m.levelOfVar[g[j]] })
		for _, v := range g {
			m.moveVarTo(m.levelOfVar[v], next)
			next++
		}
	}
	// Sift each block, largest first.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(groups[order[a]]) > len(groups[order[b]]) })
	best := m.NodeCount(roots...)
	for _, gi := range order {
		if m.stopped() {
			break
		}
		m.maybeGC(roots)
		sp := m.span.Child("bdd.sift", "bdd")
		sp.SetInt("block", int64(len(groups[gi])))
		sp.SetInt("var", int64(groups[gi][0]))
		h0, ms0 := m.hits, m.misses
		best = m.siftBlock(roots, groups[gi], loLevel, hiLevel, best)
		sp.SetInt("nodes", int64(best))
		sp.SetInt("cache_hits", m.hits-h0)
		sp.SetInt("cache_misses", m.misses-ms0)
		sp.SetInt("unique_load_pct", m.loadPct())
		sp.End()
		m.noteSize()
	}
	return best
}

// siftBlock moves a contiguous block of variables through the range and
// parks it at the best position. The block is identified by its variable
// set; it must be contiguous on entry and stays contiguous.
func (m *Manager) siftBlock(roots []Node, block []int, loLevel, hiLevel, cur int) int {
	k := len(block)
	blockTop := func() int {
		t := m.levelOfVar[block[0]]
		for _, v := range block[1:] {
			if m.levelOfVar[v] < t {
				t = m.levelOfVar[v]
			}
		}
		return t
	}
	start := blockTop()
	bestTop, bestSize := start, cur

	// moveDown moves the block one level down by bubbling the external
	// variable below it up over the whole block; moveUp is symmetric.
	moveDown := func() {
		b := blockTop() + k - 1 // bottom level of the block
		for l := b; l >= blockTop(); l-- {
			m.SwapAdjacent(l)
		}
	}
	moveUp := func() {
		t := blockTop()
		for l := t - 1; l < t-1+k; l++ {
			m.SwapAdjacent(l)
		}
	}
	for blockTop()+k-1 < hiLevel && !m.stopped() {
		moveDown()
		size := m.NodeCount(roots...)
		m.gcIfBloated(roots, size)
		if size < bestSize {
			bestSize, bestTop = size, blockTop()
		}
	}
	for blockTop() > loLevel && !m.stopped() {
		moveUp()
		size := m.NodeCount(roots...)
		m.gcIfBloated(roots, size)
		if size < bestSize {
			bestSize, bestTop = size, blockTop()
		}
	}
	for blockTop() < bestTop {
		moveDown()
	}
	for blockTop() > bestTop {
		moveUp()
	}
	return bestSize
}

// Translate rebuilds f (a function in m) inside dst, renaming each source
// variable v to varMap[v]. It uses Ite, so it is correct for any target
// order, and linear when the mapping preserves relative order.
// Translation commutes with complement (both managers use complement
// edges), so the memo keys on regular edges and polarity is reapplied
// on the way out.
func (m *Manager) Translate(dst *Manager, f Node, varMap map[int]int) Node {
	// The memo rides the manager's epoch-marked scratch (visited plus a
	// parallel result array) instead of a per-call map — Translate runs
	// once per transition during the fold merge, so map churn was
	// measurable there.
	m.beginVisit()
	if len(m.transMemo) < len(m.nodes) {
		m.transMemo = make([]Node, len(m.nodes))
	}
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == False || n == True {
			return n
		}
		if n&1 != 0 {
			return rec(n^1) ^ 1
		}
		if m.visited[n>>1] == m.epoch {
			return m.transMemo[n>>1]
		}
		v, ok := varMap[m.TopVar(n)]
		if !ok {
			panic("bdd: Translate: unmapped variable in support")
		}
		nr := m.nodes[n>>1]
		r := dst.Ite(dst.Var(v), rec(nr.hi), rec(nr.lo))
		m.visited[n>>1] = m.epoch
		m.transMemo[n>>1] = r
		return r
	}
	return rec(f)
}

// Cube returns the conjunction of the given variables with the given
// phases.
func (m *Manager) Cube(vars []int, vals []bool) Node {
	r := True
	for i, v := range vars {
		lit := m.Var(v)
		if !vals[i] {
			lit = m.NVar(v)
		}
		r = m.And(r, lit)
	}
	return r
}

// GC frees every node unreachable from roots: the unique table is
// rebuilt over the live set, the computed cache is cleared (its entries
// may reference reclaimed nodes), and the reclaimed arena slots go on
// the freelist for mk to reuse, so the arena stops growing once the
// working set stabilizes. Live node identities are preserved — roots and
// any other reference reachable from them stay valid — and the rebuild
// scans the arena in slot order, so the post-GC table layout and the
// freelist order are deterministic. Long reordering runs must collect
// periodically: every swap orphans nodes, and orphans left in the table
// get relabeled and restructured again and again, degrading later swaps.
// It returns the number of live non-terminal nodes.
func (m *Manager) GC(roots []Node) int {
	m.beginVisit()
	stack := m.stack[:0]
	for _, r := range roots {
		if r > True && m.visited[r>>1] != m.epoch {
			m.visited[r>>1] = m.epoch
			stack = append(stack, r)
		}
	}
	live := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		live++
		r := m.nodes[n>>1]
		for _, c := range [2]Node{r.lo, r.hi} {
			if c > True && m.visited[c>>1] != m.epoch {
				m.visited[c>>1] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]

	// Rebuild the unique table sized for the survivors and sweep the
	// arena: live slots are reinserted, everything else is reclaimed.
	size := minUniqueSlots
	for size < 2*live {
		size *= 2
	}
	m.unique = make([]Node, size)
	m.uniqueUsed = 0
	m.free = m.free[:0]
	for i := 1; i < len(m.nodes); i++ {
		if m.visited[i] == m.epoch {
			m.uniqueReinsert(Node(i) << 1)
		} else {
			m.nodes[i] = nodeRec{level: freeLevel}
			m.free = append(m.free, Node(i)<<1)
		}
	}
	// Rebuild the per-level lists over the survivors. The descending
	// sweep leaves each list in ascending slot order — deterministic,
	// like everything else about the rebuild.
	for l := range m.levelList {
		m.levelList[l] = 0
	}
	for i := len(m.nodes) - 1; i >= 1; i-- {
		if m.visited[i] == m.epoch {
			r := &m.nodes[i]
			r.next = m.levelList[r.level]
			m.levelList[r.level] = Node(i) << 1
		}
	}
	m.clearCache()

	// After the sweep every non-live slot is on the freelist, so the
	// allocated count noteSize reports is exactly live + the terminal.
	m.noteSize()
	return live
}

// maybeGC collects when the unique-table population is far above the
// live count.
func (m *Manager) maybeGC(roots []Node) {
	m.gcIfBloated(roots, m.NodeCount(roots...))
}

// gcIfBloated collects when the unique-table population is far above
// live, the caller's already-computed NodeCount of its roots — the
// sifting loops measure after every swap, so fusing the measurement
// with the GC trigger halves their traversals.
func (m *Manager) gcIfBloated(roots []Node, live int) {
	if m.uniqueUsed > 4*live+1024 {
		m.GC(roots)
	}
}
