package bdd

import "sort"

// SwapAdjacent exchanges the variables at levels l and l+1 in place.
// Node identities are preserved: nodes at level l that depend on both
// variables are restructured in place, nodes that do not are relabeled.
// Functions held by callers remain valid.
func (m *Manager) SwapAdjacent(l int) {
	if l < 0 || l+1 >= m.NumVars() {
		panic("bdd: SwapAdjacent level out of range")
	}
	m.mSwaps.Add(1)
	x := m.varAtLevel[l]
	y := m.varAtLevel[l+1]

	// Snapshot the two levels before mutating anything.
	var levL, levL1 []Node
	for _, n := range m.tables[l] {
		levL = append(levL, n)
	}
	for _, n := range m.tables[l+1] {
		levL1 = append(levL1, n)
	}
	// Classify level-l nodes by whether they reference level l+1.
	rewrite := make([]bool, len(levL))
	for i, n := range levL {
		if m.nodes[m.nodes[n].lo].level == int32(l+1) || m.nodes[m.nodes[n].hi].level == int32(l+1) {
			rewrite[i] = true
		}
	}
	m.tables[l] = make(map[[2]Node]Node)
	m.tables[l+1] = make(map[[2]Node]Node)

	// Old level-l+1 nodes (variable y) move up to level l.
	for _, n := range levL1 {
		m.nodes[n].level = int32(l)
		m.tables[l][[2]Node{m.nodes[n].lo, m.nodes[n].hi}] = n
	}
	// Level-l nodes independent of y move down to level l+1 unchanged.
	for i, n := range levL {
		if !rewrite[i] {
			m.nodes[n].level = int32(l + 1)
			m.tables[l+1][[2]Node{m.nodes[n].lo, m.nodes[n].hi}] = n
		}
	}
	// Remaining level-l nodes are restructured:
	//   f = x ? f1 : f0  becomes  f = y ? (x ? d : b) : (x ? c : a)
	// with a = f[x=0,y=0], b = f[x=0,y=1], c = f[x=1,y=0], d = f[x=1,y=1].
	for i, n := range levL {
		if !rewrite[i] {
			continue
		}
		f0, f1 := m.nodes[n].lo, m.nodes[n].hi
		a, b := f0, f0
		if m.nodes[f0].level == int32(l) { // old y-node, already relabeled
			a, b = m.nodes[f0].lo, m.nodes[f0].hi
		}
		c, d := f1, f1
		if m.nodes[f1].level == int32(l) {
			c, d = m.nodes[f1].lo, m.nodes[f1].hi
		}
		lo := m.mk(l+1, a, c)
		hi := m.mk(l+1, b, d)
		m.nodes[n].lo = lo
		m.nodes[n].hi = hi
		m.tables[l][[2]Node{lo, hi}] = n
	}

	m.varAtLevel[l], m.varAtLevel[l+1] = y, x
	m.levelOfVar[x], m.levelOfVar[y] = l+1, l
}

// moveVarTo moves the variable currently at level `from` to level `to`
// via adjacent swaps.
func (m *Manager) moveVarTo(from, to int) {
	for from < to {
		m.SwapAdjacent(from)
		from++
	}
	for from > to {
		m.SwapAdjacent(from - 1)
		from--
	}
}

// Sift performs Rudell sifting of every variable whose level lies within
// [loLevel, hiLevel] (inclusive), with all movement confined to that
// range, minimizing the shared node count of roots. Variables outside the
// range are untouched, which is how the pin scheduler keeps already
// scheduled frames frozen. It returns the final node count.
func (m *Manager) Sift(roots []Node, loLevel, hiLevel int) int {
	if hiLevel >= m.NumVars() {
		hiLevel = m.NumVars() - 1
	}
	if loLevel < 0 {
		loLevel = 0
	}
	m.GC(roots) // construction garbage dominates; collect up front
	best := m.NodeCount(roots...)
	if loLevel >= hiLevel {
		return best
	}
	vars := m.varsByContribution(roots, loLevel, hiLevel)
	for _, v := range vars {
		if m.stopped() {
			break
		}
		m.maybeGC(roots)
		sp := m.span.Child("bdd.sift", "bdd")
		sp.SetInt("var", int64(v))
		best = m.siftOne(roots, v, loLevel, hiLevel, best)
		sp.SetInt("nodes", int64(best))
		sp.End()
		m.noteSize()
	}
	return best
}

// siftOne moves variable v through [loLevel, hiLevel] and parks it at the
// position minimizing the node count; returns the resulting count.
func (m *Manager) siftOne(roots []Node, v, loLevel, hiLevel, cur int) int {
	start := m.levelOfVar[v]
	bestLevel, bestSize := start, cur

	tryRange := func(dir int) {
		for m.levelOfVar[v]+dir >= loLevel && m.levelOfVar[v]+dir <= hiLevel {
			if m.stopped() {
				return // park at bestLevel below; order stays consistent
			}
			if dir > 0 {
				m.SwapAdjacent(m.levelOfVar[v])
			} else {
				m.SwapAdjacent(m.levelOfVar[v] - 1)
			}
			m.maybeGC(roots)
			size := m.NodeCount(roots...)
			if size < bestSize {
				bestSize, bestLevel = size, m.levelOfVar[v]
			}
		}
	}
	// Explore the closer end first, then the other.
	if start-loLevel < hiLevel-start {
		tryRange(-1)
		tryRange(+1)
	} else {
		tryRange(+1)
		tryRange(-1)
	}
	m.moveVarTo(m.levelOfVar[v], bestLevel)
	return bestSize
}

// varsByContribution lists the variables in [loLevel, hiLevel] sorted by
// decreasing live node count at their level (the classic sifting order).
func (m *Manager) varsByContribution(roots []Node, loLevel, hiLevel int) []int {
	counts := make(map[int]int)
	seen := make(map[Node]bool)
	var rec func(n Node)
	rec = func(n Node) {
		if m.IsTerminal(n) || seen[n] {
			return
		}
		seen[n] = true
		counts[int(m.nodes[n].level)]++
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	for _, r := range roots {
		rec(r)
	}
	var vars []int
	for l := loLevel; l <= hiLevel; l++ {
		vars = append(vars, m.varAtLevel[l])
	}
	sort.SliceStable(vars, func(i, j int) bool {
		return counts[m.levelOfVar[vars[i]]] > counts[m.levelOfVar[vars[j]]]
	})
	return vars
}

// Symmetric reports whether all roots are symmetric in variables v and w,
// i.e. invariant under exchanging the two variables.
func (m *Manager) Symmetric(roots []Node, v, w int) bool {
	for _, f := range roots {
		f01 := m.Cofactor(m.Cofactor(f, v, false), w, true)
		f10 := m.Cofactor(m.Cofactor(f, v, true), w, false)
		if f01 != f10 {
			return false
		}
	}
	return true
}

// SymmetryGroups partitions the variables at levels [loLevel, hiLevel]
// into groups of mutually symmetric variables (greedy: a variable joins
// the first group whose representative it is symmetric with).
func (m *Manager) SymmetryGroups(roots []Node, loLevel, hiLevel int) [][]int {
	var groups [][]int
	for l := loLevel; l <= hiLevel && l < m.NumVars(); l++ {
		if m.stopped() {
			// Remaining variables become singleton groups, so the
			// caller's block layout below stays well-defined.
			for r := l; r <= hiLevel && r < m.NumVars(); r++ {
				groups = append(groups, []int{m.varAtLevel[r]})
			}
			break
		}
		v := m.varAtLevel[l]
		placed := false
		for gi := range groups {
			if m.Symmetric(roots, groups[gi][0], v) {
				groups[gi] = append(groups[gi], v)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{v})
		}
	}
	return groups
}

// SiftSymmetric performs symmetric sifting in the style of Panda and
// Somenzi: variables in [loLevel, hiLevel] are grouped by symmetry, each
// group is made contiguous, and groups are then sifted as blocks within
// the range. Returns the final node count of roots.
func (m *Manager) SiftSymmetric(roots []Node, loLevel, hiLevel int) int {
	if hiLevel >= m.NumVars() {
		hiLevel = m.NumVars() - 1
	}
	if loLevel < 0 {
		loLevel = 0
	}
	if loLevel >= hiLevel {
		return m.NodeCount(roots...)
	}
	m.GC(roots) // construction garbage dominates; collect up front
	groups := m.SymmetryGroups(roots, loLevel, hiLevel)
	// Make each group contiguous: stack groups from loLevel downward.
	next := loLevel
	for _, g := range groups {
		// Order group members by current level so moves do not cross.
		sort.Slice(g, func(i, j int) bool { return m.levelOfVar[g[i]] < m.levelOfVar[g[j]] })
		for _, v := range g {
			m.moveVarTo(m.levelOfVar[v], next)
			next++
		}
	}
	// Sift each block, largest first.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(groups[order[a]]) > len(groups[order[b]]) })
	best := m.NodeCount(roots...)
	for _, gi := range order {
		if m.stopped() {
			break
		}
		m.maybeGC(roots)
		sp := m.span.Child("bdd.sift", "bdd")
		sp.SetInt("block", int64(len(groups[gi])))
		sp.SetInt("var", int64(groups[gi][0]))
		best = m.siftBlock(roots, groups[gi], loLevel, hiLevel, best)
		sp.SetInt("nodes", int64(best))
		sp.End()
		m.noteSize()
	}
	return best
}

// siftBlock moves a contiguous block of variables through the range and
// parks it at the best position. The block is identified by its variable
// set; it must be contiguous on entry and stays contiguous.
func (m *Manager) siftBlock(roots []Node, block []int, loLevel, hiLevel, cur int) int {
	k := len(block)
	blockTop := func() int {
		t := m.levelOfVar[block[0]]
		for _, v := range block[1:] {
			if m.levelOfVar[v] < t {
				t = m.levelOfVar[v]
			}
		}
		return t
	}
	start := blockTop()
	bestTop, bestSize := start, cur

	// moveDown moves the block one level down by bubbling the external
	// variable below it up over the whole block; moveUp is symmetric.
	moveDown := func() {
		b := blockTop() + k - 1 // bottom level of the block
		for l := b; l >= blockTop(); l-- {
			m.SwapAdjacent(l)
		}
	}
	moveUp := func() {
		t := blockTop()
		for l := t - 1; l < t-1+k; l++ {
			m.SwapAdjacent(l)
		}
	}
	for blockTop()+k-1 < hiLevel && !m.stopped() {
		moveDown()
		m.maybeGC(roots)
		if size := m.NodeCount(roots...); size < bestSize {
			bestSize, bestTop = size, blockTop()
		}
	}
	for blockTop() > loLevel && !m.stopped() {
		moveUp()
		m.maybeGC(roots)
		if size := m.NodeCount(roots...); size < bestSize {
			bestSize, bestTop = size, blockTop()
		}
	}
	for blockTop() < bestTop {
		moveDown()
	}
	for blockTop() > bestTop {
		moveUp()
	}
	return bestSize
}

// Translate rebuilds f (a function in m) inside dst, renaming each source
// variable v to varMap[v]. It uses Ite, so it is correct for any target
// order, and linear when the mapping preserves relative order.
func (m *Manager) Translate(dst *Manager, f Node, varMap map[int]int) Node {
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == False || n == True {
			return Node(n)
		}
		if r, ok := memo[n]; ok {
			return r
		}
		v, ok := varMap[m.TopVar(n)]
		if !ok {
			panic("bdd: Translate: unmapped variable in support")
		}
		r := dst.Ite(dst.Var(v), rec(m.nodes[n].hi), rec(m.nodes[n].lo))
		memo[n] = r
		return r
	}
	return rec(f)
}

// Cube returns the conjunction of the given variables with the given
// phases.
func (m *Manager) Cube(vars []int, vals []bool) Node {
	r := True
	for i, v := range vars {
		lit := m.Var(v)
		if !vals[i] {
			lit = m.NVar(v)
		}
		r = m.And(r, lit)
	}
	return r
}

// GC rebuilds the unique tables keeping only nodes reachable from roots
// and clears the operation caches. Live node identities are preserved, so
// roots and any other live references stay valid; the arena itself is not
// compacted. Long reordering runs must collect periodically: every swap
// orphans nodes, and orphans left in the tables get relabeled and
// restructured again and again, degrading later swaps.
func (m *Manager) GC(roots []Node) int {
	live := make(map[Node]bool, len(m.nodes)/4)
	var mark func(n Node)
	mark = func(n Node) {
		if m.IsTerminal(n) || live[n] {
			return
		}
		live[n] = true
		mark(m.nodes[n].lo)
		mark(m.nodes[n].hi)
	}
	for _, r := range roots {
		mark(r)
	}
	for l := range m.tables {
		nt := make(map[[2]Node]Node)
		for key, n := range m.tables[l] {
			if live[n] {
				nt[key] = n
			}
		}
		m.tables[l] = nt
	}
	m.opCache = make(map[opKey]Node)
	m.iteCache = make(map[iteKey]Node)
	if m.mLive != nil {
		m.mLive.Set(int64(len(live)) + 2) // live nodes + terminals
		m.mArena.Set(int64(len(m.nodes)) * nodeRecBytes)
	}
	return len(live)
}

// maybeGC collects when the table population is far above the live count.
func (m *Manager) maybeGC(roots []Node) {
	pop := 0
	for _, t := range m.tables {
		pop += len(t)
	}
	if pop > 4*m.NodeCount(roots...)+1024 {
		m.GC(roots)
	}
}
