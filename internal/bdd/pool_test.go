package bdd

import (
	"sync"
	"testing"

	"circuitfold/internal/obs"
)

// poolWorkload runs a fixed operation sequence — enough to grow the
// unique table past its initial size, exercise the computed cache, GC
// and sifting — and returns the final layout hash and a result node.
func poolWorkload(m *Manager) (Node, uint64) {
	n := m.NumVars()
	f := m.Var(0)
	g := m.NVar(1)
	for i := 1; i < n; i++ {
		f = m.Xor(f, m.Var(i))
		g = m.Ite(m.Var(i), g, m.And(f, m.Var((i+1)%n)))
	}
	h := m.Or(f, g)
	m.GC([]Node{f, g, h})
	m.Sift([]Node{f, g, h}, 0, n-1)
	return h, m.LayoutHash()
}

// TestResetBitIdenticalToFresh is the pooling determinism contract: a
// manager that did arbitrary unrelated work and was Reset runs the
// same workload to the same arena layout and the same result node as
// a fresh manager.
func TestResetBitIdenticalToFresh(t *testing.T) {
	fresh := New(14)
	fNode, fHash := poolWorkload(fresh)

	dirty := New(9)
	// Unrelated garbage under different knobs: other variable count,
	// reordering, an interrupt hook, a node limit, an observer.
	dirty.SetInterrupt(func() error { return nil })
	dirty.SetNodeLimit(1 << 20)
	dirty.SetObserver(nil, obs.NewRegistry())
	a := dirty.Var(3)
	for i := 0; i < 9; i++ {
		a = m3(dirty, a, i)
	}
	dirty.Sift([]Node{a}, 0, 8)
	dirty.GC([]Node{a})

	dirty.Reset(14)
	dNode, dHash := poolWorkload(dirty)
	if dHash != fHash {
		t.Fatalf("reset manager layout %#x, fresh %#x", dHash, fHash)
	}
	if dNode != fNode {
		t.Fatalf("reset manager result %v, fresh %v", dNode, fNode)
	}
}

func m3(m *Manager, a Node, i int) Node {
	return m.Ite(m.Var(i%9), m.Xor(a, m.Var((i+2)%9)), m.Or(a, m.NVar((i+5)%9)))
}

// TestResetClearsState checks that nothing observable bleeds through a
// Reset: statistics, variable order, node limit, free list.
func TestResetClearsState(t *testing.T) {
	m := New(6)
	f := m.Var(0)
	for i := 1; i < 6; i++ {
		f = m.Xor(f, m.Var(i))
	}
	m.SwapAdjacent(2)
	m.GC(nil) // frees everything: populates the freelist
	m.SetNodeLimit(4)

	m.Reset(6)
	st := m.Stats()
	if st.AllocNodes != 1 || st.FreeNodes != 0 || st.PeakNodes != 1 {
		t.Fatalf("reset arena not empty: %+v", st)
	}
	if st.UniqueUsed != 0 || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("reset stats not zero: %+v", st)
	}
	for i, v := range m.Order() {
		if v != i {
			t.Fatalf("reset order not identity: %v", m.Order())
		}
	}
	// The old node limit must be gone: build well past 4 nodes.
	g := m.Var(0)
	for i := 1; i < 6; i++ {
		g = m.Xor(g, m.Var(i))
	}
	if m.NodeCount(g) < 6 {
		t.Fatalf("parity of 6 vars has %d nodes", m.NodeCount(g))
	}
}

// TestResetChangesVariableCount reshapes the manager across Resets.
func TestResetChangesVariableCount(t *testing.T) {
	m := New(4)
	poolWorkloadSmall(m)
	m.Reset(17)
	if m.NumVars() != 17 {
		t.Fatalf("NumVars = %d, want 17", m.NumVars())
	}
	want := New(17)
	a, ha := poolWorkload(want)
	b, hb := poolWorkload(m)
	if a != b || ha != hb {
		t.Fatalf("grown reset diverges: node %v/%v layout %#x/%#x", b, a, hb, ha)
	}
	m.Reset(2)
	if got := m.Level(m.Var(1)); got != 1 {
		t.Fatalf("shrunk reset: level of var 1 = %d", got)
	}
}

func poolWorkloadSmall(m *Manager) {
	f := m.Var(0)
	for i := 1; i < m.NumVars(); i++ {
		f = m.And(f, m.Var(i))
	}
}

// TestPoolReuse checks the recycle path, the reuse counter, and the
// nil-pool degradation.
func TestPoolReuse(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool()
	p.SetMetrics(reg.Counter(obs.MBDDPoolReuse))

	m1 := p.Get(8)
	poolWorkloadSmall(m1)
	if got := reg.Counter(obs.MBDDPoolReuse).Value(); got != 0 {
		t.Fatalf("fresh Get counted as reuse: %d", got)
	}
	p.Put(m1)
	m2 := p.Get(8)
	if m2 != m1 {
		t.Fatalf("pool did not recycle the manager")
	}
	if got := reg.Counter(obs.MBDDPoolReuse).Value(); got != 1 {
		t.Fatalf("reuse counter = %d, want 1", got)
	}
	if st := m2.Stats(); st.AllocNodes != 1 {
		t.Fatalf("recycled manager not reset: %+v", st)
	}

	var nilPool *Pool
	if m := nilPool.Get(3); m == nil || m.NumVars() != 3 {
		t.Fatalf("nil pool Get broken")
	}
	nilPool.Put(nil)
	nilPool.SetMetrics(nil)
}

// TestPoolConcurrent hammers one pool from several goroutines; run
// under -race this is the thread-safety gate for the hybrid engine's
// shared cluster pool.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := p.Get(10)
				f := m.And(m.Var(0), m.Var(9))
				if m.Lo(f) != False {
					t.Error("bad cofactor on pooled manager")
				}
				p.Put(m)
			}
		}()
	}
	wg.Wait()
}
