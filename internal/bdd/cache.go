package bdd

// The computed cache is CUDD-style lossy: a direct-mapped power-of-two
// array shared by the binary apply operations, Ite, and Cofactor. A lookup is one
// probe; an insert overwrites whatever occupied the slot. Losing an
// entry only costs recomputation — correctness never depends on the
// cache — so memory stays bounded regardless of how many operations the
// manager serves. The cache grows in step with the unique table (half
// its slot count) up to a hard cap, and GC clears it wholesale because
// entries may reference nodes whose slots are about to be reused.
//
// With complement edges the callers polarity-normalize their keys
// before probing (Xor strips both operand signs, Ite makes the selector
// and then-branch regular, Cofactor strips the operand sign), so one
// entry serves every polarity variant of an operation; hits reached
// only through such a normalization are counted as complement hits.

// cacheEntry is one computed-cache slot. op == 0 means empty; binary
// operations store h == 0, which cannot collide with Ite entries
// because the op tag differs.
type cacheEntry struct {
	op      int32
	f, g, h Node
	r       Node
}

const (
	// minCacheSlots is the initial capacity (2^9 slots · 20 B = 10 KiB).
	minCacheSlots = 1 << 9
	// maxCacheSlots caps the cache (2^18 slots · 20 B = 5 MiB).
	maxCacheSlots = 1 << 18
)

// cacheIndex maps an operation key to its one slot.
func (m *Manager) cacheIndex(op int32, f, g, h Node) uint64 {
	k := uint64(uint32(f))<<32 | uint64(uint32(g))
	k *= 0x9e3779b97f4a7c15
	k ^= (uint64(uint32(h))<<8 | uint64(uint32(op))) * 0xbf58476d1ce4e5b9
	k ^= k >> 29
	k *= 0x94d049bb133111eb
	k ^= k >> 32
	return k & uint64(len(m.cache)-1)
}

// cacheGet probes the slot for (op, f, g, h) and counts the hit or miss.
func (m *Manager) cacheGet(op int32, f, g, h Node) (Node, bool) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.hits++
		return e.r, true
	}
	m.misses++
	return 0, false
}

// cachePut records a result, overwriting any colliding entry.
func (m *Manager) cachePut(op int32, f, g, h, r Node) {
	m.cache[m.cacheIndex(op, f, g, h)] = cacheEntry{op: op, f: f, g: g, h: h, r: r}
}

// growCache resizes the cache to half the unique table's slot count,
// capped at maxCacheSlots. The lossy contents are discarded.
func (m *Manager) growCache() {
	want := len(m.unique) / 2
	if want > maxCacheSlots {
		want = maxCacheSlots
	}
	if want > len(m.cache) {
		m.cache = make([]cacheEntry, want)
	}
}

// clearCache empties every slot in place (GC must drop entries that
// reference reclaimed nodes before their slots are reused).
func (m *Manager) clearCache() {
	clear(m.cache)
}
