// Package bdd implements reduced ordered binary decision diagrams with
// complement edges and an in-place variable-reordering engine
// (adjacent-level swap, Rudell-style sifting, and Panda–Somenzi
// symmetric sifting). It plays the role CUDD plays in the paper's
// implementation, and borrows CUDD's storage layout: a single flat
// open-addressing unique table keyed by (level, lo, hi), a fixed-size
// lossy computed cache (direct-mapped, overwrite on collision), and a
// mark-and-sweep GC whose reclaimed arena slots feed a freelist so the
// arena stops growing once the working set stabilizes.
//
// A Node is an edge: an arena slot index shifted left by one, with the
// low bit carrying the complement attribute. The canonical form stores
// every node with a regular (uncomplemented) then-edge, so a function
// and its negation share one arena slot and Not is a single bit flip.
// The one terminal occupies slot 0: False is the regular edge to it and
// True the complemented one, which keeps the familiar False == 0,
// True == 1 constants.
//
// A Manager owns an arena of nodes; Node values remain stable across
// reordering (a swap rewrites node structure in place, never node
// identity), so callers can hold Nodes across Sift calls. GC(roots)
// frees every node unreachable from roots; a Node held by a caller
// survives any GC whose root set (transitively) covers it, and a freed
// slot is only ever handed out again by mk, so a live Node is never
// silently rebound to a different function.
package bdd

import (
	"fmt"
	"unsafe"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// ErrNodeLimit reports that a hard node cap installed with SetNodeLimit
// was exceeded. It wraps pipeline.ErrBudgetExceeded so the cap reads as
// a budget failure everywhere the engine classifies errors. Because mk
// sits at the bottom of deep recursions that cannot thread an error
// return, the cap surfaces as a panic carrying an ErrNodeLimit-matching
// error value; the pipeline stage boundaries (and the public entry
// points) recover it back into a plain error — the same longjmp-style
// unwinding CUDD uses for its memory cap.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded: %w", pipeline.ErrBudgetExceeded)

// Node identifies a BDD function within its Manager: an arena slot
// index in the high bits and the complement attribute in bit 0. The two
// terminals are False and True (the two polarities of arena slot 0).
type Node int32

// Terminal nodes: the regular and complemented edges to arena slot 0.
const (
	False Node = 0
	True  Node = 1
)

// Regular strips the complement attribute, returning the positive-phase
// edge to n's arena slot. Two Nodes denote the same slot — and thus
// structurally equal functions up to polarity — iff their Regular forms
// are equal.
func Regular(n Node) Node { return n &^ 1 }

// IsComplement reports whether n carries the complement attribute.
func IsComplement(n Node) bool { return n&1 != 0 }

// nodeRec is one arena slot. Live slots carry the level of their top
// variable (the terminal uses nVars); slots on the freelist carry
// freeLevel. The hi edge is always regular (the canonical form); the lo
// edge may be complemented. next threads the slot onto its level's
// intrusive list (see Manager.levelList): a regular edge to the next
// node at the same level, 0 terminating the chain — unambiguous because
// the terminal is never listed.
type nodeRec struct {
	level  int32
	lo, hi Node
	next   Node
}

// freeLevel marks an arena slot that has been reclaimed by GC and is
// waiting on the freelist. No live node ever has a negative level.
const freeLevel int32 = -1

// Operation tags for the computed cache. 0 marks an empty cache slot.
// There is no opOr: Or is And under De Morgan with three O(1) bit
// flips, so conjunctions and disjunctions share cache entries.
const (
	opAnd = iota + 1
	opXor
	opIte
	opCof
)

// Manager is a BDD node arena with a variable order. Variable indices are
// permanent names; levels are positions in the current order (level 0 is
// the top). The zero value is not usable; call New.
type Manager struct {
	nodes []nodeRec
	free  []Node // reclaimed arena slots (as regular edges), reused LIFO by mk

	// unique is the flat open-addressing unique table: power-of-two
	// sized, linear probing, rebuilt (never tombstoned) on growth.
	// Entries are regular edges keyed by the slot's (level, lo, hi);
	// 0 is the empty-slot sentinel (the terminal never enters the table).
	unique     []Node
	uniqueUsed int

	// levelList[l] heads the intrusive list (through nodeRec.next) of
	// every allocated non-terminal slot whose record sits at level l —
	// the per-level enumeration CUDD gets from its subtables. mkReg
	// pushes new slots; SwapAdjacent and GC rebuild the lists they
	// touch wholesale. Membership follows the arena, not the unique
	// table: a slot orphaned by a uniquePut overwrite stays listed until
	// GC reclaims it, so swaps keep relabeling it consistently with its
	// canonical twin.
	levelList []Node

	// cache is the lossy computed cache shared by apply and Ite:
	// direct-mapped, one probe per lookup, overwrite on collision.
	cache []cacheEntry

	// visited/epoch implement allocation-free traversals: arena slot i
	// is marked in the current traversal iff visited[i] == epoch.
	visited []uint32
	epoch   uint32
	stack   []Node // scratch stack for iterative traversals

	// transMemo is Translate's epoch-guarded result memo, parallel to
	// visited; scratch, so Clone does not copy it.
	transMemo []Node

	// Scratch buffers for SwapAdjacent's two level snapshots.
	swapL, swapL1 []Node
	swapRw        []bool

	varAtLevel []int
	levelOfVar []int
	interrupt  func() error // polled by the sifting loops; non-nil result aborts
	nodeLimit  int          // hard cap on allocated arena slots; 0 = unlimited

	// Lifetime storage statistics, maintained unconditionally (the
	// manager is single-goroutine, so these are plain ints).
	hits, misses int64 // computed-cache probes
	cHits        int64 // cache hits reached only via polarity normalization
	peak         int   // high-water allocated slot count (arena − freelist)

	// Values last flushed to the obs counters, so flushes add deltas.
	flushedHits, flushedMisses, flushedCHits int64

	// Observability hooks (all nil when unobserved; every use is
	// nil-safe, so the unobserved cost is a single pointer test on the
	// cold paths and nothing on the node-creation fast path).
	span    *obs.Span    // parent for per-round sifting spans
	mSwaps  *obs.Counter // obs.MBDDReorderSwaps
	mLive   *obs.Gauge   // obs.MBDDLiveNodes
	mArena  *obs.Gauge   // obs.MBDDArenaBytes
	mHits   *obs.Counter // obs.MBDDCacheHits
	mMisses *obs.Counter // obs.MBDDCacheMisses
	mCompl  *obs.Counter // obs.MBDDComplementHits
	mLoad   *obs.Gauge   // obs.MBDDUniqueLoad
	mFree   *obs.Gauge   // obs.MBDDFreeNodes
}

// SetInterrupt installs a callback polled by the reordering loops
// (Sift, SiftSymmetric). When it returns a non-nil error, sifting
// stops early — parking any in-flight variable or block at its best
// position so the order stays consistent — and returns the node count
// reached so far. Callers that care about the reason re-check their
// own budget after the sift returns. Pass nil to remove the hook.
func (m *Manager) SetInterrupt(check func() error) { m.interrupt = check }

// SetNodeLimit installs a hard cap on allocated arena slots (arena
// minus freelist). When arena growth would push the allocation past the
// cap, mk panics with an error matching ErrNodeLimit (and therefore
// pipeline.ErrBudgetExceeded); run the manager under a pipeline stage
// or a pipeline.RecoverTo boundary to receive it as an error. The cap
// bounds memory even where the soft interrupt-based budget checks are
// too coarse (e.g. one giant apply between polls). Zero removes it.
func (m *Manager) SetNodeLimit(n int) { m.nodeLimit = n }

// stopped reports whether the interrupt hook requests an abort.
func (m *Manager) stopped() bool {
	return m.interrupt != nil && m.interrupt() != nil
}

// SetObserver attaches observability to the manager: sifting rounds
// open "bdd.sift" child spans under span, and the manager keeps the
// bdd.live_nodes / bdd.arena_bytes / bdd.free_nodes /
// bdd.unique_load_pct gauges and the bdd.reorder_swaps /
// bdd.cache_hits / bdd.cache_misses / bdd.complement_hits counters of
// reg current. Either argument may be nil; a fully nil observer
// restores the zero-overhead unobserved state.
func (m *Manager) SetObserver(span *obs.Span, reg *obs.Registry) {
	m.span = span
	m.mSwaps = reg.Counter(obs.MBDDReorderSwaps)
	m.mLive = reg.Gauge(obs.MBDDLiveNodes)
	m.mArena = reg.Gauge(obs.MBDDArenaBytes)
	m.mHits = reg.Counter(obs.MBDDCacheHits)
	m.mMisses = reg.Counter(obs.MBDDCacheMisses)
	m.mCompl = reg.Counter(obs.MBDDComplementHits)
	m.mLoad = reg.Gauge(obs.MBDDUniqueLoad)
	m.mFree = reg.Gauge(obs.MBDDFreeNodes)
}

// nodeRecBytes is the arena cost per node reported on bdd.arena_bytes,
// derived from the real record so it cannot drift when nodeRec grows.
const nodeRecBytes = int64(unsafe.Sizeof(nodeRec{}))

// noteSize refreshes the size gauges and flushes the cache counters;
// called from the cold spots (GC, sift rounds) rather than mk so the
// fast path stays untouched.
func (m *Manager) noteSize() {
	if m.mLive == nil {
		return
	}
	m.mLive.Set(int64(len(m.nodes) - len(m.free)))
	m.mArena.Set(int64(len(m.nodes)) * nodeRecBytes)
	m.mFree.Set(int64(len(m.free)))
	m.mLoad.Set(m.loadPct())
	m.mHits.Add(m.hits - m.flushedHits)
	m.flushedHits = m.hits
	m.mMisses.Add(m.misses - m.flushedMisses)
	m.flushedMisses = m.misses
	m.mCompl.Add(m.cHits - m.flushedCHits)
	m.flushedCHits = m.cHits
}

// loadPct returns the unique table's load factor as a percentage.
func (m *Manager) loadPct() int64 {
	return int64(m.uniqueUsed) * 100 / int64(len(m.unique))
}

// Stats is a point-in-time snapshot of the manager's storage layer,
// exposed for benchmarks and tests; it requires no observer.
type Stats struct {
	ArenaNodes     int   // arena slots, terminal and freelist slots included
	FreeNodes      int   // slots on the freelist awaiting reuse
	AllocNodes     int   // ArenaNodes − FreeNodes (live + not-yet-collected)
	PeakNodes      int   // high-water AllocNodes over the manager's lifetime
	UniqueSlots    int   // open-addressing table capacity
	UniqueUsed     int   // populated table slots
	CacheSlots     int   // computed-cache capacity
	CacheHits      int64 // computed-cache hits since New
	CacheMisses    int64 // computed-cache misses since New
	ComplementHits int64 // cache hits reached only via polarity normalization
}

// Stats returns the manager's current storage statistics.
func (m *Manager) Stats() Stats {
	return Stats{
		ArenaNodes:     len(m.nodes),
		FreeNodes:      len(m.free),
		AllocNodes:     len(m.nodes) - len(m.free),
		PeakNodes:      m.peak,
		UniqueSlots:    len(m.unique),
		UniqueUsed:     m.uniqueUsed,
		CacheSlots:     len(m.cache),
		CacheHits:      m.hits,
		CacheMisses:    m.misses,
		ComplementHits: m.cHits,
	}
}

// New creates a manager with nVars variables, variable i initially at
// level i.
func New(nVars int) *Manager {
	m := &Manager{
		nodes:   make([]nodeRec, 1, 1024),
		visited: make([]uint32, 1, 1024),
		unique:  make([]Node, minUniqueSlots),
		cache:   make([]cacheEntry, minCacheSlots),
		peak:    1,
	}
	m.nodes[0] = nodeRec{level: int32(nVars)} // the one terminal
	m.levelList = make([]Node, nVars)
	for i := 0; i < nVars; i++ {
		m.varAtLevel = append(m.varAtLevel, i)
		m.levelOfVar = append(m.levelOfVar, i)
	}
	return m
}

// Reserve presizes the manager for an expected allocated-node count n:
// the arena and its visited scratch get capacity for n slots, and the
// unique table (with the computed cache that grows in step with it)
// jumps directly to the capacity organic growth would reach at that
// population, skipping the intermediate rebuild-and-rehash doublings.
// Layouts stay deterministic — the table layout is a pure function of
// the manager's history, and a Reserve call is part of that history.
// Reserving less than the current size is a no-op; so is reserving on
// a manager that already holds nodes (only the missing capacity is
// added, nothing shrinks).
func (m *Manager) Reserve(n int) {
	if cap(m.nodes) < n {
		nodes := make([]nodeRec, len(m.nodes), n)
		copy(nodes, m.nodes)
		m.nodes = nodes
		visited := make([]uint32, len(m.visited), n)
		copy(visited, m.visited)
		m.visited = visited
	}
	size := len(m.unique)
	for 4*n > 3*size { // mirror mkReg's 75% growth trigger
		size *= 2
	}
	if size > len(m.unique) {
		old := m.unique
		m.unique = make([]Node, size)
		m.uniqueUsed = 0
		for _, e := range old {
			if e != 0 {
				m.uniqueReinsert(e)
			}
		}
		m.growCache()
	}
}

// Clone returns an independent manager holding an exact copy of m's
// arena, unique table, freelist, computed cache, and variable order:
// every Node valid in m denotes the same function in the clone, and as
// long as the two managers perform the same operation sequence from
// here on they allocate identical arenas (layouts are a pure function
// of history). The clone shares no mutable state with m, so it may be
// used from another goroutine; the interrupt hook and observer are not
// copied (install per-clone ones if needed). The node limit is copied.
func (m *Manager) Clone() *Manager {
	return &Manager{
		nodes:      append([]nodeRec(nil), m.nodes...),
		free:       append([]Node(nil), m.free...),
		unique:     append([]Node(nil), m.unique...),
		uniqueUsed: m.uniqueUsed,
		levelList:  append([]Node(nil), m.levelList...),
		cache:      append([]cacheEntry(nil), m.cache...),
		visited:    make([]uint32, len(m.nodes)),
		varAtLevel: append([]int(nil), m.varAtLevel...),
		levelOfVar: append([]int(nil), m.levelOfVar...),
		nodeLimit:  m.nodeLimit,
		peak:       m.peak,
	}
}

// LayoutHash returns an FNV-1a hash over the arena's records in slot
// order. Two managers with equal hashes have (up to collision)
// identical arena layouts — the determinism the parallel folds assert
// across worker counts.
func (m *Manager) LayoutHash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, r := range m.nodes {
		mix(uint64(uint32(r.level)))
		mix(uint64(uint32(r.lo)))
		mix(uint64(uint32(r.hi)))
	}
	return h
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return len(m.varAtLevel) }

// NumNodes returns the arena size in slots (terminal and free slots
// included).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// VarAtLevel returns the variable currently at the given level.
func (m *Manager) VarAtLevel(l int) int { return m.varAtLevel[l] }

// LevelOfVar returns the current level of variable v.
func (m *Manager) LevelOfVar(v int) int { return m.levelOfVar[v] }

// Order returns the current variable order, top to bottom.
func (m *Manager) Order() []int { return append([]int(nil), m.varAtLevel...) }

// IsTerminal reports whether n is a terminal node.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Level returns the level of node n's top variable; terminals return
// NumVars().
func (m *Manager) Level(n Node) int { return int(m.nodes[n>>1].level) }

// TopVar returns the variable index labeling node n.
func (m *Manager) TopVar(n Node) int { return m.varAtLevel[m.nodes[n>>1].level] }

// Lo returns the low (variable = 0) cofactor of n. The stored edge is
// adjusted by n's complement attribute, so Lo(Not(f)) == Not(Lo(f)).
func (m *Manager) Lo(n Node) Node { return m.nodes[n>>1].lo ^ (n & 1) }

// Hi returns the high (variable = 1) cofactor of n, adjusted by n's
// complement attribute like Lo.
func (m *Manager) Hi(n Node) Node { return m.nodes[n>>1].hi ^ (n & 1) }

// Var returns the function of variable v.
func (m *Manager) Var(v int) Node {
	return m.mk(m.levelOfVar[v], False, True)
}

// NVar returns the function NOT v.
func (m *Manager) NVar(v int) Node {
	return m.mk(m.levelOfVar[v], True, False)
}

// mk returns the canonical edge for (level, lo, hi). The stored form
// keeps the hi edge regular: when hi carries the complement attribute,
// the slot is built for the complemented function (both cofactors
// flipped) and the returned edge is complemented instead, so f and
// NOT f always share one slot.
func (m *Manager) mk(level int, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	if hi&1 != 0 {
		return m.mkReg(level, lo^1, hi^1) ^ 1
	}
	return m.mkReg(level, lo, hi)
}

// mkReg returns the slot for (level, lo, hi) with hi regular: the
// unique-table entry when one exists, otherwise a fresh slot allocated
// from the freelist (or by growing the arena when the freelist is
// empty).
func (m *Manager) mkReg(level int, lo, hi Node) Node {
	mask := uint64(len(m.unique) - 1)
	i := hashKey(int32(level), lo, hi) & mask
	for {
		e := m.unique[i]
		if e == 0 {
			break
		}
		if r := &m.nodes[e>>1]; r.level == int32(level) && r.lo == lo && r.hi == hi {
			return e
		}
		i = (i + 1) & mask
	}
	var n Node
	if k := len(m.free) - 1; k >= 0 {
		n = m.free[k]
		m.free = m.free[:k]
		m.nodes[n>>1] = nodeRec{level: int32(level), lo: lo, hi: hi, next: m.levelList[level]}
		m.levelList[level] = n
	} else {
		// Arena growth is the only path that takes new memory, so the
		// hard cap and the allocation-failure fault point live here;
		// freelist reuse stays untouched.
		if err := fault.Point(fault.PointBDDMk); err != nil {
			panic(err)
		}
		if alloc := len(m.nodes); m.nodeLimit > 0 && alloc >= m.nodeLimit {
			panic(fmt.Errorf("%w: %d allocated nodes", ErrNodeLimit, alloc))
		}
		n = Node(len(m.nodes)) << 1
		m.nodes = append(m.nodes, nodeRec{level: int32(level), lo: lo, hi: hi, next: m.levelList[level]})
		m.visited = append(m.visited, 0)
		m.levelList[level] = n
	}
	m.unique[i] = n
	m.uniqueUsed++
	if alloc := len(m.nodes) - len(m.free); alloc > m.peak {
		m.peak = alloc
	}
	if 4*m.uniqueUsed > 3*len(m.unique) {
		m.growUnique()
		m.growCache()
	}
	return n
}

// Not returns the complement of f: a single flip of the complement
// attribute, no allocation.
func (m *Manager) Not(f Node) Node { return f ^ 1 }

// And returns f AND g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f OR g, computed as NOT (NOT f AND NOT g); the three
// negations are bit flips, so disjunctions share the And cache.
func (m *Manager) Or(f, g Node) Node { return m.apply(opAnd, f^1, g^1) ^ 1 }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Xnor returns NOT (f XOR g).
func (m *Manager) Xnor(f, g Node) Node { return m.apply(opXor, f, g) ^ 1 }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Node) Node { return m.apply(opAnd, f, g^1) ^ 1 }

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Node) Node { return m.apply(opAnd, f, g^1) }

func (m *Manager) apply(op int32, f, g Node) Node {
	var sign Node
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
		if f == g^1 {
			return False
		}
	case opXor:
		if f == g {
			return False
		}
		if f == g^1 {
			return True
		}
		// XOR ignores operand polarity up to a flip of the result:
		// strip both complement attributes and reapply the combined
		// sign on the way out, halving the cache footprint.
		sign = (f ^ g) & 1
		f &^= 1
		g &^= 1
		if f == False {
			return g ^ sign
		}
		if g == False {
			return f ^ sign
		}
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(op, f, g, 0); ok {
		if sign != 0 {
			m.cHits++
		}
		return r ^ sign
	}
	rf, rg := m.nodes[f>>1], m.nodes[g>>1]
	top := rf.level
	if rg.level < top {
		top = rg.level
	}
	f0, f1 := f, f
	if rf.level == top {
		s := f & 1
		f0, f1 = rf.lo^s, rf.hi^s
	}
	g0, g1 := g, g
	if rg.level == top {
		s := g & 1
		g0, g1 = rg.lo^s, rg.hi^s
	}
	r := m.mk(int(top), m.apply(op, f0, g0), m.apply(op, f1, g1))
	m.cachePut(op, f, g, 0, r)
	return r ^ sign
}

// Ite returns "if f then g else h". Cache keys are complement-
// normalized: the selector and the then-branch are made regular (by
// swapping the branches resp. complementing the result), so the eight
// polarity variants of one ITE share a single cache entry.
func (m *Manager) Ite(f, g, h Node) Node {
	// Constant selectors and branch absorption.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case f == g:
		g = True // Ite(f, f, h) = f OR h
	case f == g^1:
		g = False // Ite(f, NOT f, h) = NOT f AND h
	}
	switch {
	case f == h:
		h = False // Ite(f, g, f) = f AND g
	case f == h^1:
		h = True // Ite(f, g, NOT f) = NOT f OR g
	}
	switch {
	case g == True && h == False:
		return f
	case g == False && h == True:
		return f ^ 1
	case g == h:
		return g
	case g == True:
		return m.apply(opAnd, f^1, h^1) ^ 1 // f OR h
	case g == False:
		return m.apply(opAnd, f^1, h) // NOT f AND h
	case h == False:
		return m.apply(opAnd, f, g) // f AND g
	case h == True:
		return m.apply(opAnd, f, g^1) ^ 1 // NOT f OR g
	}
	// Complement normalization: Ite(NOT f, g, h) = Ite(f, h, g) makes
	// the selector regular; Ite(f, NOT g, NOT h) = NOT Ite(f, g, h)
	// then makes the then-branch regular.
	var sign Node
	norm := false
	if f&1 != 0 {
		f ^= 1
		g, h = h, g
		norm = true
	}
	if g&1 != 0 {
		sign = 1
		g ^= 1
		h ^= 1
		norm = true
	}
	if r, ok := m.cacheGet(opIte, f, g, h); ok {
		if norm {
			m.cHits++
		}
		return r ^ sign
	}
	rf, rg, rh := m.nodes[f>>1], m.nodes[g>>1], m.nodes[h>>1]
	top := rf.level
	if rg.level < top {
		top = rg.level
	}
	if rh.level < top {
		top = rh.level
	}
	cof := func(n Node, r nodeRec) (Node, Node) {
		if r.level == top {
			s := n & 1
			return r.lo ^ s, r.hi ^ s
		}
		return n, n
	}
	f0, f1 := cof(f, rf)
	g0, g1 := cof(g, rg)
	h0, h1 := cof(h, rh)
	r := m.mk(int(top), m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.cachePut(opIte, f, g, h, r)
	return r ^ sign
}

// Cofactor returns f with variable v fixed to val. Results go through
// the computed cache keyed by (f, variable, val) — the variable, not
// its level — so entries stay valid across reordering: f|v=val does
// not depend on the order, even though the recursion walks the current
// one. Symmetry detection calls Cofactor O(n²) times; the shared cache
// makes those calls allocation-free and lets cofactors recomputed
// across variable pairs hit.
func (m *Manager) Cofactor(f Node, v int, val bool) Node {
	key := Node(2 * v)
	if val {
		key++
	}
	return m.cof(f, int32(m.levelOfVar[v]), key)
}

// cof recurses Cofactor; lv is the current level of the cofactored
// variable and key packs (variable, val) for the cache. Cofactoring
// commutes with complement, so the cache is probed with the regular
// edge and the sign reapplied on the result.
func (m *Manager) cof(n Node, lv int32, key Node) Node {
	r := m.nodes[n>>1]
	if r.level > lv {
		return n
	}
	s := n & 1
	if r.level == lv {
		if key&1 == 1 {
			return r.hi ^ s
		}
		return r.lo ^ s
	}
	n &^= 1
	if res, ok := m.cacheGet(opCof, n, key, 0); ok {
		if s != 0 {
			m.cHits++
		}
		return res ^ s
	}
	res := m.mk(int(r.level), m.cof(r.lo, lv, key), m.cof(r.hi, lv, key))
	m.cachePut(opCof, n, key, 0, res)
	return res ^ s
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Node, vars []int) Node {
	quant := make([]bool, m.NumVars())
	maxLvl := -1
	for _, v := range vars {
		quant[m.levelOfVar[v]] = true
		if m.levelOfVar[v] > maxLvl {
			maxLvl = m.levelOfVar[v]
		}
	}
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		nl := m.Level(n)
		if nl > maxLvl {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		lo, hi := rec(m.Lo(n)), rec(m.Hi(n))
		var r Node
		if quant[nl] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(nl, lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment indexed by variable.
func (m *Manager) Eval(f Node, assign []bool) bool {
	for f > True {
		r := m.nodes[f>>1]
		if assign[m.varAtLevel[r.level]] {
			f = r.hi ^ (f & 1)
		} else {
			f = r.lo ^ (f & 1)
		}
	}
	return f == True
}

// beginVisit starts a new traversal epoch; a slot is considered visited
// in the current traversal iff visited[slot] == epoch.
func (m *Manager) beginVisit() {
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps could collide, reset all
		for i := range m.visited {
			m.visited[i] = 0
		}
		m.epoch = 1
	}
}

// Support returns the variables f depends on, in current level order.
func (m *Manager) Support(f Node) []int {
	inSup := make([]bool, m.NumVars())
	m.beginVisit()
	stack := m.stack[:0]
	if f > True {
		m.visited[f>>1] = m.epoch
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := m.nodes[n>>1]
		inSup[r.level] = true
		for _, c := range [2]Node{r.lo, r.hi} {
			if c > True && m.visited[c>>1] != m.epoch {
				m.visited[c>>1] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]
	var out []int
	for l := 0; l < m.NumVars(); l++ {
		if inSup[l] {
			out = append(out, m.varAtLevel[l])
		}
	}
	return out
}

// NodeCount returns the number of distinct non-terminal arena slots
// reachable from the given roots (the shared size of the function set;
// a slot and its complement count once). It allocates nothing, so the
// sifting loops can call it after every swap.
func (m *Manager) NodeCount(roots ...Node) int {
	m.beginVisit()
	stack := m.stack[:0]
	for _, r := range roots {
		if r > True && m.visited[r>>1] != m.epoch {
			m.visited[r>>1] = m.epoch
			stack = append(stack, r)
		}
	}
	count := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		r := m.nodes[n>>1]
		for _, c := range [2]Node{r.lo, r.hi} {
			if c > True && m.visited[c>>1] != m.epoch {
				m.visited[c>>1] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]
	return count
}

// SatCount returns the number of satisfying assignments of f over all
// variables of the manager as a float64 (exact below 2^53).
//
// With c(n) defined as the count over variables at levels in
// [level(n), NumVars()), the recurrence is
//
//	c(terminal) = 0 or 1
//	c(n) = c(lo)*2^(level(lo)-level(n)-1) + c(hi)*2^(level(hi)-level(n)-1)
//
// and SatCount(f) = c(f) * 2^level(f). Terminals carry level NumVars(),
// which makes the recurrence uniform; the memo keys on the full edge,
// so both polarities of a slot get their own (complementary) counts.
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var c func(nd Node) float64
	c = func(nd Node) float64 {
		if nd == False {
			return 0
		}
		if nd == True {
			return 1
		}
		if r, ok := memo[nd]; ok {
			return r
		}
		lo, hi := m.Lo(nd), m.Hi(nd)
		lvl := m.Level(nd)
		r := c(lo)*pow2(m.Level(lo)-lvl-1) +
			c(hi)*pow2(m.Level(hi)-lvl-1)
		memo[nd] = r
		return r
	}
	return c(f) * pow2(m.Level(f))
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// String renders a small summary.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd{vars:%d nodes:%d free:%d}", m.NumVars(), len(m.nodes), len(m.free))
}

// AnySat returns one satisfying assignment of f (indexed by variable,
// unconstrained variables false), or ok=false when f is unsatisfiable.
func (m *Manager) AnySat(f Node) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.NumVars())
	for !m.IsTerminal(f) {
		if m.Lo(f) != False {
			f = m.Lo(f)
		} else {
			assign[m.TopVar(f)] = true
			f = m.Hi(f)
		}
	}
	return assign, true
}
