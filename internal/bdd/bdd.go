// Package bdd implements reduced ordered binary decision diagrams with an
// in-place variable-reordering engine (adjacent-level swap, Rudell-style
// sifting, and Panda–Somenzi symmetric sifting). It plays the role CUDD
// plays in the paper's implementation, and borrows CUDD's storage layout:
// a single flat open-addressing unique table keyed by (level, lo, hi), a
// fixed-size lossy computed cache (direct-mapped, overwrite on collision),
// and a mark-and-sweep GC whose reclaimed arena slots feed a freelist so
// the arena stops growing once the working set stabilizes.
//
// A Manager owns an arena of nodes; Node values are indices into that
// arena and remain stable across reordering (a swap rewrites node
// structure in place, never node identity), so callers can hold Nodes
// across Sift calls. GC(roots) frees every node unreachable from roots;
// a Node held by a caller survives any GC whose root set (transitively)
// covers it, and a freed slot is only ever handed out again by mk, so a
// live Node is never silently rebound to a different function. There are
// no complement edges.
package bdd

import (
	"fmt"
	"unsafe"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// ErrNodeLimit reports that a hard node cap installed with SetNodeLimit
// was exceeded. It wraps pipeline.ErrBudgetExceeded so the cap reads as
// a budget failure everywhere the engine classifies errors. Because mk
// sits at the bottom of deep recursions that cannot thread an error
// return, the cap surfaces as a panic carrying an ErrNodeLimit-matching
// error value; the pipeline stage boundaries (and the public entry
// points) recover it back into a plain error — the same longjmp-style
// unwinding CUDD uses for its memory cap.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded: %w", pipeline.ErrBudgetExceeded)

// Node identifies a BDD function within its Manager. The two terminals
// are False and True.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

// nodeRec is one arena slot. Live nodes carry the level of their top
// variable (terminals use nVars); slots on the freelist carry freeLevel.
type nodeRec struct {
	level  int32
	lo, hi Node
}

// freeLevel marks an arena slot that has been reclaimed by GC and is
// waiting on the freelist. No live node ever has a negative level.
const freeLevel int32 = -1

// Operation tags for the computed cache. 0 marks an empty cache slot.
const (
	opAnd = iota + 1
	opOr
	opXor
	opIte
	opCof
)

// Manager is a BDD node arena with a variable order. Variable indices are
// permanent names; levels are positions in the current order (level 0 is
// the top). The zero value is not usable; call New.
type Manager struct {
	nodes []nodeRec
	free  []Node // reclaimed arena slots, reused LIFO by mk

	// unique is the flat open-addressing unique table: power-of-two
	// sized, linear probing, rebuilt (never tombstoned) on growth.
	// Entries are arena indices keyed by the node's (level, lo, hi);
	// 0 is the empty-slot sentinel (False never enters the table).
	unique     []Node
	uniqueUsed int

	// cache is the lossy computed cache shared by apply and Ite:
	// direct-mapped, one probe per lookup, overwrite on collision.
	cache []cacheEntry

	// visited/epoch implement allocation-free traversals: slot i is
	// marked in the current traversal iff visited[i] == epoch.
	visited []uint32
	epoch   uint32
	stack   []Node // scratch stack for iterative traversals

	// Scratch buffers for SwapAdjacent's two level snapshots.
	swapL, swapL1 []Node
	swapRw        []bool

	varAtLevel []int
	levelOfVar []int
	interrupt  func() error // polled by the sifting loops; non-nil result aborts
	nodeLimit  int          // hard cap on allocated nodes; 0 = unlimited

	// Lifetime storage statistics, maintained unconditionally (the
	// manager is single-goroutine, so these are plain ints).
	hits, misses int64 // computed-cache probes
	peak         int   // high-water allocated node count (arena − freelist)

	// Values last flushed to the obs counters, so flushes add deltas.
	flushedHits, flushedMisses int64

	// Observability hooks (all nil when unobserved; every use is
	// nil-safe, so the unobserved cost is a single pointer test on the
	// cold paths and nothing on the node-creation fast path).
	span    *obs.Span    // parent for per-round sifting spans
	mSwaps  *obs.Counter // obs.MBDDReorderSwaps
	mLive   *obs.Gauge   // obs.MBDDLiveNodes
	mArena  *obs.Gauge   // obs.MBDDArenaBytes
	mHits   *obs.Counter // obs.MBDDCacheHits
	mMisses *obs.Counter // obs.MBDDCacheMisses
	mLoad   *obs.Gauge   // obs.MBDDUniqueLoad
	mFree   *obs.Gauge   // obs.MBDDFreeNodes
}

// SetInterrupt installs a callback polled by the reordering loops
// (Sift, SiftSymmetric). When it returns a non-nil error, sifting
// stops early — parking any in-flight variable or block at its best
// position so the order stays consistent — and returns the node count
// reached so far. Callers that care about the reason re-check their
// own budget after the sift returns. Pass nil to remove the hook.
func (m *Manager) SetInterrupt(check func() error) { m.interrupt = check }

// SetNodeLimit installs a hard cap on allocated nodes (arena minus
// freelist). When arena growth would push the allocation past the cap,
// mk panics with an error matching ErrNodeLimit (and therefore
// pipeline.ErrBudgetExceeded); run the manager under a pipeline stage
// or a pipeline.RecoverTo boundary to receive it as an error. The cap
// bounds memory even where the soft interrupt-based budget checks are
// too coarse (e.g. one giant apply between polls). Zero removes it.
func (m *Manager) SetNodeLimit(n int) { m.nodeLimit = n }

// stopped reports whether the interrupt hook requests an abort.
func (m *Manager) stopped() bool {
	return m.interrupt != nil && m.interrupt() != nil
}

// SetObserver attaches observability to the manager: sifting rounds
// open "bdd.sift" child spans under span, and the manager keeps the
// bdd.live_nodes / bdd.arena_bytes / bdd.free_nodes /
// bdd.unique_load_pct gauges and the bdd.reorder_swaps /
// bdd.cache_hits / bdd.cache_misses counters of reg current. Either
// argument may be nil; a fully nil observer restores the zero-overhead
// unobserved state.
func (m *Manager) SetObserver(span *obs.Span, reg *obs.Registry) {
	m.span = span
	m.mSwaps = reg.Counter(obs.MBDDReorderSwaps)
	m.mLive = reg.Gauge(obs.MBDDLiveNodes)
	m.mArena = reg.Gauge(obs.MBDDArenaBytes)
	m.mHits = reg.Counter(obs.MBDDCacheHits)
	m.mMisses = reg.Counter(obs.MBDDCacheMisses)
	m.mLoad = reg.Gauge(obs.MBDDUniqueLoad)
	m.mFree = reg.Gauge(obs.MBDDFreeNodes)
}

// nodeRecBytes is the arena cost per node reported on bdd.arena_bytes,
// derived from the real record so it cannot drift when nodeRec grows.
const nodeRecBytes = int64(unsafe.Sizeof(nodeRec{}))

// noteSize refreshes the size gauges and flushes the cache counters;
// called from the cold spots (GC, sift rounds) rather than mk so the
// fast path stays untouched.
func (m *Manager) noteSize() {
	if m.mLive == nil {
		return
	}
	m.mLive.Set(int64(len(m.nodes) - len(m.free)))
	m.mArena.Set(int64(len(m.nodes)) * nodeRecBytes)
	m.mFree.Set(int64(len(m.free)))
	m.mLoad.Set(m.loadPct())
	m.mHits.Add(m.hits - m.flushedHits)
	m.flushedHits = m.hits
	m.mMisses.Add(m.misses - m.flushedMisses)
	m.flushedMisses = m.misses
}

// loadPct returns the unique table's load factor as a percentage.
func (m *Manager) loadPct() int64 {
	return int64(m.uniqueUsed) * 100 / int64(len(m.unique))
}

// Stats is a point-in-time snapshot of the manager's storage layer,
// exposed for benchmarks and tests; it requires no observer.
type Stats struct {
	ArenaNodes  int   // arena slots, terminals and freelist slots included
	FreeNodes   int   // slots on the freelist awaiting reuse
	AllocNodes  int   // ArenaNodes − FreeNodes (live + not-yet-collected)
	PeakNodes   int   // high-water AllocNodes over the manager's lifetime
	UniqueSlots int   // open-addressing table capacity
	UniqueUsed  int   // populated table slots
	CacheSlots  int   // computed-cache capacity
	CacheHits   int64 // computed-cache hits since New
	CacheMisses int64 // computed-cache misses since New
}

// Stats returns the manager's current storage statistics.
func (m *Manager) Stats() Stats {
	return Stats{
		ArenaNodes:  len(m.nodes),
		FreeNodes:   len(m.free),
		AllocNodes:  len(m.nodes) - len(m.free),
		PeakNodes:   m.peak,
		UniqueSlots: len(m.unique),
		UniqueUsed:  m.uniqueUsed,
		CacheSlots:  len(m.cache),
		CacheHits:   m.hits,
		CacheMisses: m.misses,
	}
}

// New creates a manager with nVars variables, variable i initially at
// level i.
func New(nVars int) *Manager {
	m := &Manager{
		nodes:   make([]nodeRec, 2, 1024),
		visited: make([]uint32, 2, 1024),
		unique:  make([]Node, minUniqueSlots),
		cache:   make([]cacheEntry, minCacheSlots),
		peak:    2,
	}
	m.nodes[False] = nodeRec{level: int32(nVars)}
	m.nodes[True] = nodeRec{level: int32(nVars)}
	for i := 0; i < nVars; i++ {
		m.varAtLevel = append(m.varAtLevel, i)
		m.levelOfVar = append(m.levelOfVar, i)
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return len(m.varAtLevel) }

// NumNodes returns the arena size (including terminals and free slots).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// VarAtLevel returns the variable currently at the given level.
func (m *Manager) VarAtLevel(l int) int { return m.varAtLevel[l] }

// LevelOfVar returns the current level of variable v.
func (m *Manager) LevelOfVar(v int) int { return m.levelOfVar[v] }

// Order returns the current variable order, top to bottom.
func (m *Manager) Order() []int { return append([]int(nil), m.varAtLevel...) }

// IsTerminal reports whether n is a terminal node.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Level returns the level of node n's top variable; terminals return
// NumVars().
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// TopVar returns the variable index labeling node n.
func (m *Manager) TopVar(n Node) int { return m.varAtLevel[m.nodes[n].level] }

// Lo returns the low (variable = 0) child of n.
func (m *Manager) Lo(n Node) Node { return m.nodes[n].lo }

// Hi returns the high (variable = 1) child of n.
func (m *Manager) Hi(n Node) Node { return m.nodes[n].hi }

// Var returns the function of variable v.
func (m *Manager) Var(v int) Node {
	return m.mk(m.levelOfVar[v], False, True)
}

// NVar returns the function NOT v.
func (m *Manager) NVar(v int) Node {
	return m.mk(m.levelOfVar[v], True, False)
}

// mk returns the canonical node (level, lo, hi): the unique-table entry
// when one exists, otherwise a fresh node allocated from the freelist
// (or by growing the arena when the freelist is empty).
func (m *Manager) mk(level int, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	i := hashKey(int32(level), lo, hi) & mask
	for {
		e := m.unique[i]
		if e == 0 {
			break
		}
		if r := &m.nodes[e]; r.level == int32(level) && r.lo == lo && r.hi == hi {
			return e
		}
		i = (i + 1) & mask
	}
	var n Node
	if k := len(m.free) - 1; k >= 0 {
		n = m.free[k]
		m.free = m.free[:k]
		m.nodes[n] = nodeRec{level: int32(level), lo: lo, hi: hi}
	} else {
		// Arena growth is the only path that takes new memory, so the
		// hard cap and the allocation-failure fault point live here;
		// freelist reuse stays untouched.
		if err := fault.Point(fault.PointBDDMk); err != nil {
			panic(err)
		}
		if alloc := len(m.nodes); m.nodeLimit > 0 && alloc >= m.nodeLimit {
			panic(fmt.Errorf("%w: %d allocated nodes", ErrNodeLimit, alloc))
		}
		n = Node(len(m.nodes))
		m.nodes = append(m.nodes, nodeRec{level: int32(level), lo: lo, hi: hi})
		m.visited = append(m.visited, 0)
	}
	m.unique[i] = n
	m.uniqueUsed++
	if alloc := len(m.nodes) - len(m.free); alloc > m.peak {
		m.peak = alloc
	}
	if 4*m.uniqueUsed > 3*len(m.unique) {
		m.growUnique()
		m.growCache()
	}
	return n
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node { return m.Xor(f, True) }

// And returns f AND g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Node) Node { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Xnor returns NOT (f XOR g).
func (m *Manager) Xnor(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Node) Node { return m.Or(m.Not(f), g) }

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Node) Node { return m.And(f, m.Not(g)) }

func (m *Manager) apply(op int32, f, g Node) Node {
	// Terminal cases.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return False
		}
		if f == True && g == True {
			return False
		}
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(op, f, g, 0); ok {
		return r
	}
	lf, lg := m.nodes[f].level, m.nodes[g].level
	top := lf
	if lg < top {
		top = lg
	}
	f0, f1 := f, f
	if lf == top {
		f0, f1 = m.nodes[f].lo, m.nodes[f].hi
	}
	g0, g1 := g, g
	if lg == top {
		g0, g1 = m.nodes[g].lo, m.nodes[g].hi
	}
	r := m.mk(int(top), m.apply(op, f0, g0), m.apply(op, f1, g1))
	m.cachePut(op, f, g, 0, r)
	return r
}

// Ite returns "if f then g else h".
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheGet(opIte, f, g, h); ok {
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	cof := func(n Node) (Node, Node) {
		if m.nodes[n].level == top {
			return m.nodes[n].lo, m.nodes[n].hi
		}
		return n, n
	}
	f0, f1 := cof(f)
	g0, g1 := cof(g)
	h0, h1 := cof(h)
	r := m.mk(int(top), m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.cachePut(opIte, f, g, h, r)
	return r
}

// Cofactor returns f with variable v fixed to val. Results go through
// the computed cache keyed by (f, variable, val) — the variable, not
// its level — so entries stay valid across reordering: f|v=val does
// not depend on the order, even though the recursion walks the current
// one. Symmetry detection calls Cofactor O(n²) times; the shared cache
// makes those calls allocation-free and lets cofactors recomputed
// across variable pairs hit.
func (m *Manager) Cofactor(f Node, v int, val bool) Node {
	key := Node(2 * v)
	if val {
		key++
	}
	return m.cof(f, int32(m.levelOfVar[v]), key)
}

// cof recurses Cofactor; lv is the current level of the cofactored
// variable and key packs (variable, val) for the cache.
func (m *Manager) cof(n Node, lv int32, key Node) Node {
	r := m.nodes[n]
	if r.level > lv {
		return n
	}
	if r.level == lv {
		if key&1 == 1 {
			return r.hi
		}
		return r.lo
	}
	if res, ok := m.cacheGet(opCof, n, key, 0); ok {
		return res
	}
	res := m.mk(int(r.level), m.cof(r.lo, lv, key), m.cof(r.hi, lv, key))
	m.cachePut(opCof, n, key, 0, res)
	return res
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Node, vars []int) Node {
	quant := make([]bool, m.NumVars())
	maxLvl := -1
	for _, v := range vars {
		quant[m.levelOfVar[v]] = true
		if m.levelOfVar[v] > maxLvl {
			maxLvl = m.levelOfVar[v]
		}
	}
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		nl := int(m.nodes[n].level)
		if nl > maxLvl {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		lo, hi := rec(m.nodes[n].lo), rec(m.nodes[n].hi)
		var r Node
		if quant[nl] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(nl, lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment indexed by variable.
func (m *Manager) Eval(f Node, assign []bool) bool {
	for !m.IsTerminal(f) {
		if assign[m.TopVar(f)] {
			f = m.nodes[f].hi
		} else {
			f = m.nodes[f].lo
		}
	}
	return f == True
}

// beginVisit starts a new traversal epoch; a slot is considered visited
// in the current traversal iff visited[slot] == epoch.
func (m *Manager) beginVisit() {
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps could collide, reset all
		for i := range m.visited {
			m.visited[i] = 0
		}
		m.epoch = 1
	}
}

// Support returns the variables f depends on, in current level order.
func (m *Manager) Support(f Node) []int {
	inSup := make([]bool, m.NumVars())
	m.beginVisit()
	stack := m.stack[:0]
	if !m.IsTerminal(f) {
		m.visited[f] = m.epoch
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inSup[m.nodes[n].level] = true
		for _, c := range [2]Node{m.nodes[n].lo, m.nodes[n].hi} {
			if c > True && m.visited[c] != m.epoch {
				m.visited[c] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]
	var out []int
	for l := 0; l < m.NumVars(); l++ {
		if inSup[l] {
			out = append(out, m.varAtLevel[l])
		}
	}
	return out
}

// NodeCount returns the number of distinct non-terminal nodes reachable
// from the given roots (the shared size of the function set). It
// allocates nothing, so the sifting loops can call it after every swap.
func (m *Manager) NodeCount(roots ...Node) int {
	m.beginVisit()
	stack := m.stack[:0]
	for _, r := range roots {
		if r > True && m.visited[r] != m.epoch {
			m.visited[r] = m.epoch
			stack = append(stack, r)
		}
	}
	count := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, c := range [2]Node{m.nodes[n].lo, m.nodes[n].hi} {
			if c > True && m.visited[c] != m.epoch {
				m.visited[c] = m.epoch
				stack = append(stack, c)
			}
		}
	}
	m.stack = stack[:0]
	return count
}

// SatCount returns the number of satisfying assignments of f over all
// variables of the manager as a float64 (exact below 2^53).
//
// With c(n) defined as the count over variables at levels in
// [level(n), NumVars()), the recurrence is
//
//	c(terminal) = 0 or 1
//	c(n) = c(lo)*2^(level(lo)-level(n)-1) + c(hi)*2^(level(hi)-level(n)-1)
//
// and SatCount(f) = c(f) * 2^level(f). Terminals carry level NumVars(),
// which makes the recurrence uniform.
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var c func(nd Node) float64
	c = func(nd Node) float64 {
		if nd == False {
			return 0
		}
		if nd == True {
			return 1
		}
		if r, ok := memo[nd]; ok {
			return r
		}
		lo, hi := m.nodes[nd].lo, m.nodes[nd].hi
		r := c(lo)*pow2(int(m.nodes[lo].level)-int(m.nodes[nd].level)-1) +
			c(hi)*pow2(int(m.nodes[hi].level)-int(m.nodes[nd].level)-1)
		memo[nd] = r
		return r
	}
	return c(f) * pow2(int(m.nodes[f].level))
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// String renders a small summary.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd{vars:%d nodes:%d free:%d}", m.NumVars(), len(m.nodes), len(m.free))
}

// AnySat returns one satisfying assignment of f (indexed by variable,
// unconstrained variables false), or ok=false when f is unsatisfiable.
func (m *Manager) AnySat(f Node) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.NumVars())
	for !m.IsTerminal(f) {
		if m.Lo(f) != False {
			f = m.Lo(f)
		} else {
			assign[m.TopVar(f)] = true
			f = m.Hi(f)
		}
	}
	return assign, true
}
