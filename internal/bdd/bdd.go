// Package bdd implements reduced ordered binary decision diagrams with an
// in-place variable-reordering engine (adjacent-level swap, Rudell-style
// sifting, and Panda–Somenzi symmetric sifting). It plays the role CUDD
// plays in the paper's implementation.
//
// A Manager owns an arena of nodes; Node values are indices into that
// arena and remain stable across reordering (a swap rewrites node
// structure in place, never node identity), so callers can hold Nodes
// across Sift calls. There are no complement edges and no garbage
// collection: dead nodes simply linger in the arena, which is fine at the
// problem sizes of this library.
package bdd

import (
	"fmt"

	"circuitfold/internal/obs"
)

// Node identifies a BDD function within its Manager. The two terminals
// are False and True.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeRec struct {
	level  int32 // level of the node's top variable; terminals use nVars
	lo, hi Node
}

type opKey struct {
	op   int32
	f, g Node
}

type iteKey struct {
	f, g, h Node
}

const (
	opAnd = iota + 1
	opOr
	opXor
)

// Manager is a BDD node arena with a variable order. Variable indices are
// permanent names; levels are positions in the current order (level 0 is
// the top). The zero value is not usable; call New.
type Manager struct {
	nodes      []nodeRec
	tables     []map[[2]Node]Node // unique table per level
	varAtLevel []int
	levelOfVar []int
	opCache    map[opKey]Node
	iteCache   map[iteKey]Node
	interrupt  func() error // polled by the sifting loops; non-nil result aborts

	// Observability hooks (all nil when unobserved; every use is
	// nil-safe, so the unobserved cost is a single pointer test on the
	// cold paths and nothing on the node-creation fast path).
	span   *obs.Span    // parent for per-round sifting spans
	mSwaps *obs.Counter // obs.MBDDReorderSwaps
	mLive  *obs.Gauge   // obs.MBDDLiveNodes
	mArena *obs.Gauge   // obs.MBDDArenaBytes
}

// SetInterrupt installs a callback polled by the reordering loops
// (Sift, SiftSymmetric). When it returns a non-nil error, sifting
// stops early — parking any in-flight variable or block at its best
// position so the order stays consistent — and returns the node count
// reached so far. Callers that care about the reason re-check their
// own budget after the sift returns. Pass nil to remove the hook.
func (m *Manager) SetInterrupt(check func() error) { m.interrupt = check }

// stopped reports whether the interrupt hook requests an abort.
func (m *Manager) stopped() bool {
	return m.interrupt != nil && m.interrupt() != nil
}

// SetObserver attaches observability to the manager: sifting rounds
// open "bdd.sift" child spans under span, and the manager keeps the
// bdd.live_nodes / bdd.arena_bytes gauges and the bdd.reorder_swaps
// counter of reg current. Either argument may be nil; a fully nil
// observer restores the zero-overhead unobserved state.
func (m *Manager) SetObserver(span *obs.Span, reg *obs.Registry) {
	m.span = span
	m.mSwaps = reg.Counter(obs.MBDDReorderSwaps)
	m.mLive = reg.Gauge(obs.MBDDLiveNodes)
	m.mArena = reg.Gauge(obs.MBDDArenaBytes)
}

// nodeRecBytes is the arena cost per node reported on bdd.arena_bytes.
const nodeRecBytes = 12 // int32 level + two int32 children

// noteSize refreshes the live-node and arena gauges; called from the
// cold spots (GC, sift rounds) rather than mk so the fast path stays
// untouched.
func (m *Manager) noteSize() {
	if m.mLive == nil {
		return
	}
	n := int64(len(m.nodes))
	m.mLive.Set(n)
	m.mArena.Set(n * nodeRecBytes)
}

// New creates a manager with nVars variables, variable i initially at
// level i.
func New(nVars int) *Manager {
	m := &Manager{
		nodes:    make([]nodeRec, 2, 1024),
		opCache:  make(map[opKey]Node),
		iteCache: make(map[iteKey]Node),
	}
	m.nodes[False] = nodeRec{level: int32(nVars)}
	m.nodes[True] = nodeRec{level: int32(nVars)}
	for i := 0; i < nVars; i++ {
		m.tables = append(m.tables, make(map[[2]Node]Node))
		m.varAtLevel = append(m.varAtLevel, i)
		m.levelOfVar = append(m.levelOfVar, i)
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return len(m.varAtLevel) }

// NumNodes returns the arena size (including terminals and dead nodes).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// VarAtLevel returns the variable currently at the given level.
func (m *Manager) VarAtLevel(l int) int { return m.varAtLevel[l] }

// LevelOfVar returns the current level of variable v.
func (m *Manager) LevelOfVar(v int) int { return m.levelOfVar[v] }

// Order returns the current variable order, top to bottom.
func (m *Manager) Order() []int { return append([]int(nil), m.varAtLevel...) }

// IsTerminal reports whether n is a terminal node.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Level returns the level of node n's top variable; terminals return
// NumVars().
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// TopVar returns the variable index labeling node n.
func (m *Manager) TopVar(n Node) int { return m.varAtLevel[m.nodes[n].level] }

// Lo returns the low (variable = 0) child of n.
func (m *Manager) Lo(n Node) Node { return m.nodes[n].lo }

// Hi returns the high (variable = 1) child of n.
func (m *Manager) Hi(n Node) Node { return m.nodes[n].hi }

// Var returns the function of variable v.
func (m *Manager) Var(v int) Node {
	return m.mk(m.levelOfVar[v], False, True)
}

// NVar returns the function NOT v.
func (m *Manager) NVar(v int) Node {
	return m.mk(m.levelOfVar[v], True, False)
}

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := [2]Node{lo, hi}
	if n, ok := m.tables[level][key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeRec{level: int32(level), lo: lo, hi: hi})
	m.tables[level][key] = n
	return n
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node { return m.Xor(f, True) }

// And returns f AND g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Node) Node { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Xnor returns NOT (f XOR g).
func (m *Manager) Xnor(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Node) Node { return m.Or(m.Not(f), g) }

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Node) Node { return m.And(f, m.Not(g)) }

func (m *Manager) apply(op int32, f, g Node) Node {
	// Terminal cases.
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return False
		}
		if f == True && g == True {
			return False
		}
	}
	if f > g {
		f, g = g, f
	}
	key := opKey{op, f, g}
	if r, ok := m.opCache[key]; ok {
		return r
	}
	lf, lg := m.nodes[f].level, m.nodes[g].level
	top := lf
	if lg < top {
		top = lg
	}
	f0, f1 := f, f
	if lf == top {
		f0, f1 = m.nodes[f].lo, m.nodes[f].hi
	}
	g0, g1 := g, g
	if lg == top {
		g0, g1 = m.nodes[g].lo, m.nodes[g].hi
	}
	r := m.mk(int(top), m.apply(op, f0, g0), m.apply(op, f1, g1))
	m.opCache[key] = r
	return r
}

// Ite returns "if f then g else h".
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	cof := func(n Node) (Node, Node) {
		if m.nodes[n].level == top {
			return m.nodes[n].lo, m.nodes[n].hi
		}
		return n, n
	}
	f0, f1 := cof(f)
	g0, g1 := cof(g)
	h0, h1 := cof(h)
	r := m.mk(int(top), m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.iteCache[key] = r
	return r
}

// Cofactor returns f with variable v fixed to val.
func (m *Manager) Cofactor(f Node, v int, val bool) Node {
	lv := m.levelOfVar[v]
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		nl := int(m.nodes[n].level)
		if nl > lv {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		var r Node
		if nl == lv {
			if val {
				r = m.nodes[n].hi
			} else {
				r = m.nodes[n].lo
			}
		} else {
			r = m.mk(nl, rec(m.nodes[n].lo), rec(m.nodes[n].hi))
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Node, vars []int) Node {
	quant := make([]bool, m.NumVars())
	maxLvl := -1
	for _, v := range vars {
		quant[m.levelOfVar[v]] = true
		if m.levelOfVar[v] > maxLvl {
			maxLvl = m.levelOfVar[v]
		}
	}
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		nl := int(m.nodes[n].level)
		if nl > maxLvl {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		lo, hi := rec(m.nodes[n].lo), rec(m.nodes[n].hi)
		var r Node
		if quant[nl] {
			r = m.Or(lo, hi)
		} else {
			r = m.mk(nl, lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment indexed by variable.
func (m *Manager) Eval(f Node, assign []bool) bool {
	for !m.IsTerminal(f) {
		if assign[m.TopVar(f)] {
			f = m.nodes[f].hi
		} else {
			f = m.nodes[f].lo
		}
	}
	return f == True
}

// Support returns the variables f depends on, in current level order.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	inSup := make([]bool, m.NumVars())
	var rec func(n Node)
	rec = func(n Node) {
		if m.IsTerminal(n) || seen[n] {
			return
		}
		seen[n] = true
		inSup[m.nodes[n].level] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	rec(f)
	var out []int
	for l := 0; l < m.NumVars(); l++ {
		if inSup[l] {
			out = append(out, m.varAtLevel[l])
		}
	}
	return out
}

// NodeCount returns the number of distinct non-terminal nodes reachable
// from the given roots (the shared size of the function set).
func (m *Manager) NodeCount(roots ...Node) int {
	seen := make(map[Node]bool)
	var rec func(n Node)
	rec = func(n Node) {
		if m.IsTerminal(n) || seen[n] {
			return
		}
		seen[n] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	for _, r := range roots {
		rec(r)
	}
	return len(seen)
}

// SatCount returns the number of satisfying assignments of f over all
// variables of the manager as a float64 (exact below 2^53).
//
// With c(n) defined as the count over variables at levels in
// [level(n), NumVars()), the recurrence is
//
//	c(terminal) = 0 or 1
//	c(n) = c(lo)*2^(level(lo)-level(n)-1) + c(hi)*2^(level(hi)-level(n)-1)
//
// and SatCount(f) = c(f) * 2^level(f). Terminals carry level NumVars(),
// which makes the recurrence uniform.
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var c func(nd Node) float64
	c = func(nd Node) float64 {
		if nd == False {
			return 0
		}
		if nd == True {
			return 1
		}
		if r, ok := memo[nd]; ok {
			return r
		}
		lo, hi := m.nodes[nd].lo, m.nodes[nd].hi
		r := c(lo)*pow2(int(m.nodes[lo].level)-int(m.nodes[nd].level)-1) +
			c(hi)*pow2(int(m.nodes[hi].level)-int(m.nodes[nd].level)-1)
		memo[nd] = r
		return r
	}
	return c(f) * pow2(int(m.nodes[f].level))
}

func pow2(k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= 2
	}
	return r
}

// String renders a small summary.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd{vars:%d nodes:%d}", m.NumVars(), len(m.nodes))
}

// AnySat returns one satisfying assignment of f (indexed by variable,
// unconstrained variables false), or ok=false when f is unsatisfiable.
func (m *Manager) AnySat(f Node) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.NumVars())
	for !m.IsTerminal(f) {
		if m.Lo(f) != False {
			f = m.Lo(f)
		} else {
			assign[m.TopVar(f)] = true
			f = m.Hi(f)
		}
	}
	return assign, true
}
