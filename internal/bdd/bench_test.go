package bdd

import (
	"math/rand"
	"testing"
)

// benchAdder builds the w-bit ripple-carry adder sum outputs over 2w
// variables (a classic BDD workload: linear-sized under the interleaved
// order the manager starts in).
func benchAdder(m *Manager, w int) []Node {
	outs := make([]Node, 0, w+1)
	carry := False
	for i := 0; i < w; i++ {
		a, b := m.Var(2*i), m.Var(2*i+1)
		sum := m.Xor(m.Xor(a, b), carry)
		carry = m.Or(m.And(a, b), m.And(carry, m.Xor(a, b)))
		outs = append(outs, sum)
	}
	return append(outs, carry)
}

// BenchmarkBDDApply measures the binary-apply hot path (mk + unique
// probe + computed cache) by rebuilding an adder from scratch per
// iteration on a persistent manager, so later iterations exercise cache
// hits and freelist reuse rather than cold growth.
func BenchmarkBDDApply(b *testing.B) {
	m := New(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs := benchAdder(m, 16)
		if i%32 == 31 {
			m.GC(outs)
		}
	}
	st := m.Stats()
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(total)*100, "cachehit%")
	}
}

// BenchmarkBDDITE measures the ternary path: random if-then-else
// compositions over a pool of shared functions.
func BenchmarkBDDITE(b *testing.B) {
	m := New(24)
	rng := rand.New(rand.NewSource(3))
	pool := make([]Node, 0, 64)
	for i := 0; i < 24; i++ {
		pool = append(pool, m.Var(i))
	}
	for i := 0; i < 40; i++ {
		f := pool[rng.Intn(len(pool))]
		g := pool[rng.Intn(len(pool))]
		pool = append(pool, m.Xor(f, g))
	}
	roots := append([]Node(nil), pool...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pool[i%len(pool)]
		g := pool[(i*7+1)%len(pool)]
		h := pool[(i*13+2)%len(pool)]
		m.Ite(f, g, h)
		if i%1024 == 1023 {
			m.GC(roots)
		}
	}
}

// BenchmarkBDDSift measures reordering: a 16-variable comparator built
// under the worst (blocked) order, sifted to the good (interleaved)
// order each iteration. Dominated by SwapAdjacent's in-place unique
// table rewrite plus the per-swap NodeCount.
func BenchmarkBDDSift(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(16)
		eq := True
		for j := 0; j < 8; j++ {
			eq = m.And(eq, m.Xnor(m.Var(j), m.Var(8+j)))
		}
		m.Sift([]Node{eq}, 0, 15)
	}
}

// BenchmarkBDDGCReuse measures the collect-then-reallocate cycle: build
// garbage, mark-and-sweep it, and rebuild through the freelist.
func BenchmarkBDDGCReuse(b *testing.B) {
	m := New(16)
	rng := rand.New(rand.NewSource(9))
	keep := randomFunc(m, rng, 16, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i % 8)))
		randomFunc(m, r, 16, 100)
		m.GC([]Node{keep})
	}
	if m.Stats().FreeNodes == 0 && b.N > 1 {
		b.Fatal("expected freelist activity")
	}
}
