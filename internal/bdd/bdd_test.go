package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarAndEval(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	y := m.Var(1)
	f := m.And(x, m.Not(y))
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{true, true, false}, false},
		{[]bool{false, false, true}, false},
	}
	for _, c := range cases {
		if got := m.Eval(f, c.a); got != c.want {
			t.Fatalf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	// Build XOR two different ways.
	x1 := m.Xor(a, b)
	x2 := m.Or(m.And(a, m.Not(b)), m.And(m.Not(a), b))
	if x1 != x2 {
		t.Fatalf("xor built two ways differ: %d vs %d", x1, x2)
	}
	// De Morgan.
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Fatal("De Morgan violated")
	}
	// Double negation.
	if m.Not(m.Not(x1)) != x1 {
		t.Fatal("double negation violated")
	}
	// Ite equivalence.
	if m.Ite(a, b, m.Not(b)) != m.Xnor(a, b) {
		t.Fatal("ite(a,b,!b) != xnor")
	}
}

func TestConstants(t *testing.T) {
	m := New(2)
	a := m.Var(0)
	if m.And(a, False) != False || m.Or(a, True) != True {
		t.Fatal("constant absorption broken")
	}
	if m.And(a, True) != a || m.Or(a, False) != a {
		t.Fatal("constant identity broken")
	}
	if m.Xor(a, False) != a || m.Xor(a, True) != m.Not(a) {
		t.Fatal("xor constants broken")
	}
	if m.Implies(False, a) != True || m.Diff(a, a) != False {
		t.Fatal("implies/diff broken")
	}
}

func TestCofactor(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if m.Cofactor(f, 0, true) != m.Or(b, c) {
		t.Fatal("f|a=1 wrong")
	}
	if m.Cofactor(f, 0, false) != c {
		t.Fatal("f|a=0 wrong")
	}
	if m.Cofactor(f, 2, true) != True {
		t.Fatal("f|c=1 wrong")
	}
	// Cofactor on variable not in support is identity.
	g := m.And(a, b)
	if m.Cofactor(g, 2, true) != g {
		t.Fatal("cofactor on non-support var should be identity")
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	got := m.Exists(f, []int{0})
	want := m.Or(b, c)
	if got != want {
		t.Fatal("exists a wrong")
	}
	if m.Exists(f, []int{0, 1, 2}) != True {
		t.Fatal("full quantification of satisfiable f should be True")
	}
	if m.Exists(False, []int{0}) != False {
		t.Fatal("exists of False should be False")
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.Var(4))
	got := m.Support(f)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
	if s := m.Support(True); len(s) != 0 {
		t.Fatalf("support of constant = %v", s)
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(True) = %v", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(False) = %v", got)
	}
	if got := m.SatCount(a); got != 8 {
		t.Fatalf("SatCount(a) = %v", got)
	}
	if got := m.SatCount(m.And(a, b)); got != 4 {
		t.Fatalf("SatCount(a&b) = %v", got)
	}
	if got := m.SatCount(m.Xor(a, b)); got != 8 {
		t.Fatalf("SatCount(a^b) = %v", got)
	}
	// Var 3 only.
	if got := m.SatCount(m.Var(3)); got != 8 {
		t.Fatalf("SatCount(d) = %v", got)
	}
}

func TestCube(t *testing.T) {
	m := New(3)
	c := m.Cube([]int{0, 2}, []bool{true, false})
	if !m.Eval(c, []bool{true, true, false}) {
		t.Fatal("cube should accept a=1,c=0")
	}
	if m.Eval(c, []bool{true, true, true}) {
		t.Fatal("cube should reject c=1")
	}
	if m.SatCount(c) != 2 {
		t.Fatalf("cube satcount = %v", m.SatCount(c))
	}
}

// randomFunc builds a random BDD over n vars using a random expression.
func randomFunc(m *Manager, rng *rand.Rand, n, ops int) Node {
	pool := []Node{True, False}
	for i := 0; i < n; i++ {
		pool = append(pool, m.Var(i))
	}
	for i := 0; i < ops; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var r Node
		switch rng.Intn(4) {
		case 0:
			r = m.And(a, b)
		case 1:
			r = m.Or(a, b)
		case 2:
			r = m.Xor(a, b)
		default:
			r = m.Not(a)
		}
		pool = append(pool, r)
	}
	return pool[len(pool)-1]
}

// truthTable evaluates f on all 2^n assignments.
func truthTable(m *Manager, f Node, n int) []bool {
	tt := make([]bool, 1<<uint(n))
	assign := make([]bool, n)
	for v := range tt {
		for i := 0; i < n; i++ {
			assign[i] = v>>uint(i)&1 == 1
		}
		tt[v] = m.Eval(f, assign)
	}
	return tt
}

// checkInvariants verifies ROBDD structural invariants for live nodes:
// no redundant tests, level ordering, uniqueness of the stored
// (level, lo, hi) triples, and the canonical complement-edge form (the
// stored then-edge of every slot is regular).
func checkInvariants(t *testing.T, m *Manager, roots []Node) {
	t.Helper()
	seen := make(map[Node]bool)
	type key struct {
		l      int
		lo, hi Node
	}
	uniq := make(map[key]Node)
	var rec func(n Node)
	rec = func(n Node) {
		if m.IsTerminal(n) || seen[Regular(n)] {
			return
		}
		seen[Regular(n)] = true
		r := m.nodes[n>>1]
		if r.hi&1 != 0 {
			t.Fatalf("slot %d stores a complemented then-edge %d", n>>1, r.hi)
		}
		if r.lo == r.hi {
			t.Fatalf("node %d has lo == hi", n)
		}
		lo, hi := m.Lo(n), m.Hi(n)
		if m.Level(lo) <= m.Level(n) || m.Level(hi) <= m.Level(n) {
			t.Fatalf("node %d violates level ordering", n)
		}
		k := key{m.Level(n), r.lo, r.hi}
		if other, ok := uniq[k]; ok && other != Regular(n) {
			t.Fatalf("duplicate nodes %d and %d for %v", n, other, k)
		}
		uniq[k] = Regular(n)
		rec(lo)
		rec(hi)
	}
	for _, r := range roots {
		rec(r)
	}

	// Level-list consistency: every allocated non-terminal slot appears
	// exactly once on the list of the level its record carries.
	listed := make(map[Node]bool)
	for l, head := range m.levelList {
		steps := 0
		for e := head; e != 0; e = m.nodes[e>>1].next {
			if m.nodes[e>>1].level != int32(l) {
				t.Fatalf("slot %d on level list %d but records level %d", e>>1, l, m.nodes[e>>1].level)
			}
			if listed[e] {
				t.Fatalf("slot %d appears twice on level lists", e>>1)
			}
			listed[e] = true
			if steps++; steps > len(m.nodes) {
				t.Fatal("level list cycle")
			}
		}
	}
	onFree := make(map[Node]bool)
	for _, f := range m.free {
		onFree[f] = true
	}
	for i := 1; i < len(m.nodes); i++ {
		n := Node(i) << 1
		if !onFree[n] && !listed[n] {
			t.Fatalf("allocated slot %d missing from its level list", i)
		}
	}
}

func TestComplementEdgeBasics(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	nf := m.Not(f)
	if Regular(f) != Regular(nf) {
		t.Fatalf("f and NOT f should share a slot: %d vs %d", f, nf)
	}
	if IsComplement(f) == IsComplement(nf) {
		t.Fatal("f and NOT f should differ in polarity")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("terminal complement broken")
	}
	// A function and its complement count the same shared slots.
	g := m.Xor(a, m.And(b, m.Var(2)))
	if m.NodeCount(g) != m.NodeCount(m.Not(g)) {
		t.Fatalf("NodeCount(g)=%d, NodeCount(!g)=%d", m.NodeCount(g), m.NodeCount(m.Not(g)))
	}
	if m.NodeCount(g, m.Not(g)) != m.NodeCount(g) {
		t.Fatal("g and !g together should cost no extra slots")
	}
	// Cofactors commute with complement.
	if m.Cofactor(m.Not(g), 1, true) != m.Not(m.Cofactor(g, 1, true)) {
		t.Fatal("cofactor does not commute with complement")
	}
	// SatCount of complement is the complement count.
	if m.SatCount(g)+m.SatCount(m.Not(g)) != 16 {
		t.Fatalf("SatCount(g)=%v + SatCount(!g)=%v != 16", m.SatCount(g), m.SatCount(m.Not(g)))
	}
	checkInvariants(t, m, []Node{f, g, nf})
}

func TestComplementHitsCounterMoves(t *testing.T) {
	m := New(6)
	f := Regular(m.And(m.Var(0), m.Or(m.Var(1), m.Var(2))))
	g := Regular(m.Or(m.Var(3), m.And(m.Var(1), m.Var(4))))
	m.Xor(f, g)
	if h := m.Xor(m.Not(f), g); h != m.Not(m.Xor(f, g)) {
		t.Fatal("xor polarity algebra broken")
	}
	if m.Stats().ComplementHits == 0 {
		t.Fatal("complement-normalized xor repeat did not count a complement hit")
	}
}

func TestCloneIndependentAndIdentical(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(13))
	f := randomFunc(m, rng, 6, 40)
	g := randomFunc(m, rng, 6, 40)
	c := m.Clone()
	if c.LayoutHash() != m.LayoutHash() {
		t.Fatal("clone arena differs from source")
	}
	// Nodes carry over: same functions, same truth tables.
	for _, n := range []Node{f, g} {
		tm, tc := truthTable(m, n, 6), truthTable(c, n, 6)
		for v := range tm {
			if tm[v] != tc[v] {
				t.Fatalf("node %d differs between clone and source at %d", n, v)
			}
		}
	}
	// Identical op sequences keep identical layouts...
	r1 := m.And(f, m.Not(g))
	r2 := c.And(f, c.Not(g))
	if r1 != r2 || m.LayoutHash() != c.LayoutHash() {
		t.Fatalf("replayed op diverged: %d vs %d", r1, r2)
	}
	// ...and divergent work in the clone never touches the source.
	h0 := m.LayoutHash()
	for i := 0; i < 5; i++ {
		randomFunc(c, rng, 6, 30)
	}
	if m.LayoutHash() != h0 {
		t.Fatal("clone mutation leaked into the source manager")
	}
	checkInvariants(t, c, []Node{f, g, r2})
}

func TestSwapAdjacentPreservesFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		m := New(n)
		var roots []Node
		for i := 0; i < 3; i++ {
			roots = append(roots, randomFunc(m, rng, n, 25))
		}
		var before [][]bool
		for _, f := range roots {
			before = append(before, truthTable(m, f, n))
		}
		for s := 0; s < 20; s++ {
			m.SwapAdjacent(rng.Intn(n - 1))
			checkInvariants(t, m, roots)
		}
		for i, f := range roots {
			after := truthTable(m, f, n)
			for v := range after {
				if after[v] != before[i][v] {
					t.Fatalf("trial %d: function %d changed at minterm %d", trial, i, v)
				}
			}
		}
	}
}

func TestSwapAdjacentUpdatesOrder(t *testing.T) {
	m := New(3)
	m.SwapAdjacent(0)
	want := []int{1, 0, 2}
	for l, v := range want {
		if m.VarAtLevel(l) != v {
			t.Fatalf("order after swap = %v", m.Order())
		}
		if m.LevelOfVar(v) != l {
			t.Fatalf("levelOfVar inconsistent")
		}
	}
}

func TestOpsAfterSwaps(t *testing.T) {
	// New operations must be correct after reordering (caches, mk levels).
	rng := rand.New(rand.NewSource(99))
	n := 6
	m := New(n)
	f := randomFunc(m, rng, n, 30)
	g := randomFunc(m, rng, n, 30)
	ttF, ttG := truthTable(m, f, n), truthTable(m, g, n)
	for s := 0; s < 10; s++ {
		m.SwapAdjacent(rng.Intn(n - 1))
	}
	h := m.And(f, g)
	ttH := truthTable(m, h, n)
	for v := range ttH {
		if ttH[v] != (ttF[v] && ttG[v]) {
			t.Fatalf("AND after swaps wrong at %d", v)
		}
	}
	x := m.Xor(f, g)
	ttX := truthTable(m, x, n)
	for v := range ttX {
		if ttX[v] != (ttF[v] != ttG[v]) {
			t.Fatalf("XOR after swaps wrong at %d", v)
		}
	}
}

func TestSiftReducesInterleavedEquality(t *testing.T) {
	// f = (a0=b0) & (a1=b1) & (a2=b2) with order a0a1a2b0b1b2 is
	// exponential; sifting should find an interleaved order and shrink it.
	m := New(6)
	f := True
	for i := 0; i < 3; i++ {
		f = m.And(f, m.Xnor(m.Var(i), m.Var(3+i)))
	}
	before := m.NodeCount(f)
	tt := truthTable(m, f, 6)
	after := m.Sift([]Node{f}, 0, 5)
	if after >= before {
		t.Fatalf("sift did not reduce: %d -> %d", before, after)
	}
	checkInvariants(t, m, []Node{f})
	tt2 := truthTable(m, f, 6)
	for v := range tt {
		if tt[v] != tt2[v] {
			t.Fatalf("sift changed function at %d", v)
		}
	}
}

func TestSiftRespectsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	m := New(n)
	f := randomFunc(m, rng, n, 40)
	// Freeze levels 0..3, sift only 4..7.
	frozen := make([]int, 4)
	copy(frozen, m.Order()[:4])
	m.Sift([]Node{f}, 4, 7)
	now := m.Order()[:4]
	for i := range frozen {
		if now[i] != frozen[i] {
			t.Fatalf("sift moved frozen variables: %v -> %v", frozen, now)
		}
	}
}

func TestSiftRandomFunctionsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(3)
		m := New(n)
		roots := []Node{randomFunc(m, rng, n, 30), randomFunc(m, rng, n, 30)}
		var before [][]bool
		for _, f := range roots {
			before = append(before, truthTable(m, f, n))
		}
		m.Sift(roots, 0, n-1)
		checkInvariants(t, m, roots)
		for i, f := range roots {
			after := truthTable(m, f, n)
			for v := range after {
				if after[v] != before[i][v] {
					t.Fatalf("trial %d: sift changed function %d", trial, i)
				}
			}
		}
	}
}

func TestSymmetricDetection(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// Majority of a,b,c is totally symmetric.
	maj := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	if !m.Symmetric([]Node{maj}, 0, 1) || !m.Symmetric([]Node{maj}, 0, 2) || !m.Symmetric([]Node{maj}, 1, 2) {
		t.Fatal("majority should be symmetric in all pairs")
	}
	f := m.And(a, m.Not(b))
	if m.Symmetric([]Node{f}, 0, 1) {
		t.Fatal("a&!b is not symmetric in a,b")
	}
	// Symmetric in the pair not in support.
	if !m.Symmetric([]Node{maj}, 0, 3) == m.Symmetric([]Node{maj}, 0, 3) {
		// just exercise the call; membership of var 3 is not symmetric
		// with a support var unless the function ignores both.
		_ = f
	}
}

func TestSymmetryGroups(t *testing.T) {
	m := New(5)
	// f = (a+b+c >= 2) & (d ^ e): {a,b,c} symmetric, {d,e} symmetric.
	a, b, c, d, e := m.Var(0), m.Var(1), m.Var(2), m.Var(3), m.Var(4)
	maj := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	f := m.And(maj, m.Xor(d, e))
	groups := m.SymmetryGroups([]Node{f}, 0, 4)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[3] || !sizes[2] {
		t.Fatalf("group sizes wrong: %v", groups)
	}
}

func TestSiftSymmetricPreservesFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		n := 6
		m := New(n)
		roots := []Node{randomFunc(m, rng, n, 25)}
		before := truthTable(m, roots[0], n)
		m.SiftSymmetric(roots, 0, n-1)
		checkInvariants(t, m, roots)
		after := truthTable(m, roots[0], n)
		for v := range after {
			if after[v] != before[v] {
				t.Fatalf("trial %d: symmetric sift changed function", trial)
			}
		}
	}
}

func TestTranslate(t *testing.T) {
	src := New(3)
	f := src.Or(src.And(src.Var(0), src.Var(1)), src.Var(2))
	dst := New(6)
	vm := map[int]int{0: 3, 1: 4, 2: 5}
	g := src.Translate(dst, f, vm)
	for v := 0; v < 8; v++ {
		sa := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		da := []bool{false, false, false, sa[0], sa[1], sa[2]}
		if src.Eval(f, sa) != dst.Eval(g, da) {
			t.Fatalf("translate differs at %d", v)
		}
	}
}

func TestQuickSwapInvariance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := New(n)
		f := randomFunc(m, rng, n, 20)
		before := truthTable(m, f, n)
		for s := 0; s < 8; s++ {
			m.SwapAdjacent(rng.Intn(n - 1))
		}
		after := truthTable(m, f, n)
		for v := range after {
			if after[v] != before[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCountSharing(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Xor(b, c)
	g := m.And(a, f) // g = a ? f : 0, so f's nodes nest inside g
	cf := m.NodeCount(f)
	cg := m.NodeCount(g)
	both := m.NodeCount(f, g)
	if cg != cf+1 {
		t.Fatalf("count(g)=%d, want count(f)+1=%d", cg, cf+1)
	}
	if both != cg {
		t.Fatalf("shared count %d, expected %d (f within g)", both, cg)
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(1), m.Not(m.Var(3)))
	a, ok := m.AnySat(f)
	if !ok || !m.Eval(f, a) {
		t.Fatalf("AnySat returned a non-model: %v %v", a, ok)
	}
	if _, ok := m.AnySat(False); ok {
		t.Fatal("False should have no model")
	}
	a, ok = m.AnySat(True)
	if !ok || !m.Eval(True, a) {
		t.Fatal("True should have a model")
	}
}

func TestGCPreservesLiveFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 6
		m := New(n)
		// Create garbage alongside two live roots.
		var live []Node
		for i := 0; i < 30; i++ {
			f := randomFunc(m, rng, n, 15)
			if i%15 == 0 {
				live = append(live, f)
			}
		}
		var before [][]bool
		for _, f := range live {
			before = append(before, truthTable(m, f, n))
		}
		liveCount := m.GC(live)
		if liveCount != m.NodeCount(live...) {
			t.Fatalf("GC reported %d live, NodeCount says %d", liveCount, m.NodeCount(live...))
		}
		checkInvariants(t, m, live)
		for i, f := range live {
			after := truthTable(m, f, n)
			for v := range after {
				if after[v] != before[i][v] {
					t.Fatalf("trial %d: GC changed function %d", trial, i)
				}
			}
		}
		// New operations after GC must still be canonical and correct.
		g1 := m.And(live[0], m.Not(live[1]))
		g2 := m.Diff(live[0], live[1])
		if g1 != g2 {
			t.Fatal("post-GC canonicity broken")
		}
	}
}

func TestGCThenSwapStillSound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 6
	m := New(n)
	f := randomFunc(m, rng, n, 25)
	for i := 0; i < 10; i++ {
		randomFunc(m, rng, n, 10) // garbage
	}
	before := truthTable(m, f, n)
	m.GC([]Node{f})
	for s := 0; s < 12; s++ {
		m.SwapAdjacent(rng.Intn(n - 1))
	}
	checkInvariants(t, m, []Node{f})
	after := truthTable(m, f, n)
	for v := range after {
		if after[v] != before[v] {
			t.Fatalf("GC+swap changed function at %d", v)
		}
	}
}

func TestSiftWithHeavyGarbage(t *testing.T) {
	// Sifting must stay fast and correct when the manager carries far
	// more construction garbage than live nodes (the regression behind
	// the pin-scheduling hang).
	rng := rand.New(rand.NewSource(47))
	n := 10
	m := New(n)
	for i := 0; i < 200; i++ {
		randomFunc(m, rng, n, 20) // garbage
	}
	f := True
	for i := 0; i < 5; i++ {
		f = m.And(f, m.Xnor(m.Var(i), m.Var(5+i)))
	}
	before := m.NodeCount(f)
	after := m.SiftSymmetric([]Node{f}, 0, n-1)
	if after > before {
		t.Fatalf("sift grew the function: %d -> %d", before, after)
	}
	checkInvariants(t, m, []Node{f})
}

func TestQuickSatCountMatchesTruthTable(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := New(n)
		f := randomFunc(m, rng, n, 18)
		count := 0
		for _, b := range truthTable(m, f, n) {
			if b {
				count++
			}
		}
		return m.SatCount(f) == float64(count)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExistsIsDisjunctionOfCofactors(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := New(n)
		f := randomFunc(m, rng, n, 15)
		v := rng.Intn(n)
		return m.Exists(f, []int{v}) == m.Or(m.Cofactor(f, v, false), m.Cofactor(f, v, true))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShannonExpansion(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		m := New(n)
		f := randomFunc(m, rng, n, 15)
		v := rng.Intn(n)
		x := m.Var(v)
		recon := m.Or(m.And(x, m.Cofactor(f, v, true)), m.And(m.Not(x), m.Cofactor(f, v, false)))
		return recon == f
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
