package bdd

import (
	"sync"

	"circuitfold/internal/obs"
)

// Reset returns the manager to the observable state of New(nVars)
// while retaining its large allocations, so a pooled manager starts
// the next fold with a warm arena instead of growing from scratch.
//
// Everything that can influence behavior is restored exactly: the
// arena holds only the terminal, the freelist is empty, the unique
// table and the computed cache are back at their initial sizes (their
// sizes steer growth triggers and cache hit patterns, and hit patterns
// steer allocation order — a larger-than-fresh cache would give a
// pooled fold a different arena layout than a cold one), the variable
// order is the identity, and the interrupt hook, node limit, observer
// and statistics are cleared. Only capacities survive: the arena and
// visited backing arrays (the dominant allocation), the traversal
// stack, the swap scratch, the Translate memo (epoch-guarded, so its
// stale entries are unreachable) and the level/order slices. A fold on
// a Reset manager is therefore bit-identical to the same fold on a
// fresh one — the same guarantee Reserve documents: layout is a pure
// function of the manager's operation history.
func (m *Manager) Reset(nVars int) {
	m.nodes = m.nodes[:1]
	m.nodes[0] = nodeRec{level: int32(nVars)}
	m.free = m.free[:0]

	// The tables only ever grow, so slicing recovers the fresh length;
	// the retained prefix must be zeroed (it is live table state).
	m.unique = m.unique[:minUniqueSlots]
	for i := range m.unique {
		m.unique[i] = 0
	}
	m.uniqueUsed = 0
	m.cache = m.cache[:minCacheSlots]
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}

	// visited entries beyond the arena are re-appended as zero by mkReg,
	// so clearing the one live slot and restarting the epoch suffices.
	m.visited = m.visited[:1]
	m.visited[0] = 0
	m.epoch = 0
	m.stack = m.stack[:0]

	if cap(m.levelList) >= nVars {
		m.levelList = m.levelList[:nVars]
	} else {
		m.levelList = make([]Node, nVars)
	}
	for i := range m.levelList {
		m.levelList[i] = 0
	}
	m.varAtLevel = m.varAtLevel[:0]
	m.levelOfVar = m.levelOfVar[:0]
	for i := 0; i < nVars; i++ {
		m.varAtLevel = append(m.varAtLevel, i)
		m.levelOfVar = append(m.levelOfVar, i)
	}

	m.interrupt = nil
	m.nodeLimit = 0
	m.hits, m.misses, m.cHits = 0, 0, 0
	m.peak = 1
	m.flushedHits, m.flushedMisses, m.flushedCHits = 0, 0, 0
	m.span = nil
	m.mSwaps, m.mHits, m.mMisses, m.mCompl = nil, nil, nil, nil
	m.mLive, m.mArena, m.mFree, m.mLoad = nil, nil, nil, nil
}

// Pool recycles Managers across folds. Get hands out a Reset manager
// with a warm arena when one is available and a fresh one otherwise;
// Put returns a manager once no Node from it is referenced anymore.
// Because Reset restores the exact observable state of New, pooled and
// fresh managers run bit-identical folds; the pool only removes the
// allocation warm-up. All methods are safe for concurrent use (the
// hybrid engine folds clusters from several goroutines over one pool)
// and nil-safe: a nil *Pool degrades to plain New, so call sites can
// thread an optional pool unconditionally.
type Pool struct {
	mu    sync.Mutex
	free  []*Manager
	reuse *obs.Counter // obs.MBDDPoolReuse, nil when unobserved
}

// poolCap bounds the managers a Pool retains; beyond it, Put drops the
// manager for the GC. Folds use at most a handful of pooled managers
// at once (the schedule manager and the folding manager), so a small
// cap holds the working set without pinning worst-case arenas forever.
const poolCap = 8

// NewPool returns an empty manager pool.
func NewPool() *Pool { return &Pool{} }

// SetMetrics directs the pool's reuse counter (obs.MBDDPoolReuse):
// incremented every time Get serves a recycled arena instead of
// allocating. Nil (and a nil pool) disables counting.
func (p *Pool) SetMetrics(reuse *obs.Counter) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reuse = reuse
	p.mu.Unlock()
}

// Get returns a manager with nVars variables, recycling a pooled arena
// when one is available. On a nil pool it is exactly New(nVars).
func (p *Pool) Get(nVars int) *Manager {
	if p == nil {
		return New(nVars)
	}
	p.mu.Lock()
	var m *Manager
	if k := len(p.free) - 1; k >= 0 {
		m = p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
	}
	reuse := p.reuse
	p.mu.Unlock()
	if m == nil {
		return New(nVars)
	}
	m.Reset(nVars)
	reuse.Add(1)
	return m
}

// Put returns a manager to the pool. The caller must not hold any Node
// of m afterwards. Nil pools and nil managers are no-ops; a full pool
// drops m.
func (p *Pool) Put(m *Manager) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < poolCap {
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}
