package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestMinFrames(t *testing.T) {
	cases := []struct{ n, pins, want int }{
		{257, 200, 2}, {400, 200, 2}, {401, 200, 3}, {1296, 200, 7},
		{1204, 200, 7}, {1001, 200, 6}, {100, 200, 1}, {200, 200, 1},
	}
	for _, c := range cases {
		if got := MinFrames(c.n, c.pins); got != c.want {
			t.Fatalf("MinFrames(%d,%d) = %d, want %d", c.n, c.pins, got, c.want)
		}
	}
}

func TestTable2FramesMatchPaper(t *testing.T) {
	// The paper's #frm column is fully determined by the pin counts.
	want := map[string]int{
		"128-adder": 2, "b14_C": 2, "b15_C": 3, "b20_C": 3, "b21_C": 3,
		"b22_C": 4, "C7552": 2, "des": 2, "g1296": 7, "g216": 2,
		"g625": 4, "hyp": 2, "i2": 2, "i10": 2, "max": 3,
		"memctrl": 7, "voter": 6,
	}
	pis := map[string]int{
		"128-adder": 256, "b14_C": 276, "b15_C": 484, "b20_C": 521,
		"b21_C": 521, "b22_C": 766, "C7552": 207, "des": 256,
		"g1296": 1296, "g216": 216, "g625": 625, "hyp": 256, "i2": 201,
		"i10": 257, "max": 512, "memctrl": 1204, "voter": 1001,
	}
	for _, name := range Table2Circuits {
		if got := MinFrames(pis[name], PinLimit); got != want[name] {
			t.Fatalf("%s: frames = %d, want %d", name, got, want[name])
		}
	}
}

func TestConfigStrings(t *testing.T) {
	cases := []struct {
		cfg  functionalConfig
		want string
	}{
		{functionalConfig{true, true, 0}, "r/m/nat"},
		{functionalConfig{true, false, 1}, "r/nm/1hot"},
		{functionalConfig{false, true, 1}, "nr/m/1hot"},
		{functionalConfig{false, false, 0}, "nr/nm/nat"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Fatalf("config = %q, want %q", got, c.want)
		}
	}
}

func TestStatesString(t *testing.T) {
	if statesString(32, 2) != "32/2" || statesString(474, -1) != "474/-" {
		t.Fatal("statesString wrong")
	}
	r := Table3Row{States: 29, StatesMin: 14}
	if r.StatesString() != "29/14" {
		t.Fatal("row StatesString wrong")
	}
}

func TestPct(t *testing.T) {
	if pct(150, 100) != 50 || pct(80, 100) != -20 || pct(5, 0) != 0 {
		t.Fatal("pct wrong")
	}
	if reduction(100, 25) != 75 || reduction(0, 5) != 0 {
		t.Fatal("reduction wrong")
	}
}

func TestTable1Subset(t *testing.T) {
	rows, err := Table1([]string{"64-adder", "e64"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].PI != 128 || rows[1].PO != 65 {
		t.Fatalf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	FprintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "64-adder") {
		t.Fatal("render missing circuit name")
	}
}

func TestCaseStudyValues(t *testing.T) {
	cs, err := CaseStudyI10()
	if err != nil {
		t.Fatal(err)
	}
	if cs.UnfoldedCycles != 4 || cs.FoldedCycles != 3 || cs.Reduction != 0.25 {
		t.Fatalf("case study off: %+v", cs)
	}
	if cs.OutFirstFrame != 44 || cs.OutSecondFrame != 180 {
		t.Fatalf("output split %d/%d, want 44/180", cs.OutFirstFrame, cs.OutSecondFrame)
	}
	var buf bytes.Buffer
	FprintCaseStudy(&buf, cs)
	if !strings.Contains(buf.String(), "25%") {
		t.Fatalf("render missing reduction:\n%s", buf.String())
	}
}

func TestTable3EntryFastCircuit(t *testing.T) {
	opt := DefaultTable3Options()
	opt.Timeout = 10 * time.Second
	row, err := Table3Entry("e64", 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !row.OK {
		t.Fatal("e64 T=16 should complete")
	}
	if row.In != 5 {
		t.Fatalf("input pins = %d, want 5 (ceil(65/16))", row.In)
	}
	if row.FLUTs >= row.SLUTs {
		t.Fatalf("functional (%d LUTs) should beat structural (%d)", row.FLUTs, row.SLUTs)
	}
	if row.States != 29 {
		t.Fatalf("states = %d, want 29 as in the paper", row.States)
	}
	var buf bytes.Buffer
	FprintTable3(&buf, []Table3Row{row})
	if !strings.Contains(buf.String(), "e64") {
		t.Fatal("render missing circuit")
	}
	pts, err := Figure7([]Table3Row{row})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("figure 7 points = %d, want 2", len(pts))
	}
	var csv bytes.Buffer
	FprintFigure7(&csv, pts)
	if !strings.Contains(csv.String(), "functional,e64,16") {
		t.Fatalf("csv missing series:\n%s", csv.String())
	}
}

func TestTable3Adder64MatchesPaperStates(t *testing.T) {
	opt := DefaultTable3Options()
	row, err := Table3Entry("64-adder", 16, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !row.OK {
		t.Fatal("64-adder T=16 should complete")
	}
	// Paper Table III row 1: #state 32/2.
	if row.States != 32 {
		t.Fatalf("states = %d, want 32", row.States)
	}
	if row.StatesMin != 2 {
		t.Fatalf("minimized states = %d, want 2", row.StatesMin)
	}
	if row.In != 8 {
		t.Fatalf("input pins = %d, want 8", row.In)
	}
	if row.FFF >= row.SFF {
		t.Fatalf("functional FFs (%d) should beat structural (%d)", row.FFF, row.SFF)
	}
}
