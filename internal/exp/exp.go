// Package exp regenerates the paper's evaluation artifacts: Table I
// (benchmark statistics), Table II (structural folding under a 200-pin
// cap), the simple-baseline comparison, the i10 latency case study,
// Table III (structural vs functional methods) and Figure 7 (folded vs
// original circuit sizes). Both cmd/experiments and the top-level
// benchmarks drive these entry points.
package exp

import (
	"fmt"
	"io"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/gen"
	"circuitfold/internal/lutmap"
	"circuitfold/internal/tdm"
)

// PinLimit is the I/O pin constraint the paper takes from commercial
// FPGA specifications.
const PinLimit = 200

// sweepSizeLimit is the AND-count ceiling for running SAT sweeping as
// part of circuit optimization; beyond it only strash and balance run.
const sweepSizeLimit = 20000

// optimize runs the synthesis pipeline used before reporting sizes.
// Compared with aig.Optimize's defaults, more simulation words prune
// false equivalence candidates, counterexample refinement keeps the SAT
// call count low, and a small per-query budget keeps the sweep from
// dominating the harness runtime.
func optimize(g *aig.Graph) *aig.Graph {
	if g.NumAnds() > sweepSizeLimit {
		return g.Cleanup().Balance()
	}
	return g.Cleanup().Balance().Sweep(aig.SweepOptions{
		Words:          16,
		Workers:        0, // GOMAXPROCS
		MaxCEXRounds:   4,
		ConflictBudget: 300,
		Seed:           1,
	})
}

// luts maps to 6-input LUTs.
func luts(g *aig.Graph) int {
	opt := lutmap.DefaultOptions()
	if g.NumAnds() > sweepSizeLimit {
		opt.CutLimit = 4
		opt.Rounds = 1
	}
	m, err := lutmap.Map(g, opt)
	if err != nil {
		return -1 // K is fixed at 6 here; only a mapper bug reaches this
	}
	return m.LUTs
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Name  string
	PI    int
	PO    int
	Gates int
	LUTs  int
}

// Table1 builds the benchmark statistics table over the named circuits
// (pass nil for the full suite minus adder3, as in the paper).
func Table1(names []string) ([]Table1Row, error) {
	if names == nil {
		names = gen.Names()[1:] // skip the adder3 running example
	}
	rows := make([]Table1Row, 0, len(names))
	for _, n := range names {
		g, err := gen.Build(n)
		if err != nil {
			return nil, err
		}
		g = optimize(g)
		rows = append(rows, Table1Row{
			Name: n, PI: g.NumPIs(), PO: g.NumPOs(),
			Gates: g.NumAnds(), LUTs: luts(g),
		})
	}
	return rows, nil
}

// Table2Circuits lists the 17 benchmarks with more than 200 pins, in the
// paper's Table II order.
var Table2Circuits = []string{
	"128-adder", "b14_C", "b15_C", "b20_C", "b21_C", "b22_C", "C7552",
	"des", "g1296", "g216", "g625", "hyp", "i2", "i10", "max",
	"memctrl", "voter",
}

// MinFrames returns the smallest folding number T with ceil(n/T) <= pins.
func MinFrames(n, pins int) int {
	t := (n + pins - 1) / pins
	if t < 1 {
		t = 1
	}
	return t
}

// Table2Row is one line of Table II.
type Table2Row struct {
	Name     string
	Frames   int
	In       int
	Out      int
	FF       int
	Gates    int
	LUTs     int
	OrigLUTs int
	Overhead float64 // (LUTs-OrigLUTs)/OrigLUTs
}

// Table2 folds every >200-pin benchmark with the structural method at
// the smallest T meeting the pin limit (binary frame counter, as the
// paper's flip-flop counts imply) and reports the folded circuit sizes.
func Table2(pinLimit int) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(Table2Circuits))
	for _, name := range Table2Circuits {
		g, err := gen.Build(name)
		if err != nil {
			return nil, err
		}
		g = optimize(g)
		T := MinFrames(g.NumPIs(), pinLimit)
		r, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.Binary})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		folded := r.Seq.Transform(optimize)
		orig := luts(g)
		fl := luts(folded.G)
		rows = append(rows, Table2Row{
			Name: name, Frames: T, In: r.InputPins(), Out: r.OutputPins(),
			FF: folded.NumLatches(), Gates: folded.G.NumAnds(), LUTs: fl,
			OrigLUTs: orig, Overhead: pct(fl, orig),
		})
	}
	return rows, nil
}

// SimpleRow is one line of the simple-baseline comparison of Section VI.
type SimpleRow struct {
	Name           string
	Frames         int
	FF             int
	Out            int
	LUTs           int
	Overhead       float64
	StructFF       int
	StructOut      int
	StructOverhead float64
}

// SimpleBaseline folds the Table II circuits with the input-buffering
// baseline and reports its overheads next to the structural method's.
func SimpleBaseline(pinLimit int) ([]SimpleRow, error) {
	t2, err := Table2(pinLimit)
	if err != nil {
		return nil, err
	}
	rows := make([]SimpleRow, 0, len(t2))
	for _, s := range t2 {
		g, err := gen.Build(s.Name)
		if err != nil {
			return nil, err
		}
		g = optimize(g)
		r, err := core.SimpleFold(g, s.Frames)
		if err != nil {
			return nil, err
		}
		folded := r.Seq.Transform(optimize)
		fl := luts(folded.G)
		rows = append(rows, SimpleRow{
			Name: s.Name, Frames: s.Frames, FF: folded.NumLatches(),
			Out: r.OutputPins(), LUTs: fl, Overhead: pct(fl, s.OrigLUTs),
			StructFF: s.FF, StructOut: s.Out, StructOverhead: s.Overhead,
		})
	}
	return rows, nil
}

// CaseStudy holds the i10 latency analysis of Section VI.
type CaseStudy struct {
	Name           string
	Pins           int
	UnfoldedCycles int
	FoldedCycles   int
	Plan           []tdm.CyclePlan
	Reduction      float64
	FoldedIn       int
	FoldedOut      int
	OutFirstFrame  int
	OutSecondFrame int
}

// CaseStudyI10 reproduces the 25% I/O-cycle reduction analysis.
func CaseStudyI10() (*CaseStudy, error) {
	g, err := gen.Build("i10")
	if err != nil {
		return nil, err
	}
	r, err := core.StructuralFold(g, 2, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		return nil, err
	}
	folded, plan, err := tdm.FoldedCycles(r, PinLimit)
	if err != nil {
		return nil, err
	}
	unfolded := tdm.UnfoldedCycles(g.NumPIs(), g.NumPOs(), PinLimit)
	cs := &CaseStudy{
		Name: "i10", Pins: PinLimit,
		UnfoldedCycles: unfolded, FoldedCycles: folded, Plan: plan,
		Reduction: tdm.Reduction(unfolded, folded),
		FoldedIn:  r.InputPins(), FoldedOut: r.OutputPins(),
	}
	for _, dst := range r.OutSched[0] {
		if dst >= 0 {
			cs.OutFirstFrame++
		}
	}
	for _, dst := range r.OutSched[1] {
		if dst >= 0 {
			cs.OutSecondFrame++
		}
	}
	return cs, nil
}

func pct(folded, orig int) float64 {
	if orig == 0 {
		return 0
	}
	return float64(folded-orig) / float64(orig) * 100
}

// FprintTable1 renders Table I.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %6s %6s %8s %7s\n", "circuit", "#PI", "#PO", "#gate", "#LUT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %6d %8d %7d\n", r.Name, r.PI, r.PO, r.Gates, r.LUTs)
	}
}

// FprintTable2 renders Table II.
func FprintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %5s %5s %6s %6s %8s %7s %9s\n",
		"circuit", "#frm", "#in", "#out", "#FF", "#gate", "#LUT", "overhead")
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %5d %5d %6d %6d %8d %7d %8.2f%%\n",
			r.Name, r.Frames, r.In, r.Out, r.FF, r.Gates, r.LUTs, r.Overhead)
		sum += r.Overhead
	}
	fmt.Fprintf(w, "average LUT overhead: %.2f%%\n", sum/float64(len(rows)))
}

// FprintSimple renders the simple-baseline comparison.
func FprintSimple(w io.Writer, rows []SimpleRow) {
	fmt.Fprintf(w, "%-10s %5s | %8s %6s %9s | %8s %6s %9s\n",
		"circuit", "#frm", "smpl#FF", "#out", "overhead", "strc#FF", "#out", "overhead")
	sumS, sumT := 0.0, 0.0
	fewerFF, outRed := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %5d | %8d %6d %8.2f%% | %8d %6d %8.2f%%\n",
			r.Name, r.Frames, r.FF, r.Out, r.Overhead, r.StructFF, r.StructOut, r.StructOverhead)
		sumS += r.Overhead
		sumT += r.StructOverhead
		if r.FF < r.StructFF {
			fewerFF++
		}
		if r.StructOut < r.Out {
			outRed++
		}
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "average overhead: simple %.2f%%, structural %.2f%% (delta %.2f%%)\n",
		sumS/n, sumT/n, sumS/n-sumT/n)
	fmt.Fprintf(w, "simple uses fewer FFs on %d/%d; structural reduces output pins on %d/%d\n",
		fewerFF, len(rows), outRed, len(rows))
}

// FprintCaseStudy renders the i10 latency analysis.
func FprintCaseStudy(w io.Writer, cs *CaseStudy) {
	fmt.Fprintf(w, "case study %s at %d pins/cycle (TDM ratio 1):\n", cs.Name, cs.Pins)
	fmt.Fprintf(w, "  unfolded: %d I/O cycles\n", cs.UnfoldedCycles)
	fmt.Fprintf(w, "  folded (T=2, %d in / %d out pins; outputs %d+%d): %d I/O cycles\n",
		cs.FoldedIn, cs.FoldedOut, cs.OutFirstFrame, cs.OutSecondFrame, cs.FoldedCycles)
	for i, p := range cs.Plan {
		fmt.Fprintf(w, "    cycle %d: %d inputs, %d outputs\n", i+1, p.Inputs, p.Outputs)
	}
	fmt.Fprintf(w, "  I/O cycle reduction: %.0f%%\n", cs.Reduction*100)
}

// statesString renders the #state column ("32/2" or "32/-").
func statesString(states, statesMin int) string {
	if statesMin < 0 {
		return fmt.Sprintf("%d/-", states)
	}
	return fmt.Sprintf("%d/%d", states, statesMin)
}
