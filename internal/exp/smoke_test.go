package exp

import (
	"os"
	"testing"
)

// TestFullTables regenerates every table; it is the driver behind the
// recorded results in EXPERIMENTS.md. Guarded by an environment variable
// because it runs for minutes.
func TestFullTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full tables skipped in -short mode")
	}
	if os.Getenv("CIRCUITFOLD_FULL_TABLES") == "" {
		t.Skip("set CIRCUITFOLD_FULL_TABLES=1 to run the full table sweep")
	}
	rows1, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	FprintTable1(os.Stdout, rows1)
	rows2, err := Table2(PinLimit)
	if err != nil {
		t.Fatal(err)
	}
	FprintTable2(os.Stdout, rows2)
	simple, err := SimpleBaseline(PinLimit)
	if err != nil {
		t.Fatal(err)
	}
	FprintSimple(os.Stdout, simple)
	cs, err := CaseStudyI10()
	if err != nil {
		t.Fatal(err)
	}
	FprintCaseStudy(os.Stdout, cs)
	opt := DefaultTable3Options()
	opt.Progress = os.Stdout
	rows3, err := Table3(nil, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	FprintTable3(os.Stdout, rows3)
	pts, err := Figure7(rows3)
	if err != nil {
		t.Fatal(err)
	}
	FprintFigure7(os.Stdout, pts)
}
