package exp

import (
	"fmt"
	"io"
	"time"

	"circuitfold/internal/core"
	"circuitfold/internal/fsm"
	"circuitfold/internal/gen"
	"circuitfold/internal/pipeline"
)

// Table3Circuits lists the 11 benchmarks the paper compares the two
// methods on.
var Table3Circuits = []string{
	"64-adder", "apex2", "arbiter", "b17_C", "e64",
	"i2", "i3", "i4", "i6", "i7", "toolarge",
}

// Table3Frames are the folding numbers of Table III, largest first as in
// the paper.
var Table3Frames = []int{16, 8, 4}

// workersForExp parallelizes the harness's TFF runs with the same
// worker cap as core.DefaultFunctionalOptions; the folded machine is
// bit-identical for every worker count, so the tables don't change.
var workersForExp = core.DefaultFunctionalOptions().Workers

// Table3Row is one line of Table III: the structural and best functional
// results for one (circuit, T) pair. OK is false when every functional
// configuration hit its budget — the paper's "-" entries.
type Table3Row struct {
	Name   string
	Frames int
	In     int

	SOut, SGates, SLUTs, SFF int

	OK                 bool
	FOut               int
	States             int
	StatesMin          int // -1 when minimization was not applied
	FGates, FLUTs, FFF int
	LUTRed, FFRed      float64
	Config             string
	Runtime            time.Duration
	// Trace is the winning functional configuration's per-stage
	// pipeline trace (schedule, tff; minimize when it was applied).
	Trace *pipeline.Report
}

// StatesString renders the "#state" column, e.g. "32/2" or "474/-".
func (r Table3Row) StatesString() string { return statesString(r.States, r.StatesMin) }

// Table3Options bounds the per-configuration functional folding runs.
type Table3Options struct {
	// Timeout bounds scheduling+TFF per configuration (paper: 300 s).
	Timeout time.Duration
	// MinimizeTimeout bounds MeMin per configuration (paper: 300 s).
	MinimizeTimeout time.Duration
	// MaxStates aborts TFF beyond this many states.
	MaxStates int
	// Progress, when non-nil, receives one line per completed entry.
	Progress io.Writer
}

// DefaultTable3Options keeps the full sweep tractable on a laptop while
// reproducing the paper's timeout behavior qualitatively.
func DefaultTable3Options() Table3Options {
	return Table3Options{Timeout: 20 * time.Second, MinimizeTimeout: 10 * time.Second, MaxStates: 4000}
}

// functionalConfigs enumerates the configuration space of Table III's
// config column: input reordering, state minimization, encoding.
type functionalConfig struct {
	reorder  bool
	minimize bool
	enc      core.Encoding
}

func (c functionalConfig) String() string {
	s := "nr"
	if c.reorder {
		s = "r"
	}
	s += "/nm"
	if c.minimize {
		s = s[:len(s)-3] + "/m"
	}
	return s + "/" + c.enc.String()
}

// Table3Entry computes one row: the structural fold plus the best
// functional configuration (minimum LUTs, ties broken by flip-flops),
// mirroring the per-row config annotations of the paper.
func Table3Entry(name string, T int, opt Table3Options) (Table3Row, error) {
	g, err := gen.Build(name)
	if err != nil {
		return Table3Row{}, err
	}
	g = optimize(g)
	row := Table3Row{Name: name, Frames: T, StatesMin: -1}

	sr, err := core.StructuralFold(g, T, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		return row, err
	}
	sFolded := sr.Seq.Transform(optimize)
	row.In = sr.InputPins()
	row.SOut = sr.OutputPins()
	row.SGates = sFolded.G.NumAnds()
	row.SLUTs = luts(sFolded.G)
	row.SFF = sFolded.NumLatches()

	// The schedule and time-frame folding are shared across the
	// minimization and encoding variants of each reordering setting, so
	// the 8-configuration sweep costs two TFF runs, not eight. Each
	// reordering setting executes schedule+tff as a pipeline under one
	// budgeted run, so the per-stage timings land in the row's trace.
	best := -1
	for _, reorder := range []bool{true, false} {
		run := pipeline.NewRun(nil, pipeline.Budget{
			Wall:      opt.Timeout,
			BDDNodes:  4000000,
			MaxStates: opt.MaxStates,
		})
		var (
			sched   *core.Schedule
			machine *fsm.Machine
			states  int
		)
		rep, err := pipeline.Execute(run, "table3/functional",
			pipeline.Stage{Name: pipeline.StageSchedule, Run: func(ss *pipeline.StageStats) error {
				ss.AndsIn = g.NumAnds()
				var serr error
				sched, serr = core.PinScheduleRun(g, T, core.ScheduleOptions{Reorder: reorder}, run)
				return serr
			}},
			pipeline.Stage{Name: pipeline.StageTFF, Run: func(ss *pipeline.StageStats) error {
				var terr error
				machine, states, terr = core.TimeFrameFold(g, sched, workersForExp, run)
				ss.StatesOut = states
				return terr
			}},
		)
		if err != nil {
			continue
		}
		if machine.NumTransitions() > 60000 {
			// Encoding and mapping such a machine dominates the budget;
			// treat it like the paper's timeouts.
			continue
		}
		tffTime := rep.Total

		type variant struct {
			machine   *fsm.Machine
			statesMin int
			minimized bool
		}
		variants := []variant{{machine, -1, false}}
		mstart := time.Now()
		if mm, merr := fsm.Minimize(machine, fsm.MinimizeOptions{
			MaxAtoms:       2048,
			ConflictBudget: 200000,
			Timeout:        opt.MinimizeTimeout,
			MaxStates:      400,
		}); merr == nil {
			variants = append(variants, variant{mm, mm.NumStates(), true})
			rep.Stages = append(rep.Stages, pipeline.StageStats{
				Name: pipeline.StageMinimize, Start: rep.Total,
				Duration: time.Since(mstart),
				StatesIn: states, StatesOut: mm.NumStates(),
				AndsIn: -1, AndsOut: -1, BDDNodes: -1,
			})
		}
		minTime := time.Since(mstart)

		for _, v := range variants {
			for _, enc := range []core.Encoding{core.Binary, core.OneHot} {
				fenc := fsm.NaturalBinary
				if enc == core.OneHot {
					fenc = fsm.OneHotState
				}
				circuit, err := fsm.Encode(v.machine, fenc)
				if err != nil {
					continue
				}
				fFolded := circuit.Transform(optimize)
				l := luts(fFolded.G)
				ff := fFolded.NumLatches()
				if best < 0 || l < best || (l == best && ff < row.FFF) {
					best = l
					row.OK = true
					row.FOut = circuit.NumOutputs()
					row.States = states
					row.StatesMin = v.statesMin
					row.FGates = fFolded.G.NumAnds()
					row.FLUTs = l
					row.FFF = ff
					row.Config = functionalConfig{reorder, v.minimized, enc}.String()
					row.Runtime = tffTime
					if v.minimized {
						row.Runtime += minTime
					}
					row.Trace = rep
				}
			}
		}
	}
	if row.OK {
		row.LUTRed = reduction(row.SLUTs, row.FLUTs)
		row.FFRed = reduction(row.SFF, row.FFF)
	}
	return row, nil
}

// Table3 runs the full structural-vs-functional comparison. Progress is
// reported on opt.Progress when set.
func Table3(names []string, frames []int, opt Table3Options) ([]Table3Row, error) {
	if names == nil {
		names = Table3Circuits
	}
	if frames == nil {
		frames = Table3Frames
	}
	var rows []Table3Row
	for _, name := range names {
		for _, T := range frames {
			start := time.Now()
			row, err := Table3Entry(name, T, opt)
			if err != nil {
				return nil, fmt.Errorf("%s T=%d: %w", name, T, err)
			}
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "# %s T=%d done in %v (functional ok=%v)%s\n",
					name, T, time.Since(start).Round(time.Millisecond), row.OK, stageTimings(row.Trace))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// stageTimings renders a report's per-stage durations for progress
// lines, e.g. " [schedule 12ms, tff 340ms]".
func stageTimings(rep *pipeline.Report) string {
	if rep == nil || len(rep.Stages) == 0 {
		return ""
	}
	s := " ["
	for i, st := range rep.Stages {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %v", st.Name, st.Duration.Round(time.Millisecond))
	}
	return s + "]"
}

// reduction returns the percentage reduction of got versus base.
func reduction(base, got int) float64 {
	if base == 0 {
		return 0
	}
	return float64(base-got) / float64(base) * 100
}

// FprintTable3 renders Table III.
func FprintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-9s %4s %4s | %5s %6s %5s %5s | %5s %9s %6s %5s %5s %8s %8s %-10s %8s\n",
		"name", "#frm", "#in", "#out", "#gate", "#LUT", "#FF",
		"#out", "#state", "#gate", "#LUT", "#FF", "#LUTred", "#FFred", "config", "runtime")
	var lutSum, ffSum float64
	ok := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %4d %4d | %5d %6d %5d %5d | ",
			r.Name, r.Frames, r.In, r.SOut, r.SGates, r.SLUTs, r.SFF)
		if !r.OK {
			fmt.Fprintf(w, "%5s %9s %6s %5s %5s %8s %8s %-10s %8s\n",
				"-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%5d %9s %6d %5d %5d %7.2f%% %7.2f%% %-10s %7.2fs\n",
			r.FOut, r.StatesString(), r.FGates, r.FLUTs, r.FFF,
			r.LUTRed, r.FFRed, r.Config, r.Runtime.Seconds())
		lutSum += r.LUTRed
		ffSum += r.FFRed
		ok++
	}
	if ok > 0 {
		fmt.Fprintf(w, "functional completed %d/%d; average reductions: LUT %.2f%%, FF %.2f%%\n",
			ok, len(rows), lutSum/float64(ok), ffSum/float64(ok))
	}
}

// Figure7Point is one scatter point of Figure 7.
type Figure7Point struct {
	Name     string
	Frames   int
	Method   string // "structural" or "functional"
	OrigLUTs int
	FoldLUTs int
}

// Figure7 derives the circuit-size scatter data from Table III rows.
func Figure7(rows []Table3Row) ([]Figure7Point, error) {
	var pts []Figure7Point
	for _, r := range rows {
		g, err := gen.Build(r.Name)
		if err != nil {
			return nil, err
		}
		orig := luts(optimize(g))
		pts = append(pts, Figure7Point{r.Name, r.Frames, "structural", orig, r.SLUTs})
		if r.OK {
			pts = append(pts, Figure7Point{r.Name, r.Frames, "functional", orig, r.FLUTs})
		}
	}
	return pts, nil
}

// FprintFigure7 renders the scatter as CSV plus the headline counts (how
// many folded circuits ended up smaller than their combinational
// originals, per method).
func FprintFigure7(w io.Writer, pts []Figure7Point) {
	fmt.Fprintln(w, "method,circuit,frames,orig_luts,folded_luts")
	smaller := map[string]int{}
	total := map[string]int{}
	for _, p := range pts {
		fmt.Fprintf(w, "%s,%s,%d,%d,%d\n", p.Method, p.Name, p.Frames, p.OrigLUTs, p.FoldLUTs)
		total[p.Method]++
		if p.FoldLUTs < p.OrigLUTs {
			smaller[p.Method]++
		}
	}
	fmt.Fprintf(w, "# folded smaller than original: functional %d/%d, structural %d/%d\n",
		smaller["functional"], total["functional"], smaller["structural"], total["structural"])
}
