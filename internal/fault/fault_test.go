package fault

import (
	"errors"
	"sync"
	"testing"

	"circuitfold/internal/pipeline"
)

func TestPointDisabledIsNil(t *testing.T) {
	Deactivate()
	if err := Point(PointBDDMk); err != nil {
		t.Fatalf("disarmed Point returned %v", err)
	}
	if Active() {
		t.Fatal("Active() true with no plan")
	}
}

func TestErrorModeAfterTimes(t *testing.T) {
	Activate(NewPlan(map[string]Rule{
		PointSATSolve: {Mode: Error, After: 2, Times: 3},
	}))
	t.Cleanup(Deactivate)
	var fired int
	for i := 0; i < 10; i++ {
		if err := Point(PointSATSolve); err != nil {
			fired++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not match ErrInjected", err)
			}
			if !errors.Is(err, pipeline.ErrInternal) {
				t.Fatalf("injected error %v does not match pipeline.ErrInternal", err)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("After=2 Times=3 fired %d times, want 3", fired)
	}
	if err := Point(PointBDDMk); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	Activate(NewPlan(map[string]Rule{PointBDDMk: {Mode: Panic}}))
	t.Cleanup(Deactivate)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic-mode point did not panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v is not an ErrInjected error", v)
		}
	}()
	_ = Point(PointBDDMk)
}

func TestPlanFromSeedDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, b := PlanFromSeed(seed), PlanFromSeed(seed)
		if a.Describe() != b.Describe() {
			t.Fatalf("seed %d: %s != %s", seed, a.Describe(), b.Describe())
		}
	}
	if PlanFromSeed(1).Describe() == PlanFromSeed(2).Describe() &&
		PlanFromSeed(2).Describe() == PlanFromSeed(3).Describe() {
		t.Fatal("seeds 1..3 all derive the same plan; generator looks constant")
	}
}

func TestConcurrentPointsRaceFree(t *testing.T) {
	Activate(NewPlan(map[string]Rule{
		PointSweepShard: {Mode: Error, After: 100, Times: 50},
	}))
	t.Cleanup(Deactivate)
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Point(PointSweepShard) != nil {
					n++
				}
			}
			fired.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	fired.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 50 {
		t.Fatalf("800 hits with After=100 Times=50 fired %d times, want exactly 50", total)
	}
}
