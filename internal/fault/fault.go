// Package fault provides deterministic, seed-addressable fault
// injection for the resilience test suite. Production code calls
// fault.Point(name) at a handful of registered choke points (BDD node
// allocation, SAT solve entry, sweep shard dispatch, MeMin iteration);
// with no plan armed the call is a single atomic load and returns nil,
// so the hooks are effectively free outside tests.
//
// A test arms a Plan mapping point names to Rules. A rule fires either
// by returning a typed error (Error mode — exercising the error paths)
// or by panicking with that error (Panic mode — exercising the recover
// boundaries). Every injected error wraps ErrInjected, which wraps
// pipeline.ErrInternal, so injected faults classify as internal faults
// throughout the engine: errors.Is(err, pipeline.ErrInternal) is true
// and the degradation ladder treats them as retryable.
package fault

import (
	"fmt"
	"sync/atomic"

	"circuitfold/internal/pipeline"
)

// ErrInjected is the root of every injected fault. It wraps
// pipeline.ErrInternal so injected faults are indistinguishable, at the
// classification level, from real internal faults.
var ErrInjected = fmt.Errorf("fault: injected: %w", pipeline.ErrInternal)

// Registered injection-point names. Point accepts any string, but the
// seeded plan generator and the fault matrix tests draw from this set.
const (
	PointBDDMk      = "bdd.mk"      // BDD manager node allocation (arena growth)
	PointSATSolve   = "sat.solve"   // SAT solver Solve entry
	PointSweepShard = "sweep.shard" // sweep worker, per shard
	PointMeMinIter  = "memin.iter"  // MeMin minimization, per k iteration

	// PointTFFFrameWorker fires inside each parallel time-frame-fold
	// worker, once per state it refines, so a seeded plan can blow up an
	// arbitrary frame mid-flight and prove the pool drains cleanly.
	PointTFFFrameWorker = "tff.frame.worker"

	// Disk-fault points for the durability suite. They fire inside the
	// file-backed checkpoint store: a short write before the payload is
	// complete, a failed fsync after the payload is written, and a bit
	// flip on the read path (the store corrupts the bytes it just read,
	// simulating media rot, and must catch it by checksum).
	PointStoreWrite = "store.save.write"   // FileStore save, before the payload write
	PointStoreFsync = "store.save.fsync"   // FileStore save, at the temp-file fsync
	PointStoreRead  = "store.load.bitflip" // FileStore load, flips one payload byte
)

// Points returns the registered injection-point names.
func Points() []string {
	return []string{
		PointBDDMk, PointSATSolve, PointSweepShard, PointMeMinIter, PointTFFFrameWorker,
		PointStoreWrite, PointStoreFsync, PointStoreRead,
	}
}

// Mode selects how a firing rule surfaces.
type Mode int

const (
	// Error makes Point return the injected error.
	Error Mode = iota
	// Panic makes Point panic with the injected error, testing the
	// recover boundaries.
	Panic
)

// Rule arms one injection point. The zero Rule fires in Error mode on
// every hit.
type Rule struct {
	Mode  Mode
	After int64 // skip the first After hits
	Times int64 // fire at most Times times after that (0 = unlimited)
}

type armedRule struct {
	Rule
	hits atomic.Int64
}

// Plan is an immutable set of armed rules. Build it with NewPlan or
// PlanFromSeed, then install it with Activate. The rule map is never
// mutated after construction, so concurrent Point calls only touch the
// per-rule atomic hit counters.
type Plan struct {
	rules map[string]*armedRule
}

// NewPlan builds a plan from point-name → rule.
func NewPlan(rules map[string]Rule) *Plan {
	p := &Plan{rules: make(map[string]*armedRule, len(rules))}
	for name, r := range rules {
		p.rules[name] = &armedRule{Rule: r}
	}
	return p
}

// PlanFromSeed derives a deterministic single-point plan from a seed:
// the same seed always arms the same point, mode, and After offset.
// Used by the fuzzer to explore fault placements reproducibly.
func PlanFromSeed(seed uint64) *Plan {
	// splitmix64: cheap, well-distributed, and dependency-free.
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	pts := Points()
	name := pts[next()%uint64(len(pts))]
	mode := Error
	if next()&1 == 1 {
		mode = Panic
	}
	after := int64(next() % 64)
	return NewPlan(map[string]Rule{name: {Mode: mode, After: after}})
}

// Describe reports what the plan arms, for test logs.
func (p *Plan) Describe() string {
	if p == nil {
		return "fault: no plan"
	}
	s := "fault plan:"
	for _, name := range Points() {
		r, ok := p.rules[name]
		if !ok {
			continue
		}
		mode := "error"
		if r.Mode == Panic {
			mode = "panic"
		}
		s += fmt.Sprintf(" %s(%s after=%d times=%d)", name, mode, r.After, r.Times)
	}
	return s
}

var (
	armed   atomic.Bool
	current atomic.Pointer[Plan]
)

// Activate installs the plan process-wide. Tests must pair it with
// Deactivate (t.Cleanup(fault.Deactivate)); plans are global, so tests
// that arm faults cannot run in parallel within one package.
func Activate(p *Plan) {
	current.Store(p)
	armed.Store(p != nil)
}

// Deactivate disarms injection; every Point reverts to the nil fast
// path.
func Deactivate() {
	armed.Store(false)
	current.Store(nil)
}

// Active reports whether a plan is armed.
func Active() bool { return armed.Load() }

// Point is the injection hook. With no plan armed (the production
// case) it costs one atomic load and returns nil. With a rule armed
// for name, it counts the hit and — once past the rule's After/Times
// window — returns the injected error (Error mode) or panics with it
// (Panic mode).
func Point(name string) error {
	if !armed.Load() {
		return nil
	}
	p := current.Load()
	if p == nil {
		return nil
	}
	r, ok := p.rules[name]
	if !ok {
		return nil
	}
	h := r.hits.Add(1)
	if h <= r.After {
		return nil
	}
	if r.Times > 0 && h > r.After+r.Times {
		return nil
	}
	err := fmt.Errorf("%w at %s (hit %d)", ErrInjected, name, h)
	if r.Mode == Panic {
		panic(err)
	}
	return err
}
