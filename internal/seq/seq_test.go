package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"circuitfold/internal/aig"
)

// counterCircuit builds a 2-bit counter with an enable input; outputs the
// two state bits.
func counterCircuit() *Circuit {
	g := aig.New()
	en := g.PI("en")
	s0 := g.PI("s0")
	s1 := g.PI("s1")
	n0 := g.Xor(s0, en)
	n1 := g.Xor(s1, g.And(s0, en))
	g.AddPO(s0, "q0")
	g.AddPO(s1, "q1")
	return &Circuit{G: g, NumInputs: 1, Next: []aig.Lit{n0, n1}, Init: []bool{false, false}}
}

func TestValidate(t *testing.T) {
	c := counterCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Circuit{G: c.G, NumInputs: 2, Next: c.Next, Init: c.Init}
	if bad.Validate() == nil {
		t.Fatal("expected validation error for wrong input count")
	}
	bad2 := &Circuit{G: c.G, NumInputs: 1, Next: c.Next, Init: []bool{false}}
	if bad2.Validate() == nil {
		t.Fatal("expected validation error for init length")
	}
}

func TestCounterSimulate(t *testing.T) {
	c := counterCircuit()
	// Enable for 5 cycles: outputs show the PREVIOUS state (Mealy read of
	// current state), counting 0,1,2,3,0.
	stream := [][]bool{{true}, {true}, {true}, {true}, {true}}
	out := c.Simulate(stream)
	want := []int{0, 1, 2, 3, 0}
	for t_, o := range out {
		got := 0
		if o[0] {
			got |= 1
		}
		if o[1] {
			got |= 2
		}
		if got != want[t_] {
			t.Fatalf("cycle %d: count=%d want %d", t_, got, want[t_])
		}
	}
	// With enable low, state holds.
	out = c.Simulate([][]bool{{true}, {false}, {false}})
	if out[2][0] != true || out[2][1] != false {
		t.Fatalf("state did not hold: %v", out[2])
	}
}

func TestStepWidthPanics(t *testing.T) {
	c := counterCircuit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	c.Step([]bool{false}, []bool{true})
}

func TestCombinationalWrapper(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.And(a, b), "y")
	c := Combinational(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumLatches() != 0 || c.NumOutputs() != 1 {
		t.Fatal("wrapper wrong")
	}
	out, next := c.Step(nil, []bool{true, true})
	if !out[0] || len(next) != 0 {
		t.Fatal("combinational step wrong")
	}
}

func TestUnrollMatchesSimulation(t *testing.T) {
	c := counterCircuit()
	rng := rand.New(rand.NewSource(9))
	for _, T := range []int{1, 2, 3, 5, 8} {
		u := c.Unroll(T)
		if u.NumPIs() != T*c.NumInputs || u.NumPOs() != T*c.NumOutputs() {
			t.Fatalf("T=%d: unrolled io %d/%d", T, u.NumPIs(), u.NumPOs())
		}
		for trial := 0; trial < 20; trial++ {
			stream := make([][]bool, T)
			flat := make([]bool, 0, T)
			for i := range stream {
				v := rng.Intn(2) == 1
				stream[i] = []bool{v}
				flat = append(flat, v)
			}
			seqOut := c.Simulate(stream)
			combOut := u.Eval(flat)
			for tt := 0; tt < T; tt++ {
				for o := 0; o < c.NumOutputs(); o++ {
					if combOut[tt*c.NumOutputs()+o] != seqOut[tt][o] {
						t.Fatalf("T=%d trial %d: frame %d output %d differs", T, trial, tt, o)
					}
				}
			}
		}
	}
}

func TestUnrollInitialState(t *testing.T) {
	c := counterCircuit()
	c.Init = []bool{true, false} // start at 1
	u := c.Unroll(1)
	out := u.Eval([]bool{false})
	if !out[0] || out[1] {
		t.Fatalf("initial state not honored: %v", out)
	}
}

func TestUnrollNamesCarryFrames(t *testing.T) {
	c := counterCircuit()
	u := c.Unroll(2)
	if u.PIName(0) != "en@1" || u.PIName(1) != "en@2" {
		t.Fatalf("PI names: %q %q", u.PIName(0), u.PIName(1))
	}
	if u.POName(0) != "q0@1" || u.POName(3) != "q1@2" {
		t.Fatalf("PO names: %q %q", u.POName(0), u.POName(3))
	}
}

func TestRandomSequentialUnroll(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		c := randomSeq(rng, 3, 2, 2, 25)
		T := 1 + rng.Intn(4)
		u := c.Unroll(T)
		for v := 0; v < 30; v++ {
			stream := make([][]bool, T)
			var flat []bool
			for i := range stream {
				row := make([]bool, c.NumInputs)
				for j := range row {
					row[j] = rng.Intn(2) == 1
				}
				stream[i] = row
				flat = append(flat, row...)
			}
			seqOut := c.Simulate(stream)
			combOut := u.Eval(flat)
			k := 0
			for tt := 0; tt < T; tt++ {
				for o := 0; o < c.NumOutputs(); o++ {
					if combOut[k] != seqOut[tt][o] {
						t.Fatalf("trial %d: mismatch frame %d out %d", trial, tt, o)
					}
					k++
				}
			}
		}
	}
}

// randomSeq builds a random sequential circuit.
func randomSeq(rng *rand.Rand, ins, outs, ffs, ands int) *Circuit {
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < ins+ffs; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < outs; i++ {
		g.AddPO(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0), "")
	}
	next := make([]aig.Lit, ffs)
	init := make([]bool, ffs)
	for i := range next {
		next[i] = lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		init[i] = rng.Intn(2) == 1
	}
	return &Circuit{G: g, NumInputs: ins, Next: next, Init: init}
}

func TestStepWordsMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := randomSeq(rng, 3, 2, 2, 30)
	for trial := 0; trial < 10; trial++ {
		stream := make([][]uint64, 6)
		for t_ := range stream {
			row := make([]uint64, c.NumInputs)
			for i := range row {
				row[i] = rng.Uint64()
			}
			stream[t_] = row
		}
		wordOut := c.SimulateWords(stream)
		// Compare lanes 0, 17 and 63 against scalar simulation.
		for _, lane := range []uint{0, 17, 63} {
			scalar := make([][]bool, len(stream))
			for t_ := range stream {
				row := make([]bool, c.NumInputs)
				for i := range row {
					row[i] = stream[t_][i]>>lane&1 == 1
				}
				scalar[t_] = row
			}
			want := c.Simulate(scalar)
			for t_ := range want {
				for o := range want[t_] {
					got := wordOut[t_][o]>>lane&1 == 1
					if got != want[t_][o] {
						t.Fatalf("lane %d cycle %d output %d differs", lane, t_, o)
					}
				}
			}
		}
	}
}

func TestStepWordsPanicsOnWidth(t *testing.T) {
	c := counterCircuit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.StepWords([]uint64{0}, []uint64{0, 0})
}

func TestTransformPreservesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		c := randomSeq(rng, 3, 3, 3, 50)
		opt := c.Transform(func(g *aig.Graph) *aig.Graph { return g.Optimize() })
		if err := opt.Validate(); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 20; v++ {
			stream := make([][]bool, 6)
			for i := range stream {
				row := make([]bool, c.NumInputs)
				for j := range row {
					row[j] = rng.Intn(2) == 1
				}
				stream[i] = row
			}
			a := c.Simulate(stream)
			b := opt.Simulate(stream)
			for i := range a {
				for o := range a[i] {
					if a[i][o] != b[i][o] {
						t.Fatalf("trial %d: transform changed behavior at step %d", trial, i)
					}
				}
			}
		}
	}
}

func TestStringSummaries(t *testing.T) {
	c := counterCircuit()
	if s := c.String(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestDedupeLatches(t *testing.T) {
	// Two latch chains fed by the same signal collapse into one.
	g := aig.New()
	x := g.PI("x")
	s1 := g.PI("")
	s2 := g.PI("")
	t1 := g.PI("")
	t2 := g.PI("")
	g.AddPO(g.Xor(t1, t2), "y") // xor of identical chains == 0
	c := &Circuit{
		G:         g,
		NumInputs: 1,
		Next:      []aig.Lit{x, x, s1, s2},
		Init:      []bool{false, false, false, false},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d := c.DedupeLatches()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumLatches() != 2 {
		t.Fatalf("latches = %d, want 2 (one chain)", d.NumLatches())
	}
	// Behavior preserved.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		stream := make([][]bool, 6)
		for i := range stream {
			stream[i] = []bool{rng.Intn(2) == 1}
		}
		a := c.Simulate(stream)
		b := d.Simulate(stream)
		for i := range a {
			if a[i][0] != b[i][0] {
				t.Fatalf("dedupe changed behavior at step %d", i)
			}
		}
	}
}

func TestDedupeLatchesRespectsInit(t *testing.T) {
	// Same next function but different init values must NOT merge.
	g := aig.New()
	x := g.PI("x")
	s1 := g.PI("")
	s2 := g.PI("")
	g.AddPO(g.Xor(s1, s2), "y")
	c := &Circuit{G: g, NumInputs: 1, Next: []aig.Lit{x, x}, Init: []bool{false, true}}
	d := c.DedupeLatches()
	if d.NumLatches() != 2 {
		t.Fatalf("latches with different init merged: %d", d.NumLatches())
	}
	out := d.Simulate([][]bool{{false}})
	if !out[0][0] {
		t.Fatal("initial-state difference lost")
	}
}

func TestDedupeLatchesOnStructuralFoldChain(t *testing.T) {
	// A no-duplicate circuit is returned unchanged (fixpoint reached
	// immediately).
	c := counterCircuit()
	d := c.DedupeLatches()
	if d.NumLatches() != c.NumLatches() {
		t.Fatal("spurious merge")
	}
}

func TestQuickUnrollEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomSeq(rng, 2, 2, 2, 20)
		T := 1 + rng.Intn(3)
		u := c.Unroll(T)
		for v := 0; v < 10; v++ {
			stream := make([][]bool, T)
			var flat []bool
			for i := range stream {
				row := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1}
				stream[i] = row
				flat = append(flat, row...)
			}
			so := c.Simulate(stream)
			co := u.Eval(flat)
			k := 0
			for tt := 0; tt < T; tt++ {
				for o := 0; o < 2; o++ {
					if co[k] != so[tt][o] {
						return false
					}
					k++
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
