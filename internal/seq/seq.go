// Package seq represents sequential circuits as a combinational AIG plus
// flip-flops, and provides the two operations the paper's formulation is
// built on: cycle-accurate simulation and time-frame expansion
// (unrolling), the inverse of circuit folding.
package seq

import (
	"fmt"

	"circuitfold/internal/aig"
)

// Circuit is a sequential circuit. The combinational core G has
// NumInputs + len(Next) primary inputs: the first NumInputs are the real
// primary inputs, the rest are the flip-flop outputs (pseudo inputs, in
// flip-flop order). G's primary outputs are the circuit's primary
// outputs; Next[i] is the literal in G driving flip-flop i's input.
type Circuit struct {
	G         *aig.Graph
	NumInputs int
	Next      []aig.Lit
	Init      []bool // initial flip-flop values; len == len(Next)
}

// NumLatches returns the number of flip-flops.
func (c *Circuit) NumLatches() int { return len(c.Next) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return c.G.NumPOs() }

// Validate checks internal consistency.
func (c *Circuit) Validate() error {
	if c.G.NumPIs() != c.NumInputs+len(c.Next) {
		return fmt.Errorf("seq: core has %d PIs, want %d inputs + %d latches",
			c.G.NumPIs(), c.NumInputs, len(c.Next))
	}
	if len(c.Init) != len(c.Next) {
		return fmt.Errorf("seq: %d init values for %d latches", len(c.Init), len(c.Next))
	}
	for i, n := range c.Next {
		if n.Node() >= c.G.NumNodes() {
			return fmt.Errorf("seq: next-state literal %d out of range", i)
		}
	}
	return nil
}

// Combinational wraps a combinational AIG as a latch-free Circuit.
func Combinational(g *aig.Graph) *Circuit {
	return &Circuit{G: g, NumInputs: g.NumPIs()}
}

// Step evaluates one clock cycle: given the current state and the inputs
// of this cycle, it returns the outputs and the next state.
func (c *Circuit) Step(state []bool, inputs []bool) (outputs, next []bool) {
	if len(inputs) != c.NumInputs || len(state) != len(c.Next) {
		panic("seq: Step width mismatch")
	}
	in := make([]bool, 0, len(inputs)+len(state))
	in = append(in, inputs...)
	in = append(in, state...)
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	vals := make([]uint64, c.G.NumNodes())
	simInto(c.G, vals, words)
	outputs = make([]bool, c.G.NumPOs())
	for i := 0; i < c.G.NumPOs(); i++ {
		outputs[i] = litVal(vals, c.G.PO(i))
	}
	next = make([]bool, len(c.Next))
	for i, n := range c.Next {
		next[i] = litVal(vals, n)
	}
	return outputs, next
}

func litVal(vals []uint64, l aig.Lit) bool {
	v := vals[l.Node()]&1 == 1
	if l.Compl() {
		v = !v
	}
	return v
}

// simInto performs single-bit (word) simulation of g given PI words.
func simInto(g *aig.Graph, vals []uint64, in []uint64) {
	for i := 0; i < g.NumPIs(); i++ {
		vals[g.PILit(i).Node()] = in[i]
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		v0 := vals[f0.Node()]
		if f0.Compl() {
			v0 = ^v0
		}
		v1 := vals[f1.Node()]
		if f1.Compl() {
			v1 = ^v1
		}
		vals[id] = v0 & v1
	}
}

// Simulate runs the circuit from its initial state over the input stream
// and returns the output stream.
func (c *Circuit) Simulate(stream [][]bool) [][]bool {
	state := append([]bool(nil), c.Init...)
	out := make([][]bool, len(stream))
	for t, in := range stream {
		out[t], state = c.Step(state, in)
	}
	return out
}

// Unroll expands the circuit by T time-frames into a combinational AIG:
// the result has T * NumInputs primary inputs (frame-major: all of frame
// 1, then frame 2, ...) and T * NumOutputs primary outputs, with latch
// outputs of frame t feeding latch inputs of frame t+1 and frame 1 seeded
// by the initial state. This is the paper's time-frame expansion.
func (c *Circuit) Unroll(T int) *aig.Graph {
	u := aig.New()
	state := make([]aig.Lit, len(c.Next))
	for i, b := range c.Init {
		state[i] = aig.Const0
		if b {
			state[i] = aig.Const1
		}
	}
	roots := make([]aig.Lit, 0, c.G.NumPOs()+len(c.Next))
	for i := 0; i < c.G.NumPOs(); i++ {
		roots = append(roots, c.G.PO(i))
	}
	roots = append(roots, c.Next...)
	for t := 1; t <= T; t++ {
		piMap := make([]aig.Lit, 0, c.G.NumPIs())
		for i := 0; i < c.NumInputs; i++ {
			piMap = append(piMap, u.PI(fmt.Sprintf("%s@%d", c.G.PIName(i), t)))
		}
		piMap = append(piMap, state...)
		mapped := aig.Transfer(u, c.G, piMap, roots)
		for i := 0; i < c.G.NumPOs(); i++ {
			u.AddPO(mapped[i], fmt.Sprintf("%s@%d", c.G.POName(i), t))
		}
		copy(state, mapped[c.G.NumPOs():])
	}
	return u
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("seq{in:%d out:%d ff:%d and:%d}",
		c.NumInputs, c.NumOutputs(), len(c.Next), c.G.NumAnds())
}

// Transform rewrites the combinational core with f (e.g. optimization
// passes), keeping the latch structure intact: next-state functions are
// temporarily exposed as extra primary outputs so the rewrite preserves
// them, then stripped back out.
func (c *Circuit) Transform(f func(*aig.Graph) *aig.Graph) *Circuit {
	work := c.G.Copy()
	for i, n := range c.Next {
		work.AddPO(n, fmt.Sprintf("__next%d", i))
	}
	opt := f(work)
	nOut := c.G.NumPOs()
	g := aig.New()
	piMap := make([]aig.Lit, opt.NumPIs())
	for i := range piMap {
		piMap[i] = g.PI(opt.PIName(i))
	}
	roots := make([]aig.Lit, opt.NumPOs())
	for i := range roots {
		roots[i] = opt.PO(i)
	}
	outs := aig.Transfer(g, opt, piMap, roots)
	for i := 0; i < nOut; i++ {
		g.AddPO(outs[i], opt.POName(i))
	}
	next := append([]aig.Lit(nil), outs[nOut:]...)
	return &Circuit{G: g, NumInputs: c.NumInputs, Next: next, Init: append([]bool(nil), c.Init...)}
}

// StepWords evaluates one clock cycle on 64 independent streams at once:
// bit k of every word belongs to stream k. state and inputs hold one
// word per flip-flop / input; the returned slices hold one word per
// output / flip-flop.
func (c *Circuit) StepWords(state, inputs []uint64) (outputs, next []uint64) {
	if len(inputs) != c.NumInputs || len(state) != len(c.Next) {
		panic("seq: StepWords width mismatch")
	}
	in := make([]uint64, 0, len(inputs)+len(state))
	in = append(in, inputs...)
	in = append(in, state...)
	vals := make([]uint64, c.G.NumNodes())
	simInto(c.G, vals, in)
	outputs = make([]uint64, c.G.NumPOs())
	for i := 0; i < c.G.NumPOs(); i++ {
		v := vals[c.G.PO(i).Node()]
		if c.G.PO(i).Compl() {
			v = ^v
		}
		outputs[i] = v
	}
	next = make([]uint64, len(c.Next))
	for i, n := range c.Next {
		v := vals[n.Node()]
		if n.Compl() {
			v = ^v
		}
		next[i] = v
	}
	return outputs, next
}

// SimulateWords runs 64 independent streams from the initial state.
// stream[t][i] is the word of input i at cycle t.
func (c *Circuit) SimulateWords(stream [][]uint64) [][]uint64 {
	state := make([]uint64, len(c.Next))
	for i, b := range c.Init {
		if b {
			state[i] = ^uint64(0)
		}
	}
	out := make([][]uint64, len(stream))
	for t, in := range stream {
		out[t], state = c.StepWords(state, in)
	}
	return out
}

// DedupeLatches merges flip-flops whose next-state literal and initial
// value coincide: such registers always hold identical values, so their
// outputs are interchangeable. Folding and synthesis can create such
// duplicates (e.g. when structural hashing merges the logic feeding two
// register chains). The pass iterates to a fixpoint because merging one
// stage can make the next stage's inputs coincide.
func (c *Circuit) DedupeLatches() *Circuit {
	cur := c
	for {
		type key struct {
			next aig.Lit
			init bool
		}
		rep := make(map[key]int)
		merge := make([]int, cur.NumLatches()) // latch -> representative
		distinct := 0
		for i, n := range cur.Next {
			k := key{n, cur.Init[i]}
			if r, ok := rep[k]; ok {
				merge[i] = r
			} else {
				rep[k] = i
				merge[i] = i
				distinct++
			}
		}
		if distinct == cur.NumLatches() {
			return cur
		}
		// Rebuild with merged pseudo-inputs.
		g := aig.New()
		piMap := make([]aig.Lit, cur.G.NumPIs())
		for i := 0; i < cur.NumInputs; i++ {
			piMap[i] = g.PI(cur.G.PIName(i))
		}
		newIndex := make([]int, cur.NumLatches())
		var next []aig.Lit
		var init []bool
		for i := 0; i < cur.NumLatches(); i++ {
			if merge[i] == i {
				newIndex[i] = len(next)
				piMap[cur.NumInputs+i] = g.PI("")
				next = append(next, 0) // filled below
				init = append(init, cur.Init[i])
			}
		}
		for i := 0; i < cur.NumLatches(); i++ {
			piMap[cur.NumInputs+i] = piMap[cur.NumInputs+merge[i]]
		}
		roots := make([]aig.Lit, 0, cur.G.NumPOs()+len(next))
		for i := 0; i < cur.G.NumPOs(); i++ {
			roots = append(roots, cur.G.PO(i))
		}
		for i := 0; i < cur.NumLatches(); i++ {
			if merge[i] == i {
				roots = append(roots, cur.Next[i])
			}
		}
		mapped := aig.Transfer(g, cur.G, piMap, roots)
		for i := 0; i < cur.G.NumPOs(); i++ {
			g.AddPO(mapped[i], cur.G.POName(i))
		}
		copy(next, mapped[cur.G.NumPOs():])
		cur = &Circuit{G: g, NumInputs: cur.NumInputs, Next: next, Init: init}
	}
}
