package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"circuitfold/internal/obs"
)

func TestCacheHitMiss(t *testing.T) {
	c := New(4, 1<<20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", []byte("alpha2")) // replace
	if v, _ := c.Get("a"); string(v) != "alpha2" {
		t.Fatalf("replacement not visible: %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 6 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheEntryEviction(t *testing.T) {
	c := New(3, 1<<20)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 becomes LRU
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheByteEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(100, 10)
	c.Observe(reg.Gauge(obs.MCacheEntries), reg.Gauge(obs.MCacheBytes),
		reg.Counter(obs.MCacheEvictions), reg.Counter(obs.MStoreCorrupt))
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	c.Put("c", []byte("cccc")) // 12 bytes > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte cap did not evict a")
	}
	if got := c.Bytes(); got != 8 {
		t.Fatalf("Bytes = %d, want 8", got)
	}
	if g := reg.Gauge(obs.MCacheBytes).Value(); g != 8 {
		t.Fatalf("bytes gauge = %d, want 8", g)
	}
	if e := reg.Counter(obs.MCacheEvictions).Value(); e != 1 {
		t.Fatalf("evictions counter = %d, want 1", e)
	}
	// An oversized value is rejected outright, evicting nothing.
	c.Put("huge", make([]byte, 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value stored")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 || (c.Stats() != Stats{}) {
		t.Fatal("nil cache accounting")
	}
	c.Observe(nil, nil, nil, nil)
}

func TestCacheConcurrent(t *testing.T) {
	c := New(16, 1<<10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%24)
				if v, ok := c.Get(k); ok && len(v) != 3 {
					t.Errorf("short value under %s", k)
				}
				c.Put(k, []byte{1, 2, 3})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("entry cap exceeded: %d", c.Len())
	}
}

// TestCacheEvictionRace churns the cache hard enough that every Put
// evicts, while hit traffic, metric re-wiring via Observe, and stats
// readers run concurrently. Run under -race (the make race gate) this
// proves LRU eviction holds no state outside the lock.
func TestCacheEvictionRace(t *testing.T) {
	c := New(8, 64) // 8 entries / 64 bytes: almost every Put evicts
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*500+i)%32)
				if v, ok := c.Get(k); ok && len(v) != 8 {
					t.Errorf("short value under %s: %d bytes", k, len(v))
				}
				c.Put(k, []byte{0, 1, 2, 3, 4, 5, 6, byte(w)})
			}
		}(w)
	}
	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() { // re-point the metric sinks mid-eviction
		defer close(obsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg := obs.NewRegistry()
			c.Observe(reg.Gauge(obs.MCacheEntries), reg.Gauge(obs.MCacheBytes),
				reg.Counter(obs.MCacheEvictions), reg.Counter(obs.MStoreCorrupt))
			c.Stats()
			c.Len()
			c.Bytes()
		}
	}()
	churn.Wait()
	close(stop)
	<-obsDone
	if c.Len() > 8 || c.Bytes() > 64 {
		t.Fatalf("caps exceeded: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

// TestCacheEvictionMidDecode pins the Get contract a concurrent reader
// depends on: bytes returned by Get stay intact even after the entry
// is evicted and its slot churned through many generations — eviction
// drops the cache's reference, it never recycles the buffer under a
// decoder's feet.
func TestCacheEvictionMidDecode(t *testing.T) {
	c := New(2, 1<<10)
	want := []byte("decode me slowly, I dare you")
	c.Put("held", want)
	got, ok := c.Get("held")
	if !ok {
		t.Fatal("miss on fresh entry")
	}
	// Evict "held" and churn the cache for many generations while the
	// reader still holds the slice.
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("churn%d", i), bytes.Repeat([]byte{byte(i)}, len(want)))
	}
	if _, ok := c.Get("held"); ok {
		t.Fatal("held entry survived the churn")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("held bytes mutated after eviction: %q", got)
	}
}
