// Package cache provides the fold service's content-addressed result
// cache: a bounded, byte-size-capped LRU from fold keys (see
// job.Spec.FoldKey) to encoded result snapshots. Folding is a pure
// function of the circuit's structure and the engine options, so a
// snapshot stored under a structural key serves every later
// submission with the same structure — generator or uploaded netlist
// alike — without touching an engine. The cache stores opaque bytes
// (the versioned core.EncodeResult envelope) rather than decoded
// results: entries cost exactly their serialized size, and a hit
// decodes into a private Result, so cached jobs cannot alias each
// other's circuits.
package cache

import (
	"container/list"
	"hash/crc32"
	"sync"

	"circuitfold/internal/obs"
)

// Default capacity bounds: enough for a benchmark sweep's worth of
// distinct specs while keeping the worst case (every entry near the
// size cap) well under typical daemon memory.
const (
	DefaultMaxEntries = 512
	DefaultMaxBytes   = 256 << 20 // 256 MiB of encoded snapshots
)

// Cache is a thread-safe LRU over immutable byte snapshots, bounded
// both by entry count and by total byte size. The zero value is not
// usable; call New. All methods are nil-safe no-ops (Get always
// misses), so callers can disable caching by threading a nil *Cache.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element

	hits, misses, evictions, corrupt int64

	// Optional metric mirrors (nil-safe obs handles).
	mEntries   *obs.Gauge   // obs.MCacheEntries
	mBytes     *obs.Gauge   // obs.MCacheBytes
	mEvictions *obs.Counter // obs.MCacheEvictions
	mCorrupt   *obs.Counter // obs.MStoreCorrupt
}

// entry is one LRU element. sum is the CRC32-IEEE of val taken at Put
// time; Get re-verifies it so a snapshot corrupted in memory (or by a
// caller violating the read-only contract) is dropped and re-folded
// instead of being decoded into a client response.
type entry struct {
	key string
	val []byte
	sum uint32
}

// New returns a cache bounded to maxEntries entries and maxBytes total
// value bytes; non-positive bounds select the defaults.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Observe mirrors the cache's occupancy on the given gauges, its
// eviction count on the evictions counter, and checksum-failed entries
// on the corrupt counter (any of which may be nil). Call before use;
// the mirrors update on every Put, eviction, and corrupt drop.
func (c *Cache) Observe(entries, bytes *obs.Gauge, evictions, corrupt *obs.Counter) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.mEntries, c.mBytes, c.mEvictions, c.mCorrupt = entries, bytes, evictions, corrupt
	c.mu.Unlock()
}

// Get returns the snapshot stored under key and marks it most recently
// used. The returned bytes are shared with the cache and must be
// treated as read-only. An entry whose checksum no longer matches is
// dropped and reported as a miss, so the caller re-folds instead of
// decoding corrupt bytes.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if crc32.ChecksumIEEE(e.val) != e.sum {
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.corrupt++
		c.misses++
		c.mCorrupt.Add(1)
		c.note()
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put stores val under key (replacing any previous value) and evicts
// least-recently-used entries until both bounds hold again. A value
// larger than the byte cap is not stored at all. The cache keeps the
// slice it is given; the caller must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) {
	if c == nil || int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := crc32.ChecksumIEEE(val)
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val, e.sum = val, sum
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, sum: sum})
		c.bytes += int64(len(val))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
	c.note()
}

// evictOldest drops the least recently used entry. Called with the
// lock held.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.val))
	c.evictions++
	c.mEvictions.Add(1)
}

// note refreshes the occupancy gauges. Called with the lock held.
func (c *Cache) note() {
	c.mEntries.Set(int64(c.ll.Len()))
	c.mBytes.Set(c.bytes)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total resident value bytes.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits, Misses, Evictions, Corrupt int64
	Entries                          int
	Bytes                            int64
}

// Stats returns the cache's cumulative counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Corrupt: c.corrupt,
		Entries: c.ll.Len(), Bytes: c.bytes,
	}
}
