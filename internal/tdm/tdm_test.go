package tdm

import (
	"testing"
	"testing/quick"

	"circuitfold/internal/core"
	"circuitfold/internal/gen"
)

func TestLinkBasics(t *testing.T) {
	l := Link{Pins: 4, Ratio: 4}
	if l.SignalsPerSystemCycle() != 16 {
		t.Fatalf("capacity = %d", l.SignalsPerSystemCycle())
	}
	if l.IOCyclesToTransmit(0) != 0 || l.IOCyclesToTransmit(4) != 1 || l.IOCyclesToTransmit(5) != 2 {
		t.Fatal("IOCyclesToTransmit wrong")
	}
}

func TestTransmitScheduleFigure1(t *testing.T) {
	// Figure 1: ratio 4 means 4 signals share one pin over 4 I/O cycles.
	l := Link{Pins: 2, Ratio: 4}
	sched := l.TransmitSchedule(8)
	if len(sched) != 4 {
		t.Fatalf("cycles = %d, want 4", len(sched))
	}
	seen := make(map[int]bool)
	for _, row := range sched {
		if len(row) != 2 {
			t.Fatalf("row width = %d", len(row))
		}
		for _, s := range row {
			if s >= 0 {
				if seen[s] {
					t.Fatalf("signal %d transmitted twice", s)
				}
				seen[s] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("transmitted %d signals, want 8", len(seen))
	}
	// Idle slots appear when signals don't fill the schedule.
	sched = l.TransmitSchedule(5)
	idle := 0
	for _, row := range sched {
		for _, s := range row {
			if s < 0 {
				idle++
			}
		}
	}
	if idle != 1 {
		t.Fatalf("idle slots = %d, want 1", idle)
	}
}

func TestUnfoldedCyclesI10(t *testing.T) {
	// Paper: i10 without folding needs 4 I/O cycles at 200 pins:
	// 200 + 57 inputs, then 200 + 24 outputs.
	if got := UnfoldedCycles(257, 224, 200); got != 4 {
		t.Fatalf("unfolded cycles = %d, want 4", got)
	}
}

func TestFoldedCyclesI10CaseStudy(t *testing.T) {
	// Paper's case study: i10 folded by 2 gives 129 inputs per frame with
	// 44 outputs in frame 1 and 180 in frame 2; at 200 pins the overall
	// execution takes 3 cycles (129 | 129+44 | 180), a 25% reduction.
	g := gen.MustBuild("i10")
	r, err := core.StructuralFold(g, 2, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	if r.InputPins() != 129 {
		t.Fatalf("input pins = %d, want 129", r.InputPins())
	}
	out1, out2 := 0, 0
	for _, dst := range r.OutSched[0] {
		if dst >= 0 {
			out1++
		}
	}
	for _, dst := range r.OutSched[1] {
		if dst >= 0 {
			out2++
		}
	}
	if out1 != 44 || out2 != 180 {
		t.Fatalf("output split = %d/%d, want 44/180", out1, out2)
	}
	cycles, plan, err := FoldedCycles(r, 200)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 3 {
		t.Fatalf("folded cycles = %d, want 3", cycles)
	}
	// The paper's text counts 129 inputs in both cycles; 257 inputs split
	// as 129 + 128 live signals (the second frame pads one dummy pin).
	want := []CyclePlan{{Inputs: 129}, {Inputs: 128, Outputs: 44}, {Outputs: 180}}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("cycle %d plan = %+v, want %+v", i, plan[i], want[i])
		}
	}
	if red := Reduction(4, cycles); red != 0.25 {
		t.Fatalf("reduction = %v, want 0.25", red)
	}
}

func TestFoldedCyclesCapacityOverflow(t *testing.T) {
	g := gen.MustBuild("adder3")
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FoldedCycles(r, 1); err == nil {
		t.Fatal("expected error when frame inputs exceed link pins")
	}
	cycles, _, err := FoldedCycles(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 input frames fill both pins, so all 4 outputs (1+1+2 per frame)
	// drain in 2 extra cycles.
	if cycles != 5 {
		t.Fatalf("cycles = %d, want 5", cycles)
	}
}

func TestOutputBacklogSpillsAcrossCycles(t *testing.T) {
	g := gen.MustBuild("e64") // 65 in, 65 out
	r, err := core.StructuralFold(g, 5, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	cycles, plan, err := FoldedCycles(r, 14)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range plan {
		if c.Total() > 14 {
			t.Fatalf("cycle exceeds capacity: %+v", c)
		}
		total += c.Outputs
	}
	if total != 65 {
		t.Fatalf("transmitted %d outputs, want 65", total)
	}
	if cycles < 6 {
		t.Fatalf("cycles = %d, expected backlog to extend execution", cycles)
	}
}

func TestQuickCycleMonotonicity(t *testing.T) {
	check := func(nIn, nOut, pins uint8) bool {
		p := int(pins%200) + 1
		a := UnfoldedCycles(int(nIn), int(nOut), p)
		b := UnfoldedCycles(int(nIn)+1, int(nOut), p)
		c := UnfoldedCycles(int(nIn), int(nOut), p+1)
		// More signals never need fewer cycles; more pins never more.
		return b >= a && c <= a && a >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransmitScheduleCovers(t *testing.T) {
	check := func(pins, ratio, signals uint8) bool {
		l := Link{Pins: int(pins%30) + 1, Ratio: int(ratio%8) + 1}
		n := int(signals % 100)
		seen := map[int]bool{}
		for _, row := range l.TransmitSchedule(n) {
			for _, s := range row {
				if s >= 0 {
					if seen[s] {
						return false
					}
					seen[s] = true
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
