// Package tdm models inter-FPGA I/O transmission: classic time-division
// multiplexing (Figure 1 of the paper) and the I/O-cycle latency analysis
// of Section VI used in the i10 case study. Circuit folding and TDM are
// orthogonal; this package lets both be expressed in one cycle model.
package tdm

import (
	"fmt"

	"circuitfold/internal/core"
)

// Link is an inter-chip I/O link: Pins physical pins, multiplexed with
// TDM ratio Ratio (Ratio signals per pin per system clock; the I/O clock
// runs Ratio times faster than the system clock).
type Link struct {
	Pins  int
	Ratio int
}

// SignalsPerSystemCycle returns the effective logical signal capacity of
// one system clock period.
func (l Link) SignalsPerSystemCycle() int { return l.Pins * l.Ratio }

// IOCyclesToTransmit returns the number of I/O clock cycles needed to
// move `signals` logical signals across the link (each I/O cycle carries
// Pins signals).
func (l Link) IOCyclesToTransmit(signals int) int {
	if signals <= 0 {
		return 0
	}
	return (signals + l.Pins - 1) / l.Pins
}

// TransmitSchedule lists, slot by slot, which logical signal index each
// pin carries in each I/O cycle — the wave-shaped multiplexing picture of
// Figure 1. Entry [c][p] is the signal on pin p during I/O cycle c, or -1
// for an idle slot.
func (l Link) TransmitSchedule(signals int) [][]int {
	cycles := l.IOCyclesToTransmit(signals)
	out := make([][]int, cycles)
	s := 0
	for c := range out {
		row := make([]int, l.Pins)
		for p := range row {
			if s < signals {
				row[p] = s
				s++
			} else {
				row[p] = -1
			}
		}
		out[c] = row
	}
	return out
}

// CyclePlan describes one I/O cycle of a folded execution: how many input
// and output signals it carries.
type CyclePlan struct {
	Inputs  int
	Outputs int
}

// Total returns the signals transmitted in this cycle.
func (c CyclePlan) Total() int { return c.Inputs + c.Outputs }

// UnfoldedCycles is the baseline of the case study: without folding, all
// inputs are streamed in first and all outputs streamed out after the
// (single-cycle) evaluation, so the I/O cycle count is
// ceil(nIn/pins) + ceil(nOut/pins).
func UnfoldedCycles(nIn, nOut, pins int) int {
	return Link{Pins: pins, Ratio: 1}.IOCyclesToTransmit(nIn) +
		Link{Pins: pins, Ratio: 1}.IOCyclesToTransmit(nOut)
}

// FoldedCycles computes the I/O cycle count of executing a folded circuit
// over a pins-wide link under the paper's assumptions (TDM ratio 1, logic
// evaluates within a cycle): cycle t carries frame t's inputs, and
// outputs become transmittable one cycle after their frame, filling
// whatever capacity inputs leave free. It returns the total cycle count
// and the per-cycle plan.
func FoldedCycles(r *core.Result, pins int) (int, []CyclePlan, error) {
	inPerFrame := make([]int, r.T)
	for t, row := range r.InSched {
		for _, src := range row {
			if src >= 0 {
				inPerFrame[t]++
			}
		}
		if inPerFrame[t] > pins {
			return 0, nil, fmt.Errorf("tdm: frame %d needs %d input pins, link has %d", t, inPerFrame[t], pins)
		}
	}
	outPerFrame := make([]int, r.T)
	for t, row := range r.OutSched {
		for _, dst := range row {
			if dst >= 0 {
				outPerFrame[t]++
			}
		}
	}
	var plan []CyclePlan
	pendingOut := 0
	for t := 0; t < r.T; t++ {
		c := CyclePlan{Inputs: inPerFrame[t]}
		free := pins - c.Inputs
		if pendingOut > 0 && free > 0 {
			n := pendingOut
			if n > free {
				n = free
			}
			c.Outputs = n
			pendingOut -= n
		}
		plan = append(plan, c)
		pendingOut += outPerFrame[t] // ready for transmission next cycle
	}
	for pendingOut > 0 {
		n := pendingOut
		if n > pins {
			n = pins
		}
		plan = append(plan, CyclePlan{Outputs: n})
		pendingOut -= n
	}
	return len(plan), plan, nil
}

// Reduction returns the relative cycle reduction of folded versus
// unfolded execution, e.g. 0.25 for the paper's i10 case study.
func Reduction(unfolded, folded int) float64 {
	if unfolded == 0 {
		return 0
	}
	return float64(unfolded-folded) / float64(unfolded)
}
