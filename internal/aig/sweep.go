package aig

import (
	"math/rand"

	"circuitfold/internal/sat"
)

// SweepOptions controls SAT sweeping.
type SweepOptions struct {
	// SimRounds is the number of 64-bit random simulation rounds used to
	// split candidate equivalence classes before SAT is consulted.
	SimRounds int
	// ConflictBudget bounds each SAT equivalence query; nodes whose query
	// exhausts the budget are conservatively kept distinct.
	ConflictBudget int64
	// Seed makes the random simulation reproducible.
	Seed int64
}

// DefaultSweepOptions returns the settings used by the optimization flow.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{SimRounds: 8, ConflictBudget: 2000, Seed: 1}
}

// Sweep performs fraig-style SAT sweeping: nodes that random simulation
// cannot distinguish are checked for functional equivalence (up to
// complementation) with SAT, and proven-equivalent nodes are merged. The
// result is a cleaned-up, structurally hashed graph.
func (g *Graph) Sweep(opt SweepOptions) *Graph {
	if g.NumAnds() == 0 {
		return g.Cleanup()
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Signature per node: values across SimRounds rounds, normalized so
	// that bit0 of round 0 is 0 (merging up to complement).
	sig := make([][]uint64, g.NumNodes())
	for i := range sig {
		sig[i] = make([]uint64, opt.SimRounds)
	}
	vals := make([]uint64, g.NumNodes())
	in := make([]uint64, g.NumPIs())
	for r := 0; r < opt.SimRounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		g.simInto(vals, in)
		for id := range vals {
			sig[id][r] = vals[id]
		}
	}
	type key string
	classes := make(map[key][]int)
	compl := make([]bool, g.NumNodes()) // node stored complemented in class
	for id := 0; id < g.NumNodes(); id++ {
		s := sig[id]
		neg := s[0]&1 == 1
		compl[id] = neg
		buf := make([]byte, 0, len(s)*8)
		for _, w := range s {
			if neg {
				w = ^w
			}
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(w>>(8*uint(b))))
			}
		}
		classes[key(buf)] = append(classes[key(buf)], id)
	}

	// Build the swept graph; repr maps old literal -> new literal.
	solver := sat.New()
	solver.SetBudget(opt.ConflictBudget)
	cnf := g.ToCNF(solver, g.pos)

	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	newLit := make([]Lit, g.NumNodes())
	newLit[0] = Const0
	for i, pid := range g.pis {
		newLit[pid] = piMap[i]
	}
	// classRepr maps class key -> first node id already placed.
	classRepr := make(map[key]int)
	keyOf := make([]key, g.NumNodes())
	for k, ids := range classes {
		for _, id := range ids {
			keyOf[id] = k
		}
	}
	classRepr[keyOf[0]] = 0 // nodes equivalent to constant merge into it

	// provedEqual checks with SAT that old nodes a and b are equal up to
	// the complement relation implied by their normalized signatures.
	provedEqual := func(a, b int) bool {
		if cnf.NodeVar[a] < 0 || cnf.NodeVar[b] < 0 {
			return false // outside the PO cones; no CNF, keep distinct
		}
		inv := compl[a] != compl[b]
		la := sat.MkLit(cnf.NodeVar[a], false)
		lb := sat.MkLit(cnf.NodeVar[b], inv)
		// UNSAT of (a != b) in both polarities proves equality.
		if solver.Solve(la, lb.Not()) != sat.Unsat {
			return false
		}
		return solver.Solve(la.Not(), lb) == sat.Unsat
	}

	for id := 1; id < g.NumNodes(); id++ {
		n := &g.nodes[id]
		if n.kind == kindPI {
			// PIs are never merged away; they seed their class.
			if _, ok := classRepr[keyOf[id]]; !ok {
				classRepr[keyOf[id]] = id
			}
			continue
		}
		a := newLit[n.fan0.Node()].NotIf(n.fan0.Compl())
		b := newLit[n.fan1.Node()].NotIf(n.fan1.Compl())
		lit := ng.And(a, b)
		if rep, ok := classRepr[keyOf[id]]; ok && rep != id {
			if provedEqual(rep, id) {
				repLit := newLit[rep]
				if compl[rep] != compl[id] {
					repLit = repLit.Not()
				}
				newLit[id] = repLit
				continue
			}
		} else if !ok {
			classRepr[keyOf[id]] = id
		}
		newLit[id] = lit
	}
	for i, po := range g.pos {
		ng.AddPO(newLit[po.Node()].NotIf(po.Compl()), g.poNames[i])
	}
	return ng.Cleanup()
}

// Optimize runs the standard synthesis pipeline used before reporting
// sizes: cleanup, balance, and SAT sweeping, mirroring the paper's "after
// optimization" circuit preparation (ABC's strash/balance/fraig).
func (g *Graph) Optimize() *Graph {
	ng := g.Cleanup().Balance()
	return ng.Sweep(DefaultSweepOptions())
}
