package aig

import (
	"context"
	"encoding/binary"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/sat"
)

// SweepOptions controls SAT sweeping.
type SweepOptions struct {
	// Words is the number of 64-bit random simulation words per node used
	// to split candidate equivalence classes before SAT is consulted.
	Words int
	// SimRounds is the historical name of Words; it is consulted only when
	// Words is zero, so callers of the original API keep their behavior.
	SimRounds int
	// Workers bounds the goroutines used by the simulation kernel and the
	// SAT query pool (0 means GOMAXPROCS). The swept result is identical
	// for every worker count.
	Workers int
	// Shards is the number of solver shards equivalence queries are
	// distributed over (0 means 8). Each shard owns one incremental
	// sat.Solver; queries are assigned to shards by a fixed hash of the
	// queried node, so results do not depend on Workers. Changing Shards
	// itself may flip budget-limited (Unknown) outcomes.
	Shards int
	// MaxCEXRounds bounds the counterexample-refinement rounds: after a
	// failed equivalence proof the SAT model is appended to the pattern
	// pool and all classes are re-split, so one counterexample can kill
	// many false candidates. 0 disables refinement.
	MaxCEXRounds int
	// ConflictBudget bounds each SAT equivalence query; nodes whose query
	// exhausts the budget are conservatively kept distinct.
	ConflictBudget int64
	// TotalConflictBudget, when positive, stops the proving loop at the
	// next round boundary once the shards' combined conflict count passes
	// it. Accounting is shared across workers; the cutoff is checked only
	// between rounds so results stay deterministic.
	TotalConflictBudget int64
	// Seed makes the random simulation reproducible.
	Seed int64
	// Interrupt, when non-nil, is polled between rounds and inside the
	// shard solvers' search loops. A non-nil result aborts the sweep at
	// the earliest safe point: in-flight queries resolve as Unknown
	// (conservatively distinct) and the graph is rebuilt from the
	// merges proven so far, so an interrupted sweep still returns a
	// valid, equivalence-preserving result. The callback runs
	// concurrently from worker goroutines and must be thread-safe.
	Interrupt func() error
	// Span, when non-nil, is the parent under which each proving round
	// opens a "sweep.round" child span. Per-query SAT spans are
	// deliberately not opened (a sweep issues thousands of queries);
	// SAT work is visible through the Metrics counters instead.
	Span *obs.Span
	// Metrics, when non-nil, receives the sweep.* counters/gauges and
	// the shard solvers' sat.* counters.
	Metrics *obs.Registry
	// Stage, when non-empty, labels the sweep's worker goroutines
	// (runtime/pprof labels "stage", "sweep.shard"/"kernel") so live
	// profiles attribute sweep and simulation work to the pipeline
	// stage that triggered it.
	Stage string
	// Solvers, when non-nil, supplies the shard solvers and receives
	// them back once the proving rounds end, so pooled sweeps reuse the
	// solvers' per-variable arrays across jobs. Solvers are hard-reset
	// between uses (sat.Solver.Reset); nil allocates per sweep. The
	// pool is accessed from the shard worker goroutines and must stay
	// usable concurrently (sat.Pool is).
	Solvers *sat.Pool
}

// DefaultSweepOptions returns the settings used by the optimization flow.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Words:          8,
		Workers:        0, // GOMAXPROCS
		Shards:         8,
		MaxCEXRounds:   4,
		ConflictBudget: 2000,
		Seed:           1,
	}
}

// SweepStats reports what a sweep did; the benchmark harness uses it to
// track SAT-call reduction and budget tuning.
type SweepStats struct {
	Rounds       int // proving rounds (each ends in a deterministic merge pass)
	CEXRounds    int // rounds that appended counterexample patterns
	CEXPatterns  int // counterexample vectors added to the pool
	PatternWords int // final pattern-pool width in 64-bit words
	Queries      int64
	SATCalls     int64 // individual Solve invocations (up to 2 per query)
	ProvedEqual  int64
	Disproved    int64
	BudgetOut    int64
	Merges       int
	Interrupted  bool      // true when SweepOptions.Interrupt cut the sweep short
	Solver       sat.Stats // aggregated over the solver shards
	FaultErr     error     // injected fault that cut the sweep short (tests only)
}

// maxRepTries caps how many class representatives a node is compared
// against before it becomes a representative itself, bounding the
// fallback work on classes that random simulation failed to split.
const maxRepTries = 4

// sweepQuery is one pending equivalence query: prove member == rep up to
// the complement relation implied by their normalized signatures.
type sweepQuery struct {
	rep, member int32
}

// sweepResult is the outcome of one query. cex is the satisfying PI
// assignment packed as a bitset, present only when the proof failed and
// counterexample collection was enabled.
type sweepResult struct {
	status sat.Status
	cex    []uint64
}

// Sweep performs fraig-style SAT sweeping: nodes that random simulation
// cannot distinguish are checked for functional equivalence (up to
// complementation) with SAT, and proven-equivalent nodes are merged. The
// result is a cleaned-up, structurally hashed graph.
func (g *Graph) Sweep(opt SweepOptions) *Graph {
	ng, _ := g.SweepWithStats(opt)
	return ng
}

// SweepWithStats is Sweep returning engine statistics.
//
// The engine is parallel and counterexample-guided. Candidate classes are
// built from multi-word random simulation signatures (FNV-hashed, with
// collision checks). Pending equivalence queries are distributed over a
// pool of solver shards, each with its own incremental cone-limited CNF
// encoding, and solved concurrently by up to Workers goroutines. Failed
// proofs yield counterexample input vectors that are appended to the
// pattern pool so the next simulation round re-splits every class at
// once; proofs that fail against a class representative are retried
// against other members of the class. Queries are sharded by a fixed hash
// and merged in node order, so for a fixed Seed the swept graph is
// identical regardless of Workers.
func (g *Graph) SweepWithStats(opt SweepOptions) (*Graph, *SweepStats) {
	st := &SweepStats{}
	if g.NumAnds() == 0 {
		return g.Cleanup(), st
	}
	words := opt.Words
	if words <= 0 {
		words = opt.SimRounds
	}
	if words <= 0 {
		words = 8
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 8
	}
	numNodes := g.NumNodes()
	maxW := words + opt.MaxCEXRounds

	// Resolved metrics (nil when opt.Metrics is nil; updates no-op).
	mClasses := opt.Metrics.Gauge(obs.MSweepClasses)
	mCEX := opt.Metrics.Counter(obs.MSweepCEXRounds)
	mMerges := opt.Metrics.Counter(obs.MSweepMerges)
	mCalls := opt.Metrics.Counter(obs.MSweepSATCalls)

	// Random pattern pool: one word slice per PI, with room for the
	// counterexample words appended by refinement rounds.
	rng := rand.New(rand.NewSource(opt.Seed))
	patterns := make([][]uint64, g.NumPIs())
	for i := range patterns {
		p := make([]uint64, words, maxW)
		for w := range p {
			p[w] = rng.Uint64()
		}
		patterns[i] = p
	}
	eng := newSimEngine(g, maxW, workers)
	if opt.Stage != "" {
		eng.labels = pprof.WithLabels(context.Background(),
			pprof.Labels("stage", opt.Stage, "kernel", "sim"))
	}
	eng.run(patterns, words)

	// Only nodes in the PO cones are candidates; dangling logic is
	// dropped by the final Cleanup anyway.
	reach := make([]bool, numNodes)
	reach[0] = true
	for _, po := range g.pos {
		reach[po.Node()] = true
	}
	for id := numNodes - 1; id >= 1; id-- {
		if reach[id] && g.nodes[id].kind == kindAnd {
			reach[g.nodes[id].fan0.Node()] = true
			reach[g.nodes[id].fan1.Node()] = true
		}
	}

	// Complement-normalization flag per node: bit 0 of signature word 0.
	// Refinement only appends words, so the flags are stable across
	// rounds and each (rep, member) pair tests one fixed relation.
	compl := make([]bool, numNodes)
	for id := 0; id < numNodes; id++ {
		compl[id] = eng.vals[id*eng.stride]&1 == 1
	}

	classes := initialClasses(g, eng, words, compl, reach)
	mClasses.Set(int64(len(classes)))

	merged := make([]int32, numNodes)
	for i := range merged {
		merged[i] = -1
	}
	mergedCompl := make([]bool, numNodes)
	tries := make([]int16, numNodes)
	distinct := make(map[int64]bool)
	pairKey := func(rep, member int32) int64 { return int64(rep)<<32 | int64(member) }

	solvers := make([]*sat.Solver, shards)
	encoders := make([]*Encoder, shards)
	shardOf := func(id int32) int {
		return int((uint64(id) * 0x9E3779B97F4A7C15 >> 32) % uint64(shards))
	}

	cexWords := (g.NumPIs() + 63) / 64
	throttle := opt.MaxCEXRounds > 0
	var pending []sweepQuery
	var reps []int32
	var spentConflicts int64

	for {
		if opt.Interrupt != nil && opt.Interrupt() != nil {
			st.Interrupted = true
			break
		}
		// Build this round's queries deterministically: within each class
		// (ascending member ids), a member is compared against the first
		// representative it has not already been distinguished from;
		// members distinct from every representative — or past the retry
		// cap — become representatives themselves, so nodes whose proof
		// against the class leader failed still merge with later members.
		pending = pending[:0]
		for _, cls := range classes {
			reps = reps[:0]
			queried := false
			for _, id := range cls {
				if merged[id] >= 0 {
					continue
				}
				if len(reps) == 0 || g.nodes[id].kind != kindAnd || int(tries[id]) >= maxRepTries {
					// PIs are never merged away; they can only represent.
					reps = append(reps, id)
					continue
				}
				cand := int32(-1)
				for _, r := range reps {
					if !distinct[pairKey(r, id)] {
						cand = r
						break
					}
				}
				if cand < 0 {
					reps = append(reps, id)
					continue
				}
				// With refinement enabled, query one member per class per
				// round: a counterexample from it usually re-splits the
				// class and spares the remaining members their queries.
				if throttle && queried {
					continue
				}
				pending = append(pending, sweepQuery{rep: cand, member: id})
				queried = true
			}
		}
		if len(pending) == 0 {
			break
		}
		st.Rounds++
		st.Queries += int64(len(pending))
		rsp := opt.Span.Child("sweep.round", "aig")
		rsp.SetInt("round", int64(st.Rounds))
		rsp.SetInt("queries", int64(len(pending)))
		rsp.SetInt("classes", int64(len(classes)))
		mergesBefore := st.Merges

		// Distribute queries over the solver shards by member hash. The
		// per-shard sequence depends only on the pending list, never on
		// Workers, so budget-limited outcomes and models are reproducible.
		shardIdx := make([][]int32, shards)
		for qi, q := range pending {
			s := shardOf(q.member)
			shardIdx[s] = append(shardIdx[s], int32(qi))
		}
		results := make([]sweepResult, len(pending))
		collectCEX := st.CEXRounds < opt.MaxCEXRounds
		var satCalls, conflicts int64
		nw := workers
		if nw > shards {
			nw = shards
		}
		var wg sync.WaitGroup
		var faultMu sync.Mutex
		var workerPanic any
		var workerFault error
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// A panic must be recovered on the goroutine that raised
				// it — otherwise it kills the process no matter what the
				// sweeping goroutine defers. Hold the first panic value
				// and re-throw it after Wait, where the pipeline recover
				// boundaries can classify it.
				defer func() {
					if r := recover(); r != nil {
						faultMu.Lock()
						if workerPanic == nil {
							workerPanic = r
						}
						faultMu.Unlock()
					}
				}()
				for sh := w; sh < shards; sh += nw {
					if len(shardIdx[sh]) == 0 {
						continue
					}
					if err := fault.Point(fault.PointSweepShard); err != nil {
						faultMu.Lock()
						if workerFault == nil {
							workerFault = err
						}
						faultMu.Unlock()
						return
					}
					if opt.Stage != "" {
						pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
							pprof.Labels("stage", opt.Stage, "sweep.shard", strconv.Itoa(sh))))
					}
					if solvers[sh] == nil {
						solvers[sh] = opt.Solvers.Get()
						solvers[sh].SetBudget(opt.ConflictBudget)
						if opt.Interrupt != nil {
							solvers[sh].SetInterrupt(func() bool { return opt.Interrupt() != nil })
						}
						if opt.Metrics != nil {
							// Metrics only: per-query spans would swamp
							// the trace with thousands of events.
							solvers[sh].SetObserver(nil, opt.Metrics)
						}
						encoders[sh] = NewEncoder(g, solvers[sh])
					}
					solver, enc := solvers[sh], encoders[sh]
					for _, qi := range shardIdx[sh] {
						before := solver.Stats().Conflicts
						results[qi] = proveQuery(solver, enc, pending[qi], compl, collectCEX, cexWords, &satCalls)
						atomic.AddInt64(&conflicts, solver.Stats().Conflicts-before)
					}
				}
			}(w)
		}
		wg.Wait()
		if workerPanic != nil {
			rsp.SetStr("err", "worker panic")
			rsp.End()
			panic(workerPanic)
		}
		st.SATCalls += satCalls
		spentConflicts += conflicts
		if workerFault != nil {
			// Abandon the round mid-flight, exactly like an interrupt:
			// merges from earlier rounds stand, this round's results are
			// discarded, and the rebuilt graph below stays valid.
			st.Interrupted = true
			st.FaultErr = workerFault
			rsp.SetStr("err", workerFault.Error())
			rsp.End()
			break
		}

		// Merge and refine in deterministic pending order.
		var newCEX [][]uint64
		var cexSeen map[string]bool
		for qi := range pending {
			q := pending[qi]
			switch results[qi].status {
			case sat.Unsat:
				merged[q.member] = q.rep
				mergedCompl[q.member] = compl[q.rep] != compl[q.member]
				st.ProvedEqual++
				st.Merges++
			case sat.Sat:
				st.Disproved++
				distinct[pairKey(q.rep, q.member)] = true
				tries[q.member]++
				if cex := results[qi].cex; cex != nil && len(newCEX) < 64 {
					if cexSeen == nil {
						cexSeen = make(map[string]bool)
					}
					k := cexKey(cex)
					if !cexSeen[k] {
						cexSeen[k] = true
						newCEX = append(newCEX, cex)
					}
				}
			default: // Unknown: budget exhausted, conservatively distinct
				st.BudgetOut++
				distinct[pairKey(q.rep, q.member)] = true
				tries[q.member]++
			}
		}

		if len(newCEX) > 0 {
			// Pack up to 64 counterexample vectors into one new pattern
			// word per PI, simulate only that word, and re-split every
			// class on it: one counterexample kills many false candidates.
			w := len(patterns[0])
			for i := range patterns {
				var word uint64
				for k, vec := range newCEX {
					if vec[i/64]>>(uint(i)%64)&1 == 1 {
						word |= 1 << uint(k)
					}
				}
				patterns[i] = append(patterns[i], word)
			}
			eng.extend(patterns, w, w+1)
			classes = refineClasses(classes, eng, w, compl, merged)
			st.CEXRounds++
			st.CEXPatterns += len(newCEX)
			mCEX.Add(1)
		}
		mCalls.Add(satCalls)
		mMerges.Add(int64(st.Merges - mergesBefore))
		mClasses.Set(int64(len(classes)))
		rsp.SetInt("merges", int64(st.Merges-mergesBefore))
		rsp.SetInt("cex", int64(len(newCEX)))
		rsp.End()
		if opt.TotalConflictBudget > 0 && spentConflicts >= opt.TotalConflictBudget {
			break
		}
	}

	st.PatternWords = len(patterns[0])
	for _, s := range solvers {
		if s != nil {
			st.Solver.Add(s.Stats())
			// Counterexamples were copied out of the models round by
			// round, so nothing references the solver anymore.
			opt.Solvers.Put(s)
		}
	}

	// Rebuild the graph, replacing merged nodes by their class leaders
	// (chains resolve through strictly smaller ids, so the leader's new
	// literal always exists by the time a member needs it).
	ng := New()
	newLit := make([]Lit, numNodes)
	newLit[0] = Const0
	for i, pid := range g.pis {
		newLit[pid] = ng.PI(g.piNames[i])
	}
	for id := 1; id < numNodes; id++ {
		n := &g.nodes[id]
		if n.kind != kindAnd {
			continue
		}
		if merged[id] >= 0 {
			leader, inv := id, false
			for merged[leader] >= 0 {
				inv = inv != mergedCompl[leader]
				leader = int(merged[leader])
			}
			newLit[id] = newLit[leader].NotIf(inv)
			continue
		}
		a := newLit[n.fan0.Node()].NotIf(n.fan0.Compl())
		b := newLit[n.fan1.Node()].NotIf(n.fan1.Compl())
		newLit[id] = ng.And(a, b)
	}
	for i, po := range g.pos {
		ng.AddPO(newLit[po.Node()].NotIf(po.Compl()), g.poNames[i])
	}
	return ng.Cleanup(), st
}

// initialClasses groups the PO-cone nodes by their normalized simulation
// signatures. Signatures are keyed by a 64-bit FNV-1a hash (serialized
// with PutUint64 into a fixed buffer, not per-byte appends) and verified
// word-for-word against the class leader, so hash collisions cannot merge
// distinct signatures. Classes and their members are in ascending id
// order; singletons are dropped.
func initialClasses(g *Graph, eng *simEngine, words int, compl, reach []bool) [][]int32 {
	classes := make([][]int32, 0, 64)
	buckets := make(map[uint64][]int32)
	for id := 0; id < len(g.nodes); id++ {
		if !reach[id] {
			continue
		}
		h := sigHash(eng, id, words, compl[id])
		found := int32(-1)
		for _, ci := range buckets[h] {
			leader := classes[ci][0]
			if sigEqual(eng, id, int(leader), words, compl[id] != compl[leader]) {
				found = ci
				break
			}
		}
		if found >= 0 {
			classes[found] = append(classes[found], int32(id))
			continue
		}
		buckets[h] = append(buckets[h], int32(len(classes)))
		classes = append(classes, []int32{int32(id)})
	}
	out := classes[:0]
	for _, cls := range classes {
		if len(cls) > 1 {
			out = append(out, cls)
		}
	}
	return out
}

// sigHash is a 64-bit FNV-1a hash of node id's normalized signature,
// over the same parameters StructuralHash mixes with (structhash.go).
func sigHash(eng *simEngine, id, words int, neg bool) uint64 {
	const prime = fnvPrime64
	h := uint64(fnvOffset64)
	base := id * eng.stride
	var buf [8]byte
	for w := 0; w < words; w++ {
		v := eng.vals[base+w]
		if neg {
			v = ^v
		}
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// sigEqual reports whether nodes a and b have identical signatures up to
// the inversion inv over the first `words` words.
func sigEqual(eng *simEngine, a, b, words int, inv bool) bool {
	sa := eng.vals[a*eng.stride : a*eng.stride+words]
	sb := eng.vals[b*eng.stride : b*eng.stride+words]
	if inv {
		for w := range sa {
			if sa[w] != ^sb[w] {
				return false
			}
		}
		return true
	}
	for w := range sa {
		if sa[w] != sb[w] {
			return false
		}
	}
	return true
}

// refineClasses re-splits every class on the freshly simulated word,
// dropping merged members and dissolved classes. Group order follows the
// first member carrying each value, so the result is deterministic.
func refineClasses(classes [][]int32, eng *simEngine, word int, compl []bool, merged []int32) [][]int32 {
	out := make([][]int32, 0, len(classes))
	groupOf := make(map[uint64]int)
	for _, cls := range classes {
		start := len(out)
		for k := range groupOf {
			delete(groupOf, k)
		}
		for _, id := range cls {
			if merged[id] >= 0 {
				continue
			}
			v := eng.vals[int(id)*eng.stride+word]
			if compl[id] {
				v = ^v
			}
			gi, ok := groupOf[v]
			if !ok {
				gi = len(out)
				groupOf[v] = gi
				out = append(out, make([]int32, 0, 2))
			}
			out[gi] = append(out[gi], id)
		}
		// Drop the singletons produced by this class's split.
		keep := start
		for gi := start; gi < len(out); gi++ {
			if len(out[gi]) > 1 {
				out[keep] = out[gi]
				keep++
			}
		}
		out = out[:keep]
	}
	return out
}

// proveQuery checks with SAT that the queried nodes are equal up to the
// complement relation implied by their normalized signatures. Cones are
// encoded lazily into the shard's solver on first use. On a Sat answer
// the model's PI assignment is returned as a packed counterexample when
// collection is enabled.
func proveQuery(solver *sat.Solver, enc *Encoder, q sweepQuery, compl []bool, collectCEX bool, cexWords int, satCalls *int64) sweepResult {
	la := sat.MkLit(enc.Var(int(q.rep)), false)
	inv := compl[q.rep] != compl[q.member]
	lb := sat.MkLit(enc.Var(int(q.member)), inv)
	// UNSAT of (a != b) in both polarities proves equality.
	atomic.AddInt64(satCalls, 1)
	switch solver.Solve(la, lb.Not()) {
	case sat.Sat:
		return sweepResult{status: sat.Sat, cex: extractCEX(solver, enc, collectCEX, cexWords)}
	case sat.Unknown:
		return sweepResult{status: sat.Unknown}
	}
	atomic.AddInt64(satCalls, 1)
	switch solver.Solve(la.Not(), lb) {
	case sat.Sat:
		return sweepResult{status: sat.Sat, cex: extractCEX(solver, enc, collectCEX, cexWords)}
	case sat.Unknown:
		return sweepResult{status: sat.Unknown}
	}
	return sweepResult{status: sat.Unsat}
}

// extractCEX packs the model's primary-input assignment into a bitset.
// PIs outside every encoded cone default to false, keeping the vector a
// pure function of the shard's query sequence.
func extractCEX(solver *sat.Solver, enc *Encoder, collect bool, cexWords int) []uint64 {
	if !collect {
		return nil
	}
	vec := make([]uint64, cexWords)
	for i, pid := range enc.g.pis {
		if enc.Encoded(pid) && solver.Value(enc.Var(pid)) {
			vec[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return vec
}

// cexKey builds a map key for counterexample deduplication.
func cexKey(vec []uint64) string {
	buf := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return string(buf)
}

// Optimize runs the standard synthesis pipeline used before reporting
// sizes: cleanup, balance, and SAT sweeping, mirroring the paper's "after
// optimization" circuit preparation (ABC's strash/balance/fraig).
func (g *Graph) Optimize() *Graph { return g.OptimizeWith(DefaultSweepOptions()) }

// OptimizeWith runs cleanup, balance, and SAT sweeping with explicit
// sweep settings.
func (g *Graph) OptimizeWith(opt SweepOptions) *Graph {
	out, _ := g.OptimizeWithStats(opt)
	return out
}

// OptimizeWithStats is OptimizeWith keeping the sweep statistics, which
// callers need to tell a clean completion from an interrupted or
// fault-injected sweep (SweepStats.Interrupted / FaultErr).
func (g *Graph) OptimizeWithStats(opt SweepOptions) (*Graph, *SweepStats) {
	return g.Cleanup().Balance().SweepWithStats(opt)
}
