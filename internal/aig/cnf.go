package aig

import "circuitfold/internal/sat"

// CNF is the result of Tseitin-encoding a Graph into a sat.Solver: one
// solver variable per AIG node that was encoded (constant node included).
type CNF struct {
	// NodeVar maps AIG node id to solver variable, -1 when the node was
	// not in any encoded cone.
	NodeVar []int
}

// LitFor translates an AIG literal into a solver literal.
func (c *CNF) LitFor(l Lit) sat.Lit {
	v := c.NodeVar[l.Node()]
	if v < 0 {
		panic("aig: literal outside the encoded cone")
	}
	return sat.MkLit(v, l.Compl())
}

// ToCNF Tseitin-encodes the cones of the given root literals into s and
// returns the node-to-variable map. The constant node is constrained to
// false. Roots themselves are not asserted; use LitFor to constrain them.
func (g *Graph) ToCNF(s *sat.Solver, roots []Lit) *CNF {
	e := NewEncoder(g, s)
	e.Var(0) // constant node is always available for equivalence queries
	for _, r := range roots {
		e.Var(r.Node())
	}
	c := &CNF{NodeVar: make([]int, g.NumNodes())}
	for i := range c.NodeVar {
		c.NodeVar[i] = int(e.nodeVar[i])
	}
	return c
}

// Encoder Tseitin-encodes node cones into a solver incrementally and
// lazily: only the cone of each requested node is emitted, and nodes
// shared between cones are encoded once. The SAT-sweeping engine keeps one
// Encoder per solver shard so each equivalence query pays only for logic
// no earlier query on that shard has touched (the cone-limited alternative
// to encoding every primary-output cone up front).
type Encoder struct {
	g       *Graph
	s       *sat.Solver
	nodeVar []int32
	stack   []int32 // reused DFS scratch
}

// NewEncoder returns an empty encoding of g bound to s.
func NewEncoder(g *Graph, s *sat.Solver) *Encoder {
	e := &Encoder{g: g, s: s, nodeVar: make([]int32, g.NumNodes())}
	for i := range e.nodeVar {
		e.nodeVar[i] = -1
	}
	return e
}

// Encoded reports whether node id already has a solver variable.
func (e *Encoder) Encoded(id int) bool { return e.nodeVar[id] >= 0 }

// Var returns the solver variable of node id, encoding its cone first if
// necessary. The walk is iterative so deep cones cannot overflow the
// stack.
func (e *Encoder) Var(id int) int {
	if v := e.nodeVar[id]; v >= 0 {
		return int(v)
	}
	stack := append(e.stack[:0], int32(id))
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		if e.nodeVar[cur] >= 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		n := &e.g.nodes[cur]
		if n.kind == kindAnd {
			f0, f1 := int32(n.fan0.Node()), int32(n.fan1.Node())
			if e.nodeVar[f0] < 0 || e.nodeVar[f1] < 0 {
				if e.nodeVar[f1] < 0 {
					stack = append(stack, f1)
				}
				if e.nodeVar[f0] < 0 {
					stack = append(stack, f0)
				}
				continue
			}
		}
		v := e.s.NewVar()
		e.nodeVar[cur] = int32(v)
		switch n.kind {
		case kindConst:
			e.s.AddClause(sat.MkLit(v, true))
		case kindAnd:
			a := sat.MkLit(int(e.nodeVar[n.fan0.Node()]), n.fan0.Compl())
			b := sat.MkLit(int(e.nodeVar[n.fan1.Node()]), n.fan1.Compl())
			o := sat.MkLit(v, false)
			// o <-> a & b
			e.s.AddClause(o.Not(), a)
			e.s.AddClause(o.Not(), b)
			e.s.AddClause(o, a.Not(), b.Not())
		}
		stack = stack[:len(stack)-1]
	}
	e.stack = stack[:0]
	return int(e.nodeVar[id])
}

// Lit translates an AIG literal into a solver literal, encoding its cone
// on first use.
func (e *Encoder) Lit(l Lit) sat.Lit {
	return sat.MkLit(e.Var(l.Node()), l.Compl())
}
