package aig

import "circuitfold/internal/sat"

// CNF is the result of Tseitin-encoding a Graph into a sat.Solver: one
// solver variable per AIG node that was encoded (constant node included).
type CNF struct {
	// NodeVar maps AIG node id to solver variable, -1 when the node was
	// not in any encoded cone.
	NodeVar []int
}

// LitFor translates an AIG literal into a solver literal.
func (c *CNF) LitFor(l Lit) sat.Lit {
	v := c.NodeVar[l.Node()]
	if v < 0 {
		panic("aig: literal outside the encoded cone")
	}
	return sat.MkLit(v, l.Compl())
}

// ToCNF Tseitin-encodes the cones of the given root literals into s and
// returns the node-to-variable map. The constant node is constrained to
// false. Roots themselves are not asserted; use LitFor to constrain them.
func (g *Graph) ToCNF(s *sat.Solver, roots []Lit) *CNF {
	c := &CNF{NodeVar: make([]int, g.NumNodes())}
	for i := range c.NodeVar {
		c.NodeVar[i] = -1
	}
	var encode func(id int) int
	encode = func(id int) int {
		if c.NodeVar[id] >= 0 {
			return c.NodeVar[id]
		}
		v := s.NewVar()
		c.NodeVar[id] = v
		n := &g.nodes[id]
		switch n.kind {
		case kindConst:
			s.AddClause(sat.MkLit(v, true))
		case kindAnd:
			a := sat.MkLit(encode(n.fan0.Node()), n.fan0.Compl())
			b := sat.MkLit(encode(n.fan1.Node()), n.fan1.Compl())
			o := sat.MkLit(v, false)
			// o <-> a & b
			s.AddClause(o.Not(), a)
			s.AddClause(o.Not(), b)
			s.AddClause(o, a.Not(), b.Not())
		}
		return v
	}
	encode(0) // constant node is always available for equivalence queries
	for _, r := range roots {
		encode(r.Node())
	}
	return c
}
