package aig_test

import (
	"testing"

	"circuitfold/internal/gen"
)

// TestSimWordsWOnGeneratedCircuits cross-checks the levelized kernel
// against single-vector Eval over every assignment of small random
// circuits from the benchmark generator.
func TestSimWordsWOnGeneratedCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		pis := 5 + int(seed%4) // 5..8 inputs
		g := gen.Random(seed, pis, 3, 80)
		vectors := 1 << uint(pis)
		W := (vectors + 63) / 64
		in := make([][]uint64, pis)
		for i := range in {
			in[i] = make([]uint64, W)
			for v := 0; v < vectors; v++ {
				if v>>uint(i)&1 == 1 {
					in[i][v/64] |= 1 << (uint(v) % 64)
				}
			}
		}
		got := g.SimWordsW(in, W)
		vec := make([]bool, pis)
		for v := 0; v < vectors; v++ {
			for i := range vec {
				vec[i] = v>>uint(i)&1 == 1
			}
			want := g.Eval(vec)
			for o := range want {
				if got[o][v/64]>>(uint(v)%64)&1 == 1 != want[o] {
					t.Fatalf("seed %d: output %d differs from Eval on vector %d", seed, o, v)
				}
			}
		}
	}
}
