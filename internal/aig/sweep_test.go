package aig

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// fingerprint canonically serializes a graph's structure for equality
// comparison across sweep configurations.
func fingerprint(g *Graph) string {
	var sb strings.Builder
	for id := 1; id < g.NumNodes(); id++ {
		n := &g.nodes[id]
		switch n.kind {
		case kindPI:
			fmt.Fprintf(&sb, "i%d;", n.piIndex)
		case kindAnd:
			fmt.Fprintf(&sb, "a%d,%d;", n.fan0, n.fan1)
		}
	}
	for _, po := range g.pos {
		fmt.Fprintf(&sb, "o%d;", po)
	}
	return sb.String()
}

// chainAnd builds a left-leaning AND chain over the literals.
func chainAnd(g *Graph, lits []Lit) Lit {
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = g.And(acc, l)
	}
	return acc
}

// balancedAnd builds a balanced AND tree over the literals.
func balancedAnd(g *Graph, lits []Lit) Lit {
	for len(lits) > 1 {
		var next []Lit
		for i := 0; i+1 < len(lits); i += 2 {
			next = append(next, g.And(lits[i], lits[i+1]))
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return lits[0]
}

// repFallbackGraph builds the satellite regression scenario: a candidate
// class whose leader is not equivalent to all members. B and C both
// compute AND(x0..x9) but over rotated pairings, so no two internal
// nodes are equivalent and the rebuild's structural hashing cannot
// identify them — only a SAT proof can. With a one-word pool their wide
// signatures are (almost surely) all zero, so the constant node joins
// the class as its leader: B's and C's proofs against it fail, and they
// must still merge with each other afterwards.
func repFallbackGraph() *Graph {
	g := New()
	const n = 10
	ins := make([]Lit, n)
	for i := range ins {
		ins[i] = g.PI("")
	}
	rot := make([]Lit, n)
	for i := range rot {
		rot[i] = ins[(i+1)%n]
	}
	b := balancedAnd(g, ins)
	c := balancedAnd(g, rot)
	g.AddPO(b, "b")
	g.AddPO(c.Not(), "notc") // complemented PO: compl normalization in play
	return g
}

func TestSweepRepFallbackRegression(t *testing.T) {
	for _, cexRounds := range []int{0, 4} {
		g := repFallbackGraph()
		before := g.NumAnds() // two structurally disjoint 9-AND trees
		ng, st := g.SweepWithStats(SweepOptions{
			Words:          1,
			Workers:        1,
			MaxCEXRounds:   cexRounds,
			ConflictBudget: 2000,
			Seed:           1,
		})
		if !equivalentBySim(g, ng, 32) {
			t.Fatalf("cexRounds=%d: swept graph not equivalent", cexRounds)
		}
		// B == C must be proven by SAT: their trees share no equivalent
		// internal pair, so structural hashing cannot halve the graph.
		if ng.NumAnds() != before/2 {
			t.Fatalf("cexRounds=%d: swept to %d ANDs (from %d), want %d",
				cexRounds, ng.NumAnds(), before, before/2)
		}
		if st.ProvedEqual < 1 {
			t.Fatalf("cexRounds=%d: ProvedEqual = %d, want >= 1", cexRounds, st.ProvedEqual)
		}
		// The regression scenario is only exercised if some proof against
		// an earlier representative failed first (B or C vs the constant):
		// before the fallback fix those nodes stayed unmergeable.
		if st.Disproved == 0 {
			t.Fatalf("cexRounds=%d: expected failed representative proofs, got none", cexRounds)
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 500, 14, 8)
	opt := SweepOptions{
		Words:          2, // narrow pool: classes stay coarse, SAT does real work
		Shards:         8,
		MaxCEXRounds:   4,
		ConflictBudget: 50, // small budget: Unknown outcomes must also be stable
		Seed:           7,
	}
	var fp string
	var ref *SweepStats
	for _, workers := range []int{1, 2, 8} {
		o := opt
		o.Workers = workers
		ng, st := g.SweepWithStats(o)
		if fp == "" {
			fp = fingerprint(ng)
			ref = st
			if !equivalentBySim(g, ng, 64) {
				t.Fatal("swept graph not equivalent")
			}
			continue
		}
		if got := fingerprint(ng); got != fp {
			t.Fatalf("workers=%d: swept graph differs from workers=1 result", workers)
		}
		if st.Queries != ref.Queries || st.SATCalls != ref.SATCalls ||
			st.ProvedEqual != ref.ProvedEqual || st.Disproved != ref.Disproved ||
			st.BudgetOut != ref.BudgetOut || st.Merges != ref.Merges {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, st, ref)
		}
	}
}

// cexWorkload builds pairwise-inequivalent wide ANDs over sliding input
// windows. With a one-word pool all signatures are (almost surely) zero,
// so every member starts in one class: without refinement the engine
// pays a quadratic-ish fallback; with refinement each counterexample
// splits the class.
func cexWorkload() *Graph {
	g := New()
	const pis, members, width = 27, 12, 16
	ins := make([]Lit, pis)
	for i := range ins {
		ins[i] = g.PI("")
	}
	for m := 0; m < members; m++ {
		g.AddPO(chainAnd(g, ins[m:m+width]), "")
	}
	return g
}

func TestSweepCEXReducesSATCalls(t *testing.T) {
	opt := SweepOptions{Words: 1, Workers: 1, ConflictBudget: 2000, Seed: 3}

	g := cexWorkload()
	off := opt
	off.MaxCEXRounds = 0
	ngOff, stOff := g.SweepWithStats(off)

	on := opt
	on.MaxCEXRounds = 8
	ngOn, stOn := g.SweepWithStats(on)

	if !equivalentBySim(g, ngOff, 32) || !equivalentBySim(g, ngOn, 32) {
		t.Fatal("swept graph not equivalent")
	}
	if fingerprint(ngOff) != fingerprint(ngOn) {
		t.Fatal("refinement changed the swept result")
	}
	if stOn.CEXPatterns == 0 {
		t.Fatalf("no counterexamples collected: %+v", stOn)
	}
	if stOn.SATCalls >= stOff.SATCalls {
		t.Fatalf("refinement did not reduce SAT calls: with=%d without=%d",
			stOn.SATCalls, stOff.SATCalls)
	}
}

func TestSweepStatsConsistency(t *testing.T) {
	g := New()
	x, y, z := g.PI("x"), g.PI("y"), g.PI("z")
	g.AddPO(g.And(x, g.And(y, z)), "l")
	g.AddPO(g.And(g.And(x, y), z), "r")
	ng, st := g.SweepWithStats(DefaultSweepOptions())
	if ng.NumAnds() != 2 {
		t.Fatalf("swept to %d ANDs, want 2", ng.NumAnds())
	}
	if st.Merges != int(st.ProvedEqual) || st.Merges < 1 {
		t.Fatalf("inconsistent merge accounting: %+v", st)
	}
	if st.SATCalls < st.Queries || st.Queries < 1 {
		t.Fatalf("inconsistent query accounting: %+v", st)
	}
	if st.Solver.Propagations == 0 {
		t.Fatalf("solver stats not aggregated: %+v", st.Solver)
	}
	if !equivalentBySim(g, ng, 16) {
		t.Fatal("swept graph not equivalent")
	}
}

func TestSweepTotalConflictBudgetStops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 400, 12, 6)
	opt := SweepOptions{Words: 1, Workers: 2, MaxCEXRounds: 2, ConflictBudget: 2000, Seed: 5}
	_, unbounded := g.SweepWithStats(opt)
	opt.TotalConflictBudget = 1
	ng, st := g.SweepWithStats(opt)
	if st.Rounds > unbounded.Rounds {
		t.Fatalf("budget-limited sweep ran %d rounds, unbounded ran %d", st.Rounds, unbounded.Rounds)
	}
	if !equivalentBySim(g, ng, 32) {
		t.Fatal("budget-limited swept graph not equivalent")
	}
}

func TestSweepInterruptImmediateStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 500, 14, 8)
	stop := errors.New("stop")
	opt := SweepOptions{Words: 1, Workers: 2, MaxCEXRounds: 4, ConflictBudget: 50, Seed: 7}
	opt.Interrupt = func() error { return stop }
	ng, st := g.SweepWithStats(opt)
	if !st.Interrupted {
		t.Fatalf("stats must record the interrupt: %+v", st)
	}
	if !equivalentBySim(g, ng, 64) {
		t.Fatal("interrupted sweep broke equivalence")
	}
}

func TestSweepInterruptMidRunKeepsProvenMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := randomGraph(rng, 500, 14, 8)
	stop := errors.New("stop")
	var polls atomic.Int64
	opt := SweepOptions{Words: 1, Workers: 2, MaxCEXRounds: 4, ConflictBudget: 50, Seed: 7}
	opt.Interrupt = func() error {
		if polls.Add(1) > 32 {
			return stop
		}
		return nil
	}
	ng, _ := g.SweepWithStats(opt)
	// Whether or not the interrupt fired before completion, the result
	// must preserve the original function: merges proven before the stop
	// are kept, unproven candidates are dropped.
	if !equivalentBySim(g, ng, 64) {
		t.Fatal("mid-run interrupted sweep broke equivalence")
	}
}
