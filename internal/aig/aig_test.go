package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := MkLit(7, false)
	if l.Node() != 7 || l.Compl() {
		t.Fatalf("MkLit(7,false) = %v", l)
	}
	if n := l.Not(); n.Node() != 7 || !n.Compl() {
		t.Fatalf("Not() = %v", n)
	}
	if l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Fatal("NotIf misbehaves")
	}
	if !Const0.IsConst() || !Const1.IsConst() || Const0.Not() != Const1 {
		t.Fatal("constants misbehave")
	}
	if Const0.String() != "0" || Const1.String() != "1" {
		t.Fatal("constant String misbehaves")
	}
	if MkLit(3, true).String() != "!3" || MkLit(3, false).String() != "3" {
		t.Fatal("literal String misbehaves")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	cases := []struct {
		got, want Lit
		name      string
	}{
		{g.And(a, a), a, "x&x"},
		{g.And(a, a.Not()), Const0, "x&!x"},
		{g.And(a, Const0), Const0, "x&0"},
		{g.And(Const0, a), Const0, "0&x"},
		{g.And(a, Const1), a, "x&1"},
		{g.And(Const1, a), a, "1&x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	if g.NumAnds() != 0 {
		t.Fatalf("simplifications created nodes: %d", g.NumAnds())
	}
	ab := g.And(a, b)
	if g.And(b, a) != ab {
		t.Fatal("strashing failed to merge commuted AND")
	}
	if g.NumAnds() != 1 {
		t.Fatalf("want 1 AND, got %d", g.NumAnds())
	}
}

func TestDerivedGates(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	s := g.PI("s")
	g.AddPO(g.Or(a, b), "or")
	g.AddPO(g.Xor(a, b), "xor")
	g.AddPO(g.Xnor(a, b), "xnor")
	g.AddPO(g.Mux(s, a, b), "mux")
	g.AddPO(g.Implies(a, b), "imp")
	for v := uint64(0); v < 8; v++ {
		av, bv, sv := v&1 == 1, v&2 == 2, v&4 == 4
		out := g.EvalUint(v)
		want := []bool{av || bv, av != bv, av == bv, (sv && av) || (!sv && bv), !av || bv}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("v=%d output %s: got %v want %v", v, g.POName(i), out[i], want[i])
			}
		}
	}
}

func TestNaryGates(t *testing.T) {
	g := New()
	var ins []Lit
	for i := 0; i < 7; i++ {
		ins = append(ins, g.PI(""))
	}
	g.AddPO(g.AndN(ins...), "and")
	g.AddPO(g.OrN(ins...), "or")
	g.AddPO(g.XorN(ins...), "xor")
	g.AddPO(g.AndN(), "and0")
	g.AddPO(g.OrN(), "or0")
	g.AddPO(g.AndN(ins[3]), "and1")
	for v := uint64(0); v < 128; v++ {
		out := g.EvalUint(v)
		all, any, par := true, false, false
		for i := 0; i < 7; i++ {
			bit := v>>uint(i)&1 == 1
			all = all && bit
			any = any || bit
			par = par != bit
		}
		if out[0] != all || out[1] != any || out[2] != par {
			t.Fatalf("v=%d: and/or/xor wrong", v)
		}
		if out[3] != true || out[4] != false || out[5] != (v>>3&1 == 1) {
			t.Fatalf("v=%d: edge cases wrong", v)
		}
	}
}

func TestAdderMatchesIntegerAddition(t *testing.T) {
	const w = 6
	g := New()
	var a, b []Lit
	for i := 0; i < w; i++ {
		a = append(a, g.PI(""))
	}
	for i := 0; i < w; i++ {
		b = append(b, g.PI(""))
	}
	sum, cout := g.Adder(a, b, Const0)
	for _, s := range sum {
		g.AddPO(s, "")
	}
	g.AddPO(cout, "cout")
	for av := uint64(0); av < 1<<w; av++ {
		for bv := uint64(0); bv < 1<<w; bv += 5 {
			out := g.EvalUint(av | bv<<w)
			want := av + bv
			var got uint64
			for i := 0; i <= w; i++ {
				if out[i] {
					got |= 1 << uint(i)
				}
			}
			if got != want {
				t.Fatalf("%d+%d: got %d", av, bv, got)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	_ = g.PI("d")
	f := g.Or(g.And(a, b), c)
	got := g.Support(f)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
	if s := g.Support(Const1); len(s) != 0 {
		t.Fatalf("const support = %v", s)
	}
	if s := g.Support(b); len(s) != 1 || s[0] != 1 {
		t.Fatalf("PI support = %v", s)
	}
}

func TestSupportSetsMatchesSupport(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 70, 30, 10)
	sets := g.SupportSets()
	for o := 0; o < g.NumPOs(); o++ {
		want := g.Support(g.PO(o))
		got := sets[o]
		if len(got) != len(want) {
			t.Fatalf("po %d: got %v want %v", o, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("po %d: got %v want %v", o, got, want)
			}
		}
	}
}

func TestEvalAgreesWithSimWords(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 40, 12, 6)
	rng := rand.New(rand.NewSource(99))
	in := make([]uint64, g.NumPIs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	words := g.SimWords(in)
	for bit := 0; bit < 64; bit += 13 {
		bin := make([]bool, g.NumPIs())
		for i := range bin {
			bin[i] = in[i]>>uint(bit)&1 == 1
		}
		out := g.Eval(bin)
		for o := range out {
			if out[o] != (words[o]>>uint(bit)&1 == 1) {
				t.Fatalf("bit %d output %d disagree", bit, o)
			}
		}
	}
}

func TestTransferPreservesFunction(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(11)), 50, 10, 8)
	dst := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = dst.PI("")
	}
	roots := make([]Lit, g.NumPOs())
	for i := range roots {
		roots[i] = g.PO(i)
	}
	outs := Transfer(dst, g, piMap, roots)
	for i, o := range outs {
		dst.AddPO(o, g.POName(i))
	}
	checkEquivalentBySim(t, g, dst, 64)
}

func TestCleanupRemovesDanglingAndPreservesFunction(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	g.And(a.Not(), b.Not()) // dangling
	g.AddPO(g.Xor(a, b), "y")
	n := g.Cleanup()
	if n.NumAnds() >= g.NumAnds() {
		t.Fatalf("cleanup did not shrink: %d -> %d", g.NumAnds(), n.NumAnds())
	}
	checkEquivalentBySim(t, g, n, 16)
	if n.PIName(0) != "a" || n.POName(0) != "y" {
		t.Fatal("names lost")
	}
}

func TestBalanceReducesDepthAndPreservesFunction(t *testing.T) {
	g := New()
	var ins []Lit
	for i := 0; i < 16; i++ {
		ins = append(ins, g.PI(""))
	}
	// A long AND chain: depth 15.
	acc := ins[0]
	for i := 1; i < 16; i++ {
		acc = g.And(acc, ins[i])
	}
	g.AddPO(acc, "y")
	if g.Depth() != 15 {
		t.Fatalf("chain depth = %d", g.Depth())
	}
	n := g.Balance()
	if n.Depth() != 4 {
		t.Fatalf("balanced depth = %d, want 4", n.Depth())
	}
	checkEquivalentBySim(t, g, n, 32)
}

func TestBalanceRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 60, 8, 5)
		n := g.Balance()
		checkEquivalentBySim(t, g, n, 16)
		if n.Depth() > g.Depth() {
			t.Fatalf("balance increased depth: %d -> %d", g.Depth(), n.Depth())
		}
	}
}

func TestSweepMergesEquivalentNodes(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	// Two structurally different XOR implementations.
	x1 := g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
	x2 := g.And(g.Or(a, b), g.And(a, b).Not())
	g.AddPO(x1, "x1")
	g.AddPO(x2, "x2")
	n := g.Sweep(DefaultSweepOptions())
	checkEquivalentBySim(t, g, n, 16)
	if n.PO(0).Node() != n.PO(1).Node() {
		t.Fatalf("sweep failed to merge equivalent outputs: %v vs %v", n.PO(0), n.PO(1))
	}
	if n.NumAnds() >= g.NumAnds() {
		t.Fatalf("sweep did not shrink: %d -> %d", g.NumAnds(), n.NumAnds())
	}
}

func TestSweepMergesConstantNodes(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	// (a&b) & (a&!b) == 0, built so local rules cannot see it.
	c1 := g.And(a, b)
	c2 := g.And(a, b.Not())
	g.AddPO(g.And(c1, c2), "zero")
	g.AddPO(g.Or(a, b), "keep")
	n := g.Sweep(DefaultSweepOptions())
	checkEquivalentBySim(t, g, n, 16)
	if n.PO(0) != Const0 {
		t.Fatalf("constant output not reduced: %v", n.PO(0))
	}
}

func TestSweepRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 80, 10, 6)
		n := g.Sweep(DefaultSweepOptions())
		checkEquivalentBySim(t, g, n, 16)
		if n.NumAnds() > g.NumAnds() {
			t.Fatalf("sweep grew the graph: %d -> %d", g.NumAnds(), n.NumAnds())
		}
	}
}

func TestOptimizePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 120, 12, 9)
	n := g.Optimize()
	checkEquivalentBySim(t, g, n, 32)
}

func TestFanoutCounts(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	ab := g.And(a, b)
	g.AddPO(ab, "y0")
	g.AddPO(g.And(ab, a.Not()), "y1")
	cnt := g.FanoutCounts()
	if cnt[ab.Node()] != 2 {
		t.Fatalf("fanout of shared node = %d, want 2", cnt[ab.Node()])
	}
	if cnt[a.Node()] != 2 { // ab and the second AND
		t.Fatalf("fanout of a = %d, want 2", cnt[a.Node()])
	}
}

func TestCopyIsIndependent(t *testing.T) {
	g := New()
	a := g.PI("a")
	g.AddPO(a, "y")
	c := g.Copy()
	b := c.PI("b")
	c.AddPO(c.And(a, b), "z")
	if g.NumPIs() != 1 || g.NumPOs() != 1 {
		t.Fatal("copy mutated the original")
	}
	if c.NumPIs() != 2 || c.NumPOs() != 2 {
		t.Fatal("copy not extended")
	}
}

func TestLevelAndDepth(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	n1 := g.And(a, b)
	n2 := g.And(n1, c)
	g.AddPO(n2, "y")
	if g.Level(a.Node()) != 0 || g.Level(n1.Node()) != 1 || g.Level(n2.Node()) != 2 {
		t.Fatal("levels wrong")
	}
	if g.Depth() != 2 {
		t.Fatalf("depth = %d", g.Depth())
	}
}

func TestQuickCleanupEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 40, 9, 4)
		n := g.Cleanup()
		return equivalentBySim(g, n, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a deterministic random AIG with the given number of
// AND nodes, PIs and POs.
func randomGraph(rng *rand.Rand, ands, pis, pos int) *Graph {
	g := New()
	lits := []Lit{Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(min(ands, len(lits)))].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

func checkEquivalentBySim(t *testing.T, a, b *Graph, rounds int) {
	t.Helper()
	if !equivalentBySim(a, b, rounds) {
		t.Fatal("graphs differ under random simulation")
	}
}

func equivalentBySim(a, b *Graph, rounds int) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	rng := rand.New(rand.NewSource(12345))
	in := make([]uint64, a.NumPIs())
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		oa := a.SimWords(in)
		ob := b.SimWords(in)
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}

func TestRandomSimReproducible(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 40, 8, 4)
	a := g.RandomSim(5, rand.New(rand.NewSource(9)))
	b := g.RandomSim(5, rand.New(rand.NewSource(9)))
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("round count wrong")
	}
	for r := range a {
		for o := range a[r] {
			if a[r][o] != b[r][o] {
				t.Fatal("same seed must reproduce the same simulation")
			}
		}
	}
	c := g.RandomSim(5, rand.New(rand.NewSource(10)))
	same := true
	for r := range a {
		for o := range a[r] {
			if a[r][o] != c[r][o] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ somewhere")
	}
}

func TestEvalUintMatchesEval(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 30, 6, 3)
	for v := uint64(0); v < 64; v++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		a := g.Eval(in)
		b := g.EvalUint(v)
		for o := range a {
			if a[o] != b[o] {
				t.Fatalf("EvalUint differs at %d", v)
			}
		}
	}
}
