package aig

import (
	"math/rand"
	"testing"
)

// packExhaustive builds the W-word input pool enumerating all 2^pis
// assignments: bit k of in[i][w] is bit i of the vector index w*64+k.
func packExhaustive(pis int) ([][]uint64, int) {
	vectors := 1 << uint(pis)
	W := (vectors + 63) / 64
	in := make([][]uint64, pis)
	for i := range in {
		in[i] = make([]uint64, W)
		for v := 0; v < vectors; v++ {
			if v>>uint(i)&1 == 1 {
				in[i][v/64] |= 1 << (uint(v) % 64)
			}
		}
	}
	return in, W
}

func TestSimWordsWMatchesEvalExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pis := 4 + rng.Intn(5) // 4..8 inputs: 16..256 vectors, W up to 4
		g := randomGraph(rng, 20+rng.Intn(60), pis, 1+rng.Intn(4))
		in, W := packExhaustive(pis)
		got := g.SimWordsW(in, W)
		vec := make([]bool, pis)
		for v := 0; v < 1<<uint(pis); v++ {
			for i := range vec {
				vec[i] = v>>uint(i)&1 == 1
			}
			want := g.Eval(vec)
			for o := range want {
				bit := got[o][v/64]>>(uint(v)%64)&1 == 1
				if bit != want[o] {
					t.Fatalf("trial %d: output %d differs from Eval on vector %d", trial, o, v)
				}
			}
		}
	}
}

func TestSimWordsWConstantsAndComplementedPOs(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(Const0, "zero")
	g.AddPO(Const1, "one")
	g.AddPO(g.And(a, a.Not()), "contradiction") // strashes to Const0
	g.AddPO(g.And(a, b).Not(), "nand")
	g.AddPO(a.Not(), "nota")
	in := [][]uint64{{0xF0F0, 0xAAAA}, {0xFF00, 0xCCCC}}
	out := g.SimWordsW(in, 2)
	wants := [][]uint64{
		{0, 0},
		{^uint64(0), ^uint64(0)},
		{0, 0},
		{^(in[0][0] & in[1][0]), ^(in[0][1] & in[1][1])},
		{^in[0][0], ^in[0][1]},
	}
	for o, want := range wants {
		for w := range want {
			if out[o][w] != want[w] {
				t.Fatalf("PO %d word %d = %#x, want %#x", o, w, out[o][w], want[w])
			}
		}
	}
}

func TestSimWordsWMatchesSimWordsPerWord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 300, 16, 8)
	const W = 5
	in := make([][]uint64, g.NumPIs())
	for i := range in {
		in[i] = make([]uint64, W)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	got := g.SimWordsW(in, W)
	col := make([]uint64, g.NumPIs())
	for w := 0; w < W; w++ {
		for i := range col {
			col[i] = in[i][w]
		}
		want := g.SimWords(col)
		for o := range want {
			if got[o][w] != want[o] {
				t.Fatalf("word %d output %d: got %#x want %#x", w, o, got[o][w], want[o])
			}
		}
	}
}

// wideGraph builds a graph with wide levels so runLevel actually splits
// work across workers (each level has >> 4*workers AND nodes).
func wideGraph(rng *rand.Rand, pis, width, depth int) *Graph {
	g := New()
	layer := make([]Lit, pis)
	for i := range layer {
		layer[i] = g.PI("")
	}
	for d := 0; d < depth; d++ {
		next := make([]Lit, width)
		for j := range next {
			a := layer[rng.Intn(len(layer))].NotIf(rng.Intn(2) == 0)
			b := layer[rng.Intn(len(layer))].NotIf(rng.Intn(2) == 0)
			next[j] = g.And(a, b)
		}
		layer = next
	}
	for j := 0; j < 8; j++ {
		g.AddPO(layer[rng.Intn(len(layer))].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// TestSimEngineWorkersAgree drives the engine with several worker counts
// over a wide graph and checks bit-identical arenas. Run under -race this
// also exercises the concurrent level evaluation for data races even on a
// single-CPU host, since the goroutines are spawned regardless.
func TestSimEngineWorkersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := wideGraph(rng, 24, 120, 6)
	const W = 4
	in := make([][]uint64, g.NumPIs())
	for i := range in {
		in[i] = make([]uint64, W)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	ref := newSimEngine(g, W, 1)
	ref.run(in, W)
	for _, workers := range []int{2, 4, 8} {
		e := newSimEngine(g, W, workers)
		e.run(in, W)
		for i := range e.vals {
			if e.vals[i] != ref.vals[i] {
				t.Fatalf("workers=%d: arena word %d differs", workers, i)
			}
		}
	}
}

func TestSimEngineExtendIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 200, 12, 4)
	const W = 6
	in := make([][]uint64, g.NumPIs())
	for i := range in {
		in[i] = make([]uint64, W)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	full := newSimEngine(g, W, 1)
	full.run(in, W)
	inc := newSimEngine(g, W, 2)
	inc.run(in, 2)
	inc.extend(in, 2, 4) // words appended in two later batches
	inc.extend(in, 4, W)
	for i := range inc.vals {
		if inc.vals[i] != full.vals[i] {
			t.Fatalf("incremental extend diverges at arena word %d", i)
		}
	}
}
