package aig

// Transfer copies the cone of each literal in roots from g into dst,
// substituting g's primary inputs with the literals in piMap (one per PI
// of g, in PI order). It returns the corresponding literals in dst.
// Structural hashing in dst merges shared logic across calls, which is
// what time-frame expansion and folding rely on.
func Transfer(dst *Graph, g *Graph, piMap []Lit, roots []Lit) []Lit {
	if len(piMap) != g.NumPIs() {
		panic("aig: Transfer piMap width mismatch")
	}
	memo := make([]Lit, g.NumNodes())
	done := make([]bool, g.NumNodes())
	memo[0], done[0] = Const0, true
	for i, pid := range g.pis {
		memo[pid], done[pid] = piMap[i], true
	}
	var copyNode func(id int) Lit
	copyNode = func(id int) Lit {
		if done[id] {
			return memo[id]
		}
		n := &g.nodes[id]
		a := copyNode(n.fan0.Node()).NotIf(n.fan0.Compl())
		b := copyNode(n.fan1.Node()).NotIf(n.fan1.Compl())
		l := dst.And(a, b)
		memo[id], done[id] = l, true
		return l
	}
	out := make([]Lit, len(roots))
	for i, r := range roots {
		out[i] = copyNode(r.Node()).NotIf(r.Compl())
	}
	return out
}

// Cleanup returns a structurally hashed copy of g containing only logic
// reachable from the primary outputs, preserving PI and PO order and
// names. Dangling nodes introduced by rewrites disappear.
func (g *Graph) Cleanup() *Graph {
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	outs := Transfer(ng, g, piMap, g.pos)
	for i, o := range outs {
		ng.AddPO(o, g.poNames[i])
	}
	return ng
}

// Balance rebuilds the graph with multi-input AND trees re-associated into
// balanced form, reducing depth. Trees are collected through single-fanout
// conjunction chains only, so shared logic is not duplicated.
func (g *Graph) Balance() *Graph {
	fanout := g.FanoutCounts()
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	memo := make(map[Lit]Lit)
	memo[Const0] = Const0
	memo[Const1] = Const1
	for i, pid := range g.pis {
		memo[MkLit(pid, false)] = piMap[i]
		memo[MkLit(pid, true)] = piMap[i].Not()
	}

	// collect gathers the conjunct leaves of the AND tree rooted at lit,
	// stopping at complemented edges, PIs, and multi-fanout nodes.
	var collect func(lit Lit, leaves *[]Lit)
	collect = func(lit Lit, leaves *[]Lit) {
		id := lit.Node()
		if lit.Compl() || !g.IsAnd(id) || fanout[id] > 1 {
			*leaves = append(*leaves, lit)
			return
		}
		f0, f1 := g.Fanins(id)
		collect(f0, leaves)
		collect(f1, leaves)
	}

	var build func(lit Lit) Lit
	build = func(lit Lit) Lit {
		if r, ok := memo[lit]; ok {
			return r
		}
		pos := lit & ^Lit(1)
		// Descend into the root unconditionally; collect stops at shared
		// or complemented sub-trees below it.
		f0, f1 := g.Fanins(pos.Node())
		var leaves []Lit
		collect(f0, &leaves)
		collect(f1, &leaves)
		mapped := make([]Lit, len(leaves))
		for i, lf := range leaves {
			mapped[i] = build(lf)
		}
		// Pair shallowest first for minimum depth.
		for len(mapped) > 1 {
			sortByLevel(ng, mapped)
			a := ng.And(mapped[0], mapped[1])
			mapped = append(mapped[2:], a)
		}
		r := mapped[0]
		memo[pos] = r
		memo[pos.Not()] = r.Not()
		return r.NotIf(lit.Compl())
	}
	for i, po := range g.pos {
		ng.AddPO(build(po), g.poNames[i])
	}
	return ng
}

func sortByLevel(g *Graph, ls []Lit) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && g.Level(ls[j].Node()) < g.Level(ls[j-1].Node()); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
