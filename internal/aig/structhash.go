package aig

// Canonical FNV-1a parameters, shared with sigHash (sweep.go): the
// structural hash builds on the same mixing primitive, applied to
// canonical per-node signatures instead of raw simulation words.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Tags separating the record kinds mixed into the hashes, so a PI can
// never collide with an AND over coincidentally equal payloads.
const (
	shPI uint64 = iota + 1
	shAnd
	shPO
	shConst
)

// StructuralHash returns a canonical 64-bit hash of the graph's
// structure. Every node gets a Merkle-style signature computed from
// its kind and its fanins' signatures (the node array is topological,
// so one forward pass suffices), and the hash digests the PI/PO counts
// plus the output signatures in PO order. The signature of an AND
// sorts its two fanin keys, and a PI's signature is its position, so
// the hash is invariant under everything that does not change the
// circuit as wired:
//
//   - node renumbering (two builds of the same structure in different
//     creation orders hash equal, even though their Lit values differ),
//   - stored fanin order (sorting the fanin keys undoes And's
//     Lit-value normalization, which depends on the numbering),
//   - dead nodes (ANDs unreachable from every PO never reach the
//     digest),
//   - PI/PO names (only positions enter the hash).
//
// Because Graphs are structurally hashed as they are built (no two
// ANDs share an ordered fanin pair), equal subcircuit signatures mean
// equal subcircuits, so — up to a 64-bit collision — equal hashes mean
// isomorphic reachable graphs with identical pin interfaces, which
// fold bit-identically under identical options. That is what lets the
// fold service key its result cache on this value: an uploaded netlist
// and a generator spec that build the same AIG hit the same cache
// entry. The hash is deliberately sensitive to PI/PO order and to the
// total PI/PO counts (unused inputs included): pin scheduling — and
// thus the folded circuit — depends on them.
func StructuralHash(g *Graph) uint64 {
	// edge key: fanin signature with the complement bit folded in.
	sigs := make([]uint64, len(g.nodes))
	key := func(l Lit) uint64 {
		return sigs[l.Node()]<<1 | uint64(l&1)
	}
	for id := range g.nodes {
		n := &g.nodes[id]
		h := uint64(fnvOffset64)
		mix := func(v uint64) {
			h ^= v
			h *= fnvPrime64
		}
		switch n.kind {
		case kindConst:
			mix(shConst)
		case kindPI:
			mix(shPI)
			mix(uint64(n.piIndex))
		case kindAnd:
			k0, k1 := key(n.fan0), key(n.fan1)
			if k0 > k1 {
				k0, k1 = k1, k0
			}
			mix(shAnd)
			mix(k0)
			mix(k1)
		}
		sigs[id] = h
	}

	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime64
	}
	mix(uint64(len(g.pis)))
	mix(uint64(len(g.pos)))
	for _, po := range g.pos {
		mix(shPO)
		mix(key(po))
	}
	return h
}
