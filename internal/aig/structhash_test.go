package aig

import "testing"

// buildDiamond builds out = (a&b) & (c&d) with the two inner ANDs
// created in the given order, so the two variants hold the same
// structure under different node numberings (and, at the outer AND,
// a different stored fanin order after And's Lit normalization).
func buildDiamond(innerFirst bool) *Graph {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	d := g.PI("d")
	var x, y Lit
	if innerFirst {
		x = g.And(a, b)
		y = g.And(c, d)
	} else {
		y = g.And(c, d)
		x = g.And(a, b)
	}
	g.AddPO(g.And(x, y), "out")
	return g
}

func TestStructuralHashRenumberingInvariant(t *testing.T) {
	g1 := buildDiamond(true)
	g2 := buildDiamond(false)
	if g1.And(g1.PILit(0), g1.PILit(1)) == g2.And(g2.PILit(0), g2.PILit(1)) {
		// Sanity only: the builds really do number nodes differently.
		t.Log("builds coincidentally share numbering")
	}
	h1, h2 := StructuralHash(g1), StructuralHash(g2)
	if h1 != h2 {
		t.Fatalf("same structure, different hash: %#x vs %#x", h1, h2)
	}
}

func TestStructuralHashIgnoresDeadNodesAndNames(t *testing.T) {
	g1 := buildDiamond(true)
	ref := StructuralHash(g1)

	// Dead AND: reachable from no PO, so it must not perturb the hash.
	g2 := buildDiamond(true)
	g2.And(g2.PILit(0), g2.PILit(3))
	if h := StructuralHash(g2); h != ref {
		t.Fatalf("dead node changed hash: %#x vs %#x", h, ref)
	}

	// Names are not structure.
	g3 := New()
	a := g3.PI("in0")
	b := g3.PI("in1")
	c := g3.PI("in2")
	d := g3.PI("in3")
	g3.AddPO(g3.And(g3.And(a, b), g3.And(c, d)), "y")
	if h := StructuralHash(g3); h != ref {
		t.Fatalf("renamed pins changed hash: %#x vs %#x", h, ref)
	}
}

func TestStructuralHashCollisions(t *testing.T) {
	g1 := buildDiamond(true)
	ref := StructuralHash(g1)

	// Different function.
	g2 := New()
	a := g2.PI("a")
	b := g2.PI("b")
	c := g2.PI("c")
	d := g2.PI("d")
	g2.AddPO(g2.And(g2.Or(a, b), g2.And(c, d)), "out")
	if h := StructuralHash(g2); h == ref {
		t.Fatalf("different function, same hash %#x", h)
	}

	// An extra (unused) PI changes the pin interface, so it must
	// change the hash: pin scheduling sees all PIs.
	g3 := buildDiamond(true)
	g3.PI("spare")
	if h := StructuralHash(g3); h == ref {
		t.Fatalf("extra PI, same hash %#x", h)
	}

	// Complemented output is a different circuit.
	g4 := buildDiamond(true)
	g4.SetPO(0, g4.PO(0).Not())
	if h := StructuralHash(g4); h == ref {
		t.Fatalf("complemented PO, same hash %#x", h)
	}
}

func TestStructuralHashSensitiveToPOOrder(t *testing.T) {
	build := func(swap bool) *Graph {
		g := New()
		a := g.PI("a")
		b := g.PI("b")
		x := g.And(a, b)
		y := g.Or(a, b)
		if swap {
			x, y = y, x
		}
		g.AddPO(x, "o0")
		g.AddPO(y, "o1")
		return g
	}
	if h1, h2 := StructuralHash(build(false)), StructuralHash(build(true)); h1 == h2 {
		t.Fatalf("permuted POs, same hash %#x (schedules differ, hashes must too)", h1)
	}
}

func TestStructuralHashConstantOutputs(t *testing.T) {
	g1 := New()
	g1.PI("a")
	g1.AddPO(Const0, "o")
	g2 := New()
	g2.PI("a")
	g2.AddPO(Const1, "o")
	if h1, h2 := StructuralHash(g1), StructuralHash(g2); h1 == h2 {
		t.Fatalf("const-0 and const-1 outputs share hash %#x", h1)
	}
}
