package aig

import "math/rand"

// SimWords evaluates the graph on 64 input vectors at once. in holds one
// 64-bit word per primary input (bit k of word i is the value of input i
// in vector k); the result holds one word per primary output.
func (g *Graph) SimWords(in []uint64) []uint64 {
	if len(in) != len(g.pis) {
		panic("aig: SimWords input width mismatch")
	}
	vals := make([]uint64, len(g.nodes))
	g.simInto(vals, in)
	out := make([]uint64, len(g.pos))
	for i, po := range g.pos {
		v := vals[po.Node()]
		if po.Compl() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// simInto fills vals (len == NumNodes) with the 64-way simulation values
// of every node given the PI words.
func (g *Graph) simInto(vals []uint64, in []uint64) {
	vals[0] = 0
	for i := 1; i < len(g.nodes); i++ {
		n := &g.nodes[i]
		switch n.kind {
		case kindPI:
			vals[i] = in[n.piIndex]
		case kindAnd:
			v0 := vals[n.fan0.Node()]
			if n.fan0.Compl() {
				v0 = ^v0
			}
			v1 := vals[n.fan1.Node()]
			if n.fan1.Compl() {
				v1 = ^v1
			}
			vals[i] = v0 & v1
		}
	}
}

// Eval evaluates the graph on a single Boolean input assignment.
func (g *Graph) Eval(in []bool) []bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	ow := g.SimWords(words)
	out := make([]bool, len(ow))
	for i, w := range ow {
		out[i] = w&1 == 1
	}
	return out
}

// EvalUint evaluates the graph reading the input assignment from the bits
// of v (input i gets bit i); useful for exhaustive sweeps of small
// circuits.
func (g *Graph) EvalUint(v uint64) []bool {
	in := make([]bool, len(g.pis))
	for i := range in {
		in[i] = v>>uint(i)&1 == 1
	}
	return g.Eval(in)
}

// RandomSim runs rounds of 64-way random simulation and returns the output
// words of every round concatenated: result[r][o] is output o in round r.
// The rng makes runs reproducible.
func (g *Graph) RandomSim(rounds int, rng *rand.Rand) [][]uint64 {
	res := make([][]uint64, rounds)
	in := make([]uint64, len(g.pis))
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		res[r] = g.SimWords(in)
	}
	return res
}
