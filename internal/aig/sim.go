package aig

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sync"
)

// SimWords evaluates the graph on 64 input vectors at once. in holds one
// 64-bit word per primary input (bit k of word i is the value of input i
// in vector k); the result holds one word per primary output.
func (g *Graph) SimWords(in []uint64) []uint64 {
	if len(in) != len(g.pis) {
		panic("aig: SimWords input width mismatch")
	}
	vals := make([]uint64, len(g.nodes))
	g.simInto(vals, in)
	out := make([]uint64, len(g.pos))
	for i, po := range g.pos {
		v := vals[po.Node()]
		if po.Compl() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// simInto fills vals (len == NumNodes) with the 64-way simulation values
// of every node given the PI words.
func (g *Graph) simInto(vals []uint64, in []uint64) {
	vals[0] = 0
	for i := 1; i < len(g.nodes); i++ {
		n := &g.nodes[i]
		switch n.kind {
		case kindPI:
			vals[i] = in[n.piIndex]
		case kindAnd:
			v0 := vals[n.fan0.Node()]
			if n.fan0.Compl() {
				v0 = ^v0
			}
			v1 := vals[n.fan1.Node()]
			if n.fan1.Compl() {
				v1 = ^v1
			}
			vals[i] = v0 & v1
		}
	}
}

// SimWordsW evaluates the graph on W*64 input vectors at once using the
// levelized parallel kernel. in holds one slice of at least W words per
// primary input (bit k of in[i][w] is the value of input i in vector
// w*64+k); the result holds one W-word slice per primary output. Work is
// fanned out across GOMAXPROCS workers; results are identical to W
// independent SimWords calls regardless of worker count.
func (g *Graph) SimWordsW(in [][]uint64, W int) [][]uint64 {
	if len(in) != len(g.pis) {
		panic("aig: SimWordsW input width mismatch")
	}
	for i := range in {
		if len(in[i]) < W {
			panic("aig: SimWordsW input slice shorter than W")
		}
	}
	e := newSimEngine(g, W, runtime.GOMAXPROCS(0))
	e.run(in, W)
	out := make([][]uint64, len(g.pos))
	for i, po := range g.pos {
		row := make([]uint64, W)
		copy(row, e.sig(po.Node(), W))
		if po.Compl() {
			for w := range row {
				row[w] = ^row[w]
			}
		}
		out[i] = row
	}
	return out
}

// simEngine is a reusable W-word levelized simulation kernel. The
// topological level schedule is computed once at construction and the
// value arena is allocated once, so repeated runs (the SAT-sweeping
// refinement loop) do not allocate. Nodes on the same level have no
// dependencies among themselves, so each level's node range is split
// across workers.
type simEngine struct {
	g       *Graph
	stride  int // words reserved per node in vals
	workers int

	order    []int32 // AND node ids grouped by level, ascending within a level
	levelEnd []int32 // order[levelEnd[l-1]:levelEnd[l]] holds level l+1's ANDs

	vals []uint64 // NumNodes*stride scratch arena

	// labels, when non-nil, carries runtime/pprof goroutine labels the
	// per-level workers run under, so live profiles attribute the
	// simulation kernel to its pipeline stage.
	labels context.Context
}

// newSimEngine builds a kernel for graphs simulated with up to maxWords
// words per node.
func newSimEngine(g *Graph, maxWords, workers int) *simEngine {
	if workers < 1 {
		workers = 1
	}
	e := &simEngine{g: g, stride: maxWords, workers: workers}
	// Counting sort of the AND nodes by level. Levels are maintained
	// incrementally by And(), so no traversal is needed.
	maxLevel := 0
	numAnds := 0
	for id := 1; id < len(g.nodes); id++ {
		if g.nodes[id].kind != kindAnd {
			continue
		}
		numAnds++
		if l := int(g.nodes[id].level); l > maxLevel {
			maxLevel = l
		}
	}
	counts := make([]int32, maxLevel+1)
	for id := 1; id < len(g.nodes); id++ {
		if g.nodes[id].kind == kindAnd {
			counts[g.nodes[id].level]++
		}
	}
	e.levelEnd = make([]int32, 0, maxLevel)
	pos := make([]int32, maxLevel+1)
	total := int32(0)
	for l := 1; l <= maxLevel; l++ {
		pos[l] = total
		total += counts[l]
		e.levelEnd = append(e.levelEnd, total)
	}
	e.order = make([]int32, numAnds)
	for id := 1; id < len(g.nodes); id++ {
		if g.nodes[id].kind == kindAnd {
			l := g.nodes[id].level
			e.order[pos[l]] = int32(id)
			pos[l]++
		}
	}
	e.vals = make([]uint64, len(g.nodes)*maxWords)
	return e
}

// sig returns the first w value words of node id from the arena.
func (e *simEngine) sig(id, w int) []uint64 {
	return e.vals[id*e.stride : id*e.stride+w]
}

// run evaluates words [0, w) for every node. in[i] supplies the words of
// primary input i.
func (e *simEngine) run(in [][]uint64, w int) { e.extend(in, 0, w) }

// extend evaluates only the word range [from, to) for every node, leaving
// earlier words untouched. The refinement loop uses this to simulate newly
// appended counterexample patterns without recomputing the whole pool.
func (e *simEngine) extend(in [][]uint64, from, to int) {
	if to > e.stride {
		panic("aig: simEngine word range exceeds arena stride")
	}
	for w := from; w < to; w++ {
		e.vals[w] = 0 // constant node
	}
	for i, pid := range e.g.pis {
		copy(e.vals[pid*e.stride+from:pid*e.stride+to], in[i][from:to])
	}
	prev := int32(0)
	for _, end := range e.levelEnd {
		e.runLevel(e.order[prev:end], from, to)
		prev = end
	}
}

// runLevel evaluates one level's AND nodes, splitting the range across
// workers when it is large enough to amortize the goroutine overhead.
func (e *simEngine) runLevel(ids []int32, from, to int) {
	if e.workers <= 1 || len(ids) < 4*e.workers {
		e.evalRange(ids, from, to)
		return
	}
	chunk := (len(ids) + e.workers - 1) / e.workers
	var wg sync.WaitGroup
	for start := 0; start < len(ids); start += chunk {
		end := start + chunk
		if end > len(ids) {
			end = len(ids)
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			if e.labels != nil {
				pprof.SetGoroutineLabels(e.labels)
			}
			e.evalRange(part, from, to)
		}(ids[start:end])
	}
	wg.Wait()
}

// evalRange evaluates words [from, to) of the given AND nodes. The four
// complement combinations are split into dedicated loops so the inner
// word loop carries no branches.
func (e *simEngine) evalRange(ids []int32, from, to int) {
	stride := e.stride
	for _, id := range ids {
		n := &e.g.nodes[id]
		dst := e.vals[int(id)*stride+from : int(id)*stride+to]
		s0 := e.vals[n.fan0.Node()*stride+from : n.fan0.Node()*stride+to]
		s1 := e.vals[n.fan1.Node()*stride+from : n.fan1.Node()*stride+to]
		switch {
		case !n.fan0.Compl() && !n.fan1.Compl():
			for w := range dst {
				dst[w] = s0[w] & s1[w]
			}
		case n.fan0.Compl() && !n.fan1.Compl():
			for w := range dst {
				dst[w] = ^s0[w] & s1[w]
			}
		case !n.fan0.Compl() && n.fan1.Compl():
			for w := range dst {
				dst[w] = s0[w] & ^s1[w]
			}
		default:
			for w := range dst {
				dst[w] = ^s0[w] & ^s1[w]
			}
		}
	}
}

// Eval evaluates the graph on a single Boolean input assignment.
func (g *Graph) Eval(in []bool) []bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	ow := g.SimWords(words)
	out := make([]bool, len(ow))
	for i, w := range ow {
		out[i] = w&1 == 1
	}
	return out
}

// EvalUint evaluates the graph reading the input assignment from the bits
// of v (input i gets bit i); useful for exhaustive sweeps of small
// circuits.
func (g *Graph) EvalUint(v uint64) []bool {
	in := make([]bool, len(g.pis))
	for i := range in {
		in[i] = v>>uint(i)&1 == 1
	}
	return g.Eval(in)
}

// RandomSim runs rounds of 64-way random simulation and returns the output
// words of every round concatenated: result[r][o] is output o in round r.
// The rng makes runs reproducible.
func (g *Graph) RandomSim(rounds int, rng *rand.Rand) [][]uint64 {
	res := make([][]uint64, rounds)
	in := make([]uint64, len(g.pis))
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		res[r] = g.SimWords(in)
	}
	return res
}
