package aig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCofactor(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.And(a, b), "y")
	c1 := g.Cofactor(0, true)
	if c1.NumPIs() != 2 {
		t.Fatal("cofactor must preserve the pin interface")
	}
	// y|a=1 = b.
	if out := c1.Eval([]bool{false, true}); !out[0] {
		t.Fatal("cofactor a=1 wrong")
	}
	c0 := g.Cofactor(0, false)
	if c0.PO(0) != Const0 {
		t.Fatal("cofactor a=0 should collapse to constant 0")
	}
}

func TestCofactorShannonExpansion(t *testing.T) {
	// f == (a & f|a=1) | (!a & f|a=0) for random circuits.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 50, 8, 4)
		pi := rng.Intn(8)
		hi := g.Cofactor(pi, true)
		lo := g.Cofactor(pi, false)
		in := make([]bool, 8)
		for v := 0; v < 64; v++ {
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			want := g.Eval(in)
			var got []bool
			if in[pi] {
				got = hi.Eval(in)
			} else {
				got = lo.Eval(in)
			}
			for o := range want {
				if want[o] != got[o] {
					t.Fatalf("trial %d: Shannon expansion violated at output %d", trial, o)
				}
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	g.AddPO(g.Or(g.And(a, b), c), "y")
	r := g.Restrict(map[int]bool{0: true, 2: false})
	// y|a=1,c=0 = b.
	if out := r.Eval([]bool{false, true, false}); !out[0] {
		t.Fatal("restrict wrong")
	}
	if out := r.Eval([]bool{true, false, true}); out[0] {
		t.Fatal("restricted inputs must be ignored")
	}
}

func TestExtractCones(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	g.AddPO(g.And(a, b), "y0")
	g.AddPO(g.Xor(b, c), "y1")
	g.AddPO(g.Or(a, c), "y2")
	sub := g.ExtractCones([]int{1})
	if sub.NumPOs() != 1 || sub.POName(0) != "y1" {
		t.Fatalf("cone extraction wrong: %d POs", sub.NumPOs())
	}
	if sub.NumPIs() != 3 {
		t.Fatal("cone extraction must preserve inputs")
	}
	for v := uint64(0); v < 8; v++ {
		if sub.EvalUint(v)[0] != g.EvalUint(v)[1] {
			t.Fatalf("cone function changed at %d", v)
		}
	}
	if sub.NumAnds() >= g.NumAnds() {
		t.Fatal("cone should drop unrelated logic")
	}
}

func TestConeSize(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	x := g.And(a, b)
	y := g.And(x, a.Not())
	g.AddPO(y, "y")
	if got := g.ConeSize(y); got != 2 {
		t.Fatalf("cone size = %d, want 2", got)
	}
	if got := g.ConeSize(a); got != 0 {
		t.Fatalf("PI cone size = %d, want 0", got)
	}
}

func TestLevelsHistogram(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	c := g.PI("c")
	l1 := g.And(a, b)
	l2 := g.And(l1, c)
	g.AddPO(l2, "y")
	hist := g.Levels()
	if hist[0] != 0 || hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("levels histogram = %v", hist)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a := g.PI("a")
	b := g.PI("b")
	g.AddPO(g.And(a, b.Not()), "y")
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", "shape=box", "doublecircle", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
