// Package aig implements And-Inverter Graphs (AIGs), the circuit data
// structure underlying every transformation in this library.
//
// An AIG represents a combinational Boolean network using only two-input
// AND gates and edge inversions. Nodes are identified by small integers;
// an edge is a Lit, which packs a node id and a complement flag. Node 0 is
// the constant-false node, so Const0 = Lit(0) and Const1 = Lit(1).
//
// Graphs are built incrementally through And (and the derived Or, Xor,
// Mux, ...) with structural hashing and local simplification, so a Graph
// never contains two ANDs with the same ordered fanin pair and never
// contains trivially reducible ANDs (x&x, x&!x, x&0, x&1). Because a
// node's fanins must exist before the node is created, the node array is
// always in topological order, which the rest of the library relies on.
package aig

import (
	"fmt"
	"math/bits"
	"sort"
)

// Lit is an edge in the AIG: a node id shifted left once, with the low bit
// set when the edge is complemented.
type Lit uint32

// Constant literals. Node 0 is the constant-false node.
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// MkLit builds a literal from a node id and a complement flag.
func MkLit(node int, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id the literal points at.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// IsConst reports whether the literal is one of the two constants.
func (l Lit) IsConst() bool { return l.Node() == 0 }

// String renders the literal as, e.g., "7" or "!7", with "0"/"1" for the
// constants.
func (l Lit) String() string {
	if l == Const0 {
		return "0"
	}
	if l == Const1 {
		return "1"
	}
	if l.Compl() {
		return fmt.Sprintf("!%d", l.Node())
	}
	return fmt.Sprintf("%d", l.Node())
}

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindPI
	kindAnd
)

type node struct {
	kind    nodeKind
	fan0    Lit // meaningful for kindAnd only
	fan1    Lit
	level   int32
	piIndex int32 // meaningful for kindPI only
}

// Graph is a mutable AIG under construction. The zero value is not usable;
// call New.
type Graph struct {
	nodes []node
	pis   []int // node ids of primary inputs, in creation order
	pos   []Lit // primary output literals, in creation order

	piNames []string
	poNames []string

	strash map[[2]Lit]int
}

// New returns an empty graph containing only the constant node.
func New() *Graph {
	g := &Graph{
		nodes:  make([]node, 1, 256),
		strash: make(map[[2]Lit]int),
	}
	g.nodes[0] = node{kind: kindConst}
	return g
}

// NumNodes returns the total number of nodes, including the constant node
// and the primary inputs.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes, the usual "AIG size" metric.
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *Graph) NumPOs() int { return len(g.pos) }

// PI creates a new primary input and returns its (positive) literal.
func (g *Graph) PI(name string) Lit {
	id := len(g.nodes)
	g.nodes = append(g.nodes, node{kind: kindPI, piIndex: int32(len(g.pis))})
	g.pis = append(g.pis, id)
	if name == "" {
		name = fmt.Sprintf("x%d", len(g.pis)-1)
	}
	g.piNames = append(g.piNames, name)
	return MkLit(id, false)
}

// PILit returns the literal of the i-th primary input.
func (g *Graph) PILit(i int) Lit { return MkLit(g.pis[i], false) }

// PIName returns the name of the i-th primary input.
func (g *Graph) PIName(i int) string { return g.piNames[i] }

// PIIndex returns the PI position of node id, or -1 when the node is not a
// primary input.
func (g *Graph) PIIndex(id int) int {
	if g.nodes[id].kind != kindPI {
		return -1
	}
	return int(g.nodes[id].piIndex)
}

// AddPO registers lit as a primary output and returns its output index.
func (g *Graph) AddPO(lit Lit, name string) int {
	idx := len(g.pos)
	g.pos = append(g.pos, lit)
	if name == "" {
		name = fmt.Sprintf("y%d", idx)
	}
	g.poNames = append(g.poNames, name)
	return idx
}

// PO returns the literal driving the i-th primary output.
func (g *Graph) PO(i int) Lit { return g.pos[i] }

// SetPO replaces the driver of the i-th primary output.
func (g *Graph) SetPO(i int, lit Lit) { g.pos[i] = lit }

// POName returns the name of the i-th primary output.
func (g *Graph) POName(i int) string { return g.poNames[i] }

// SetPOName renames the i-th primary output.
func (g *Graph) SetPOName(i int, name string) { g.poNames[i] = name }

// IsPI reports whether node id is a primary input.
func (g *Graph) IsPI(id int) bool { return g.nodes[id].kind == kindPI }

// IsAnd reports whether node id is an AND gate.
func (g *Graph) IsAnd(id int) bool { return g.nodes[id].kind == kindAnd }

// Fanins returns the two fanin literals of AND node id.
func (g *Graph) Fanins(id int) (Lit, Lit) {
	n := &g.nodes[id]
	if n.kind != kindAnd {
		panic(fmt.Sprintf("aig: node %d is not an AND", id))
	}
	return n.fan0, n.fan1
}

// Level returns the logic depth of node id (PIs and the constant are level
// 0).
func (g *Graph) Level(id int) int { return int(g.nodes[id].level) }

// Depth returns the maximum logic level over the primary outputs.
func (g *Graph) Depth() int {
	d := 0
	for _, po := range g.pos {
		if l := g.Level(po.Node()); l > d {
			d = l
		}
	}
	return d
}

// And returns a literal for a AND b, creating a node only when no
// simplification and no structurally identical node applies.
func (g *Graph) And(a, b Lit) Lit {
	// Local simplifications.
	if a == b {
		return a
	}
	if a == b.Not() {
		return Const0
	}
	if a == Const0 || b == Const0 {
		return Const0
	}
	if a == Const1 {
		return b
	}
	if b == Const1 {
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if id, ok := g.strash[key]; ok {
		return MkLit(id, false)
	}
	id := len(g.nodes)
	lvl := g.nodes[a.Node()].level
	if l1 := g.nodes[b.Node()].level; l1 > lvl {
		lvl = l1
	}
	g.nodes = append(g.nodes, node{kind: kindAnd, fan0: a, fan1: b, level: lvl + 1})
	g.strash[key] = id
	return MkLit(id, false)
}

// Or returns a literal for a OR b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for a XOR b.
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns a literal for NOT (a XOR b).
func (g *Graph) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns a literal for "if s then t else e".
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// Implies returns a literal for a -> b.
func (g *Graph) Implies(a, b Lit) Lit { return g.Or(a.Not(), b) }

// AndN folds And over the literals; the empty conjunction is Const1.
func (g *Graph) AndN(ls ...Lit) Lit {
	return g.reduceBalanced(ls, g.And, Const1)
}

// OrN folds Or over the literals; the empty disjunction is Const0.
func (g *Graph) OrN(ls ...Lit) Lit {
	return g.reduceBalanced(ls, g.Or, Const0)
}

// XorN folds Xor over the literals; the empty case is Const0.
func (g *Graph) XorN(ls ...Lit) Lit {
	return g.reduceBalanced(ls, g.Xor, Const0)
}

// reduceBalanced builds a balanced tree to keep depth logarithmic.
func (g *Graph) reduceBalanced(ls []Lit, op func(Lit, Lit) Lit, unit Lit) Lit {
	switch len(ls) {
	case 0:
		return unit
	case 1:
		return ls[0]
	}
	cur := append([]Lit(nil), ls...)
	for len(cur) > 1 {
		var next []Lit
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, op(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// Adder returns the sum bits and carry-out of a ripple-carry adder over
// equal-width operands a and b with carry-in cin.
func (g *Graph) Adder(a, b []Lit, cin Lit) (sum []Lit, cout Lit) {
	if len(a) != len(b) {
		panic("aig: adder operand widths differ")
	}
	carry := cin
	sum = make([]Lit, len(a))
	for i := range a {
		sum[i] = g.Xor(g.Xor(a[i], b[i]), carry)
		carry = g.Or(g.And(a[i], b[i]), g.And(carry, g.Xor(a[i], b[i])))
	}
	return sum, carry
}

// Support returns the set of PI indices that node reached by lit
// structurally depends on, in ascending order.
func (g *Graph) Support(lit Lit) []int {
	seen := make(map[int]bool)
	var sup []int
	var walk func(id int)
	walk = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		switch g.nodes[id].kind {
		case kindPI:
			sup = append(sup, int(g.nodes[id].piIndex))
		case kindAnd:
			walk(int(g.nodes[id].fan0.Node()))
			walk(int(g.nodes[id].fan1.Node()))
		}
	}
	walk(lit.Node())
	sort.Ints(sup)
	return sup
}

// SupportSets returns, for every primary output, the set of PI indices in
// its structural support, computed in one bottom-up pass with bitsets.
func (g *Graph) SupportSets() [][]int {
	words := (len(g.pis) + 63) / 64
	sets := make([][]uint64, len(g.nodes))
	buf := make([]uint64, words*len(g.nodes))
	for i := range sets {
		sets[i] = buf[i*words : (i+1)*words]
	}
	for i := 1; i < len(g.nodes); i++ {
		n := &g.nodes[i]
		switch n.kind {
		case kindPI:
			sets[i][n.piIndex/64] |= 1 << (uint(n.piIndex) % 64)
		case kindAnd:
			s0, s1 := sets[n.fan0.Node()], sets[n.fan1.Node()]
			for w := 0; w < words; w++ {
				sets[i][w] = s0[w] | s1[w]
			}
		}
	}
	out := make([][]int, len(g.pos))
	for o, po := range g.pos {
		s := sets[po.Node()]
		var idxs []int
		for w := 0; w < words; w++ {
			word := s[w]
			for word != 0 {
				b := word & -word
				idxs = append(idxs, w*64+bits.TrailingZeros64(b))
				word ^= b
			}
		}
		out[o] = idxs
	}
	return out
}

// FanoutCounts returns the number of fanouts of every node, counting PO
// drivers.
func (g *Graph) FanoutCounts() []int {
	cnt := make([]int, len(g.nodes))
	for i := 1; i < len(g.nodes); i++ {
		if g.nodes[i].kind == kindAnd {
			cnt[g.nodes[i].fan0.Node()]++
			cnt[g.nodes[i].fan1.Node()]++
		}
	}
	for _, po := range g.pos {
		cnt[po.Node()]++
	}
	return cnt
}

// Copy returns a deep copy of the graph.
func (g *Graph) Copy() *Graph {
	ng := &Graph{
		nodes:   append([]node(nil), g.nodes...),
		pis:     append([]int(nil), g.pis...),
		pos:     append([]Lit(nil), g.pos...),
		piNames: append([]string(nil), g.piNames...),
		poNames: append([]string(nil), g.poNames...),
		strash:  make(map[[2]Lit]int, len(g.strash)),
	}
	for k, v := range g.strash {
		ng.strash[k] = v
	}
	return ng
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("aig{pi:%d po:%d and:%d depth:%d}",
		g.NumPIs(), g.NumPOs(), g.NumAnds(), g.Depth())
}
