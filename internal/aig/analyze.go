package aig

import (
	"bufio"
	"fmt"
	"io"
)

// Cofactor returns a graph computing g with primary input pi fixed to
// val. The input stays in the interface (with no influence), so the
// shape of the circuit's pin interface is preserved.
func (g *Graph) Cofactor(pi int, val bool) *Graph {
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	fixed := Const0
	if val {
		fixed = Const1
	}
	piMap[pi] = fixed
	outs := Transfer(ng, g, piMap, g.pos)
	for i, o := range outs {
		ng.AddPO(o, g.poNames[i])
	}
	return ng
}

// Restrict fixes several primary inputs at once; assignment maps PI
// index to value.
func (g *Graph) Restrict(assignment map[int]bool) *Graph {
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	for pi, val := range assignment {
		piMap[pi] = Const0
		if val {
			piMap[pi] = Const1
		}
	}
	outs := Transfer(ng, g, piMap, g.pos)
	for i, o := range outs {
		ng.AddPO(o, g.poNames[i])
	}
	return ng
}

// ExtractCones builds a sub-circuit containing only the selected primary
// outputs. The primary inputs are preserved (including unused ones), so
// pin positions remain comparable with the original.
func (g *Graph) ExtractCones(pos []int) *Graph {
	ng := New()
	piMap := make([]Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = ng.PI(g.piNames[i])
	}
	roots := make([]Lit, len(pos))
	for i, o := range pos {
		roots[i] = g.pos[o]
	}
	outs := Transfer(ng, g, piMap, roots)
	for i, o := range outs {
		ng.AddPO(o, g.poNames[pos[i]])
	}
	return ng
}

// ConeSize returns the number of AND nodes in the cone of lit.
func (g *Graph) ConeSize(lit Lit) int {
	seen := make(map[int]bool)
	count := 0
	var walk func(id int)
	walk = func(id int) {
		if seen[id] || !g.IsAnd(id) {
			return
		}
		seen[id] = true
		count++
		f0, f1 := g.Fanins(id)
		walk(f0.Node())
		walk(f1.Node())
	}
	walk(lit.Node())
	return count
}

// Levels returns a histogram of AND nodes per logic level.
func (g *Graph) Levels() []int {
	hist := make([]int, g.Depth()+1)
	for id := 1; id < g.NumNodes(); id++ {
		if g.IsAnd(id) {
			hist[g.Level(id)]++
		}
	}
	return hist
}

// WriteDOT renders the graph in Graphviz DOT format: inputs as boxes,
// ANDs as circles, complemented edges dashed, outputs as double circles.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", name)
	fmt.Fprintf(bw, "  n0 [label=\"0\" shape=box style=dotted];\n")
	used := make(map[int]bool)
	var mark func(id int)
	mark = func(id int) {
		if used[id] {
			return
		}
		used[id] = true
		if g.IsAnd(id) {
			f0, f1 := g.Fanins(id)
			mark(f0.Node())
			mark(f1.Node())
		}
	}
	for _, po := range g.pos {
		mark(po.Node())
	}
	for id := 1; id < g.NumNodes(); id++ {
		if !used[id] {
			continue
		}
		if pi := g.PIIndex(id); pi >= 0 {
			fmt.Fprintf(bw, "  n%d [label=%q shape=box];\n", id, g.piNames[pi])
			continue
		}
		fmt.Fprintf(bw, "  n%d [label=\"&\" shape=circle];\n", id)
		f0, f1 := g.Fanins(id)
		for _, f := range []Lit{f0, f1} {
			style := "solid"
			if f.Compl() {
				style = "dashed"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", f.Node(), id, style)
		}
	}
	for i, po := range g.pos {
		fmt.Fprintf(bw, "  o%d [label=%q shape=doublecircle];\n", i, g.poNames[i])
		style := "solid"
		if po.Compl() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  n%d -> o%d [style=%s];\n", po.Node(), i, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
