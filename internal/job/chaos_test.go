package job

import (
	"bytes"
	"context"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"circuitfold/internal/obs"
)

// chaosEnvInt reads an integer knob from the environment, for the make
// chaos / CI lane to crank rounds up without editing the test.
func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestChaosKillRestart is the chaos acceptance test: for N rounds a
// runner over one persistent directory is recovered from its journal,
// fed a random batch of jobs, and killed at a random moment — mid-fold,
// mid-queue, or idle. Every third round a random checkpoint blob is
// bit-flipped on disk between crashes. After the last crash a final
// recovery must drain the whole backlog, and every job acknowledged in
// any round must produce a result bit-identical to an uninterrupted
// fold of the same spec. Run it with CHAOS_ROUNDS=20 (the make chaos
// target) and -race for the full gate; CHAOS_SEED reproduces a failing
// schedule, CHAOS_DIR keeps the journal and store for CI artifacts.
func TestChaosKillRestart(t *testing.T) {
	rounds := chaosEnvInt("CHAOS_ROUNDS", 6)
	seed := int64(chaosEnvInt("CHAOS_SEED", 0))
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos: %d rounds, seed %d (rerun with CHAOS_SEED=%d)", rounds, seed, seed)

	dir := os.Getenv("CHAOS_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.wal")
	ckDir := filepath.Join(dir, "ck")

	// The job mix: cheap enough that a round's backlog drains in
	// milliseconds, varied enough that kills land mid-fold, mid-queue
	// and post-completion across rounds.
	pool := []Spec{
		{Generator: "64-adder", T: 8, Method: MethodFunctional},
		{Generator: "64-adder", T: 16, Method: MethodFunctional},
		{Generator: "64-adder", T: 32, Method: MethodFunctional},
		{Generator: "64-adder", T: 16, Method: MethodFunctional, Reorder: true},
		{Generator: "64-adder", T: 8, Method: MethodFunctional, Minimize: true},
		{Generator: "64-adder", T: 16, Method: MethodFunctional, Reorder: true, Minimize: true},
	}

	acknowledged := map[string]Spec{} // fold key -> spec, across all rounds
	corruptions := 0

	for round := 0; round < rounds; round++ {
		jr, recs, err := OpenJournal(jpath)
		if err != nil {
			t.Fatalf("round %d: open journal: %v", round, err)
		}
		fstore, err := NewFileStore(ckDir)
		if err != nil {
			t.Fatalf("round %d: open store: %v", round, err)
		}
		r := NewRunnerWith(RunnerOptions{
			Workers: 2, QueueDepth: 64, Store: fstore, Journal: jr,
		})
		if _, err := r.Recover(recs); err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		for i, n := 0, 2+rng.Intn(3); i < n; i++ {
			spec := pool[rng.Intn(len(pool))]
			j, err := r.Submit(spec)
			if err != nil {
				t.Fatalf("round %d: submit: %v", round, err)
			}
			// The journal fsynced before Submit returned: from here the
			// job must survive any crash.
			acknowledged[j.FoldKey()] = spec
		}
		time.Sleep(time.Duration(rng.Intn(25)) * time.Millisecond)
		r.Kill()

		// Disk rot between crashes: flip one byte in a random live
		// checkpoint blob (never the journal; the torn-tail and CRC
		// paths have their own tests).
		if round%3 == 2 {
			if path := randomBlob(t, ckDir, rng); path != "" {
				flipByte(t, path)
				corruptions++
			}
		}
	}

	// Final recovery: the surviving backlog must drain completely.
	jr, recs, err := OpenJournal(jpath)
	if err != nil {
		t.Fatalf("final open journal: %v", err)
	}
	fstore, err := NewFileStore(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(RunnerOptions{
		Workers: 2, QueueDepth: 64, Store: fstore, Journal: jr,
	})
	dumpFlightRecords(t, dir, r)
	n, err := r.Recover(recs)
	if err != nil {
		t.Fatalf("final recover: %v", err)
	}
	t.Logf("chaos: final recovery re-enqueued %d jobs from %d records; %d blobs corrupted",
		n, len(recs), corruptions)
	for _, j := range r.Jobs() {
		wait(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("recovered job %s (%s) = %+v", j.ID(), j.FoldKey(), st)
		}
	}
	r.Shutdown(context.Background())

	// One more restart before verification, with a guaranteed-read
	// corruption: flip a byte in one acknowledged spec's final snapshot
	// so the resubmission below must detect, quarantine, and re-fold it.
	var corruptedKey string
	for _, spec := range acknowledged {
		path := filepath.Join(ckDir, spec.Hash(), finalStage)
		if _, err := os.Stat(path); err == nil {
			flipByte(t, path)
			corruptedKey = spec.Hash()
			corruptions++
			break
		}
	}

	// Zero acknowledged jobs lost: every spec ever acknowledged — in
	// any round, regardless of where its crash landed — refolds on the
	// survivor store (through a cold cache, so snapshots really load)
	// to the bit-identical result of an uninterrupted fold on a fresh
	// runner.
	vstore, err := NewFileStore(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	v := NewRunnerWith(RunnerOptions{Workers: 2, QueueDepth: 64, Store: vstore})
	defer v.Shutdown(context.Background())
	dumpFlightRecords(t, dir, v)
	clean := NewRunner(2, nil)
	defer clean.Shutdown(context.Background())
	for key, spec := range acknowledged {
		j, err := v.Submit(spec)
		if err != nil {
			t.Fatalf("resubmit %s: %v", key, err)
		}
		ref, err := clean.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		wait(t, ref)
		if !bytes.Equal(encodeJob(t, j), encodeJob(t, ref)) {
			t.Errorf("spec %s: recovered result differs from uninterrupted fold", key)
		}
	}
	if corruptedKey != "" {
		if got := v.Metrics().Counter(obs.MStoreCorrupt).Value(); got < 1 {
			t.Errorf("snapshot %s corrupted but %s = %d", corruptedKey, obs.MStoreCorrupt, got)
		}
		if _, err := os.Stat(filepath.Join(ckDir, corruptedKey, finalStage+corruptSuffix)); err != nil {
			t.Errorf("corrupted snapshot not quarantined: %v", err)
		}
	}
	t.Logf("chaos: %d acknowledged specs verified bit-identical, %s = %d",
		len(acknowledged), obs.MStoreCorrupt, v.Metrics().Counter(obs.MStoreCorrupt).Value())
}

// dumpFlightRecords registers a cleanup that, if the test failed,
// writes every flight-recorder artifact the runner's failed jobs
// produced into dir as flight-<jobid>.json — alongside the journal and
// store they land in the CI failure artifact, so a chaos crash is
// debuggable offline.
func dumpFlightRecords(t *testing.T, dir string, r *Runner) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for _, j := range r.Jobs() {
			if rec, ok := j.FlightRecord(); ok {
				path := filepath.Join(dir, "flight-"+j.ID()+".json")
				if err := os.WriteFile(path, rec, 0o644); err == nil {
					t.Logf("chaos: flight record saved to %s", path)
				}
			}
		}
	})
}

// randomBlob picks a random checkpoint blob under dir, skipping
// already-quarantined files. Returns "" when the store is empty.
func randomBlob(t *testing.T, dir string, rng *rand.Rand) string {
	t.Helper()
	var blobs []string
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, corruptSuffix) {
			return nil
		}
		blobs = append(blobs, path)
		return nil
	})
	if len(blobs) == 0 {
		return ""
	}
	return blobs[rng.Intn(len(blobs))]
}

// flipByte corrupts one payload byte of a framed store blob in place.
func flipByte(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) <= 8 {
		return
	}
	raw[8+(len(raw)-8)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupt %s: %v", path, err)
	}
}
