package job

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// gateStore blocks every Checkpoint call until the gate closes, giving
// tests a deterministic window in which a job is running but has made
// no progress — the stand-in for "an identical fold is in flight".
type gateStore struct {
	Store
	gate chan struct{}
}

func (s *gateStore) Checkpoint(key string) pipeline.Checkpoint {
	<-s.gate
	return s.Store.Checkpoint(key)
}

// encodeJob serializes a finished job's result for byte-level
// comparison.
func encodeJob(t *testing.T, j *Job) []byte {
	t.Helper()
	res, err := j.Result()
	if err != nil {
		t.Fatalf("%s: %v", j.ID(), err)
	}
	res2 := stripReport(res)
	data, err := encodeFinal(j.Status().Method, &res2)
	if err != nil {
		t.Fatalf("%s: encode: %v", j.ID(), err)
	}
	return data
}

func TestFoldKeyNetlistGeneratorCollision(t *testing.T) {
	g, err := circuitfold.Benchmark("adder3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := circuitfold.WriteAAG(&buf, &circuitfold.Sequential{G: g, NumInputs: g.NumPIs()}); err != nil {
		t.Fatal(err)
	}
	gen := Spec{Generator: "adder3", T: 3, Reorder: true}
	net := Spec{Netlist: &Netlist{Format: "aag", Text: buf.String()}, T: 3, Reorder: true}
	gg, err := gen.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	ng, err := net.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if gen.Hash() == net.Hash() {
		t.Error("wire-form hashes should differ (different sources)")
	}
	if gen.FoldKey(gg) != net.FoldKey(ng) {
		t.Error("generator and netlist of the same AIG should share a fold key")
	}

	// Sensitivity: anything that can change the fold's outcome splits
	// the key; Workers (bit-identical by construction) does not.
	vary := gen
	vary.T = 2
	if vary.FoldKey(gg) == gen.FoldKey(gg) {
		t.Error("different T should split the fold key")
	}
	vary = gen
	vary.WallMS = 5000
	if vary.FoldKey(gg) == gen.FoldKey(gg) {
		t.Error("different budget should split the fold key")
	}
	vary = gen
	vary.Workers = 7
	if vary.FoldKey(gg) != gen.FoldKey(gg) {
		t.Error("Workers must not change the fold key")
	}
	vary = gen
	vary.Counter = "nat" // resolved encoding: "" and "nat" are the same
	if vary.FoldKey(gg) != gen.FoldKey(gg) {
		t.Error("encoding spelling must not change the fold key")
	}
}

func TestRunnerCacheHit(t *testing.T) {
	r := NewRunner(2, nil)
	defer r.Shutdown(context.Background())
	j1, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	if st := j1.Status(); st.State != StateDone || st.Cache != "miss" {
		t.Fatalf("cold job status = %+v", st)
	}
	j2, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	st := j2.Status()
	if st.State != StateDone || st.Cache != "hit" {
		t.Fatalf("resubmission status = %+v", st)
	}
	if st.StartedAt != "" {
		t.Error("cache hit should never reach a worker")
	}
	if !bytes.Equal(encodeJob(t, j1), encodeJob(t, j2)) {
		t.Error("cached result is not byte-identical to the cold fold")
	}
	// The hit decodes a private Result: mutating one job's circuit must
	// not alias the other's.
	r1, _ := j1.Result()
	r2, _ := j2.Result()
	if r1.Seq == r2.Seq {
		t.Error("cache hit aliases the cold job's circuit")
	}
	m := r.Metrics()
	if hits := m.Counter(obs.MJobCacheHits).Value(); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if misses := m.Counter(obs.MJobCacheMisses).Value(); misses != 1 {
		t.Errorf("cache_misses = %d, want 1", misses)
	}
}

// TestRunnerDedupConcurrentIdentical is the shared-work race gate:
// identical specs submitted concurrently collapse onto one fold, and
// every submission observes the same bytes.
func TestRunnerDedupConcurrentIdentical(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunnerWith(RunnerOptions{
		Workers: 4,
		Store:   &gateStore{Store: NewMemStore(), gate: gate},
	})
	defer r.Shutdown(context.Background())

	const n = 6
	jobs := make([]*Job, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = r.Submit(smokeSpec())
		}(i)
	}
	wg.Wait()
	close(gate)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		wait(t, jobs[i])
	}

	misses, attached := 0, 0
	for _, j := range jobs {
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("%s: %+v", j.ID(), st)
		}
		switch st.Cache {
		case "miss":
			misses++
		case "attached":
			attached++
		default:
			t.Errorf("%s: unexpected cache status %q", j.ID(), st.Cache)
		}
	}
	if misses != 1 || attached != n-1 {
		t.Errorf("misses/attached = %d/%d, want 1/%d", misses, attached, n-1)
	}
	want := encodeJob(t, jobs[0])
	for _, j := range jobs[1:] {
		if !bytes.Equal(want, encodeJob(t, j)) {
			t.Errorf("%s: attached result diverges from the leader's", j.ID())
		}
	}
	if got := r.Metrics().Counter(obs.MJobDedupAttached).Value(); got != n-1 {
		t.Errorf("dedup_attached = %d, want %d", got, n-1)
	}
}

// TestRunnerDedupWaiterCancel: cancelling an attached waiter leaves
// the leader folding; the waiter stays canceled when the result lands.
func TestRunnerDedupWaiterCancel(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunnerWith(RunnerOptions{
		Workers: 1,
		Store:   &gateStore{Store: NewMemStore(), gate: gate},
	})
	defer r.Shutdown(context.Background())

	leader, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, leader)
	waiter, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waiter.Status(); st.Cache != "attached" {
		t.Fatalf("waiter status = %+v", st)
	}
	if !r.Cancel(waiter.ID()) {
		t.Fatal("cancel returned false")
	}
	wait(t, waiter)
	if st := waiter.Status(); st.State != StateCanceled {
		t.Fatalf("canceled waiter status = %+v", st)
	}
	close(gate)
	wait(t, leader)
	if st := leader.Status(); st.State != StateDone {
		t.Fatalf("leader status = %+v (%s)", st, st.Error)
	}
	if st := waiter.Status(); st.State != StateCanceled {
		t.Errorf("waiter resurrected by the leader's result: %+v", st)
	}
	// The flight resolved: the next identical submission is a cache hit.
	again, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, again)
	if st := again.Status(); st.Cache != "hit" {
		t.Errorf("post-flight submission = %+v, want cache hit", st)
	}
}

// TestRunnerDedupLeaderCancelPromotes: cancelling the leader promotes
// the first live waiter, which folds for real; later waiters re-attach
// and share its result.
func TestRunnerDedupLeaderCancelPromotes(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunnerWith(RunnerOptions{
		Workers: 1,
		Store:   &gateStore{Store: NewMemStore(), gate: gate},
	})
	defer r.Shutdown(context.Background())

	leader, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, leader)
	w1, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cancel(leader.ID()) {
		t.Fatal("cancel returned false")
	}
	close(gate)
	wait(t, leader)
	if st := leader.Status(); st.State != StateCanceled {
		t.Fatalf("leader status = %+v", st)
	}
	wait(t, w1)
	wait(t, w2)
	st1, st2 := w1.Status(), w2.Status()
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("waiter states = %s/%s (%s/%s)", st1.State, st2.State, st1.Error, st2.Error)
	}
	if st1.Cache != "miss" {
		t.Errorf("promoted waiter cache = %q, want miss", st1.Cache)
	}
	if st2.Cache != "attached" {
		t.Errorf("re-attached waiter cache = %q, want attached", st2.Cache)
	}
	if !bytes.Equal(encodeJob(t, w1), encodeJob(t, w2)) {
		t.Error("re-attached waiter's result diverges from the promoted leader's")
	}
}

// TestRunnerPooledMatchesCold proves the tentpole determinism claim end
// to end: a fold run on the runner's pooled, recycled arenas is
// bit-identical to the same fold on fresh allocations, including after
// the pools have been dirtied by a differently-shaped job.
func TestRunnerPooledMatchesCold(t *testing.T) {
	r := NewRunner(1, nil)
	defer r.Shutdown(context.Background())

	for i, spec := range []Spec{
		{Generator: "64-adder", T: 16, Reorder: true},
		{Generator: "64-adder", T: 8, Reorder: true}, // recycled arenas, new shape
		{Generator: "adder3", T: 3, Reorder: true, Minimize: true},
	} {
		j, err := r.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		res, err := j.Result()
		if err != nil {
			t.Fatalf("job %d: %v (%+v)", i, err, j.Status())
		}
		g, err := spec.Circuit()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := circuitfold.Functional(g, spec.T, spec.Options())
		if err != nil {
			t.Fatalf("cold fold %d: %v", i, err)
		}
		if !reflect.DeepEqual(stripReport(res), stripReport(cold)) {
			t.Errorf("job %d (%s T=%d): pooled result differs from cold fold",
				i, spec.Generator, spec.T)
		}
	}
	if reuse := r.Metrics().Counter(obs.MBDDPoolReuse).Value(); reuse == 0 {
		t.Error("BDD pool recorded no reuse across jobs")
	}
}

// TestRunnerCacheDisabled: negative cache bounds turn the cache off,
// so identical resubmission falls back to the checkpoint store (and
// dedup still collapses concurrent ones).
func TestRunnerCacheDisabled(t *testing.T) {
	r := NewRunnerWith(RunnerOptions{Workers: 1, CacheEntries: -1})
	defer r.Shutdown(context.Background())
	j1, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	j2, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	st := j2.Status()
	if st.Cache != "miss" || !st.ResumedResult {
		t.Fatalf("cache-disabled resubmission = %+v, want miss + snapshot resume", st)
	}
	if hits := r.Metrics().Counter(obs.MJobCacheHits).Value(); hits != 0 {
		t.Errorf("cache_hits = %d with cache disabled", hits)
	}
}

// TestRunnerStatusJSONCache pins the wire shape of the cache verdict.
func TestRunnerStatusJSONCache(t *testing.T) {
	r := NewRunner(1, nil)
	defer r.Shutdown(context.Background())
	j, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	blob := fmt.Sprintf("%+v", j.Status())
	if !bytes.Contains([]byte(blob), []byte("miss")) {
		t.Errorf("status carries no cache verdict: %s", blob)
	}
}

// TestRunnerDedupPromoteCanceledWaiterNoLeak races client cancellation
// of a waiter against cancellation of its dedup leader: promotion must
// skip (or terminally settle) the already-canceled waiter, the
// surviving waiter must still fold to done, every job must reach a
// terminal state, and no goroutine may be left behind — the leak mode
// being a promoted job whose context was canceled before it ever ran.
func TestRunnerDedupPromoteCanceledWaiterNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		gate := make(chan struct{})
		r := NewRunnerWith(RunnerOptions{
			Workers: 1,
			Store:   &gateStore{Store: NewMemStore(), gate: gate},
		})
		leader, err := r.Submit(smokeSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitRunning(t, leader)
		w1, err := r.Submit(smokeSpec())
		if err != nil {
			t.Fatal(err)
		}
		w2, err := r.Submit(smokeSpec())
		if err != nil {
			t.Fatal(err)
		}
		// Race the two cancellations: depending on interleaving the
		// promotion sees w1 already terminal, or enqueues it canceled.
		var cg sync.WaitGroup
		cg.Add(2)
		go func() { defer cg.Done(); r.Cancel(w1.ID()) }()
		go func() { defer cg.Done(); r.Cancel(leader.ID()) }()
		cg.Wait()
		close(gate)
		wait(t, leader)
		wait(t, w1)
		wait(t, w2)
		if st := w1.Status(); st.State != StateCanceled {
			t.Errorf("iteration %d: canceled waiter = %+v", i, st)
		}
		if st := w2.Status(); st.State != StateDone {
			t.Errorf("iteration %d: surviving waiter = %+v (%s)", i, st, st.Error)
		}
		if err := r.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines: %d before, %d after promote-cancel races", before, runtime.NumGoroutine())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
