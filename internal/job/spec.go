// Package job is the fold daemon's service layer: fold requests as
// serializable job specs, a content-addressed per-stage checkpoint
// store (in-memory or file-backed), and a bounded-worker runner that
// executes jobs through the circuitfold engines with live span
// streaming and kill-and-resume semantics. cmd/foldd exposes it over
// HTTP; the package itself is transport-agnostic and fully testable
// in-process.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"circuitfold"
	"circuitfold/internal/aig"
	"circuitfold/internal/cio"
)

// Fold methods a Spec may name. Empty means MethodFunctional.
const (
	MethodFunctional = "functional"
	MethodStructural = "structural"
	MethodHybrid     = "hybrid"
	MethodSimple     = "simple"
	MethodResilient  = "resilient"
)

// Netlist is an uploaded circuit in one of the cio text formats.
type Netlist struct {
	// Format is "aag", "blif" or "bench" (see cio.Formats).
	Format string `json:"format"`
	// Text is the netlist source.
	Text string `json:"text"`
}

// Spec is a fold job: the circuit (a named benchmark generator or an
// uploaded netlist), the folding number, the method, and the engine
// knobs. The zero knobs select the cheapest configuration, exactly
// like a zero circuitfold.Options. Specs marshal deterministically,
// and Hash is the content address under which the job's checkpoints
// are stored: resubmitting an identical spec resumes rather than
// recomputes.
type Spec struct {
	// Generator names a built-in benchmark circuit (circuitfold.
	// Benchmarks). Exactly one of Generator and Netlist must be set.
	Generator string `json:"generator,omitempty"`
	// Netlist is an uploaded combinational circuit.
	Netlist *Netlist `json:"netlist,omitempty"`
	// T is the folding number.
	T int `json:"t"`
	// Method is the fold engine: functional (default), structural,
	// hybrid, simple, or resilient (the degradation ladder).
	Method string `json:"method,omitempty"`
	// Counter ("nat" or "1hot") selects the structural frame counter
	// encoding; StateEnc the functional state encoding. Empty means
	// "nat".
	Counter  string `json:"counter,omitempty"`
	StateEnc string `json:"state_enc,omitempty"`
	// Reorder enables BDD input reordering; Minimize exact state
	// minimization (functional/hybrid/resilient methods).
	Reorder  bool `json:"reorder,omitempty"`
	Minimize bool `json:"minimize,omitempty"`
	// Workers bounds the fold's internal parallelism (not the daemon's
	// worker pool). 0 is the engine default.
	Workers int `json:"workers,omitempty"`
	// Budgets: wall-clock milliseconds, live BDD nodes, SAT conflicts,
	// TFF states. Zero fields mean engine defaults.
	WallMS          int64 `json:"wall_ms,omitempty"`
	MaxBDDNodes     int   `json:"max_bdd_nodes,omitempty"`
	MaxSATConflicts int64 `json:"max_sat_conflicts,omitempty"`
	MaxStates       int   `json:"max_states,omitempty"`
	// SelfCheckRounds gates resilient folds: rounds of 64-vector
	// random-simulation equivalence checking (0 means 1; negative
	// disables). Ignored by the direct methods.
	SelfCheckRounds int `json:"self_check_rounds,omitempty"`
}

// methods is the closed set Validate accepts.
var methods = map[string]bool{
	"": true, MethodFunctional: true, MethodStructural: true,
	MethodHybrid: true, MethodSimple: true, MethodResilient: true,
}

// Validate checks the spec's shape without building the circuit.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("job: nil spec")
	}
	if (s.Generator == "") == (s.Netlist == nil) {
		return fmt.Errorf("job: spec needs exactly one of generator and netlist")
	}
	if s.Netlist != nil {
		ok := false
		for _, f := range cio.Formats() {
			if s.Netlist.Format == f {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("job: unknown netlist format %q (want one of %v)", s.Netlist.Format, cio.Formats())
		}
	}
	if s.Generator != "" {
		if _, err := circuitfold.LookupBenchmark(s.Generator); err != nil {
			return fmt.Errorf("job: %w", err)
		}
	}
	if s.T < 1 {
		return fmt.Errorf("job: folding number %d < 1", s.T)
	}
	if !methods[s.Method] {
		return fmt.Errorf("job: unknown method %q", s.Method)
	}
	if _, err := parseEncoding(s.Counter); err != nil {
		return fmt.Errorf("job: counter: %w", err)
	}
	if _, err := parseEncoding(s.StateEnc); err != nil {
		return fmt.Errorf("job: state_enc: %w", err)
	}
	return nil
}

// EffectiveMethod is the method with the default applied.
func (s *Spec) EffectiveMethod() string {
	if s.Method == "" {
		return MethodFunctional
	}
	return s.Method
}

// Circuit builds the spec's combinational circuit: the named
// benchmark, or the parsed netlist (which must have no flip-flops —
// folding applies to combinational circuits).
func (s *Spec) Circuit() (*circuitfold.Circuit, error) {
	if s.Generator != "" {
		return circuitfold.Benchmark(s.Generator)
	}
	c, err := cio.ReadNetlist(s.Netlist.Format, strings.NewReader(s.Netlist.Text))
	if err != nil {
		return nil, fmt.Errorf("job: netlist: %w", err)
	}
	if c.NumLatches() != 0 {
		return nil, fmt.Errorf("job: netlist has %d flip-flops; folding takes a combinational circuit", c.NumLatches())
	}
	return c.G, nil
}

// Options maps the spec's knobs onto engine options. Trace is always
// on: the service returns the stage report.
func (s *Spec) Options() circuitfold.Options {
	counter, _ := parseEncoding(s.Counter)
	stateEnc, _ := parseEncoding(s.StateEnc)
	return circuitfold.Options{
		Counter:  counter,
		StateEnc: stateEnc,
		Reorder:  s.Reorder,
		Minimize: s.Minimize,
		Workers:  s.Workers,
		Trace:    true,
		Budget: circuitfold.Budget{
			Wall:         time.Duration(s.WallMS) * time.Millisecond,
			BDDNodes:     s.MaxBDDNodes,
			SATConflicts: s.MaxSATConflicts,
			MaxStates:    s.MaxStates,
		},
	}
}

// Hash is the spec's content address: a hex SHA-256 of its canonical
// JSON encoding, with the method default applied so "functional" and
// "" collide (they are the same job). Checkpoints live under this key,
// which is what makes resubmission resume.
func (s *Spec) Hash() string {
	c := *s
	c.Method = c.EffectiveMethod()
	data, err := json.Marshal(&c)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("job: spec hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// foldKeyVersion versions the FoldKey derivation: bump it whenever the
// hashed fields or their meaning change, so stale cache entries from an
// older derivation can never serve a new submission.
const foldKeyVersion = 1

// FoldKey is the job's shared-work content address, the key of the
// runner's result cache and in-flight dedup. Unlike Hash, which
// fingerprints the spec's wire form, FoldKey hashes the built circuit
// (aig.StructuralHash over the strashed AIG) together with every knob
// that can change the fold's outcome — so an inline netlist and a
// generator spec producing the same AIG collide: they are the same
// fold. Resolved encodings are hashed, so "nat"/"binary"/"" collide
// too. Budgets are included because a tighter budget can change (or
// abort) the result; Workers is deliberately excluded because folds
// are bit-identical for every worker count.
func (s *Spec) FoldKey(g *circuitfold.Circuit) string {
	counter, _ := parseEncoding(s.Counter)
	stateEnc, _ := parseEncoding(s.StateEnc)
	key := struct {
		V               int    `json:"v"`
		AIG             string `json:"aig"`
		T               int    `json:"t"`
		Method          string `json:"method"`
		Counter         int    `json:"counter"`
		StateEnc        int    `json:"state_enc"`
		Reorder         bool   `json:"reorder"`
		Minimize        bool   `json:"minimize"`
		WallMS          int64  `json:"wall_ms"`
		MaxBDDNodes     int    `json:"max_bdd_nodes"`
		MaxSATConflicts int64  `json:"max_sat_conflicts"`
		MaxStates       int    `json:"max_states"`
		SelfCheckRounds int    `json:"self_check_rounds"`
	}{
		V:               foldKeyVersion,
		AIG:             fmt.Sprintf("%016x", aig.StructuralHash(g)),
		T:               s.T,
		Method:          s.EffectiveMethod(),
		Counter:         int(counter),
		StateEnc:        int(stateEnc),
		Reorder:         s.Reorder,
		Minimize:        s.Minimize,
		WallMS:          s.WallMS,
		MaxBDDNodes:     s.MaxBDDNodes,
		MaxSATConflicts: s.MaxSATConflicts,
		MaxStates:       s.MaxStates,
		SelfCheckRounds: s.SelfCheckRounds,
	}
	data, err := json.Marshal(&key)
	if err != nil {
		panic(fmt.Sprintf("job: fold key: %v", err)) // plain data; cannot fail
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// parseEncoding maps the wire names onto circuitfold encodings.
func parseEncoding(name string) (circuitfold.Encoding, error) {
	switch name {
	case "", "nat", "binary":
		return circuitfold.Binary, nil
	case "1hot", "onehot":
		return circuitfold.OneHot, nil
	}
	return circuitfold.Binary, fmt.Errorf("unknown encoding %q (want nat or 1hot)", name)
}
