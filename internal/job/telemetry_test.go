package job

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
)

// syncBuffer is a goroutine-safe log destination for tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeFlightRecorder is the telemetry acceptance path, end to end
// through the HTTP API: a fault-injected fold fails, and the daemon
// serves a self-contained flight-recorder artifact holding the spans,
// the final metric snapshot, and the correlated log records leading up
// to the failure.
func TestServeFlightRecorder(t *testing.T) {
	fault.Activate(fault.NewPlan(map[string]fault.Rule{
		fault.PointBDDMk: {Mode: fault.Error, After: 100},
	}))
	t.Cleanup(fault.Deactivate)

	logBuf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	runner := NewRunnerWith(RunnerOptions{Workers: 1, Logger: logger})
	defer runner.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs", smokeSpec(), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	j, ok := runner.Get(st.ID)
	if !ok {
		t.Fatal("job not in runner")
	}
	wait(t, j)
	if got := j.Status(); got.State != StateFailed {
		t.Fatalf("fault-injected job finished %s, want failed", got.State)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrec = %d: %s", resp.StatusCode, data)
	}
	var rec obs.FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("flight record is not valid JSON: %v", err)
	}
	if rec.Meta["job_id"] != st.ID || rec.Meta["reason"] != "failed" {
		t.Errorf("meta = %v", rec.Meta)
	}
	if rec.Meta["error"] == nil {
		t.Error("meta carries no error")
	}
	if len(rec.Spans) == 0 {
		t.Error("flight record has no spans")
	}
	if len(rec.Metrics) == 0 {
		t.Error("flight record has no metrics snapshot")
	}
	found := false
	for _, lr := range rec.Logs {
		if lr.Attrs["job_id"] == st.ID {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no log record correlated with %s: %+v", st.ID, rec.Logs)
	}
	// The same correlated lines reached the process log stream.
	if out := logBuf.String(); !strings.Contains(out, `"job_id":"`+st.ID+`"`) ||
		!strings.Contains(out, `"msg":"job failed"`) {
		t.Errorf("process log missing correlated failure line:\n%s", out)
	}

	// The process exposition counted the failure and the dump.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"foldd_job_failed_total 1", "foldd_flight_dumps_total 1"} {
		if !strings.Contains(string(om), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServeOpenMetrics checks the exposition contract on a healthy
// job: content type, per-stage latency histograms, HTTP accounting,
// and the OpenMetrics terminator.
func TestServeOpenMetrics(t *testing.T) {
	runner := NewRunner(1, nil)
	defer runner.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs", smokeSpec(), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	j, _ := runner.Get(st.ID)
	wait(t, j)
	if got := j.Status(); got.State != StateDone {
		t.Fatalf("job finished %s: %s", got.State, got.Error)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE foldd_job_submitted counter",
		"foldd_job_submitted_total 1",
		"foldd_job_done_total 1",
		"# TYPE foldd_job_run_seconds histogram",
		"foldd_job_run_seconds_bucket{le=\"+Inf\"} 1",
		"foldd_job_queue_wait_count 1",
		"# TYPE foldd_http_requests counter",
		"# TYPE foldd_stage_schedule_seconds histogram",
		"# EOF\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
}

// TestServeReadiness splits the probes: liveness always answers,
// readiness turns 503 with a reason once the runner stops accepting.
func TestServeReadiness(t *testing.T) {
	runner := NewRunner(1, nil)
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	var probe map[string]string
	if code := getJSON(t, srv.URL+"/readyz", &probe); code != http.StatusOK || probe["status"] != "ready" {
		t.Errorf("readyz = %d %v", code, probe)
	}
	runner.Shutdown(context.Background())
	if code := getJSON(t, srv.URL+"/readyz", &probe); code != http.StatusServiceUnavailable || probe["reason"] == "" {
		t.Errorf("readyz after shutdown = %d %v, want 503 with reason", code, probe)
	}
	// Liveness is about the process, not the runner.
	if code := getJSON(t, srv.URL+"/healthz", &probe); code != http.StatusOK {
		t.Errorf("healthz after shutdown = %d", code)
	}
}

// TestServeProfileCapture submits with ?profile=heap and downloads the
// captured pprof artifact once the job is terminal.
func TestServeProfileCapture(t *testing.T) {
	runner := NewRunner(1, nil)
	defer runner.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/jobs?profile=goroutines", smokeSpec(), &e); code != http.StatusBadRequest {
		t.Errorf("bad profile kind = %d", code)
	}

	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs?profile=heap", smokeSpec(), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	j, _ := runner.Get(st.ID)
	wait(t, j)
	if got := j.Status(); got.State != StateDone {
		t.Fatalf("job finished %s: %s", got.State, got.Error)
	}
	// The profile is written after the terminal state; poll briefly.
	deadlineOK := false
	for i := 0; i < 500; i++ {
		if _, _, ok := j.Profile(); ok {
			deadlineOK = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !deadlineOK {
		t.Fatal("profile never captured")
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(data) == 0 {
		t.Fatalf("profile = %d, %d bytes", resp.StatusCode, len(data))
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "heap.pprof") {
		t.Errorf("content disposition = %q", cd)
	}

	// A job without a requested profile 404s.
	var st2 Status
	if code := postJSON(t, srv.URL+"/v1/jobs", smokeSpec(), &st2); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	j2, _ := runner.Get(st2.ID)
	wait(t, j2)
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st2.ID+"/profile", &e); code != http.StatusNotFound {
		t.Errorf("profile without capture = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st2.ID+"/flightrec", &e); code != http.StatusNotFound {
		t.Errorf("flightrec on healthy job = %d", code)
	}
}

// TestJobIDFromPath pins the access-log correlation parser.
func TestJobIDFromPath(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/jobs/j0007":           "j0007",
		"/v1/jobs/j0007/flightrec": "j0007",
		"/v1/jobs":                 "",
		"/healthz":                 "",
		"/metrics":                 "",
	} {
		if got := jobIDFromPath(path); got != want {
			t.Errorf("jobIDFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}
