package job

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/core"
)

// postJSON posts a value and decodes the JSON response into out.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServeSmoke is the end-to-end service check (the make serve-smoke
// target): a real HTTP server over a runner, a 64-adder T=16 fold
// submitted as JSON, polled to completion, and the result fetched and
// diffed against the same fold run in-process.
func TestServeSmoke(t *testing.T) {
	runner := NewRunner(2, nil)
	defer runner.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs", smokeSpec(), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d (%+v)", code, st)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit status = %+v", st)
	}

	// Poll to completion.
	deadline := time.After(2 * time.Minute)
	for st.State == StateQueued || st.State == StateRunning {
		select {
		case <-deadline:
			t.Fatalf("job stuck in %s", st.State)
		case <-time.After(10 * time.Millisecond):
		}
		if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	// The served result is bit-identical to an in-process fold.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d, %v", resp.StatusCode, err)
	}
	served, err := core.DecodeResult(data)
	if err != nil {
		t.Fatalf("decode served result: %v", err)
	}
	g, err := circuitfold.Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	spec := smokeSpec()
	local, err := circuitfold.Functional(g, spec.T, spec.Options())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripReport(served), stripReport(local)) {
		t.Fatal("served result differs from the in-process fold")
	}
	if err := circuitfold.VerifyFast(g, served, 2); err != nil {
		t.Fatalf("served result fails verification: %v", err)
	}

	// Alternate result formats.
	for _, format := range []string{"aag", "blif"} {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(text) == 0 {
			t.Errorf("result format %s: %d, %d bytes", format, resp.StatusCode, len(text))
		}
	}

	// The report carries the stage trace.
	var rep struct {
		Stages []struct {
			Name string `json:"name"`
		} `json:"stages"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+st.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report = %d", code)
	}
	if len(rep.Stages) == 0 {
		t.Error("report has no stages")
	}

	// The event stream replays the fold's spans (the job is done, so
	// the stream ends quickly).
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		lines++
	}
	resp.Body.Close()
	if lines == 0 {
		t.Error("event stream replayed nothing")
	}

	// Job list and daemon metrics (OpenMetrics text).
	var list []Status
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("list = %d, %d jobs", code, len(list))
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(om), "foldd_job_done_total 1") {
		t.Errorf("metrics = %d: %s", resp.StatusCode, om)
	}
}

func TestServeNetlistUpload(t *testing.T) {
	runner := NewRunner(1, nil)
	defer runner.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	// A 4-bit AND-reduce as a BENCH upload, folded 2x structurally.
	spec := Spec{
		Netlist: &Netlist{Format: "bench", Text: strings.Join([]string{
			"INPUT(a)", "INPUT(b)", "INPUT(c)", "INPUT(d)",
			"OUTPUT(y)",
			"ab = AND(a, b)", "cd = AND(c, d)", "y = AND(ab, cd)", "",
		}, "\n")},
		T:      2,
		Method: MethodStructural,
	}
	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	j, ok := runner.Get(st.ID)
	if !ok {
		t.Fatal("job not found in runner")
	}
	wait(t, j)
	if got := j.Status(); got.State != StateDone {
		t.Fatalf("state = %s (%s)", got.State, got.Error)
	}
	if got := j.Status(); got.InputPins != 2 {
		t.Errorf("folded pins = %d, want 2", got.InputPins)
	}
}

func TestServeErrors(t *testing.T) {
	runner := NewRunner(1, nil)
	srv := httptest.NewServer(Handler(runner))
	defer srv.Close()

	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/jobs", Spec{T: 2}, &e); code != http.StatusBadRequest || e["error"] == "" {
		t.Errorf("invalid spec: %d %v", code, e)
	}
	if code := postJSON(t, srv.URL+"/v1/jobs", map[string]any{"bogus_field": 1}, &e); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/j9999", &e); code != http.StatusNotFound {
		t.Errorf("missing job: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/j9999/result", &e); code != http.StatusNotFound {
		t.Errorf("missing result: %d", code)
	}

	// A queued-then-canceled job has no result.
	j, err := runner.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	var canceled Status
	if code := postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/cancel", srv.URL, j.ID()), nil, &canceled); code != http.StatusOK {
		t.Errorf("cancel done job: %d", code)
	}

	// After shutdown, submissions are refused with 503.
	runner.Shutdown(context.Background())
	if code := postJSON(t, srv.URL+"/v1/jobs", smokeSpec(), &e); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d %v", code, e)
	}
}
