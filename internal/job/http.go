package job

import (
	"encoding/json"
	"fmt"
	"net/http"

	"circuitfold/internal/cio"
	"circuitfold/internal/core"
)

// maxSpecBytes bounds an uploaded job spec (netlist text included).
const maxSpecBytes = 32 << 20

// Server exposes a Runner over HTTP/JSON:
//
//	POST /v1/jobs              submit a Spec, returns its Status
//	GET  /v1/jobs              list job statuses
//	GET  /v1/jobs/{id}         one job's Status
//	POST /v1/jobs/{id}/cancel  cancel a job
//	GET  /v1/jobs/{id}/result  the folded circuit (?format=json|aag|blif)
//	GET  /v1/jobs/{id}/report  the per-stage pipeline report
//	GET  /v1/jobs/{id}/events  live span stream (SSE; ?format=jsonl)
//	GET  /v1/jobs/{id}/metrics the job's metrics snapshot
//	GET  /healthz              liveness
//
// It implements http.Handler; wire it into any http.Server.
type Server struct {
	runner *Runner
	mux    *http.ServeMux
}

// NewServer wraps runner in the HTTP API.
func NewServer(runner *Runner) *Server {
	s := &Server{runner: runner, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.report)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.jobMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError is the uniform error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jobOf resolves the {id} path value, writing the 404 itself.
func (s *Server) jobOf(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.runner.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
	}
	return j, ok
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	j, err := s.runner.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err.Error() == "job: runner is shut down" {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.runner.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOf(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	s.runner.Cancel(j.ID())
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		data, err := core.EncodeResult(res)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encode: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "aag":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := cio.WriteAAG(w, res.Seq); err != nil {
			httpError(w, http.StatusInternalServerError, "write aag: %v", err)
		}
	case "blif":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := cio.WriteBLIF(w, res.Seq, "fold_"+j.ID()); err != nil {
			httpError(w, http.StatusInternalServerError, "write blif: %v", err)
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json, aag or blif)", format)
	}
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Report)
}

func (s *Server) jobMetrics(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOf(w, r); ok {
		writeJSON(w, http.StatusOK, j.Metrics().Snapshot())
	}
}

// events streams the job's spans. The default is Server-Sent Events
// ("data: {span}\n\n" frames); ?format=jsonl streams plain JSON
// lines. Either way the stream replays recent history, follows the
// live fold, and ends when the job finishes or the client leaves.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ch, cancel := j.Events(512)
	defer cancel()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // job finished
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if jsonl {
				fmt.Fprintf(w, "%s\n", data)
			} else {
				fmt.Fprintf(w, "data: %s\n\n", data)
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Handler is the daemon's full HTTP surface: the job API plus a
// process-level metrics snapshot at /metrics aggregating nothing —
// per-job metrics live under each job. Exposed as a helper so
// cmd/foldd and tests build identical servers.
func Handler(runner *Runner) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", NewServer(runner))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		jobs := runner.Jobs()
		counts := map[State]int{}
		for _, j := range jobs {
			counts[j.Status().State]++
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs":   len(jobs),
			"states": counts,
		})
	})
	return mux
}
