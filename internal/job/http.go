package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"circuitfold/internal/cio"
	"circuitfold/internal/core"
	"circuitfold/internal/obs"
)

// maxSpecBytes bounds an uploaded job spec (netlist text included).
const maxSpecBytes = 32 << 20

// Server exposes a Runner over HTTP/JSON:
//
//	POST /v1/jobs                submit a Spec (?profile=cpu|heap, ?deadline=30s), returns its Status;
//	                             429 + Retry-After when the admission queue is full
//	GET  /v1/jobs                list job statuses
//	GET  /v1/jobs/{id}           one job's Status
//	POST /v1/jobs/{id}/cancel    cancel a job
//	GET  /v1/jobs/{id}/result    the folded circuit (?format=json|aag|blif)
//	GET  /v1/jobs/{id}/report    the per-stage pipeline report
//	GET  /v1/jobs/{id}/events    live span stream (SSE; ?format=jsonl)
//	GET  /v1/jobs/{id}/metrics   the job's metrics snapshot
//	GET  /v1/jobs/{id}/flightrec the job's flight-recorder artifact
//	GET  /v1/jobs/{id}/profile   the job's captured pprof profile
//	GET  /healthz                liveness (the process is up)
//	GET  /readyz                 readiness (the runner accepts jobs)
//
// It implements http.Handler; wire it into any http.Server.
type Server struct {
	runner *Runner
	mux    *http.ServeMux
}

// NewServer wraps runner in the HTTP API.
func NewServer(runner *Runner) *Server {
	s := &Server{runner: runner, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.report)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.jobMetrics)
	s.mux.HandleFunc("GET /v1/jobs/{id}/flightrec", s.flightrec)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profile", s.profile)
	// Liveness is unconditional: the handler answering is the signal.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Readiness gates traffic: a recovering (startup journal replay),
	// overloaded (queue near capacity), draining or shut-down runner
	// answers 503 with the reason so load balancers stop routing
	// submissions until the runner can take them.
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready, reason := s.runner.Ready(); !ready {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"status": "unready", "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError is the uniform error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jobOf resolves the {id} path value, writing the 404 itself.
func (s *Server) jobOf(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.runner.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", id)
	}
	return j, ok
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	so := SubmitOptions{Profile: r.URL.Query().Get("profile")}
	if dl := r.URL.Query().Get("deadline"); dl != "" {
		d, err := time.ParseDuration(dl)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest,
				"bad deadline %q (want a positive Go duration, e.g. 30s)", dl)
			return
		}
		so.Deadline = d
	}
	j, err := s.runner.SubmitWith(spec, so)
	if err != nil {
		var qf *QueueFullError
		switch {
		case errors.As(err, &qf):
			// Admission rejection: tell the client when to come back.
			// The estimate rounds up so "Retry-After: 0" never happens.
			secs := int((qf.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":               err.Error(),
				"retry_after_seconds": secs,
			})
		case errors.Is(err, ErrShutdown):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.runner.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOf(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	s.runner.Cancel(j.ID())
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		data, err := core.EncodeResult(res)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encode: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "aag":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := cio.WriteAAG(w, res.Seq); err != nil {
			httpError(w, http.StatusInternalServerError, "write aag: %v", err)
		}
	case "blif":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := cio.WriteBLIF(w, res.Seq, "fold_"+j.ID()); err != nil {
			httpError(w, http.StatusInternalServerError, "write blif: %v", err)
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json, aag or blif)", format)
	}
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res.Report)
}

func (s *Server) jobMetrics(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOf(w, r); ok {
		writeJSON(w, http.StatusOK, j.Metrics().Snapshot())
	}
}

// flightrec serves the job's flight-recorder artifact: the JSON black
// box dumped when the job failed, recovered a panic, or degraded.
func (s *Server) flightrec(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	data, ok := j.FlightRecord()
	if !ok {
		httpError(w, http.StatusNotFound, "job %s has no flight record", j.ID())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// profile serves the pprof profile captured for the job (requested
// with ?profile=cpu|heap at submit), in the binary pprof format that
// `go tool pprof` reads.
func (s *Server) profile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	kind, data, ok := j.Profile()
	if !ok {
		httpError(w, http.StatusNotFound, "job %s has no profile", j.ID())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s.pprof", j.ID(), kind))
	w.Write(data)
}

// events streams the job's spans. The default is Server-Sent Events
// ("data: {span}\n\n" frames); ?format=jsonl streams plain JSON
// lines. Either way the stream replays recent history, follows the
// live fold, and ends when the job finishes or the client leaves.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOf(w, r)
	if !ok {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ch, cancel := j.Events(512)
	defer cancel()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // job finished
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if jsonl {
				fmt.Fprintf(w, "%s\n", data)
			} else {
				fmt.Fprintf(w, "data: %s\n\n", data)
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Handler is the daemon's full HTTP surface: the job API plus the
// process-level OpenMetrics exposition at /metrics, all behind the
// access-log middleware recording request counts, latency and a
// correlated structured log line per request. Exposed as a helper so
// cmd/foldd and tests build identical servers.
func Handler(runner *Runner) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", NewServer(runner))
	// Prometheus/OpenMetrics text exposition of the process registry:
	// lifecycle counters, queue/run latency histograms, per-stage
	// timings aggregated across jobs. Per-job snapshots stay under
	// /v1/jobs/{id}/metrics.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := runner.Metrics()
		reg.Gauge(obs.MJobQueueDepth).Set(int64(len(runner.queue)))
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		_ = reg.WriteOpenMetrics(w, "foldd_")
	})
	return accessLog(mux, runner)
}

// statusWriter captures the response code (and preserves streaming:
// Flush passes through for the SSE event route).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// jobIDFromPath extracts the {id} segment of /v1/jobs/{id}[/...] so
// access-log lines correlate with the job's own log stream. The probe
// and list routes return "".
func jobIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/jobs/")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// accessLog wraps next with request accounting: the http.requests
// counter and http.request_seconds histogram in the runner's process
// registry, plus one structured log line per request carrying the
// job_id when the path names a job.
func accessLog(next http.Handler, runner *Runner) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		runner.metrics.Counter(obs.MHTTPRequests).Add(1)
		runner.metrics.Timing(obs.MHTTPSeconds).Observe(dur)
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Float64("seconds", dur.Seconds()),
		}
		if id := jobIDFromPath(r.URL.Path); id != "" {
			attrs = append(attrs, slog.String("job_id", id))
		}
		runner.log.Info("http request", attrs...)
	})
}
