package job

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openTestJournal(t *testing.T, path string) (*Journal, []JournalRecord) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j, recs
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs := openTestJournal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	spec := smokeSpec()
	if err := j.Append(OpSubmitted, "j0001", &spec, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpStarted, "j0001", nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpDone, "j0001", nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpFailed, "j0002", nil, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	wantOps := []JournalOp{OpSubmitted, OpStarted, OpDone, OpFailed}
	for i, r := range recs {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %s, want %s", i, r.Op, wantOps[i])
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if recs[0].Spec == nil || recs[0].Spec.Generator != spec.Generator || recs[0].Spec.T != spec.T {
		t.Errorf("submit record spec = %+v, want %+v", recs[0].Spec, spec)
	}
	if recs[3].Err != "boom" {
		t.Errorf("failed record err = %q", recs[3].Err)
	}
	// Appends continue past the replayed sequence.
	if err := j2.Append(OpCanceled, "j0003", nil, ""); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs := openTestJournal(t, path)
	defer j3.Close()
	if len(recs) != 5 || recs[4].Seq != 5 {
		t.Fatalf("after reopen+append: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
}

// TestJournalTornTail proves the crash contract: a partial trailing
// frame — the write in flight when the process died — is truncated at
// the last good record boundary and the journal keeps working.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openTestJournal(t, path)
	spec := smokeSpec()
	for _, id := range []string{"j0001", "j0002", "j0003"} {
		if err := j.Append(OpSubmitted, id, &spec, ""); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a torn write: a frame header promising more payload
	// than is on disk.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[:4], 500) // payload never written
	f.Write(torn[:])
	f.Write([]byte("partial"))
	f.Close()

	j2, recs := openTestJournal(t, path)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	if j2.TruncatedBytes() == 0 {
		t.Error("TruncatedBytes = 0, want > 0")
	}
	// The tail is gone from disk and appends land cleanly after it.
	if err := j2.Append(OpStarted, "j0001", nil, ""); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs := openTestJournal(t, path)
	defer j3.Close()
	if len(recs) != 4 {
		t.Fatalf("after heal: %d records, want 4", len(recs))
	}
}

// TestJournalCorruptRecord proves a CRC mismatch truncates at the last
// good boundary rather than returning a corrupt record.
func TestJournalCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openTestJournal(t, path)
	spec := smokeSpec()
	if err := j.Append(OpSubmitted, "j0001", &spec, ""); err != nil {
		t.Fatal(err)
	}
	offAfterFirst, err := j.f.Seek(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpSubmitted, "j0002", &spec, ""); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip one payload byte inside the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offAfterFirst+8+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].ID != "j0001" {
		t.Fatalf("replayed %v, want only j0001", recs)
	}
	if j2.TruncatedBytes() == 0 {
		t.Error("corruption not reported as truncation")
	}
}

// TestJournalForeignFile proves OpenJournal refuses to clobber a file
// that is not a journal.
func TestJournalForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("OpenJournal accepted a foreign file")
	}
}

func TestJournalPendingJobs(t *testing.T) {
	spec := smokeSpec()
	recs := []JournalRecord{
		{Seq: 1, Op: OpSubmitted, ID: "a", Spec: &spec}, // done below: not pending
		{Seq: 2, Op: OpSubmitted, ID: "b", Spec: &spec}, // started, no terminal: pending
		{Seq: 3, Op: OpSubmitted, ID: "c", Spec: &spec}, // queued: pending
		{Seq: 4, Op: OpStarted, ID: "a"},
		{Seq: 5, Op: OpStarted, ID: "b"},
		{Seq: 6, Op: OpDone, ID: "a"},
		{Seq: 7, Op: OpSubmitted, ID: "d", Spec: &spec}, // canceled: not pending
		{Seq: 8, Op: OpCanceled, ID: "d"},
		{Seq: 9, Op: OpFailed, ID: "e"}, // no submit record at all
	}
	pending := PendingJobs(recs)
	if len(pending) != 2 {
		t.Fatalf("pending = %d jobs, want 2", len(pending))
	}
	if pending[0].ID != "b" || pending[1].ID != "c" {
		t.Errorf("pending order = %s, %s; want b, c", pending[0].ID, pending[1].ID)
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openTestJournal(t, path)
	spec := smokeSpec()
	for _, id := range []string{"j0001", "j0002", "j0003"} {
		j.Append(OpSubmitted, id, &spec, "")
	}
	j.Append(OpDone, "j0001", nil, "")
	j.Append(OpDone, "j0002", nil, "")

	// Compact down to the one live job.
	if err := j.Compact([]JournalRecord{{Op: OpSubmitted, ID: "j0003", Spec: &spec}}); err != nil {
		t.Fatal(err)
	}
	// The journal stays appendable after the swap.
	if err := j.Append(OpStarted, "j0003", nil, ""); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("compacted journal has %d records, want 2", len(recs))
	}
	if recs[0].Op != OpSubmitted || recs[0].ID != "j0003" || recs[0].Spec == nil {
		t.Errorf("compacted record 0 = %+v", recs[0])
	}
	if recs[1].Op != OpStarted || recs[1].Seq <= recs[0].Seq {
		t.Errorf("post-compaction append = %+v", recs[1])
	}
	if pending := PendingJobs(recs); len(pending) != 1 || pending[0].ID != "j0003" {
		t.Errorf("pending after compaction = %+v", pending)
	}
}
