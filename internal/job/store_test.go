package job

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"circuitfold/internal/pipeline"
)

// stores enumerates the Store implementations under test; file-backed
// stores get a fresh temp dir per case.
func stores(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"file": func() Store {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "ck"))
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ck := s.Checkpoint("job1")
			if _, ok := ck.Load("schedule"); ok {
				t.Fatal("empty namespace reports a snapshot")
			}
			for _, tc := range []struct {
				stage string
				data  string
			}{
				{"schedule", `{"v":1}`},
				{"tff", "binary\x00data"},
				{"functional/schedule", "prefixed stage name"},
				{"schedule", "overwritten"}, // second save wins
				{"empty", ""},
			} {
				if err := ck.Save(tc.stage, []byte(tc.data)); err != nil {
					t.Fatalf("save %q: %v", tc.stage, err)
				}
				got, ok := ck.Load(tc.stage)
				if !ok || string(got) != tc.data {
					t.Fatalf("load %q = %q, %v; want %q", tc.stage, got, ok, tc.data)
				}
			}
			// Namespaces are independent.
			ck2 := s.Checkpoint("job2")
			if _, ok := ck2.Load("schedule"); ok {
				t.Error("namespace job2 sees job1's snapshot")
			}
			// The same key resolves to the same data (a fresh handle, as
			// a restarted daemon would get).
			again := s.Checkpoint("job1")
			if got, ok := again.Load("tff"); !ok || string(got) != "binary\x00data" {
				t.Errorf("reopened namespace lost data: %q, %v", got, ok)
			}
			if err := s.Delete("job1"); err != nil {
				t.Fatalf("delete: %v", err)
			}
			if _, ok := s.Checkpoint("job1").Load("schedule"); ok {
				t.Error("deleted namespace still has snapshots")
			}
		})
	}
}

func TestStoreAsPipelineCheckpoint(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var ck pipeline.Checkpoint = mk().Checkpoint("k")
			ck = pipeline.PrefixCheckpoint(ck, "functional")
			if err := ck.Save("encode", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if got, ok := ck.Load("encode"); !ok || string(got) != "x" {
				t.Fatalf("prefixed load = %q, %v", got, ok)
			}
		})
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint("k").Save("minimize", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A new store over the same directory — the restart path.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Checkpoint("k").Load("minimize"); !ok || string(got) != "persisted" {
		t.Fatalf("reopened store = %q, %v", got, ok)
	}
}

func TestFileStoreIgnoresStrayTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := s.Checkpoint("k")
	if err := ck.Save("schedule", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-save: a leftover temp file must not shadow
	// or corrupt any stage.
	stray := filepath.Join(dir, encodeName("k"), ".tmp-crash")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := ck.Load("schedule"); !ok || string(got) != "good" {
		t.Fatalf("stage corrupted by stray temp file: %q, %v", got, ok)
	}
	if _, ok := ck.Load(".tmp-crash"); ok {
		t.Log("note: temp file readable as a stage name; harmless (engine stage names never start with .tmp)")
	}
}

func TestFileStoreConcurrentSaves(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "ck"))
	if err != nil {
		t.Fatal(err)
	}
	ck := s.Checkpoint("k")
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			done <- ck.Save(fmt.Sprintf("stage%d", i%4), []byte(fmt.Sprintf("writer %d", i)))
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := ck.Load(fmt.Sprintf("stage%d", i)); !ok {
			t.Errorf("stage%d missing after concurrent saves", i)
		}
	}
}
