package job

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal is a crash-safe append-only write-ahead log of job
// lifecycle transitions, kept under the checkpoint root. Folding is
// deterministic, so the journal does not need to capture results — only
// intent: a submit record carries the full Spec, and replaying it after
// a crash re-folds (or snapshot-resumes, via the checkpoint store) to
// the bit-identical result. Duplicate replays are therefore harmless,
// which keeps the recovery protocol idempotent and simple.
//
// On-disk format: an 8-byte file magic, then a sequence of records,
// each framed as
//
//	[4B little-endian payload length][4B little-endian CRC32-IEEE of payload][payload JSON]
//
// Append writes each frame with a single Write call and fsyncs before
// returning, so an acknowledged record is on disk. OpenJournal scans
// the file and truncates a torn tail (short frame, implausible length,
// or CRC mismatch) at the last good record boundary — the write that
// was in flight when the process died is discarded, which is correct
// because it was never acknowledged.

// journalMagic identifies a circuitfold job journal, version 1.
const journalMagic = "CFJRNL01"

// maxJournalPayload bounds a single record. A Spec is a few hundred
// bytes plus an optional inline netlist; anything past this is a
// corrupt length field, not a record.
const maxJournalPayload = 64 << 20

// JournalOp is a job lifecycle transition.
type JournalOp string

const (
	// OpSubmitted records an accepted submission; the record carries
	// the Spec so the job can be replayed after a crash.
	OpSubmitted JournalOp = "submitted"
	// OpStarted records a worker picking the job up. Informational:
	// a started job without a terminal record replays the same way a
	// queued one does.
	OpStarted JournalOp = "started"
	// OpDone, OpFailed, OpCanceled are terminal; a job with a terminal
	// record is not replayed on recovery.
	OpDone     JournalOp = "done"
	OpFailed   JournalOp = "failed"
	OpCanceled JournalOp = "canceled"
)

// terminal reports whether op ends a job's lifecycle.
func (op JournalOp) terminal() bool {
	return op == OpDone || op == OpFailed || op == OpCanceled
}

// JournalRecord is one journaled transition.
type JournalRecord struct {
	Seq  uint64    `json:"seq"`
	Time string    `json:"time,omitempty"` // RFC3339Nano, informational
	Op   JournalOp `json:"op"`
	ID   string    `json:"id"`
	Spec *Spec     `json:"spec,omitempty"` // set on OpSubmitted
	Err  string    `json:"err,omitempty"`  // set on OpFailed/OpCanceled
}

// Journal is an open job journal. Safe for concurrent use; Append
// serializes writers and fsyncs each record.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	seq       uint64
	truncated int64
	closed    bool
}

// OpenJournal opens (or creates) the journal at path and replays it,
// returning the journal positioned for appends plus every intact
// record in order. A torn tail is truncated in place; a file that does
// not start with the journal magic is refused rather than clobbered.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("job: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("job: journal open: %w", err)
	}
	j := &Journal{f: f, path: path}
	recs, err := j.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	for _, r := range recs {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	return j, recs, nil
}

// replay reads every intact record, writes the header on a fresh file,
// and truncates any torn tail at the last good record boundary.
func (j *Journal) replay() ([]JournalRecord, error) {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return nil, fmt.Errorf("job: journal read: %w", err)
	}
	if len(data) == 0 {
		if _, err := j.f.Write([]byte(journalMagic)); err != nil {
			return nil, fmt.Errorf("job: journal header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("job: journal header sync: %w", err)
		}
		if err := syncDir(filepath.Dir(j.path)); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("job: %s is not a job journal (bad magic)", j.path)
	}
	var recs []JournalRecord
	good := int64(len(journalMagic)) // offset past the last intact record
	off := good
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break // clean end
		}
		if len(rest) < 8 {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		want := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxJournalPayload || int(n) > len(rest)-8 {
			break // implausible length or torn payload
		}
		payload := rest[8 : 8+int(n)]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt record
		}
		var rec JournalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // framed but unparseable: treat as corruption
		}
		off += 8 + int64(n)
		good = off
		recs = append(recs, rec)
	}
	if good < int64(len(data)) {
		j.truncated = int64(len(data)) - good
		if err := j.f.Truncate(good); err != nil {
			return nil, fmt.Errorf("job: journal truncate torn tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("job: journal sync: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return nil, fmt.Errorf("job: journal seek: %w", err)
	}
	return recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// TruncatedBytes reports how many torn-tail bytes OpenJournal dropped,
// for operator logs.
func (j *Journal) TruncatedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// Append journals one transition and fsyncs it. When Append returns
// nil the record is durable.
func (j *Journal) Append(op JournalOp, id string, spec *Spec, errText string) error {
	if id == "" {
		return errors.New("job: journal append: empty id")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("job: journal is closed")
	}
	j.seq++
	rec := JournalRecord{
		Seq:  j.seq,
		Time: time.Now().UTC().Format(time.RFC3339Nano),
		Op:   op,
		ID:   id,
		Spec: spec,
		Err:  errText,
	}
	return j.writeLocked(rec)
}

// writeLocked frames and writes one record and fsyncs. Callers hold
// j.mu.
func (j *Journal) writeLocked(rec JournalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job: journal encode: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("job: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("job: journal fsync: %w", err)
	}
	return nil
}

// Compact atomically replaces the journal's contents with recs (the
// live jobs, typically re-journaled submit records after a recovery
// replay). The rewrite goes through a temp file + fsync + rename so a
// crash mid-compaction leaves either the old journal or the new one,
// never a mix. Records with Seq 0 are assigned fresh sequence numbers.
func (j *Journal) Compact(recs []JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("job: journal is closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("job: journal compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write([]byte(journalMagic)); err != nil {
		return fail(fmt.Errorf("job: journal compact header: %w", err))
	}
	for i := range recs {
		rec := recs[i]
		if rec.Seq == 0 {
			j.seq++
			rec.Seq = j.seq
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return fail(fmt.Errorf("job: journal compact encode: %w", err))
		}
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[8:], payload)
		if _, err := tmp.Write(frame); err != nil {
			return fail(fmt.Errorf("job: journal compact write: %w", err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("job: journal compact fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("job: journal compact close: %w", err))
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("job: journal compact rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// The old fd points at the unlinked inode; reopen the new file for
	// appends.
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("job: journal reopen after compact: %w", err)
	}
	old.Close()
	j.f = f
	return nil
}

// Close fsyncs and closes the journal. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// PendingJobs returns, in submission order, the submit records of jobs
// that were still queued or running when the journal was written —
// i.e. those with a Spec-bearing OpSubmitted record and no terminal
// record. These are the jobs a recovering daemon must re-enqueue.
func PendingJobs(recs []JournalRecord) []JournalRecord {
	type lifecycle struct {
		submit JournalRecord
		done   bool
	}
	byID := make(map[string]*lifecycle)
	var order []string
	for _, r := range recs {
		lc, ok := byID[r.ID]
		if !ok {
			lc = &lifecycle{}
			byID[r.ID] = lc
			order = append(order, r.ID)
		}
		switch {
		case r.Op == OpSubmitted && r.Spec != nil:
			lc.submit = r
		case r.Op.terminal():
			lc.done = true
		}
	}
	var pending []JournalRecord
	for _, id := range order {
		lc := byID[id]
		if !lc.done && lc.submit.Spec != nil {
			pending = append(pending, lc.submit)
		}
	}
	return pending
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("job: dir sync open: %w", err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		return fmt.Errorf("job: dir sync: %w", serr)
	}
	return nil
}
