package job

import (
	"context"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"circuitfold"
	"circuitfold/internal/pipeline"
)

// smokeSpec is the fold the service tests run: the paper's 64-adder
// folded 16x functionally, cheap knobs (no reorder, no minimize).
func smokeSpec() Spec {
	return Spec{Generator: "64-adder", T: 16, Method: MethodFunctional}
}

// waitRunning polls until the job leaves the queue (a worker picked
// it up; on fast folds it may already be done).
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for j.Status().State == StateQueued {
		select {
		case <-deadline:
			t.Fatalf("job never started: %+v", j.Status())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// wait blocks until the job finishes or the test times out.
func wait(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"generator", Spec{Generator: "adder3", T: 3}, true},
		{"netlist", Spec{Netlist: &Netlist{Format: "bench", Text: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"}, T: 1}, true},
		{"no source", Spec{T: 2}, false},
		{"both sources", Spec{Generator: "adder3", Netlist: &Netlist{Format: "aag"}, T: 2}, false},
		{"bad generator", Spec{Generator: "nope", T: 2}, false},
		{"bad T", Spec{Generator: "adder3", T: 0}, false},
		{"bad method", Spec{Generator: "adder3", T: 2, Method: "quantum"}, false},
		{"bad format", Spec{Netlist: &Netlist{Format: "vhdl", Text: "x"}, T: 2}, false},
		{"bad encoding", Spec{Generator: "adder3", T: 2, StateEnc: "gray"}, false},
		{"resilient", Spec{Generator: "adder3", T: 3, Method: MethodResilient}, true},
	} {
		err := tc.spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSpecHash(t *testing.T) {
	a := smokeSpec()
	b := smokeSpec()
	if a.Hash() != b.Hash() {
		t.Error("identical specs hash differently")
	}
	b.T = 8
	if a.Hash() == b.Hash() {
		t.Error("different specs collide")
	}
	// The method default is applied before hashing: "" and
	// "functional" are the same job.
	c := smokeSpec()
	c.Method = ""
	if a.Hash() != c.Hash() {
		t.Error("default method changes the hash")
	}
}

func TestRunnerRunsJob(t *testing.T) {
	r := NewRunner(2, nil)
	defer r.Shutdown(context.Background())
	j, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Method != MethodFunctional || st.InputPins != 8 {
		t.Errorf("status = %+v", st)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	g, err := circuitfold.Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	if err := circuitfold.VerifyFast(g, res, 2); err != nil {
		t.Errorf("folded result fails verification: %v", err)
	}
}

func TestRunnerFinalSnapshotResume(t *testing.T) {
	// The result cache is disabled so the resubmission exercises the
	// checkpoint-store resume path (the cache would otherwise serve it
	// at submit; TestRunnerCacheHit covers that).
	r := NewRunnerWith(RunnerOptions{Workers: 1, CacheEntries: -1})
	defer r.Shutdown(context.Background())
	j1, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	if st := j1.Status(); st.State != StateDone || st.ResumedResult {
		t.Fatalf("first run status = %+v", st)
	}
	// The identical spec is served from its final snapshot.
	j2, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	st := j2.Status()
	if st.State != StateDone || !st.ResumedResult {
		t.Fatalf("resubmission status = %+v (%s)", st, st.Error)
	}
	r1, _ := j1.Result()
	r2, _ := j2.Result()
	if !reflect.DeepEqual(stripReport(r1), stripReport(r2)) {
		t.Error("snapshot-restored result differs from the original")
	}
}

// killStore wraps a Store so tests can observe stage saves — the
// deterministic stand-in for "the daemon died right after stage X
// checkpointed".
type killStore struct {
	Store
	mu     sync.Mutex
	onSave func(stage string)
}

func (s *killStore) Checkpoint(key string) pipeline.Checkpoint {
	return &killCheckpoint{Checkpoint: s.Store.Checkpoint(key), s: s}
}

type killCheckpoint struct {
	pipeline.Checkpoint
	s *killStore
}

func (c *killCheckpoint) Save(stage string, data []byte) error {
	err := c.Checkpoint.Save(stage, data)
	c.s.mu.Lock()
	cb := c.s.onSave
	c.s.mu.Unlock()
	if cb != nil && err == nil {
		cb(stage)
	}
	return err
}

// TestJobKillAndResume is the acceptance test at the service level: a
// job killed mid-pipeline (right after the tff stage checkpointed to
// a file-backed store), resubmitted to a fresh runner over the same
// store — a daemon restart — resumes at the last completed stage,
// visibly in the status, and produces a Result bit-identical to an
// uninterrupted fold.
func TestJobKillAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ks := &killStore{Store: fs}
	r1 := NewRunner(1, ks)

	var once sync.Once
	ks.onSave = func(stage string) {
		if stage == pipeline.StageTFF {
			// The "kill": cancel the (only) job the moment its tff
			// stage checkpointed. Looked up via the runner — Submit
			// registered it before any worker could run it.
			once.Do(func() {
				for _, j := range r1.Jobs() {
					r1.Cancel(j.ID())
				}
			})
		}
	}
	killed, err := r1.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, killed)
	if st := killed.Status(); st.State != StateCanceled {
		t.Fatalf("killed job state = %s (%s)", st.State, st.Error)
	}
	r1.Shutdown(context.Background())

	// An uninterrupted fold for the bit-identity reference.
	g, err := circuitfold.Benchmark("64-adder")
	if err != nil {
		t.Fatal(err)
	}
	spec := smokeSpec()
	opt := spec.Options()
	clean, err := circuitfold.Functional(g, 16, opt)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart the daemon": a fresh runner over the same directory.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(1, fs2)
	defer r2.Shutdown(context.Background())
	j, err := r2.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("resumed job state = %s (%s)", st.State, st.Error)
	}
	found := false
	for _, name := range st.Resumed {
		if name == pipeline.StageTFF {
			found = true
		}
	}
	if !found {
		t.Errorf("resumed stages %v do not include %s", st.Resumed, pipeline.StageTFF)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripReport(res), stripReport(clean)) {
		t.Fatal("resumed result is not bit-identical to the uninterrupted fold")
	}
	if err := circuitfold.VerifyFast(g, res, 2); err != nil {
		t.Errorf("resumed result fails verification: %v", err)
	}
}

// stripReport clones a result without its report (timings differ
// across runs; everything else must be identical).
func stripReport(r *circuitfold.Result) circuitfold.Result {
	c := *r
	c.Report = nil
	return c
}

func TestRunnerCancelQueued(t *testing.T) {
	r := NewRunner(1, nil)
	defer r.Shutdown(context.Background())
	// One worker: the second job stays queued while the first runs.
	j1, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec2 := smokeSpec()
	spec2.T = 32
	j2, err := r.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cancel(j2.ID()) {
		t.Fatal("cancel returned false")
	}
	wait(t, j2)
	if st := j2.Status(); st.State != StateCanceled {
		t.Errorf("queued job state = %s after cancel", st.State)
	}
	wait(t, j1)
	if st := j1.Status(); st.State != StateDone {
		t.Errorf("running job state = %s (%s)", st.State, st.Error)
	}
	if r.Cancel("j9999") {
		t.Error("cancel of unknown id returned true")
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	r := NewRunner(1, nil)
	j, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Only in-flight jobs are drained (queued ones are canceled, they
	// have no progress to lose) — so wait for the job to start.
	waitRunning(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if st := j.Status(); st.State != StateDone {
		t.Errorf("drained job state = %s (%s)", st.State, st.Error)
	}
	if _, err := r.Submit(smokeSpec()); err == nil {
		t.Error("submit accepted after shutdown")
	}
}

func TestShutdownDeadlineCancelsAndCheckpoints(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "ck"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(1, fs)
	// A heavy fold that cannot finish in the drain window but polls
	// cancellation and checkpoints completed stages.
	spec := Spec{Generator: "b14_C", T: 8, Method: MethodFunctional, Reorder: true, Minimize: true}
	j, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A second, queued job: shutdown cancels it before it starts.
	q, err := r.Submit(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = r.Shutdown(ctx)
	if err == nil {
		t.Skip("b14_C fold finished inside the drain window on this machine")
	}
	if !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("shutdown error = %v", err)
	}
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("in-flight job state = %s after forced drain (%s)", st.State, st.Error)
	}
	if st := q.Status(); st.State != StateCanceled {
		t.Errorf("queued job state = %s after drain", st.State)
	}
}

func TestRunnerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		r := NewRunner(4, nil)
		j, err := r.Submit(Spec{Generator: "adder3", T: 3})
		if err != nil {
			t.Fatal(err)
		}
		ch, cancelSub := j.Events(16)
		wait(t, j)
		for range ch { // drain until the job closes the stream
		}
		cancelSub()
		if err := r.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines: %d before, %d after shutdowns", before, runtime.NumGoroutine())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
