package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"circuitfold"
	"circuitfold/internal/core"
	"circuitfold/internal/obs"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are live; the other three are
// terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// finalStage is the checkpoint key holding a finished job's encoded
// result: the job-level snapshot that makes resubmission of an
// identical spec instant, and the resume path for methods without
// per-stage checkpoints (hybrid, simple).
const finalStage = "result"

// eventReplay is the per-job span replay ring: a client attaching
// mid-run sees up to this many recent events before the live stream.
const eventReplay = 256

// Job is one submitted fold. All accessors are safe for concurrent
// use; the zero value is not usable — jobs come from Runner.Submit.
type Job struct {
	id   string
	spec Spec
	key  string
	g    *circuitfold.Circuit

	events  *obs.Broadcast
	metrics *circuitfold.Metrics
	done    chan struct{}

	mu       sync.Mutex
	state    State
	err      string
	method   string
	resumed  []string // stage names restored from checkpoints
	fromSnap bool     // whole result restored from the final snapshot
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	result   *circuitfold.Result
}

// ID returns the job's runner-unique identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's spec.
func (j *Job) Spec() Spec { return j.spec }

// Key returns the job's content address (Spec.Hash).
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events subscribes to the job's live span stream with a buffer of
// buf events (plus a bounded replay of recent history); the returned
// cancel must be called when the subscriber detaches. The channel
// closes when the job finishes.
func (j *Job) Events(buf int) (<-chan obs.Event, func()) { return j.events.Subscribe(buf) }

// Metrics returns the job's metrics registry.
func (j *Job) Metrics() *circuitfold.Metrics { return j.metrics }

// Result returns the fold result, or an error while the job is not
// Done.
func (j *Job) Result() (*circuitfold.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("job: %s is %s, not done", j.id, j.state)
	}
	return j.result, nil
}

// Status is the job's JSON view.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Key    string `json:"key"`
	Source string `json:"source"`
	T      int    `json:"t"`
	Method string `json:"method,omitempty"`
	Error  string `json:"error,omitempty"`
	// Resumed lists the pipeline stages restored from checkpoints;
	// ResumedResult reports a whole-result restore from the final
	// snapshot (an identical spec already ran to completion).
	Resumed       []string `json:"resumed,omitempty"`
	ResumedResult bool     `json:"resumed_result,omitempty"`
	CreatedAt     string   `json:"created_at"`
	StartedAt     string   `json:"started_at,omitempty"`
	FinishedAt    string   `json:"finished_at,omitempty"`
	// Fold shape, present when done.
	InputPins  int `json:"input_pins,omitempty"`
	OutputPins int `json:"output_pins,omitempty"`
	FlipFlops  int `json:"flip_flops,omitempty"`
	Gates      int `json:"gates,omitempty"`
	States     int `json:"states,omitempty"`
	StatesMin  int `json:"states_min,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	source := j.spec.Generator
	if source == "" && j.spec.Netlist != nil {
		source = "netlist:" + j.spec.Netlist.Format
	}
	st := Status{
		ID:            j.id,
		State:         j.state,
		Key:           j.key,
		Source:        source,
		T:             j.spec.T,
		Method:        j.method,
		Error:         j.err,
		Resumed:       append([]string(nil), j.resumed...),
		ResumedResult: j.fromSnap,
		CreatedAt:     j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone && j.result != nil {
		st.InputPins = j.result.InputPins()
		st.OutputPins = j.result.OutputPins()
		st.FlipFlops = j.result.FlipFlops()
		st.Gates = j.result.Gates()
		st.States = j.result.States
		st.StatesMin = j.result.StatesMin
	}
	return st
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, errText string) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = errText
	j.finished = time.Now()
	j.mu.Unlock()
	j.events.Close()
	close(j.done)
}

// Runner executes jobs on a bounded worker pool over a checkpoint
// store. Close it with Shutdown.
type Runner struct {
	store Store
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	closed   bool
	draining bool

	wg sync.WaitGroup
}

// NewRunner starts a runner with the given worker count (minimum 1)
// over store (nil means a fresh MemStore).
func NewRunner(workers int, store Store) *Runner {
	if workers < 1 {
		workers = 1
	}
	if store == nil {
		store = NewMemStore()
	}
	r := &Runner{
		store: store,
		queue: make(chan *Job, 1024),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Submit validates the spec, builds its circuit (rejecting malformed
// uploads at the door), and enqueues the job.
func (r *Runner) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := spec.Circuit()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("job: runner is shut down")
	}
	r.nextID++
	j := &Job{
		id:      fmt.Sprintf("j%04d", r.nextID),
		spec:    spec,
		key:     spec.Hash(),
		g:       g,
		events:  obs.NewBroadcast(eventReplay),
		metrics: circuitfold.NewMetrics(),
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	select {
	case r.queue <- j:
	default:
		return nil, fmt.Errorf("job: queue full (%d pending)", cap(r.queue))
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	return j, nil
}

// Get returns a job by ID.
func (r *Runner) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (r *Runner) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, len(r.order))
	for i, id := range r.order {
		out[i] = r.jobs[id]
	}
	return out
}

// Cancel stops a job: queued jobs terminate immediately, running jobs
// get their context cancelled (and keep the checkpoints saved so
// far). Unknown IDs return false.
func (r *Runner) Cancel(id string) bool {
	j, ok := r.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		j.finish(StateCanceled, "canceled before start")
		return true
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// Shutdown drains the runner: no new submissions, queued jobs are
// canceled (they have no progress to lose), and in-flight jobs get
// until ctx's deadline to finish. Past the deadline their contexts
// are cancelled — per-stage checkpoints already saved make them
// resumable — and the deadline error is returned after the workers
// exit. Shutdown is idempotent; later calls wait like the first.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	already := r.closed
	r.closed = true
	r.draining = true
	if !already {
		close(r.queue)
	}
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cut the in-flight jobs loose at their next
	// cancellation poll; their completed stages are checkpointed.
	for _, j := range r.Jobs() {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	<-done
	return fmt.Errorf("job: drain deadline: %w", ctx.Err())
}

// worker drains the queue.
func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.runJob(j)
	}
}

// runJob executes one job end to end.
func (r *Runner) runJob(j *Job) {
	r.mu.Lock()
	draining := r.draining
	r.mu.Unlock()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	if draining {
		j.mu.Unlock()
		j.finish(StateCanceled, "canceled: daemon shutting down")
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	ck := r.store.Checkpoint(j.key)

	// Job-level resume: an identical spec that already completed (in
	// this process or a previous one) is served from its final
	// snapshot. A corrupt snapshot falls through to a recompute.
	if data, ok := ck.Load(finalStage); ok {
		if method, res, err := decodeFinal(data); err == nil {
			j.mu.Lock()
			j.method = method
			j.result = res
			j.fromSnap = true
			j.mu.Unlock()
			j.finish(StateDone, "")
			return
		}
	}

	opt := j.spec.Options()
	opt.Context = ctx
	opt.Observer = &circuitfold.Observer{Tracer: circuitfold.NewTracer(j.events), Metrics: j.metrics}
	opt.Checkpoint = ck

	var (
		res    *circuitfold.Result
		err    error
		method = j.spec.EffectiveMethod()
	)
	switch method {
	case MethodFunctional:
		res, err = circuitfold.Functional(j.g, j.spec.T, opt)
	case MethodStructural:
		res, err = circuitfold.Structural(j.g, j.spec.T, opt)
	case MethodHybrid:
		res, err = circuitfold.Hybrid(j.g, j.spec.T, opt)
	case MethodSimple:
		res, err = circuitfold.Simple(j.g, j.spec.T)
	case MethodResilient:
		var rr *circuitfold.ResilientResult
		rr, err = circuitfold.RunResilient(j.g, j.spec.T, circuitfold.ResilientOptions{
			Options:         opt,
			SelfCheckRounds: j.spec.SelfCheckRounds,
		})
		if err == nil {
			res = rr.Result
			method = string(rr.Method)
		}
	default:
		err = fmt.Errorf("job: unknown method %q", method)
	}
	if err != nil {
		if errors.Is(err, circuitfold.ErrCanceled) {
			j.finish(StateCanceled, err.Error())
		} else {
			j.finish(StateFailed, err.Error())
		}
		return
	}

	var resumed []string
	if res.Report != nil {
		for _, ss := range res.Report.Stages {
			if ss.Resumed {
				resumed = append(resumed, ss.Name)
			}
		}
	}
	if data, encErr := encodeFinal(method, res); encErr == nil {
		_ = ck.Save(finalStage, data) // best effort: resume is an optimization
	}
	j.mu.Lock()
	j.method = method
	j.result = res
	j.resumed = resumed
	j.mu.Unlock()
	j.finish(StateDone, "")
}

// finalJSON is the final-snapshot envelope.
type finalJSON struct {
	V      int             `json:"v"`
	Method string          `json:"method"`
	Result json.RawMessage `json:"result"`
}

// encodeFinal serializes a finished fold with the method that won.
func encodeFinal(method string, res *circuitfold.Result) ([]byte, error) {
	data, err := core.EncodeResult(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(finalJSON{V: core.ResultCodecVersion, Method: method, Result: data})
}

// decodeFinal is the inverse of encodeFinal.
func decodeFinal(data []byte) (string, *circuitfold.Result, error) {
	var f finalJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return "", nil, err
	}
	if f.V != core.ResultCodecVersion {
		return "", nil, fmt.Errorf("job: final snapshot version %d, want %d", f.V, core.ResultCodecVersion)
	}
	res, err := core.DecodeResult(f.Result)
	if err != nil {
		return "", nil, err
	}
	return f.Method, res, nil
}
