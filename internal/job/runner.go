package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"circuitfold"
	"circuitfold/internal/cache"
	"circuitfold/internal/core"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are live; the other three are
// terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// finalStage is the checkpoint key holding a finished job's encoded
// result: the job-level snapshot that makes resubmission of an
// identical spec instant, and the resume path for methods without
// per-stage checkpoints (hybrid, simple).
const finalStage = "result"

// ErrShutdown is returned by Submit once the runner has shut down.
var ErrShutdown = errors.New("job: runner is shut down")

// ErrQueueFull is the root of admission-control rejections. The
// concrete error is a *QueueFullError carrying a Retry-After estimate;
// test with errors.Is(err, ErrQueueFull) or errors.As.
var ErrQueueFull = errors.New("job: queue full")

// QueueFullError is a fast-fail admission rejection: the worker queue
// is at capacity, and the caller should retry after RetryAfter (an
// EWMA-based estimate of the time to drain one queue's worth of work).
// It unwraps to ErrQueueFull.
type QueueFullError struct {
	Depth      int           // jobs pending at rejection time
	RetryAfter time.Duration // suggested client backoff
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("job: queue full (%d pending); retry after %s", e.Depth, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrQueueFull) true.
func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// eventReplay is the per-job span replay ring: a client attaching
// mid-run sees up to this many recent events before the live stream.
const eventReplay = 256

// Job is one submitted fold. All accessors are safe for concurrent
// use; the zero value is not usable — jobs come from Runner.Submit.
type Job struct {
	id      string
	spec    Spec
	key     string
	foldKey string // shared-work content address (Spec.FoldKey)
	g       *circuitfold.Circuit

	events    *obs.Broadcast
	metrics   *circuitfold.Metrics
	flight    *obs.FlightRecorder
	log       *slog.Logger // correlated: every line carries job_id + key
	profile   string       // requested profile kind: "", "cpu" or "heap"
	done      chan struct{}
	r         *Runner   // back-pointer for terminal-transition journaling
	deadline  time.Time // zero = no client deadline
	recovered bool      // re-enqueued by journal replay after a crash

	mu        sync.Mutex
	state     State
	err       string
	method    string
	cacheStat string   // shared-work verdict at submit: "hit", "miss" or "attached"
	enqueued  bool     // true once the job entered the worker queue
	resumed   []string // stage names restored from checkpoints
	fromSnap  bool     // whole result restored from the final snapshot
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	result    *circuitfold.Result
	flightRec []byte // flight-recorder artifact, set on dump
	profData  []byte // captured pprof profile, set after the run
}

// ID returns the job's runner-unique identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's spec.
func (j *Job) Spec() Spec { return j.spec }

// Key returns the job's content address (Spec.Hash).
func (j *Job) Key() string { return j.key }

// FoldKey returns the job's shared-work content address (Spec.FoldKey):
// the key of the runner's result cache and in-flight dedup.
func (j *Job) FoldKey() string { return j.foldKey }

// CacheStatus reports how the shared-work engine classified the job at
// submit: "hit" (served from the result cache), "attached" (joined an
// identical in-flight job), or "miss" (folded).
func (j *Job) CacheStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheStat
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events subscribes to the job's live span stream with a buffer of
// buf events (plus a bounded replay of recent history); the returned
// cancel must be called when the subscriber detaches. The channel
// closes when the job finishes.
func (j *Job) Events(buf int) (<-chan obs.Event, func()) { return j.events.Subscribe(buf) }

// Metrics returns the job's metrics registry.
func (j *Job) Metrics() *circuitfold.Metrics { return j.metrics }

// FlightRecord returns the job's flight-recorder artifact — one
// self-contained JSON document with the spans, log records and final
// metrics leading up to a failure — or false when the job has not
// (yet) dumped one. Dumps happen when a job fails, when a fold
// recovered a panic, or when the degradation ladder descended.
func (j *Job) FlightRecord() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.flightRec == nil {
		return nil, false
	}
	return j.flightRec, true
}

// Profile returns the captured pprof profile (the kind requested at
// submit) once the job is terminal, or false when none was requested
// or it is not ready yet.
func (j *Job) Profile() (kind string, data []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.profData == nil {
		return "", nil, false
	}
	return j.profile, j.profData, true
}

// Result returns the fold result, or an error while the job is not
// Done.
func (j *Job) Result() (*circuitfold.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("job: %s is %s, not done", j.id, j.state)
	}
	return j.result, nil
}

// Status is the job's JSON view.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Key    string `json:"key"`
	Source string `json:"source"`
	T      int    `json:"t"`
	Method string `json:"method,omitempty"`
	Error  string `json:"error,omitempty"`
	// Resumed lists the pipeline stages restored from checkpoints;
	// ResumedResult reports a whole-result restore from the final
	// snapshot (an identical spec already ran to completion).
	Resumed       []string `json:"resumed,omitempty"`
	ResumedResult bool     `json:"resumed_result,omitempty"`
	// Cache is the shared-work verdict at submit: "hit" (served from
	// the result cache), "miss" (folded), or "attached" (joined an
	// identical in-flight job).
	Cache string `json:"cache,omitempty"`
	// Recovered marks a job re-enqueued by journal replay after a
	// daemon crash; DeadlineAt is the client-supplied completion
	// deadline, when one was set.
	Recovered  bool   `json:"recovered,omitempty"`
	DeadlineAt string `json:"deadline_at,omitempty"`
	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// Fold shape, present when done.
	InputPins  int `json:"input_pins,omitempty"`
	OutputPins int `json:"output_pins,omitempty"`
	FlipFlops  int `json:"flip_flops,omitempty"`
	Gates      int `json:"gates,omitempty"`
	States     int `json:"states,omitempty"`
	StatesMin  int `json:"states_min,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	source := j.spec.Generator
	if source == "" && j.spec.Netlist != nil {
		source = "netlist:" + j.spec.Netlist.Format
	}
	st := Status{
		ID:            j.id,
		State:         j.state,
		Key:           j.key,
		Source:        source,
		T:             j.spec.T,
		Method:        j.method,
		Error:         j.err,
		Resumed:       append([]string(nil), j.resumed...),
		ResumedResult: j.fromSnap,
		Cache:         j.cacheStat,
		Recovered:     j.recovered,
		CreatedAt:     j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.deadline.IsZero() {
		st.DeadlineAt = j.deadline.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone && j.result != nil {
		st.InputPins = j.result.InputPins()
		st.OutputPins = j.result.OutputPins()
		st.FlipFlops = j.result.FlipFlops()
		st.Gates = j.result.Gates()
		st.States = j.result.States
		st.StatesMin = j.result.StatesMin
	}
	return st
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, errText string) { j.finishWith(state, errText, nil) }

// finishWith moves the job to a terminal state exactly once, running
// mutate under the job lock just before the transition when this call
// wins it. It reports whether it did: a lost race (the job was already
// terminal) leaves the job untouched, so concurrent finishers — the
// fold worker, a user cancel, a dedup delivery — cannot interleave
// their result fields.
func (j *Job) finishWith(state State, errText string, mutate func()) bool {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		j.mu.Unlock()
		return false
	}
	if mutate != nil {
		mutate()
	}
	j.state = state
	j.err = errText
	j.finished = time.Now()
	j.mu.Unlock()
	j.events.Close()
	close(j.done)
	if j.r != nil {
		j.r.journalTerminal(j, state, errText)
	}
	return true
}

// Runner executes jobs on a bounded worker pool over a checkpoint
// store. Close it with Shutdown.
type Runner struct {
	store   Store
	queue   chan *Job
	workers int
	log     *slog.Logger
	metrics *obs.Registry // process-level: lifecycle, latency, HTTP
	fSpans  int           // per-job flight-recorder ring sizes
	fLogs   int
	cache   *cache.Cache // shared-work result cache, nil when disabled

	// journal is the durable transition log, or nil. It is an atomic
	// pointer — not guarded by r.mu — because terminal transitions
	// journal from finishWith, which runs both with and without r.mu
	// held; Kill swaps it to nil to simulate a crash (no terminal
	// records reach disk).
	journal atomic.Pointer[Journal]

	// avgRun is an EWMA of fold wall time in nanoseconds, feeding the
	// Retry-After estimate on queue-full rejections.
	avgRun atomic.Int64

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string
	inflight   map[string]*flight // fold key -> live dedup group
	nextID     int
	closed     bool
	draining   bool
	recovering bool // journal replay in progress: not ready for traffic

	wg sync.WaitGroup
}

// flight is one in-flight dedup group: the leader is the job actually
// folding under the fold key; waiters attached after it and observe
// its terminal state (sharing its bit-identical result on success).
type flight struct {
	leader  *Job
	waiters []*Job
}

// RunnerOptions configures NewRunnerWith. The zero value matches
// NewRunner(0, nil).
type RunnerOptions struct {
	// Workers is the fold worker-pool size (minimum 1).
	Workers int
	// Store is the checkpoint store (nil means a fresh MemStore).
	Store Store
	// Logger receives the runner's structured lifecycle log; each
	// job's lines carry its job_id and content key. Nil discards.
	Logger *slog.Logger
	// Metrics is the process-level registry for lifecycle counters,
	// queue/run latency histograms and per-stage timings aggregated
	// across jobs. Nil allocates a private one.
	Metrics *obs.Registry
	// FlightSpans / FlightLogs size each job's flight-recorder rings
	// (<= 0 selects the obs defaults).
	FlightSpans int
	FlightLogs  int
	// CacheEntries / CacheBytes bound the shared-work result cache
	// (zero selects the cache defaults). A negative value in either
	// disables the cache entirely; in-flight dedup stays on.
	CacheEntries int
	CacheBytes   int64
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// folding); zero selects the default of 1024. At capacity, Submit
	// fast-fails with *QueueFullError instead of queueing unboundedly.
	QueueDepth int
	// Journal, when set, records every job transition durably and is
	// consulted on startup recovery. The runner starts in the
	// recovering state (readiness probes fail) until Recover is called
	// — with the journal's replayed records, or nil to skip replay.
	Journal *Journal
}

// NewRunner starts a runner with the given worker count (minimum 1)
// over store (nil means a fresh MemStore). Telemetry is wired to
// defaults; use NewRunnerWith to direct it.
func NewRunner(workers int, store Store) *Runner {
	return NewRunnerWith(RunnerOptions{Workers: workers, Store: store})
}

// NewRunnerWith starts a runner from opts.
func NewRunnerWith(opts RunnerOptions) *Runner {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.Logger == nil {
		opts.Logger = obs.DiscardLogger()
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	r := &Runner{
		store:    opts.Store,
		queue:    make(chan *Job, opts.QueueDepth),
		workers:  opts.Workers,
		log:      opts.Logger,
		metrics:  opts.Metrics,
		fSpans:   opts.FlightSpans,
		fLogs:    opts.FlightLogs,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*flight),
	}
	corrupt := opts.Metrics.Counter(obs.MStoreCorrupt)
	if fs, ok := opts.Store.(*FileStore); ok {
		fs.Observe(corrupt)
	}
	if opts.CacheEntries >= 0 && opts.CacheBytes >= 0 {
		r.cache = cache.New(opts.CacheEntries, opts.CacheBytes)
		r.cache.Observe(
			opts.Metrics.Gauge(obs.MCacheEntries),
			opts.Metrics.Gauge(obs.MCacheBytes),
			opts.Metrics.Counter(obs.MCacheEvictions),
			corrupt)
	}
	if opts.Journal != nil {
		r.journal.Store(opts.Journal)
		// A journaled runner is born recovering: readiness stays false
		// until Recover replays (or explicitly skips) the backlog, so
		// load balancers do not route traffic mid-replay.
		r.recovering = true
	}
	for i := 0; i < opts.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Metrics returns the runner's process-level registry — lifecycle
// counters, queue depth, and latency histograms across all jobs.
func (r *Runner) Metrics() *obs.Registry { return r.metrics }

// Ready reports whether the runner should receive new traffic; when it
// should not, reason says why (readiness probes surface it to the
// operator). Beyond the lifecycle states (recovering at startup,
// draining or shut down at the end), a queue at >= 90% capacity reports
// overloaded so load balancers back off before submissions start
// failing with queue-full rejections.
func (r *Runner) Ready() (bool, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.closed:
		return false, "shut down"
	case r.draining:
		return false, "draining"
	case r.recovering:
		return false, "recovering: journal replay in progress"
	}
	if n := len(r.queue); n*10 >= cap(r.queue)*9 {
		return false, fmt.Sprintf("overloaded: queue %d/%d", n, cap(r.queue))
	}
	return true, ""
}

// SubmitOptions carries per-submission knobs that are deliberately
// not part of Spec: they must not change the job's content address.
type SubmitOptions struct {
	// Profile requests a pprof capture for this job: "cpu" profiles
	// the fold's execution window, "heap" snapshots the live heap
	// right after the fold. Empty means no profiling.
	Profile string
	// Deadline bounds the job's total latency (queue wait included):
	// past it, a queued job fails without folding and a running job's
	// pipeline context expires at its next cancellation poll. Zero
	// means no deadline.
	Deadline time.Duration

	// recovered marks a journal-replay resubmission; only the runner's
	// own recovery path sets it.
	recovered bool
}

// Submit validates the spec, builds its circuit (rejecting malformed
// uploads at the door), and enqueues the job.
func (r *Runner) Submit(spec Spec) (*Job, error) {
	return r.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith is Submit with per-submission options.
func (r *Runner) SubmitWith(spec Spec, so SubmitOptions) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if so.Profile != "" && so.Profile != "cpu" && so.Profile != "heap" {
		return nil, fmt.Errorf("job: unknown profile %q (want cpu or heap)", so.Profile)
	}
	g, err := spec.Circuit()
	if err != nil {
		return nil, err
	}
	foldKey := spec.FoldKey(g) // hashes the AIG; computed outside the lock
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrShutdown
	}
	r.nextID++
	j := &Job{
		id:        fmt.Sprintf("j%04d", r.nextID),
		spec:      spec,
		key:       spec.Hash(),
		foldKey:   foldKey,
		g:         g,
		events:    obs.NewBroadcast(eventReplay),
		metrics:   circuitfold.NewMetrics(),
		flight:    obs.NewFlightRecorder(r.fSpans, r.fLogs),
		profile:   so.Profile,
		done:      make(chan struct{}),
		r:         r,
		recovered: so.recovered,
		state:     StateQueued,
		created:   time.Now(),
	}
	if so.Deadline > 0 {
		j.deadline = j.created.Add(so.Deadline)
	}
	// Correlated logger: the process stream and the job's flight
	// recorder both see every line, each stamped with the job's
	// identity (the content key is the PR 7 spec hash, shortened to
	// the display width used everywhere else).
	j.log = slog.New(obs.TeeHandler(r.log.Handler(), j.flight.LogHandler())).
		With("job_id", j.id, "key", shortKey(j.key))
	// Shared-work triage, in order: (1) the result cache serves a
	// finished identical fold without touching an engine; (2) a live
	// identical fold absorbs this submission as a waiter; (3) this
	// submission leads and enqueues.
	if data, ok := r.cache.Get(j.foldKey); ok {
		// A hit decodes into a private Result, so cached jobs never
		// alias each other's circuits. A corrupt entry (codec version
		// drift) falls through to a real fold.
		if method, res, err := decodeFinal(data); err == nil {
			r.register(j)
			// Journal the submission first so the done record that
			// finishWith appends has a matching lifecycle. Best effort:
			// a hit completes synchronously, so there is no pending
			// work a crash could lose.
			r.journalSubmit(j, false)
			r.metrics.Counter(obs.MJobCacheHits).Add(1)
			r.metrics.Counter(obs.MJobDone).Add(1)
			j.finishWith(StateDone, "", func() {
				j.cacheStat = "hit"
				j.method = method
				j.result = res
			})
			j.log.Info("job submitted",
				"method", j.spec.EffectiveMethod(), "t", j.spec.T, "cache", "hit")
			j.log.Info("job done", "method", method, "cache", "hit")
			return j, nil
		}
	}
	if fl, ok := r.inflight[j.foldKey]; ok {
		j.cacheStat = "attached"
		fl.waiters = append(fl.waiters, j)
		r.register(j)
		// Best effort: losing this record means a crash replays the
		// waiter as its own submission, which dedups or cache-hits.
		r.journalSubmit(j, false)
		r.metrics.Counter(obs.MJobDedupAttached).Add(1)
		j.log.Info("job submitted", "method", j.spec.EffectiveMethod(),
			"t", j.spec.T, "cache", "attached", "leader", fl.leader.id)
		return j, nil
	}
	// Admission control: at queue capacity, fail fast with a
	// Retry-After estimate instead of blocking or queueing unboundedly.
	// The check-then-send below is race-free because every producer
	// holds r.mu and workers only consume.
	if len(r.queue) >= cap(r.queue) {
		r.metrics.Counter(obs.MJobRejected).Add(1)
		return nil, &QueueFullError{Depth: len(r.queue), RetryAfter: r.retryAfter()}
	}
	j.cacheStat = "miss"
	// Journal before enqueueing, strictly: once Submit acknowledges a
	// leader, a crash must be able to replay it. If the record cannot
	// be made durable the submission is refused.
	if err := r.journalSubmit(j, true); err != nil {
		return nil, err
	}
	j.enqueued = true
	r.queue <- j
	r.inflight[j.foldKey] = &flight{leader: j}
	r.register(j)
	r.metrics.Counter(obs.MJobCacheMisses).Add(1)
	r.metrics.Gauge(obs.MJobQueueDepth).Set(int64(len(r.queue)))
	j.log.Info("job submitted", "method", j.spec.EffectiveMethod(),
		"t", j.spec.T, "profile", so.Profile, "cache", "miss")
	return j, nil
}

// retryAfter estimates how long a rejected client should back off: the
// time for the current worker pool to drain one queue's worth of
// average folds, clamped to [1s, 2m].
func (r *Runner) retryAfter() time.Duration {
	avg := time.Duration(r.avgRun.Load())
	if avg <= 0 {
		avg = time.Second
	}
	est := avg * time.Duration(cap(r.queue)/r.workers+1)
	if est < time.Second {
		est = time.Second
	}
	if est > 2*time.Minute {
		est = 2 * time.Minute
	}
	return est
}

// journalSubmit appends the job's submit record. In strict mode an
// append failure is returned (and refuses the submission); otherwise
// it is logged and swallowed. No-op without a journal.
func (r *Runner) journalSubmit(j *Job, strict bool) error {
	jr := r.journal.Load()
	if jr == nil {
		return nil
	}
	spec := j.spec
	if err := jr.Append(OpSubmitted, j.id, &spec, ""); err != nil {
		if strict {
			return fmt.Errorf("job: refusing submission, journal append failed: %w", err)
		}
		j.log.Warn("journal append failed", "op", string(OpSubmitted), "err", err.Error())
		return nil
	}
	r.metrics.Counter(obs.MJournalRecords).Add(1)
	return nil
}

// journalTerminal appends the job's terminal record, best effort: a
// lost terminal record only means recovery replays a job whose result
// is already snapshotted, which resumes instantly. Called from
// finishWith — with r.mu sometimes held — so it must not touch r.mu.
func (r *Runner) journalTerminal(j *Job, state State, errText string) {
	jr := r.journal.Load()
	if jr == nil {
		return
	}
	var op JournalOp
	switch state {
	case StateDone:
		op = OpDone
	case StateFailed:
		op = OpFailed
	case StateCanceled:
		op = OpCanceled
	default:
		return
	}
	if err := jr.Append(op, j.id, nil, errText); err != nil {
		j.log.Warn("journal append failed", "op", string(op), "err", err.Error())
		return
	}
	r.metrics.Counter(obs.MJournalRecords).Add(1)
}

// journalStarted appends the job's started record, best effort.
func (r *Runner) journalStarted(j *Job) {
	jr := r.journal.Load()
	if jr == nil {
		return
	}
	if err := jr.Append(OpStarted, j.id, nil, ""); err != nil {
		j.log.Warn("journal append failed", "op", string(OpStarted), "err", err.Error())
		return
	}
	r.metrics.Counter(obs.MJournalRecords).Add(1)
}

// register indexes a new job. Called with r.mu held.
func (r *Runner) register(j *Job) {
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.metrics.Counter(obs.MJobSubmitted).Add(1)
}

// shortKey abbreviates a content hash for log correlation.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// Get returns a job by ID.
func (r *Runner) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (r *Runner) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, len(r.order))
	for i, id := range r.order {
		out[i] = r.jobs[id]
	}
	return out
}

// Cancel stops a job: queued jobs terminate immediately, running jobs
// get their context cancelled (and keep the checkpoints saved so
// far). Unknown IDs return false.
func (r *Runner) Cancel(id string) bool {
	j, ok := r.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == StateQueued
	enqueued := j.enqueued
	j.mu.Unlock()
	if queued {
		if j.finishWith(StateCanceled, "canceled before start", nil) && !enqueued {
			// Attached waiters never pass through a worker, so their
			// cancellation is accounted here; enqueued jobs are counted
			// when a worker dequeues them in a terminal state.
			r.metrics.Counter(obs.MJobCanceled).Add(1)
		}
		// A canceled leader hands its waiters to a promoted successor.
		r.settleFlight(j)
		return true
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// settleFlight resolves the dedup group led by leader once it is
// terminal: done waiters each decode a private copy of the leader's
// encoded result (bit-identical by construction), failed waiters
// inherit the failure, and a canceled leader promotes the first
// still-live waiter so attached work survives user cancellation. No-op
// unless leader actually leads a live flight, so it is safe to call on
// every terminal transition.
func (r *Runner) settleFlight(leader *Job) {
	r.mu.Lock()
	fl := r.inflight[leader.foldKey]
	if fl == nil || fl.leader != leader {
		r.mu.Unlock()
		return
	}
	delete(r.inflight, leader.foldKey)
	waiters := fl.waiters
	r.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	leader.mu.Lock()
	state, errText, method, res := leader.state, leader.err, leader.method, leader.result
	leader.mu.Unlock()
	switch state {
	case StateDone:
		data, encErr := encodeFinal(method, res)
		for _, w := range waiters {
			wm, wres := method, res
			if encErr == nil {
				if m2, r2, err := decodeFinal(data); err == nil {
					wm, wres = m2, r2
				}
			}
			if w.finishWith(StateDone, "", func() {
				w.method = wm
				w.result = wres
			}) {
				r.metrics.Counter(obs.MJobDone).Add(1)
				w.log.Info("job done", "method", wm, "cache", "attached", "leader", leader.id)
			}
		}
	case StateFailed:
		for _, w := range waiters {
			if w.finishWith(StateFailed, errText, nil) {
				r.metrics.Counter(obs.MJobFailed).Add(1)
				w.log.Error("job failed", "err", errText, "cache", "attached", "leader", leader.id)
			}
		}
	case StateCanceled:
		r.promote(leader, waiters)
	}
}

// promote re-enqueues the first still-live waiter as the new leader of
// its fold key after the old leader was canceled; remaining live
// waiters re-attach to it. When no promotion is possible — runner
// draining, queue full, no live waiter — the waiters cancel with the
// leader.
func (r *Runner) promote(leader *Job, waiters []*Job) {
	var live []*Job
	for _, w := range waiters {
		w.mu.Lock()
		if w.state == StateQueued {
			live = append(live, w)
		}
		w.mu.Unlock()
	}
	if len(live) == 0 {
		return
	}
	r.mu.Lock()
	if !r.closed && !r.draining {
		head := live[0]
		select {
		case r.queue <- head:
			head.mu.Lock()
			head.cacheStat = "miss" // it folds for real now
			head.enqueued = true
			head.mu.Unlock()
			r.inflight[head.foldKey] = &flight{leader: head, waiters: live[1:]}
			r.metrics.Gauge(obs.MJobQueueDepth).Set(int64(len(r.queue)))
			r.mu.Unlock()
			head.log.Info("job promoted to dedup leader", "was_leader", leader.id)
			return
		default:
			// Queue full: fall through and cancel the group.
		}
	}
	r.mu.Unlock()
	for _, w := range live {
		if w.finishWith(StateCanceled, "canceled: in-flight leader canceled", nil) {
			r.metrics.Counter(obs.MJobCanceled).Add(1)
			w.log.Info("job canceled", "cache", "attached", "leader", leader.id)
		}
	}
}

// Shutdown drains the runner: no new submissions, queued jobs are
// canceled (they have no progress to lose), and in-flight jobs get
// until ctx's deadline to finish. Past the deadline their contexts
// are cancelled — per-stage checkpoints already saved make them
// resumable — and the deadline error is returned after the workers
// exit. Shutdown is idempotent; later calls wait like the first.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	already := r.closed
	r.closed = true
	r.draining = true
	if !already {
		close(r.queue)
	}
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cut the in-flight jobs loose at their next
	// cancellation poll; their completed stages are checkpointed.
	for _, j := range r.Jobs() {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	<-done
	return fmt.Errorf("job: drain deadline: %w", ctx.Err())
}

// Recover replays a journal's records (as returned by OpenJournal):
// every job that was queued or running at crash time is resubmitted
// through the normal admission path — folding is deterministic, so the
// replay produces the bit-identical result, and jobs whose final
// snapshot survived in the store resume from it instantly. Afterwards
// the journal is compacted down to the still-live jobs and the runner
// leaves the recovering state (readiness goes true). Recover returns
// the number of jobs re-enqueued; it must be called once on a runner
// built with a Journal, even with nil records, to mark recovery done.
func (r *Runner) Recover(recs []JournalRecord) (int, error) {
	n := 0
	var firstErr error
	for _, rec := range PendingJobs(recs) {
		j, err := r.SubmitWith(*rec.Spec, SubmitOptions{recovered: true})
		if err != nil {
			// Keep replaying: one bad record (or a full queue) must not
			// strand the rest of the backlog.
			if firstErr == nil {
				firstErr = fmt.Errorf("job: recover %s: %w", rec.ID, err)
			}
			r.log.Warn("journal replay: job not recovered", "old_id", rec.ID, "err", err.Error())
			continue
		}
		n++
		r.metrics.Counter(obs.MJobRecovered).Add(1)
		j.log.Info("job recovered from journal", "old_id", rec.ID)
	}
	// The resubmissions above appended fresh records to the old
	// journal (safe: duplicate replays are idempotent), so the live
	// set is durable before the history is compacted away.
	r.compactJournal()
	r.mu.Lock()
	r.recovering = false
	r.mu.Unlock()
	return n, firstErr
}

// compactJournal rewrites the journal down to the currently-live jobs.
func (r *Runner) compactJournal() {
	jr := r.journal.Load()
	if jr == nil {
		return
	}
	r.mu.Lock()
	var live []JournalRecord
	for _, id := range r.order {
		j := r.jobs[id]
		j.mu.Lock()
		if j.state == StateQueued || j.state == StateRunning {
			spec := j.spec
			live = append(live, JournalRecord{Op: OpSubmitted, ID: j.id, Spec: &spec})
		}
		j.mu.Unlock()
	}
	r.mu.Unlock()
	if err := jr.Compact(live); err != nil {
		r.log.Warn("journal compaction failed", "err", err.Error())
	}
}

// Kill simulates a daemon crash for the chaos suite: the journal is
// detached first (so no orderly terminal records reach disk — exactly
// what a real crash leaves behind), then every context is cancelled
// and the workers drained. The runner is unusable afterwards; recovery
// happens by opening the journal again and building a fresh runner.
func (r *Runner) Kill() {
	if jr := r.journal.Swap(nil); jr != nil {
		jr.Close()
	}
	r.mu.Lock()
	already := r.closed
	r.closed = true
	r.draining = true
	if !already {
		close(r.queue)
	}
	r.mu.Unlock()
	for _, j := range r.Jobs() {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	r.wg.Wait()
}

// worker drains the queue. Each worker owns one arena bundle: BDD
// managers and SAT solvers recycle across its jobs with a hard reset
// in between, so steady-state folding stops paying arena allocation.
// Per-worker (not global) bundles keep reuse hot without cross-worker
// contention on the free lists.
func (r *Runner) worker() {
	defer r.wg.Done()
	pools := circuitfold.NewArenaPools()
	pools.Observe(r.metrics)
	for j := range r.queue {
		r.runJob(j, pools)
	}
}

// cpuProfileBusy serializes CPU profiling: the runtime allows one CPU
// profile per process, so concurrent jobs requesting one take turns —
// losers run unprofiled with a warning rather than queueing.
var cpuProfileBusy atomic.Bool

// runJob executes one job end to end.
func (r *Runner) runJob(j *Job, pools *circuitfold.ArenaPools) {
	// However the job ends, its dedup group (if it leads one) must be
	// resolved: waiters share a success, inherit a failure, or promote
	// past a cancellation. The job is terminal on every return path.
	defer r.settleFlight(j)
	r.mu.Lock()
	draining := r.draining
	r.mu.Unlock()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		r.metrics.Counter(obs.MJobCanceled).Add(1)
		return
	}
	if draining {
		j.mu.Unlock()
		j.finish(StateCanceled, "canceled: daemon shutting down")
		r.metrics.Counter(obs.MJobCanceled).Add(1)
		return
	}
	deadline := j.deadline // immutable after Submit
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		// Expired while queued: fail without burning a fold.
		j.mu.Unlock()
		j.finish(StateFailed, "deadline exceeded before start")
		r.metrics.Counter(obs.MJobDeadline).Add(1)
		r.metrics.Counter(obs.MJobFailed).Add(1)
		j.log.Warn("job missed deadline in queue")
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline.IsZero() {
		ctx, cancel = context.WithCancel(context.Background())
	} else {
		ctx, cancel = context.WithDeadline(context.Background(), deadline)
	}
	defer cancel()
	// Profile attribution: label this goroutine and hand the labeled
	// context to the fold so frame/cluster workers inherit (and
	// extend) the job identity in CPU profiles.
	lctx := pprof.WithLabels(ctx, pprof.Labels("job", j.id, "key", shortKey(j.key)))
	pprof.SetGoroutineLabels(lctx)
	defer pprof.SetGoroutineLabels(context.Background())
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	queueWait := j.started.Sub(j.created)
	j.mu.Unlock()
	r.metrics.Timing(obs.MJobQueueWait).Observe(queueWait)
	r.metrics.Gauge(obs.MJobQueueDepth).Set(int64(len(r.queue)))
	running := r.metrics.Gauge(obs.MJobRunning)
	running.Add(1)
	defer running.Add(-1)
	r.journalStarted(j)
	j.log.Info("job started", "queue_wait", queueWait.Seconds())

	ck := r.store.Checkpoint(j.key)

	// Opt-in pprof capture. CPU wraps the whole fold window; heap
	// snapshots after the fold (where the arena high-water mark is
	// still visible in allocation totals).
	var cpuBuf bytes.Buffer
	cpuProfiling := false
	if j.profile == "cpu" {
		if cpuProfileBusy.CompareAndSwap(false, true) {
			if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
				cpuProfileBusy.Store(false)
				j.log.Warn("cpu profile failed to start", "err", err.Error())
			} else {
				cpuProfiling = true
			}
		} else {
			j.log.Warn("cpu profile skipped: another job is profiling")
		}
	}
	finishProfile := func() {
		var data []byte
		switch {
		case cpuProfiling:
			pprof.StopCPUProfile()
			cpuProfileBusy.Store(false)
			cpuProfiling = false
			data = cpuBuf.Bytes()
		case j.profile == "heap":
			var heapBuf bytes.Buffer
			if err := pprof.Lookup("heap").WriteTo(&heapBuf, 0); err != nil {
				j.log.Warn("heap profile failed", "err", err.Error())
				return
			}
			data = heapBuf.Bytes()
		default:
			return
		}
		// Stored next to the job's checkpoints, under its content key.
		if err := ck.Save("profile."+j.profile, data); err != nil {
			j.log.Warn("profile not persisted", "err", err.Error())
		}
		j.mu.Lock()
		j.profData = data
		j.mu.Unlock()
		j.log.Info("profile captured", "kind", j.profile, "bytes", len(data))
	}
	defer finishProfile()

	// Job-level resume: an identical spec that already completed (in
	// this process or a previous one) is served from its final
	// snapshot. A corrupt snapshot falls through to a recompute.
	if data, ok := ck.Load(finalStage); ok {
		if method, res, err := decodeFinal(data); err == nil {
			// Prime the result cache: the next identical submission is
			// served at the submit call, without reaching a worker.
			r.cache.Put(j.foldKey, data)
			j.mu.Lock()
			j.method = method
			j.result = res
			j.fromSnap = true
			j.mu.Unlock()
			j.finish(StateDone, "")
			r.metrics.Counter(obs.MJobDone).Add(1)
			j.log.Info("job done", "method", method, "resumed_result", true)
			return
		}
	}

	opt := j.spec.Options()
	opt.Context = lctx
	opt.Pools = pools
	// Spans fan out to the live SSE stream and the flight recorder.
	opt.Observer = &circuitfold.Observer{
		Tracer:  circuitfold.NewTracer(obs.MultiSink(j.events, j.flight)),
		Metrics: j.metrics,
	}
	opt.Checkpoint = ck

	var (
		res    *circuitfold.Result
		err    error
		method = j.spec.EffectiveMethod()
	)
	switch method {
	case MethodFunctional:
		res, err = circuitfold.Functional(j.g, j.spec.T, opt)
	case MethodStructural:
		res, err = circuitfold.Structural(j.g, j.spec.T, opt)
	case MethodHybrid:
		res, err = circuitfold.Hybrid(j.g, j.spec.T, opt)
	case MethodSimple:
		res, err = circuitfold.Simple(j.g, j.spec.T)
	case MethodResilient:
		var rr *circuitfold.ResilientResult
		rr, err = circuitfold.RunResilient(j.g, j.spec.T, circuitfold.ResilientOptions{
			Options:         opt,
			SelfCheckRounds: j.spec.SelfCheckRounds,
		})
		if err == nil {
			res = rr.Result
			method = string(rr.Method)
		}
	default:
		err = fmt.Errorf("job: unknown method %q", method)
	}
	runDur := time.Since(j.started)
	r.metrics.Timing(obs.MJobRunSeconds).Observe(runDur)
	// EWMA of fold wall time (alpha 1/4) feeds the Retry-After estimate
	// on queue-full rejections.
	if old := r.avgRun.Load(); old == 0 {
		r.avgRun.Store(int64(runDur))
	} else {
		r.avgRun.Store(old - old/4 + int64(runDur)/4)
	}
	if err != nil {
		if !deadline.IsZero() && ctx.Err() == context.DeadlineExceeded {
			// The pipeline reports a deadline expiry as cancellation;
			// for the client the difference matters.
			j.finish(StateFailed, "deadline exceeded: "+err.Error())
			r.metrics.Counter(obs.MJobDeadline).Add(1)
			r.metrics.Counter(obs.MJobFailed).Add(1)
			j.log.Warn("job missed deadline", "err", err.Error(), "run_seconds", runDur.Seconds())
			r.dumpFlight(j, ck, "deadline_exceeded")
		} else if errors.Is(err, circuitfold.ErrCanceled) {
			j.finish(StateCanceled, err.Error())
			r.metrics.Counter(obs.MJobCanceled).Add(1)
			j.log.Info("job canceled", "err", err.Error(), "run_seconds", runDur.Seconds())
		} else {
			j.finish(StateFailed, err.Error())
			r.metrics.Counter(obs.MJobFailed).Add(1)
			j.log.Error("job failed", "err", err.Error(), "method", method,
				"run_seconds", runDur.Seconds())
			r.dumpFlight(j, ck, "failed")
		}
		return
	}

	var resumed []string
	if res.Report != nil {
		for _, ss := range res.Report.Stages {
			if ss.Resumed {
				resumed = append(resumed, ss.Name)
				continue
			}
			// Roll per-stage latency up into the process registry so
			// /metrics carries stage.<name>.seconds across all jobs
			// (the per-job registry has its own copy from pipeline).
			r.metrics.Timing(obs.StageSeconds(ss.Name)).Observe(ss.Duration)
		}
	}
	if data, encErr := encodeFinal(method, res); encErr == nil {
		_ = ck.Save(finalStage, data) // best effort: resume is an optimization
		r.cache.Put(j.foldKey, data)
	}
	j.mu.Lock()
	j.method = method
	j.result = res
	j.resumed = resumed
	j.mu.Unlock()
	j.finish(StateDone, "")
	r.metrics.Counter(obs.MJobDone).Add(1)
	j.log.Info("job done", "method", method, "run_seconds", runDur.Seconds(),
		"states", res.States, "gates", res.Gates())
	// A fold that succeeded the hard way still dumps its black box:
	// recovered panics and degradation-ladder descents are incidents
	// an operator wants the context for, even with a green result.
	if j.metrics.Counter(obs.MFoldPanics).Value() > 0 {
		r.dumpFlight(j, ck, "panic_recovered")
	} else if j.metrics.Counter(obs.MFoldFallbacks).Value() > 0 {
		r.dumpFlight(j, ck, "degraded")
	}
}

// dumpFlight assembles and stores the job's flight-recorder artifact.
// Best effort end to end: a failed persist still leaves the artifact
// on the job for the HTTP API.
func (r *Runner) dumpFlight(j *Job, ck pipeline.Checkpoint, reason string) {
	st := j.Status()
	meta := map[string]any{
		"job_id": j.id,
		"key":    j.key,
		"state":  string(st.State),
		"reason": reason,
	}
	if st.Error != "" {
		meta["error"] = st.Error
	}
	if st.Method != "" {
		meta["method"] = st.Method
	}
	if st.Cache != "" {
		meta["cache"] = st.Cache
	}
	data, err := json.Marshal(j.flight.Record(meta, j.metrics))
	if err != nil {
		j.log.Warn("flight record not encodable", "err", err.Error())
		return
	}
	j.mu.Lock()
	j.flightRec = data
	j.mu.Unlock()
	if err := ck.Save("flightrec", data); err != nil {
		j.log.Warn("flight record not persisted", "err", err.Error())
	}
	r.metrics.Counter(obs.MFlightDumps).Add(1)
	j.log.Warn("flight record dumped", "reason", reason, "bytes", len(data))
}

// finalJSON is the final-snapshot envelope.
type finalJSON struct {
	V      int             `json:"v"`
	Method string          `json:"method"`
	Result json.RawMessage `json:"result"`
}

// encodeFinal serializes a finished fold with the method that won.
func encodeFinal(method string, res *circuitfold.Result) ([]byte, error) {
	data, err := core.EncodeResult(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(finalJSON{V: core.ResultCodecVersion, Method: method, Result: data})
}

// decodeFinal is the inverse of encodeFinal.
func decodeFinal(data []byte) (string, *circuitfold.Result, error) {
	var f finalJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return "", nil, err
	}
	if f.V != core.ResultCodecVersion {
		return "", nil, fmt.Errorf("job: final snapshot version %d, want %d", f.V, core.ResultCodecVersion)
	}
	res, err := core.DecodeResult(f.Result)
	if err != nil {
		return "", nil, err
	}
	return f.Method, res, nil
}
