package job

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// ErrStore is the root of every durable-store fault: failed writes,
// failed fsyncs, failed renames. Callers that need to distinguish
// storage trouble from fold trouble test errors.Is(err, ErrStore).
var ErrStore = errors.New("job: store fault")

// Store is a checkpoint store partitioned by job key (a Spec.Hash):
// each key names an independent pipeline.Checkpoint namespace holding
// that job's per-stage snapshots. Implementations must be safe for
// concurrent use across keys and within one key.
type Store interface {
	// Checkpoint returns the namespace for key, creating it on first
	// use.
	Checkpoint(key string) pipeline.Checkpoint
	// Delete drops every snapshot saved under key.
	Delete(key string) error
}

// MemStore is an in-process Store: fast, and gone with the process.
// Suitable for tests and for daemons that only want intra-lifetime
// resume (e.g. resubmission of an identical spec).
type MemStore struct {
	mu sync.Mutex
	m  map[string]*memCheckpoint
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*memCheckpoint)} }

// Checkpoint returns the in-memory namespace for key.
func (s *MemStore) Checkpoint(key string) pipeline.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, ok := s.m[key]
	if !ok {
		ck = &memCheckpoint{m: make(map[string][]byte)}
		s.m[key] = ck
	}
	return ck
}

// Delete drops the namespace for key.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// memCheckpoint is one key's snapshot map.
type memCheckpoint struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (c *memCheckpoint) Load(stage string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[stage]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

func (c *memCheckpoint) Save(stage string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[stage] = append([]byte(nil), data...)
	return nil
}

// storeMagic heads every FileStore blob, followed by a 4-byte
// little-endian CRC32-IEEE of the payload. The frame turns silent
// media corruption into a detected miss: a blob whose checksum does
// not match is quarantined (renamed aside with a .corrupt suffix) and
// the caller re-folds, so corrupt bytes are never returned.
const storeMagic = "CFS1"

// corruptSuffix marks a quarantined blob. Quarantined files are left
// on disk for forensics and ignored by Load.
const corruptSuffix = ".corrupt"

// FileStore is a Store on a directory: one subdirectory per job key,
// one file per stage. Saves are atomic and durable — checksummed frame
// into a temp file, fsync, rename, fsync of the parent directory — so
// a crash or power loss mid-save never leaves a truncated or torn
// snapshot: at worst the stage is absent and re-runs. Loads verify the
// checksum and quarantine corrupt blobs instead of returning them.
// This is the durable store behind a daemon that must survive
// restarts.
type FileStore struct {
	dir     string
	corrupt *obs.Counter
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: checkpoint dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// Observe routes quarantine events to a corrupt-blob counter
// (obs.MStoreCorrupt). Call before the store sees traffic.
func (s *FileStore) Observe(corrupt *obs.Counter) { s.corrupt = corrupt }

// Checkpoint returns the file-backed namespace for key.
func (s *FileStore) Checkpoint(key string) pipeline.Checkpoint {
	return &fileCheckpoint{dir: filepath.Join(s.dir, encodeName(key)), s: s}
}

// Delete removes key's directory and everything under it.
func (s *FileStore) Delete(key string) error {
	return os.RemoveAll(filepath.Join(s.dir, encodeName(key)))
}

// fileCheckpoint stores each stage snapshot as one file. Stage names
// may contain separators (PrefixCheckpoint namespacing produces
// "functional/schedule"), so they are path-escaped into flat names.
type fileCheckpoint struct {
	dir string
	s   *FileStore
}

func (c *fileCheckpoint) Load(stage string) ([]byte, bool) {
	path := filepath.Join(c.dir, encodeName(stage))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if fault.Point(fault.PointStoreRead) != nil && len(data) > 8 {
		// Injected media rot: flip one payload byte in the bytes we
		// just read. The checksum below must catch it.
		data[8+(len(data)-8)/2] ^= 0x20
	}
	if len(data) < 8 || string(data[:4]) != storeMagic {
		c.quarantine(path)
		return nil, false
	}
	payload := data[8:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		c.quarantine(path)
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt blob aside so the next Save starts clean,
// and counts it. The fold re-runs from the previous stage (or from
// scratch), so corruption heals transparently.
func (c *fileCheckpoint) quarantine(path string) {
	os.Remove(path + corruptSuffix)
	if os.Rename(path, path+corruptSuffix) == nil && c.s != nil {
		c.s.corrupt.Add(1)
	}
}

func (c *fileCheckpoint) Save(stage string, data []byte) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("%w: mkdir %s: %v", ErrStore, c.dir, err)
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("%w: create temp: %v", ErrStore, err)
	}
	tmp := f.Name()
	fail := func(op string, cause error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("%w: %s %s: %v", ErrStore, op, stage, cause)
	}
	var hdr [8]byte
	copy(hdr[:4], storeMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(data))
	if err := fault.Point(fault.PointStoreWrite); err != nil {
		// Simulated short write: part of the frame lands, then the
		// write fails. The temp file is discarded either way.
		f.Write(hdr[:])
		f.Write(data[:len(data)/2])
		return fail("write", err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		return fail("write", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	if err := fault.Point(fault.PointStoreFsync); err != nil {
		return fail("fsync", err)
	}
	if err := f.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: close %s: %v", ErrStore, stage, err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, encodeName(stage))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("%w: rename %s: %v", ErrStore, stage, err)
	}
	if err := syncDir(c.dir); err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	return nil
}

// encodeName flattens an arbitrary stage or key name into one safe
// path component ("/" becomes %2F).
func encodeName(name string) string { return url.PathEscape(name) }
