package job

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"circuitfold/internal/pipeline"
)

// Store is a checkpoint store partitioned by job key (a Spec.Hash):
// each key names an independent pipeline.Checkpoint namespace holding
// that job's per-stage snapshots. Implementations must be safe for
// concurrent use across keys and within one key.
type Store interface {
	// Checkpoint returns the namespace for key, creating it on first
	// use.
	Checkpoint(key string) pipeline.Checkpoint
	// Delete drops every snapshot saved under key.
	Delete(key string) error
}

// MemStore is an in-process Store: fast, and gone with the process.
// Suitable for tests and for daemons that only want intra-lifetime
// resume (e.g. resubmission of an identical spec).
type MemStore struct {
	mu sync.Mutex
	m  map[string]*memCheckpoint
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*memCheckpoint)} }

// Checkpoint returns the in-memory namespace for key.
func (s *MemStore) Checkpoint(key string) pipeline.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, ok := s.m[key]
	if !ok {
		ck = &memCheckpoint{m: make(map[string][]byte)}
		s.m[key] = ck
	}
	return ck
}

// Delete drops the namespace for key.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// memCheckpoint is one key's snapshot map.
type memCheckpoint struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (c *memCheckpoint) Load(stage string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[stage]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

func (c *memCheckpoint) Save(stage string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[stage] = append([]byte(nil), data...)
	return nil
}

// FileStore is a Store on a directory: one subdirectory per job key,
// one file per stage, written atomically (temp file + rename) so a
// crash mid-save never leaves a truncated snapshot — at worst the
// stage is absent and re-runs. This is the durable store behind a
// daemon that must survive restarts.
type FileStore struct {
	dir string
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: checkpoint dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// Checkpoint returns the file-backed namespace for key.
func (s *FileStore) Checkpoint(key string) pipeline.Checkpoint {
	return &fileCheckpoint{dir: filepath.Join(s.dir, encodeName(key))}
}

// Delete removes key's directory and everything under it.
func (s *FileStore) Delete(key string) error {
	return os.RemoveAll(filepath.Join(s.dir, encodeName(key)))
}

// fileCheckpoint stores each stage snapshot as one file. Stage names
// may contain separators (PrefixCheckpoint namespacing produces
// "functional/schedule"), so they are path-escaped into flat names.
type fileCheckpoint struct {
	dir string
}

func (c *fileCheckpoint) Load(stage string) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, encodeName(stage)))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (c *fileCheckpoint) Save(stage string, data []byte) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, encodeName(stage))); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// encodeName flattens an arbitrary stage or key name into one safe
// path component ("/" becomes %2F).
func encodeName(name string) string { return url.PathEscape(name) }
