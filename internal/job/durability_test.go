package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"circuitfold/internal/fault"
	"circuitfold/internal/obs"
	"circuitfold/internal/pipeline"
)

// TestRunnerJournalRecovery is the durability acceptance test: a
// runner with two acknowledged jobs — one killed mid-fold right after
// its tff stage checkpointed, one still queued — crashes (Kill: no
// orderly terminal records reach the journal). A fresh runner over the
// same directory replays the journal, re-enqueues both jobs, and both
// finish with results bit-identical to uninterrupted folds.
func TestRunnerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	jr, recs := openTestJournal(t, filepath.Join(dir, "journal.wal"))
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	fs, err := NewFileStore(filepath.Join(dir, "ck"))
	if err != nil {
		t.Fatal(err)
	}
	ks := &killStore{Store: fs}
	r1 := NewRunnerWith(RunnerOptions{Workers: 1, Store: ks, Journal: jr})
	if n, err := r1.Recover(nil); n != 0 || err != nil {
		t.Fatalf("empty recover = %d, %v", n, err)
	}

	// The crash point: the moment the running job's tff stage hits the
	// store, detach the journal (Kill's first step) before letting the
	// fold proceed — exactly the state a real crash leaves behind.
	var once sync.Once
	killStarted := make(chan struct{})
	ks.onSave = func(stage string) {
		if stage == pipeline.StageTFF {
			once.Do(func() {
				go r1.Kill()
				for r1.journal.Load() != nil {
					time.Sleep(time.Millisecond)
				}
				close(killStarted)
			})
		}
	}

	specA := smokeSpec()
	specB := smokeSpec()
	specB.T = 8
	if _, err := r1.Submit(specA); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Submit(specB); err != nil { // queued behind the single worker
		t.Fatal(err)
	}
	<-killStarted
	r1.Kill() // joins the in-flight Kill; idempotent

	// The journal survived the crash with both submissions and no
	// terminal records.
	jr2, recs := openTestJournal(t, filepath.Join(dir, "journal.wal"))
	pending := PendingJobs(recs)
	if len(pending) != 2 {
		t.Fatalf("pending after crash = %d jobs (%d records), want 2", len(pending), len(recs))
	}

	// Daemon restart: fresh runner, same store, journal replay.
	fs2, err := NewFileStore(filepath.Join(dir, "ck"))
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunnerWith(RunnerOptions{Workers: 2, Store: fs2, Journal: jr2})
	defer r2.Shutdown(context.Background())
	if ready, reason := r2.Ready(); ready || !strings.Contains(reason, "recovering") {
		t.Fatalf("pre-recovery readiness = %v %q, want recovering", ready, reason)
	}
	n, err := r2.Recover(recs)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 2 {
		t.Fatalf("recovered %d jobs, want 2", n)
	}
	if ready, reason := r2.Ready(); !ready {
		t.Fatalf("post-recovery readiness = false %q", reason)
	}
	if got := r2.Metrics().Counter(obs.MJobRecovered).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MJobRecovered, got)
	}

	recovered := map[int][]byte{} // spec.T -> encoded result
	for _, j := range r2.Jobs() {
		wait(t, j)
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("recovered job %s = %+v", j.ID(), st)
		}
		if !st.Recovered {
			t.Errorf("job %s not marked recovered", j.ID())
		}
		recovered[j.Spec().T] = encodeJob(t, j)
	}

	// Bit-identity against uninterrupted folds of the same specs.
	clean := NewRunner(1, nil)
	defer clean.Shutdown(context.Background())
	for _, spec := range []Spec{specA, specB} {
		j, err := clean.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		if !bytes.Equal(recovered[spec.T], encodeJob(t, j)) {
			t.Errorf("T=%d: recovered result differs from uninterrupted fold", spec.T)
		}
	}
}

// TestServeReadyzRecovering proves /readyz answers 503 with a JSON
// reason while the startup journal replay is in progress, and flips to
// 200 once Recover returns.
func TestServeReadyzRecovering(t *testing.T) {
	jr, _ := openTestJournal(t, filepath.Join(t.TempDir(), "journal.wal"))
	r := NewRunnerWith(RunnerOptions{Workers: 1, Journal: jr})
	defer r.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	var body map[string]string
	if code := getJSON(t, srv.URL+"/readyz", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("recovering /readyz = %d, want 503", code)
	}
	if body["status"] != "unready" || !strings.Contains(body["reason"], "recovering") {
		t.Fatalf("recovering /readyz body = %v", body)
	}
	if _, err := r.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/readyz", &body); code != http.StatusOK {
		t.Fatalf("post-recovery /readyz = %d, want 200", code)
	}
}

// TestFileStoreChecksumQuarantine proves a blob corrupted on disk is
// detected by its content checksum, quarantined aside (never returned,
// never silently deleted), counted, and healed by the next Save.
func TestFileStoreChecksumQuarantine(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fs.Observe(reg.Counter(obs.MStoreCorrupt))
	ck := fs.Checkpoint("k")
	payload := []byte("folded circuit bytes")
	if err := ck.Save("tff", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := ck.Load("tff"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("clean load = %q, %v", got, ok)
	}

	// Flip one payload byte on disk, after the 8-byte frame header.
	path := filepath.Join(dir, "k", "tff")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+len(payload)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := ck.Load("tff"); ok {
		t.Fatalf("corrupt blob returned: %q", got)
	}
	if got := reg.Counter(obs.MStoreCorrupt).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MStoreCorrupt, got)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still at original path (err=%v)", err)
	}

	// Heal: re-save and the key serves again.
	if err := ck.Save("tff", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := ck.Load("tff"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("healed load = %q, %v", got, ok)
	}
}

// TestFileStoreFaultPoints drives the three disk-fault injection
// points: a short write and a failed fsync surface as typed store
// errors without publishing a partial blob; a read-side bit flip is
// caught by the checksum and quarantined.
func TestFileStoreFaultPoints(t *testing.T) {
	newStore := func(t *testing.T) (*FileStore, pipeline.Checkpoint, *obs.Counter, string) {
		t.Helper()
		dir := t.TempDir()
		fs, err := NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		corrupt := reg.Counter(obs.MStoreCorrupt)
		fs.Observe(corrupt)
		return fs, fs.Checkpoint("k"), corrupt, dir
	}

	t.Run("short write", func(t *testing.T) {
		_, ck, _, dir := newStore(t)
		fault.Activate(fault.NewPlan(map[string]fault.Rule{
			fault.PointStoreWrite: {},
		}))
		t.Cleanup(fault.Deactivate)
		err := ck.Save("tff", []byte("payload"))
		if !errors.Is(err, ErrStore) {
			t.Fatalf("short-write Save error = %v, want ErrStore", err)
		}
		fault.Deactivate()
		// The torn temp file was never renamed into place.
		if _, ok := ck.Load("tff"); ok {
			t.Fatal("partial blob published after short write")
		}
		ents, _ := os.ReadDir(filepath.Join(dir, "k"))
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp") {
				t.Errorf("temp file left behind: %s", e.Name())
			}
		}
	})

	t.Run("fsync error", func(t *testing.T) {
		_, ck, _, _ := newStore(t)
		fault.Activate(fault.NewPlan(map[string]fault.Rule{
			fault.PointStoreFsync: {},
		}))
		t.Cleanup(fault.Deactivate)
		err := ck.Save("tff", []byte("payload"))
		if !errors.Is(err, ErrStore) {
			t.Fatalf("fsync Save error = %v, want ErrStore", err)
		}
		fault.Deactivate()
		if _, ok := ck.Load("tff"); ok {
			t.Fatal("unsynced blob published after fsync failure")
		}
	})

	t.Run("read bit flip", func(t *testing.T) {
		_, ck, corrupt, dir := newStore(t)
		payload := []byte("folded circuit bytes")
		if err := ck.Save("tff", payload); err != nil {
			t.Fatal(err)
		}
		fault.Activate(fault.NewPlan(map[string]fault.Rule{
			fault.PointStoreRead: {},
		}))
		t.Cleanup(fault.Deactivate)
		if got, ok := ck.Load("tff"); ok {
			t.Fatalf("bit-flipped blob returned: %q", got)
		}
		fault.Deactivate()
		if got := corrupt.Value(); got != 1 {
			t.Errorf("%s = %d, want 1", obs.MStoreCorrupt, got)
		}
		if _, err := os.Stat(filepath.Join(dir, "k", "tff"+corruptSuffix)); err != nil {
			t.Errorf("quarantine file missing: %v", err)
		}
	})
}

// TestRunnerStoreCorruptionHeals is the corruption acceptance test at
// the runner level: a finished job's snapshot is corrupted on disk; a
// fresh runner over the same store detects it on resubmission (instead
// of serving garbage), quarantines it, re-folds, and produces the
// bit-identical result.
func TestRunnerStoreCorruptionHeals(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(1, fs)
	spec := smokeSpec()
	j1, err := r1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j1)
	want := encodeJob(t, j1)
	r1.Shutdown(context.Background())

	// Corrupt the final snapshot on disk.
	path := filepath.Join(dir, j1.Key(), finalStage)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8+len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunnerWith(RunnerOptions{Workers: 1, Store: fs2})
	defer r2.Shutdown(context.Background())
	j2, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j2)
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("re-fold over corrupt snapshot = %+v", st)
	}
	if !bytes.Equal(want, encodeJob(t, j2)) {
		t.Error("healed result differs from the original fold")
	}
	if got := r2.Metrics().Counter(obs.MStoreCorrupt).Value(); got < 1 {
		t.Errorf("%s = %d, want >= 1", obs.MStoreCorrupt, got)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
}

// TestServeOverload429 is the admission-control acceptance test: with
// the single worker wedged and the bounded queue full, the next
// submission fails fast with 429, a Retry-After estimate, and a
// rejection metric — and /readyz reports overloaded so balancers back
// off. Once the wedge clears, every accepted job still completes.
func TestServeOverload429(t *testing.T) {
	gate := make(chan struct{})
	r := NewRunnerWith(RunnerOptions{
		Workers:    1,
		QueueDepth: 2,
		Store:      &gateStore{Store: NewMemStore(), gate: gate},
	})
	defer r.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	// Distinct wall budgets make distinct fold keys: no dedup attach.
	submit := func(i int) map[string]any {
		return map[string]any{
			"generator": "64-adder", "t": 16, "method": MethodFunctional,
			"wall_ms": 600_000 + i,
		}
	}
	var accepted []string
	for i := 0; i < 3; i++ {
		var st Status
		if code := postJSON(t, srv.URL+"/v1/jobs", submit(i), &st); code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, code)
		}
		accepted = append(accepted, st.ID)
		if i == 0 {
			j, _ := r.Get(st.ID)
			waitRunning(t, j) // wedged in the gate; the queue is now free for 1 and 2
		}
	}

	// Queue full: fast-fail with backpressure hints.
	body, err := json.Marshal(submit(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rej struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit = %d (%s), want 429", resp.StatusCode, rej.Error)
	}
	if resp.Header.Get("Retry-After") == "" || rej.RetryAfter < 1 {
		t.Errorf("429 missing backpressure hints: header=%q json=%d",
			resp.Header.Get("Retry-After"), rej.RetryAfter)
	}
	if !strings.Contains(rej.Error, "queue full") {
		t.Errorf("429 error = %q", rej.Error)
	}
	if got := r.Metrics().Counter(obs.MJobRejected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MJobRejected, got)
	}
	var ready map[string]string
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /readyz = %d, want 503", code)
	}
	if !strings.Contains(ready["reason"], "overloaded") {
		t.Errorf("overloaded /readyz reason = %q", ready["reason"])
	}

	// Clear the wedge: every acknowledged job completes.
	close(gate)
	for _, id := range accepted {
		j, ok := r.Get(id)
		if !ok {
			t.Fatalf("accepted job %s vanished", id)
		}
		wait(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Errorf("accepted job %s = %+v", id, st)
		}
	}
}

// TestJobDeadline covers both deadline paths: a job whose deadline
// expires while queued fails without burning a fold, and a job whose
// deadline expires mid-fold is cut loose at the next cancellation poll
// with its completed stages checkpointed.
func TestJobDeadline(t *testing.T) {
	t.Run("expired in queue", func(t *testing.T) {
		gate := make(chan struct{})
		r := NewRunnerWith(RunnerOptions{
			Workers: 1,
			Store:   &gateStore{Store: NewMemStore(), gate: gate},
		})
		defer r.Shutdown(context.Background())
		leader, err := r.Submit(smokeSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitRunning(t, leader)
		spec := smokeSpec()
		spec.T = 8
		j, err := r.SubmitWith(spec, SubmitOptions{Deadline: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.DeadlineAt == "" {
			t.Error("status missing deadline_at")
		}
		close(gate)
		wait(t, j)
		st := j.Status()
		if st.State != StateFailed || !strings.Contains(st.Error, "deadline exceeded before start") {
			t.Fatalf("queued-expiry status = %+v", st)
		}
		if got := r.Metrics().Counter(obs.MJobDeadline).Value(); got != 1 {
			t.Errorf("%s = %d, want 1", obs.MJobDeadline, got)
		}
		wait(t, leader)
	})

	t.Run("expired mid-fold", func(t *testing.T) {
		r := NewRunner(1, nil)
		defer r.Shutdown(context.Background())
		// Big enough that 30ms cannot finish it; the engine polls its
		// context between BDD operations.
		spec := Spec{Generator: "b14_C", T: 8, Method: MethodFunctional, Reorder: true, Minimize: true}
		j, err := r.SubmitWith(spec, SubmitOptions{Deadline: 30 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		st := j.Status()
		if st.State == StateDone {
			t.Skip("b14_C fold finished inside the deadline window on this machine")
		}
		if st.State != StateFailed || !strings.Contains(st.Error, "deadline exceeded") {
			t.Fatalf("mid-fold expiry status = %+v", st)
		}
		if got := r.Metrics().Counter(obs.MJobDeadline).Value(); got != 1 {
			t.Errorf("%s = %d, want 1", obs.MJobDeadline, got)
		}
	})
}

// TestServeDeadlineParam checks the HTTP surface of per-job deadlines:
// a malformed or non-positive ?deadline= is a 400 before any work is
// admitted.
func TestServeDeadlineParam(t *testing.T) {
	r := NewRunner(1, nil)
	defer r.Shutdown(context.Background())
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	spec := map[string]any{"generator": "64-adder", "t": 16, "method": MethodFunctional}
	for _, q := range []string{"banana", "-5s", "0s"} {
		var body map[string]any
		code := postJSON(t, srv.URL+"/v1/jobs?deadline="+q, spec, &body)
		if code != http.StatusBadRequest {
			t.Errorf("deadline=%q -> %d (%v), want 400", q, code, body)
		}
	}
	var st Status
	if code := postJSON(t, srv.URL+"/v1/jobs?deadline=5m", spec, &st); code != http.StatusAccepted {
		t.Fatalf("deadline=5m -> %d, want 202", code)
	}
	if st.DeadlineAt == "" {
		t.Error("accepted job missing deadline_at")
	}
	j, _ := r.Get(st.ID)
	wait(t, j)
	if s := j.Status(); s.State != StateDone {
		t.Fatalf("deadlined job = %+v", s)
	}
}
