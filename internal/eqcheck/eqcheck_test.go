package eqcheck

import (
	"math/rand"
	"testing"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/sat"
)

func randomGraph(rng *rand.Rand, ands, pis, pos int) *aig.Graph {
	g := aig.New()
	lits := []aig.Lit{aig.Const1}
	for i := 0; i < pis; i++ {
		lits = append(lits, g.PI(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(ands)].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

func TestSimEquivalentDetectsEqualAndDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 8, 4)
	h := g.Cleanup()
	if !SimEquivalent(g, h, 16, 7) {
		t.Fatal("cleanup copy should be equivalent")
	}
	h.SetPO(0, h.PO(0).Not())
	if SimEquivalent(g, h, 16, 7) {
		t.Fatal("negated output should be caught")
	}
	// Interface mismatch is inequivalent by definition.
	k := randomGraph(rng, 10, 7, 4)
	if SimEquivalent(g, k, 4, 7) {
		t.Fatal("different interfaces should not be equivalent")
	}
}

func TestSATEquivalentProves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 40, 7, 3)
		h := g.Balance()
		if got := SATEquivalent(g, h, 0); got != sat.Unsat {
			t.Fatalf("trial %d: balance should be equivalence-preserving, got %v", trial, got)
		}
		h2 := g.Cleanup()
		h2.SetPO(1, h2.PO(1).Not())
		if got := SATEquivalent(g, h2, 0); got != sat.Sat {
			t.Fatalf("trial %d: mutation should be caught, got %v", trial, got)
		}
	}
}

func TestSATEquivalentConstantDifference(t *testing.T) {
	g := aig.New()
	a := g.PI("a")
	g.AddPO(g.And(a, a.Not()), "z") // constant 0
	h := aig.New()
	b := h.PI("a")
	h.AddPO(h.Or(b, b.Not()), "z") // constant 1
	if got := SATEquivalent(g, h, 0); got != sat.Sat {
		t.Fatalf("constant 0 vs 1 should differ, got %v", got)
	}
	h2 := aig.New()
	c := h2.PI("a")
	h2.AddPO(h2.And(c, c.Not()), "z")
	if got := SATEquivalent(g, h2, 0); got != sat.Unsat {
		t.Fatalf("constant 0 vs 0 should match, got %v", got)
	}
}

func TestVerifyFoldCatchesCorruption(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 60, 6, 4)
	r, err := core.StructuralFold(g, 2, core.StructuralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFold(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt one output pin of the folded circuit.
	r.Seq.G.SetPO(0, r.Seq.G.PO(0).Not())
	if VerifyFold(g, r, 0, 1) == nil {
		t.Fatal("corrupted fold should fail verification")
	}
}

func TestVerifyFoldByUnrollingCatchesCorruption(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(4)), 60, 6, 4)
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFoldByUnrolling(g, r, 0, 1); err != nil {
		t.Fatal(err)
	}
	r.Seq.G.SetPO(0, r.Seq.G.PO(0).Not())
	if VerifyFoldByUnrolling(g, r, 0, 1) == nil {
		t.Fatal("corrupted fold should fail unrolling verification")
	}
}

func TestVerifyFoldRandomPathOnWideCircuit(t *testing.T) {
	// Wide circuits exercise the random-vector path (n > 12).
	g := randomGraph(rand.New(rand.NewSource(5)), 150, 30, 8)
	r, err := core.StructuralFold(g, 3, core.StructuralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFold(g, r, 100, 11); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFoldByUnrolling(g, r, 50, 11); err != nil {
		t.Fatal(err)
	}
}

func TestSeqEquivalentBounded(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(6)), 50, 6, 3)
	r1, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.Binary})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.StructuralFold(g, 3, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	// Binary- and one-hot-counter folds of the same circuit behave the
	// same for T frames.
	if got := SeqEquivalentBounded(r1.Seq, r2.Seq, 3, 0); got != sat.Unsat {
		t.Fatalf("counter encodings should be equivalent within the bound, got %v", got)
	}
	// Corrupt one: detectable.
	r2.Seq.G.SetPO(0, r2.Seq.G.PO(0).Not())
	if got := SeqEquivalentBounded(r1.Seq, r2.Seq, 3, 0); got != sat.Sat {
		t.Fatalf("corruption should be caught, got %v", got)
	}
}

func TestVerifyFoldWordsMatchesScalar(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 120, 20, 6)
	r, err := core.StructuralFold(g, 4, core.StructuralOptions{Counter: core.OneHot})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFoldWords(g, r, 16, 3); err != nil {
		t.Fatal(err)
	}
	// Corruption is caught.
	r.Seq.G.SetPO(0, r.Seq.G.PO(0).Not())
	if VerifyFoldWords(g, r, 16, 3) == nil {
		t.Fatal("corrupted fold should fail word verification")
	}
}

func TestSATEquivalentOptWithPreSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sweep := aig.DefaultSweepOptions()
	sweep.Workers = 2
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 60, 8, 3)
		h := g.Balance()
		opt := CECOptions{Sweep: &sweep}
		if got := SATEquivalentOpt(g, h, opt); got != sat.Unsat {
			t.Fatalf("trial %d: pre-swept CEC should prove equivalence, got %v", trial, got)
		}
		h2 := g.Cleanup()
		h2.SetPO(0, h2.PO(0).Not())
		if got := SATEquivalentOpt(g, h2, opt); got != sat.Sat {
			t.Fatalf("trial %d: pre-swept CEC should catch mutation, got %v", trial, got)
		}
	}
}
