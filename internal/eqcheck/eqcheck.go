// Package eqcheck verifies circuit equivalence: random-simulation and SAT
// based combinational equivalence checking (CEC), and the fold-specific
// check of the paper's problem statement — that unrolling a folded
// circuit by T frames reproduces the original combinational circuit under
// the pin schedule.
package eqcheck

import (
	"fmt"
	"math/rand"

	"circuitfold/internal/aig"
	"circuitfold/internal/core"
	"circuitfold/internal/sat"
	"circuitfold/internal/seq"
)

// SimEquivalent checks input-output equivalence of two combinational
// circuits with the same interface using `rounds` rounds of 64-way random
// simulation. It can only disprove equivalence.
func SimEquivalent(a, b *aig.Graph, rounds int, seed int64) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, a.NumPIs())
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		oa := a.SimWords(in)
		ob := b.SimWords(in)
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}

// CECOptions configures SATEquivalentOpt.
type CECOptions struct {
	// Budget bounds SAT conflicts per output miter (0 = unlimited).
	Budget int64
	// Sweep, when non-nil, SAT-sweeps both circuits with these settings
	// before building the miter. Sweeping merges internal equivalences so
	// the final miter proofs are much easier on large circuits.
	Sweep *aig.SweepOptions
	// Interrupt, when non-nil, is polled inside the miter solver's
	// search loop and threaded into the sweep pre-pass; a non-nil
	// result aborts the check with sat.Unknown.
	Interrupt func() error
}

// SATEquivalent proves or disproves equivalence of two combinational
// circuits with identical interfaces by checking each output pair's miter
// with SAT. budget bounds conflicts per output; it returns sat.Unknown if
// any query is inconclusive.
func SATEquivalent(a, b *aig.Graph, budget int64) sat.Status {
	return SATEquivalentOpt(a, b, CECOptions{Budget: budget})
}

// SATEquivalentOpt is SATEquivalent with an optional sweeping
// pre-processing pass (opt.Sweep). Sweeping preserves functional
// equivalence, so the verdict applies to the original pair.
func SATEquivalentOpt(a, b *aig.Graph, opt CECOptions) sat.Status {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return sat.Unsat // trivially inequivalent interfaces
	}
	if opt.Sweep != nil {
		sw := *opt.Sweep
		if sw.Interrupt == nil {
			sw.Interrupt = opt.Interrupt
		}
		a = a.Sweep(sw)
		b = b.Sweep(sw)
	}
	budget := opt.Budget
	// Build a joint miter graph.
	m := aig.New()
	piMap := make([]aig.Lit, a.NumPIs())
	for i := range piMap {
		piMap[i] = m.PI("")
	}
	rootsA := make([]aig.Lit, a.NumPOs())
	for i := range rootsA {
		rootsA[i] = a.PO(i)
	}
	rootsB := make([]aig.Lit, b.NumPOs())
	for i := range rootsB {
		rootsB[i] = b.PO(i)
	}
	oa := aig.Transfer(m, a, piMap, rootsA)
	ob := aig.Transfer(m, b, piMap, rootsB)
	diffs := make([]aig.Lit, len(oa))
	for i := range oa {
		diffs[i] = m.Xor(oa[i], ob[i])
	}
	solver := sat.New()
	solver.SetBudget(budget)
	if opt.Interrupt != nil {
		solver.SetInterrupt(func() bool { return opt.Interrupt() != nil })
	}
	cnf := m.ToCNF(solver, diffs)
	for _, d := range diffs {
		if opt.Interrupt != nil && opt.Interrupt() != nil {
			return sat.Unknown
		}
		if d == aig.Const0 {
			continue
		}
		if d == aig.Const1 {
			return sat.Sat // structurally different constant outputs
		}
		switch solver.Solve(cnf.LitFor(d)) {
		case sat.Sat:
			return sat.Sat // counterexample: not equivalent
		case sat.Unknown:
			return sat.Unknown
		}
	}
	return sat.Unsat // all miters UNSAT: equivalent
}

// VerifyFold checks that the folded circuit is a correct time
// multiplexing of the original combinational circuit g: executing the
// fold on a full input assignment reproduces g's outputs. Exhaustive for
// small input counts, random otherwise. It returns nil or a descriptive
// error with a counterexample.
func VerifyFold(g *aig.Graph, r *core.Result, randomTrials int, seed int64) error {
	if err := r.Validate(g.NumPIs(), g.NumPOs()); err != nil {
		return err
	}
	n := g.NumPIs()
	check := func(in []bool) error {
		want := g.Eval(in)
		got := r.Execute(in)
		if len(got) < len(want) {
			return fmt.Errorf("eqcheck: fold produced %d outputs, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("eqcheck: output %d differs on input %v: fold=%v circuit=%v",
					i, in, got[i], want[i])
			}
		}
		return nil
	}
	if n <= 12 {
		in := make([]bool, n)
		for v := uint64(0); v < 1<<uint(n); v++ {
			for i := 0; i < n; i++ {
				in[i] = v>>uint(i)&1 == 1
			}
			if err := check(in); err != nil {
				return err
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]bool, n)
	for trial := 0; trial < randomTrials; trial++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		if err := check(in); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFoldByUnrolling checks the problem-statement form directly:
// time-frame expanding the folded circuit by T yields a combinational
// circuit equivalent to g under the pin schedule. The unrolled circuit's
// scheduled output positions are compared against g by random (or
// exhaustive, when small) simulation.
func VerifyFoldByUnrolling(g *aig.Graph, r *core.Result, randomTrials int, seed int64) error {
	if err := r.Validate(g.NumPIs(), g.NumPOs()); err != nil {
		return err
	}
	u := r.Seq.Unroll(r.T)
	n := g.NumPIs()
	mOut := r.Seq.NumOutputs()

	check := func(in []bool) error {
		want := g.Eval(in)
		// Build the unrolled input vector (frame-major).
		flat := make([]bool, 0, r.T*r.Seq.NumInputs)
		for _, row := range r.ScheduleInputs(in) {
			flat = append(flat, row...)
		}
		uo := u.Eval(flat)
		for t, row := range r.OutSched {
			for k, dst := range row {
				if dst < 0 {
					continue
				}
				if uo[t*mOut+k] != want[dst] {
					return fmt.Errorf("eqcheck: unrolled output (frame %d, pin %d) for PO %d differs on %v",
						t, k, dst, in)
				}
			}
		}
		return nil
	}
	if n <= 12 {
		in := make([]bool, n)
		for v := uint64(0); v < 1<<uint(n); v++ {
			for i := 0; i < n; i++ {
				in[i] = v>>uint(i)&1 == 1
			}
			if err := check(in); err != nil {
				return err
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]bool, n)
	for trial := 0; trial < randomTrials; trial++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		if err := check(in); err != nil {
			return err
		}
	}
	return nil
}

// SeqEquivalentBounded checks bounded input-output equivalence of two
// sequential circuits with identical interfaces: both are unrolled T
// frames from their initial states and the unrollings are compared with
// SAT. It returns sat.Unsat when equivalent within the bound, sat.Sat
// with inequivalence, and sat.Unknown when the budget ran out.
func SeqEquivalentBounded(a, b *seq.Circuit, T int, budget int64) sat.Status {
	if a.NumInputs != b.NumInputs || a.NumOutputs() != b.NumOutputs() {
		return sat.Sat
	}
	return SATEquivalent(a.Unroll(T), b.Unroll(T), budget)
}

// VerifyFoldWords is the word-parallel version of VerifyFold: each round
// drives 64 random input vectors through both the original circuit and
// the folded execution at once. rounds*64 vectors total.
func VerifyFoldWords(g *aig.Graph, r *core.Result, rounds int, seed int64) error {
	if err := r.Validate(g.NumPIs(), g.NumPOs()); err != nil {
		return err
	}
	n := g.NumPIs()
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, n)
	m := r.Seq.NumInputs
	for round := 0; round < rounds; round++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		want := g.SimWords(in)
		// Schedule the input words over the frames.
		stream := make([][]uint64, r.T)
		for t := range stream {
			row := make([]uint64, m)
			for j, src := range r.InSched[t] {
				if src >= 0 {
					row[j] = in[src]
				}
			}
			stream[t] = row
		}
		frames := r.Seq.SimulateWords(stream)
		for t, sched := range r.OutSched {
			for k, dst := range sched {
				if dst < 0 {
					continue
				}
				if frames[t][k] != want[dst] {
					bit := bitsDiffer(frames[t][k], want[dst])
					return fmt.Errorf("eqcheck: output %d differs (round %d, lane %d)", dst, round, bit)
				}
			}
		}
	}
	return nil
}

// SATCheckFold is the SAT spot-check behind the fold self-verification:
// it unrolls the folded circuit T frames, wires the unrolled inputs to
// the original circuit's PIs per the input schedule (unused slots to
// constant 0), and proves each scheduled output position equivalent to
// its PO of g by a per-output miter under a conflict budget. It returns
// sat.Unsat when every miter is proved (the fold is equivalent),
// sat.Sat when a counterexample exists, sat.Unknown when the budget ran
// out — which self-check policies treat as inconclusive, not failing.
// A malformed result reports an error instead of a verdict.
func SATCheckFold(g *aig.Graph, r *core.Result, budget int64, interrupt func() error) (sat.Status, error) {
	if err := r.Validate(g.NumPIs(), g.NumPOs()); err != nil {
		return sat.Unknown, err
	}
	u := r.Seq.Unroll(r.T)
	m := aig.New()
	piMap := make([]aig.Lit, g.NumPIs())
	for i := range piMap {
		piMap[i] = m.PI("")
	}
	rootsG := make([]aig.Lit, g.NumPOs())
	for i := range rootsG {
		rootsG[i] = g.PO(i)
	}
	og := aig.Transfer(m, g, piMap, rootsG)

	// The unrolled circuit's PIs are frame-major: frame t, pin j is PI
	// t*NumInputs+j, fed from the scheduled source PI (or constant 0
	// for idle slots), exactly as Result.ScheduleInputs drives it.
	upi := make([]aig.Lit, 0, r.T*r.Seq.NumInputs)
	for t := 0; t < r.T; t++ {
		for _, src := range r.InSched[t] {
			if src >= 0 {
				upi = append(upi, piMap[src])
			} else {
				upi = append(upi, aig.Const0)
			}
		}
	}
	rootsU := make([]aig.Lit, u.NumPOs())
	for i := range rootsU {
		rootsU[i] = u.PO(i)
	}
	ou := aig.Transfer(m, u, upi, rootsU)

	mOut := r.Seq.NumOutputs()
	var diffs []aig.Lit
	for t, row := range r.OutSched {
		for k, dst := range row {
			if dst < 0 {
				continue
			}
			diffs = append(diffs, m.Xor(ou[t*mOut+k], og[dst]))
		}
	}
	solver := sat.New()
	solver.SetBudget(budget)
	if interrupt != nil {
		solver.SetInterrupt(func() bool { return interrupt() != nil })
	}
	cnf := m.ToCNF(solver, diffs)
	for _, d := range diffs {
		if interrupt != nil && interrupt() != nil {
			return sat.Unknown, nil
		}
		if d == aig.Const0 {
			continue
		}
		if d == aig.Const1 {
			return sat.Sat, nil
		}
		switch solver.Solve(cnf.LitFor(d)) {
		case sat.Sat:
			return sat.Sat, nil
		case sat.Unknown:
			return sat.Unknown, nil
		}
	}
	return sat.Unsat, nil
}

// bitsDiffer returns the index of the lowest differing bit.
func bitsDiffer(a, b uint64) int {
	d := a ^ b
	i := 0
	for d&1 == 0 {
		d >>= 1
		i++
	}
	return i
}
