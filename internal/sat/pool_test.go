package sat

import (
	"sync"
	"testing"

	"circuitfold/internal/obs"
)

// solveXorChain encodes a small satisfiable XOR chain and solves it,
// returning the status and the model of variable 0.
func solveXorChain(s *Solver, n int) (Status, bool) {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// x0 xor x1 = 1, x1 xor x2 = 1, ... pairwise difference clauses.
	for i := 0; i+1 < n; i++ {
		a, b := vars[i], vars[i+1]
		s.AddClause(MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(a, true), MkLit(b, true))
	}
	s.AddClause(MkLit(vars[0], true)) // pin x0 = false
	st := s.Solve()
	if st != Sat {
		return st, false
	}
	return st, s.Value(vars[0])
}

// TestSolverResetIsolation proves no state bleeds between problems: a
// solver that went UNSAT (ok = false), carried budgets, limits and an
// observer, solves a fresh problem after Reset exactly like a new one.
func TestSolverResetIsolation(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	s.AddClause(MkLit(v, true)) // empty resolvent: UNSAT at level 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("setup: want UNSAT, got %v", st)
	}
	s.SetBudget(1)
	s.SetResourceLimit(1, 1)
	s.SetInterrupt(func() bool { return true })
	s.SetObserver(nil, obs.NewRegistry())

	s.Reset()
	if s.NumVars() != 0 {
		t.Fatalf("reset solver has %d vars", s.NumVars())
	}
	st, x0 := solveXorChain(s, 12)
	if st != Sat || x0 != false {
		t.Fatalf("reset solver: %v x0=%v; want SAT false", st, x0)
	}
	if got := s.Stats(); got.Decisions == 0 && got.Propagations == 0 {
		t.Fatalf("reset solver recorded no work: %+v", got)
	}

	// Same problem on a genuinely fresh solver gives the same answer.
	f := New()
	st2, y0 := solveXorChain(f, 12)
	if st2 != st || y0 != x0 {
		t.Fatalf("fresh/reset divergence: %v/%v vs %v/%v", st2, y0, st, x0)
	}
}

// TestSolverPoolReuse checks recycling, the reuse counter, and nil
// degradation.
func TestSolverPoolReuse(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool()
	p.SetMetrics(reg.Counter(obs.MSATPoolReuse))

	s1 := p.Get()
	if _, _ = solveXorChain(s1, 6); s1.NumVars() != 6 {
		t.Fatalf("setup solve went wrong")
	}
	p.Put(s1)
	s2 := p.Get()
	if s2 != s1 {
		t.Fatalf("pool did not recycle the solver")
	}
	if s2.NumVars() != 0 {
		t.Fatalf("recycled solver not reset: %d vars", s2.NumVars())
	}
	if got := reg.Counter(obs.MSATPoolReuse).Value(); got != 1 {
		t.Fatalf("reuse counter = %d, want 1", got)
	}

	var nilPool *Pool
	if s := nilPool.Get(); s == nil {
		t.Fatalf("nil pool Get broken")
	}
	nilPool.Put(nil)
	nilPool.SetMetrics(nil)
}

// TestSolverPoolConcurrent hammers one pool from several goroutines;
// under -race this is the thread-safety gate for the sweep shards.
func TestSolverPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := p.Get()
				if st, _ := solveXorChain(s, 8); st != Sat {
					t.Errorf("pooled solver: %v", st)
				}
				p.Put(s)
			}
		}()
	}
	wg.Wait()
}
