package sat

import (
	"sync"

	"circuitfold/internal/obs"
)

// Reset returns the solver to the observable state of New while
// retaining the capacity of its per-variable arrays (assignments,
// levels, activities, phases, the VSIDS heap and trail), so a pooled
// solver re-adds variables without reallocating. Clause storage is
// deliberately dropped, not recycled: clauses are per-problem heap
// objects threaded through the watch lists, and the stale pointers
// must be released for the GC either way. Budgets, resource limits,
// the interrupt hook, the observer and the statistics are all cleared
// — nothing from the previous problem can influence the next one.
func (s *Solver) Reset() {
	for i := range s.clauses {
		s.clauses[i] = nil
	}
	s.clauses = s.clauses[:0]
	for i := range s.learnts {
		s.learnts[i] = nil
	}
	s.learnts = s.learnts[:0]
	for i := range s.watches {
		s.watches[i] = nil
	}
	s.watches = s.watches[:0]

	s.assign = s.assign[:0]
	s.level = s.level[:0]
	for i := range s.reason {
		s.reason[i] = nil
	}
	s.reason = s.reason[:0]
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0

	s.activity = s.activity[:0]
	s.varInc = 1
	s.order.heap = s.order.heap[:0]
	s.order.index = s.order.index[:0]
	s.phase = s.phase[:0]
	s.seen = s.seen[:0]
	s.model = s.model[:0]

	s.claInc = 1
	s.ok = true
	s.numConflicts = 0
	s.budget = 0
	s.interrupt = nil
	s.hardConflicts = 0
	s.hardLearntLits = 0
	s.learntLits = 0
	s.limitErr = nil
	s.stats = Stats{}

	s.span = nil
	s.mDecisions, s.mPropagations, s.mRestarts, s.mConflicts = nil, nil, nil, nil
	s.mLearned = nil
	s.observed = false
}

// Pool recycles Solvers across jobs. Get hands out a Reset solver with
// warm per-variable arrays when one is available and a fresh one
// otherwise; Put returns a solver once its models and clauses are no
// longer referenced. All methods are safe for concurrent use (sweep
// shards share one pool across worker goroutines) and nil-safe: a nil
// *Pool degrades to plain New, so call sites can thread an optional
// pool unconditionally.
type Pool struct {
	mu    sync.Mutex
	free  []*Solver
	reuse *obs.Counter // obs.MSATPoolReuse, nil when unobserved
}

// solverPoolCap bounds the solvers a Pool retains: the sweep engine's
// default shard count, the largest set a single fold checks out at
// once.
const solverPoolCap = 8

// NewPool returns an empty solver pool.
func NewPool() *Pool { return &Pool{} }

// SetMetrics directs the pool's reuse counter (obs.MSATPoolReuse):
// incremented every time Get serves a recycled solver instead of
// allocating. Nil (and a nil pool) disables counting.
func (p *Pool) SetMetrics(reuse *obs.Counter) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reuse = reuse
	p.mu.Unlock()
}

// Get returns an empty solver, recycling a pooled one when available.
// On a nil pool it is exactly New().
func (p *Pool) Get() *Solver {
	if p == nil {
		return New()
	}
	p.mu.Lock()
	var s *Solver
	if k := len(p.free) - 1; k >= 0 {
		s = p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
	}
	reuse := p.reuse
	p.mu.Unlock()
	if s == nil {
		return New()
	}
	s.Reset()
	reuse.Add(1)
	return s
}

// Put returns a solver to the pool. The caller must not use s (or a
// model taken from it) afterwards. Nil pools and nil solvers are
// no-ops; a full pool drops s.
func (p *Pool) Put(s *Solver) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < solverPoolCap {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}
