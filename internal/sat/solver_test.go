package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitBasics(t *testing.T) {
	l := MkLit(4, true)
	if l.Var() != 4 || !l.Neg() {
		t.Fatalf("MkLit(4,true) = %v", l)
	}
	if n := l.Not(); n.Var() != 4 || n.Neg() {
		t.Fatalf("Not = %v", n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(nlit(a))
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("model wrong: a=%v b=%v", s.Value(a), s.Value(b))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if ok := s.AddClause(nlit(a)); ok {
		t.Fatal("AddClause should report conflict")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should be a conflict")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	if !s.AddClause(lit(a), nlit(a)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(lit(b), lit(b), lit(b)) {
		t.Fatal("duplicate-literal clause rejected")
	}
	if s.Solve() != Sat || !s.Value(b) {
		t.Fatal("expected SAT with b=true")
	}
}

func TestXorChainSat(t *testing.T) {
	// x0 xor x1 xor ... xor x9 = 1, encoded pairwise with aux vars.
	s := New()
	n := 10
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	acc := vars[0]
	for i := 1; i < n; i++ {
		nxt := s.NewVar()
		addXor(s, nxt, acc, vars[i])
		acc = nxt
	}
	s.AddClause(lit(acc))
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	parity := false
	for _, v := range vars {
		parity = parity != s.Value(v)
	}
	if !parity {
		t.Fatal("model violates parity constraint")
	}
}

// addXor encodes o <-> a xor b.
func addXor(s *Solver, o, a, b int) {
	s.AddClause(nlit(o), lit(a), lit(b))
	s.AddClause(nlit(o), nlit(a), nlit(b))
	s.AddClause(lit(o), lit(a), nlit(b))
	s.AddClause(lit(o), nlit(a), lit(b))
}

func TestPigeonholeUnsat(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes; classic UNSAT family.
	for _, n := range []int{3, 4, 5} {
		s := New()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			cl := make([]Lit, n)
			for j := 0; j < n; j++ {
				cl[j] = lit(p[i][j])
			}
			s.AddClause(cl...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(nlit(p[i1][j]), nlit(p[i2][j]))
				}
			}
		}
		if s.Solve() != Unsat {
			t.Fatalf("PHP(%d,%d) should be UNSAT", n+1, n)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable but not 2-colorable.
	color := func(k int) Status {
		s := New()
		v := make([][]int, 5)
		for i := range v {
			v[i] = make([]int, k)
			for c := range v[i] {
				v[i][c] = s.NewVar()
			}
			cl := make([]Lit, k)
			for c := 0; c < k; c++ {
				cl[c] = lit(v[i][c])
			}
			s.AddClause(cl...)
		}
		for i := 0; i < 5; i++ {
			j := (i + 1) % 5
			for c := 0; c < k; c++ {
				s.AddClause(nlit(v[i][c]), nlit(v[j][c]))
			}
		}
		return s.Solve()
	}
	if color(2) != Unsat {
		t.Fatal("5-cycle should not be 2-colorable")
	}
	if color(3) != Sat {
		t.Fatal("5-cycle should be 3-colorable")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	s.AddClause(nlit(a), lit(b))
	s.AddClause(nlit(b), lit(c))
	if s.Solve(lit(a), nlit(c)) != Unsat {
		t.Fatal("a & !c should be UNSAT under a->b->c")
	}
	if s.Solve(lit(a)) != Sat {
		t.Fatal("a alone should be SAT")
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Fatal("model must satisfy implications under assumption a")
	}
	// Solver remains reusable after an assumption-UNSAT call.
	if s.Solve(nlit(a)) != Sat {
		t.Fatal("!a should be SAT")
	}
}

func TestAssumptionConflictingWithUnit(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if s.Solve(nlit(a)) != Unsat {
		t.Fatal("assumption contradicting a unit must be UNSAT")
	}
	if s.Solve(lit(a)) != Sat {
		t.Fatal("consistent assumption must be SAT")
	}
	if s.Solve() != Sat {
		t.Fatal("solver must remain usable")
	}
}

func TestBudgetReturnsUnknown(t *testing.T) {
	s := New()
	n := 8
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		cl := make([]Lit, n)
		for j := 0; j < n; j++ {
			cl[j] = lit(p[i][j])
		}
		s.AddClause(cl...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(nlit(p[i1][j]), nlit(p[i2][j]))
			}
		}
	}
	s.SetBudget(10)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("tiny budget on PHP(9,8): got %v, want UNKNOWN", got)
	}
	s.SetBudget(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unlimited budget: got %v, want UNSAT", got)
	}
}

// bruteForce checks satisfiability of a CNF over nVars by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := uint64(0); m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3CNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nCls := 2 + rng.Intn(nVars*5)
		cnf := make([][]Lit, nCls)
		for i := range cnf {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		addOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				addOK = false
				break
			}
		}
		want := bruteForce(nVars, cnf)
		if !addOK {
			if want {
				t.Fatalf("trial %d: AddClause claimed conflict on satisfiable CNF", trial)
			}
			continue
		}
		got := s.Solve()
		if want && got != Sat {
			t.Fatalf("trial %d: want SAT got %v", trial, got)
		}
		if !want && got != Unsat {
			t.Fatalf("trial %d: want UNSAT got %v", trial, got)
		}
		if got == Sat {
			// Verify the model satisfies the CNF.
			for ci, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.ValueLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}

func TestQuickRandomCNF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8)
		nCls := 1 + rng.Intn(30)
		cnf := make([][]Lit, nCls)
		for i := range cnf {
			k := 1 + rng.Intn(4)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		want := bruteForce(nVars, cnf)
		if !ok {
			return !want
		}
		return (s.Solve() == Sat) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalGrowth(t *testing.T) {
	// Add constraints between Solve calls and check monotone behavior.
	s := New()
	v := make([]int, 6)
	for i := range v {
		v[i] = s.NewVar()
	}
	for i := 0; i+1 < len(v); i++ {
		s.AddClause(nlit(v[i]), lit(v[i+1]))
	}
	if s.Solve(lit(v[0])) != Sat {
		t.Fatal("chain should be SAT")
	}
	for i := 1; i < len(v); i++ {
		if !s.Value(v[i]) {
			t.Fatalf("v[%d] must be true", i)
		}
	}
	s.AddClause(nlit(v[len(v)-1]))
	if s.Solve(lit(v[0])) != Unsat {
		t.Fatal("chain with falsified head should be UNSAT under v0")
	}
	if s.Solve() != Sat {
		t.Fatal("still SAT without assumptions")
	}
	if s.Value(v[0]) {
		t.Fatal("v0 must be false now")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status strings wrong")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSolveTwiceStable(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a), lit(b))
	if s.Solve() != Sat || s.Solve() != Sat {
		t.Fatal("repeated Solve should stay SAT")
	}
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if s.Stats().Decisions == 0 && s.Stats().Propagations == 0 {
		t.Fatal("stats not accumulated")
	}
	m := s.Model()
	if len(m) != 2 || !(m[0] || m[1]) {
		t.Fatalf("model wrong: %v", m)
	}
}

func TestHardRandomKSATStress(t *testing.T) {
	// Near the 3-SAT phase transition (ratio ~4.26): exercises restarts
	// and clause DB reduction; verified against brute force.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nVars := 14
		nCls := int(4.26 * float64(nVars))
		cnf := make([][]Lit, nCls)
		for i := range cnf {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		want := bruteForce(nVars, cnf)
		if !ok {
			if want {
				t.Fatal("AddClause rejected satisfiable CNF")
			}
			continue
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: got %v want sat=%v", trial, got, want)
		}
	}
}

func TestSetInterruptReturnsUnknown(t *testing.T) {
	// PHP(7,6) conflicts immediately and often, so an interrupted solver
	// must give up with Unknown instead of completing the refutation.
	build := func() *Solver {
		n := 6
		s := New()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			cl := make([]Lit, n)
			for j := 0; j < n; j++ {
				cl[j] = lit(p[i][j])
			}
			s.AddClause(cl...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(nlit(p[i1][j]), nlit(p[i2][j]))
				}
			}
		}
		return s
	}

	s := build()
	s.SetInterrupt(func() bool { return true })
	if got := s.Solve(); got != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", got)
	}

	// A non-firing interrupt must not change the verdict.
	s = build()
	s.SetInterrupt(func() bool { return false })
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve with idle interrupt = %v, want Unsat", got)
	}
}
