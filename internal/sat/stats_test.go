package sat

import "testing"

func TestStatsSnapshotAndAdd(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// A small unsatisfiable core forces at least one conflict.
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(c, false))
	s.AddClause(MkLit(a, true), MkLit(c, true))
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	st := s.Stats()
	if st.Conflicts == 0 || st.Propagations == 0 {
		t.Fatalf("stats not tracked: %+v", st)
	}
	snap := st
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT again")
	}
	// Stats() returns a snapshot: the earlier copy must not have moved.
	if snap != st {
		t.Fatal("Stats() snapshot aliases solver state")
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.Conflicts != 2*st.Conflicts || sum.Propagations != 2*st.Propagations ||
		sum.Decisions != 2*st.Decisions || sum.Restarts != 2*st.Restarts ||
		sum.Learnt != 2*st.Learnt {
		t.Fatalf("Add misbehaves: %+v vs %+v", sum, st)
	}
}
